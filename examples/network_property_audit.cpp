// Distributed property audit (Theorem 1.4, §3.4): nodes of a deployed
// overlay verify — without any central collection — that their topology is
// still planar (e.g. a physical mesh whose links should not cross), and
// flag it when too many rogue links appear.
//
//   ./network_property_audit [n] [corruption]
#include <cstdio>
#include <cstdlib>

#include "src/core/property_testing.h"
#include "src/graph/generators.h"

namespace {

void audit(const char* name, const ecd::graph::Graph& g,
           const ecd::seq::MinorClosedProperty& property, double eps) {
  const auto r = ecd::core::property_test(g, property, eps);
  std::printf("  %-28s n=%-6d m=%-6d -> %s", name, g.num_vertices(),
              g.num_edges(), r.accept ? "ACCEPT" : "REJECT");
  if (!r.accept) {
    std::printf("  (%d clusters fail %s, %d fail the degree condition)",
                r.clusters_failing_property, property.name.c_str(),
                r.clusters_failing_degree_condition);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 400;
  const double corruption = argc > 2 ? std::atof(argv[2]) : 0.4;
  const double eps = 0.2;

  ecd::graph::Rng rng(13);
  const auto mesh = ecd::graph::random_maximal_planar(n, rng);
  const auto corrupted = ecd::graph::plus_random_edges(
      mesh, static_cast<int>(corruption * mesh.num_edges()), rng);
  const auto tree = ecd::graph::random_tree(n, rng);
  const auto ring_overlay = ecd::graph::random_outerplanar(n, rng);

  std::printf("auditing property: planarity (forbidden minor K5), eps=%.2f\n",
              eps);
  audit("healthy mesh", mesh, ecd::seq::planar_property(), eps);
  audit("corrupted mesh (+40% links)", corrupted,
        ecd::seq::planar_property(), eps);

  std::printf("\nauditing property: forest (spanning-tree overlay)\n");
  audit("tree overlay", tree, ecd::seq::forest_property(), eps);
  audit("tree + rogue links",
        ecd::graph::plus_random_edges(tree, n / 2, rng),
        ecd::seq::forest_property(), eps);

  std::printf("\nauditing property: outerplanarity (ring-with-chords)\n");
  audit("ring overlay", ring_overlay, ecd::seq::outerplanar_property(), eps);
  audit("triangulated mesh", mesh, ecd::seq::outerplanar_property(), eps);
  return 0;
}
