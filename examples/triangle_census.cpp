// Distributed triangle census on a sparse network: count triadic closures
// (e.g. mutual-contact triangles in a geographic mesh) in O(degeneracy)
// CONGEST rounds — no topology ever leaves the neighborhood.
//
//   ./triangle_census [n]
#include <cstdio>
#include <cstdlib>

#include "src/core/triangles.h"
#include "src/graph/generators.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 500;
  ecd::graph::Rng rng(21);

  struct Row {
    const char* name;
    ecd::graph::Graph g;
  };
  const Row rows[] = {
      {"planar triangulation", ecd::graph::random_maximal_planar(n, rng)},
      {"random planar (sparse)", ecd::graph::random_planar(n, 2 * n, rng)},
      {"2-tree", ecd::graph::random_two_tree(n, rng)},
      {"grid (triangle-free)", ecd::graph::grid(20, n / 20)},
  };

  std::printf("%-26s %8s %8s %10s %10s %8s\n", "network", "n", "m",
              "triangles", "check", "rounds");
  for (const Row& row : rows) {
    const auto r = ecd::core::count_triangles_distributed(row.g);
    const auto oracle = ecd::core::count_triangles_sequential(row.g);
    std::printf("%-26s %8d %8d %10lld %10lld %8lld\n", row.name,
                row.g.num_vertices(), row.g.num_edges(),
                static_cast<long long>(r.triangles),
                static_cast<long long>(oracle),
                static_cast<long long>(r.ledger.measured_total()));
  }
  std::printf("\nAll rounds are measured on the CONGEST simulator with\n"
              "O(log n)-bit messages; the count finishes in O(degeneracy)\n"
              "exchange rounds plus an O(log n)-phase orientation.\n");
  return 0;
}
