// Road-network matching: pair up service vehicles stationed at road
// intersections so that paired vehicles share a (high-capacity) road.
//
// The road network is a planar graph (grid with random diagonal shortcuts
// removed/kept — a subgraph of a triangulation), edge weights are road
// capacities; we want a maximum-weight matching, computed distributively by
// the paper's framework (Theorem 1.1) and compared against the exact
// sequential optimum and the greedy 1/2-approximation.
//
//   ./planar_roadnet_matching [n] [eps]
#include <cstdio>
#include <cstdlib>

#include "src/core/mwm.h"
#include "src/graph/generators.h"
#include "src/seq/mwm.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 300;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.2;

  ecd::graph::Rng rng(7);
  auto roads = ecd::graph::random_planar(n, 2 * n, rng);
  const auto g =
      roads.with_weights(ecd::graph::random_weights(roads, 1000, rng));
  std::printf("road network: n=%d intersections, m=%d roads, W<=1000\n",
              g.num_vertices(), g.num_edges());

  const auto dist = ecd::core::mwm_approx(g, eps);
  const auto exact = ecd::seq::max_weight_matching(g);
  const auto greedy = ecd::seq::greedy_weight_matching(g);
  const auto w_exact = ecd::seq::matching_weight(g, exact);
  const auto w_greedy = ecd::seq::matching_weight(g, greedy);

  std::printf("\npairing total capacity:\n");
  std::printf("  exact (sequential blossom):      %lld\n",
              static_cast<long long>(w_exact));
  std::printf("  framework (eps=%.2f, %d phases): %lld  (ratio %.4f)\n", eps,
              dist.phases, static_cast<long long>(dist.weight),
              w_exact ? static_cast<double>(dist.weight) / w_exact : 1.0);
  std::printf("  greedy heaviest-first baseline:  %lld  (ratio %.4f)\n",
              static_cast<long long>(w_greedy),
              w_exact ? static_cast<double>(w_greedy) / w_exact : 1.0);

  std::printf("\nround ledger:\n%s", dist.ledger.to_string().c_str());
  return 0;
}
