// ecd_cli — command-line driver for the library.
//
//   ecd_cli gen <family> <n> [seed]          write an edge list to stdout
//   ecd_cli decompose <file> [opts]          (ε, φ) expander decomposition
//   ecd_cli mis <file> [opts]                (1-ε)-approx MaxIS (Thm 1.2)
//   ecd_cli mcm <file> [opts]                planar MCM (Thm 3.2)
//   ecd_cli mwm <file> [opts]                weighted matching (Thm 1.1)
//   ecd_cli correlate <file> [opts]          correlation clustering (Thm 1.3)
//   ecd_cli test-planarity <file> [opts]     property testing (Thm 1.4)
//   ecd_cli ldd <file> [opts]                low-diameter decomp (Thm 1.5)
//   ecd_cli triangles <file>                 distributed triangle census
//   ecd_cli trace --family <f> --n <k>       run the Thm 2.6 pipeline with
//                                            the metrics collector attached;
//                                            print the per-phase table +
//                                            hotspot report, write a trace
//   ecd_cli report --family <f> --n <k>      run the pipeline with the
//                                            always-on metrics registry
//                                            (works at any --threads), print
//                                            the per-phase table, write an
//                                            ecd-run-report-v1 JSON snapshot
//   ecd_cli profile --family <f> --n <k>     run the pipeline with the
//                                            wall-clock execution profiler
//                                            attached; print the per-shard
//                                            imbalance/barrier table, write
//                                            ecd-profile-v1 JSON and (with
//                                            --timeline) a per-shard Chrome
//                                            trace
//   ecd_cli sweep --spec <file>              expand a declarative JSON grid
//                                            (family x n x seeds x algorithm
//                                            x threads x faults) and run it
//                                            on one SweepEngine with cached
//                                            topologies/Networks; write the
//                                            ecd-sweep-v1 summary and
//                                            (optionally) per-run JSONL
//                                            reports
//
// options: --eps <x>      proximity/approximation parameter (default 0.2)
//          --seed <k>     RNG seed (default 1)
//          --distributed  fully measured decomposition (no modeled rounds)
//          --dot <out>    write a cluster-colored DOT file (decompose/ldd)
//
// trace options: --family <f> --n <k>        generated input (see `gen`)
//                --out <path>                trace file (default ecd_trace.json)
//                --format chrome|jsonl       trace format (default chrome)
//                --top <k>                   hotspot edges to print (default 10)
//                --threads <k>               simulator worker threads
//                                            (default 1; 0 = hardware) — the
//                                            trace is byte-identical at every
//                                            value (DESIGN.md §18)
//                --sample r[,v[,t]]          sampling filters: keep rounds
//                                            r | round, delivery events for
//                                            vertices v | vertex, messages
//                                            with tag == t (t < 0: all tags);
//                                            defaults 1,1,-1 = everything
//                --ring <k>                  flight-recorder mode: bounded
//                                            ring of the last k rounds of
//                                            events, dumped to --out as
//                                            flight JSONL (auto-dumped on an
//                                            aborted run); skips the hotspot
//                                            report and ignores --format
//
// report options: --family/--n/--eps/--seed/--distributed as above
//                 --threads <k>              simulator worker threads
//                                            (default 1; 0 = hardware)
//                 --fault-permille <k>       drop k/1000 of gather messages
//                                            (routes through reliable gather)
//                 --out <path>               report file (default
//                                            ecd_report.json)
//                 --top <k>                  congested edges in the report
//                                            (default 10)
//
// profile options: --family/--n/--eps/--seed/--distributed/--threads/
//                  --fault-permille as above
//                  --workload gather|flood|mis
//                                            what to profile (default
//                                            gather = the Thm 2.6 pipeline;
//                                            flood = one wavefront over the
//                                            graph; mis = Luby MIS)
//                  --out <path>              ecd-profile-v1 JSON (default
//                                            ecd_profile.json)
//                  --timeline <path>         per-shard Chrome trace_event
//                                            timeline (omitted = not written)
//                  --ring <k>                per-shard round samples kept for
//                                            the timeline (default 4096)
//                  --sparse-threshold <k>    serial-fallback cutoff: rounds
//                                            with <= k active vertices run
//                                            on the calling thread (default
//                                            256; 0 = always dispatch)
//                  --churn-permille <c>      deterministic topology churn of
//                                            ~c/1000 of the edges (the sweep
//                                            schedule, core::make_churn_plan;
//                                            flood/mis workloads only)
//
// sweep options: --spec <file>               JSON grid spec (axes: families,
//                                            sizes, topo_seeds, run_seeds,
//                                            algorithms, threads,
//                                            fault_permille,
//                                            churn_permille; scalars:
//                                            pingpong_rounds,
//                                            bandwidth_tokens,
//                                            sparse_serial_threshold,
//                                            max_rounds — see
//                                            src/core/sweep.h)
//                --workers <k>               serial cells multiplexed over k
//                                            workers (default 1; 0 = hw)
//                --repeat <k>                run the grid k times on one
//                                            engine; passes after the first
//                                            hit warm caches (default 1)
//                --cold                      fresh Graph/Network per run (the
//                                            reuse baseline)
//                --jsonl <path>              per-run ecd-run-report-v1 lines
//                                            (final pass only)
//                --out <path>                ecd-sweep-v1 summary (default
//                                            ecd_sweep.json)
//                --top <k>                   congested edges per JSONL report
//                                            (default 4)
//                --progress <path|->         stream ecd-sweep-progress-v1
//                                            heartbeat lines (cells done,
//                                            runs/s, per-worker liveness +
//                                            stall flags) to a file, or with
//                                            "-" to stderr
//                --progress-interval-ms <k>  heartbeat period (default 1000)
//                --stall-seconds <k>         flag a worker stalled after k
//                                            seconds without a completed run
//                                            (default 30)
//
// families for `gen`/`trace`: grid, tri, planar, outer, twotree, tree,
// torus, hypercube, expander.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/baselines/luby_mis.h"
#include "src/congest/metrics.h"
#include "src/congest/network.h"
#include "src/congest/profiler.h"
#include "src/congest/trace.h"
#include "src/core/correlation.h"
#include "src/core/framework.h"
#include "src/core/ldd.h"
#include "src/core/matching.h"
#include "src/core/mis.h"
#include "src/core/mwm.h"
#include "src/core/property_testing.h"
#include "src/core/sweep.h"
#include "src/core/triangles.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/seq/properties.h"

namespace {

using ecd::graph::Graph;

struct Options {
  double eps = 0.2;
  std::uint64_t seed = 1;
  bool distributed = false;
  std::string dot_path;
  std::string input;
};

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: ecd_cli <command> [options]  (full option list in the source"
      " header)\n"
      "commands:\n"
      "  gen <family> <n> [seed]            write an edge list to stdout\n"
      "  decompose <file> [opts]            (eps, phi) expander decomposition\n"
      "  mis <file> [opts]                  (1-eps)-approx MaxIS\n"
      "  mcm <file> [opts]                  planar maximum cardinality"
      " matching\n"
      "  mwm <file> [opts]                  maximum weight matching\n"
      "  correlate <file> [opts]            correlation clustering\n"
      "  test-planarity <file> [opts]       planarity property testing\n"
      "  ldd <file> [opts]                  low-diameter decomposition\n"
      "  triangles <file>                   distributed triangle census\n"
      "  trace --family <f> --n <k>         traced pipeline run + hotspot"
      " report\n"
      "        [--threads <k>] [--sample r[,v[,t]]] [--ring <k>]\n"
      "  report --family <f> --n <k>        metrics registry run ->"
      " ecd-run-report-v1\n"
      "  profile --family <f> --n <k>       execution profiler run ->"
      " ecd-profile-v1\n"
      "  sweep --spec <file>                declarative run grid over one"
      " engine\n"
      "        [--workers <k>] [--repeat <k>] [--cold] [--jsonl <path>]\n"
      "        [--out <path>] [--top <k>] [--progress <path|->]\n"
      "        [--progress-interval-ms <k>] [--stall-seconds <k>]\n"
      "families: grid, tri, planar, outer, twotree, tree, torus, hypercube,"
      " expander\n");
  std::exit(2);
}

Options parse(int argc, char** argv, int first) {
  Options o;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--eps" && i + 1 < argc) {
      o.eps = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      o.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--distributed") {
      o.distributed = true;
    } else if (arg == "--dot" && i + 1 < argc) {
      o.dot_path = argv[++i];
    } else if (o.input.empty() && arg[0] != '-') {
      o.input = arg;
    } else {
      usage();
    }
  }
  if (o.input.empty()) usage();
  return o;
}

Graph load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    std::exit(1);
  }
  return ecd::graph::read_edge_list(in);
}

ecd::core::FrameworkOptions framework_options(const Options& o) {
  ecd::core::FrameworkOptions f;
  f.seed = o.seed;
  if (o.distributed) {
    f.decomposition_mode = ecd::core::DecompositionMode::kDistributed;
  }
  return f;
}

void maybe_write_dot(const Options& o, const Graph& g,
                     const std::vector<int>& clusters) {
  if (o.dot_path.empty()) return;
  std::ofstream out(o.dot_path);
  out << ecd::graph::to_dot(g, clusters);
  std::printf("wrote %s\n", o.dot_path.c_str());
}

Graph make_family(const std::string& family, int n, ecd::graph::Rng& rng) {
  if (family == "grid") {
    int side = 1;
    while (side * side < n) ++side;
    return ecd::graph::grid(side, side);
  }
  if (family == "tri") return ecd::graph::random_maximal_planar(n, rng);
  if (family == "planar") return ecd::graph::random_planar(n, 2 * n, rng);
  if (family == "outer") return ecd::graph::random_outerplanar(n, rng);
  if (family == "twotree") return ecd::graph::random_two_tree(n, rng);
  if (family == "tree") return ecd::graph::random_tree(n, rng);
  if (family == "torus") {
    int side = 3;
    while (side * side < n) ++side;
    return ecd::graph::torus_grid(side, side);
  }
  if (family == "hypercube") {
    int dim = 1;
    while ((1 << dim) < n) ++dim;
    return ecd::graph::hypercube(dim);
  }
  if (family == "expander") {
    return ecd::graph::random_regular(n - (n % 2), 6, rng);
  }
  usage();
}

int cmd_gen(int argc, char** argv) {
  if (argc < 4) usage();
  const std::string family = argv[2];
  const int n = std::atoi(argv[3]);
  ecd::graph::Rng rng(argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 1);
  const Graph g = make_family(family, n, rng);
  ecd::graph::write_edge_list(g, std::cout);
  return 0;
}

int cmd_trace(int argc, char** argv) {
  std::string family = "grid", out_path = "ecd_trace.json", format = "chrome";
  int n = 1024, top_k = 10, threads = 1, ring_rounds = 0;
  double eps = 0.2;
  std::uint64_t seed = 1;
  bool distributed = false;
  ecd::congest::TraceConfig tcfg;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--family" && i + 1 < argc) {
      family = argv[++i];
    } else if (arg == "--n" && i + 1 < argc) {
      n = std::atoi(argv[++i]);
    } else if (arg == "--eps" && i + 1 < argc) {
      eps = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--distributed") {
      distributed = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--sample" && i + 1 < argc) {
      long long r = 1;
      int v = 1, t = -1;
      if (std::sscanf(argv[++i], "%lld,%d,%d", &r, &v, &t) < 1) usage();
      tcfg.round_period = r;
      tcfg.vertex_stride = v;
      tcfg.tag_filter = t;
    } else if (arg == "--ring" && i + 1 < argc) {
      ring_rounds = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "chrome" && format != "jsonl") usage();
    } else if (arg == "--top" && i + 1 < argc) {
      top_k = std::atoi(argv[++i]);
    } else {
      usage();
    }
  }
  ecd::graph::Rng rng(seed);
  const Graph g = make_family(family, n, rng);

  ecd::core::FrameworkOptions fopt;
  fopt.seed = seed;
  fopt.num_threads = threads;
  fopt.trace_config = tcfg;
  if (distributed) {
    fopt.decomposition_mode = ecd::core::DecompositionMode::kDistributed;
  }

  if (ring_rounds > 0) {
    // Flight-recorder mode: a bounded ring of the last --ring rounds, no
    // per-edge aggregation, no hotspot report — the trace shape for runs
    // too large for MetricsCollector. The ring auto-dumps on an abnormal
    // run end, so a failing run still ships its post-mortem.
    ecd::congest::FlightRecorder::Options ropt;
    ropt.keep_rounds = ring_rounds;
    ecd::congest::FlightRecorder recorder(ropt);
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    recorder.set_auto_dump(&out);
    fopt.trace = &recorder;
    try {
      auto p = ecd::core::partition_and_gather(g, eps, fopt);
      std::vector<std::int64_t> answers(g.num_vertices());
      for (int v = 0; v < g.num_vertices(); ++v) answers[v] = v;
      ecd::core::return_results(p, answers, "result return (reversed walks)");
      std::printf(
          "family=%s n=%d m=%d eps=%.3f clusters=%d gather_complete=%d\n",
          family.c_str(), g.num_vertices(), g.num_edges(), eps,
          p.decomposition.num_clusters, p.gather_complete ? 1 : 0);
    } catch (const std::exception& e) {
      // The recorder already dumped its ring via on_abort.
      std::fprintf(stderr, "run aborted: %s (flight dump in %s)\n", e.what(),
                   out_path.c_str());
      return 1;
    }
    recorder.dump_jsonl(out);
    std::printf("wrote %s (flight format, %lld events retained, %lld"
                " dropped, last round %lld)\n",
                out_path.c_str(),
                static_cast<long long>(recorder.events_retained()),
                static_cast<long long>(recorder.events_dropped()),
                static_cast<long long>(recorder.last_round()));
    return 0;
  }

  ecd::congest::MetricsCollector collector;
  fopt.trace = &collector;
  auto p = ecd::core::partition_and_gather(g, eps, fopt);
  // Exercise the reversed delivery too so its rounds join the ledger.
  std::vector<std::int64_t> answers(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) answers[v] = v;
  ecd::core::return_results(p, answers, "result return (reversed walks)");

  std::printf("family=%s n=%d m=%d eps=%.3f clusters=%d gather_complete=%d\n",
              family.c_str(), g.num_vertices(), g.num_edges(), eps,
              p.decomposition.num_clusters, p.gather_complete ? 1 : 0);
  std::printf("%-22s %10s %12s %12s %14s\n", "phase", "rounds", "messages",
              "words", "max-edge-load");
  for (const auto& s : collector.spans()) {
    if (s.depth != 0) continue;
    std::printf("%-22s %10lld %12lld %12lld %14d\n",
                s.name.c_str(), static_cast<long long>(s.rounds),
                static_cast<long long>(s.messages),
                static_cast<long long>(s.words), s.max_edge_load);
  }
  const auto totals = collector.totals();
  std::printf("%-22s %10lld %12lld %12lld %14d\n", "total (simulated)",
              static_cast<long long>(totals.rounds),
              static_cast<long long>(totals.messages_sent),
              static_cast<long long>(totals.words_sent),
              totals.max_edge_load);
  std::printf("\nround ledger:\n%s\n", p.ledger.to_string().c_str());
  std::printf("%s", ecd::congest::hotspot_report(collector, top_k).c_str());

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  if (format == "jsonl") {
    ecd::congest::export_jsonl(collector, out);
  } else {
    ecd::congest::export_chrome_trace(collector, out);
  }
  std::printf("wrote %s (%s format)\n", out_path.c_str(), format.c_str());
  return 0;
}

int cmd_report(int argc, char** argv) {
  std::string family = "grid", out_path = "ecd_report.json";
  int n = 1024, top_k = 10, threads = 1, fault_permille = 0;
  double eps = 0.2;
  std::uint64_t seed = 1;
  bool distributed = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--family" && i + 1 < argc) {
      family = argv[++i];
    } else if (arg == "--n" && i + 1 < argc) {
      n = std::atoi(argv[++i]);
    } else if (arg == "--eps" && i + 1 < argc) {
      eps = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--distributed") {
      distributed = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--fault-permille" && i + 1 < argc) {
      fault_permille = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      top_k = std::atoi(argv[++i]);
    } else {
      usage();
    }
  }
  ecd::graph::Rng rng(seed);
  const Graph g = make_family(family, n, rng);

  ecd::congest::MetricsRegistry metrics;
  ecd::core::FrameworkOptions fopt;
  fopt.seed = seed;
  fopt.metrics = &metrics;
  fopt.num_threads = threads;
  if (distributed) {
    fopt.decomposition_mode = ecd::core::DecompositionMode::kDistributed;
  }
  if (fault_permille > 0) {
    fopt.faults.drop_probability = fault_permille / 1000.0;
    fopt.faults.seed = seed;
  }
  auto p = ecd::core::partition_and_gather(g, eps, fopt);
  std::vector<std::int64_t> answers(g.num_vertices());
  for (int v = 0; v < g.num_vertices(); ++v) answers[v] = v;
  // Host-side reversed replay: rounds are charged to the ledger, not the
  // simulator, so no metrics phase wraps it.
  ecd::core::return_results(p, answers, "result return (reversed walks)");

  std::printf("family=%s n=%d m=%d eps=%.3f threads=%d clusters=%d "
              "gather_complete=%d\n",
              family.c_str(), g.num_vertices(), g.num_edges(), eps, threads,
              p.decomposition.num_clusters, p.gather_complete ? 1 : 0);
  std::printf("%-22s %10s %12s %12s %14s\n", "phase", "rounds", "messages",
              "words", "max-edge-load");
  for (const auto& ph : metrics.phases()) {
    if (ph.depth != 0) continue;
    std::printf("%-22s %10lld %12lld %12lld %14d\n", ph.name.c_str(),
                static_cast<long long>(ph.stats.rounds),
                static_cast<long long>(ph.stats.messages_sent),
                static_cast<long long>(ph.stats.words_sent),
                ph.stats.max_edge_load);
  }
  const auto& totals = metrics.totals();
  std::printf("%-22s %10lld %12lld %12lld %14d\n", "total (simulated)",
              static_cast<long long>(totals.rounds),
              static_cast<long long>(totals.messages_sent),
              static_cast<long long>(totals.words_sent),
              totals.max_edge_load);
  std::printf("critical path: %lld rounds (longest single run %lld)\n",
              static_cast<long long>(metrics.critical_path_total()),
              static_cast<long long>(metrics.critical_path_longest_run()));
  if (fault_permille > 0) {
    std::printf("faults: dropped=%lld retransmissions=%lld epochs=%lld\n",
                static_cast<long long>(totals.messages_dropped),
                static_cast<long long>(
                    metrics.counter("gather.retransmissions")->value()),
                static_cast<long long>(
                    metrics.counter("gather.epochs")->value()));
  }
  std::printf("\nround ledger:\n%s\n", p.ledger.to_string().c_str());

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  ecd::congest::RunReportContext ctx;
  ctx.title = "partition_and_gather (" + family + ")";
  ctx.info = {{"family", family},
              {"n", std::to_string(g.num_vertices())},
              {"m", std::to_string(g.num_edges())},
              {"eps", std::to_string(eps)},
              {"seed", std::to_string(seed)},
              {"threads", std::to_string(threads)},
              {"fault_permille", std::to_string(fault_permille)},
              {"clusters", std::to_string(p.decomposition.num_clusters)}};
  ctx.top_k_edges = top_k;
  ecd::congest::write_run_report(out, metrics, ctx);
  std::printf("wrote %s (ecd-run-report-v1)\n", out_path.c_str());
  return 0;
}

// Minimal flood wavefront for the `profile --workload flood` row: vertex 0
// announces, everyone forwards on first receipt (the per-round-fixed-cost
// workload of EXPERIMENTS.md E16; matches bench_network's BM_Flood).
class ProfileFloodAlgo final : public ecd::congest::VertexAlgorithm {
 public:
  explicit ProfileFloodAlgo(bool is_source) : value_(is_source ? 1 : -1) {}

  void round(ecd::congest::Context& ctx) override {
    started_ = true;
    sent_ = false;
    if (ctx.round() == 0) {
      if (value_ != -1) forward(ctx);
      return;
    }
    if (value_ != -1) return;
    for (int p = 0; p < ctx.num_ports(); ++p) {
      if (!ctx.inbox(p).empty()) {
        value_ = ctx.inbox(p)[0].words[0];
        forward(ctx);
        return;
      }
    }
  }
  bool finished() const override { return started_ && !sent_; }

 private:
  void forward(ecd::congest::Context& ctx) {
    sent_ = true;
    for (int p = 0; p < ctx.num_ports(); ++p) ctx.send(p, {{value_}});
  }
  std::int64_t value_;
  bool started_ = false;
  bool sent_ = false;
};

int cmd_profile(int argc, char** argv) {
  std::string family = "grid", out_path = "ecd_profile.json", timeline_path;
  std::string workload = "gather";
  int n = 1024, threads = 1, fault_permille = 0, churn_permille = 0;
  int ring = 4096;
  int sparse_threshold = ecd::congest::NetworkOptions{}.sparse_serial_threshold;
  double eps = 0.2;
  std::uint64_t seed = 1;
  bool distributed = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--family" && i + 1 < argc) {
      family = argv[++i];
    } else if (arg == "--n" && i + 1 < argc) {
      n = std::atoi(argv[++i]);
    } else if (arg == "--eps" && i + 1 < argc) {
      eps = std::atof(argv[++i]);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--distributed") {
      distributed = true;
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (arg == "--fault-permille" && i + 1 < argc) {
      fault_permille = std::atoi(argv[++i]);
    } else if (arg == "--churn-permille" && i + 1 < argc) {
      churn_permille = std::atoi(argv[++i]);
    } else if (arg == "--workload" && i + 1 < argc) {
      workload = argv[++i];
      if (workload != "gather" && workload != "flood" && workload != "mis") {
        usage();
      }
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--timeline" && i + 1 < argc) {
      timeline_path = argv[++i];
    } else if (arg == "--ring" && i + 1 < argc) {
      ring = std::atoi(argv[++i]);
    } else if (arg == "--sparse-threshold" && i + 1 < argc) {
      sparse_threshold = std::atoi(argv[++i]);
    } else {
      usage();
    }
  }
  if (churn_permille > 0 && workload == "gather") {
    // The gather pipeline drives its own Network sequence through the
    // framework; churn there is an experiment, not a profiler knob.
    std::fprintf(stderr, "--churn-permille requires --workload flood or mis\n");
    return 2;
  }
  ecd::graph::Rng rng(seed);
  const Graph g = make_family(family, n, rng);

  ecd::congest::ExecutionProfiler::Options popt;
  popt.ring_capacity = ring;
  ecd::congest::ExecutionProfiler profiler(popt);
  std::string title;
  if (workload == "flood") {
    ecd::congest::NetworkOptions nopt;
    nopt.num_threads = threads;
    nopt.sparse_serial_threshold = sparse_threshold;
    nopt.profiler = &profiler;
    if (fault_permille > 0) {
      nopt.faults.seed = seed;
      nopt.faults.drop_probability = fault_permille / 1000.0;
    }
    if (churn_permille > 0) {
      nopt.faults.churn = ecd::core::make_churn_plan(g, seed, churn_permille);
    }
    ecd::congest::Network net(g, nopt);
    std::vector<std::unique_ptr<ecd::congest::VertexAlgorithm>> algos;
    algos.reserve(g.num_vertices());
    for (int v = 0; v < g.num_vertices(); ++v) {
      algos.push_back(std::make_unique<ProfileFloodAlgo>(v == 0));
    }
    const auto stats = net.run(algos);
    std::printf("family=%s n=%d m=%d threads=%d rounds=%lld\n", family.c_str(),
                g.num_vertices(), g.num_edges(), threads,
                static_cast<long long>(stats.rounds));
    title = "flood (" + family + ")";
  } else if (workload == "mis") {
    ecd::congest::NetworkOptions nopt;
    nopt.num_threads = threads;
    nopt.sparse_serial_threshold = sparse_threshold;
    nopt.profiler = &profiler;
    if (churn_permille > 0) {
      nopt.faults.churn = ecd::core::make_churn_plan(g, seed, churn_permille);
    }
    const auto r = ecd::baselines::luby_mis(g, seed, nopt);
    std::printf("family=%s n=%d m=%d threads=%d mis=%zu\n", family.c_str(),
                g.num_vertices(), g.num_edges(), threads,
                r.independent_set.size());
    title = "luby_mis (" + family + ")";
  } else {
    ecd::core::FrameworkOptions fopt;
    fopt.seed = seed;
    fopt.profiler = &profiler;
    fopt.num_threads = threads;
    fopt.sparse_serial_threshold = sparse_threshold;
    if (distributed) {
      fopt.decomposition_mode = ecd::core::DecompositionMode::kDistributed;
    }
    if (fault_permille > 0) {
      fopt.faults.drop_probability = fault_permille / 1000.0;
      fopt.faults.seed = seed;
    }
    auto p = ecd::core::partition_and_gather(g, eps, fopt);
    std::vector<std::int64_t> answers(g.num_vertices());
    for (int v = 0; v < g.num_vertices(); ++v) answers[v] = v;
    ecd::core::return_results(p, answers, "result return (reversed walks)");
    std::printf("family=%s n=%d m=%d eps=%.3f threads=%d clusters=%d\n",
                family.c_str(), g.num_vertices(), g.num_edges(), eps, threads,
                p.decomposition.num_clusters);
    title = "partition_and_gather (" + family + ")";
  }

  const auto summary = profiler.summary();
  std::printf("%s", ecd::congest::format_profile_table(summary).c_str());

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  ecd::congest::ProfileReportContext ctx;
  ctx.title = title;
  ctx.info = {{"workload", workload},
              {"family", family},
              {"n", std::to_string(g.num_vertices())},
              {"m", std::to_string(g.num_edges())},
              {"eps", std::to_string(eps)},
              {"seed", std::to_string(seed)},
              {"threads", std::to_string(threads)},
              {"fault_permille", std::to_string(fault_permille)},
              {"churn_permille", std::to_string(churn_permille)}};
  ecd::congest::write_profile_report(out, profiler, ctx);
  std::printf("wrote %s (ecd-profile-v1)\n", out_path.c_str());
  if (!timeline_path.empty()) {
    std::ofstream tl(timeline_path);
    if (!tl) {
      std::fprintf(stderr, "cannot write %s\n", timeline_path.c_str());
      return 1;
    }
    profiler.write_chrome_trace(tl);
    std::printf("wrote %s (chrome trace, one tid per shard)\n",
                timeline_path.c_str());
  }
  return 0;
}

int cmd_decompose(const Options& o) {
  const Graph g = load(o.input);
  const auto p = ecd::core::partition_and_gather(g, o.eps, framework_options(o));
  std::printf("n=%d m=%d clusters=%d inter-cluster=%d (budget %.0f) phi=%.5f\n",
              g.num_vertices(), g.num_edges(), p.decomposition.num_clusters,
              p.decomposition.inter_cluster_edges,
              p.eps_effective * g.num_edges(), p.decomposition.phi);
  std::printf("%s", p.ledger.to_string().c_str());
  maybe_write_dot(o, g, p.decomposition.cluster_of);
  return 0;
}

int cmd_mis(const Options& o) {
  const Graph g = load(o.input);
  ecd::core::MisApproxOptions opt;
  opt.framework = framework_options(o);
  const auto r = ecd::core::mis_approx(g, o.eps, opt);
  std::printf("independent set: %zu vertices (%d clusters, %d exact, "
              "%d conflicts removed)\n",
              r.independent_set.size(), r.num_clusters, r.clusters_exact,
              r.conflicts_removed);
  std::printf("%s", r.ledger.to_string().c_str());
  return 0;
}

int cmd_mcm(const Options& o) {
  const Graph g = load(o.input);
  ecd::core::McmApproxOptions opt;
  opt.framework = framework_options(o);
  const auto r = ecd::core::mcm_planar_approx(g, o.eps, opt);
  std::printf("matching size: %d (%d vertices pruned by star elimination)\n",
              r.matching_size, r.removed_vertices);
  std::printf("%s", r.ledger.to_string().c_str());
  return 0;
}

int cmd_mwm(const Options& o) {
  const Graph g = load(o.input);
  ecd::core::MwmApproxOptions opt;
  opt.framework = framework_options(o);
  const auto r = ecd::core::mwm_approx(g, o.eps, opt);
  std::printf("matching weight: %lld (%d phases)\n",
              static_cast<long long>(r.weight), r.phases);
  std::printf("%s", r.ledger.to_string().c_str());
  return 0;
}

int cmd_correlate(const Options& o) {
  Graph g = load(o.input);
  if (!g.is_signed()) {
    // Unsigned inputs: treat every edge as positive (documented default).
    std::fprintf(stderr, "note: input unsigned; all edges treated positive\n");
  }
  ecd::core::CorrelationApproxOptions opt;
  opt.framework = framework_options(o);
  const auto r = ecd::core::correlation_approx(g, o.eps, opt);
  std::printf("agreement score: %lld / %d edges\n",
              static_cast<long long>(r.score), g.num_edges());
  std::printf("%s", r.ledger.to_string().c_str());
  return 0;
}

int cmd_test_planarity(const Options& o) {
  const Graph g = load(o.input);
  ecd::core::PropertyTestOptions opt;
  opt.framework = framework_options(o);
  const auto r =
      ecd::core::property_test(g, ecd::seq::planar_property(), o.eps, opt);
  std::printf("%s (%d clusters fail planarity, %d fail degree condition)\n",
              r.accept ? "ACCEPT" : "REJECT", r.clusters_failing_property,
              r.clusters_failing_degree_condition);
  std::printf("%s", r.ledger.to_string().c_str());
  return r.accept ? 0 : 3;
}

int cmd_ldd(const Options& o) {
  const Graph g = load(o.input);
  ecd::core::LddApproxOptions opt;
  opt.framework = framework_options(o);
  const auto r = ecd::core::ldd_approx(g, o.eps, opt);
  std::printf("clusters=%d cut=%d (%.1f%% of edges) max-diameter=%d "
              "(target O(1/eps)=%.0f)\n",
              r.num_clusters, r.cut_edges,
              g.num_edges() ? 100.0 * r.cut_edges / g.num_edges() : 0.0,
              r.max_diameter, 1.0 / o.eps);
  std::printf("%s", r.ledger.to_string().c_str());
  maybe_write_dot(o, g, r.cluster_of);
  return 0;
}

int cmd_triangles(const Options& o) {
  const Graph g = load(o.input);
  const auto r = ecd::core::count_triangles_distributed(g);
  std::printf("triangles: %lld (out-degree bound %d)\n%s",
              static_cast<long long>(r.triangles), r.out_degree_bound,
              r.ledger.to_string().c_str());
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  std::string spec_path, jsonl_path, progress_path, out_path = "ecd_sweep.json";
  int workers = 1, top_k = 4, repeat = 1;
  int progress_interval_ms = 1000, stall_seconds = 30;
  bool cold = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (arg == "--jsonl" && i + 1 < argc) {
      jsonl_path = argv[++i];
    } else if (arg == "--progress" && i + 1 < argc) {
      progress_path = argv[++i];
    } else if (arg == "--progress-interval-ms" && i + 1 < argc) {
      progress_interval_ms = std::atoi(argv[++i]);
    } else if (arg == "--stall-seconds" && i + 1 < argc) {
      stall_seconds = std::atoi(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--top" && i + 1 < argc) {
      top_k = std::atoi(argv[++i]);
    } else if (arg == "--repeat" && i + 1 < argc) {
      repeat = std::atoi(argv[++i]);
    } else if (arg == "--cold") {
      cold = true;
    } else {
      usage();
    }
  }
  if (spec_path.empty() || repeat < 1) usage();
  std::ifstream spec_in(spec_path);
  if (!spec_in) {
    std::fprintf(stderr, "cannot open %s\n", spec_path.c_str());
    return 1;
  }
  std::ostringstream spec_text;
  spec_text << spec_in.rdbuf();
  try {
    const ecd::core::SweepSpec spec =
        ecd::core::parse_sweep_spec(spec_text.str());
    ecd::core::SweepEngine engine;
    ecd::core::SweepOptions opt;
    opt.workers = workers;
    opt.reuse = !cold;
    opt.report_top_edges = top_k;
    opt.progress_interval_ms = progress_interval_ms;
    opt.stall_seconds = stall_seconds;
    std::ofstream jsonl_out;
    if (!jsonl_path.empty()) {
      jsonl_out.open(jsonl_path);
      if (!jsonl_out) {
        std::fprintf(stderr, "cannot open %s\n", jsonl_path.c_str());
        return 1;
      }
    }
    // Progress heartbeats go to a file or, with "-", to stderr (where they
    // interleave with the pass summaries a human is already watching).
    std::ofstream progress_file;
    if (!progress_path.empty()) {
      if (progress_path == "-") {
        opt.progress = &std::cerr;
      } else {
        progress_file.open(progress_path);
        if (!progress_file) {
          std::fprintf(stderr, "cannot open %s\n", progress_path.c_str());
          return 1;
        }
        opt.progress = &progress_file;
      }
    }
    const ecd::core::SweepResult* result = nullptr;
    for (int pass = 0; pass < repeat; ++pass) {
      // Only the final pass streams JSONL — earlier passes exist to show
      // the warm-cache throughput, and duplicated report lines would make
      // the run ids ambiguous.
      ecd::core::SweepOptions pass_opt = opt;
      if (pass + 1 != repeat || jsonl_path.empty()) pass_opt.jsonl = nullptr;
      else pass_opt.jsonl = &jsonl_out;
      const ecd::core::SweepResult& r = engine.run(spec, pass_opt);
      std::printf(
          "pass %d: %zu runs in %.3f ms  (%.1f runs/s, graphs built %lld, "
          "networks built %lld, cache hits %lld)\n",
          pass + 1, r.records.size(), r.wall_ns / 1e6, r.runs_per_sec(),
          static_cast<long long>(r.graphs_built),
          static_cast<long long>(r.networks_built),
          static_cast<long long>(r.cache_hits));
      result = &r;
    }
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    out << "{\"schema\":\"ecd-sweep-v1\",\"cells\":" << result->records.size()
        << ",\"workers\":" << workers << ",\"repeat\":" << repeat
        << ",\"cold\":" << (cold ? "true" : "false")
        << ",\"aggregate\":" << result->aggregate_json()
        << ",\"wall\":" << result->wall_json() << "}\n";
    std::printf("aggregate: %s\n", result->aggregate_json().c_str());
    if (!jsonl_path.empty()) std::printf("wrote %s\n", jsonl_path.c_str());
    std::printf("wrote %s\n", out_path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep failed: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return cmd_gen(argc, argv);
  if (cmd == "trace") return cmd_trace(argc, argv);
  if (cmd == "report") return cmd_report(argc, argv);
  if (cmd == "profile") return cmd_profile(argc, argv);
  if (cmd == "sweep") return cmd_sweep(argc, argv);
  if (argc < 3) usage();
  const Options o = parse(argc, argv, 2);
  if (cmd == "decompose") return cmd_decompose(o);
  if (cmd == "mis") return cmd_mis(o);
  if (cmd == "mcm") return cmd_mcm(o);
  if (cmd == "mwm") return cmd_mwm(o);
  if (cmd == "correlate") return cmd_correlate(o);
  if (cmd == "test-planarity") return cmd_test_planarity(o);
  if (cmd == "ldd") return cmd_ldd(o);
  if (cmd == "triangles") return cmd_triangles(o);
  usage();
}
