// Community detection as correlation clustering (Theorem 1.3, §3.3).
//
// A geographic social network (planar triangulation) carries +/- edges:
// friends inside planted communities, rivals across, with label noise. The
// framework recovers a clustering whose agreement score approaches the
// optimum; the KwikCluster pivot heuristic is shown for contrast.
//
//   ./community_detection [n] [noise]
#include <cstdio>
#include <cstdlib>

#include "src/baselines/pivot_correlation.h"
#include "src/core/correlation.h"
#include "src/graph/generators.h"
#include "src/seq/correlation.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 400;
  const double noise = argc > 2 ? std::atof(argv[2]) : 0.05;

  ecd::graph::Rng rng(11);
  auto base = ecd::graph::random_maximal_planar(n, rng);
  const int community_size = 16;
  const auto g = base.with_signs(
      ecd::graph::planted_signs(base, community_size, noise, rng));
  std::printf(
      "social network: n=%d, m=%d, planted communities of ~%d, noise %.2f\n",
      g.num_vertices(), g.num_edges(), community_size, noise);

  const double eps = 0.2;
  const auto ours = ecd::core::correlation_approx(g, eps);
  const auto pivot = ecd::baselines::pivot_correlation(g, rng);
  const auto pivot_score = ecd::seq::agreement_score(g, pivot);

  std::printf("\nagreement scores (max %d = every edge consistent):\n",
              g.num_edges());
  std::printf("  framework (eps=%.2f):   %lld  (%.1f%% of edges)\n", eps,
              static_cast<long long>(ours.score),
              100.0 * ours.score / g.num_edges());
  std::printf("  pivot/KwikCluster:      %lld  (%.1f%% of edges)\n",
              static_cast<long long>(pivot_score),
              100.0 * pivot_score / g.num_edges());
  std::printf("  |E|/2 trivial bound:    %d\n", g.num_edges() / 2);
  std::printf("\nframework clusters: %d (%d solved exactly)\n",
              ours.num_clusters, ours.clusters_exact);
  std::printf("\nround ledger:\n%s", ours.ledger.to_string().c_str());
  return 0;
}
