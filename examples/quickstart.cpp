// Quickstart: decompose a planar network, gather each cluster at its
// leader, and inspect what the framework produced (Theorem 2.6 end-to-end).
//
//   ./quickstart [n] [eps]
#include <cstdio>
#include <cstdlib>

#include "src/core/framework.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 400;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.2;

  ecd::graph::Rng rng(42);
  const auto g = ecd::graph::random_maximal_planar(n, rng);
  std::printf("network: random planar triangulation, n=%d m=%d (density %.2f)\n",
              g.num_vertices(), g.num_edges(), g.edge_density());

  const auto partition = ecd::core::partition_and_gather(g, eps);

  std::printf("\n(eps, phi) expander decomposition with eps=%.2f:\n", eps);
  std::printf("  clusters:            %d\n",
              partition.decomposition.num_clusters);
  std::printf("  inter-cluster edges: %d (budget %.0f)\n",
              partition.decomposition.inter_cluster_edges,
              partition.eps_effective * g.num_edges());
  std::printf("  phi target:          %.5f\n", partition.decomposition.phi);
  std::printf("  gather complete:     %s\n",
              partition.gather_complete ? "yes" : "NO");

  std::printf("\nper-cluster view (leader = max cluster-degree vertex):\n");
  std::printf("  %8s %8s %8s %10s %12s\n", "cluster", "size", "edges",
              "leader", "leader-deg");
  for (std::size_t c = 0; c < partition.clusters.size() && c < 12; ++c) {
    const auto& cluster = partition.clusters[c];
    std::printf("  %8zu %8zu %8d %10d %12d\n", c, cluster.members.size(),
                cluster.subgraph.graph.num_edges(), cluster.leader,
                cluster.subgraph.graph.degree(cluster.leader_local));
  }
  if (partition.clusters.size() > 12) {
    std::printf("  ... (%zu more)\n", partition.clusters.size() - 12);
  }

  std::printf("\nround ledger (measured = simulated CONGEST rounds,\n"
              "              modeled  = Thm 2.1 decomposition formula):\n%s",
              partition.ledger.to_string().c_str());

  // Same pipeline with the fully distributed decomposition: the modeled
  // column disappears because the construction itself runs on the simulator.
  ecd::core::FrameworkOptions opt;
  opt.decomposition_mode = ecd::core::DecompositionMode::kDistributed;
  const auto measured = ecd::core::partition_and_gather(g, eps, opt);
  std::printf("\nsame run, DecompositionMode::kDistributed:\n%s",
              measured.ledger.to_string().c_str());
  return 0;
}
