// E19: decomposition quality vs topology churn rate (EXPERIMENTS.md).
//
// A network is decomposed once, then a deterministic churn schedule —
// the same plans the simulator's fault layer fires between rounds — is
// mirrored onto the graph at increasing rates. For each rate the
// decomposition is repaired two ways:
//
//   * incrementally (expander::refresh_decomposition): only the pieces
//     touched by an event endpoint are re-run, clean pieces splice
//     through unchanged;
//   * from scratch (distributed_expander_decompose on the churned graph):
//     the full-cost baseline the repair must beat.
//
// Both costs are *measured* CONGEST rounds of the distributed
// construction. The table shows the trade: at low churn the incremental
// repair is far cheaper, at the cost of inter-cluster drift above the ε
// budget (clean pieces are never re-cut); past the fallback fraction the
// repair degenerates into the full rebuild and the drift resets.
//
// The topology is a chain of 4x4 grid blocks joined by single bridge
// edges (the guaranteed multi-cluster family from multicluster_test): a
// block's conductance (~0.17) clears the target φ so blocks stay whole,
// the bridges get cut, and a churn event dirties only the block(s) of its
// endpoints.
//
//   ./churn_experiment [blocks] [eps]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/core/sweep.h"
#include "src/expander/distributed_decomposition.h"
#include "src/expander/incremental.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace {

// Chain of 4x4 grids, last cell of block i bridged to first cell of i+1.
ecd::graph::Graph grid_chain(int blocks) {
  std::vector<ecd::graph::Graph> parts(blocks, ecd::graph::grid(4, 4));
  const ecd::graph::Graph u = ecd::graph::disjoint_union(parts);
  ecd::graph::GraphBuilder b(u.num_vertices());
  for (const ecd::graph::Edge& e : u.edges()) b.add_edge(e.u, e.v);
  for (int i = 0; i + 1 < blocks; ++i) {
    b.add_edge(16 * i + 15, 16 * (i + 1));
  }
  return std::move(b).build();
}

double min_certified_phi(const std::vector<double>& phis) {
  if (phis.empty()) return 0.0;
  return *std::min_element(phis.begin(), phis.end());
}

}  // namespace

int main(int argc, char** argv) {
  const int blocks = argc > 1 ? std::atoi(argv[1]) : 32;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.2;
  const std::uint64_t topo_seed = 7;

  const auto g = grid_chain(blocks);
  std::printf("network: chain of %d 4x4 grid blocks, n=%d, m=%d, eps=%.2f\n",
              blocks, g.num_vertices(), g.num_edges(), eps);

  ecd::expander::DistributedDecompositionOptions opt;
  opt.phi = 0.1;  // blocks (~0.17) stay whole, bridges (~0.01) get cut
  opt.seed = topo_seed;
  const auto initial =
      ecd::expander::distributed_expander_decompose(g, eps, opt);
  std::printf(
      "initial decomposition: %d clusters, %d/%d inter-cluster edges "
      "(%.1f%%), built in %lld measured rounds\n\n",
      initial.decomposition.num_clusters,
      initial.decomposition.inter_cluster_edges, g.num_edges(),
      100.0 * initial.decomposition.inter_cluster_edges / g.num_edges(),
      static_cast<long long>(initial.measured_rounds));

  std::printf("%7s %7s %6s %6s %9s %9s %8s %9s %9s %5s\n", "churn", "events",
              "dirtyC", "dirtyV", "inter%inc", "inter%ful", "min_phi",
              "rounds_in", "rounds_fu", "fall");
  for (const int churn_permille : {10, 50, 150}) {
    const auto plan =
        ecd::core::make_churn_plan(g, topo_seed, churn_permille);
    const auto churned = ecd::expander::apply_churn_to_graph(g, plan);

    ecd::expander::IncrementalRefreshOptions iopt;
    iopt.decomposition = opt;
    const auto inc = ecd::expander::refresh_decomposition(
        initial.decomposition, churned, plan, eps, iopt);
    const auto full =
        ecd::expander::distributed_expander_decompose(churned, eps, opt);

    const double denom = std::max(1, churned.num_edges());
    std::printf(
        "%6d‰ %7zu %6d %6d %8.1f%% %8.1f%% %8.4f %9lld %9lld %5s\n",
        churn_permille, plan.size(), inc.dirty_clusters, inc.dirty_vertices,
        100.0 * inc.decomposition.inter_cluster_edges / denom,
        100.0 * full.decomposition.inter_cluster_edges / denom,
        min_certified_phi(inc.decomposition.cluster_phi_certified),
        static_cast<long long>(inc.rounds),
        static_cast<long long>(full.measured_rounds),
        inc.fell_back_to_full ? "yes" : "no");
  }

  std::printf(
      "\ninter%%: inter-cluster edge fraction of the churned graph after\n"
      "repair (incremental vs full rebuild); min_phi: smallest certified\n"
      "per-cluster conductance after the incremental repair; rounds:\n"
      "measured CONGEST rounds of each repair. The incremental column\n"
      "should sit well below the full one until the dirty region crosses\n"
      "the fallback fraction.\n");
  return 0;
}
