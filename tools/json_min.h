// Minimal recursive-descent JSON parser (header-only, no dependencies).
//
// Exists so the regression gate (tools/bench_compare) and the structure
// tests (tests/metrics_test.cpp, tests/trace_test.cpp) can *parse* the JSON
// the library emits instead of pattern-matching substrings — without adding
// a third-party dependency the container may not have. Scope is exactly
// what those consumers need: the full JSON value grammar, objects kept in
// insertion order with O(n) find(), numbers as double, \uXXXX escapes
// decoded to UTF-8 for the Basic Multilingual Plane (surrogate halves —
// U+D800..U+DFFF, i.e. astral-plane pairs — throw a clear error rather
// than emitting ill-formed UTF-8). Errors throw std::runtime_error with a
// byte offset.
#pragma once

#include <cctype>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ecd::jsonmin {

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

struct Value {
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> items;                               // kArray
  std::vector<std::pair<std::string, Value>> members;     // kObject

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  // First member with the given key; nullptr when absent or not an object.
  const Value* find(std::string_view key) const {
    if (type != Type::kObject) return nullptr;
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  // find() that throws instead of returning nullptr.
  const Value& at(std::string_view key) const {
    if (const Value* v = find(key)) return *v;
    throw std::runtime_error("jsonmin: missing key '" + std::string(key) +
                             "'");
  }
};

namespace detail {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after top-level value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("jsonmin: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.type = Type::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail("unexpected character");
    }
  }

  static Value make_bool(bool b) {
    Value v;
    v.type = Type::kBool;
    v.boolean = b;
    return v;
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type = Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type = Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            unsigned nibble;
            if (h >= '0' && h <= '9') {
              nibble = static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              nibble = static_cast<unsigned>(h - 'a') + 10;
            } else if (h >= 'A' && h <= 'F') {
              nibble = static_cast<unsigned>(h - 'A') + 10;
            } else {
              fail("bad \\u escape");
            }
            cp = (cp << 4) | nibble;
          }
          pos_ += 4;
          // BMP code points decode to 1–3 UTF-8 bytes. Surrogate halves
          // would need pair reassembly into an astral code point; no
          // producer this parser reads emits them, so reject loudly
          // instead of emitting ill-formed UTF-8.
          if (cp >= 0xD800 && cp <= 0xDFFF) {
            fail("\\u surrogate pair escapes are not supported");
          }
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else {
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    Value v;
    v.type = Type::kNumber;
    v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace detail

// Parses a complete JSON document; throws std::runtime_error on any
// syntax error (with a byte offset) or trailing content.
inline Value parse(std::string_view text) {
  return detail::Parser(text).parse_document();
}

}  // namespace ecd::jsonmin
