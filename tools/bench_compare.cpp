// CLI half of the bench regression gate; logic in tools/bench_compare.h.
//
//   bench_compare <baseline.json> <current.json> [--threshold <frac>]
//                 [--alloc-slack <x>]
//
// Exit codes: 0 = no regression, 1 = regression detected, 2 = bad
// invocation or unreadable/invalid input. CI runs it as
//   ./build/tools/bench_compare bench/baseline.json BENCH_network.json
#include "tools/bench_compare.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace ecd::tools {

namespace {

struct Row {
  std::map<std::string, double> counters;
};

// name -> counters, in snapshot order for deterministic reporting.
std::vector<std::pair<std::string, Row>> rows_of(const jsonmin::Value& doc,
                                                 const char* which) {
  const jsonmin::Value* schema = doc.find("schema");
  if (!schema || !schema->is_string() || schema->string != "ecd-bench-v1") {
    throw std::runtime_error(std::string(which) +
                             ": not an ecd-bench-v1 snapshot");
  }
  const jsonmin::Value& rows = doc.at("rows");
  if (!rows.is_array()) {
    throw std::runtime_error(std::string(which) + ": \"rows\" is not an array");
  }
  std::vector<std::pair<std::string, Row>> out;
  for (const jsonmin::Value& r : rows.items) {
    const jsonmin::Value& name = r.at("name");
    if (!name.is_string()) {
      throw std::runtime_error(std::string(which) + ": row without a name");
    }
    Row row;
    const jsonmin::Value& counters = r.at("counters");
    for (const auto& [cname, cvalue] : counters.members) {
      if (cvalue.is_number()) row.counters[cname] = cvalue.number;
    }
    out.emplace_back(name.string, std::move(row));
  }
  return out;
}

bool ends_with(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// Splits a benchmark name's "threads:K" axis out of the row name:
// "BM_Flood/n:1024/threads:4/metrics:0" -> key "BM_Flood/n:1024/metrics:0",
// threads 4. Rows without the axis return threads = -1 and the name itself,
// so they never pair.
struct ThreadsAxis {
  std::string key;
  long threads = -1;
};

ThreadsAxis split_threads_axis(const std::string& name) {
  std::string::size_type pos = 0;
  while ((pos = name.find("threads:", pos)) != std::string::npos) {
    if (pos == 0 || name[pos - 1] == '/') {
      const std::string::size_type value = pos + std::string_view("threads:").size();
      char* end = nullptr;
      const long threads = std::strtol(name.c_str() + value, &end, 10);
      const std::string::size_type stop =
          static_cast<std::string::size_type>(end - name.c_str());
      if (end != name.c_str() + value &&
          (stop == name.size() || name[stop] == '/')) {
        std::string key = name.substr(0, pos);
        if (stop < name.size()) {
          key += name.substr(stop + 1);  // drop one of the two slashes
        } else if (!key.empty() && key.back() == '/') {
          key.pop_back();
        }
        return {std::move(key), threads};
      }
    }
    ++pos;
  }
  return {name, -1};
}

std::string fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

CompareResult compare_bench_snapshots(const jsonmin::Value& baseline,
                                      const jsonmin::Value& current,
                                      const CompareOptions& options) {
  const auto base_rows = rows_of(baseline, "baseline");
  const auto cur_rows = rows_of(current, "current");
  std::map<std::string, const Row*> cur_by_name;
  for (const auto& [name, row] : cur_rows) cur_by_name[name] = &row;

  CompareResult result;
  for (const auto& [name, base] : base_rows) {
    const auto it = cur_by_name.find(name);
    if (it == cur_by_name.end()) {
      result.issues.push_back(
          {false, name, "", "row missing from current snapshot (filtered run?)"});
      continue;
    }
    const Row& cur = *it->second;
    ++result.rows_compared;
    for (const auto& [cname, base_value] : base.counters) {
      const auto cit = cur.counters.find(cname);
      // `_per_sec` covers every throughput counter, including the sweep
      // engine's `runs_per_sec` (bench_sweep): a warm-path regression there
      // trips the gate like any other throughput floor.
      const bool is_throughput = ends_with(cname, "_per_sec");
      const bool is_alloc =
          cname == "allocs_per_round" || cname == "allocs_per_run";
      if (!is_throughput && !is_alloc) continue;
      if (cit == cur.counters.end()) {
        result.issues.push_back(
            {false, name, cname, "counter missing from current snapshot"});
        continue;
      }
      const double cur_value = cit->second;
      ++result.counters_compared;
      result.deltas.push_back({name, cname, true, true, base_value, cur_value});
      if (is_throughput) {
        const double floor = base_value * (1.0 - options.throughput_threshold);
        if (cur_value < floor) {
          result.issues.push_back(
              {true, name, cname,
               "throughput regression: " + fmt(cur_value) + " < floor " +
                   fmt(floor) + " (baseline " + fmt(base_value) + ", -" +
                   fmt(options.throughput_threshold * 100) + "% allowed)"});
        }
      } else {
        const double ceiling = base_value + options.alloc_slack;
        if (cur_value > ceiling) {
          result.issues.push_back(
              {true, name, cname,
               "allocation regression: " + fmt(cur_value) + " > " +
                   fmt(ceiling) + " (baseline " + fmt(base_value) + " + slack " +
                   fmt(options.alloc_slack) + ")"});
        }
      }
    }
    // Informational deltas: profile_* counters from the execution profiler
    // (--ecd_profile), peak_rss_mb, and trace_overhead_pct. Never gated —
    // wall-clock fractions vary with the machine, peak RSS is process-wide
    // and monotonic across rows (a row measured after a bigger one inherits
    // its peak), and trace overhead is a ratio of two measurements whose
    // noise compounds — but surfaced so the table explains a throughput
    // delta or a memory blow-up.
    for (const auto& [cname, cur_value] : cur.counters) {
      if (cname.rfind("profile_", 0) != 0 && cname != "peak_rss_mb" &&
          cname != "trace_overhead_pct") {
        continue;
      }
      const auto bit = base.counters.find(cname);
      const bool has_base = bit != base.counters.end();
      result.deltas.push_back(
          {name, cname, false, has_base, has_base ? bit->second : 0.0,
           cur_value});
    }
  }
  // Informational parallel-speedup column, computed within the *current*
  // snapshot alone: every row with a threads:K axis (K > 1) whose threads:1
  // sibling — same benchmark, same remaining axes — is also present gets a
  // `<counter>_speedup_x` delta per throughput counter, valued K-row /
  // 1-row. Never gated (a single-core runner legitimately sits at ≤ 1.0);
  // it is the table that says whether threads buy anything at a given n.
  {
    std::map<std::string, const Row*> serial_by_key;
    for (const auto& [name, row] : cur_rows) {
      const ThreadsAxis axis = split_threads_axis(name);
      if (axis.threads == 1) serial_by_key[axis.key] = &row;
    }
    for (const auto& [name, row] : cur_rows) {
      const ThreadsAxis axis = split_threads_axis(name);
      if (axis.threads <= 1) continue;
      const auto sit = serial_by_key.find(axis.key);
      if (sit == serial_by_key.end()) continue;
      for (const auto& [cname, cur_value] : row.counters) {
        if (!ends_with(cname, "_per_sec")) continue;
        const auto bit = sit->second->counters.find(cname);
        // Skip (not divide) when the sibling lacks the counter or its value
        // is zero, negative or NaN — !(x > 0) is the NaN-safe form of the
        // guard; a ratio against any of those is noise, not a speedup.
        if (bit == sit->second->counters.end() || !(bit->second > 0.0)) {
          continue;
        }
        result.deltas.push_back({name, cname + "_speedup_x", false, false, 0.0,
                                 cur_value / bit->second});
      }
    }
  }
  if (result.rows_compared == 0) {
    result.issues.push_back(
        {true, "", "",
         "no common rows between baseline and current snapshot"});
  }
  result.ok = result.rows_compared > 0;
  for (const CompareIssue& issue : result.issues) {
    if (issue.fatal) result.ok = false;
  }
  return result;
}

std::string format_compare_result(const CompareResult& result) {
  std::ostringstream os;
  if (!result.deltas.empty()) {
    std::size_t row_w = std::string_view("benchmark").size();
    std::size_t counter_w = std::string_view("counter").size();
    for (const CounterDelta& d : result.deltas) {
      row_w = std::max(row_w, d.row.size());
      counter_w = std::max(counter_w, d.counter.size());
    }
    char line[512];
    std::snprintf(line, sizeof line, "%-*s  %-*s  %12s  %12s  %8s\n",
                  static_cast<int>(row_w), "benchmark",
                  static_cast<int>(counter_w), "counter", "baseline", "current",
                  "delta");
    os << line;
    for (const CounterDelta& d : result.deltas) {
      std::string base_s = d.has_baseline ? fmt(d.baseline) : "-";
      std::string delta_s;
      if (!d.gated) {
        delta_s = "info";
      } else if (d.baseline != 0.0) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%+.1f%%",
                      (d.current - d.baseline) / d.baseline * 100.0);
        delta_s = buf;
      } else {
        delta_s = fmt(d.current - d.baseline);
      }
      std::snprintf(line, sizeof line, "%-*s  %-*s  %12s  %12s  %8s\n",
                    static_cast<int>(row_w), d.row.c_str(),
                    static_cast<int>(counter_w), d.counter.c_str(),
                    base_s.c_str(), fmt(d.current).c_str(), delta_s.c_str());
      os << line;
    }
  }
  for (const CompareIssue& issue : result.issues) {
    os << (issue.fatal ? "FAIL" : "warn");
    if (!issue.row.empty()) {
      os << " [" << issue.row;
      if (!issue.counter.empty()) os << " : " << issue.counter;
      os << "]";
    }
    os << " " << issue.message << "\n";
  }
  os << (result.ok ? "OK" : "REGRESSION") << ": " << result.rows_compared
     << " rows, " << result.counters_compared << " gated counters\n";
  return os.str();
}

}  // namespace ecd::tools

#ifndef ECD_BENCH_COMPARE_NO_MAIN
namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <current.json> "
               "[--threshold <frac>] [--alloc-slack <x>]\n");
  std::exit(2);
}

std::string slurp(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_compare: cannot open %s\n", path);
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  ecd::tools::CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threshold" && i + 1 < argc) {
      options.throughput_threshold = std::atof(argv[++i]);
    } else if (arg == "--alloc-slack" && i + 1 < argc) {
      options.alloc_slack = std::atof(argv[++i]);
    } else if (!baseline_path) {
      baseline_path = argv[i];
    } else if (!current_path) {
      current_path = argv[i];
    } else {
      usage();
    }
  }
  if (!baseline_path || !current_path) usage();

  try {
    const auto baseline = ecd::jsonmin::parse(slurp(baseline_path));
    const auto current = ecd::jsonmin::parse(slurp(current_path));
    const auto result =
        ecd::tools::compare_bench_snapshots(baseline, current, options);
    std::printf("%s", ecd::tools::format_compare_result(result).c_str());
    return result.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
#endif  // ECD_BENCH_COMPARE_NO_MAIN
