// Bench regression gate (library half; the CLI wrapper is
// tools/bench_compare.cpp, the consumer is the release CI job).
//
// Compares two "ecd-bench-v1" snapshots (bench/bench_util.h's JSON
// reporter) row by row and decides whether `current` regressed against
// `baseline`:
//
//   * every counter ending in `_per_sec` is a throughput: it fails when
//     current < baseline * (1 - throughput_threshold)  (default -10%).
//     This includes the sweep engine's `runs_per_sec` (bench_sweep) — the
//     warm reuse path is gated like any other throughput;
//   * `allocs_per_round` and `allocs_per_run` are absolute contracts: they
//     fail when current > baseline + alloc_slack (default 0.5 — i.e.
//     "stays ~0" must stay ~0, but one-off warm-up jitter is tolerated);
//   * `peak_rss_mb` is reported as an informational delta, never gated:
//     peak RSS is process-wide and monotonic across a binary's rows, so a
//     row's value depends on what ran before it;
//   * rows present in the baseline but missing from the current snapshot
//     are warnings, not failures — CI smoke runs a --benchmark_filter
//     subset of the committed baseline;
//   * zero common rows is an input error, not a pass.
//
// The committed bench/baseline.json stores machine-independent *floors*
// (measured throughput divided by a generous safety factor), so the gate
// catches order-of-magnitude regressions without flaking on CI hardware
// variance; see DESIGN.md §13.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "tools/json_min.h"

namespace ecd::tools {

struct CompareOptions {
  double throughput_threshold = 0.10;  // fail below (1 - this) * baseline
  double alloc_slack = 0.5;            // fail above baseline + this
};

struct CompareIssue {
  bool fatal = false;  // true = regression/error, false = warning
  std::string row;
  std::string counter;  // empty for row-level issues
  std::string message;
};

// One baseline-vs-current counter pairing, collected for every common row —
// on passes as well as failures, so the CI log always shows how close each
// benchmark sat to its floor. Gated deltas cover the regression-checked
// counters (`*_per_sec`, `allocs_per_round`, `allocs_per_run`);
// informational deltas cover `peak_rss_mb` and `profile_*` counters —
// the latter when the current snapshot was taken under
// --ecd_profile (barrier-wait fraction, load imbalance — the baseline
// usually lacks them, hence has_baseline), and `<counter>_speedup_x`
// parallel-speedup ratios: for every current row with a threads:K axis
// (K > 1) whose threads:1 sibling at the same remaining axes is in the
// snapshot, the ratio of each `*_per_sec` counter across the pair.
struct CounterDelta {
  std::string row;
  std::string counter;
  bool gated = false;
  bool has_baseline = false;
  double baseline = 0.0;
  double current = 0.0;
};

struct CompareResult {
  // ok = at least one common row and no fatal issue.
  bool ok = false;
  int rows_compared = 0;
  int counters_compared = 0;
  std::vector<CompareIssue> issues;
  std::vector<CounterDelta> deltas;  // snapshot order: row, then counter
};

// `baseline` and `current` are parsed ecd-bench-v1 documents (jsonmin).
// Throws std::runtime_error when either document does not match the
// schema.
CompareResult compare_bench_snapshots(const jsonmin::Value& baseline,
                                      const jsonmin::Value& current,
                                      const CompareOptions& options = {});

// Formats the result as the text the CLI prints: the per-benchmark delta
// table (printed on pass and fail alike), one line per issue, then a
// summary line.
std::string format_compare_result(const CompareResult& result);

}  // namespace ecd::tools
