// Substrate microbenchmark — the CONGEST simulator hot loop itself, with no
// algorithmic work on top (EXPERIMENTS.md "Simulator substrate").
//
// Three traffic shapes over grid graphs at n ∈ {1k, 10k, 100k}:
//   flood      one wavefront: every vertex forwards a value once, then the
//              run drains (rounds ≈ diameter, messages = 2m). Dominated by
//              per-round fixed costs — the delivery scan and termination
//              detection.
//   ping_pong  full-duplex saturation: every vertex sends on every port for
//              a fixed number of rounds (messages/round = 2m). Dominated by
//              per-message costs — send, enforcement, delivery.
//   tree       convergecast-style: one token per vertex climbs a BFS tree at
//              bandwidth 4 — the gather traffic pattern of Theorem 2.6.
//
// Every workload takes a trailing `threads` axis (NetworkOptions::
// num_threads); rows at threads > 1 measure the sharded parallel round
// loop (DESIGN.md §11) against the serial baseline on the same graph, and
// allocs_per_round must stay ~0 either way (per-shard scratch is
// preallocated in the Network constructor).
//
// Counters:
//   rounds_per_sec     simulated rounds per wall-clock second
//   messages_per_sec   delivered messages per wall-clock second
//   allocs_per_round   heap allocations per round during one steady-state
//                      run (warm Network, excludes per-run algorithm
//                      construction); ~0 is the substrate's contract
//
// The Network is constructed outside the timed loop and reused across
// iterations — the framework and the distributed decomposition run dozens
// of Network::run calls on the same graph, so cached-topology reuse is the
// representative usage, not a bench trick.
#define ECD_BENCH_COUNT_ALLOCS 1

#include <chrono>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/congest/metrics.h"
#include "src/congest/network.h"
#include "src/congest/trace.h"

namespace {

using namespace ecd;
using congest::Context;
using congest::Message;
using congest::Network;
using congest::NetworkOptions;
using congest::RunStats;
using congest::VertexAlgorithm;
using graph::VertexId;

// One wavefront: the source announces, everyone forwards on first receipt.
class FloodAlgo final : public VertexAlgorithm {
 public:
  explicit FloodAlgo(bool is_source) : value_(is_source ? 1 : -1) {}

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    if (ctx.round() == 0) {
      if (value_ != -1) forward(ctx);
      return;
    }
    if (value_ != -1) return;
    for (int p = 0; p < ctx.num_ports(); ++p) {
      if (!ctx.inbox(p).empty()) {
        value_ = ctx.inbox(p)[0].words[0];
        forward(ctx);
        return;
      }
    }
  }
  bool finished() const override { return started_ && !sent_; }

 private:
  void forward(Context& ctx) {
    sent_ = true;
    for (int p = 0; p < ctx.num_ports(); ++p) ctx.send(p, {{value_}});
  }
  std::int64_t value_;
  bool started_ = false;
  bool sent_ = false;
};

// Saturation: every directed edge carries one message every round.
class PingPongAlgo final : public VertexAlgorithm {
 public:
  explicit PingPongAlgo(int rounds) : rounds_(rounds) {}

  void round(Context& ctx) override {
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) sink_ += m.words[0];
    }
    if (ctx.round() < rounds_) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{static_cast<std::int64_t>(ctx.id()), sink_ & 1}});
      }
    } else {
      done_ = true;
    }
  }
  bool finished() const override { return done_; }

 private:
  int rounds_;
  std::int64_t sink_ = 0;
  bool done_ = false;
};

// One token per vertex climbs to the root along a host-computed BFS tree.
class TreeClimbAlgo final : public VertexAlgorithm {
 public:
  TreeClimbAlgo(bool is_root, int parent_port, int bandwidth)
      : is_root_(is_root), parent_port_(parent_port), bandwidth_(bandwidth) {}

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) held_ += m.words[0];
    }
    if (ctx.round() == 0) held_ += 1;  // this vertex's own token
    if (is_root_) {
      absorbed_ += held_;
      held_ = 0;
      return;
    }
    if (parent_port_ < 0) return;
    // Tokens are fungible counts here: ship up to `bandwidth_` per round,
    // one message per token, like the gather primitives do.
    while (held_ > 0 && ctx.round() > 0) {
      int batch = 0;
      while (held_ > 0 && batch < bandwidth_) {
        ctx.send(parent_port_, {{1}});
        --held_;
        ++batch;
        sent_ = true;
      }
      break;
    }
  }
  bool finished() const override { return started_ && held_ == 0 && !sent_; }

 private:
  bool is_root_;
  int parent_port_;
  int bandwidth_;
  std::int64_t held_ = 0;
  std::int64_t absorbed_ = 0;
  bool started_ = false;
  bool sent_ = false;
};

graph::Graph grid_of(int n) {
  int side = 1;
  while (side * side < n) ++side;
  return graph::grid(side, side);
}

// Host-side BFS from vertex 0: parent port of every vertex (-1 for root).
std::vector<int> bfs_parent_ports(const graph::Graph& g) {
  std::vector<int> parent_port(g.num_vertices(), -1);
  std::vector<char> seen(g.num_vertices(), 0);
  std::vector<VertexId> queue{0};
  seen[0] = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId v = queue[head];
    const auto nbrs = g.neighbors(v);
    for (int p = 0; p < static_cast<int>(nbrs.size()); ++p) {
      const VertexId u = nbrs[p];
      if (seen[u]) continue;
      seen[u] = 1;
      // u's parent is v; find u's port back to v.
      const auto unbrs = g.neighbors(u);
      for (int q = 0; q < static_cast<int>(unbrs.size()); ++q) {
        if (unbrs[q] == v) parent_port[u] = q;
      }
      queue.push_back(u);
    }
  }
  return parent_port;
}

template <typename MakeAlgos>
void run_substrate_bench(benchmark::State& state, const graph::Graph& g,
                         const NetworkOptions& opt, MakeAlgos make_algos) {
  // --ecd_profile: attach the execution profiler to the run under test so
  // the snapshot records barrier-wait fraction and load imbalance next to
  // the throughput counters. Off by default — the committed baselines (and
  // the ≤5% overhead budget they gate) are unprofiled.
  congest::ExecutionProfiler profiler;
  NetworkOptions run_opt = opt;
  if (bench::profile_requested()) run_opt.profiler = &profiler;
  Network net(g, run_opt);
  std::int64_t total_rounds = 0;
  std::int64_t total_messages = 0;
  for (auto _ : state) {
    auto algos = make_algos();
    const RunStats stats = net.run(algos);
    total_rounds += stats.rounds;
    total_messages += stats.messages_sent;
  }
  // Steady-state allocation audit: one warm-up run (grows arena overflow /
  // algorithm-internal capacity), then count a second run. Algorithm
  // construction happens outside the scope — the substrate's allocations
  // are what is on trial.
  std::int64_t allocs = 0;
  std::int64_t audit_rounds = 0;
  {
    auto warm = make_algos();
    net.run(warm);
    auto audit = make_algos();
    bench::AllocScope scope;
    audit_rounds = net.run(audit).rounds;
    allocs = scope.delta();
  }
  state.counters["n"] = g.num_vertices();
  state.counters["m"] = g.num_edges();
  state.counters["threads"] = opt.num_threads;
  bench::register_rss_counter(state);
  if (bench::profile_requested()) {
    bench::register_profile_counters(state, profiler);
  }
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(total_rounds), benchmark::Counter::kIsRate);
  state.counters["messages_per_sec"] = benchmark::Counter(
      static_cast<double>(total_messages), benchmark::Counter::kIsRate);
  bench::register_alloc_counter(state, allocs, audit_rounds);
}

// The trailing `metrics` axis on the flood / ping-pong shapes attaches an
// always-on MetricsRegistry (DESIGN.md §13); metrics:1 vs metrics:0 on the
// same (n, threads) row is the E15 overhead measurement, and
// allocs_per_round must stay ~0 with metrics on — the registry's round
// path is array arithmetic on buffers preallocated by the Network.
void BM_Flood(benchmark::State& state) {
  const graph::Graph g = grid_of(static_cast<int>(state.range(0)));
  NetworkOptions opt;
  opt.num_threads = static_cast<int>(state.range(1));
  congest::MetricsRegistry metrics;
  if (state.range(2) != 0) opt.metrics = &metrics;
  run_substrate_bench(state, g, opt, [&] {
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    algos.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      algos.push_back(std::make_unique<FloodAlgo>(v == 0));
    }
    return algos;
  });
}

void BM_PingPong(benchmark::State& state) {
  const graph::Graph g = grid_of(static_cast<int>(state.range(0)));
  const int rounds = static_cast<int>(state.range(1));
  NetworkOptions opt;
  opt.num_threads = static_cast<int>(state.range(2));
  congest::MetricsRegistry metrics;
  if (state.range(3) != 0) opt.metrics = &metrics;
  run_substrate_bench(state, g, opt, [&] {
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    algos.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      algos.push_back(std::make_unique<PingPongAlgo>(rounds));
    }
    return algos;
  });
}

// Fault-injection overhead (DESIGN.md §12): the saturation workload under a
// mixed drop/duplicate/delay plan. `fault_permille` sets the drop and delay
// probabilities to f/1000 (duplicates at half that); 0 disables the plan and
// measures the zero-overhead fault-free path of the same binary. The
// steady-state allocation contract holds with faults on — delayed messages
// ride the arena slack reserved at construction, never the heap — so
// allocs_per_round must stay ~0 on every row.
void BM_FaultyPingPong(benchmark::State& state) {
  const graph::Graph g = grid_of(static_cast<int>(state.range(0)));
  const int rounds = static_cast<int>(state.range(1));
  const int permille = static_cast<int>(state.range(2));
  NetworkOptions opt;
  opt.num_threads = static_cast<int>(state.range(3));
  if (permille > 0) {
    opt.faults.seed = 0xb1a5;
    opt.faults.drop_probability = permille / 1000.0;
    opt.faults.duplicate_probability = permille / 2000.0;
    opt.faults.delay_probability = permille / 1000.0;
    opt.faults.max_delay_rounds = 2;
  }
  run_substrate_bench(state, g, opt, [&] {
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    algos.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      algos.push_back(std::make_unique<PingPongAlgo>(rounds));
    }
    return algos;
  });
}

// Trace overhead (DESIGN.md §18, EXPERIMENTS.md E20): the flood workload
// with a FlightRecorder attached — full event stream or sampled
// (round_period 16 × vertex_stride 8) — against an untraced reference
// measured inline on the same graph and thread count. The reported
// `trace_overhead_pct` is informational: tools/bench_compare prints it but
// never gates on it (it is a ratio of two measurements, so its run-to-run
// noise is the sum of both). The FlightRecorder is the sink on trial
// because it is the bounded one the simulator can afford at n = 10^6;
// allocs_per_round must stay ~0 with it attached, traced or sampled.
void BM_TracedFlood(benchmark::State& state) {
  const graph::Graph g = grid_of(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  const bool sampled = state.range(2) != 0;
  const auto make_algos = [&] {
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    algos.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      algos.push_back(std::make_unique<FloodAlgo>(v == 0));
    }
    return algos;
  };
  using clock = std::chrono::steady_clock;
  const auto run_ns = [](Network& net, auto& algos) {
    const auto t0 = clock::now();
    net.run(algos);
    return std::chrono::duration<double, std::nano>(clock::now() - t0)
        .count();
  };

  NetworkOptions base;
  base.num_threads = threads;

  // Untraced reference: same graph, same thread count, null sink.
  double ref_ns = 0;
  {
    Network ref(g, base);
    auto warm = make_algos();
    ref.run(warm);
    constexpr int kRefRuns = 3;
    for (int i = 0; i < kRefRuns; ++i) {
      auto algos = make_algos();
      ref_ns += run_ns(ref, algos);
    }
    ref_ns /= kRefRuns;
  }

  congest::FlightRecorder recorder;
  NetworkOptions opt = base;
  opt.trace = &recorder;
  if (sampled) {
    opt.trace_config.round_period = 16;
    opt.trace_config.vertex_stride = 8;
  }
  Network net(g, opt);
  std::int64_t total_rounds = 0;
  std::int64_t total_messages = 0;
  std::int64_t runs = 0;
  double traced_ns = 0;
  for (auto _ : state) {
    auto algos = make_algos();
    const auto t0 = clock::now();
    const RunStats stats = net.run(algos);
    traced_ns +=
        std::chrono::duration<double, std::nano>(clock::now() - t0).count();
    total_rounds += stats.rounds;
    total_messages += stats.messages_sent;
    ++runs;
  }
  std::int64_t allocs = 0;
  std::int64_t audit_rounds = 0;
  {
    auto warm = make_algos();
    net.run(warm);
    auto audit = make_algos();
    bench::AllocScope scope;
    audit_rounds = net.run(audit).rounds;
    allocs = scope.delta();
  }
  state.counters["n"] = g.num_vertices();
  state.counters["m"] = g.num_edges();
  state.counters["threads"] = threads;
  state.counters["sampled"] = sampled ? 1 : 0;
  bench::register_rss_counter(state);
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(total_rounds), benchmark::Counter::kIsRate);
  state.counters["messages_per_sec"] = benchmark::Counter(
      static_cast<double>(total_messages), benchmark::Counter::kIsRate);
  bench::register_alloc_counter(state, allocs, audit_rounds);
  if (runs > 0 && ref_ns > 0) {
    const double per_run = traced_ns / static_cast<double>(runs);
    state.counters["trace_overhead_pct"] = (per_run - ref_ns) / ref_ns * 100.0;
  }
}

void BM_TreeClimb(benchmark::State& state) {
  const graph::Graph g = grid_of(static_cast<int>(state.range(0)));
  const std::vector<int> parent_port = bfs_parent_ports(g);
  NetworkOptions opt;
  opt.bandwidth_tokens = 4;
  opt.num_threads = static_cast<int>(state.range(1));
  run_substrate_bench(state, g, opt, [&] {
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    algos.reserve(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      algos.push_back(std::make_unique<TreeClimbAlgo>(
          v == 0, parent_port[v], opt.bandwidth_tokens));
    }
    return algos;
  });
}

// The n sweep stays single-threaded (the serial baseline every other
// experiment rides on); the threads sweep runs at the large n rows, where
// per-round work amortizes the barrier, plus one small-n row the CI smoke
// exercises at 4 threads. The n ≥ 1M rows are the multi-million-vertex
// axis (EXPERIMENTS.md E17): flood at 1M/5M is the sparse-round fast
// path's home turf — its wavefront touches ~2·side vertices per round, so
// the per-round cost is the worklist, not n — and the threads sweep at 1M
// is the speedup curve the CI scaling smoke asserts on multi-core runners.
BENCHMARK(BM_Flood)
    ->ArgNames({"n", "threads", "metrics"})
    ->Args({1024, 1, 0})
    ->Args({10240, 1, 0})
    ->Args({102400, 1, 0})
    ->Args({1048576, 1, 0})
    ->Args({5000000, 1, 0})
    ->Args({1024, 4, 0})
    ->Args({102400, 2, 0})
    ->Args({102400, 4, 0})
    ->Args({102400, 8, 0})
    ->Args({1048576, 2, 0})
    ->Args({1048576, 4, 0})
    ->Args({1048576, 8, 0})
    ->Args({5000000, 4, 0})
    ->Args({1024, 1, 1})
    ->Args({1024, 4, 1})
    ->Args({102400, 1, 1})
    ->Args({102400, 4, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PingPong)
    ->ArgNames({"n", "rounds", "threads", "metrics"})
    ->Args({1024, 64, 1, 0})
    ->Args({10240, 64, 1, 0})
    ->Args({102400, 16, 1, 0})
    ->Args({1048576, 8, 1, 0})
    ->Args({1024, 64, 4, 0})
    ->Args({102400, 16, 2, 0})
    ->Args({102400, 16, 4, 0})
    ->Args({102400, 16, 8, 0})
    ->Args({1048576, 8, 4, 0})
    ->Args({1024, 64, 1, 1})
    ->Args({1024, 64, 4, 1})
    ->Args({102400, 16, 1, 1})
    ->Args({102400, 16, 4, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FaultyPingPong)
    ->ArgNames({"n", "rounds", "fault_permille", "threads"})
    ->Args({1024, 64, 0, 1})
    ->Args({1024, 64, 10, 1})
    ->Args({1024, 64, 100, 1})
    ->Args({10240, 64, 10, 1})
    ->Args({1024, 64, 10, 4})
    ->Args({102400, 16, 10, 4})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
// The E20 grid: serial vs sharded (threads 4) vs sampled, at the 100k CI
// row and the n = 10^6 row the experiment reports.
BENCHMARK(BM_TracedFlood)
    ->ArgNames({"n", "threads", "sampled"})
    ->Args({102400, 1, 0})
    ->Args({102400, 4, 0})
    ->Args({1048576, 1, 0})
    ->Args({1048576, 4, 0})
    ->Args({1048576, 1, 1})
    ->Args({1048576, 4, 1})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TreeClimb)
    ->ArgNames({"n", "threads"})
    ->Args({1024, 1})
    ->Args({10240, 1})
    ->Args({102400, 1})
    ->Args({1024, 4})
    ->Args({102400, 2})
    ->Args({102400, 4})
    ->Args({102400, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("network");
