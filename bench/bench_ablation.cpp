// Ablations for the design choices DESIGN.md calls out:
//   A1  walk bandwidth: Lemma 2.4 batches O(log n) messages per edge; what
//       happens to gather rounds at bandwidth 1, log n, 2 log n?
//   A2  MWM phases: how fast does the multi-phase stitching converge?
//   A3  MWM weighted vs unweighted decomposition volumes.
//   A4  decomposition exact-cut threshold: exact small cuts vs spectral.
#include <cmath>

#include "bench/bench_util.h"
#include "src/core/framework.h"
#include "src/core/mwm.h"
#include "src/expander/decomposition.h"
#include "src/seq/mwm.h"

namespace {

using namespace ecd;

void BM_WalkBandwidth(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int bandwidth = static_cast<int>(state.range(1));  // 0 = log n
  graph::Rng rng(4 + n);
  const graph::Graph g = graph::random_maximal_planar(n, rng);
  core::FrameworkOptions opt;
  opt.walk_bandwidth = bandwidth;
  core::Partition p;
  for (auto _ : state) {
    p = core::partition_and_gather(g, 0.3, opt);
  }
  std::int64_t gather = 0;
  for (const auto& e : p.ledger.entries()) {
    if (e.measured && e.label.starts_with("topology gather")) gather = e.stats.rounds;
  }
  state.SetLabel("A1_walk_bandwidth");
  state.counters["n"] = n;
  state.counters["bandwidth"] =
      bandwidth > 0 ? bandwidth
                    : std::ceil(std::log2(std::max(2, g.num_vertices())));
  state.counters["gather_rounds"] = static_cast<double>(gather);
}

BENCHMARK(BM_WalkBandwidth)
    ->Args({600, 1})
    ->Args({600, 0})
    ->Args({600, 20})
    ->Args({2000, 1})
    ->Args({2000, 0})
    ->Args({2000, 20})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MwmPhases(benchmark::State& state) {
  const int phases = static_cast<int>(state.range(0));
  graph::Rng rng(17);
  graph::Graph base = graph::grid(12, 12);
  const graph::Graph g =
      base.with_weights(graph::random_weights(base, 500, rng));
  core::MwmApproxOptions opt;
  opt.framework.decomposition.phi = 0.1;  // force multi-cluster
  opt.phases = phases;
  core::MwmApproxResult r;
  for (auto _ : state) {
    r = core::mwm_approx(g, 0.3, opt);
  }
  const auto exact = seq::matching_weight(g, seq::max_weight_matching(g));
  state.SetLabel("A2_mwm_phases");
  state.counters["phases"] = phases;
  state.counters["ratio"] =
      exact ? static_cast<double>(r.weight) / exact : 1.0;
}

BENCHMARK(BM_MwmPhases)->DenseRange(1, 10, 1)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_MwmVolumeMode(benchmark::State& state) {
  const bool weighted = state.range(0) != 0;
  const graph::Weight w_max = state.range(1);
  graph::Rng rng(23);
  graph::Graph base = graph::grid(12, 12);
  const graph::Graph g =
      base.with_weights(graph::random_weights(base, w_max, rng));
  core::MwmApproxOptions opt;
  opt.framework.decomposition.phi = 0.1;
  opt.weighted_decomposition = weighted;
  opt.phases = 4;
  core::MwmApproxResult r;
  for (auto _ : state) {
    r = core::mwm_approx(g, 0.3, opt);
  }
  const auto exact = seq::matching_weight(g, seq::max_weight_matching(g));
  state.SetLabel(weighted ? "A3_weighted_volumes" : "A3_unweighted_volumes");
  state.counters["W"] = static_cast<double>(w_max);
  state.counters["ratio"] =
      exact ? static_cast<double>(r.weight) / exact : 1.0;
}

BENCHMARK(BM_MwmVolumeMode)
    ->Args({0, 100})
    ->Args({1, 100})
    ->Args({0, 100000})
    ->Args({1, 100000})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_ExactCutThreshold(benchmark::State& state) {
  const int threshold = static_cast<int>(state.range(0));
  graph::Rng rng(29);
  const graph::Graph g = graph::random_planar(400, 700, rng);
  expander::DecompositionOptions opt;
  opt.exact_cut_threshold = threshold;
  opt.phi = 0.1;
  expander::ExpanderDecomposition d;
  for (auto _ : state) {
    d = expander::expander_decompose(g, 0.4, opt);
  }
  state.SetLabel("A4_exact_cut_threshold");
  state.counters["threshold"] = threshold;
  state.counters["clusters"] = d.num_clusters;
  state.counters["inter_frac"] =
      static_cast<double>(d.inter_cluster_edges) / g.num_edges();
  double cert = 1.0;
  for (double c : d.cluster_phi_certified) cert = std::min(cert, c);
  state.counters["phi_cert_min"] = cert;
}

BENCHMARK(BM_ExactCutThreshold)
    ->Arg(0)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// A5: modeled vs fully distributed decomposition in the framework — the
// distributed construction turns the ledger's modeled column to zero at the
// price of measured power-iteration/convergecast rounds.
void BM_DecompositionMode(benchmark::State& state) {
  const bool distributed = state.range(0) != 0;
  const int n = static_cast<int>(state.range(1));
  graph::Rng rng(37 + n);
  const graph::Graph g = graph::random_maximal_planar(n, rng);
  core::FrameworkOptions opt;
  opt.decomposition_mode = distributed ? core::DecompositionMode::kDistributed
                                       : core::DecompositionMode::kModeled;
  core::Partition p;
  for (auto _ : state) {
    p = core::partition_and_gather(g, 0.3, opt);
  }
  state.SetLabel(distributed ? "A5_distributed" : "A5_modeled");
  state.counters["n"] = n;
  state.counters["clusters"] = p.decomposition.num_clusters;
  state.counters["inter_frac"] =
      static_cast<double>(p.decomposition.inter_cluster_edges) /
      std::max(1, g.num_edges());
  state.counters["measured_rounds"] =
      static_cast<double>(p.ledger.measured_total());
  state.counters["modeled_rounds"] =
      static_cast<double>(p.ledger.modeled_total());
}

BENCHMARK(BM_DecompositionMode)
    ->Args({0, 400})
    ->Args({1, 400})
    ->Args({0, 1600})
    ->Args({1, 1600})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("ablation");
