// Sweep-engine throughput benchmark (EXPERIMENTS.md E18).
//
// Measures what the sweep engine exists for: amortizing Graph/Network
// construction across a run grid. Two fixed small grids (sweep_spec below:
// a 16-cell short-run shape and a 64-run mixed shape), each executed two
// ways:
//
//   BM_SweepWarm  the engine's steady state: caches populated by an
//                 untimed warm-up pass, every timed execution reuses
//                 every Graph and Network (graphs_built == networks_built
//                 == 0, asserted). The JSONL sink stays off so the warm
//                 path exercises its zero-allocation contract.
//   BM_SweepCold  the same grid with SweepOptions::reuse = false: every
//                 run constructs a fresh Graph + Network + algorithm
//                 vector — what a naive grid driver pays, and the
//                 denominator of E18's warm-vs-cold speedup.
//
// Counters:
//   runs_per_sec    completed simulator runs per wall-clock second
//                   (gated by bench_compare like every _per_sec counter)
//   allocs_per_run  heap allocations per run during warm executions
//                   (gated absolutely: the warm path promises 0)
//   peak_rss_mb     informational (process-wide, monotonic)
//
// Small n on purpose: construction dominates at small n, so that is where
// reuse pays and where a reuse regression shows up first. At large n the
// run itself dominates and warm≈cold — uninformative as a gate.
#define ECD_BENCH_COUNT_ALLOCS 1

#include <cstdint>

#include "bench/bench_util.h"
#include "src/core/sweep.h"

namespace {

using namespace ecd;
using namespace ecd::bench;
using core::SweepEngine;
using core::SweepOptions;
using core::SweepResult;
using core::SweepSpec;

// The E18 grids: serial cells only (run-level multiplexing is the CLI's
// job; the bench isolates per-run reuse cost on one thread). Two shapes:
//   short  sixteen 1-round pingpong cells over randomized topologies
//          (expander, tree) — the run is a few arena scans, so per-cell
//          cost is almost pure construction and topology generation. This
//          is where the reuse payoff is largest (the many-small-cells
//          regression grid) and the row the E18 speedup table quotes.
//   mixed  flood + MIS with faults on/off — longer runs, construction
//          amortized against real simulation work; the representative mix.
SweepSpec sweep_spec(int n, bool short_cells) {
  SweepSpec s;
  s.sizes = {n};
  s.topo_seeds = {1};
  s.run_seeds = {1, 2, 3, 4, 5, 6, 7, 8};
  s.threads = {1};
  if (short_cells) {
    // Randomized topologies: generation (random-regular sampling, random
    // trees) is the dominant per-cell cost, which is exactly what the
    // topology cache amortizes away.
    s.families = {"expander", "tree"};
    s.algorithms = {"pingpong"};
    s.fault_permille = {0};
    s.pingpong_rounds = 1;
  } else {
    s.families = {"grid", "tree"};
    s.algorithms = {"flood", "mis"};
    s.fault_permille = {0, 20};
  }
  return s;
}

void BM_SweepWarm(benchmark::State& state) {
  const SweepSpec spec = sweep_spec(static_cast<int>(state.range(0)),
                                    state.range(1) != 0);
  SweepEngine engine;
  SweepOptions opts;
  opts.workers = 1;
  (void)engine.run(spec, opts);  // populate the caches, untimed

  std::int64_t runs = 0;
  std::int64_t allocs = 0;
  for (auto _ : state) {
    const AllocScope scope;
    const SweepResult& r = engine.run(spec, opts);
    allocs += scope.delta();
    runs += static_cast<std::int64_t>(r.records.size());
    if (r.graphs_built != 0 || r.networks_built != 0) {
      state.SkipWithError("warm execution rebuilt state");
      return;
    }
    benchmark::DoNotOptimize(r.records.data());
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["cells"] = static_cast<double>(spec.num_cells());
  state.counters["runs_per_sec"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
  if (alloc_hooks_installed()) {
    state.counters["allocs_per_run"] =
        runs > 0 ? static_cast<double>(allocs) / static_cast<double>(runs) : 0.0;
  }
  register_rss_counter(state);
}

void BM_SweepCold(benchmark::State& state) {
  const SweepSpec spec = sweep_spec(static_cast<int>(state.range(0)),
                                    state.range(1) != 0);
  SweepEngine engine;
  SweepOptions opts;
  opts.workers = 1;
  opts.reuse = false;

  std::int64_t runs = 0;
  for (auto _ : state) {
    const SweepResult& r = engine.run(spec, opts);
    runs += static_cast<std::int64_t>(r.records.size());
    benchmark::DoNotOptimize(r.records.data());
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["cells"] = static_cast<double>(spec.num_cells());
  state.counters["runs_per_sec"] =
      benchmark::Counter(static_cast<double>(runs), benchmark::Counter::kIsRate);
  register_rss_counter(state);
}

BENCHMARK(BM_SweepWarm)
    ->ArgNames({"n", "short"})
    ->Args({256, 1})
    ->Args({256, 0})
    ->Args({1024, 0})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepCold)
    ->ArgNames({"n", "short"})
    ->Args({256, 1})
    ->Args({256, 0})
    ->Args({1024, 0})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("sweep");
