// E7 — Theorem 1.1: (1-ε)-approximate maximum *weight* matching on
// minor-free networks, across weight spreads W, against the exact
// sequential blossom optimum and the greedy 1/2-approximation.
//
// Counters:
//   ratio        ours / exact (>= 1 - eps expected)
//   greedy_ratio greedy heaviest-first / exact (~0.9 typical, 0.5 worst)
//   phases       refinement phases used
//   W            max edge weight
#include "bench/bench_util.h"
#include "src/core/mwm.h"
#include "src/seq/mwm.h"

namespace {

using namespace ecd;

void BM_Mwm(benchmark::State& state) {
  const auto family = static_cast<bench::Family>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const double eps = bench::eps_from_arg(state.range(2));
  const graph::Weight w_max = state.range(3);
  graph::Rng rng(88 + n);
  graph::Graph base = bench::make_graph(family, n, rng);
  const graph::Graph g =
      base.with_weights(graph::random_weights(base, w_max, rng));

  core::MwmApproxOptions opt;
  // The auto phase count ceil(4/eps)+2 is conservative; 8 phases already
  // reach the plateau on these instances (see bench_ablation A2) and keep
  // the simulated-round budget sane.
  opt.phases = 8;
  core::MwmApproxResult r;
  for (auto _ : state) {
    r = core::mwm_approx(g, eps, opt);
  }
  const auto exact = seq::max_weight_matching(g);
  const auto w_exact = seq::matching_weight(g, exact);
  const auto greedy = seq::greedy_weight_matching(g);

  state.SetLabel(bench::family_name(family));
  state.counters["n"] = g.num_vertices();
  state.counters["eps"] = eps;
  state.counters["W"] = static_cast<double>(w_max);
  state.counters["ours"] = static_cast<double>(r.weight);
  state.counters["exact"] = static_cast<double>(w_exact);
  state.counters["ratio"] =
      w_exact ? static_cast<double>(r.weight) / w_exact : 1.0;
  state.counters["greedy_ratio"] =
      w_exact
          ? static_cast<double>(seq::matching_weight(g, greedy)) / w_exact
          : 1.0;
  state.counters["phases"] = r.phases;
  state.counters["measured_rounds"] =
      static_cast<double>(r.ledger.measured_total());
}

void MwmArgs(benchmark::internal::Benchmark* b) {
  for (int eps_pm : {150, 300}) {
    for (std::int64_t w : {10, 1000, 1000000}) {
      // Grids stay small: with max degree 4 the leader absorbs walks
      // slowly (the Lemma 2.3 effect), so each gather costs many measured
      // rounds; high-degree planar families scale further.
      b->Args({static_cast<int>(bench::Family::kGrid), 144, eps_pm, w});
      b->Args({static_cast<int>(bench::Family::kRandomPlanar), 144, eps_pm, w});
      b->Args({static_cast<int>(bench::Family::kRandomPlanar), 400, eps_pm, w});
      b->Args({static_cast<int>(bench::Family::kTriangulation), 400, eps_pm, w});
    }
  }
}

BENCHMARK(BM_Mwm)->Apply(MwmArgs)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("mwm");
