// E3 + E12 — Lemma 2.4 random-walk gathering, measured against its
// O(φ^{-4} log³ n) prediction, and the LOCAL-model gather for contrast.
//
// Counters:
//   gather_rounds    measured CONGEST rounds for the walk gather
//   predicted        φ^{-4} log³ n (the lemma's bound, unit constant)
//   used_over_pred   gather_rounds / predicted (<< 1 expected: the bound
//                    has slack)
//   local_rounds     rounds of the LOCAL-model flood gather (≈ diameter)
//   local_max_words  largest single LOCAL message in words — the gap
//   congest_words    total words the CONGEST gather moved
//   trace_*          congestion counters from an untimed traced re-run
//                    (peak/p99 edge load, words per phase)
//   allocs_per_round heap allocations per simulated round across one whole
//                    partition_and_gather pipeline (host-side decomposition
//                    work included — contrast with bench_network, whose
//                    audit isolates the substrate and reads ~0)
#define ECD_BENCH_COUNT_ALLOCS 1

#include <cmath>

#include "bench/bench_util.h"
#include "src/baselines/local_gather.h"
#include "src/congest/primitives.h"
#include "src/core/framework.h"

namespace {

using namespace ecd;

void BM_Routing(benchmark::State& state) {
  const auto family = static_cast<bench::Family>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  graph::Rng rng(31 + n);
  const graph::Graph g = bench::make_graph(family, n, rng);

  core::Partition p;
  for (auto _ : state) {
    p = core::partition_and_gather(g, 0.3, {});
  }
  std::int64_t gather_rounds = 0, gather_words = 0;
  for (const auto& e : p.ledger.entries()) {
    if (e.measured && e.label.starts_with("topology gather")) {
      gather_rounds = e.stats.rounds;
    }
  }
  (void)gather_words;
  const double phi = p.decomposition.phi;
  const double logn = std::log2(std::max(2, g.num_vertices()));
  const double predicted = logn * logn * logn / (phi * phi * phi * phi);

  const auto local = baselines::local_model_gather(
      g, p.decomposition.cluster_of, p.leader_of);

  state.SetLabel(bench::family_name(family));
  state.counters["n"] = g.num_vertices();
  state.counters["clusters"] = p.decomposition.num_clusters;
  state.counters["gather_rounds"] = static_cast<double>(gather_rounds);
  state.counters["predicted"] = predicted;
  state.counters["used_over_pred"] = gather_rounds / predicted;
  state.counters["local_rounds"] = static_cast<double>(local.stats.rounds);
  state.counters["local_max_words"] =
      static_cast<double>(local.max_message_words);

  // Untimed traced re-run: congestion counters for this row (the timed loop
  // above keeps the default null sink, so tracing cost never enters timing).
  ecd::congest::MetricsCollector collector;
  core::FrameworkOptions traced;
  traced.trace = &collector;
  core::partition_and_gather(g, 0.3, traced);
  bench::register_trace_counters(state, collector);

  // Allocation audit over one full pipeline run.
  std::int64_t allocs = 0;
  std::int64_t alloc_rounds = 0;
  {
    bench::AllocScope scope;
    const auto audit = core::partition_and_gather(g, 0.3, {});
    allocs = scope.delta();
    for (const auto& e : audit.ledger.entries()) {
      if (e.measured) alloc_rounds += e.stats.rounds;
    }
  }
  bench::register_alloc_counter(state, allocs, alloc_rounds);
}

void RoutingArgs(benchmark::internal::Benchmark* b) {
  for (auto family : {bench::Family::kGrid, bench::Family::kTriangulation,
                      bench::Family::kRandomPlanar}) {
    for (int n : {256, 1024, 2048}) {
      b->Args({static_cast<int>(family), n});
    }
  }
}

BENCHMARK(BM_Routing)->Apply(RoutingArgs)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("routing");
