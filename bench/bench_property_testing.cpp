// E9 — Theorem 1.4: distributed property testing with one-sided error.
//
// Counters (over `trials` seeds):
//   accept_yes   acceptance rate on inputs *with* the property (must be 1.0
//                — the paper's one-sided guarantee)
//   accept_far   acceptance rate on ε-far inputs (must be ~0.0)
//   far_extra    edges added to make the input ε-far
#include "bench/bench_util.h"
#include "src/core/property_testing.h"
#include "src/seq/properties.h"

namespace {

using namespace ecd;

seq::MinorClosedProperty property_by_id(int id) {
  switch (id) {
    case 0: return seq::planar_property();
    case 1: return seq::outerplanar_property();
    case 2: return seq::forest_property();
    default: return seq::treewidth2_property();
  }
}

graph::Graph yes_instance(int id, int n, graph::Rng& rng) {
  switch (id) {
    case 0: return graph::random_maximal_planar(n, rng);
    case 1: return graph::random_outerplanar(n, rng);
    case 2: return graph::random_tree(n, rng);
    default: return graph::random_two_tree(n, rng);
  }
}

void BM_PropertyTesting(benchmark::State& state) {
  const int prop_id = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const double eps = bench::eps_from_arg(state.range(2));
  const auto property = property_by_id(prop_id);
  const int trials = 8;

  int yes_accepts = 0, far_accepts = 0, extra = 0;
  for (auto _ : state) {
    yes_accepts = far_accepts = 0;
    for (int t = 0; t < trials; ++t) {
      graph::Rng rng(1000 * prop_id + 17 * t + n);
      const auto yes = yes_instance(prop_id, n, rng);
      core::PropertyTestOptions opt;
      opt.framework.seed = 31 + t;
      yes_accepts += core::property_test(yes, property, eps, opt).accept;
      // ε-far instance: add > eps * |E| random edges.
      extra = static_cast<int>(1.5 * eps * yes.num_edges()) + 5;
      const auto far = graph::plus_random_edges(yes, extra, rng);
      far_accepts += core::property_test(far, property, eps, opt).accept;
    }
  }
  state.SetLabel(property.name);
  state.counters["n"] = n;
  state.counters["eps"] = eps;
  state.counters["accept_yes"] = static_cast<double>(yes_accepts) / trials;
  state.counters["accept_far"] = static_cast<double>(far_accepts) / trials;
  state.counters["far_extra"] = extra;
}

void PropertyArgs(benchmark::internal::Benchmark* b) {
  for (int prop : {0, 1, 2, 3}) {
    for (int n : {200, 800}) {
      b->Args({prop, n, 200});
    }
  }
  for (int eps_pm : {100, 300}) {
    b->Args({0, 400, eps_pm});
  }
}

BENCHMARK(BM_PropertyTesting)->Apply(PropertyArgs)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("property_testing");
