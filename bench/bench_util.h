// Shared helpers for the experiment harness (see DESIGN.md §5 and
// EXPERIMENTS.md). Every bench binary regenerates one experiment table:
// google-benchmark rows are parameterized by (family, n, eps, ...) and the
// measured quantities are exported as user counters.
#pragma once

#include <benchmark/benchmark.h>

#include <string>

#include "src/congest/trace.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace ecd::bench {

enum class Family : int {
  kGrid = 0,
  kRandomPlanar = 1,
  kTriangulation = 2,
  kOuterplanar = 3,
  kTwoTree = 4,
  kTree = 5,
  kHypercube = 6,
  kRegularExpander = 7,
};

inline const char* family_name(Family f) {
  switch (f) {
    case Family::kGrid: return "grid";
    case Family::kRandomPlanar: return "random_planar";
    case Family::kTriangulation: return "triangulation";
    case Family::kOuterplanar: return "outerplanar";
    case Family::kTwoTree: return "two_tree";
    case Family::kTree: return "tree";
    case Family::kHypercube: return "hypercube";
    case Family::kRegularExpander: return "regular_expander";
  }
  return "?";
}

// Generates a member of the family with ~n vertices.
inline graph::Graph make_graph(Family f, int n, graph::Rng& rng) {
  switch (f) {
    case Family::kGrid: {
      int side = 1;
      while (side * side < n) ++side;
      return graph::grid(side, side);
    }
    case Family::kRandomPlanar:
      return graph::random_planar(n, 2 * n, rng);
    case Family::kTriangulation:
      return graph::random_maximal_planar(n, rng);
    case Family::kOuterplanar:
      return graph::random_outerplanar(n, rng);
    case Family::kTwoTree:
      return graph::random_two_tree(n, rng);
    case Family::kTree:
      return graph::random_tree(n, rng);
    case Family::kHypercube: {
      int dim = 1;
      while ((1 << dim) < n) ++dim;
      return graph::hypercube(dim);
    }
    case Family::kRegularExpander:
      return graph::random_regular(n - (n % 2), 6, rng);
  }
  throw std::invalid_argument("unknown family");
}

// eps encoded as an integer benchmark arg (per-mille).
inline double eps_from_arg(std::int64_t permille) {
  return static_cast<double>(permille) / 1000.0;
}

// Registers trace-derived congestion counters on a benchmark row: peak
// per-edge per-round load, p99 edge load, total words, and per-top-level-
// phase word volumes (counter `words[phase]`). Attach a MetricsCollector
// to the run under test (outside the timed loop — tracing is not free) and
// hand it here.
inline void register_trace_counters(benchmark::State& state,
                                    const congest::MetricsCollector& mc) {
  const congest::RunStats totals = mc.totals();
  state.counters["trace_peak_edge_load"] =
      static_cast<double>(totals.max_edge_load);
  state.counters["trace_p99_edge_load"] = mc.load_percentile(99);
  state.counters["trace_words"] = static_cast<double>(totals.words_sent);
  state.counters["trace_violations"] =
      static_cast<double>(mc.violations().size());
  for (const auto& s : mc.spans()) {
    if (s.depth != 0) continue;
    std::string name = s.name;
    if (name.rfind("phase:", 0) == 0) name = name.substr(6);
    state.counters["words[" + name + "]"] = static_cast<double>(s.words);
  }
}

}  // namespace ecd::bench
