// Shared helpers for the experiment harness (see DESIGN.md §5 and
// EXPERIMENTS.md). Every bench binary regenerates one experiment table:
// google-benchmark rows are parameterized by (family, n, eps, ...) and the
// measured quantities are exported as user counters.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "src/congest/profiler.h"
#include "src/congest/trace.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace ecd::bench {

enum class Family : int {
  kGrid = 0,
  kRandomPlanar = 1,
  kTriangulation = 2,
  kOuterplanar = 3,
  kTwoTree = 4,
  kTree = 5,
  kHypercube = 6,
  kRegularExpander = 7,
};

inline const char* family_name(Family f) {
  switch (f) {
    case Family::kGrid: return "grid";
    case Family::kRandomPlanar: return "random_planar";
    case Family::kTriangulation: return "triangulation";
    case Family::kOuterplanar: return "outerplanar";
    case Family::kTwoTree: return "two_tree";
    case Family::kTree: return "tree";
    case Family::kHypercube: return "hypercube";
    case Family::kRegularExpander: return "regular_expander";
  }
  return "?";
}

// Generates a member of the family with ~n vertices.
inline graph::Graph make_graph(Family f, int n, graph::Rng& rng) {
  switch (f) {
    case Family::kGrid: {
      int side = 1;
      while (side * side < n) ++side;
      return graph::grid(side, side);
    }
    case Family::kRandomPlanar:
      return graph::random_planar(n, 2 * n, rng);
    case Family::kTriangulation:
      return graph::random_maximal_planar(n, rng);
    case Family::kOuterplanar:
      return graph::random_outerplanar(n, rng);
    case Family::kTwoTree:
      return graph::random_two_tree(n, rng);
    case Family::kTree:
      return graph::random_tree(n, rng);
    case Family::kHypercube: {
      int dim = 1;
      while ((1 << dim) < n) ++dim;
      return graph::hypercube(dim);
    }
    case Family::kRegularExpander:
      return graph::random_regular(n - (n % 2), 6, rng);
  }
  throw std::invalid_argument("unknown family");
}

// eps encoded as an integer benchmark arg (per-mille).
inline double eps_from_arg(std::int64_t permille) {
  return static_cast<double>(permille) / 1000.0;
}

// Registers trace-derived congestion counters on a benchmark row: peak
// per-edge per-round load, p99 edge load, total words, and per-top-level-
// phase word volumes (counter `words[phase]`). Attach a MetricsCollector
// to the run under test (outside the timed loop — tracing is not free) and
// hand it here.
inline void register_trace_counters(benchmark::State& state,
                                    const congest::MetricsCollector& mc) {
  const congest::RunStats totals = mc.totals();
  state.counters["trace_peak_edge_load"] =
      static_cast<double>(totals.max_edge_load);
  state.counters["trace_p99_edge_load"] = mc.load_percentile(99);
  state.counters["trace_words"] = static_cast<double>(totals.words_sent);
  state.counters["trace_violations"] =
      static_cast<double>(mc.violations().size());
  for (const auto& s : mc.spans()) {
    if (s.depth != 0) continue;
    std::string name = s.name;
    if (name.rfind("phase:", 0) == 0) name = name.substr(6);
    state.counters["words[" + name + "]"] = static_cast<double>(s.words);
  }
}

// --- Peak memory ------------------------------------------------------------

// Peak resident set size of this process in MiB, from getrusage. Process-
// wide and monotonic — a row measured after a bigger row inherits its peak —
// so it is an informational counter and an upper-bound sanity check for the
// multi-million-vertex rows, never a regression gate. Returns 0 where
// getrusage is unavailable.
inline double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / (1024.0 * 1024.0);  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB on Linux
#endif
#else
  return 0.0;
#endif
}

// Registers the current peak RSS on a benchmark row (see peak_rss_mb).
inline void register_rss_counter(benchmark::State& state) {
  state.counters["peak_rss_mb"] = peak_rss_mb();
}

// --- Allocation accounting ------------------------------------------------
//
// Heap traffic per simulated round is a first-class bench output: the
// message substrate promises ~0 allocations/round in steady state
// (DESIGN.md "Simulator performance"), and a regression here silently eats
// the round-rate. A bench binary opts in by defining
// `ECD_BENCH_COUNT_ALLOCS 1` *before* including this header; that emits
// counting replacements of the global operator new/delete. The replacements
// must live in exactly one translation unit per binary — each bench target
// is a single .cpp, so defining the macro in that file is safe.
//
// The hooked TU also flips a runtime flag at static-initialization time, and
// `register_alloc_counter` keys off that flag — not the macro — so a binary
// that compiled the hooks in always reports the counter, and one that did
// not never shows a misleading hard zero. (The old compile-time gate meant
// a helper TU built without the macro silently dropped the counter even
// though the hooks were live in the binary.)

inline std::atomic<std::int64_t>& allocation_counter() {
  static std::atomic<std::int64_t> count{0};
  return count;
}

// True iff the counting operator new/delete replacements are linked into
// this binary (set during static initialization of the hooked TU).
inline std::atomic<bool>& alloc_hooks_flag() {
  static std::atomic<bool> installed{false};
  return installed;
}

inline bool alloc_hooks_installed() {
  return alloc_hooks_flag().load(std::memory_order_relaxed);
}

inline std::int64_t allocation_count() {
  return allocation_counter().load(std::memory_order_relaxed);
}

// Measures heap allocations performed while the scope is alive.
class AllocScope {
 public:
  AllocScope() : start_(allocation_count()) {}
  std::int64_t delta() const { return allocation_count() - start_; }

 private:
  std::int64_t start_;
};

// Reports `allocs / rounds` as counter `allocs_per_round` (only when the
// binary linked the counting hooks in; otherwise every value would read
// as an impossible 0). Runtime-gated so the decision is per-binary, not
// per-TU.
inline void register_alloc_counter(benchmark::State& state,
                                   std::int64_t allocs, std::int64_t rounds) {
  if (!alloc_hooks_installed()) return;
  state.counters["allocs_per_round"] =
      rounds > 0 ? static_cast<double>(allocs) / static_cast<double>(rounds)
                 : 0.0;
}

// --- Execution profiling (--ecd_profile) ------------------------------------
//
// Every ECD_BENCH_MAIN binary also accepts --ecd_profile: benchmarks that
// support it attach an ExecutionProfiler to the run under test and export
// barrier-wait fraction, load imbalance and achievable speedup alongside
// their throughput counters (so ecd-bench-v1 snapshots — and the
// bench_compare delta table — show *why* a thread count wins or loses, not
// just how fast it went). Off by default: the profiler costs a few clock
// reads per shard per round, and the committed baselines are unprofiled.

inline std::atomic<bool>& profile_flag() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

inline bool profile_requested() {
  return profile_flag().load(std::memory_order_relaxed);
}

// Registers the profiler-derived counters on a benchmark row. Call after
// the timed loop with the profiler that was attached to the Network under
// test (no-op counters are still honest: a serial run reports barrier 0).
inline void register_profile_counters(
    benchmark::State& state, const congest::ExecutionProfiler& profiler) {
  const congest::ExecutionProfiler::Summary s = profiler.summary();
  state.counters["profile_barrier_wait_fraction"] = s.barrier_wait_fraction;
  state.counters["profile_load_imbalance"] = s.load_imbalance;
  state.counters["profile_achievable_speedup"] = s.achievable_speedup;
}

// --- Bench telemetry (JSON snapshots + regression gate) ---------------------
//
// Every bench binary built with ECD_BENCH_MAIN(suite) accepts
//   --ecd_json            write BENCH_<suite>.json to the working directory
//   --ecd_json=<path>     write to <path>
// or, when no flag is given, honours the ECD_BENCH_JSON environment
// variable ("1" = default file name, anything else = output *directory*).
// The snapshot ("ecd-bench-v1") carries one row per executed benchmark with
// its finalized user counters — rates are already per-second by the time
// the reporter sees them — and feeds tools/bench_compare, the CI gate that
// fails on throughput or allocation regressions against bench/baseline.json.

struct BenchJsonRow {
  std::string name;
  std::int64_t iterations = 0;
  double real_time_ns = 0.0;
  double cpu_time_ns = 0.0;
  std::map<std::string, double> counters;  // sorted => deterministic JSON
};

namespace detail {

inline void write_json_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
}

inline void write_json_double(std::ostream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

}  // namespace detail

// Console output as usual, plus a row collected per finished benchmark for
// the JSON snapshot. Aggregate rows (mean/median/stddev of --repetitions)
// and errored rows are excluded: the gate compares raw per-run rows.
class JsonBenchReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) continue;
      BenchJsonRow row;
      row.name = run.benchmark_name();
      row.iterations = static_cast<std::int64_t>(run.iterations);
      if (run.iterations > 0) {
        row.real_time_ns =
            run.real_accumulated_time * 1e9 / static_cast<double>(run.iterations);
        row.cpu_time_ns =
            run.cpu_accumulated_time * 1e9 / static_cast<double>(run.iterations);
      }
      for (const auto& [name, counter] : run.counters) {
        row.counters[name] = static_cast<double>(counter.value);
      }
      rows_.push_back(std::move(row));
    }
    ConsoleReporter::ReportRuns(report);
  }

  const std::vector<BenchJsonRow>& rows() const { return rows_; }

  void write_json(std::ostream& os, std::string_view suite) const {
    os << "{\"schema\":\"ecd-bench-v1\",\"suite\":\"";
    detail::write_json_escaped(os, suite);
    os << "\",\"rows\":[";
    bool first = true;
    for (const BenchJsonRow& row : rows_) {
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"";
      detail::write_json_escaped(os, row.name);
      os << "\",\"iterations\":" << row.iterations << ",\"real_time_ns\":";
      detail::write_json_double(os, row.real_time_ns);
      os << ",\"cpu_time_ns\":";
      detail::write_json_double(os, row.cpu_time_ns);
      os << ",\"counters\":{";
      bool cfirst = true;
      for (const auto& [name, value] : row.counters) {
        if (!cfirst) os << ',';
        cfirst = false;
        os << '"';
        detail::write_json_escaped(os, name);
        os << "\":";
        detail::write_json_double(os, value);
      }
      os << "}}";
    }
    os << "]}\n";
  }

 private:
  std::vector<BenchJsonRow> rows_;
};

// Drop-in replacement for BENCHMARK_MAIN's body: strips the --ecd_json flag
// (benchmark::Initialize rejects unknown flags), runs the suite through a
// JsonBenchReporter, and writes the snapshot when requested.
inline int bench_main(std::string_view suite, int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 1);
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--ecd_json") {
      json_path = "BENCH_" + std::string(suite) + ".json";
    } else if (arg.rfind("--ecd_json=", 0) == 0) {
      json_path = std::string(arg.substr(std::string_view("--ecd_json=").size()));
    } else if (arg == "--ecd_profile") {
      profile_flag().store(true, std::memory_order_relaxed);
    } else {
      args.push_back(argv[i]);
    }
  }
  args.push_back(nullptr);  // argv contract: argv[argc] == nullptr
  if (json_path.empty()) {
    if (const char* env = std::getenv("ECD_BENCH_JSON"); env && *env) {
      const std::string_view value = env;
      json_path = value == "1"
                      ? "BENCH_" + std::string(suite) + ".json"
                      : std::string(value) + "/BENCH_" + std::string(suite) +
                            ".json";
    }
  }

  int bench_argc = static_cast<int>(args.size()) - 1;
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  JsonBenchReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "ecd_bench: cannot write %s\n", json_path.c_str());
      return 1;
    }
    reporter.write_json(out, suite);
    std::fprintf(stderr, "ecd_bench: wrote %s (%zu rows)\n", json_path.c_str(),
                 reporter.rows().size());
  }
  return 0;
}

}  // namespace ecd::bench

// Replaces BENCHMARK_MAIN() in every bench binary; `suite` names the
// BENCH_<suite>.json snapshot.
#define ECD_BENCH_MAIN(suite)                              \
  int main(int argc, char** argv) {                        \
    return ecd::bench::bench_main(suite, argc, argv);      \
  }

#if defined(ECD_BENCH_COUNT_ALLOCS) && ECD_BENCH_COUNT_ALLOCS
// Counting replacements for the global allocation functions. Deliberately
// non-inline (replacement functions may not be inline); the macro guard
// keeps them out of binaries that did not opt in. Alignment-extended
// overloads are left at their defaults — the simulator performs no
// over-aligned allocations, and missing a hypothetical one only
// undercounts.
namespace {
// Flips the runtime flag register_alloc_counter keys off (see above).
[[maybe_unused]] const bool ecd_bench_alloc_hooks_registered = [] {
  ecd::bench::alloc_hooks_flag().store(true, std::memory_order_relaxed);
  return true;
}();
}  // namespace
void* operator new(std::size_t size) {
  ecd::bench::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ecd::bench::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // ECD_BENCH_COUNT_ALLOCS
