// Shared helpers for the experiment harness (see DESIGN.md §5 and
// EXPERIMENTS.md). Every bench binary regenerates one experiment table:
// google-benchmark rows are parameterized by (family, n, eps, ...) and the
// measured quantities are exported as user counters.
#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "src/congest/trace.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace ecd::bench {

enum class Family : int {
  kGrid = 0,
  kRandomPlanar = 1,
  kTriangulation = 2,
  kOuterplanar = 3,
  kTwoTree = 4,
  kTree = 5,
  kHypercube = 6,
  kRegularExpander = 7,
};

inline const char* family_name(Family f) {
  switch (f) {
    case Family::kGrid: return "grid";
    case Family::kRandomPlanar: return "random_planar";
    case Family::kTriangulation: return "triangulation";
    case Family::kOuterplanar: return "outerplanar";
    case Family::kTwoTree: return "two_tree";
    case Family::kTree: return "tree";
    case Family::kHypercube: return "hypercube";
    case Family::kRegularExpander: return "regular_expander";
  }
  return "?";
}

// Generates a member of the family with ~n vertices.
inline graph::Graph make_graph(Family f, int n, graph::Rng& rng) {
  switch (f) {
    case Family::kGrid: {
      int side = 1;
      while (side * side < n) ++side;
      return graph::grid(side, side);
    }
    case Family::kRandomPlanar:
      return graph::random_planar(n, 2 * n, rng);
    case Family::kTriangulation:
      return graph::random_maximal_planar(n, rng);
    case Family::kOuterplanar:
      return graph::random_outerplanar(n, rng);
    case Family::kTwoTree:
      return graph::random_two_tree(n, rng);
    case Family::kTree:
      return graph::random_tree(n, rng);
    case Family::kHypercube: {
      int dim = 1;
      while ((1 << dim) < n) ++dim;
      return graph::hypercube(dim);
    }
    case Family::kRegularExpander:
      return graph::random_regular(n - (n % 2), 6, rng);
  }
  throw std::invalid_argument("unknown family");
}

// eps encoded as an integer benchmark arg (per-mille).
inline double eps_from_arg(std::int64_t permille) {
  return static_cast<double>(permille) / 1000.0;
}

// Registers trace-derived congestion counters on a benchmark row: peak
// per-edge per-round load, p99 edge load, total words, and per-top-level-
// phase word volumes (counter `words[phase]`). Attach a MetricsCollector
// to the run under test (outside the timed loop — tracing is not free) and
// hand it here.
inline void register_trace_counters(benchmark::State& state,
                                    const congest::MetricsCollector& mc) {
  const congest::RunStats totals = mc.totals();
  state.counters["trace_peak_edge_load"] =
      static_cast<double>(totals.max_edge_load);
  state.counters["trace_p99_edge_load"] = mc.load_percentile(99);
  state.counters["trace_words"] = static_cast<double>(totals.words_sent);
  state.counters["trace_violations"] =
      static_cast<double>(mc.violations().size());
  for (const auto& s : mc.spans()) {
    if (s.depth != 0) continue;
    std::string name = s.name;
    if (name.rfind("phase:", 0) == 0) name = name.substr(6);
    state.counters["words[" + name + "]"] = static_cast<double>(s.words);
  }
}

// --- Allocation accounting ------------------------------------------------
//
// Heap traffic per simulated round is a first-class bench output: the
// message substrate promises ~0 allocations/round in steady state
// (DESIGN.md "Simulator performance"), and a regression here silently eats
// the round-rate. A bench binary opts in by defining
// `ECD_BENCH_COUNT_ALLOCS 1` *before* including this header; that emits
// counting replacements of the global operator new/delete. The replacements
// must live in exactly one translation unit per binary — each bench target
// is a single .cpp, so defining the macro in that file is safe.
//
// Without the macro the counter stays at zero and `AllocScope::delta()`
// reports 0; `register_alloc_counter` then skips the counter so rows never
// show a misleading hard zero.

inline std::atomic<std::int64_t>& allocation_counter() {
  static std::atomic<std::int64_t> count{0};
  return count;
}

inline std::int64_t allocation_count() {
  return allocation_counter().load(std::memory_order_relaxed);
}

// Measures heap allocations performed while the scope is alive.
class AllocScope {
 public:
  AllocScope() : start_(allocation_count()) {}
  std::int64_t delta() const { return allocation_count() - start_; }

 private:
  std::int64_t start_;
};

// Reports `allocs / rounds` as counter `allocs_per_round` (only when the
// binary compiled the counting hooks in; otherwise every value would read
// as an impossible 0).
inline void register_alloc_counter(benchmark::State& state,
                                   std::int64_t allocs, std::int64_t rounds) {
#if defined(ECD_BENCH_COUNT_ALLOCS) && ECD_BENCH_COUNT_ALLOCS
  state.counters["allocs_per_round"] =
      rounds > 0 ? static_cast<double>(allocs) / static_cast<double>(rounds)
                 : 0.0;
#else
  (void)state, (void)allocs, (void)rounds;
#endif
}

}  // namespace ecd::bench

#if defined(ECD_BENCH_COUNT_ALLOCS) && ECD_BENCH_COUNT_ALLOCS
// Counting replacements for the global allocation functions. Deliberately
// non-inline (replacement functions may not be inline); the macro guard
// keeps them out of binaries that did not opt in. Alignment-extended
// overloads are left at their defaults — the simulator performs no
// over-aligned allocations, and missing a hypothetical one only
// undercounts.
void* operator new(std::size_t size) {
  ecd::bench::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ecd::bench::allocation_counter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
#endif  // ECD_BENCH_COUNT_ALLOCS
