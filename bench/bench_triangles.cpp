// Extension experiment — distributed triangle counting in O(degeneracy)
// rounds (the lineage of expander decompositions in CONGEST, §1.4).
//
// Counters:
//   triangles      distributed count (verified == sequential oracle)
//   rounds         measured CONGEST rounds (flat in n, tracks degeneracy)
//   out_deg_bound  orientation out-degree achieved
#include "bench/bench_util.h"
#include "src/core/triangles.h"

namespace {

using namespace ecd;

void BM_Triangles(benchmark::State& state) {
  const auto family = static_cast<bench::Family>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  graph::Rng rng(41 + n);
  const graph::Graph g = bench::make_graph(family, n, rng);

  core::TriangleCountResult r;
  for (auto _ : state) {
    r = core::count_triangles_distributed(g);
  }
  const auto oracle = core::count_triangles_sequential(g);
  state.SetLabel(bench::family_name(family));
  state.counters["n"] = g.num_vertices();
  state.counters["triangles"] = static_cast<double>(r.triangles);
  state.counters["oracle_match"] = r.triangles == oracle ? 1.0 : 0.0;
  state.counters["rounds"] = static_cast<double>(r.ledger.measured_total());
  state.counters["out_deg_bound"] = r.out_degree_bound;
}

void TriangleArgs(benchmark::internal::Benchmark* b) {
  for (auto family : {bench::Family::kTriangulation, bench::Family::kTwoTree,
                      bench::Family::kRandomPlanar, bench::Family::kGrid}) {
    for (int n : {256, 1024, 4096}) {
      b->Args({static_cast<int>(family), n});
    }
  }
}

BENCHMARK(BM_Triangles)->Apply(TriangleArgs)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("triangles");
