// E8 — Theorem 1.3: (1-ε)-approximate agreement-maximization correlation
// clustering on planted signed planar networks, vs the pivot/KwikCluster
// heuristic and the |E|/2 trivial bound.
//
// Counters:
//   score_frac   ours / |E|
//   pivot_frac   pivot / |E|
//   trivial_frac  max(singletons, all-together) / |E|  (>= 1/2)
//   vs_trivial   ours / trivial — must be >= (1-eps) by Thm 1.3, and
//                typically well above 1
#include <numeric>

#include "bench/bench_util.h"
#include "src/baselines/pivot_correlation.h"
#include "src/core/correlation.h"
#include "src/seq/correlation.h"

namespace {

using namespace ecd;

void BM_Correlation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int noise_pm = static_cast<int>(state.range(1));
  const double eps = bench::eps_from_arg(state.range(2));
  graph::Rng rng(13 + n + noise_pm);
  graph::Graph base = graph::random_maximal_planar(n, rng);
  const graph::Graph g = base.with_signs(
      graph::planted_signs(base, 12, noise_pm / 1000.0, rng));

  core::CorrelationApproxResult r;
  for (auto _ : state) {
    r = core::correlation_approx(g, eps);
  }
  const auto pivot = baselines::pivot_correlation(g, rng);
  seq::Clustering singletons(g.num_vertices());
  std::iota(singletons.begin(), singletons.end(), 0);
  const auto trivial =
      std::max(seq::agreement_score(g, singletons),
               seq::agreement_score(g, seq::Clustering(g.num_vertices(), 0)));

  state.counters["n"] = g.num_vertices();
  state.counters["noise"] = noise_pm / 1000.0;
  state.counters["eps"] = eps;
  state.counters["score_frac"] =
      static_cast<double>(r.score) / g.num_edges();
  state.counters["pivot_frac"] =
      static_cast<double>(seq::agreement_score(g, pivot)) / g.num_edges();
  state.counters["trivial_frac"] =
      static_cast<double>(trivial) / g.num_edges();
  state.counters["vs_trivial"] =
      trivial ? static_cast<double>(r.score) / trivial : 1.0;
  state.counters["clusters_exact"] = r.clusters_exact;
  state.counters["measured_rounds"] =
      static_cast<double>(r.ledger.measured_total());
}

void CorrelationArgs(benchmark::internal::Benchmark* b) {
  for (int n : {200, 600, 1500}) {
    for (int noise_pm : {0, 50, 150, 300}) {
      b->Args({n, noise_pm, 200});
    }
  }
  // eps sweep at fixed instance.
  for (int eps_pm : {100, 200, 400}) {
    b->Args({600, 100, eps_pm});
  }
}

BENCHMARK(BM_Correlation)->Apply(CorrelationArgs)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("correlation");
