// E4 — Theorem 1.6: H-minor-free graphs admit balanced edge separators of
// size O(sqrt(Δ n)).
//
// Counters:
//   cut            separator size found
//   sqrt_dn        sqrt(Δ n) envelope
//   normalized     cut / sqrt(Δ n)  — should stay O(1) across n for
//                  minor-free families, and *blow up* for expanders
//   balance        smaller side / n (>= 1/3 by construction)
#include <cmath>

#include "bench/bench_util.h"
#include "src/seq/separator.h"

namespace {

using namespace ecd;

void BM_Separator(benchmark::State& state) {
  const auto family = static_cast<bench::Family>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  graph::Rng rng(99 + n);
  const graph::Graph g = bench::make_graph(family, n, rng);

  seq::SeparatorResult r;
  for (auto _ : state) {
    r = seq::edge_separator(g, rng);
  }
  const double envelope =
      std::sqrt(static_cast<double>(g.max_degree()) * g.num_vertices());
  state.SetLabel(bench::family_name(family));
  state.counters["n"] = g.num_vertices();
  state.counters["max_deg"] = g.max_degree();
  state.counters["cut"] = r.cut_size;
  state.counters["sqrt_dn"] = envelope;
  state.counters["normalized"] = r.cut_size / envelope;
  state.counters["balance"] =
      static_cast<double>(r.smaller_side) / g.num_vertices();
}

void SeparatorArgs(benchmark::internal::Benchmark* b) {
  for (auto family :
       {bench::Family::kGrid, bench::Family::kTriangulation,
        bench::Family::kRandomPlanar, bench::Family::kOuterplanar,
        bench::Family::kTwoTree, bench::Family::kTree}) {
    for (int n : {256, 1024, 4096, 16384}) {
      b->Args({static_cast<int>(family), n});
    }
  }
  // Control: expanders have no o(n) balanced separator — normalized grows.
  for (int n : {256, 1024, 4096}) {
    b->Args({static_cast<int>(bench::Family::kRegularExpander), n});
  }
}

BENCHMARK(BM_Separator)->Apply(SeparatorArgs)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("separator");
