// E5 — Theorem 1.2: (1-ε)-approximate MaxIS on minor-free networks,
// against the Luby maximal-IS baseline (which only guarantees 1/Δ).
//
// Counters:
//   ours        |I| from the framework
//   exact       optimum (branch & bound; -1 if the budget ran out)
//   ratio       ours / exact (>= 1 - eps expected)
//   luby        Luby maximal IS size
//   luby_ratio  luby / exact
//   measured_rounds / modeled_rounds  the two ledger columns
#include "bench/bench_util.h"
#include "src/baselines/luby_mis.h"
#include "src/core/mis.h"
#include "src/seq/mis.h"

namespace {

using namespace ecd;

void BM_Mis(benchmark::State& state) {
  const auto family = static_cast<bench::Family>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const double eps = bench::eps_from_arg(state.range(2));
  graph::Rng rng(55 + n);
  const graph::Graph g = bench::make_graph(family, n, rng);

  core::MisApproxResult r;
  for (auto _ : state) {
    r = core::mis_approx(g, eps);
  }
  // Optimum: closed-form for grids (checkerboard, alpha = ceil(n/2));
  // bounded branch-and-bound otherwise (-1 when the budget runs out).
  std::optional<std::size_t> exact;
  if (family == bench::Family::kGrid) {
    exact = static_cast<std::size_t>((g.num_vertices() + 1) / 2);
  } else if (const auto found = seq::max_independent_set_exact(g, 8'000'000)) {
    exact = found->size();
  }
  const auto luby = baselines::luby_mis(g, 3);

  state.SetLabel(bench::family_name(family));
  state.counters["n"] = g.num_vertices();
  state.counters["eps"] = eps;
  state.counters["ours"] = static_cast<double>(r.independent_set.size());
  state.counters["exact"] = exact ? static_cast<double>(*exact) : -1.0;
  state.counters["ratio"] =
      exact ? static_cast<double>(r.independent_set.size()) / *exact : -1.0;
  state.counters["luby"] = static_cast<double>(luby.independent_set.size());
  state.counters["luby_ratio"] =
      exact ? static_cast<double>(luby.independent_set.size()) / *exact : -1.0;
  state.counters["measured_rounds"] =
      static_cast<double>(r.ledger.measured_total());
  state.counters["modeled_rounds"] =
      static_cast<double>(r.ledger.modeled_total());
}

void MisArgs(benchmark::internal::Benchmark* b) {
  for (auto family : {bench::Family::kGrid, bench::Family::kRandomPlanar,
                      bench::Family::kOuterplanar, bench::Family::kTwoTree}) {
    for (int n : {144, 400}) {
      for (int eps_pm : {100, 200, 400}) {
        b->Args({static_cast<int>(family), n, eps_pm});
      }
    }
  }
}

BENCHMARK(BM_Mis)->Apply(MisArgs)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("mis");
