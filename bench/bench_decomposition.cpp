// E1 + E11 — the (ε, φ) expander-decomposition contract (Thms 2.1/2.6).
//
// Rows: family x n x eps. Counters:
//   inter_frac   measured inter-cluster edge fraction (must be <= eps)
//   budget_eps   the eps the run was charged against
//   clusters     number of clusters
//   phi_target   φ used by the construction
//   phi_cert_min weakest certified cluster conductance (>= contract check)
//   modeled_rounds  Thm 2.1 round formula for this (n, eps)
//
// Series 2 (hypercube, E11): at constant eps the achievable φ degrades as
// Θ(1/log n) [ALE+18]; watch phi_cert_min fall with dimension.
#include "bench/bench_util.h"
#include "src/congest/round_ledger.h"
#include "src/expander/decomposition.h"

namespace {

using namespace ecd;

void BM_Decomposition(benchmark::State& state) {
  const auto family = static_cast<bench::Family>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const double eps = bench::eps_from_arg(state.range(2));
  graph::Rng rng(12345 + n);
  const graph::Graph g = bench::make_graph(family, n, rng);

  expander::ExpanderDecomposition d;
  for (auto _ : state) {
    d = expander::expander_decompose(g, eps, {.seed = 9});
  }
  state.SetLabel(bench::family_name(family));
  state.counters["n"] = g.num_vertices();
  state.counters["m"] = g.num_edges();
  state.counters["inter_frac"] =
      g.num_edges() ? static_cast<double>(d.inter_cluster_edges) / g.num_edges()
                    : 0.0;
  state.counters["budget_eps"] = eps;
  state.counters["clusters"] = d.num_clusters;
  state.counters["phi_target"] = d.phi;
  double cert = 1.0;
  for (double c : d.cluster_phi_certified) cert = std::min(cert, c);
  state.counters["phi_cert_min"] = cert;
  state.counters["modeled_rounds"] = static_cast<double>(
      congest::modeled_decomposition_rounds(g.num_vertices(), eps, false));
}

void DecompositionArgs(benchmark::internal::Benchmark* b) {
  for (auto family :
       {bench::Family::kGrid, bench::Family::kTriangulation,
        bench::Family::kRandomPlanar, bench::Family::kOuterplanar,
        bench::Family::kTree}) {
    for (int n : {256, 1024, 4096}) {
      for (int eps_pm : {50, 100, 200, 400}) {
        b->Args({static_cast<int>(family), n, eps_pm});
      }
    }
  }
  // E11: hypercube tightness series.
  for (int n : {64, 256, 1024, 4096}) {
    b->Args({static_cast<int>(bench::Family::kHypercube), n, 300});
  }
}

BENCHMARK(BM_Decomposition)->Apply(DecompositionArgs)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("decomposition");
