// E6 — Theorem 3.2: (1-ε)-approximate MCM on planar networks with the
// star-elimination preprocessing (Lemma 3.1), against the distributed
// maximal-matching 1/2-approximation baseline.
//
// Counters:
//   ours / exact / ratio       framework vs blossom optimum
//   maximal / maximal_ratio    Israeli–Itai-style baseline
//   removed                    vertices removed by star elimination
//   linearity                  |M*| / surviving-vertices (Lemma 3.1 check)
#include "bench/bench_util.h"
#include "src/baselines/maximal_matching.h"
#include "src/core/matching.h"
#include "src/graph/subgraph.h"
#include "src/seq/matching.h"

namespace {

using namespace ecd;

void BM_Matching(benchmark::State& state) {
  const int kind = static_cast<int>(state.range(0));  // 0 planar, 1 pathology
  const int n = static_cast<int>(state.range(1));
  const double eps = bench::eps_from_arg(state.range(2));
  graph::Rng rng(66 + n);
  const graph::Graph g =
      kind == 0 ? graph::random_planar(n, 2 * n, rng)
                : graph::star_pathology(n / 12, 10, rng);

  core::McmApproxResult r;
  for (auto _ : state) {
    r = core::mcm_planar_approx(g, eps);
  }
  const int exact = seq::matching_size(seq::max_cardinality_matching(g));
  const auto maximal = baselines::distributed_maximal_matching(g, 5);

  // Lemma 3.1 check on the eliminated graph.
  const auto elim = core::eliminate_stars(g);
  std::vector<bool> keep(g.num_edges(), true);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    keep[e] = !elim.removed[g.edge(e).u] && !elim.removed[g.edge(e).v];
  }
  const auto g_bar = graph::edge_subgraph(g, keep);
  int surviving = 0;
  for (graph::VertexId v = 0; v < g_bar.num_vertices(); ++v) {
    surviving += g_bar.degree(v) > 0;
  }

  state.SetLabel(kind == 0 ? "random_planar" : "star_pathology");
  state.counters["n"] = g.num_vertices();
  state.counters["eps"] = eps;
  state.counters["ours"] = r.matching_size;
  state.counters["exact"] = exact;
  state.counters["ratio"] =
      exact ? static_cast<double>(r.matching_size) / exact : 1.0;
  state.counters["maximal"] = seq::matching_size(maximal.mates);
  state.counters["maximal_ratio"] =
      exact ? static_cast<double>(seq::matching_size(maximal.mates)) / exact
            : 1.0;
  state.counters["removed"] = r.removed_vertices;
  state.counters["linearity"] =
      surviving ? static_cast<double>(exact) / surviving : 1.0;
  state.counters["measured_rounds"] =
      static_cast<double>(r.ledger.measured_total());
}

void MatchingArgs(benchmark::internal::Benchmark* b) {
  for (int kind : {0, 1}) {
    for (int n : {240, 600, 1200}) {
      for (int eps_pm : {100, 200, 400}) {
        b->Args({kind, n, eps_pm});
      }
    }
  }
}

BENCHMARK(BM_Matching)->Apply(MatchingArgs)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("matching");
