// E2 — Lemma 2.3: every cluster of an (ε, φ) decomposition of an
// H-minor-free graph has a vertex of degree Ω(φ²)·|V_i|.
//
// Counters:
//   min_ratio   min over clusters of deg(v*) / (φ² |V_i|)  — must stay
//               bounded away from 0 (Lemma 2.3's hidden constant)
//   min_deg_frac min over clusters of deg(v*) / |V_i|
//   clusters    cluster count
//
// This is a structural property of the decomposition, so the bench works
// directly on the decomposition output (no routing simulation needed).
// Forced-φ rows (phi_pm > 0) pin φ high so the decomposition really splits;
// auto rows (phi_pm = 0) use the derived φ = ε/(8 log m).
#include "bench/bench_util.h"
#include "src/expander/decomposition.h"
#include "src/graph/subgraph.h"

namespace {

using namespace ecd;

void BM_HighDegree(benchmark::State& state) {
  const auto family = static_cast<bench::Family>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const double phi = bench::eps_from_arg(state.range(2));
  graph::Rng rng(777 + n);
  const graph::Graph g = bench::make_graph(family, n, rng);

  expander::DecompositionOptions opt;
  opt.seed = 9;
  if (phi > 0) opt.phi = phi;
  expander::ExpanderDecomposition d;
  for (auto _ : state) {
    d = expander::expander_decompose(g, 0.4, opt);
  }
  state.SetLabel(bench::family_name(family));
  double min_ratio = 1e18, min_frac = 1e18;
  for (const auto& members : expander::cluster_members(d)) {
    if (members.size() < 2) continue;
    const auto sub = graph::induced_subgraph(g, members);
    int leader_degree = 0;
    for (graph::VertexId v = 0; v < sub.graph.num_vertices(); ++v) {
      leader_degree = std::max(leader_degree, sub.graph.degree(v));
    }
    const double denom = d.phi * d.phi * static_cast<double>(members.size());
    if (denom > 0) min_ratio = std::min(min_ratio, leader_degree / denom);
    min_frac = std::min(
        min_frac, static_cast<double>(leader_degree) / members.size());
  }
  state.counters["n"] = g.num_vertices();
  state.counters["clusters"] = d.num_clusters;
  state.counters["phi"] = d.phi;
  state.counters["min_ratio"] = min_ratio == 1e18 ? 0 : min_ratio;
  state.counters["min_deg_frac"] = min_frac == 1e18 ? 0 : min_frac;
}

void HighDegreeArgs(benchmark::internal::Benchmark* b) {
  for (auto family : {bench::Family::kGrid, bench::Family::kTriangulation,
                      bench::Family::kRandomPlanar, bench::Family::kTwoTree}) {
    for (int n : {256, 1024, 4096}) {
      b->Args({static_cast<int>(family), n, 0});   // auto phi
      b->Args({static_cast<int>(family), n, 60});  // forced phi=0.06
    }
  }
}

BENCHMARK(BM_HighDegree)->Apply(HighDegreeArgs)->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("high_degree");
