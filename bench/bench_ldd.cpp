// E10 — Theorem 1.5: low-diameter decomposition with the optimal
// D = O(1/ε), vs the generic MPX exponential-shift baseline whose diameter
// is Θ(log n / ε). The cycle rows exhibit the D = Θ(1/ε) optimality.
//
// Counters:
//   D            measured max strong cluster diameter (framework)
//   D_times_eps  D * eps — flat across eps <=> D = O(1/eps)
//   cut_frac     inter-cluster edge fraction (<= eps required)
//   mpx_D        MPX baseline diameter
//   mpx_cut_frac MPX baseline cut fraction
#include "bench/bench_util.h"
#include "src/baselines/mpx_ldd.h"
#include "src/core/ldd.h"
#include "src/seq/ldd.h"

namespace {

using namespace ecd;

void BM_Ldd(benchmark::State& state) {
  const auto family = static_cast<bench::Family>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const double eps = bench::eps_from_arg(state.range(2));
  graph::Rng rng(7 + n);
  const graph::Graph g = family == bench::Family::kTree && n < 0
                             ? graph::cycle(-n)
                             : bench::make_graph(family, n, rng);

  core::LddApproxResult r;
  for (auto _ : state) {
    r = core::ldd_approx(g, eps);
  }
  const auto mpx = baselines::mpx_ldd(g, eps, rng);

  state.SetLabel(bench::family_name(family));
  state.counters["n"] = g.num_vertices();
  state.counters["eps"] = eps;
  state.counters["D"] = r.max_diameter;
  state.counters["D_times_eps"] = r.max_diameter * eps;
  state.counters["cut_frac"] =
      g.num_edges() ? static_cast<double>(r.cut_edges) / g.num_edges() : 0.0;
  state.counters["clusters"] = r.num_clusters;
  state.counters["mpx_D"] = seq::ldd_max_diameter(g, mpx.cluster_of);
  state.counters["mpx_cut_frac"] =
      g.num_edges() ? static_cast<double>(mpx.cut_edges) / g.num_edges() : 0.0;
  state.counters["measured_rounds"] =
      static_cast<double>(r.ledger.measured_total());
}

void CycleLdd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double eps = bench::eps_from_arg(state.range(1));
  const graph::Graph g = graph::cycle(n);
  graph::Rng rng(3);
  core::LddApproxResult r;
  for (auto _ : state) {
    r = core::ldd_approx(g, eps);
  }
  state.SetLabel("cycle");
  state.counters["n"] = n;
  state.counters["eps"] = eps;
  state.counters["D"] = r.max_diameter;
  state.counters["D_times_eps"] = r.max_diameter * eps;
  state.counters["cut_frac"] =
      static_cast<double>(r.cut_edges) / g.num_edges();
  // Lower bound: any (eps, D) decomposition of a cycle has D >= 1/eps - 1.
  state.counters["D_lower_bound"] = 1.0 / eps - 1.0;
}

void LddArgs(benchmark::internal::Benchmark* b) {
  for (auto family : {bench::Family::kGrid, bench::Family::kTriangulation,
                      bench::Family::kRandomPlanar}) {
    for (int n : {400, 1600}) {
      for (int eps_pm : {100, 200, 400}) {
        b->Args({static_cast<int>(family), n, eps_pm});
      }
    }
  }
}

BENCHMARK(BM_Ldd)->Apply(LddArgs)->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK(CycleLdd)
    ->Args({600, 50})
    ->Args({600, 100})
    ->Args({600, 200})
    ->Args({600, 400})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

ECD_BENCH_MAIN("ldd");
