// Cross-module consistency: independently implemented components must
// agree with one another on the same instances.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "src/congest/primitives.h"
#include "src/expander/conductance.h"
#include "src/expander/random_walk.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/seq/planarity.h"
#include "src/seq/properties.h"

namespace ecd {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

// Every graph our "planar" generators emit must pass the left-right test —
// two completely independent code paths.
TEST(CrossModule, PlanarGeneratorsProducePlanarGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 8; ++trial) {
    EXPECT_TRUE(seq::is_planar(graph::random_maximal_planar(60, rng)));
    EXPECT_TRUE(seq::is_planar(graph::random_planar(60, 100, rng)));
    EXPECT_TRUE(seq::is_planar(graph::random_outerplanar(40, rng)));
    EXPECT_TRUE(seq::is_planar(graph::random_two_tree(50, rng)));
    EXPECT_TRUE(seq::is_planar(graph::random_tree(70, rng)));
    EXPECT_TRUE(seq::is_planar(graph::star_pathology(6, 5, rng)));
  }
  EXPECT_TRUE(seq::is_planar(graph::grid(9, 13)));
  EXPECT_TRUE(seq::is_planar(graph::barbell(4, 2)));
}

// Outerplanar/2-tree generators must satisfy their own recognizers.
TEST(CrossModule, StructuredGeneratorsSatisfyRecognizers) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    EXPECT_TRUE(seq::is_outerplanar(graph::random_outerplanar(40, rng)));
    EXPECT_TRUE(seq::has_treewidth_at_most_2(graph::random_two_tree(50, rng)));
    EXPECT_TRUE(seq::is_forest(graph::random_tree(50, rng)));
  }
}

// Torus grids (bounded genus, the paper's third named class) are NOT
// planar but have density <= 2 and must flow through the recognizers
// consistently.
TEST(CrossModule, TorusGridIsNonPlanarButSparse) {
  Graph g = graph::torus_grid(5, 5);
  EXPECT_FALSE(seq::is_planar(g));
  EXPECT_LE(g.edge_density(), 2.0 + 1e-9);
}

// Mixing time vs conductance: the two-sided relation of §2,
// Θ(1/Φ) <= τ_mix <= Θ(log n / Φ²), with generous constants.
TEST(CrossModule, MixingTimeWithinCheegerWindow) {
  Rng rng(3);
  struct Case {
    Graph g;
    const char* name;
  };
  const Case cases[] = {
      {graph::cycle(16), "cycle16"},
      {graph::complete(12), "K12"},
      {graph::grid(4, 4), "grid4x4"},
      {graph::barbell(6, 0), "barbell6"},
  };
  for (const auto& c : cases) {
    const double phi = expander::exact_conductance(c.g);
    ASSERT_GT(phi, 0.0) << c.name;
    const std::optional<int> tau = expander::mixing_time_estimate(c.g, 200000);
    ASSERT_TRUE(tau.has_value()) << c.name;
    const double n = c.g.num_vertices();
    EXPECT_GE(*tau, 0.2 / phi - 2.0) << c.name;
    EXPECT_LE(*tau, 60.0 * std::log(n) / (phi * phi)) << c.name;
  }
}

// Simulator determinism: identical seeds => identical statistics, token
// deliveries, and traces.
TEST(CrossModule, GatherIsDeterministicGivenSeed) {
  Rng rng(4);
  Graph g = graph::random_maximal_planar(50, rng);
  const std::vector<int> cluster(g.num_vertices(), 0);
  const auto leaders = congest::elect_cluster_leaders(g, cluster);
  std::vector<std::vector<congest::GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v}});
  }
  congest::GatherOptions opt;
  opt.seed = 99;
  opt.net.bandwidth_tokens = 3;
  const auto r1 = congest::random_walk_gather(g, cluster, leaders.leader_of,
                                              tokens, opt);
  const auto r2 = congest::random_walk_gather(g, cluster, leaders.leader_of,
                                              tokens, opt);
  EXPECT_EQ(r1.stats.rounds, r2.stats.rounds);
  EXPECT_EQ(r1.stats.messages_sent, r2.stats.messages_sent);
  ASSERT_EQ(r1.traces.size(), r2.traces.size());
  for (std::size_t i = 0; i < r1.traces.size(); ++i) {
    EXPECT_EQ(r1.traces[i].visited, r2.traces[i].visited);
  }
}

// The walk-gather traces must be *consistent walks*: consecutive visited
// vertices adjacent, hop rounds strictly increasing, and ending at the
// leader.
TEST(CrossModule, GatherTracesAreValidWalks) {
  Rng rng(5);
  Graph g = graph::random_maximal_planar(60, rng);
  const std::vector<int> cluster(g.num_vertices(), 0);
  const auto leaders = congest::elect_cluster_leaders(g, cluster);
  std::vector<std::vector<congest::GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v}});
  }
  congest::GatherOptions opt;
  opt.net.bandwidth_tokens = 4;
  const auto r = congest::random_walk_gather(g, cluster, leaders.leader_of,
                                             tokens, opt);
  ASSERT_TRUE(r.complete);
  for (const auto& trace : r.traces) {
    ASSERT_GE(trace.visited.size(), 1u);
    EXPECT_EQ(trace.visited.size(), trace.hop_round.size() + 1);
    for (std::size_t h = 0; h + 1 < trace.visited.size(); ++h) {
      EXPECT_TRUE(g.has_edge(trace.visited[h], trace.visited[h + 1]));
      if (h > 0) EXPECT_GT(trace.hop_round[h], trace.hop_round[h - 1]);
    }
    EXPECT_EQ(trace.visited.back(), leaders.leader_of[trace.origin]);
  }
}

// Degeneracy orientation (host) and Barenboim–Elkin peeling (distributed)
// must both bound out-degree by the degeneracy-derived threshold.
TEST(CrossModule, OrientationsAgreeOnOutDegreeBound) {
  Rng rng(6);
  Graph g = graph::random_maximal_planar(150, rng);
  const int degen = graph::degeneracy(g).degeneracy;
  const auto host = graph::degeneracy_orientation(g);
  int host_max = 0;
  for (const auto& owned : host) {
    host_max = std::max(host_max, static_cast<int>(owned.size()));
  }
  EXPECT_LE(host_max, degen);
  const auto dist = congest::orient_cluster_edges(
      g, std::vector<int>(g.num_vertices(), 0), degen);
  EXPECT_LE(dist.max_out_degree, degen);
}

}  // namespace
}  // namespace ecd
