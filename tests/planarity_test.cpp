#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/seq/minor.h"
#include "src/seq/planarity.h"
#include "src/seq/properties.h"

namespace ecd::seq {
namespace {

using graph::Graph;
using graph::Rng;

TEST(Planarity, SmallGraphsArePlanar) {
  EXPECT_TRUE(is_planar(graph::complete(4)));
  EXPECT_TRUE(is_planar(graph::path(2)));
  EXPECT_TRUE(is_planar(graph::cycle(3)));
}

TEST(Planarity, K5IsNotPlanar) { EXPECT_FALSE(is_planar(graph::complete(5))); }

TEST(Planarity, K33IsNotPlanar) {
  EXPECT_FALSE(is_planar(graph::complete_bipartite(3, 3)));
}

TEST(Planarity, K6IsNotPlanar) { EXPECT_FALSE(is_planar(graph::complete(6))); }

TEST(Planarity, PetersenIsNotPlanar) {
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 5; ++i) {
    edges.push_back({i, (i + 1) % 5});
    edges.push_back({5 + i, 5 + (i + 2) % 5});
    edges.push_back({i, 5 + i});
  }
  EXPECT_FALSE(is_planar(Graph::from_edges(10, std::move(edges))));
}

TEST(Planarity, SubdividedK5IsNotPlanar) {
  // Subdivide every edge of K5 once: still contains a K5 subdivision.
  Graph k5 = graph::complete(5);
  std::vector<graph::Edge> edges;
  int next = 5;
  for (const graph::Edge& e : k5.edges()) {
    edges.push_back({e.u, next});
    edges.push_back({e.v, next});
    ++next;
  }
  EXPECT_FALSE(is_planar(Graph::from_edges(next, std::move(edges))));
}

TEST(Planarity, GridsArePlanar) {
  EXPECT_TRUE(is_planar(graph::grid(7, 9)));
  EXPECT_TRUE(is_planar(graph::grid(1, 20)));
}

TEST(Planarity, TriangulationsArePlanar) {
  Rng rng(42);
  for (int n : {5, 20, 100, 500}) {
    EXPECT_TRUE(is_planar(graph::random_maximal_planar(n, rng))) << n;
  }
}

TEST(Planarity, TriangulationPlusAnyEdgeIsNotPlanar) {
  Rng rng(43);
  for (int trial = 0; trial < 10; ++trial) {
    Graph tri = graph::random_maximal_planar(30, rng);
    Graph g = graph::plus_random_edges(tri, 1, rng);
    EXPECT_FALSE(is_planar(g)) << "trial " << trial;
  }
}

TEST(Planarity, SubgraphsOfTriangulationsArePlanar) {
  Rng rng(44);
  for (int trial = 0; trial < 10; ++trial) {
    EXPECT_TRUE(is_planar(graph::random_planar(40, 60, rng)));
  }
}

TEST(Planarity, TwoTreesArePlanar) {
  Rng rng(45);
  EXPECT_TRUE(is_planar(graph::random_two_tree(100, rng)));
}

TEST(Planarity, DisjointUnionOfPlanarIsPlanar) {
  Rng rng(46);
  EXPECT_TRUE(is_planar(graph::disjoint_union(
      {graph::grid(4, 4), graph::random_maximal_planar(20, rng)})));
}

TEST(Planarity, DisjointUnionWithK5IsNotPlanar) {
  EXPECT_FALSE(
      is_planar(graph::disjoint_union({graph::grid(4, 4), graph::complete(5)})));
}

TEST(Planarity, DeepPathDoesNotOverflowStack) {
  EXPECT_TRUE(is_planar(graph::path(200000)));
}

TEST(Planarity, LargeTriangulation) {
  Rng rng(47);
  EXPECT_TRUE(is_planar(graph::random_maximal_planar(20000, rng)));
}

TEST(Planarity, EulerBound) {
  EXPECT_TRUE(satisfies_euler_bound(graph::grid(5, 5)));
  EXPECT_FALSE(satisfies_euler_bound(graph::complete(6)));
}

// Cross-validation against the branch-set minor oracle on small random
// graphs: the two independent implementations must agree.
TEST(Planarity, AgreesWithMinorOracleOnRandomGraphs) {
  Rng rng(48);
  int checked = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const int n = 5 + static_cast<int>(rng() % 6);  // 5..10
    Graph g = graph::erdos_renyi(n, 0.45, rng);
    const auto oracle = is_planar_by_minors(g);
    if (!oracle.has_value()) continue;  // budget exhausted: skip
    ++checked;
    EXPECT_EQ(is_planar(g), *oracle) << "trial " << trial << " n=" << n;
  }
  EXPECT_GE(checked, 40);
}

TEST(Demoucron, AgreesWithLeftRightOnNamedGraphs) {
  EXPECT_TRUE(is_planar_demoucron(graph::grid(6, 9)));
  EXPECT_TRUE(is_planar_demoucron(graph::complete(4)));
  EXPECT_FALSE(is_planar_demoucron(graph::complete(5)));
  EXPECT_FALSE(is_planar_demoucron(graph::complete_bipartite(3, 3)));
  EXPECT_FALSE(is_planar_demoucron(graph::complete(6)));
  Rng rng(97);
  EXPECT_TRUE(is_planar_demoucron(graph::random_maximal_planar(150, rng)));
  EXPECT_TRUE(is_planar_demoucron(graph::random_two_tree(100, rng)));
  EXPECT_TRUE(is_planar_demoucron(graph::random_tree(80, rng)));
}

TEST(Demoucron, TriangulationPlusEdgeRejected) {
  Rng rng(98);
  for (int trial = 0; trial < 5; ++trial) {
    Graph tri = graph::random_maximal_planar(40, rng);
    EXPECT_FALSE(is_planar_demoucron(graph::plus_random_edges(tri, 1, rng)))
        << trial;
  }
}

// Large-scale cross-validation of the two independent planarity testers on
// random near-threshold instances (the regime where both planar and
// non-planar graphs are common).
TEST(Demoucron, CrossValidatesLeftRightAtScale) {
  Rng rng(99);
  int planar_seen = 0, nonplanar_seen = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const int n = 8 + static_cast<int>(rng() % 20);  // 8..27
    const int m = std::min(3 * n - 6 + 2,
                           n + static_cast<int>(rng() % (2 * n)));
    graph::GraphBuilder b(n);
    std::uniform_int_distribution<graph::VertexId> pick(0, n - 1);
    int added = 0;
    long guard = 0;
    while (added < m && guard++ < 100L * m) {
      added += b.add_edge(pick(rng), pick(rng));
    }
    const Graph g = std::move(b).build();
    const bool lr = is_planar(g);
    const bool dm = is_planar_demoucron(g);
    ASSERT_EQ(lr, dm) << "trial " << trial << " n=" << n
                      << " m=" << g.num_edges();
    planar_seen += lr;
    nonplanar_seen += !lr;
  }
  // The sweep must actually exercise both outcomes.
  EXPECT_GT(planar_seen, 10);
  EXPECT_GT(nonplanar_seen, 10);
}

TEST(Demoucron, CrossValidatesOnPlanarSubgraphSweep) {
  Rng rng(100);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 20 + static_cast<int>(rng() % 30);
    const int m = static_cast<int>(rng() % (3 * n - 6));
    const Graph g = graph::random_planar(n, m, rng);
    ASSERT_TRUE(is_planar_demoucron(g)) << trial;
    ASSERT_TRUE(is_planar(g)) << trial;
  }
}

TEST(Minor, K5MinorOfK6) {
  EXPECT_EQ(has_minor(graph::complete(6), graph::complete(5)),
            std::optional<bool>(true));
}

TEST(Minor, PetersenContainsK5Minor) {
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 5; ++i) {
    edges.push_back({i, (i + 1) % 5});
    edges.push_back({5 + i, 5 + (i + 2) % 5});
    edges.push_back({i, 5 + i});
  }
  Graph petersen = Graph::from_edges(10, std::move(edges));
  EXPECT_EQ(has_minor(petersen, graph::complete(5)),
            std::optional<bool>(true));
}

TEST(Minor, GridHasNoK5Minor) {
  // 3x3: disproving K5 on larger grids exhausts the search budget.
  EXPECT_EQ(has_minor(graph::grid(3, 3), graph::complete(5)),
            std::optional<bool>(false));
}

TEST(Minor, CycleContainsTriangleMinor) {
  EXPECT_EQ(has_minor(graph::cycle(9), graph::complete(3)),
            std::optional<bool>(true));
}

TEST(Minor, TreeHasNoCycleMinor) {
  Rng rng(50);
  EXPECT_EQ(has_minor(graph::random_tree(12, rng), graph::complete(3)),
            std::optional<bool>(false));
}

TEST(Properties, ForestRecognizer) {
  Rng rng(51);
  EXPECT_TRUE(is_forest(graph::random_tree(30, rng)));
  EXPECT_TRUE(is_forest(
      graph::disjoint_union({graph::path(4), graph::random_tree(10, rng)})));
  EXPECT_FALSE(is_forest(graph::cycle(4)));
}

TEST(Properties, Treewidth2Recognizer) {
  Rng rng(52);
  EXPECT_TRUE(has_treewidth_at_most_2(graph::random_two_tree(40, rng)));
  EXPECT_TRUE(has_treewidth_at_most_2(graph::cycle(9)));
  EXPECT_TRUE(has_treewidth_at_most_2(graph::random_tree(20, rng)));
  EXPECT_FALSE(has_treewidth_at_most_2(graph::complete(4)));
  EXPECT_FALSE(has_treewidth_at_most_2(graph::grid(3, 3)));
}

TEST(Properties, OuterplanarRecognizer) {
  Rng rng(53);
  EXPECT_TRUE(is_outerplanar(graph::random_outerplanar(30, rng)));
  EXPECT_TRUE(is_outerplanar(graph::cycle(8)));
  EXPECT_FALSE(is_outerplanar(graph::complete(4)));
  EXPECT_FALSE(is_outerplanar(graph::complete_bipartite(2, 3)));
  EXPECT_FALSE(is_outerplanar(graph::grid(3, 3)));
}

TEST(Properties, OuterplanarAgreesWithMinorOracle) {
  Rng rng(54);
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 5 + static_cast<int>(rng() % 4);
    Graph g = graph::erdos_renyi(n, 0.35, rng);
    const auto oracle = is_outerplanar_by_minors(g);
    if (!oracle.has_value()) continue;
    ++checked;
    EXPECT_EQ(is_outerplanar(g), *oracle) << "trial " << trial;
  }
  EXPECT_GE(checked, 30);
}

TEST(Properties, CliqueThresholds) {
  EXPECT_EQ(forest_property().clique_threshold, 3);
  EXPECT_EQ(outerplanar_property().clique_threshold, 4);
  EXPECT_EQ(treewidth2_property().clique_threshold, 4);
  EXPECT_EQ(planar_property().clique_threshold, 5);
  // The thresholds are correct: K_{s-1} has the property, K_s does not.
  for (const auto& prop :
       {forest_property(), outerplanar_property(), treewidth2_property(),
        planar_property()}) {
    EXPECT_TRUE(prop.check(graph::complete(prop.clique_threshold - 1)))
        << prop.name;
    EXPECT_FALSE(prop.check(graph::complete(prop.clique_threshold)))
        << prop.name;
  }
}

}  // namespace
}  // namespace ecd::seq
