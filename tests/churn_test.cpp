// Topology churn in the fault layer (DESIGN.md §17).
//
// The churn schedule is data, not draws: FaultPlan::churn fixes every
// topology event at Network construction, events fire between rounds on
// the caller thread, and the port table is widened up front so surviving
// edges keep their ports across any event sequence. These suites pin the
// semantics on tiny hand-checked graphs (exact received counts, arrival
// rounds and purge totals), then the contracts that make churn usable at
// scale: bit-identical schedules across thread counts and the sparse
// fallback, warm-run equality with fresh construction (including after an
// aborted run), set_fault_seed revalidation, and the sweep engine's
// churn_permille axis reducing to a byte-identical aggregate at any
// worker count.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "src/congest/fault.h"
#include "src/congest/network.h"
#include "src/congest/trace.h"
#include "src/core/sweep.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tools/json_min.h"

namespace ecd {
namespace {

using congest::ChurnEvent;
using congest::ChurnKind;
using congest::CongestionError;
using congest::CrashEvent;
using congest::FaultPlan;
using congest::Message;
using congest::Network;
using congest::NetworkOptions;
using congest::RunStats;
using congest::VertexAlgorithm;
using graph::Graph;
using graph::VertexId;

Graph path3() { return Graph::from_edges(3, {{0, 1}, {1, 2}}); }

// Sends its id on every port (live or not) for `rounds` rounds, recording
// which rounds it executed, the first round each port delivered anything,
// an order-sensitive digest, and a per-round port_live probe.
class ProbeAlgo final : public VertexAlgorithm {
 public:
  explicit ProbeAlgo(int rounds) : rounds_(rounds) {}

  void round(congest::Context& ctx) override {
    executed_.push_back(ctx.round());
    if (first_arrival_.empty()) first_arrival_.assign(ctx.num_ports(), -1);
    if (live_at_.empty()) live_at_.assign(ctx.num_ports(), -1);
    for (int p = 0; p < ctx.num_ports(); ++p) {
      if (ctx.port_live(p) && live_at_[p] < 0) live_at_[p] = ctx.round();
      for (const Message& m : ctx.inbox(p)) {
        if (first_arrival_[p] < 0) first_arrival_[p] = ctx.round();
        digest_ = digest_ * 0x100000001b3ULL ^
                  static_cast<std::uint64_t>(m.words[0]);
        ++received_;
      }
    }
    if (ctx.round() < rounds_) {
      for (int p = 0; p < ctx.num_ports(); ++p) ctx.send(p, {{ctx.id()}});
    } else {
      done_ = true;
    }
  }
  bool finished() const override { return done_; }

  const std::vector<std::int64_t>& executed() const { return executed_; }
  const std::vector<std::int64_t>& first_arrival() const {
    return first_arrival_;
  }
  const std::vector<std::int64_t>& live_at() const { return live_at_; }
  std::int64_t received() const { return received_; }
  std::uint64_t digest() const { return digest_; }

 private:
  int rounds_;
  std::vector<std::int64_t> executed_;
  std::vector<std::int64_t> first_arrival_;  // -1 = port never delivered
  std::vector<std::int64_t> live_at_;        // first round port_live() held
  std::int64_t received_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;
  bool done_ = false;
};

struct ProbeOutcome {
  RunStats stats;
  std::vector<std::uint64_t> digests;
  std::vector<std::int64_t> received;
};

std::vector<std::unique_ptr<VertexAlgorithm>> make_probes(const Graph& g,
                                                          int rounds) {
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    algos.push_back(std::make_unique<ProbeAlgo>(rounds));
  }
  return algos;
}

ProbeOutcome collect(const RunStats& stats,
                     const std::vector<std::unique_ptr<VertexAlgorithm>>& a) {
  ProbeOutcome out;
  out.stats = stats;
  for (const auto& algo : a) {
    const auto& p = static_cast<const ProbeAlgo&>(*algo);
    out.digests.push_back(p.digest());
    out.received.push_back(p.received());
  }
  return out;
}

ProbeOutcome run_probes(const Graph& g, const FaultPlan& plan,
                        int num_threads, int rounds = 12,
                        int sparse_threshold = 0) {
  NetworkOptions opt;
  opt.num_threads = num_threads;
  opt.sparse_serial_threshold = sparse_threshold;
  opt.faults = plan;
  Network net(g, opt);
  auto algos = make_probes(g, rounds);
  const RunStats stats = net.run(algos);
  return collect(stats, algos);
}

void expect_same_outcome(const ProbeOutcome& a, const ProbeOutcome& b) {
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.words_sent, b.stats.words_sent);
  EXPECT_EQ(a.stats.max_edge_load, b.stats.max_edge_load);
  EXPECT_EQ(a.stats.messages_dropped, b.stats.messages_dropped);
  EXPECT_EQ(a.stats.messages_duplicated, b.stats.messages_duplicated);
  EXPECT_EQ(a.stats.messages_delayed, b.stats.messages_delayed);
  EXPECT_EQ(a.stats.vertices_crashed, b.stats.vertices_crashed);
  EXPECT_EQ(a.stats.churn_events, b.stats.churn_events);
  EXPECT_EQ(a.stats.messages_purged, b.stats.messages_purged);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.received, b.received);
}

// --- Construction-time validation -------------------------------------------

TEST(ChurnConstruction, DeleteOfUnknownEdgeThrows) {
  const Graph g = path3();
  FaultPlan plan;
  NetworkOptions opt;
  // {0, 2} is neither a graph edge nor inserted by the plan.
  plan.churn = {{ChurnKind::kEdgeDelete, 1, 0, 2}};
  opt.faults = plan;
  EXPECT_THROW(Network(g, opt), std::invalid_argument);

  // The same delete is fine once the plan also inserts the edge.
  plan.churn = {{ChurnKind::kEdgeInsert, 1, 0, 2},
                {ChurnKind::kEdgeDelete, 3, 0, 2}};
  opt.faults = plan;
  EXPECT_NO_THROW(Network(g, opt));
}

TEST(ChurnConstruction, ValidationRejectsMalformedEvents) {
  FaultPlan plan;
  plan.churn = {{ChurnKind::kEdgeDelete, 1, 0, 7}};  // vertex out of range
  EXPECT_THROW(plan.validate(3), std::invalid_argument);
  plan.churn = {{ChurnKind::kEdgeInsert, 1, 2, 2}};  // self loop
  EXPECT_THROW(plan.validate(3), std::invalid_argument);
  plan.churn = {{ChurnKind::kNodeLeave, -1, 0, -1}};  // negative round
  EXPECT_THROW(plan.validate(3), std::invalid_argument);
  plan.churn = {{ChurnKind::kNodeJoin, 0, -1, -1}};  // negative vertex
  EXPECT_THROW(plan.validate(3), std::invalid_argument);
}

// --- Event semantics on hand-checked graphs ----------------------------------

TEST(ChurnSemantics, EdgeDeleteStopsTrafficAndCountsPurgedSends) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  FaultPlan plan;
  plan.churn = {{ChurnKind::kEdgeDelete, 3, 0, 1}};
  NetworkOptions opt;
  opt.faults = plan;
  Network net(g, opt);
  auto algos = make_probes(g, /*rounds=*/6);
  const RunStats stats = net.run(algos);

  // Sends fire in rounds 0..5 and arrive one round later; the delete fires
  // before round 3's compute, so the round-2 sends (already in round 3's
  // inbox) still land and everything after is discarded at send().
  for (const auto& a : algos) {
    EXPECT_EQ(static_cast<const ProbeAlgo&>(*a).received(), 3);
  }
  EXPECT_EQ(stats.churn_events, 1);
  EXPECT_EQ(stats.messages_purged, 2 * 3);  // both endpoints, rounds 3..5
}

TEST(ChurnSemantics, InsertedEdgeCarriesTrafficFromItsRound) {
  const Graph g = path3();  // 0-1-2; {0, 2} does not exist yet
  FaultPlan plan;
  plan.churn = {{ChurnKind::kEdgeInsert, 4, 0, 2}};
  NetworkOptions opt;
  opt.faults = plan;
  Network net(g, opt);
  auto algos = make_probes(g, /*rounds=*/8);
  const RunStats stats = net.run(algos);

  // Port numbering: initial CSR ports first, insert-only ports after —
  // vertex 0's port 0 is still neighbor 1, the plan's edge rides port 1.
  const auto& v0 = static_cast<const ProbeAlgo&>(*algos[0]);
  const auto& v2 = static_cast<const ProbeAlgo&>(*algos[2]);
  ASSERT_EQ(v0.first_arrival().size(), 2u);
  ASSERT_EQ(v2.first_arrival().size(), 2u);

  // The initial edge is live from round 0; the inserted port goes live at
  // round 4, and its first message (sent in round 4) arrives in round 5.
  EXPECT_EQ(v0.live_at()[0], 0);
  EXPECT_EQ(v0.live_at()[1], 4);
  EXPECT_EQ(v0.first_arrival()[0], 1);
  EXPECT_EQ(v0.first_arrival()[1], 5);
  EXPECT_EQ(v2.first_arrival()[1], 5);

  EXPECT_EQ(stats.churn_events, 1);
  // Rounds 0..3 sends on the not-yet-live port, from both endpoints.
  EXPECT_EQ(stats.messages_purged, 2 * 4);
}

TEST(ChurnSemantics, NodeLeaveStopsExecutionAndJoinResumesWithoutEdges) {
  const Graph g = path3();
  FaultPlan plan;
  plan.churn = {{ChurnKind::kNodeLeave, 2, 1, -1},
                {ChurnKind::kNodeJoin, 5, 1, -1}};
  NetworkOptions opt;
  opt.faults = plan;
  Network net(g, opt);
  auto algos = make_probes(g, /*rounds=*/8);
  const RunStats stats = net.run(algos);

  // The leave fires before round 2's compute and the join before round
  // 5's, so vertex 1 executes rounds {0, 1, 5, 6, 7, 8} exactly.
  const auto& v1 = static_cast<const ProbeAlgo&>(*algos[1]);
  EXPECT_EQ(v1.executed(),
            (std::vector<std::int64_t>{0, 1, 5, 6, 7, 8}));
  // kNodeJoin restores the vertex, not its links: nothing vertex 1 sends
  // after rejoining arrives anywhere, so 0 and 2 only ever see the sends
  // of rounds 0 and 1.
  EXPECT_EQ(static_cast<const ProbeAlgo&>(*algos[0]).received(), 2);
  EXPECT_EQ(static_cast<const ProbeAlgo&>(*algos[2]).received(), 2);
  EXPECT_EQ(stats.churn_events, 2);
  EXPECT_GT(stats.messages_purged, 0);
}

TEST(ChurnFaults, DelayedMessagesOnADeadPortArePurgedAndTheRunTerminates) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  FaultPlan plan;
  plan.seed = 0x5eedULL;
  plan.delay_probability = 1.0;  // every message is held back 1..3 rounds
  plan.max_delay_rounds = 3;
  plan.churn = {{ChurnKind::kEdgeDelete, 2, 0, 1}};
  NetworkOptions opt;
  opt.faults = plan;
  opt.max_rounds = 100;
  Network net(g, opt);
  auto algos = make_probes(g, /*rounds=*/6);
  // The load-bearing assertion is termination: a delayed message parked on
  // the deleted port must be purged, not waited for.
  const RunStats stats = net.run(algos);
  EXPECT_GT(stats.messages_delayed, 0);
  EXPECT_GT(stats.messages_purged, 0);
  EXPECT_LT(stats.rounds, 20);
}

// --- Determinism across execution shapes -------------------------------------

FaultPlan stress_plan(const Graph& g) {
  FaultPlan plan;
  plan.seed = 0xfeedULL;
  plan.drop_probability = 0.05;
  plan.duplicate_probability = 0.04;
  plan.delay_probability = 0.06;
  plan.max_delay_rounds = 3;
  plan.crashes = {{7, 4}, {31, 6}};
  plan.churn = core::make_churn_plan(g, /*topo_seed=*/11,
                                     /*churn_permille=*/120);
  return plan;
}

TEST(ChurnDeterminism, IdenticalAcrossThreadCountsAndSparseFallback) {
  const Graph g = [] {
    graph::Rng rng(7);
    return graph::random_maximal_planar(150, rng);
  }();
  const FaultPlan plan = stress_plan(g);
  const ProbeOutcome serial = run_probes(g, plan, /*num_threads=*/1);
  // The schedule actually fired, or the fixture proves nothing.
  EXPECT_GT(serial.stats.churn_events, 0);
  EXPECT_GT(serial.stats.messages_purged, 0);
  for (const int t : {2, 4, 8}) {
    SCOPED_TRACE(t);
    expect_same_outcome(serial, run_probes(g, plan, t));
  }
  // Sparse serial fallback: a threshold above n forces every round onto
  // the calling thread regardless of num_threads.
  for (const int t : {1, 4}) {
    SCOPED_TRACE(t);
    expect_same_outcome(
        serial, run_probes(g, plan, t, /*rounds=*/12,
                           /*sparse_threshold=*/1'000'000));
  }
}

// --- Reuse: warm runs, aborted runs, reseeding -------------------------------

TEST(ChurnReuse, WarmRunsBitIdenticalToColdUnderChurnAndCrashes) {
  const Graph g = [] {
    graph::Rng rng(3);
    return graph::random_maximal_planar(100, rng);
  }();
  const FaultPlan plan = stress_plan(g);
  NetworkOptions opt;
  opt.faults = plan;
  Network net(g, opt);

  auto first = make_probes(g, 12);
  const ProbeOutcome cold = collect(net.run(first), first);
  // Second run on the same Network: reset_for_run must rewind the churn
  // cursor, port liveness and vertex presence along with the crash
  // schedule — any carry-over shows up in the digests.
  auto second = make_probes(g, 12);
  const ProbeOutcome warm = collect(net.run(second), second);
  expect_same_outcome(cold, warm);
  expect_same_outcome(cold, run_probes(g, plan, /*num_threads=*/1));
}

// Behaves until `bad_round`, then oversends on port 0 to trip the per-edge
// bandwidth budget mid-run.
class OversendAlgo final : public VertexAlgorithm {
 public:
  OversendAlgo(bool armed, std::int64_t bad_round)
      : armed_(armed), bad_round_(bad_round) {}
  void round(congest::Context& ctx) override {
    if (armed_ && ctx.round() == bad_round_) {
      for (int i = 0; i < 8; ++i) ctx.send(0, {{i}});
    }
  }
  bool finished() const override { return false; }

 private:
  bool armed_;
  std::int64_t bad_round_;
};

TEST(ChurnReuse, AbortedRunThenChurnRunMatchesFreshConstruction) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  FaultPlan plan;
  plan.churn = {{ChurnKind::kEdgeDelete, 1, 1, 2},
                {ChurnKind::kNodeLeave, 2, 3, -1},
                {ChurnKind::kEdgeInsert, 4, 1, 2},
                {ChurnKind::kNodeJoin, 5, 3, -1}};
  NetworkOptions opt;
  opt.faults = plan;
  opt.bandwidth_tokens = 2;
  Network net(g, opt);

  // Abort at round 3: two churn events have already fired, the port table
  // and presence flags are mid-schedule, and the arenas hold round-3 state.
  std::vector<std::unique_ptr<VertexAlgorithm>> bad;
  for (VertexId v = 0; v < 4; ++v) {
    bad.push_back(std::make_unique<OversendAlgo>(v == 0, 3));
  }
  EXPECT_THROW(net.run(bad), CongestionError);

  // The next run on the same Network must match a fresh one exactly.
  auto rerun = make_probes(g, 10);
  const ProbeOutcome recovered = collect(net.run(rerun), rerun);
  expect_same_outcome(recovered, run_probes(g, plan, /*num_threads=*/1,
                                            /*rounds=*/10));
  EXPECT_EQ(recovered.stats.churn_events, 4);
}

TEST(SetFaultSeed, ThrowsWithoutAnActiveFaultPlan) {
  const Graph g = path3();
  Network net(g, {});
  EXPECT_THROW(net.set_fault_seed(7), std::invalid_argument);
}

TEST(SetFaultSeed, ReseededRunEqualsFreshConstructionWithThatSeed) {
  const Graph g = [] {
    graph::Rng rng(5);
    return graph::random_maximal_planar(80, rng);
  }();
  FaultPlan plan = stress_plan(g);
  plan.seed = 1;
  NetworkOptions opt;
  opt.faults = plan;
  Network net(g, opt);
  auto warmup = make_probes(g, 12);
  net.run(warmup);

  net.set_fault_seed(0xabcdULL);
  auto reseeded = make_probes(g, 12);
  const ProbeOutcome warm = collect(net.run(reseeded), reseeded);
  FaultPlan fresh_plan = plan;
  fresh_plan.seed = 0xabcdULL;
  expect_same_outcome(warm, run_probes(g, fresh_plan, /*num_threads=*/1));
}

// --- The sweep engine's churn axis -------------------------------------------

TEST(ChurnSweep, MakeChurnPlanIsPureSortedAndValid) {
  const Graph g = graph::grid(8, 8);
  const auto plan = core::make_churn_plan(g, 42, 100);
  EXPECT_FALSE(plan.empty());
  EXPECT_EQ(plan, core::make_churn_plan(g, 42, 100));
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_LE(plan[i - 1].round, plan[i].round);
  }
  FaultPlan fp;
  fp.churn = plan;
  EXPECT_NO_THROW(fp.validate(g.num_vertices()));
  // Rate scales the schedule; zero disables it.
  EXPECT_GT(core::make_churn_plan(g, 42, 300).size(), plan.size());
  EXPECT_TRUE(core::make_churn_plan(g, 42, 0).empty());
  // A different topo_seed is a different schedule.
  EXPECT_NE(plan, core::make_churn_plan(g, 43, 100));
}

core::SweepSpec churn_sweep_spec() {
  core::SweepSpec spec;
  spec.families = {"grid"};
  spec.sizes = {49};
  spec.topo_seeds = {1};
  spec.run_seeds = {1, 2, 3};
  spec.algorithms = {"flood", "mis"};
  spec.threads = {1};
  spec.fault_permille = {0, 20};
  spec.churn_permille = {0, 60};
  return spec;
}

TEST(ChurnSweep, AggregateByteIdenticalAcrossWorkersAndWarmRepeats) {
  const core::SweepSpec spec = churn_sweep_spec();
  EXPECT_EQ(spec.num_cells(), 24);

  core::SweepEngine one;
  core::SweepOptions opt;
  opt.workers = 1;
  const std::string agg1 = one.run(spec, opt).aggregate_json();
  // Warm repeat on the same engine: every Network is cached, the
  // aggregate must not move.
  const auto& warm = one.run(spec, opt);
  EXPECT_EQ(warm.networks_built, 0);
  EXPECT_EQ(warm.aggregate_json(), agg1);

  core::SweepEngine four;
  opt.workers = 4;
  EXPECT_EQ(four.run(spec, opt).aggregate_json(), agg1);

  // Cold mode (fresh construction per run) is the reference the caches
  // must reproduce.
  core::SweepEngine cold;
  opt.workers = 1;
  opt.reuse = false;
  EXPECT_EQ(cold.run(spec, opt).aggregate_json(), agg1);

  // The nonzero churn cells actually churned, and the totals surface it.
  const jsonmin::Value doc = jsonmin::parse(agg1);
  EXPECT_GT(doc.at("totals").at("churn_events").number, 0.0);
  EXPECT_GE(doc.at("totals").at("purged").number, 0.0);
}

// --- Churn events through the trace layer (DESIGN.md §18) --------------------

// Raw recorder: keeps every churn callback verbatim so the tests below can
// pin the exact emission order and payloads.
class ChurnEventRecorder : public congest::TraceSink {
 public:
  struct Event {
    std::int64_t round;
    ChurnKind kind;
    graph::VertexId u, v;
  };
  struct Purge {
    std::int64_t round;
    graph::VertexId from, to;
    int count;
  };

  void on_churn_event(std::int64_t round, ChurnKind kind, graph::VertexId u,
                      graph::VertexId v) override {
    events.push_back({round, kind, u, v});
  }
  void on_churn(std::int64_t round, int count) override {
    lumps.push_back({round, count});
  }
  void on_churn_purge(std::int64_t round, graph::VertexId from,
                      graph::VertexId to, int count) override {
    purges.push_back({round, from, to, count});
    purged_total += count;
  }

  std::vector<Event> events;
  std::vector<std::pair<std::int64_t, int>> lumps;
  std::vector<Purge> purges;
  std::int64_t purged_total = 0;
};

// The schedule the pinned-emission tests run: leave(1)@2, insert(0,2)@4,
// join(1)@5 on the 3-path — one event of each surviving kind, each on its
// own round.
FaultPlan traced_churn_plan() {
  FaultPlan plan;
  plan.churn = {{ChurnKind::kNodeLeave, 2, 1, 0},
                {ChurnKind::kEdgeInsert, 4, 0, 2},
                {ChurnKind::kNodeJoin, 5, 1, 0}};
  return plan;
}

TEST(ChurnTrace, EventsEmitPerEventInScheduleOrderWithEndpoints) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  NetworkOptions opt;
  opt.faults = traced_churn_plan();
  ChurnEventRecorder rec;
  opt.trace = &rec;
  Network net(g, opt);
  auto algos = make_probes(g, /*rounds=*/8);
  const RunStats stats = net.run(algos);
  EXPECT_EQ(stats.churn_events, 3);

  // One on_churn_event per scheduled event, in schedule order. Node events
  // carry u with v == kInvalidVertex; the edge insert carries both
  // endpoints as (port owner, port peer) of the new edge's first port.
  ASSERT_EQ(rec.events.size(), 3u);
  EXPECT_EQ(rec.events[0].round, 2);
  EXPECT_EQ(rec.events[0].kind, ChurnKind::kNodeLeave);
  EXPECT_EQ(rec.events[0].u, 1);
  EXPECT_EQ(rec.events[0].v, graph::kInvalidVertex);
  EXPECT_EQ(rec.events[1].round, 4);
  EXPECT_EQ(rec.events[1].kind, ChurnKind::kEdgeInsert);
  EXPECT_EQ(rec.events[1].u, 0);
  EXPECT_EQ(rec.events[1].v, 2);
  EXPECT_EQ(rec.events[2].round, 5);
  EXPECT_EQ(rec.events[2].kind, ChurnKind::kNodeJoin);
  EXPECT_EQ(rec.events[2].u, 1);
  EXPECT_EQ(rec.events[2].v, graph::kInvalidVertex);

  // Each fired round also got its lump summary, after the per-event calls.
  EXPECT_EQ(rec.lumps, (std::vector<std::pair<std::int64_t, int>>{
                           {2, 1}, {4, 1}, {5, 1}}));
  // Nothing on this schedule dies under pending traffic: post-churn sends
  // to dead ports are dropped at send() and are *not* per-edge purges.
  EXPECT_TRUE(rec.purges.empty());
}

TEST(ChurnTrace, CollectorPinsChurnStatsAndExportsTheChurnLine) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  NetworkOptions opt;
  opt.faults = traced_churn_plan();
  congest::MetricsCollector mc;
  opt.trace = &mc;
  Network net(g, opt);
  auto algos = make_probes(g, /*rounds=*/8);
  net.run(algos);

  const congest::ChurnStats& c = mc.churn_stats();
  EXPECT_EQ(c.edge_inserts, 1);
  EXPECT_EQ(c.edge_deletes, 0);
  EXPECT_EQ(c.node_leaves, 1);
  EXPECT_EQ(c.node_joins, 1);
  EXPECT_EQ(c.total_events(), 3);
  EXPECT_EQ(c.purge_events, 0);
  EXPECT_EQ(c.messages_purged, 0);

  std::ostringstream os;
  congest::export_jsonl(mc, os);
  EXPECT_NE(os.str().find("{\"type\":\"churn\",\"edge_inserts\":1,"
                          "\"edge_deletes\":0,\"node_leaves\":1,"
                          "\"node_joins\":1,\"purge_events\":0,"
                          "\"messages_purged\":0}"),
            std::string::npos);
}

TEST(ChurnTrace, DeliveryPurgesAreTracedPerEdgeButSendDropsAreNot) {
  // The one schedule that produces true delivery-time purges: every
  // message is delayed 1..3 rounds, and the only edge dies at round 2 with
  // traffic parked on it (the ChurnFaults termination scenario, traced).
  const Graph g = Graph::from_edges(2, {{0, 1}});
  FaultPlan plan;
  plan.seed = 0x5eedULL;
  plan.delay_probability = 1.0;
  plan.max_delay_rounds = 3;
  plan.churn = {{ChurnKind::kEdgeDelete, 2, 0, 1}};
  NetworkOptions opt;
  opt.faults = plan;
  opt.max_rounds = 100;
  ChurnEventRecorder rec;
  opt.trace = &rec;
  Network net(g, opt);
  auto algos = make_probes(g, /*rounds=*/6);
  const RunStats stats = net.run(algos);

  // The parked messages were purged as per-edge trace events...
  ASSERT_FALSE(rec.purges.empty());
  for (const auto& p : rec.purges) {
    EXPECT_GE(p.round, 2);
    EXPECT_TRUE((p.from == 0 && p.to == 1) || (p.from == 1 && p.to == 0));
    EXPECT_GT(p.count, 0);
  }
  // ...and RunStats' purge total covers them. The two need not be equal:
  // the probes keep sending on the dead port after the delete, and those
  // dead-port send drops count in RunStats but are not per-edge purges.
  EXPECT_GT(rec.purged_total, 0);
  EXPECT_LE(rec.purged_total, stats.messages_purged);
}

TEST(ChurnTrace, SendDropsCountInRunStatsButNotAsPurgeEvents) {
  // The inverse pin: the EdgeDeleteStopsTraffic scenario purges 6 messages
  // in RunStats, every one a dead-port send drop — the trace layer must
  // report zero per-edge purge events for it.
  const Graph g = Graph::from_edges(2, {{0, 1}});
  FaultPlan plan;
  plan.churn = {{ChurnKind::kEdgeDelete, 3, 0, 1}};
  NetworkOptions opt;
  opt.faults = plan;
  congest::MetricsCollector mc;
  opt.trace = &mc;
  Network net(g, opt);
  auto algos = make_probes(g, /*rounds=*/6);
  const RunStats stats = net.run(algos);
  EXPECT_EQ(stats.messages_purged, 6);
  EXPECT_EQ(mc.churn_stats().edge_deletes, 1);
  EXPECT_EQ(mc.churn_stats().purge_events, 0);
  EXPECT_EQ(mc.churn_stats().messages_purged, 0);
}

}  // namespace
}  // namespace ecd
