// Tests for the sweep engine (src/core/sweep.h): spec parsing and
// validation, expansion order, and — the load-bearing part — the reuse
// contract: warm runs on cached Networks must be bit-identical to fresh
// standalone runs (records, metrics snapshots, JSONL report lines), and
// the cross-run aggregate must be byte-identical across worker counts,
// cold/warm modes and repeated executions. Also covers the Network-level
// primitives the engine is built on: reset_for_run() (including after an
// aborted run), set_fault_seed(), and NetworkOptions::shared_pool.
#include "src/core/sweep.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/congest/metrics.h"
#include "src/congest/network.h"
#include "src/congest/thread_pool.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tools/json_min.h"

namespace ecd::core {
namespace {

using congest::Context;
using congest::MetricsRegistry;
using congest::Network;
using congest::NetworkOptions;
using congest::RunStats;
using congest::ThreadPool;
using congest::VertexAlgorithm;
using graph::Graph;

// --- Spec parsing -----------------------------------------------------------

TEST(SweepSpec, ParseEmptyGivesDefaults) {
  const SweepSpec s = parse_sweep_spec("{}");
  EXPECT_EQ(s.families, std::vector<std::string>{"grid"});
  EXPECT_EQ(s.sizes, std::vector<int>{256});
  EXPECT_EQ(s.topo_seeds, std::vector<std::uint64_t>{1});
  EXPECT_EQ(s.run_seeds, std::vector<std::uint64_t>{1});
  EXPECT_EQ(s.algorithms, std::vector<std::string>{"flood"});
  EXPECT_EQ(s.threads, std::vector<int>{1});
  EXPECT_EQ(s.fault_permille, std::vector<int>{0});
  EXPECT_EQ(s.pingpong_rounds, 16);
  EXPECT_EQ(s.bandwidth_tokens, 2);
  EXPECT_EQ(s.num_cells(), 1);
  EXPECT_NO_THROW(s.validate());
}

TEST(SweepSpec, ParseFullSpec) {
  const SweepSpec s = parse_sweep_spec(R"({
    "families": ["grid", "tree"],
    "sizes": [64, 128],
    "topo_seeds": [1, 2, 3],
    "run_seeds": [7, 8],
    "algorithms": ["flood", "mis", "pingpong"],
    "threads": [1, 4],
    "fault_permille": [0, 25],
    "pingpong_rounds": 8,
    "bandwidth_tokens": 3,
    "sparse_serial_threshold": 0,
    "max_rounds": 100000
  })");
  EXPECT_EQ(s.families, (std::vector<std::string>{"grid", "tree"}));
  EXPECT_EQ(s.sizes, (std::vector<int>{64, 128}));
  EXPECT_EQ(s.topo_seeds, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(s.run_seeds, (std::vector<std::uint64_t>{7, 8}));
  EXPECT_EQ(s.algorithms, (std::vector<std::string>{"flood", "mis", "pingpong"}));
  EXPECT_EQ(s.threads, (std::vector<int>{1, 4}));
  EXPECT_EQ(s.fault_permille, (std::vector<int>{0, 25}));
  EXPECT_EQ(s.pingpong_rounds, 8);
  EXPECT_EQ(s.bandwidth_tokens, 3);
  EXPECT_EQ(s.sparse_serial_threshold, 0);
  EXPECT_EQ(s.max_rounds, 100000);
  EXPECT_EQ(s.num_cells(), 2 * 2 * 3 * 2 * 3 * 2 * 2);
}

TEST(SweepSpec, UnknownKeyThrows) {
  EXPECT_THROW(parse_sweep_spec(R"({"familys": ["grid"]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(R"({"size": [64]})"), std::invalid_argument);
}

TEST(SweepSpec, BadValuesThrow) {
  // Wrong JSON types.
  EXPECT_THROW(parse_sweep_spec(R"({"sizes": "64"})"), std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(R"({"families": [64]})"),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(R"({"pingpong_rounds": [4]})"),
               std::invalid_argument);
  // Structurally valid, semantically bad: validate() throws.
  EXPECT_THROW(parse_sweep_spec(R"({"families": ["moebius"]})").validate(),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(R"({"algorithms": ["bfs"]})").validate(),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(R"({"sizes": [1]})").validate(),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(R"({"sizes": []})").validate(),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(R"({"fault_permille": [500]})").validate(),
               std::invalid_argument);
  EXPECT_THROW(parse_sweep_spec(R"({"threads": [-1]})").validate(),
               std::invalid_argument);
}

// --- Expansion --------------------------------------------------------------

TEST(ExpandSweep, OrderAndContiguity) {
  SweepSpec s;
  s.families = {"grid", "tree"};
  s.sizes = {64};
  s.topo_seeds = {1};
  s.algorithms = {"flood", "mis"};
  s.threads = {1, 2};
  s.fault_permille = {0, 10};
  s.run_seeds = {1, 2, 3};
  const std::vector<SweepCell> cells = expand_sweep(s);
  ASSERT_EQ(static_cast<std::int64_t>(cells.size()), s.num_cells());
  ASSERT_EQ(cells.size(), 2u * 2 * 2 * 2 * 3);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].index, static_cast<std::int64_t>(i));
    // run_seed is the fastest axis...
    EXPECT_EQ(cells[i].run_seed, s.run_seeds[i % s.run_seeds.size()]);
    // ...so cells within a |run_seeds| block share every other coordinate
    // (the contiguity the network cache's grouping relies on).
    const SweepCell& head = cells[i - i % s.run_seeds.size()];
    EXPECT_EQ(cells[i].family, head.family);
    EXPECT_EQ(cells[i].n, head.n);
    EXPECT_EQ(cells[i].topo_seed, head.topo_seed);
    EXPECT_EQ(cells[i].algorithm, head.algorithm);
    EXPECT_EQ(cells[i].threads, head.threads);
    EXPECT_EQ(cells[i].fault_permille, head.fault_permille);
  }
  // families is the slowest axis.
  EXPECT_EQ(cells.front().family, "grid");
  EXPECT_EQ(cells.back().family, "tree");
  // fault_permille is the second-fastest.
  EXPECT_EQ(cells[0].fault_permille, 0);
  EXPECT_EQ(cells[3].fault_permille, 10);
}

// --- The reuse contract -----------------------------------------------------

// A mixed grid small enough to run in tests yet covering every axis the
// caches key on: two families, three algorithms, serial and parallel
// cells, faults on and off, several run seeds.
SweepSpec mixed_spec() {
  SweepSpec s;
  s.families = {"grid", "tree"};
  s.sizes = {96};
  s.topo_seeds = {1};
  s.run_seeds = {1, 2};
  s.algorithms = {"flood", "mis", "pingpong"};
  s.threads = {1, 4};
  s.fault_permille = {0, 25};
  s.pingpong_rounds = 8;
  return s;
}

void expect_records_equal(const SweepRunRecord& got,
                          const SweepRunRecord& want) {
  EXPECT_EQ(got.cell.index, want.cell.index);
  EXPECT_EQ(got.result_word, want.result_word) << "cell " << got.cell.index;
  EXPECT_EQ(got.stats.rounds, want.stats.rounds) << "cell " << got.cell.index;
  EXPECT_EQ(got.stats.messages_sent, want.stats.messages_sent);
  EXPECT_EQ(got.stats.words_sent, want.stats.words_sent);
  EXPECT_EQ(got.stats.max_edge_load, want.stats.max_edge_load);
  EXPECT_EQ(got.stats.messages_dropped, want.stats.messages_dropped);
  EXPECT_EQ(got.stats.messages_duplicated, want.stats.messages_duplicated);
  EXPECT_EQ(got.stats.messages_delayed, want.stats.messages_delayed);
  EXPECT_EQ(got.stats.vertices_crashed, want.stats.vertices_crashed);
}

TEST(SweepEngine, WarmRecordsMatchFreshRuns) {
  const SweepSpec spec = mixed_spec();
  SweepEngine engine;
  // Two consecutive warm executions: the second reuses every cached
  // Network (N consecutive runs per Network across both passes).
  (void)engine.run(spec);
  const SweepResult& warm = engine.run(spec);
  EXPECT_EQ(warm.graphs_built, 0);
  EXPECT_EQ(warm.networks_built, 0);
  EXPECT_EQ(warm.cache_hits, spec.num_cells());
  const std::vector<SweepCell> cells = expand_sweep(spec);
  ASSERT_EQ(warm.records.size(), cells.size());
  for (const SweepCell& cell : cells) {
    const SweepRunRecord fresh = SweepEngine::run_cell_fresh(spec, cell);
    expect_records_equal(warm.records[static_cast<std::size_t>(cell.index)],
                         fresh);
  }
}

TEST(SweepEngine, AggregateByteIdenticalAcrossWorkersAndModes) {
  const SweepSpec spec = mixed_spec();
  SweepEngine engine;
  SweepOptions o1;
  o1.workers = 1;
  const std::string warm1 = engine.run(spec, o1).aggregate_json();
  SweepOptions o4;
  o4.workers = 4;
  const std::string warm4 = engine.run(spec, o4).aggregate_json();
  const std::string warm4b = engine.run(spec, o4).aggregate_json();
  SweepOptions cold;
  cold.workers = 4;
  cold.reuse = false;
  SweepEngine fresh_engine;
  const std::string cold4 = fresh_engine.run(spec, cold).aggregate_json();
  EXPECT_EQ(warm1, warm4);
  EXPECT_EQ(warm1, warm4b);
  EXPECT_EQ(warm1, cold4);
  // The aggregate is non-trivial: it actually saw the runs.
  const jsonmin::Value doc = jsonmin::parse(warm1);
  EXPECT_EQ(doc.at("schema").string, "ecd-sweep-aggregate-v1");
  EXPECT_EQ(static_cast<std::int64_t>(doc.at("runs").number),
            spec.num_cells());
  EXPECT_GT(doc.at("totals").at("messages").number, 0.0);
  EXPECT_GT(doc.at("totals").at("dropped").number, 0.0);
}

TEST(SweepEngine, ColdModeCachesNothing) {
  const SweepSpec spec = mixed_spec();
  SweepEngine engine;
  SweepOptions cold;
  cold.reuse = false;
  const SweepResult& r = engine.run(spec, cold);
  EXPECT_EQ(r.graphs_built, spec.num_cells());
  EXPECT_EQ(r.networks_built, spec.num_cells());
  EXPECT_EQ(r.cache_hits, 0);
  // Nothing was cached: the next warm run builds everything.
  const SweepResult& warm = engine.run(spec);
  EXPECT_GT(warm.graphs_built, 0);
  EXPECT_GT(warm.networks_built, 0);
}

TEST(SweepEngine, ClearCacheMakesNextRunCold) {
  SweepSpec spec;
  spec.sizes = {64};
  SweepEngine engine;
  (void)engine.run(spec);
  engine.clear_cache();
  const SweepResult& r = engine.run(spec);
  EXPECT_EQ(r.graphs_built, 1);
  EXPECT_EQ(r.networks_built, 1);
}

// Splits an ecd-run-report-v1 line into the deterministic prefix (up to
// the "wall" section) and suffix (from "metrics" on). Wall clock is the
// one non-deterministic section; everything else must match byte-for-byte.
std::pair<std::string, std::string> split_report_line(const std::string& line) {
  const std::size_t wall = line.find(",\"wall\":");
  const std::size_t metrics = line.find(",\"metrics\":");
  EXPECT_NE(wall, std::string::npos) << line.substr(0, 120);
  EXPECT_NE(metrics, std::string::npos) << line.substr(0, 120);
  return {line.substr(0, wall), line.substr(metrics)};
}

TEST(SweepEngine, JsonlLinesBitIdenticalToStandaloneRuns) {
  const SweepSpec spec = mixed_spec();
  SweepEngine engine;
  (void)engine.run(spec);  // warm the caches first: reporting runs reuse too
  std::ostringstream sink;
  SweepOptions opts;
  opts.workers = 4;
  opts.jsonl = &sink;
  (void)engine.run(spec, opts);

  const std::vector<SweepCell> cells = expand_sweep(spec);
  std::vector<std::string> lines(cells.size());
  std::istringstream in(sink.str());
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    const jsonmin::Value doc = jsonmin::parse(line);
    EXPECT_EQ(doc.at("schema").string, "ecd-run-report-v1");
    // Info values are emitted as JSON strings.
    const auto run =
        static_cast<std::size_t>(std::stoull(doc.at("info").at("run").string));
    ASSERT_LT(run, lines.size());
    lines[run] = line + "\n";
    ++count;
  }
  ASSERT_EQ(count, cells.size());  // one line per cell, each exactly once
  for (const SweepCell& cell : cells) {
    const std::string ref = SweepEngine::reference_report_line(spec, cell);
    const auto [got_head, got_tail] =
        split_report_line(lines[static_cast<std::size_t>(cell.index)]);
    const auto [want_head, want_tail] = split_report_line(ref);
    EXPECT_EQ(got_head, want_head) << "cell " << cell.index;
    EXPECT_EQ(got_tail, want_tail) << "cell " << cell.index;
  }
}

// --- Network::reset_for_run -------------------------------------------------

// Minimal flood: vertex 0 seeds a value, everyone forwards it once.
class FloodProbe final : public VertexAlgorithm {
 public:
  explicit FloodProbe(bool source) : source_(source) {}
  void round(Context& ctx) override {
    if (ctx.round() == 0) {
      if (source_) value_ = 41;
      if (value_ && !sent_) broadcast(ctx);
      return;
    }
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const congest::Message& m : ctx.inbox(p)) {
        if (!value_) value_ = m.words[0];
      }
    }
    if (value_ && !sent_) broadcast(ctx);
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  void broadcast(Context& ctx) {
    for (int p = 0; p < ctx.num_ports(); ++p) ctx.send(p, {{value_}});
    sent_ = true;
    done_ = false;
  }
  bool source_ = false;
  std::int64_t value_ = 0;
  bool sent_ = false;
  bool done_ = false;
};

// Sends on round 0 then throws: leaves the mailboxes, worklists and
// metrics scratch mid-run dirty, the state reset_for_run must clear.
class AbortProbe final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    for (int p = 0; p < ctx.num_ports(); ++p) ctx.send(p, {{99}});
    if (ctx.round() >= 1) throw std::runtime_error("abort probe");
  }
  bool finished() const override { return false; }
};

std::vector<std::unique_ptr<VertexAlgorithm>> flood_algos(int n) {
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    algos.push_back(std::make_unique<FloodProbe>(v == 0));
  }
  return algos;
}

NetworkOptions probe_options(MetricsRegistry* metrics) {
  NetworkOptions o;
  o.bandwidth_tokens = 2;
  o.metrics = metrics;
  return o;
}

TEST(NetworkResetForRun, RepeatMatchesFreshNetwork) {
  const Graph g = graph::grid(8, 8);
  MetricsRegistry reused_metrics;
  Network reused(g, probe_options(&reused_metrics));
  std::string first_snapshot;
  RunStats first{};
  // Three consecutive runs on one Network; run() calls reset_for_run() on
  // entry, so every pass must reproduce the first bit-for-bit.
  for (int pass = 0; pass < 3; ++pass) {
    auto algos = flood_algos(g.num_vertices());
    reused_metrics.reset();
    const RunStats stats = reused.run(algos);
    const std::string snapshot = reused_metrics.to_json();
    if (pass == 0) {
      first = stats;
      first_snapshot = snapshot;
    } else {
      EXPECT_EQ(stats.rounds, first.rounds);
      EXPECT_EQ(stats.messages_sent, first.messages_sent);
      EXPECT_EQ(stats.words_sent, first.words_sent);
      EXPECT_EQ(stats.max_edge_load, first.max_edge_load);
      EXPECT_EQ(snapshot, first_snapshot) << "pass " << pass;
    }
  }
  // ...and a fresh Network agrees with all of them.
  MetricsRegistry fresh_metrics;
  Network fresh(g, probe_options(&fresh_metrics));
  auto algos = flood_algos(g.num_vertices());
  const RunStats stats = fresh.run(algos);
  EXPECT_EQ(stats.rounds, first.rounds);
  EXPECT_EQ(stats.messages_sent, first.messages_sent);
  EXPECT_EQ(fresh_metrics.to_json(), first_snapshot);
}

TEST(NetworkResetForRun, NoCarryOverAfterAbortedRun) {
  const Graph g = graph::grid(8, 8);
  MetricsRegistry metrics;
  Network net(g, probe_options(&metrics));
  {
    // Abort a run mid-flight: mailboxes hold queued messages, worklists
    // and staged metric scratch are dirty.
    std::vector<std::unique_ptr<VertexAlgorithm>> aborters;
    for (int v = 0; v < g.num_vertices(); ++v) {
      aborters.push_back(std::make_unique<AbortProbe>());
    }
    EXPECT_THROW(net.run(aborters), std::runtime_error);
  }
  net.reset_for_run();
  metrics.reset();
  auto algos = flood_algos(g.num_vertices());
  const RunStats stats = net.run(algos);

  MetricsRegistry fresh_metrics;
  Network fresh(g, probe_options(&fresh_metrics));
  auto fresh_algos = flood_algos(g.num_vertices());
  const RunStats want = fresh.run(fresh_algos);
  EXPECT_EQ(stats.rounds, want.rounds);
  EXPECT_EQ(stats.messages_sent, want.messages_sent);
  EXPECT_EQ(stats.words_sent, want.words_sent);
  EXPECT_EQ(metrics.to_json(), fresh_metrics.to_json());
}

TEST(NetworkResetForRun, SetFaultSeedMatchesFreshNetworkWithThatSeed) {
  const Graph g = graph::grid(8, 8);
  NetworkOptions base;
  base.bandwidth_tokens = 2;
  base.faults.drop_probability = 0.05;
  base.faults.duplicate_probability = 0.02;
  base.faults.seed = 1;

  Network reused(g, base);
  for (const std::uint64_t seed : {2ULL, 3ULL, 4ULL}) {
    reused.set_fault_seed(seed);
    auto algos = flood_algos(g.num_vertices());
    const RunStats got = reused.run(algos);

    NetworkOptions fresh_opts = base;
    fresh_opts.faults.seed = seed;
    Network fresh(g, fresh_opts);
    auto fresh_algos = flood_algos(g.num_vertices());
    const RunStats want = fresh.run(fresh_algos);
    EXPECT_EQ(got.rounds, want.rounds) << "seed " << seed;
    EXPECT_EQ(got.messages_sent, want.messages_sent) << "seed " << seed;
    EXPECT_EQ(got.messages_dropped, want.messages_dropped) << "seed " << seed;
    EXPECT_EQ(got.messages_duplicated, want.messages_duplicated)
        << "seed " << seed;
  }
  // Distinct seeds actually produce distinct fault schedules somewhere in
  // the sweep above (else the test proves nothing); check 2 vs 3 directly.
  reused.set_fault_seed(2);
  auto a2 = flood_algos(g.num_vertices());
  const RunStats s2 = reused.run(a2);
  reused.set_fault_seed(3);
  auto a3 = flood_algos(g.num_vertices());
  const RunStats s3 = reused.run(a3);
  EXPECT_TRUE(s2.messages_dropped != s3.messages_dropped ||
              s2.messages_sent != s3.messages_sent ||
              s2.messages_duplicated != s3.messages_duplicated);
}

// --- Progress telemetry (ecd-sweep-progress-v1) ------------------------------

TEST(SweepProgress, StreamsSchemaStableHeartbeatsAndAFinalDoneLine) {
  const SweepSpec spec = mixed_spec();
  const std::int64_t cells = spec.num_cells();
  SweepEngine engine;
  std::ostringstream progress;
  SweepOptions opt;
  opt.workers = 2;
  opt.progress = &progress;
  opt.progress_interval_ms = 1;  // heartbeat as fast as the monitor allows
  engine.run(spec, opt);

  std::istringstream lines(progress.str());
  std::string line;
  int parsed = 0;
  bool saw_done = false;
  while (std::getline(lines, line)) {
    const jsonmin::Value doc = jsonmin::parse(line);
    ++parsed;
    // Schema-stable: every line carries the full field set.
    EXPECT_EQ(doc.at("schema").string, "ecd-sweep-progress-v1");
    EXPECT_EQ(doc.at("cells_total").number, static_cast<double>(cells));
    EXPECT_GE(doc.at("cells_done").number, 0.0);
    EXPECT_LE(doc.at("cells_done").number, static_cast<double>(cells));
    EXPECT_GE(doc.at("elapsed_ms").number, 0.0);
    EXPECT_GE(doc.at("runs_per_sec").number, 0.0);
    ASSERT_TRUE(doc.at("workers").is_array());
    EXPECT_EQ(doc.at("workers").items.size(), 2u);
    for (const jsonmin::Value& w : doc.at("workers").items) {
      EXPECT_GE(w.at("runs").number, 0.0);
      EXPECT_GE(w.at("idle_ms").number, 0.0);
      // Nothing stalls in a sub-second grid with a 30 s watchdog.
      EXPECT_FALSE(w.at("stalled").boolean);
    }
    if (doc.at("done").boolean) {
      saw_done = true;
      // The final line reports the finished grid exactly.
      EXPECT_EQ(doc.at("cells_done").number, static_cast<double>(cells));
    } else {
      EXPECT_FALSE(saw_done) << "heartbeat after the done line";
    }
  }
  ASSERT_GE(parsed, 1);
  EXPECT_TRUE(saw_done);

  // Progress observation must not perturb the computation: the aggregate
  // still matches an unobserved run.
  SweepEngine quiet;
  SweepOptions plain;
  plain.workers = 2;
  EXPECT_EQ(quiet.run(spec, plain).aggregate_json(),
            engine.run(spec, opt).aggregate_json());
}

// --- NetworkOptions::shared_pool --------------------------------------------

TEST(NetworkSharedPool, MatchingPoolIsBitIdenticalToPrivatePool) {
  const Graph g = graph::grid(12, 12);
  MetricsRegistry m_private;
  NetworkOptions o_private = probe_options(&m_private);
  o_private.num_threads = 4;
  o_private.sparse_serial_threshold = 0;  // force the parallel path
  Network net_private(g, o_private);
  auto algos = flood_algos(g.num_vertices());
  const RunStats want = net_private.run(algos);

  ThreadPool pool(4);
  MetricsRegistry m_shared;
  NetworkOptions o_shared = o_private;
  o_shared.metrics = &m_shared;
  o_shared.shared_pool = &pool;
  Network net_shared(g, o_shared);
  auto algos2 = flood_algos(g.num_vertices());
  const RunStats got = net_shared.run(algos2);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.messages_sent, want.messages_sent);
  EXPECT_EQ(got.max_edge_load, want.max_edge_load);
  EXPECT_EQ(m_shared.to_json(), m_private.to_json());
}

TEST(NetworkSharedPool, MismatchedPoolFallsBackAndCountsTheFallback) {
  const Graph g = graph::grid(8, 8);
  ThreadPool pool(2);  // wrong size for a 4-shard network
  MetricsRegistry metrics;
  NetworkOptions o;
  o.bandwidth_tokens = 2;
  o.num_threads = 4;
  o.sparse_serial_threshold = 0;
  o.shared_pool = &pool;
  o.metrics = &metrics;
  Network net(g, o);
  // The fallback keeps the run correct but quietly drops intra-run
  // parallelism — a misconfiguration worth surfacing, so the constructor
  // counts it where run reports can see it.
  EXPECT_EQ(metrics.counter("pool_fallbacks")->value(), 1);
  auto algos = flood_algos(g.num_vertices());
  const RunStats got = net.run(algos);

  NetworkOptions serial = o;
  serial.num_threads = 1;
  serial.shared_pool = nullptr;
  serial.metrics = nullptr;
  Network ref(g, serial);
  auto ref_algos = flood_algos(g.num_vertices());
  const RunStats want = ref.run(ref_algos);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.messages_sent, want.messages_sent);
  EXPECT_EQ(got.max_edge_load, want.max_edge_load);

  // Control: a size-matched pool (or no pool) never trips the counter.
  ThreadPool matched(4);
  MetricsRegistry clean;
  NetworkOptions ok = o;
  ok.shared_pool = &matched;
  ok.metrics = &clean;
  Network net_ok(g, ok);
  EXPECT_EQ(clean.counter("pool_fallbacks")->value(), 0);
}

}  // namespace
}  // namespace ecd::core
