// Tests for tools/json_min.h (the dependency-free JSON parser) and
// tools/bench_compare.h (the bench regression gate CI runs against
// bench/baseline.json).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "tools/bench_compare.h"
#include "tools/json_min.h"

namespace {

using ecd::jsonmin::parse;
using ecd::jsonmin::Type;
using ecd::jsonmin::Value;
using ecd::tools::compare_bench_snapshots;
using ecd::tools::CompareOptions;
using ecd::tools::CompareResult;
using ecd::tools::CounterDelta;

// --- jsonmin ----------------------------------------------------------------

TEST(JsonMin, ParsesScalarsAndNesting) {
  const Value doc = parse(
      R"({"a": 1, "b": -2.5e2, "c": "hi\nthere", "d": [true, false, null],)"
      R"( "e": {"nested": []}, "a": 2})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("a").number, 1.0);  // find() returns the first "a"
  EXPECT_DOUBLE_EQ(doc.at("b").number, -250.0);
  EXPECT_EQ(doc.at("c").string, "hi\nthere");
  const Value& d = doc.at("d");
  ASSERT_TRUE(d.is_array());
  ASSERT_EQ(d.items.size(), 3u);
  EXPECT_TRUE(d.items[0].boolean);
  EXPECT_FALSE(d.items[1].boolean);
  EXPECT_TRUE(d.items[2].is_null());
  EXPECT_TRUE(doc.at("e").at("nested").is_array());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW(doc.at("missing"), std::runtime_error);
}

TEST(JsonMin, RejectsMalformedInput) {
  EXPECT_THROW(parse(""), std::runtime_error);
  EXPECT_THROW(parse("{"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\":}"), std::runtime_error);
  EXPECT_THROW(parse("[1,]"), std::runtime_error);
  EXPECT_THROW(parse("[1] trailing"), std::runtime_error);
  EXPECT_THROW(parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(parse("01"), std::runtime_error);  // leading zero
  EXPECT_THROW(parse("1.e5"), std::runtime_error);
  EXPECT_THROW(parse("nulL"), std::runtime_error);
  EXPECT_THROW(parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(parse("\"bad \\x escape\""), std::runtime_error);
}

TEST(JsonMin, DecodesBmpUnicodeEscapes) {
  EXPECT_EQ(parse(R"("\u0041\u007A")").string, "Az");   // 1-byte UTF-8
  EXPECT_EQ(parse(R"("\u00e9")").string, "\xC3\xA9");      // 2-byte (U+00E9)
  EXPECT_EQ(parse(R"("\u20AC")").string, "\xE2\x82\xAC");  // 3-byte (U+20AC)
  EXPECT_EQ(parse(R"("\u0800")").string, "\xE0\xA0\x80");  // 3-byte floor
  EXPECT_EQ(parse(R"("\u00E9")").string, "\xC3\xA9");      // hex case-blind
  // Escapes compose with surrounding literal text and other escapes.
  EXPECT_EQ(parse(R"("x\u0041\ny")").string, "xA\ny");
  EXPECT_EQ(parse(R"({"k\u00fcche": 1})").at("k\xC3\xBC"
                                                "che").number,
            1.0);
}

TEST(JsonMin, SurrogateAndMalformedUnicodeEscapesThrow) {
  // Astral-plane pairs and lone halves are out of scope — the error must
  // say so instead of emitting ill-formed UTF-8.
  try {
    parse(R"("\uD83D\uDE00")");  // an emoji, as JSON encodes it
    FAIL() << "surrogate pair did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("surrogate"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse(R"("\uDC00")"), std::runtime_error);  // lone low half
  EXPECT_THROW(parse(R"("\u12")"), std::runtime_error);    // truncated
  EXPECT_THROW(parse(R"("\u12G4")"), std::runtime_error);  // bad hex digit
  EXPECT_THROW(parse(R"("\u")"), std::runtime_error);
}

TEST(JsonMin, ParsesRealisticBenchSnapshot) {
  const Value doc = parse(
      R"({"schema":"ecd-bench-v1","suite":"network","rows":[)"
      R"({"name":"BM_Flood/n:1024/threads:1/metrics:0/real_time",)"
      R"("iterations":11,"real_time_ns":6545099.5455,"cpu_time_ns":5972468.8,)"
      R"("counters":{"allocs_per_round":0,"rounds_per_sec":9778.3}}]})");
  EXPECT_EQ(doc.at("schema").string, "ecd-bench-v1");
  const Value& row = doc.at("rows").items.at(0);
  EXPECT_DOUBLE_EQ(row.at("counters").at("rounds_per_sec").number, 9778.3);
}

// --- bench_compare ----------------------------------------------------------

// Builds a one-suite snapshot with the given per-row counters.
std::string snapshot(
    const std::vector<std::pair<std::string, std::string>>& rows) {
  std::string out = R"({"schema":"ecd-bench-v1","suite":"t","rows":[)";
  bool first = true;
  for (const auto& [name, counters] : rows) {
    if (!first) out += ',';
    first = false;
    out += R"({"name":")" + name +
           R"(","iterations":1,"real_time_ns":1,"cpu_time_ns":1,"counters":{)" +
           counters + "}}";
  }
  return out + "]}";
}

TEST(BenchCompare, IdenticalSnapshotsPass) {
  const Value doc = parse(snapshot(
      {{"BM_A", R"("rounds_per_sec":1000,"allocs_per_round":0,"n":64)"}}));
  const CompareResult r = compare_bench_snapshots(doc, doc);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.rows_compared, 1);
  // rounds_per_sec and allocs_per_round are gated; "n" is informational.
  EXPECT_EQ(r.counters_compared, 2);
  EXPECT_TRUE(r.issues.empty());
}

TEST(BenchCompare, TenPercentThroughputRegressionFails) {
  const Value base = parse(snapshot({{"BM_A", R"("rounds_per_sec":1000)"}}));
  // 11% below baseline: outside the default 10% allowance.
  const Value bad = parse(snapshot({{"BM_A", R"("rounds_per_sec":890)"}}));
  const CompareResult r = compare_bench_snapshots(base, bad);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_TRUE(r.issues[0].fatal);
  EXPECT_EQ(r.issues[0].counter, "rounds_per_sec");
}

TEST(BenchCompare, FivePercentDipPasses) {
  const Value base = parse(snapshot({{"BM_A", R"("rounds_per_sec":1000)"}}));
  const Value dip = parse(snapshot({{"BM_A", R"("rounds_per_sec":950)"}}));
  EXPECT_TRUE(compare_bench_snapshots(base, dip).ok);
  // Improvements are never failures.
  const Value gain = parse(snapshot({{"BM_A", R"("rounds_per_sec":2000)"}}));
  EXPECT_TRUE(compare_bench_snapshots(base, gain).ok);
}

TEST(BenchCompare, AllocRegressionFails) {
  const Value base = parse(snapshot({{"BM_A", R"("allocs_per_round":0)"}}));
  const Value bad = parse(snapshot({{"BM_A", R"("allocs_per_round":2.5)"}}));
  const CompareResult r = compare_bench_snapshots(base, bad);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_EQ(r.issues[0].counter, "allocs_per_round");
  // Within the 0.5 slack: jitter, not a regression.
  const Value jitter = parse(snapshot({{"BM_A", R"("allocs_per_round":0.3)"}}));
  EXPECT_TRUE(compare_bench_snapshots(base, jitter).ok);
}

TEST(BenchCompare, MissingRowWarnsButPasses) {
  const Value base = parse(snapshot({{"BM_A", R"("rounds_per_sec":1000)"},
                                     {"BM_B", R"("rounds_per_sec":500)"}}));
  const Value filtered = parse(snapshot({{"BM_A", R"("rounds_per_sec":990)"}}));
  const CompareResult r = compare_bench_snapshots(base, filtered);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.rows_compared, 1);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_FALSE(r.issues[0].fatal);
  EXPECT_EQ(r.issues[0].row, "BM_B");
}

TEST(BenchCompare, NoCommonRowsIsAFailure) {
  const Value base = parse(snapshot({{"BM_A", R"("rounds_per_sec":1000)"}}));
  const Value other = parse(snapshot({{"BM_Z", R"("rounds_per_sec":1000)"}}));
  const CompareResult r = compare_bench_snapshots(base, other);
  EXPECT_FALSE(r.ok);
}

TEST(BenchCompare, CustomThresholdRespected) {
  const Value base = parse(snapshot({{"BM_A", R"("rounds_per_sec":1000)"}}));
  const Value dip = parse(snapshot({{"BM_A", R"("rounds_per_sec":700)"}}));
  CompareOptions lenient;
  lenient.throughput_threshold = 0.5;
  EXPECT_TRUE(compare_bench_snapshots(base, dip, lenient).ok);
  CompareOptions strict;
  strict.throughput_threshold = 0.01;
  const Value tiny = parse(snapshot({{"BM_A", R"("rounds_per_sec":985)"}}));
  EXPECT_FALSE(compare_bench_snapshots(base, tiny, strict).ok);
}

TEST(BenchCompare, RejectsWrongSchema) {
  const Value ok = parse(snapshot({{"BM_A", R"("rounds_per_sec":1)"}}));
  const Value wrong = parse(R"({"schema":"other","rows":[]})");
  EXPECT_THROW(compare_bench_snapshots(wrong, ok), std::runtime_error);
  EXPECT_THROW(compare_bench_snapshots(ok, wrong), std::runtime_error);
}

TEST(BenchCompare, DeltaTablePrintedOnPass) {
  const Value base = parse(snapshot({{"BM_A", R"("rounds_per_sec":1000)"}}));
  const Value dip = parse(snapshot({{"BM_A", R"("rounds_per_sec":950)"}}));
  const CompareResult r = compare_bench_snapshots(base, dip);
  EXPECT_TRUE(r.ok);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].counter, "rounds_per_sec");
  EXPECT_TRUE(r.deltas[0].gated);
  EXPECT_DOUBLE_EQ(r.deltas[0].baseline, 1000);
  EXPECT_DOUBLE_EQ(r.deltas[0].current, 950);
  // The table is part of the pass output, not only the failure output.
  const std::string text = format_compare_result(r);
  EXPECT_NE(text.find("benchmark"), std::string::npos);
  EXPECT_NE(text.find("rounds_per_sec"), std::string::npos);
  EXPECT_NE(text.find("-5.0%"), std::string::npos);
  EXPECT_NE(text.find("OK"), std::string::npos);
}

TEST(BenchCompare, ProfileCountersAreInformationalDeltas) {
  const Value base = parse(snapshot({{"BM_A", R"("rounds_per_sec":1000)"}}));
  // Current snapshot taken under --ecd_profile: carries barrier-wait
  // fraction the baseline lacks. Must surface in the table, never gate.
  const Value cur = parse(snapshot(
      {{"BM_A",
        R"("rounds_per_sec":990,"profile_barrier_wait_fraction":0.25)"}}));
  const CompareResult r = compare_bench_snapshots(base, cur);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.counters_compared, 1);  // profile_* is not a gated counter
  ASSERT_EQ(r.deltas.size(), 2u);
  EXPECT_EQ(r.deltas[1].counter, "profile_barrier_wait_fraction");
  EXPECT_FALSE(r.deltas[1].gated);
  EXPECT_FALSE(r.deltas[1].has_baseline);
  EXPECT_DOUBLE_EQ(r.deltas[1].current, 0.25);
  const std::string text = format_compare_result(r);
  EXPECT_NE(text.find("profile_barrier_wait_fraction"), std::string::npos);
  EXPECT_NE(text.find("info"), std::string::npos);
}

TEST(BenchCompare, SpeedupColumnPairsThreadsAxisWithSerialSibling) {
  // The speedup column is computed within the *current* snapshot alone: a
  // threads:4 row whose threads:1 sibling (same remaining axes) is present
  // gets a `<counter>_speedup_x` informational delta valued 4-row / 1-row.
  const Value base = parse(snapshot(
      {{"BM_F/n:1024/threads:1/metrics:0", R"("rounds_per_sec":1000)"},
       {"BM_F/n:1024/threads:4/metrics:0", R"("rounds_per_sec":3000)"}}));
  const Value cur = parse(snapshot(
      {{"BM_F/n:1024/threads:1/metrics:0", R"("rounds_per_sec":1000)"},
       {"BM_F/n:1024/threads:4/metrics:0", R"("rounds_per_sec":3000)"}}));
  const CompareResult r = compare_bench_snapshots(base, cur);
  EXPECT_TRUE(r.ok);
  const CounterDelta* speedup = nullptr;
  for (const CounterDelta& d : r.deltas) {
    if (d.counter == "rounds_per_sec_speedup_x") {
      EXPECT_EQ(speedup, nullptr) << "one speedup delta per pair";
      speedup = &d;
    }
  }
  ASSERT_NE(speedup, nullptr);
  EXPECT_EQ(speedup->row, "BM_F/n:1024/threads:4/metrics:0");
  EXPECT_FALSE(speedup->gated);
  EXPECT_FALSE(speedup->has_baseline);
  EXPECT_DOUBLE_EQ(speedup->current, 3.0);
  // Sub-linear (or sub-1.0) speedups are information, never a regression.
  const Value slow = parse(snapshot(
      {{"BM_F/n:1024/threads:1/metrics:0", R"("rounds_per_sec":1000)"},
       {"BM_F/n:1024/threads:4/metrics:0", R"("rounds_per_sec":1000)"}}));
  EXPECT_TRUE(compare_bench_snapshots(slow, slow).ok);
  const std::string text = format_compare_result(r);
  EXPECT_NE(text.find("rounds_per_sec_speedup_x"), std::string::npos);
}

TEST(BenchCompare, SpeedupColumnSkipsRowsWithoutSerialSibling) {
  // No threads:1 sibling at the same remaining axes — and no threads axis
  // at all — must both yield no speedup delta.
  const Value doc = parse(snapshot(
      {{"BM_F/n:1024/threads:4/metrics:0", R"("rounds_per_sec":3000)"},
       {"BM_F/n:4096/threads:1/metrics:0", R"("rounds_per_sec":800)"},
       {"BM_G/n:1024", R"("rounds_per_sec":500)"}}));
  const CompareResult r = compare_bench_snapshots(doc, doc);
  EXPECT_TRUE(r.ok);
  for (const CounterDelta& d : r.deltas) {
    EXPECT_EQ(d.counter.find("_speedup_x"), std::string::npos) << d.counter;
  }
}

TEST(BenchCompare, SpeedupColumnSkipsSiblingMissingTheCounter) {
  // The threads:1 sibling row exists but tracks different counters (e.g. a
  // serial-only diagnostic): no ratio can be formed, so no speedup delta —
  // and certainly no crash or NaN in the report.
  const Value doc = parse(snapshot(
      {{"BM_F/n:1024/threads:1/metrics:0", R"("serial_only_stat":7)"},
       {"BM_F/n:1024/threads:4/metrics:0", R"("rounds_per_sec":3000)"}}));
  const CompareResult r = compare_bench_snapshots(doc, doc);
  EXPECT_TRUE(r.ok);
  for (const CounterDelta& d : r.deltas) {
    EXPECT_EQ(d.counter.find("_speedup_x"), std::string::npos) << d.counter;
  }
}

TEST(BenchCompare, SpeedupColumnSkipsZeroOrNegativeSerialSibling) {
  // A zero (or garbage-negative) serial measurement would make the ratio
  // infinite or meaningless; the column is dropped rather than reported.
  // The speedup column reads the *current* snapshot only, so the BM_G rows
  // stay out of the baseline to keep the throughput gate out of the picture.
  const Value base = parse(snapshot(
      {{"BM_F/n:1024/threads:1/metrics:0", R"("rounds_per_sec":0)"},
       {"BM_F/n:1024/threads:4/metrics:0", R"("rounds_per_sec":3000)"}}));
  const Value cur = parse(snapshot(
      {{"BM_F/n:1024/threads:1/metrics:0", R"("rounds_per_sec":0)"},
       {"BM_F/n:1024/threads:4/metrics:0", R"("rounds_per_sec":3000)"},
       {"BM_G/n:64/threads:1/metrics:0", R"("rounds_per_sec":-5)"},
       {"BM_G/n:64/threads:4/metrics:0", R"("rounds_per_sec":200)"}}));
  const CompareResult r = compare_bench_snapshots(base, cur);
  EXPECT_TRUE(r.ok);
  for (const CounterDelta& d : r.deltas) {
    EXPECT_EQ(d.counter.find("_speedup_x"), std::string::npos) << d.counter;
  }
}

TEST(BenchCompare, RunsPerSecRegressionTripsGate) {
  // bench_sweep's throughput counter: gated through the generic _per_sec
  // suffix rule like every other throughput floor.
  const Value base = parse(snapshot({{"BM_SweepWarm/n:256", R"("runs_per_sec":4000)"}}));
  const Value bad = parse(snapshot({{"BM_SweepWarm/n:256", R"("runs_per_sec":3000)"}}));
  const CompareResult r = compare_bench_snapshots(base, bad);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.deltas.size(), 1u);
  EXPECT_EQ(r.deltas[0].counter, "runs_per_sec");
  EXPECT_TRUE(r.deltas[0].gated);
  const Value dip = parse(snapshot({{"BM_SweepWarm/n:256", R"("runs_per_sec":3700)"}}));
  EXPECT_TRUE(compare_bench_snapshots(base, dip).ok);
}

TEST(BenchCompare, AllocsPerRunGatedLikeAllocsPerRound) {
  // The sweep engine's per-run allocation contract is an absolute gate.
  const Value base = parse(snapshot({{"BM_SweepWarm/n:256", R"("allocs_per_run":0)"}}));
  const Value bad = parse(snapshot({{"BM_SweepWarm/n:256", R"("allocs_per_run":3)"}}));
  const CompareResult r = compare_bench_snapshots(base, bad);
  EXPECT_FALSE(r.ok);
  ASSERT_EQ(r.issues.size(), 1u);
  EXPECT_TRUE(r.issues[0].fatal);
  EXPECT_EQ(r.issues[0].counter, "allocs_per_run");
  const Value jitter = parse(snapshot({{"BM_SweepWarm/n:256", R"("allocs_per_run":0.4)"}}));
  EXPECT_TRUE(compare_bench_snapshots(base, jitter).ok);
}

TEST(BenchCompare, PeakRssIsInformationalNeverGated) {
  // Peak RSS is process-wide and monotonic across rows: a huge increase
  // must surface in the delta table but never fail the gate.
  const Value base = parse(snapshot(
      {{"BM_A", R"("rounds_per_sec":1000,"peak_rss_mb":120)"}}));
  const Value cur = parse(snapshot(
      {{"BM_A", R"("rounds_per_sec":1000,"peak_rss_mb":9000)"}}));
  const CompareResult r = compare_bench_snapshots(base, cur);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.counters_compared, 1);  // peak_rss_mb is not a gated counter
  const CounterDelta* rss = nullptr;
  for (const CounterDelta& d : r.deltas) {
    if (d.counter == "peak_rss_mb") rss = &d;
  }
  ASSERT_NE(rss, nullptr);
  EXPECT_FALSE(rss->gated);
  EXPECT_TRUE(rss->has_baseline);
  EXPECT_DOUBLE_EQ(rss->baseline, 120);
  EXPECT_DOUBLE_EQ(rss->current, 9000);
  const std::string text = format_compare_result(r);
  EXPECT_NE(text.find("peak_rss_mb"), std::string::npos);
  EXPECT_NE(text.find("info"), std::string::npos);
}

TEST(BenchCompare, FormatMentionsEveryIssue) {
  const Value base = parse(snapshot({{"BM_A", R"("rounds_per_sec":1000)"},
                                     {"BM_B", R"("rounds_per_sec":500)"}}));
  const Value bad = parse(snapshot({{"BM_A", R"("rounds_per_sec":1)"}}));
  const std::string text =
      format_compare_result(compare_bench_snapshots(base, bad));
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("warn"), std::string::npos);
  EXPECT_NE(text.find("REGRESSION"), std::string::npos);
  EXPECT_NE(text.find("BM_A"), std::string::npos);
  EXPECT_NE(text.find("BM_B"), std::string::npos);
}

}  // namespace
