// Substrate-level tests for the mailbox arena and the parallel round loop
// (src/congest/network.cpp, src/congest/thread_pool.cpp): per-port FIFO
// order, double-buffer isolation between rounds, WordBuffer spill
// behaviour, send-side validation, the max_rounds budget, bit-identical
// results across thread counts, error recovery after aborted runs, and a
// parity fixture pinning trace/RunStats output to numbers recorded on the
// pre-arena simulator.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <stdexcept>
#include <string>
#include <utility>

#include "src/baselines/luby_mis.h"
#include "src/congest/metrics.h"
#include "src/congest/network.h"
#include "src/congest/primitives.h"
#include "src/congest/profiler.h"
#include "src/congest/thread_pool.h"
#include "src/congest/trace.h"
#include "src/graph/generators.h"

namespace ecd::congest {
namespace {

using graph::Graph;
using graph::VertexId;

// --- Per-port FIFO ---------------------------------------------------------

// Sends a burst of three sequence-numbered messages per round for three
// rounds; the receiver must observe them in exactly send order.
class BurstSender final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    if (ctx.round() < 3) {
      for (std::int64_t i = 0; i < 3; ++i) {
        ctx.send(0, {{ctx.round() * 10 + i}});
      }
    } else {
      done_ = true;
    }
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

class FifoReceiver final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    for (const Message& m : ctx.inbox(0)) seen_.push_back(m.words[0]);
  }
  bool finished() const override { return seen_.size() == 9u; }
  const std::vector<std::int64_t>& seen() const { return seen_; }

 private:
  std::vector<std::int64_t> seen_;
};

void run_fifo_burst(int num_threads) {
  Graph g = graph::path(2);
  auto sender = std::make_unique<BurstSender>();
  auto receiver = std::make_unique<FifoReceiver>();
  FifoReceiver* typed = receiver.get();
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::move(sender));
  algos.push_back(std::move(receiver));
  NetworkOptions opt;
  opt.bandwidth_tokens = 3;
  opt.num_threads = num_threads;
  Network net(g, opt);
  net.run(algos);
  const std::vector<std::int64_t> expected{0, 1, 2, 10, 11, 12, 20, 21, 22};
  EXPECT_EQ(typed->seen(), expected);
}

TEST(Substrate, PerPortDeliveryIsFifo) { run_fifo_burst(1); }

// Per-port FIFO survives parallel execution: each directed edge has a
// single sender, so slot order is send order regardless of sharding.
TEST(Substrate, PerPortDeliveryIsFifoParallel) { run_fifo_burst(8); }

// --- Double-buffer isolation -----------------------------------------------

// Sends {round} before reading, then asserts this round's inbox holds
// exactly the previous round's value — a send during round r must never
// alias the round-r inbox (the two arena buffers back different rounds).
class SendThenReadAlgo final : public VertexAlgorithm {
 public:
  static constexpr std::int64_t kRounds = 5;

  void round(Context& ctx) override {
    if (ctx.round() < kRounds) ctx.send(0, {{ctx.round()}});
    const PortInbox box = ctx.inbox(0);
    if (ctx.round() == 0) {
      EXPECT_TRUE(box.empty());
    } else {
      ASSERT_EQ(box.size(), 1);
      EXPECT_EQ(box[0].words[0], ctx.round() - 1);
    }
    if (ctx.round() == kRounds) done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

void run_send_then_read(const NetworkOptions& opt) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<SendThenReadAlgo>());
  algos.push_back(std::make_unique<SendThenReadAlgo>());
  Network net(g, opt);
  const RunStats stats = net.run(algos);
  EXPECT_EQ(stats.rounds, SendThenReadAlgo::kRounds + 1);
  EXPECT_EQ(stats.messages_sent, 2 * SendThenReadAlgo::kRounds);
}

TEST(Substrate, RoundBuffersDoNotAliasInArenaMode) {
  run_send_then_read({});
}

TEST(Substrate, RoundBuffersDoNotAliasInLocalMode) {
  NetworkOptions opt;
  opt.enforce_bandwidth = false;  // per-port vector fallback path
  run_send_then_read(opt);
}

// A Network is reusable: a second run on the same instance must start from
// clean mailboxes, not see leftovers of the first.
TEST(Substrate, NetworkReuseStartsFromCleanMailboxes) {
  Graph g = graph::path(2);
  Network net(g);
  for (int i = 0; i < 2; ++i) {
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    algos.push_back(std::make_unique<SendThenReadAlgo>());
    algos.push_back(std::make_unique<SendThenReadAlgo>());
    EXPECT_EQ(net.run(algos).rounds, SendThenReadAlgo::kRounds + 1);
  }
}

// --- WordBuffer spill + message-size enforcement ---------------------------

TEST(Substrate, WordBufferSpillsBeyondInlineCapacity) {
  WordBuffer buf;
  for (std::int64_t i = 0; i < 2 * kMaxMessageWords; ++i) buf.push_back(i);
  ASSERT_EQ(buf.size(), 2 * kMaxMessageWords);
  for (int i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], i);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  buf.push_back(42);  // back to inline storage after clear()
  ASSERT_EQ(buf.size(), 1);
  EXPECT_EQ(buf[0], 42);
}

class SpilledMessageAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    Message m;
    for (int i = 0; i < kMaxMessageWords + 3; ++i) m.words.push_back(i);
    ctx.send(0, std::move(m));
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(Substrate, SpilledMessageStillRaisesMessageSizeViolation) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<SpilledMessageAlgo>());
  algos.push_back(std::make_unique<SpilledMessageAlgo>());
  Network net(g);
  try {
    net.run(algos);
    FAIL() << "oversized message was accepted";
  } catch (const CongestionError& e) {
    EXPECT_EQ(e.kind(), CongestionError::Kind::kMessageSize);
    EXPECT_EQ(e.used(), kMaxMessageWords + 3);
    EXPECT_EQ(e.budget(), kMaxMessageWords);
  }
}

// --- send() validation -----------------------------------------------------

class BadPortAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    ctx.send(ctx.num_ports(), {{1}});
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(Substrate, SendOnBadPortNamesVertexAndPortCount) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<BadPortAlgo>());
  algos.push_back(std::make_unique<BadPortAlgo>());
  Network net(g);
  try {
    net.run(algos);
    FAIL() << "out-of-range port was accepted";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("port 1"), std::string::npos) << what;
    EXPECT_NE(what.find("vertex 0"), std::string::npos) << what;
    EXPECT_NE(what.find("1 ports"), std::string::npos) << what;
  }
}

// --- max_rounds budget -----------------------------------------------------

class NeverDoneAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    ++rounds_seen;
    ctx.send(0, {{1}});
  }
  bool finished() const override { return false; }
  int rounds_seen = 0;
};

void run_max_rounds_pin(int num_threads) {
  Graph g = graph::grid(4, 4);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<NeverDoneAlgo*> typed;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = std::make_unique<NeverDoneAlgo>();
    typed.push_back(a.get());
    algos.push_back(std::move(a));
  }
  NetworkOptions opt;
  opt.max_rounds = 7;
  opt.num_threads = num_threads;
  Network net(g, opt);
  EXPECT_THROW(net.run(algos), std::runtime_error);
  // The budget is exact: max_rounds compute rounds, not max_rounds + 1.
  for (const NeverDoneAlgo* a : typed) EXPECT_EQ(a->rounds_seen, 7);
}

TEST(Substrate, MaxRoundsExecutesExactlyThatManyComputeRounds) {
  run_max_rounds_pin(1);
}

TEST(Substrate, MaxRoundsBudgetIsExactUnderParallelExecution) {
  run_max_rounds_pin(4);
}

class FinishAfterAlgo final : public VertexAlgorithm {
 public:
  explicit FinishAfterAlgo(int target) : target_(target) {}
  void round(Context&) override { ++seen_; }
  bool finished() const override { return seen_ >= target_; }

 private:
  int target_;
  int seen_ = 0;
};

TEST(Substrate, FinishingAtTheRoundLimitStillCompletes) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<FinishAfterAlgo>(7));
  algos.push_back(std::make_unique<FinishAfterAlgo>(7));
  NetworkOptions opt;
  opt.max_rounds = 7;
  Network net(g, opt);
  EXPECT_EQ(net.run(algos).rounds, 7);
}

// --- Determinism across thread counts --------------------------------------
//
// The parallel loop's correctness anchor (DESIGN.md §11): per-port deposits
// are single-writer and per-port FIFO has one sender per direction, so
// RunStats and every vertex's final state must be bit-identical for every
// num_threads value. Each workload below runs at 1/2/4/8 threads and pins
// all outputs to the serial result.

void expect_same_stats(const RunStats& a, const RunStats& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_EQ(a.words_sent, b.words_sent);
  EXPECT_EQ(a.max_edge_load, b.max_edge_load);
}

// Flood wavefront: vertex 0 announces, everyone forwards on first receipt;
// the final per-vertex output is the round the wave arrived.
class FloodWaveAlgo final : public VertexAlgorithm {
 public:
  explicit FloodWaveAlgo(bool is_source) : source_(is_source) {}

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    if (arrival_ >= 0) return;
    if (source_) {
      arrival_ = 0;
      forward(ctx);
      return;
    }
    for (int p = 0; p < ctx.num_ports(); ++p) {
      if (!ctx.inbox(p).empty()) {
        arrival_ = ctx.round();
        forward(ctx);
        return;
      }
    }
  }
  bool finished() const override { return started_ && !sent_; }
  std::int64_t output() const { return arrival_; }

 private:
  void forward(Context& ctx) {
    sent_ = true;
    for (int p = 0; p < ctx.num_ports(); ++p) ctx.send(p, {{arrival_}});
  }
  bool source_;
  std::int64_t arrival_ = -1;
  bool started_ = false;
  bool sent_ = false;
};

// Full-duplex saturation with data-dependent payloads: every vertex sends
// a parity-mixed word on every port each round, folding received words
// into a running sink — any delivery mixup changes the final sinks.
class SaturateAlgo final : public VertexAlgorithm {
 public:
  explicit SaturateAlgo(int rounds) : rounds_(rounds) {}

  void round(Context& ctx) override {
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) sink_ += m.words[0];
    }
    if (ctx.round() < rounds_) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{(sink_ * 31 + ctx.id()) ^ ctx.round()}});
      }
    } else {
      done_ = true;
    }
  }
  bool finished() const override { return done_; }
  std::int64_t output() const { return sink_; }

 private:
  int rounds_;
  std::int64_t sink_ = 0;
  bool done_ = false;
};

struct DeterminismOutcome {
  RunStats stats;
  std::vector<std::int64_t> outputs;
};

template <typename Algo, typename Make>
DeterminismOutcome run_workload(const Graph& g, int num_threads, Make make) {
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<Algo*> typed;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = make(v);
    typed.push_back(a.get());
    algos.push_back(std::move(a));
  }
  NetworkOptions opt;
  opt.num_threads = num_threads;
  Network net(g, opt);
  DeterminismOutcome out;
  out.stats = net.run(algos);
  for (const Algo* a : typed) out.outputs.push_back(a->output());
  return out;
}

TEST(ParallelDeterminism, FloodIsBitIdenticalAcrossThreadCounts) {
  const Graph g = graph::grid(24, 24);
  const auto make = [](VertexId v) {
    return std::make_unique<FloodWaveAlgo>(v == 0);
  };
  const auto serial = run_workload<FloodWaveAlgo>(g, 1, make);
  EXPECT_EQ(serial.stats.messages_sent, 2 * g.num_edges());
  for (const int threads : {2, 4, 8, 16}) {
    const auto par = run_workload<FloodWaveAlgo>(g, threads, make);
    expect_same_stats(par.stats, serial.stats);
    EXPECT_EQ(par.outputs, serial.outputs) << threads << " threads";
  }
}

TEST(ParallelDeterminism, PingPongIsBitIdenticalAcrossThreadCounts) {
  const Graph g = graph::grid(16, 16);
  const auto make = [](VertexId) { return std::make_unique<SaturateAlgo>(12); };
  const auto serial = run_workload<SaturateAlgo>(g, 1, make);
  for (const int threads : {2, 4, 8, 16}) {
    const auto par = run_workload<SaturateAlgo>(g, threads, make);
    expect_same_stats(par.stats, serial.stats);
    EXPECT_EQ(par.outputs, serial.outputs) << threads << " threads";
  }
}

// Randomized workload: Luby MIS draws per-vertex mt19937_64 priorities.
// RNG state lives inside each vertex algorithm, so the drawn bits — and
// therefore the chosen independent set — must not depend on sharding.
TEST(ParallelDeterminism, LubyMisIsBitIdenticalAcrossThreadCounts) {
  graph::Rng rng(99);
  const Graph g = graph::random_maximal_planar(300, rng);
  congest::NetworkOptions opt;
  const auto serial = baselines::luby_mis(g, 7, opt);
  EXPECT_FALSE(serial.independent_set.empty());
  for (const int threads : {2, 4, 8, 16}) {
    congest::NetworkOptions popt;
    popt.num_threads = threads;
    const auto par = baselines::luby_mis(g, 7, popt);
    expect_same_stats(par.stats, serial.stats);
    EXPECT_EQ(par.independent_set, serial.independent_set)
        << threads << " threads";
    EXPECT_EQ(par.phases, serial.phases);
  }
}

// --- Sparse-round fast path -------------------------------------------------
//
// The serial fallback (NetworkOptions::sparse_serial_threshold) decides
// per round on the thread-count-independent active-vertex count, so every
// threshold setting must produce bit-identical results and metrics — the
// fallback may only change where the work runs, never what it computes.
// Flood is the canonical sparse shape: the wavefront is a thin frontier
// and the drain rounds are near-empty.

TEST(SparseFastPath, ThresholdNeverChangesResultsOrMetrics) {
  const Graph g = graph::grid(24, 24);
  const auto run_with = [&](int threads, int threshold) {
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    std::vector<FloodWaveAlgo*> typed;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      auto a = std::make_unique<FloodWaveAlgo>(v == 0);
      typed.push_back(a.get());
      algos.push_back(std::move(a));
    }
    MetricsRegistry metrics;
    NetworkOptions opt;
    opt.num_threads = threads;
    opt.sparse_serial_threshold = threshold;
    opt.metrics = &metrics;
    Network net(g, opt);
    DeterminismOutcome out;
    out.stats = net.run(algos);
    for (const FloodWaveAlgo* a : typed) out.outputs.push_back(a->output());
    return std::pair(out, metrics.to_json());
  };
  const auto [ref, ref_json] = run_with(1, 0);
  for (const int threads : {1, 2, 4, 8}) {
    // 0 = fallback disabled, 48 = the wavefront straddles it (some rounds
    // dispatch, some fall back), huge = every round runs inline.
    for (const int threshold : {0, 48, 1 << 20}) {
      const auto [out, json] = run_with(threads, threshold);
      expect_same_stats(out.stats, ref.stats);
      EXPECT_EQ(out.outputs, ref.outputs)
          << threads << " threads, threshold " << threshold;
      EXPECT_EQ(json, ref_json)
          << threads << " threads, threshold " << threshold;
    }
  }
}

// num_threads = 0 (auto) must not spawn workers a tiny graph cannot feed:
// the shard count is clamped so every shard carries a meaningful weight
// (kAutoShardMinWeight in network.cpp). A 6x6 grid's weight is ~156, so
// auto resolves to one shard on any machine — observable through the
// profiler's lane count.
TEST(SparseFastPath, AutoThreadCountClampsToShardWeightOnTinyGraphs) {
  const Graph g = graph::grid(6, 6);
  ExecutionProfiler profiler;
  NetworkOptions opt;
  opt.num_threads = 0;  // hardware concurrency, then the weight clamp
  opt.profiler = &profiler;
  Network net(g, opt);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    algos.push_back(std::make_unique<FloodWaveAlgo>(v == 0));
  }
  net.run(algos);
  EXPECT_EQ(profiler.summary().num_shards, 1);
}

// --- Error recovery after aborted runs -------------------------------------
//
// A violation aborts a run mid-round with messages already deposited for
// the next round. The Network must stay reusable: a fresh run() on the
// same instance starts from clean mailboxes and reports correct stats
// (the reset_mailboxes path), in arena, fallback, and parallel modes.

// Sends within budget at round 0 (so both buffers hold state when the
// abort happens), then overruns the per-edge token budget at round 1.
class BudgetViolatorAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    ctx.send(0, {{1}});
    if (ctx.round() >= 1) ctx.send(0, {{2}});  // second token: budget is 1
  }
  bool finished() const override { return false; }
};

// Valid send at round 0, out-of-range port at round 1.
class LateBadPortAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    if (ctx.round() == 0) {
      ctx.send(0, {{1}});
    } else {
      ctx.send(ctx.num_ports(), {{1}});
    }
  }
  bool finished() const override { return false; }
};

// Oversized message at round 1 — the violation reachable in fallback mode
// with enforcement still on.
class LateFatMessageAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    if (ctx.round() == 0) {
      ctx.send(0, {{1}});
    } else {
      Message m;
      for (int i = 0; i < kMaxMessageWords + 2; ++i) m.words.push_back(i);
      ctx.send(0, std::move(m));
    }
  }
  bool finished() const override { return false; }
};

template <typename Violator>
void abort_then_recover(const NetworkOptions& opt) {
  Graph g = graph::path(2);
  Network net(g, opt);
  {
    std::vector<std::unique_ptr<VertexAlgorithm>> bad;
    bad.push_back(std::make_unique<Violator>());
    bad.push_back(std::make_unique<Violator>());
    EXPECT_THROW(net.run(bad), std::exception);
  }
  // SendThenReadAlgo asserts its inboxes internally: leftovers from the
  // aborted run would fail the round-0 empty-inbox expectation.
  std::vector<std::unique_ptr<VertexAlgorithm>> clean;
  clean.push_back(std::make_unique<SendThenReadAlgo>());
  clean.push_back(std::make_unique<SendThenReadAlgo>());
  const RunStats stats = net.run(clean);
  EXPECT_EQ(stats.rounds, SendThenReadAlgo::kRounds + 1);
  EXPECT_EQ(stats.messages_sent, 2 * SendThenReadAlgo::kRounds);
  EXPECT_EQ(stats.words_sent, 2 * SendThenReadAlgo::kRounds);
  EXPECT_EQ(stats.max_edge_load, 1);
}

TEST(ErrorRecovery, CongestionAbortThenFreshRunInArenaMode) {
  abort_then_recover<BudgetViolatorAlgo>({});
}

TEST(ErrorRecovery, BadPortAbortThenFreshRunInArenaMode) {
  abort_then_recover<LateBadPortAlgo>({});
}

TEST(ErrorRecovery, BadPortAbortThenFreshRunInLocalMode) {
  NetworkOptions opt;
  opt.enforce_bandwidth = false;  // per-port vector fallback path
  abort_then_recover<LateBadPortAlgo>(opt);
}

TEST(ErrorRecovery, MessageSizeAbortThenFreshRunInEnforcedFallbackMode) {
  // 2 directed ports * 3M tokens exceeds the arena ceiling, so this is the
  // fallback representation with bandwidth enforcement still active.
  NetworkOptions opt;
  opt.bandwidth_tokens = 3'000'000;
  abort_then_recover<LateFatMessageAlgo>(opt);
}

// Parallel abort: the violation is raised on a worker, quiesced at the
// round barrier, and rethrown on the caller thread as the same exception
// the serial loop would pick (lowest vertex id — shards are contiguous).
TEST(ErrorRecovery, ParallelAbortRethrowsFirstViolationAndStaysReusable) {
  const Graph g = graph::grid(8, 8);
  NetworkOptions opt;
  opt.num_threads = 4;
  Network net(g, opt);
  {
    std::vector<std::unique_ptr<VertexAlgorithm>> bad;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      bad.push_back(std::make_unique<BudgetViolatorAlgo>());
    }
    try {
      net.run(bad);
      FAIL() << "budget overrun was accepted";
    } catch (const CongestionError& e) {
      EXPECT_EQ(e.kind(), CongestionError::Kind::kBandwidth);
      EXPECT_EQ(e.round(), 1);
      EXPECT_EQ(e.from(), 0);  // serial order: vertex 0 violates first
      EXPECT_EQ(e.used(), 2);
      EXPECT_EQ(e.budget(), 1);
    }
  }
  const auto make = [](VertexId v) {
    return std::make_unique<FloodWaveAlgo>(v == 0);
  };
  const auto recovered = run_workload<FloodWaveAlgo>(g, 1, make);
  std::vector<std::unique_ptr<VertexAlgorithm>> clean;
  std::vector<FloodWaveAlgo*> typed;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = make(v);
    typed.push_back(a.get());
    clean.push_back(std::move(a));
  }
  const RunStats stats = net.run(clean);
  expect_same_stats(stats, recovered.stats);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(typed[v]->output(), recovered.outputs[v]);
  }
}

TEST(ErrorRecovery, ParallelBadPortAbortThenFreshRun) {
  NetworkOptions opt;
  opt.num_threads = 2;
  abort_then_recover<LateBadPortAlgo>(opt);
}

// --- ThreadPool barrier integrity under exceptions --------------------------
//
// Regression for the generation-barrier protocol: a dispatch whose job
// throws — in any shard, including the caller's own slice — must still
// quiesce before control leaves dispatch(). Returning early would let the
// next dispatch overwrite pending_ while stale workers still decrement it,
// driving the count negative and parking every thread forever. The
// workload below is shaped like the simulator's BSP round: a compute
// dispatch fills per-shard metric rows, then a "reduction" dispatch merges
// them — and the reducer throws.

TEST(ThreadPoolBarrier, ThrowingMetricsReducerLeavesPoolReusable) {
  constexpr int kShards = 4;
  ThreadPool pool(kShards);
  std::array<std::int64_t, kShards> rows{};
  pool.run([&](int s) { rows[s] = s + 1; });  // compute phase

  // Reduction phase: a worker-shard reducer fails while merging rows.
  EXPECT_THROW(pool.run([&](int s) {
    if (s == 2) throw std::runtime_error("metrics reducer failed");
    rows[s] += rows[s];
  }),
               std::runtime_error);

  // Same failure from the caller's shard (the slice dispatch() itself runs).
  EXPECT_THROW(pool.run([&](int s) {
    if (s == 0) throw std::runtime_error("caller-side reducer failed");
  }),
               std::runtime_error);

  // The pool must have quiesced both times: the next dispatch runs every
  // shard exactly once and the barrier still holds.
  std::array<std::int64_t, kShards> ran{};
  pool.run([&](int s) { ran[s] = 1; });
  for (int s = 0; s < kShards; ++s) EXPECT_EQ(ran[s], 1) << "shard " << s;

  // Stress the protocol: alternate throwing and clean dispatches. Any
  // generation/pending desync surfaces as a hang (test timeout) or a
  // missed shard.
  for (int i = 0; i < 100; ++i) {
    EXPECT_THROW(pool.run([&](int s) {
      if (s == i % kShards) throw std::runtime_error("flaky reducer");
    }),
                 std::runtime_error);
    std::array<std::int64_t, kShards> ok{};
    pool.run([&](int s) { ok[s] = 1; });
    for (int s = 0; s < kShards; ++s) ASSERT_EQ(ok[s], 1);
  }
  // Destructor joins workers; reaching scope end cleanly is part of the
  // regression (a parked worker would hang the join).
}

// Every shard throwing at once: dispatch must surface the lowest-numbered
// capture (serial order) and clear the rest.
TEST(ThreadPoolBarrier, LowestShardExceptionWinsWhenAllThrow) {
  ThreadPool pool(4);
  try {
    pool.run([](int s) {
      throw std::runtime_error("shard " + std::to_string(s));
    });
    FAIL() << "exception was swallowed";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "shard 0");
  }
  // A later clean dispatch must not rethrow a stale capture.
  std::array<std::int64_t, 4> ran{};
  pool.run([&](int s) { ran[s] = 1; });
  for (int s = 0; s < 4; ++s) EXPECT_EQ(ran[s], 1);
}

// --- Fused two-phase dispatch (run_phases) ----------------------------------
//
// The sense-reversing barrier's hardest cases: a phase-0 throw must skip
// phase 1 on EVERY member (the delivery phase of a round may never run
// over a half-computed round), a phase-1 throw must still quiesce, member
// masks must leave non-members untouched, and the pool must stay reusable
// through all of it — under both the spinning and the parked waiter path
// (which of the two runs depends on the host's core count; the protocol
// is identical).

TEST(ThreadPoolBarrier, RunPhasesOrdersPhasesAcrossShards) {
  constexpr int kShards = 4;
  ThreadPool pool(kShards);
  std::array<std::int64_t, kShards> compute{};
  std::array<std::int64_t, kShards> deliver{};
  for (int iter = 0; iter < 200; ++iter) {
    pool.run_phases(nullptr, [&](int s, int phase) {
      if (phase == 0) {
        compute[s] += 1;
      } else {
        // The internal barrier separates the phases: every shard's phase 0
        // of this dispatch must be visible before any shard's phase 1.
        for (int t = 0; t < kShards; ++t) {
          ASSERT_EQ(compute[t], iter + 1) << "shard " << s << " phase 1 saw "
                                          << "shard " << t << " mid-compute";
        }
        deliver[s] += 1;
      }
    });
  }
  for (int s = 0; s < kShards; ++s) {
    EXPECT_EQ(compute[s], 200);
    EXPECT_EQ(deliver[s], 200);
  }
}

TEST(ThreadPoolBarrier, Phase0ThrowSkipsPhase1TeamWide) {
  constexpr int kShards = 4;
  ThreadPool pool(kShards);
  for (int thrower = 0; thrower < kShards; ++thrower) {
    std::array<std::atomic<int>, kShards> phase1{};
    try {
      pool.run_phases(nullptr, [&](int s, int phase) {
        if (phase == 0 && s == thrower) {
          throw std::runtime_error("compute failed on " + std::to_string(s));
        }
        if (phase == 1) phase1[s].fetch_add(1);
      });
      FAIL() << "exception was swallowed (thrower " << thrower << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()),
                "compute failed on " + std::to_string(thrower));
    }
    for (int s = 0; s < kShards; ++s) {
      EXPECT_EQ(phase1[s].load(), 0)
          << "shard " << s << " delivered over a half-computed round";
    }
  }
  std::array<std::int64_t, kShards> ran{};
  pool.run([&](int s) { ran[s] = 1; });
  for (int s = 0; s < kShards; ++s) EXPECT_EQ(ran[s], 1);
}

TEST(ThreadPoolBarrier, Phase1ThrowQuiescesAndLowestShardWins) {
  ThreadPool pool(4);
  for (int i = 0; i < 50; ++i) {
    try {
      pool.run_phases(nullptr, [&](int s, int phase) {
        if (phase == 1 && s >= i % 3) {
          throw std::runtime_error("deliver " + std::to_string(s));
        }
      });
      FAIL() << "exception was swallowed";
    } catch (const std::runtime_error& e) {
      EXPECT_EQ(std::string(e.what()), "deliver " + std::to_string(i % 3));
    }
  }
  std::array<std::int64_t, 4> ran{};
  pool.run([&](int s) { ran[s] = 1; });
  for (int s = 0; s < 4; ++s) EXPECT_EQ(ran[s], 1);
}

TEST(ThreadPoolBarrier, MemberMaskSkipsNonMembersEntirely) {
  constexpr int kShards = 8;
  ThreadPool pool(kShards);
  std::array<std::int64_t, kShards> runs{};
  // Rotate through member subsets, including the empty mask (shard 0 — the
  // caller — always participates regardless of its byte).
  for (int iter = 0; iter < 100; ++iter) {
    std::array<unsigned char, kShards> members{};
    for (int s = 0; s < kShards; ++s) {
      members[s] = (iter % (s + 1)) == 0 ? 1 : 0;
    }
    if (iter % 7 == 0) members.fill(0);
    std::array<int, kShards> expected{};
    for (int s = 0; s < kShards; ++s) expected[s] = members[s] ? 1 : 0;
    expected[0] = 1;
    std::array<std::atomic<int>, kShards> hit{};
    pool.run_phases(members.data(), [&](int s, int phase) {
      if (phase == 0) hit[s].fetch_add(1);
    });
    for (int s = 0; s < kShards; ++s) {
      ASSERT_EQ(hit[s].load(), expected[s]) << "iter " << iter << " shard " << s;
      runs[s] += hit[s].load();
    }
  }
  EXPECT_EQ(runs[0], 100);  // caller ran every dispatch
}

TEST(ThreadPoolBarrier, ThrowingMemberWithMaskedTeamStaysReusable) {
  constexpr int kShards = 4;
  ThreadPool pool(kShards);
  std::array<unsigned char, kShards> members{1, 0, 1, 0};
  for (int i = 0; i < 50; ++i) {
    EXPECT_THROW(pool.run_phases(members.data(),
                                 [&](int s, int phase) {
                                   if (phase == 0 && s == 2) {
                                     throw std::runtime_error("member threw");
                                   }
                                 }),
                 std::runtime_error);
    std::array<std::int64_t, kShards> ok{};
    pool.run([&](int s) { ok[s] = 1; });
    for (int s = 0; s < kShards; ++s) ASSERT_EQ(ok[s], 1) << "iter " << i;
  }
}

TEST(ThreadPoolBarrier, SingleThreadRunPhasesPropagatesDirectly) {
  ThreadPool pool(1);
  int deliver = 0;
  EXPECT_THROW(pool.run_phases(nullptr,
                               [&](int, int phase) {
                                 if (phase == 0) throw std::runtime_error("x");
                                 deliver = 1;
                               }),
               std::runtime_error);
  EXPECT_EQ(deliver, 0);  // phase 1 skipped after a phase-0 throw
  pool.run_phases(nullptr, [&](int, int phase) {
    if (phase == 1) deliver = 2;
  });
  EXPECT_EQ(deliver, 2);
}

// --- Parity fixture --------------------------------------------------------

void expect_stats(const RunStats& s, std::int64_t rounds, std::int64_t msgs,
                  std::int64_t words, int max_load) {
  EXPECT_EQ(s.rounds, rounds);
  EXPECT_EQ(s.messages_sent, msgs);
  EXPECT_EQ(s.words_sent, words);
  EXPECT_EQ(s.max_edge_load, max_load);
}

void expect_tag(const MetricsCollector& mc, int tag, std::int64_t msgs,
                std::int64_t words) {
  ASSERT_TRUE(mc.tag_stats().count(tag)) << "tag " << tag;
  EXPECT_EQ(mc.tag_stats().at(tag).messages, msgs) << "tag " << tag;
  EXPECT_EQ(mc.tag_stats().at(tag).words, words) << "tag " << tag;
}

// Every number below was recorded by running this exact workload on the
// pre-arena simulator (per-vertex vector mailboxes, commit 85a25a5). The
// arena rewrite must reproduce RunStats and every trace aggregate exactly —
// and so must any net options (num_threads included) layered on top.
void run_parity_workload(NetworkOptions net) {
  graph::Rng rng(77);
  const Graph g = graph::random_maximal_planar(64, rng);
  std::vector<int> cluster(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    cluster[v] = v % 3 == 0 ? 0 : 1;
  }
  MetricsCollector mc;
  net.trace = &mc;

  const auto leaders = elect_cluster_leaders(g, cluster, net);
  expect_stats(leaders.stats, 4, 542, 1084, 1);

  const auto tree = build_cluster_bfs_trees(g, cluster, leaders.leader_of, net);
  expect_stats(tree.stats, 4, 258, 258, 1);

  const auto orient = orient_cluster_edges(g, cluster, 5, net);
  expect_stats(orient.stats, 4, 181, 181, 1);

  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v, 100 + v}});
  }
  GatherOptions gopt;
  gopt.seed = 1234;
  gopt.net = net;
  gopt.net.bandwidth_tokens = 4;
  const auto gather =
      random_walk_gather(g, cluster, leaders.leader_of, tokens, gopt);
  expect_stats(gather.stats, 134, 575, 1725, 2);
  EXPECT_TRUE(gather.complete);

  const auto tg =
      tree_gather(g, cluster, leaders.leader_of, tree.parent, tokens, net);
  expect_stats(tg.stats, 7, 77, 154, 1);

  std::vector<std::int64_t> values(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) values[v] = v;
  const auto cc = convergecast_fold(g, cluster, leaders.leader_of, tree.parent,
                                    tree.depth, values, Fold::kSum, net);
  expect_stats(cc.stats, 4, 114, 171, 1);

  std::vector<std::int64_t> leader_values(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (leaders.leader_of[v] == v) leader_values[v] = 5000 + v;
  }
  const auto bc =
      broadcast_from_leaders(g, cluster, leaders.leader_of, leader_values, net);
  expect_stats(bc.stats, 4, 258, 258, 1);

  const auto dc = check_cluster_diameter(g, cluster, 8, net);
  expect_stats(dc.stats, 27, 6966, 6966, 1);

  expect_stats(mc.totals(), 188, 8971, 10797, 2);
  EXPECT_EQ(mc.runs_observed(), 8);
  EXPECT_EQ(mc.rounds().size(), 188u);

  expect_tag(mc, kTagElection, 542, 1084);
  expect_tag(mc, kTagBfs, 258, 258);
  expect_tag(mc, kTagOrientation, 181, 181);
  expect_tag(mc, kTagWalkToken, 575, 1725);
  expect_tag(mc, kTagBroadcast, 258, 258);
  expect_tag(mc, kTagConvergecast, 114, 171);
  expect_tag(mc, kTagDiameter, 6966, 6966);
  expect_tag(mc, kTagTreeToken, 77, 154);

  std::int64_t edge_messages = 0;
  int peak = 0;
  const auto edges = mc.top_edges(-1);
  for (const auto& e : edges) {
    edge_messages += e.messages;
    peak = std::max(peak, e.peak_load);
  }
  EXPECT_EQ(edge_messages, 8971);
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(edges.size(), 258u);
}

TEST(SubstrateParity, TraceAndStatsMatchPreArenaRecording) {
  run_parity_workload({});
}

// The event-stream TraceSink used to be serial-only; sharded trace lanes
// (DESIGN.md §18) made it thread-count-invariant. The pre-arena parity
// recording must hold — every aggregate, byte for byte in the exporters —
// at every worker count, because lanes replay in the same sorted
// (sender-slot, receiver-port) order the serial loop delivers in.
TEST(SubstrateParity, TraceMatchesPreArenaRecordingAtEveryThreadCount) {
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    NetworkOptions net;
    net.num_threads = threads;
    run_parity_workload(net);
  }
}

}  // namespace
}  // namespace ecd::congest
