// Substrate-level tests for the mailbox arena (src/congest/network.cpp):
// per-port FIFO order, double-buffer isolation between rounds, WordBuffer
// spill behaviour, send-side validation, the max_rounds budget, and a parity
// fixture pinning trace/RunStats output to numbers recorded on the
// pre-arena simulator.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/congest/network.h"
#include "src/congest/primitives.h"
#include "src/congest/trace.h"
#include "src/graph/generators.h"

namespace ecd::congest {
namespace {

using graph::Graph;
using graph::VertexId;

// --- Per-port FIFO ---------------------------------------------------------

// Sends a burst of three sequence-numbered messages per round for three
// rounds; the receiver must observe them in exactly send order.
class BurstSender final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    if (ctx.round() < 3) {
      for (std::int64_t i = 0; i < 3; ++i) {
        ctx.send(0, {{ctx.round() * 10 + i}});
      }
    } else {
      done_ = true;
    }
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

class FifoReceiver final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    for (const Message& m : ctx.inbox(0)) seen_.push_back(m.words[0]);
  }
  bool finished() const override { return seen_.size() == 9u; }
  const std::vector<std::int64_t>& seen() const { return seen_; }

 private:
  std::vector<std::int64_t> seen_;
};

TEST(Substrate, PerPortDeliveryIsFifo) {
  Graph g = graph::path(2);
  auto sender = std::make_unique<BurstSender>();
  auto receiver = std::make_unique<FifoReceiver>();
  FifoReceiver* typed = receiver.get();
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::move(sender));
  algos.push_back(std::move(receiver));
  NetworkOptions opt;
  opt.bandwidth_tokens = 3;
  Network net(g, opt);
  net.run(algos);
  const std::vector<std::int64_t> expected{0, 1, 2, 10, 11, 12, 20, 21, 22};
  EXPECT_EQ(typed->seen(), expected);
}

// --- Double-buffer isolation -----------------------------------------------

// Sends {round} before reading, then asserts this round's inbox holds
// exactly the previous round's value — a send during round r must never
// alias the round-r inbox (the two arena buffers back different rounds).
class SendThenReadAlgo final : public VertexAlgorithm {
 public:
  static constexpr std::int64_t kRounds = 5;

  void round(Context& ctx) override {
    if (ctx.round() < kRounds) ctx.send(0, {{ctx.round()}});
    const PortInbox box = ctx.inbox(0);
    if (ctx.round() == 0) {
      EXPECT_TRUE(box.empty());
    } else {
      ASSERT_EQ(box.size(), 1);
      EXPECT_EQ(box[0].words[0], ctx.round() - 1);
    }
    if (ctx.round() == kRounds) done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

void run_send_then_read(const NetworkOptions& opt) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<SendThenReadAlgo>());
  algos.push_back(std::make_unique<SendThenReadAlgo>());
  Network net(g, opt);
  const RunStats stats = net.run(algos);
  EXPECT_EQ(stats.rounds, SendThenReadAlgo::kRounds + 1);
  EXPECT_EQ(stats.messages_sent, 2 * SendThenReadAlgo::kRounds);
}

TEST(Substrate, RoundBuffersDoNotAliasInArenaMode) {
  run_send_then_read({});
}

TEST(Substrate, RoundBuffersDoNotAliasInLocalMode) {
  NetworkOptions opt;
  opt.enforce_bandwidth = false;  // per-port vector fallback path
  run_send_then_read(opt);
}

// A Network is reusable: a second run on the same instance must start from
// clean mailboxes, not see leftovers of the first.
TEST(Substrate, NetworkReuseStartsFromCleanMailboxes) {
  Graph g = graph::path(2);
  Network net(g);
  for (int i = 0; i < 2; ++i) {
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    algos.push_back(std::make_unique<SendThenReadAlgo>());
    algos.push_back(std::make_unique<SendThenReadAlgo>());
    EXPECT_EQ(net.run(algos).rounds, SendThenReadAlgo::kRounds + 1);
  }
}

// --- WordBuffer spill + message-size enforcement ---------------------------

TEST(Substrate, WordBufferSpillsBeyondInlineCapacity) {
  WordBuffer buf;
  for (std::int64_t i = 0; i < 2 * kMaxMessageWords; ++i) buf.push_back(i);
  ASSERT_EQ(buf.size(), 2 * kMaxMessageWords);
  for (int i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], i);
  buf.clear();
  EXPECT_TRUE(buf.empty());
  buf.push_back(42);  // back to inline storage after clear()
  ASSERT_EQ(buf.size(), 1);
  EXPECT_EQ(buf[0], 42);
}

class SpilledMessageAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    Message m;
    for (int i = 0; i < kMaxMessageWords + 3; ++i) m.words.push_back(i);
    ctx.send(0, std::move(m));
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(Substrate, SpilledMessageStillRaisesMessageSizeViolation) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<SpilledMessageAlgo>());
  algos.push_back(std::make_unique<SpilledMessageAlgo>());
  Network net(g);
  try {
    net.run(algos);
    FAIL() << "oversized message was accepted";
  } catch (const CongestionError& e) {
    EXPECT_EQ(e.kind(), CongestionError::Kind::kMessageSize);
    EXPECT_EQ(e.used(), kMaxMessageWords + 3);
    EXPECT_EQ(e.budget(), kMaxMessageWords);
  }
}

// --- send() validation -----------------------------------------------------

class BadPortAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    ctx.send(ctx.num_ports(), {{1}});
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(Substrate, SendOnBadPortNamesVertexAndPortCount) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<BadPortAlgo>());
  algos.push_back(std::make_unique<BadPortAlgo>());
  Network net(g);
  try {
    net.run(algos);
    FAIL() << "out-of-range port was accepted";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("port 1"), std::string::npos) << what;
    EXPECT_NE(what.find("vertex 0"), std::string::npos) << what;
    EXPECT_NE(what.find("1 ports"), std::string::npos) << what;
  }
}

// --- max_rounds budget -----------------------------------------------------

class NeverDoneAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    ++rounds_seen;
    ctx.send(0, {{1}});
  }
  bool finished() const override { return false; }
  int rounds_seen = 0;
};

TEST(Substrate, MaxRoundsExecutesExactlyThatManyComputeRounds) {
  Graph g = graph::path(2);
  auto a = std::make_unique<NeverDoneAlgo>();
  auto b = std::make_unique<NeverDoneAlgo>();
  NeverDoneAlgo* ta = a.get();
  NeverDoneAlgo* tb = b.get();
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::move(a));
  algos.push_back(std::move(b));
  NetworkOptions opt;
  opt.max_rounds = 7;
  Network net(g, opt);
  EXPECT_THROW(net.run(algos), std::runtime_error);
  // The budget is exact: max_rounds compute rounds, not max_rounds + 1.
  EXPECT_EQ(ta->rounds_seen, 7);
  EXPECT_EQ(tb->rounds_seen, 7);
}

class FinishAfterAlgo final : public VertexAlgorithm {
 public:
  explicit FinishAfterAlgo(int target) : target_(target) {}
  void round(Context&) override { ++seen_; }
  bool finished() const override { return seen_ >= target_; }

 private:
  int target_;
  int seen_ = 0;
};

TEST(Substrate, FinishingAtTheRoundLimitStillCompletes) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<FinishAfterAlgo>(7));
  algos.push_back(std::make_unique<FinishAfterAlgo>(7));
  NetworkOptions opt;
  opt.max_rounds = 7;
  Network net(g, opt);
  EXPECT_EQ(net.run(algos).rounds, 7);
}

// --- Parity fixture --------------------------------------------------------

void expect_stats(const RunStats& s, std::int64_t rounds, std::int64_t msgs,
                  std::int64_t words, int max_load) {
  EXPECT_EQ(s.rounds, rounds);
  EXPECT_EQ(s.messages_sent, msgs);
  EXPECT_EQ(s.words_sent, words);
  EXPECT_EQ(s.max_edge_load, max_load);
}

void expect_tag(const MetricsCollector& mc, int tag, std::int64_t msgs,
                std::int64_t words) {
  ASSERT_TRUE(mc.tag_stats().count(tag)) << "tag " << tag;
  EXPECT_EQ(mc.tag_stats().at(tag).messages, msgs) << "tag " << tag;
  EXPECT_EQ(mc.tag_stats().at(tag).words, words) << "tag " << tag;
}

// Every number below was recorded by running this exact workload on the
// pre-arena simulator (per-vertex vector mailboxes, commit 85a25a5). The
// arena rewrite must reproduce RunStats and every trace aggregate exactly.
TEST(SubstrateParity, TraceAndStatsMatchPreArenaRecording) {
  graph::Rng rng(77);
  const Graph g = graph::random_maximal_planar(64, rng);
  std::vector<int> cluster(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    cluster[v] = v % 3 == 0 ? 0 : 1;
  }
  MetricsCollector mc;
  NetworkOptions net;
  net.trace = &mc;

  const auto leaders = elect_cluster_leaders(g, cluster, net);
  expect_stats(leaders.stats, 4, 542, 1084, 1);

  const auto tree = build_cluster_bfs_trees(g, cluster, leaders.leader_of, net);
  expect_stats(tree.stats, 4, 258, 258, 1);

  const auto orient = orient_cluster_edges(g, cluster, 5, net);
  expect_stats(orient.stats, 4, 181, 181, 1);

  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v, 100 + v}});
  }
  GatherOptions gopt;
  gopt.seed = 1234;
  gopt.net = net;
  gopt.net.bandwidth_tokens = 4;
  const auto gather =
      random_walk_gather(g, cluster, leaders.leader_of, tokens, gopt);
  expect_stats(gather.stats, 134, 575, 1725, 2);
  EXPECT_TRUE(gather.complete);

  const auto tg =
      tree_gather(g, cluster, leaders.leader_of, tree.parent, tokens, net);
  expect_stats(tg.stats, 7, 77, 154, 1);

  std::vector<std::int64_t> values(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) values[v] = v;
  const auto cc = convergecast_fold(g, cluster, leaders.leader_of, tree.parent,
                                    tree.depth, values, Fold::kSum, net);
  expect_stats(cc.stats, 4, 114, 171, 1);

  std::vector<std::int64_t> leader_values(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (leaders.leader_of[v] == v) leader_values[v] = 5000 + v;
  }
  const auto bc =
      broadcast_from_leaders(g, cluster, leaders.leader_of, leader_values, net);
  expect_stats(bc.stats, 4, 258, 258, 1);

  const auto dc = check_cluster_diameter(g, cluster, 8, net);
  expect_stats(dc.stats, 27, 6966, 6966, 1);

  expect_stats(mc.totals(), 188, 8971, 10797, 2);
  EXPECT_EQ(mc.runs_observed(), 8);
  EXPECT_EQ(mc.rounds().size(), 188u);

  expect_tag(mc, kTagElection, 542, 1084);
  expect_tag(mc, kTagBfs, 258, 258);
  expect_tag(mc, kTagOrientation, 181, 181);
  expect_tag(mc, kTagWalkToken, 575, 1725);
  expect_tag(mc, kTagBroadcast, 258, 258);
  expect_tag(mc, kTagConvergecast, 114, 171);
  expect_tag(mc, kTagDiameter, 6966, 6966);
  expect_tag(mc, kTagTreeToken, 77, 154);

  std::int64_t edge_messages = 0;
  int peak = 0;
  const auto edges = mc.top_edges(-1);
  for (const auto& e : edges) {
    edge_messages += e.messages;
    peak = std::max(peak, e.peak_load);
  }
  EXPECT_EQ(edge_messages, 8971);
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(edges.size(), 258u);
}

}  // namespace
}  // namespace ecd::congest
