// Deterministic fault injection (DESIGN.md §12).
//
// The load-bearing property is the determinism contract: a fault schedule is
// a pure function of (FaultPlan::seed, round, port, slot), so two runs with
// the same plan — at any thread count — deliver, drop, duplicate, and delay
// exactly the same messages. The first suite pins that down with
// field-by-field RunStats comparisons across num_threads in {1, 2, 4, 8};
// later suites cover crash-stop semantics and the reliable gather built on
// top of the faulty substrate.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "src/congest/fault.h"
#include "src/congest/network.h"
#include "src/congest/primitives.h"
#include "src/core/framework.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"

namespace ecd {
namespace {

using congest::CrashEvent;
using congest::FaultPlan;
using congest::Message;
using congest::Network;
using congest::NetworkOptions;
using congest::RunStats;
using congest::VertexAlgorithm;
using graph::Graph;
using graph::VertexId;

// Every vertex sends its id to every neighbor each round for a fixed number
// of rounds, accumulating a digest of everything it receives. Termination is
// by round count, so the algorithm tolerates arbitrary message faults — the
// digest changes, the protocol does not wedge.
class ChatterAlgo : public congest::VertexAlgorithm {
 public:
  explicit ChatterAlgo(int rounds) : rounds_(rounds) {}

  void round(congest::Context& ctx) override {
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) {
        // Order-sensitive digest: delivery order differences change it.
        digest_ = digest_ * 0x100000001b3ULL ^
                  static_cast<std::uint64_t>(m.words[0]);
        ++received_;
      }
    }
    if (executed_ < rounds_) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{ctx.id()}, congest::kTagDefault});
      }
    }
    ++executed_;
  }

  bool finished() const override { return executed_ > rounds_ + 2; }

  std::uint64_t digest() const { return digest_; }
  std::int64_t received() const { return received_; }

 private:
  int rounds_ = 0;
  int executed_ = 0;
  std::int64_t received_ = 0;
  std::uint64_t digest_ = 0xcbf29ce484222325ULL;
};

struct ChatterOutcome {
  RunStats stats;
  std::vector<std::uint64_t> digests;
  std::vector<std::int64_t> received;
};

ChatterOutcome run_chatter(const Graph& g, const FaultPlan& plan,
                           int num_threads, int rounds = 12,
                           int bandwidth = 1, int sparse_threshold = 0) {
  NetworkOptions opt;
  opt.bandwidth_tokens = bandwidth;
  opt.num_threads = num_threads;
  opt.faults = plan;
  // These fixtures probe the dispatching round loop: the chatter graphs sit
  // below the default sparse-serial threshold, so leave it off unless a
  // test asks for the fallback regime explicitly.
  opt.sparse_serial_threshold = sparse_threshold;
  Network net(g, opt);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    algos.push_back(std::make_unique<ChatterAlgo>(rounds));
  }
  ChatterOutcome out;
  out.stats = net.run(algos);
  for (const auto& a : algos) {
    const auto& c = static_cast<const ChatterAlgo&>(*a);
    out.digests.push_back(c.digest());
    out.received.push_back(c.received());
  }
  return out;
}

void expect_same_outcome(const ChatterOutcome& a, const ChatterOutcome& b) {
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.stats.messages_sent, b.stats.messages_sent);
  EXPECT_EQ(a.stats.words_sent, b.stats.words_sent);
  EXPECT_EQ(a.stats.max_edge_load, b.stats.max_edge_load);
  EXPECT_EQ(a.stats.messages_dropped, b.stats.messages_dropped);
  EXPECT_EQ(a.stats.messages_duplicated, b.stats.messages_duplicated);
  EXPECT_EQ(a.stats.messages_delayed, b.stats.messages_delayed);
  EXPECT_EQ(a.stats.vertices_crashed, b.stats.vertices_crashed);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.received, b.received);
}

FaultPlan mixed_plan() {
  FaultPlan plan;
  plan.seed = 0x5eedULL;
  plan.drop_probability = 0.08;
  plan.duplicate_probability = 0.05;
  plan.delay_probability = 0.07;
  plan.max_delay_rounds = 3;
  return plan;
}

TEST(FaultDeterminism, IdenticalAcrossThreadCounts) {
  const Graph g = []{ graph::Rng rng(7); return graph::random_maximal_planar(150, rng); }();
  const FaultPlan plan = mixed_plan();
  const ChatterOutcome serial = run_chatter(g, plan, /*num_threads=*/1);
  // Faults actually fired, or the fixture proves nothing.
  EXPECT_GT(serial.stats.messages_dropped, 0);
  EXPECT_GT(serial.stats.messages_duplicated, 0);
  EXPECT_GT(serial.stats.messages_delayed, 0);
  for (const int t : {2, 4, 8, 16}) {
    SCOPED_TRACE(t);
    expect_same_outcome(serial, run_chatter(g, plan, t));
  }
}

TEST(FaultDeterminism, SparseFallbackIdenticalUnderFaultsAndCrashes) {
  // Crashes shrink the active set below the sparse-serial threshold while
  // delayed messages are still in transit, so the run crosses between the
  // dispatching loop and the serial fallback mid-flight — the fallback must
  // retire crash events and injected traffic exactly like the parallel
  // path, at every thread count.
  const Graph g = []{ graph::Rng rng(7); return graph::random_maximal_planar(150, rng); }();
  FaultPlan plan = mixed_plan();
  plan.crashes = {{3, 1}, {11, 3}, {42, 6}, {97, 9}};
  const ChatterOutcome reference =
      run_chatter(g, plan, /*num_threads=*/1);
  EXPECT_EQ(reference.stats.vertices_crashed, 4);
  for (const int t : {1, 2, 4, 8, 16}) {
    SCOPED_TRACE(t);
    // Default threshold (150 vertices < 256): every round falls back.
    expect_same_outcome(reference, run_chatter(g, plan, t, 12, 1,
                                               /*sparse_threshold=*/256));
    // Tiny threshold: only the crash-drained tail falls back.
    expect_same_outcome(reference, run_chatter(g, plan, t, 12, 1,
                                               /*sparse_threshold=*/8));
  }
}

TEST(FaultDeterminism, RerunOnSameNetworkIsIdentical) {
  const Graph g = graph::torus_grid(8, 8);
  NetworkOptions opt;
  opt.faults = mixed_plan();
  Network net(g, opt);
  RunStats first;
  for (int rep = 0; rep < 2; ++rep) {
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      algos.push_back(std::make_unique<ChatterAlgo>(10));
    }
    const RunStats stats = net.run(algos);
    if (rep == 0) {
      first = stats;
    } else {
      EXPECT_EQ(first.messages_sent, stats.messages_sent);
      EXPECT_EQ(first.messages_dropped, stats.messages_dropped);
      EXPECT_EQ(first.messages_duplicated, stats.messages_duplicated);
      EXPECT_EQ(first.messages_delayed, stats.messages_delayed);
    }
  }
}

TEST(FaultDeterminism, SeedChangesSchedule) {
  const Graph g = graph::torus_grid(8, 8);
  FaultPlan plan = mixed_plan();
  const ChatterOutcome a = run_chatter(g, plan, 1);
  plan.seed ^= 0x9e3779b97f4a7c15ULL;
  const ChatterOutcome b = run_chatter(g, plan, 1);
  EXPECT_NE(a.digests, b.digests);
}

TEST(FaultDeterminism, DisabledPlanMatchesFaultFreeRun) {
  const Graph g = graph::torus_grid(6, 6);
  const ChatterOutcome clean = run_chatter(g, FaultPlan{}, 1);
  EXPECT_EQ(clean.stats.messages_dropped, 0);
  EXPECT_EQ(clean.stats.messages_delayed, 0);
  // A run whose window excludes every round behaves identically to a clean
  // run even though the fault machinery is active.
  FaultPlan windowed = mixed_plan();
  windowed.first_faulty_round = 1'000'000;
  expect_same_outcome(clean, run_chatter(g, windowed, 1));
}

// --- Semantics of the individual fault kinds ------------------------------

// Two vertices on one edge; vertex 0 sends `count` messages with sequence
// numbers, vertex 1 records (round, payload) of everything it receives.
class SeqSenderAlgo : public congest::VertexAlgorithm {
 public:
  explicit SeqSenderAlgo(int count) : count_(count) {}
  void round(congest::Context& ctx) override {
    if (sent_ < count_) ctx.send(0, {{sent_++}, congest::kTagDefault});
    ++executed_;
  }
  bool finished() const override { return executed_ > count_ + 8; }

 private:
  int count_ = 0;
  std::int64_t sent_ = 0;
  int executed_ = 0;
};

class SeqReceiverAlgo : public congest::VertexAlgorithm {
 public:
  void round(congest::Context& ctx) override {
    for (const Message& m : ctx.inbox(0)) {
      log_.push_back({ctx.round(), m.words[0]});
    }
    ++executed_;
  }
  bool finished() const override { return executed_ > 0; }
  const std::vector<std::pair<std::int64_t, std::int64_t>>& log() const {
    return log_;
  }

 private:
  int executed_ = 0;
  std::vector<std::pair<std::int64_t, std::int64_t>> log_;
};

std::vector<std::pair<std::int64_t, std::int64_t>> run_edge(
    const FaultPlan& plan, int count, RunStats* stats_out = nullptr) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  NetworkOptions opt;
  opt.faults = plan;
  Network net(g, opt);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<SeqSenderAlgo>(count));
  algos.push_back(std::make_unique<SeqReceiverAlgo>());
  const RunStats stats = net.run(algos);
  if (stats_out) *stats_out = stats;
  return static_cast<const SeqReceiverAlgo&>(*algos[1]).log();
}

TEST(FaultSemantics, DropsVanishAndAreCounted) {
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_probability = 0.5;
  RunStats stats;
  const auto log = run_edge(plan, 40, &stats);
  EXPECT_GT(stats.messages_dropped, 0);
  EXPECT_EQ(static_cast<int>(log.size()) + stats.messages_dropped, 40);
  // Surviving messages arrive exactly when they would have, in order.
  for (const auto& [round, payload] : log) {
    EXPECT_EQ(round, payload + 1);
  }
}

TEST(FaultSemantics, DuplicatesArriveTwiceSameRound) {
  FaultPlan plan;
  plan.seed = 7;
  plan.duplicate_probability = 0.5;
  RunStats stats;
  const auto log = run_edge(plan, 40, &stats);
  EXPECT_GT(stats.messages_duplicated, 0);
  EXPECT_EQ(static_cast<int>(log.size()),
            40 + static_cast<int>(stats.messages_duplicated));
  // Every payload arrives at least once at its natural round; a duplicated
  // payload appears exactly twice, both copies in the same round.
  for (std::int64_t s = 0; s < 40; ++s) {
    int copies = 0;
    for (const auto& [round, payload] : log) {
      if (payload == s) {
        EXPECT_EQ(round, s + 1);
        ++copies;
      }
    }
    EXPECT_GE(copies, 1);
    EXPECT_LE(copies, 2);
  }
}

TEST(FaultSemantics, DelayedMessagesArriveLateAndBounded) {
  FaultPlan plan;
  plan.seed = 23;
  plan.delay_probability = 0.5;
  plan.max_delay_rounds = 4;
  RunStats stats;
  const auto log = run_edge(plan, 40, &stats);
  EXPECT_GT(stats.messages_delayed, 0);
  // Nothing is lost: delay reorders but never drops.
  EXPECT_EQ(static_cast<int>(log.size()), 40);
  std::set<std::int64_t> seen;
  int late = 0;
  for (const auto& [round, payload] : log) {
    seen.insert(payload);
    EXPECT_GE(round, payload + 1);
    EXPECT_LE(round, payload + 1 + plan.max_delay_rounds);
    if (round != payload + 1) ++late;
  }
  EXPECT_EQ(static_cast<int>(seen.size()), 40);
  EXPECT_EQ(late, static_cast<int>(stats.messages_delayed));
}

TEST(FaultSemantics, DelayedMessageOutlivesSenderTermination) {
  // One message, forced delay of up to 6 rounds, sender finishes right
  // after sending: the run must keep going until the message lands.
  FaultPlan plan;
  plan.seed = 5;
  plan.delay_probability = 1.0;
  plan.max_delay_rounds = 6;
  const auto log = run_edge(plan, 1);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_GE(log[0].first, 2);  // at least one round late
}

TEST(FaultSemantics, BandwidthBudgetIgnoresInjectedPrefix) {
  // With delay_probability = 1 every message is held back one round and
  // redelivered while the sender keeps sending at full budget. If the
  // injected prefix counted against the sender's budget this would throw
  // CongestionError; it must not.
  FaultPlan plan;
  plan.seed = 3;
  plan.delay_probability = 1.0;
  plan.max_delay_rounds = 1;
  RunStats stats;
  const auto log = run_edge(plan, 30, &stats);
  EXPECT_EQ(static_cast<int>(log.size()), 30);
  EXPECT_EQ(stats.messages_delayed, 30);
}

// --- Crash-stop -----------------------------------------------------------

TEST(FaultCrash, CrashedVertexStopsExecutingButTrafficSurvives) {
  // Path 0-1-2. Vertex 1 crashes at round 3: its messages already sent at
  // rounds <= 2 still arrive, it never sends again, and the run terminates
  // (a crashed vertex counts as finished).
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 3});
  NetworkOptions opt;
  opt.faults = plan;
  Network net(g, opt);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  for (VertexId v = 0; v < 3; ++v) {
    algos.push_back(std::make_unique<ChatterAlgo>(10));
  }
  const RunStats stats = net.run(algos);
  EXPECT_EQ(stats.vertices_crashed, 1);
  const auto& end0 = static_cast<const ChatterAlgo&>(*algos[0]);
  // Vertex 0 hears from vertex 1 in rounds 1..3 only (sends of rounds
  // 0..2), then silence.
  EXPECT_EQ(end0.received(), 3);
}

TEST(FaultCrash, CrashAtRoundZeroIsSilent) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 0});
  NetworkOptions opt;
  opt.faults = plan;
  Network net(g, opt);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  for (VertexId v = 0; v < 3; ++v) {
    algos.push_back(std::make_unique<ChatterAlgo>(5));
  }
  const RunStats stats = net.run(algos);
  EXPECT_EQ(stats.vertices_crashed, 1);
  EXPECT_EQ(static_cast<const ChatterAlgo&>(*algos[0]).received(), 0);
  EXPECT_EQ(static_cast<const ChatterAlgo&>(*algos[2]).received(), 0);
}

TEST(FaultCrash, CrashScheduleIdenticalAcrossThreadCounts) {
  const Graph g = []{ graph::Rng rng(3); return graph::random_maximal_planar(120, rng); }();
  FaultPlan plan = mixed_plan();
  plan.crashes = {{5, 2}, {17, 4}, {33, 0}, {80, 7}};
  const ChatterOutcome serial = run_chatter(g, plan, 1);
  EXPECT_EQ(serial.stats.vertices_crashed, 4);
  for (const int t : {2, 4, 8, 16}) {
    SCOPED_TRACE(t);
    expect_same_outcome(serial, run_chatter(g, plan, t));
  }
}

// --- Reliable random-walk gather ------------------------------------------

congest::LeaderElectionResult clean_leaders(const Graph& g,
                                            const std::vector<int>& cl) {
  return congest::elect_cluster_leaders(g, cl);
}

std::vector<std::vector<congest::GatherToken>> one_token_per_vertex(
    const Graph& g) {
  std::vector<std::vector<congest::GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v, v * 7 + 1}});
  }
  return tokens;
}

std::multiset<std::int64_t> delivered_origins(
    const congest::GatherResult& gather) {
  std::multiset<std::int64_t> out;
  for (const auto& cluster : gather.delivered) {
    for (const auto& payload : cluster) out.insert(payload[0]);
  }
  return out;
}

TEST(ReliableGather, MatchesFaultFreeDeliveryUnderOnePercentDrop) {
  const Graph g = graph::torus_grid(7, 7);
  const std::vector<int> cl(g.num_vertices(), 0);
  const auto leaders = clean_leaders(g, cl);
  congest::ReliableGatherOptions opt;
  opt.net.bandwidth_tokens = 2;
  opt.net.faults.seed = 99;
  opt.net.faults.drop_probability = 0.01;
  // Long epoch: the slowest of 49 lazy walks can legitimately need upwards
  // of 512 rounds on this torus, and the single-epoch assertion below is
  // the point of the test.
  opt.epoch_rounds = 4096;
  const auto r = congest::reliable_walk_gather(g, cl, leaders.leader_of,
                                               one_token_per_vertex(g), opt);
  EXPECT_TRUE(r.gather.complete);
  EXPECT_EQ(r.epochs, 1);
  EXPECT_EQ(r.reelections, 0);
  // Exactly one payload per origin — nothing lost, nothing double-counted.
  std::multiset<std::int64_t> expected;
  for (VertexId v = 0; v < g.num_vertices(); ++v) expected.insert(v);
  EXPECT_EQ(delivered_origins(r.gather), expected);
}

TEST(ReliableGather, HeavyDropForcesRetransmissionsButLosesNothing) {
  const Graph g = graph::torus_grid(6, 6);
  const std::vector<int> cl(g.num_vertices(), 0);
  const auto leaders = clean_leaders(g, cl);
  congest::ReliableGatherOptions opt;
  opt.net.bandwidth_tokens = 2;
  opt.net.faults.seed = 4242;
  opt.net.faults.drop_probability = 0.30;
  const auto r = congest::reliable_walk_gather(g, cl, leaders.leader_of,
                                               one_token_per_vertex(g), opt);
  EXPECT_TRUE(r.gather.complete);
  EXPECT_GT(r.retransmissions, 0);
  EXPECT_GT(r.gather.stats.messages_dropped, 0);
  std::multiset<std::int64_t> expected;
  for (VertexId v = 0; v < g.num_vertices(); ++v) expected.insert(v);
  EXPECT_EQ(delivered_origins(r.gather), expected);
}

TEST(ReliableGather, DuplicatesAndDelaysNeverDoubleDeliver) {
  const Graph g = graph::torus_grid(6, 6);
  const std::vector<int> cl(g.num_vertices(), 0);
  const auto leaders = clean_leaders(g, cl);
  congest::ReliableGatherOptions opt;
  opt.net.bandwidth_tokens = 2;
  opt.net.faults.seed = 31;
  opt.net.faults.duplicate_probability = 0.2;
  opt.net.faults.delay_probability = 0.2;
  opt.net.faults.max_delay_rounds = 3;
  const auto r = congest::reliable_walk_gather(g, cl, leaders.leader_of,
                                               one_token_per_vertex(g), opt);
  EXPECT_TRUE(r.gather.complete);
  std::multiset<std::int64_t> expected;
  for (VertexId v = 0; v < g.num_vertices(); ++v) expected.insert(v);
  EXPECT_EQ(delivered_origins(r.gather), expected);
}

TEST(ReliableGather, LeaderCrashTriggersReelectionAndRedelivery) {
  const Graph g = graph::torus_grid(6, 6);
  const std::vector<int> cl(g.num_vertices(), 0);
  const auto leaders = clean_leaders(g, cl);
  const VertexId old_leader = leaders.leader_of[0];
  congest::ReliableGatherOptions opt;
  opt.net.bandwidth_tokens = 2;
  opt.epoch_rounds = 256;
  // Kill the leader early enough that most tokens are still in flight.
  opt.net.faults.crashes.push_back(congest::CrashEvent{old_leader, 3});
  const auto r = congest::reliable_walk_gather(g, cl, leaders.leader_of,
                                               one_token_per_vertex(g), opt);
  EXPECT_TRUE(r.gather.complete);
  EXPECT_GE(r.reelections, 1);
  EXPECT_GE(r.epochs, 2);
  // The replacement leader is alive and is not the crashed vertex.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == old_leader) continue;
    EXPECT_NE(r.final_leader_of[v], old_leader);
  }
  // Every live origin's token is delivered exactly once. The crashed
  // leader's own token was absorbed at round 0 (before its crash at round
  // 3), then invalidated with the leader; with its origin dead it is
  // orphaned — excluded from completeness and absent from `delivered`.
  std::multiset<std::int64_t> expected;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v != old_leader) expected.insert(v);
  }
  EXPECT_EQ(delivered_origins(r.gather), expected);
}

TEST(ReliableGather, TracesStayRoutableForReverseDelivery) {
  const Graph g = graph::torus_grid(6, 6);
  const std::vector<int> cl(g.num_vertices(), 0);
  const auto leaders = clean_leaders(g, cl);
  congest::ReliableGatherOptions opt;
  opt.net.bandwidth_tokens = 2;
  opt.net.faults.seed = 17;
  opt.net.faults.drop_probability = 0.05;
  const auto r = congest::reliable_walk_gather(g, cl, leaders.leader_of,
                                               one_token_per_vertex(g), opt);
  ASSERT_TRUE(r.gather.complete);
  // Each delivered token's trace must end at its absorbing leader and have
  // strictly increasing hop rounds (what reverse_delivery relies on).
  for (const auto& ids : r.gather.delivered_ids) {
    for (const std::int64_t id : ids) {
      const congest::TokenTrace& t = r.gather.traces[id];
      ASSERT_FALSE(t.visited.empty());
      EXPECT_EQ(r.final_leader_of[t.visited.back()], t.visited.back());
      for (std::size_t h = 1; h < t.hop_round.size(); ++h) {
        EXPECT_LT(t.hop_round[h - 1], t.hop_round[h]);
      }
      EXPECT_EQ(t.visited.size(), t.hop_round.size() + 1);
    }
  }
}

// --- End-to-end: the framework pipeline under faults ----------------------

TEST(FrameworkFaulted, PartitionAndGatherMatchesFaultFreeUnderOnePercentDrop) {
  graph::Rng rng(11);
  const Graph g = graph::random_maximal_planar(80, rng);
  core::FrameworkOptions clean;
  clean.seed = 5;
  const core::Partition base = core::partition_and_gather(g, 0.3, clean);
  ASSERT_TRUE(base.gather_complete);

  core::FrameworkOptions faulted = clean;
  faulted.faults.seed = 77;
  faulted.faults.drop_probability = 0.01;
  faulted.gather_epoch_rounds = 4096;
  core::Partition p = core::partition_and_gather(g, 0.3, faulted);
  ASSERT_TRUE(p.gather_complete);
  EXPECT_GE(p.gather_epochs, 1);
  EXPECT_EQ(p.gather_reelections, 0);

  // Same decomposition and leaders, so the leaders must reconstruct the
  // same cluster subgraphs from the (reliably) gathered tokens.
  ASSERT_EQ(p.clusters.size(), base.clusters.size());
  for (std::size_t c = 0; c < p.clusters.size(); ++c) {
    EXPECT_EQ(p.clusters[c].leader, base.clusters[c].leader);
    EXPECT_EQ(p.clusters[c].subgraph.to_parent.size(),
              base.clusters[c].subgraph.to_parent.size());
    EXPECT_EQ(p.clusters[c].subgraph.graph.num_edges(),
              base.clusters[c].subgraph.graph.num_edges());
    // Token payloads arrive in a different order but none may be lost,
    // duplicated, or altered.
    auto sorted = [](const core::Partition& part, std::size_t cc) {
      auto d = part.gather.delivered[cc];
      std::sort(d.begin(), d.end());
      return d;
    };
    EXPECT_EQ(sorted(p, c), sorted(base, c));
  }

  // Per-vertex answers ride the reversed (faulted-run) walk schedule back;
  // return_results throws if any vertex's word is dropped or mixed up.
  std::vector<std::int64_t> word(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) word[v] = v * 13 + 1;
  EXPECT_GT(core::return_results(p, word, "faulted return"), 0);
}

// --- Plan validation ------------------------------------------------------

TEST(FaultPlanValidation, RejectsMalformedPlans) {
  const Graph g = Graph::from_edges(2, {{0, 1}});
  const auto expect_rejected = [&](FaultPlan plan) {
    NetworkOptions opt;
    opt.faults = std::move(plan);
    EXPECT_THROW(Network(g, opt), std::invalid_argument);
  };
  FaultPlan negative;
  negative.drop_probability = -0.1;
  expect_rejected(negative);
  FaultPlan excessive;
  excessive.drop_probability = 0.6;
  excessive.delay_probability = 0.5;
  expect_rejected(excessive);
  FaultPlan bad_delay;
  bad_delay.delay_probability = 0.1;
  bad_delay.max_delay_rounds = 0;
  expect_rejected(bad_delay);
  FaultPlan bad_vertex;
  bad_vertex.crashes.push_back(CrashEvent{7, 0});
  expect_rejected(bad_vertex);
  FaultPlan bad_window;
  bad_window.drop_probability = 0.1;
  bad_window.first_faulty_round = 10;
  bad_window.last_faulty_round = 5;
  expect_rejected(bad_window);
}

}  // namespace
}  // namespace ecd
