// Edge-case and error-path coverage across modules.
#include <gtest/gtest.h>

#include <sstream>

#include "src/congest/network.h"
#include "src/expander/conductance.h"
#include "src/expander/weighted.h"
#include "src/graph/generators.h"
#include "src/graph/io.h"
#include "src/graph/metrics.h"
#include "src/seq/correlation.h"
#include "src/seq/matching.h"
#include "src/seq/mis.h"
#include "src/seq/separator.h"

namespace ecd {
namespace {

using graph::Graph;
using graph::Rng;

TEST(IoErrors, RejectsGarbage) {
  std::stringstream empty("");
  EXPECT_THROW(graph::read_edge_list(empty), std::runtime_error);
  std::stringstream truncated("3 2\n0 1\n");
  EXPECT_THROW(graph::read_edge_list(truncated), std::runtime_error);
  std::stringstream bad_line("2 1\nx y\n");
  EXPECT_THROW(graph::read_edge_list(bad_line), std::runtime_error);
}

TEST(IoErrors, RoundTripsEmptyEdgeSet) {
  Graph g = Graph::from_edges(3, {});
  std::stringstream ss;
  graph::write_edge_list(g, ss);
  Graph h = graph::read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), 3);
  EXPECT_EQ(h.num_edges(), 0);
}

TEST(GeneratorErrors, RejectBadParameters) {
  Rng rng(1);
  EXPECT_THROW(graph::cycle(2), std::invalid_argument);
  EXPECT_THROW(graph::random_maximal_planar(2, rng), std::invalid_argument);
  EXPECT_THROW(graph::random_planar(10, 100, rng), std::invalid_argument);
  EXPECT_THROW(graph::random_regular(5, 5, rng), std::invalid_argument);
  EXPECT_THROW(graph::random_regular(5, 3, rng), std::invalid_argument);
  EXPECT_THROW(graph::hypercube(0), std::invalid_argument);
  EXPECT_THROW(graph::torus_grid(2, 5), std::invalid_argument);
  EXPECT_THROW(graph::random_weights(graph::path(3), 0, rng),
               std::invalid_argument);
}

TEST(GeneratorErrors, PlusRandomEdgesOnFullGraphThrows) {
  Rng rng(2);
  EXPECT_THROW(graph::plus_random_edges(graph::complete(5), 1, rng),
               std::runtime_error);
}

class NeverFinishes final : public congest::VertexAlgorithm {
 public:
  void round(congest::Context&) override {}
  bool finished() const override { return false; }
};

TEST(NetworkLimits, MaxRoundsGuardsNonTermination) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<congest::VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<NeverFinishes>());
  algos.push_back(std::make_unique<NeverFinishes>());
  congest::NetworkOptions opt;
  opt.max_rounds = 10;
  congest::Network net(g, opt);
  EXPECT_THROW(net.run(algos), std::runtime_error);
}

TEST(NetworkLimits, AlgorithmCountMustMatchVertices) {
  Graph g = graph::path(3);
  std::vector<std::unique_ptr<congest::VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<NeverFinishes>());
  congest::Network net(g);
  EXPECT_THROW(net.run(algos), std::invalid_argument);
}

TEST(SolverGuards, SizeLimitsEnforced) {
  Rng rng(3);
  EXPECT_THROW(seq::max_independent_set_bruteforce(graph::grid(5, 5)),
               std::invalid_argument);
  EXPECT_THROW(seq::correlation_exact(graph::grid(5, 5)),
               std::invalid_argument);
  EXPECT_THROW(expander::exact_conductance(graph::grid(5, 5)),
               std::invalid_argument);
  EXPECT_THROW(seq::edge_separator_bruteforce(graph::grid(5, 5)),
               std::invalid_argument);
  EXPECT_THROW(seq::edge_separator(graph::path(2), rng),
               std::invalid_argument);
}

TEST(SolverGuards, MatchingValidationCatchesCorruption) {
  Graph g = graph::path(4);
  seq::Mates bad(4, graph::kInvalidVertex);
  bad[0] = 2;  // not an edge
  bad[2] = 0;
  EXPECT_FALSE(seq::is_valid_matching(g, bad));
  seq::Mates asymmetric(4, graph::kInvalidVertex);
  asymmetric[0] = 1;  // 1 does not point back
  EXPECT_FALSE(seq::is_valid_matching(g, asymmetric));
  EXPECT_FALSE(seq::is_valid_matching(g, seq::Mates(3, -1)));  // wrong size
}

TEST(SolverGuards, IndependentSetValidationCatchesViolations) {
  Graph g = graph::path(3);
  EXPECT_FALSE(seq::is_independent_set(g, {0, 1}));   // adjacent
  EXPECT_FALSE(seq::is_independent_set(g, {0, 0}));   // duplicate
  EXPECT_FALSE(seq::is_independent_set(g, {7}));      // out of range
  EXPECT_TRUE(seq::is_independent_set(g, {0, 2}));
}

TEST(WeightedConductance, DegenerateCutsAreZero) {
  Graph g = graph::path(3);
  EXPECT_DOUBLE_EQ(
      expander::weighted_cut_conductance(g, {false, false, false}), 0.0);
  EXPECT_DOUBLE_EQ(
      expander::weighted_cut_conductance(g, {true, true, true}), 0.0);
}

TEST(Degeneracy, EmptyAndSingletonGraphs) {
  EXPECT_EQ(graph::degeneracy(Graph::from_edges(0, {})).degeneracy, 0);
  EXPECT_EQ(graph::degeneracy(Graph::from_edges(1, {})).degeneracy, 0);
  EXPECT_EQ(graph::degeneracy(Graph::from_edges(5, {})).degeneracy, 0);
}

TEST(Conductance, SingleEdgeGraph) {
  // K2: only cut is {one vertex}: 1 crossing / vol 1 = 1.
  EXPECT_DOUBLE_EQ(expander::exact_conductance(graph::path(2)), 1.0);
}

}  // namespace
}  // namespace ecd
