#include <gtest/gtest.h>

#include <cmath>
#include <optional>

#include "src/expander/conductance.h"
#include "src/expander/decomposition.h"
#include "src/expander/random_walk.h"
#include "src/expander/sweep_cut.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"

namespace ecd::expander {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

TEST(Conductance, CutConductanceByHand) {
  // Path 0-1-2-3: cut {0,1} has 1 crossing edge, vol 3 each side.
  Graph g = graph::path(4);
  std::vector<bool> in_s{true, true, false, false};
  EXPECT_DOUBLE_EQ(cut_conductance(g, in_s), 1.0 / 3.0);
}

TEST(Conductance, TrivialCutsAreZero) {
  Graph g = graph::path(3);
  EXPECT_DOUBLE_EQ(cut_conductance(g, {false, false, false}), 0.0);
  EXPECT_DOUBLE_EQ(cut_conductance(g, {true, true, true}), 0.0);
}

TEST(Conductance, ExactOnCompleteGraph) {
  // K4: the worst cut takes 1 vertex: 3 crossing / vol 3 = 1... the balanced
  // cut 2|2 has 4 crossing / vol 6 = 2/3, which is smaller.
  EXPECT_NEAR(exact_conductance(graph::complete(4)), 2.0 / 3.0, 1e-12);
}

TEST(Conductance, ExactOnCycle) {
  // C8: best cut is an arc of 4: 2 crossing / vol 8 = 1/4.
  EXPECT_NEAR(exact_conductance(graph::cycle(8)), 0.25, 1e-12);
}

TEST(Conductance, ExactOnBarbellIsSmall) {
  Graph g = graph::barbell(5, 0);  // two K5s joined by one edge
  // Cutting between the cliques: 1 edge / vol(K5 side)=21.
  EXPECT_NEAR(exact_conductance(g), 1.0 / 21.0, 1e-12);
}

TEST(Conductance, DisconnectedIsZero) {
  EXPECT_DOUBLE_EQ(
      exact_conductance(graph::disjoint_union({graph::path(2), graph::path(2)})),
      0.0);
}

TEST(Conductance, Lambda2OfCompleteGraph) {
  // Normalized Laplacian of K_n has lambda2 = n/(n-1).
  EXPECT_NEAR(lambda2_normalized(graph::complete(8)), 8.0 / 7.0, 1e-3);
}

TEST(Conductance, Lambda2OfCycleMatchesFormula) {
  // lambda2(C_n) = 1 - cos(2 pi / n).
  const int n = 16;
  EXPECT_NEAR(lambda2_normalized(graph::cycle(n), 2000),
              1.0 - std::cos(2.0 * M_PI / n), 1e-3);
}

TEST(Conductance, CheegerBoundsBracketExactValue) {
  Rng rng(1);
  for (const Graph& g :
       {graph::cycle(10), graph::complete(6), graph::grid(3, 4),
        graph::barbell(4, 1), graph::random_maximal_planar(12, rng)}) {
    const double phi = exact_conductance(g);
    const auto bounds = conductance_bounds(g, 2000);
    EXPECT_LE(bounds.lower, phi + 1e-6);
    EXPECT_GE(bounds.upper, phi - 1e-6);
  }
}

TEST(SweepCut, FindsTheBarbellBottleneck) {
  Graph g = graph::barbell(8, 2);
  const auto cut = spectral_cut(g, 500);
  ASSERT_TRUE(cut.valid);
  // The bottleneck conductance is about 1/vol(K8) = 1/(8*7+2) tiny; the
  // sweep must find something of that order.
  EXPECT_LT(cut.conductance, 0.05);
}

TEST(SweepCut, GridCutIsBalancedish) {
  Graph g = graph::grid(12, 12);
  const auto cut = spectral_cut(g, 500);
  ASSERT_TRUE(cut.valid);
  // Φ(grid k x k) = Θ(1/k).
  EXPECT_LT(cut.conductance, 2.0 / 12.0 + 0.05);
  EXPECT_GT(cut.conductance, 0.01);
}

TEST(RandomWalk, DistributionSumsToOne) {
  Graph g = graph::grid(4, 4);
  const auto p = lazy_walk_distribution(g, 0, 10);
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(RandomWalk, ConvergesToStationary) {
  Graph g = graph::complete(6);
  const auto p = lazy_walk_distribution(g, 0, 60);
  const auto pi = stationary_distribution(g);
  for (int v = 0; v < 6; ++v) EXPECT_NEAR(p[v], pi[v], 1e-9);
}

TEST(RandomWalk, MixingTimeOrdersFamiliesCorrectly) {
  // Expanders mix much faster than cycles of equal size.
  Rng rng(5);
  Graph expander = graph::random_regular(64, 4, rng);
  Graph ring = graph::cycle(64);
  const std::optional<int> t_exp = mixing_time_estimate(expander, 5000);
  const std::optional<int> t_ring = mixing_time_estimate(ring, 50000);
  ASSERT_TRUE(t_exp.has_value());
  ASSERT_TRUE(t_ring.has_value());
  EXPECT_LT(*t_exp * 5, *t_ring);
}

// Regression: an unmixed walk used to report the sentinel max_steps + 1,
// which callers could consume as a real (absurdly small) mixing time.
TEST(RandomWalk, UnmixedWalkReportsNullopt) {
  Graph ring = graph::cycle(64);
  EXPECT_FALSE(mixing_time_from(ring, 0, 5).has_value());
  EXPECT_FALSE(mixing_time_estimate(ring, 5).has_value());
}

TEST(RandomWalk, MixingTimeVsConductanceBound) {
  // tau_mix <= Theta(log n / Phi^2) (§2). Check on a grid.
  Graph g = graph::grid(8, 8);
  const double phi = cut_conductance(
      g, [&] {
        std::vector<bool> in_s(64, false);
        for (int i = 0; i < 32; ++i) in_s[i] = true;  // half the rows
        return in_s;
      }());
  const std::optional<int> t = mixing_time_estimate(g, 100000);
  ASSERT_TRUE(t.has_value());
  EXPECT_LE(*t, 40.0 * std::log(64.0) / (phi * phi));
}

// --- Decomposition contract (the heart of the reproduction) ---------------

void check_contract(const Graph& g, double eps,
                    const ExpanderDecomposition& d) {
  // Every vertex clustered.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_GE(d.cluster_of[v], 0);
    ASSERT_LT(d.cluster_of[v], d.num_clusters);
  }
  // Inter-cluster edge budget.
  EXPECT_LE(d.inter_cluster_edges, eps * g.num_edges() + 1e-9);
  // is_inter_cluster matches cluster_of.
  int recount = 0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    const bool inter = d.cluster_of[ed.u] != d.cluster_of[ed.v];
    EXPECT_EQ(inter, static_cast<bool>(d.is_inter_cluster[e]));
    recount += inter;
  }
  EXPECT_EQ(recount, d.inter_cluster_edges);
  // Clusters connected, and each certified bound honest (verified exactly
  // on small clusters).
  const auto members = cluster_members(d);
  ASSERT_EQ(static_cast<int>(members.size()), d.num_clusters);
  for (int c = 0; c < d.num_clusters; ++c) {
    ASSERT_FALSE(members[c].empty());
    const auto sub = graph::induced_subgraph(g, members[c]);
    EXPECT_TRUE(graph::is_connected(sub.graph)) << "cluster " << c;
    if (sub.graph.num_vertices() <= 14 && sub.graph.num_vertices() >= 2 &&
        sub.graph.num_edges() > 0) {
      EXPECT_GE(exact_conductance(sub.graph) + 1e-9,
                d.cluster_phi_certified[c])
          << "cluster " << c;
    }
  }
}

TEST(Decomposition, ContractOnGrid) {
  Graph g = graph::grid(16, 16);
  for (double eps : {0.1, 0.3}) {
    const auto d = expander_decompose(g, eps);
    check_contract(g, eps, d);
  }
}

TEST(Decomposition, ContractOnRandomPlanar) {
  Rng rng(7);
  Graph g = graph::random_maximal_planar(300, rng);
  const auto d = expander_decompose(g, 0.2);
  check_contract(g, 0.2, d);
}

TEST(Decomposition, ContractOnSparsePlanar) {
  Rng rng(8);
  Graph g = graph::random_planar(400, 700, rng);
  const auto d = expander_decompose(g, 0.15);
  check_contract(g, 0.15, d);
}

TEST(Decomposition, ContractOnTree) {
  Rng rng(9);
  Graph g = graph::random_tree(200, rng);
  const auto d = expander_decompose(g, 0.25);
  check_contract(g, 0.25, d);
}

TEST(Decomposition, ContractOnDisconnectedInput) {
  Rng rng(10);
  Graph g = graph::disjoint_union(
      {graph::grid(6, 6), graph::random_tree(40, rng), graph::cycle(30)});
  const auto d = expander_decompose(g, 0.2);
  check_contract(g, 0.2, d);
}

TEST(Decomposition, ExpanderStaysWhole) {
  // A good expander should not be split at moderate eps: its conductance
  // already exceeds the phi target.
  Rng rng(11);
  Graph g = graph::random_regular(128, 6, rng);
  const auto d = expander_decompose(g, 0.3);
  EXPECT_EQ(d.num_clusters, 1);
  EXPECT_EQ(d.inter_cluster_edges, 0);
}

TEST(Decomposition, BarbellIsSplitAtTheBridge) {
  Graph g = graph::barbell(12, 4);
  // At the auto-derived φ the barbell already qualifies as a φ-expander
  // (its bottleneck conductance ≈ 1/vol(K12) beats ε/(8 log m)); pin φ
  // above the bottleneck to force the split.
  DecompositionOptions opt;
  opt.phi = 0.05;
  const auto d = expander_decompose(g, 0.2, opt);
  // The two cliques must land in different clusters.
  EXPECT_NE(d.cluster_of[0], d.cluster_of[g.num_vertices() - 1]);
  EXPECT_LE(d.inter_cluster_edges, 6);
}

TEST(Decomposition, DeterministicModeIsReproducible) {
  Graph g = graph::grid(10, 10);
  DecompositionOptions opt;
  opt.deterministic = true;
  const auto d1 = expander_decompose(g, 0.2, opt);
  const auto d2 = expander_decompose(g, 0.2, opt);
  EXPECT_EQ(d1.cluster_of, d2.cluster_of);
}

TEST(Decomposition, RejectsBadEps) {
  Graph g = graph::path(4);
  EXPECT_THROW(expander_decompose(g, 0.0), std::invalid_argument);
  EXPECT_THROW(expander_decompose(g, 1.0), std::invalid_argument);
}

TEST(Decomposition, HypercubeTightness) {
  // §2 / [4]: after removing a constant fraction of hypercube edges some
  // component has conductance O(1/log n) — so at constant eps the
  // decomposition must either keep big low-ish-conductance clusters or cut
  // a lot. Sanity-check our construction handles it within budget.
  Graph g = graph::hypercube(7);
  const auto d = expander_decompose(g, 0.3);
  check_contract(g, 0.3, d);
}

TEST(ClusterMembers, PartitionsVertices) {
  Graph g = graph::grid(8, 8);
  const auto d = expander_decompose(g, 0.2);
  const auto members = cluster_members(d);
  int total = 0;
  for (const auto& m : members) total += static_cast<int>(m.size());
  EXPECT_EQ(total, g.num_vertices());
}

}  // namespace
}  // namespace ecd::expander
