// Tests for the wall-clock execution profiler (src/congest/profiler.h,
// DESIGN.md §14): the profiler must observe without perturbing — steady
// state stays allocation-free with profiling on, results and metrics
// snapshots stay bit-identical at every thread count, RunStats carries the
// run's wall-clock duration — and its exports must keep their structure:
// the "ecd-profile-v1" JSON document and the Chrome trace_event thread
// timeline are golden-checked via the jsonmin parser.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/congest/metrics.h"
#include "src/congest/network.h"
#include "src/congest/profiler.h"
#include "src/graph/generators.h"
#include "tools/json_min.h"

// --- Counting allocation hooks ----------------------------------------------
// Same replacement pattern as bench/bench_util.h's ECD_BENCH_COUNT_ALLOCS:
// one TU per binary defines the global operator new/delete; this test binary
// uses them to prove the profiler's round path never touches the heap.

namespace {
std::atomic<std::int64_t>& allocation_counter() {
  static std::atomic<std::int64_t> count{0};
  return count;
}
std::int64_t allocation_count() {
  return allocation_counter().load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  allocation_counter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  allocation_counter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ecd::congest {
namespace {

using graph::Graph;
using graph::VertexId;

// Full-duplex saturation with data-dependent payloads (the substrate
// determinism workload): any delivery or ordering perturbation introduced
// by the profiler would change the final sinks.
class SaturateAlgo final : public VertexAlgorithm {
 public:
  explicit SaturateAlgo(int rounds) : rounds_(rounds) {}

  void round(Context& ctx) override {
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) sink_ += m.words[0];
    }
    if (ctx.round() < rounds_) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{(sink_ * 31 + ctx.id()) ^ ctx.round()}});
      }
    } else {
      done_ = true;
    }
  }
  bool finished() const override { return done_; }
  std::int64_t output() const { return sink_; }

 private:
  int rounds_;
  std::int64_t sink_ = 0;
  bool done_ = false;
};

std::vector<std::unique_ptr<VertexAlgorithm>> make_saturate(const Graph& g,
                                                            int rounds) {
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    algos.push_back(std::make_unique<SaturateAlgo>(rounds));
  }
  return algos;
}

struct Outcome {
  RunStats stats;
  std::vector<std::int64_t> outputs;
  std::string metrics_json;
};

Outcome run_saturate(int num_threads, ExecutionProfiler* profiler) {
  const Graph g = graph::grid(16, 16);
  auto algos = make_saturate(g, 12);
  MetricsRegistry metrics;
  NetworkOptions opt;
  opt.num_threads = num_threads;
  opt.metrics = &metrics;
  opt.profiler = profiler;
  // The 256-vertex grid sits exactly at the default sparse-serial
  // threshold; these fixtures probe the dispatching round loop, so force
  // the parallel path (the sparse fallback has its own tests).
  opt.sparse_serial_threshold = 0;
  Network net(g, opt);
  Outcome out;
  out.stats = net.run(algos);
  for (const auto& a : algos) {
    out.outputs.push_back(static_cast<const SaturateAlgo*>(a.get())->output());
  }
  out.metrics_json = metrics.to_json();
  return out;
}

// --- The profiler only observes ---------------------------------------------

TEST(Profiler, ResultsAndMetricsBitIdenticalProfilingOnVsOff) {
  for (const int threads : {1, 2, 4, 8}) {
    const Outcome plain = run_saturate(threads, nullptr);
    ExecutionProfiler profiler;
    const Outcome profiled = run_saturate(threads, &profiler);
    EXPECT_EQ(profiled.stats.rounds, plain.stats.rounds) << threads;
    EXPECT_EQ(profiled.stats.messages_sent, plain.stats.messages_sent);
    EXPECT_EQ(profiled.stats.words_sent, plain.stats.words_sent);
    EXPECT_EQ(profiled.stats.max_edge_load, plain.stats.max_edge_load);
    EXPECT_EQ(profiled.outputs, plain.outputs) << threads << " threads";
    // Byte-identical snapshots: wall-clock data never leaks into the
    // MetricsRegistry (duration_ns lives in RunStats / the run report's
    // "wall" section only).
    EXPECT_EQ(profiled.metrics_json, plain.metrics_json)
        << threads << " threads";
    EXPECT_GT(profiler.rounds_profiled(), 0);
  }
}

TEST(Profiler, SteadyStateAllocationsStayZeroWithProfilerAttached) {
  for (const int threads : {1, 4}) {
    const Graph g = graph::grid(16, 16);
    ExecutionProfiler profiler;
    NetworkOptions opt;
    opt.num_threads = threads;
    opt.profiler = &profiler;
    Network net(g, opt);
    // Warm run grows arena overflow and algorithm-internal capacity; the
    // audited run must then stay off the heap — profiler hooks included
    // (lanes and rings were sized at bind time, in the Network ctor).
    auto warm = make_saturate(g, 12);
    net.run(warm);
    auto audit = make_saturate(g, 12);
    const std::int64_t before = allocation_count();
    net.run(audit);
    const std::int64_t delta = allocation_count() - before;
    EXPECT_EQ(delta, 0) << threads << " threads";
  }
}

TEST(Profiler, RunStatsCarriesWallClockDuration) {
  ExecutionProfiler profiler;
  const Outcome out = run_saturate(2, &profiler);
  EXPECT_GT(out.stats.duration_ns, 0);
  // RunStats::operator+= folds durations like the other tallies.
  RunStats sum;
  sum += out.stats;
  sum += out.stats;
  EXPECT_EQ(sum.duration_ns, 2 * out.stats.duration_ns);
}

TEST(Profiler, RunReportSurfacesWallDuration) {
  MetricsRegistry metrics;
  NetworkOptions opt;
  opt.num_threads = 2;
  opt.metrics = &metrics;
  const Graph g = graph::grid(8, 8);
  Network net(g, opt);
  auto algos = make_saturate(g, 6);
  net.run(algos);
  std::ostringstream os;
  write_run_report(os, metrics, {});
  const jsonmin::Value doc = jsonmin::parse(os.str());
  EXPECT_EQ(doc.at("schema").string, "ecd-run-report-v1");
  const jsonmin::Value& wall = doc.at("wall");
  EXPECT_GT(wall.at("duration_ns").number, 0);
  EXPECT_TRUE(wall.at("phases").is_array());
  // The deterministic metrics snapshot must NOT pick up the duration: the
  // "metrics" section's keys stay wall-clock-free.
  EXPECT_EQ(metrics.to_json().find("duration"), std::string::npos);
}

// --- Summary accounting ------------------------------------------------------

TEST(Profiler, SerialRunSummaryIsDegenerate) {
  ExecutionProfiler profiler;
  run_saturate(1, &profiler);
  const ExecutionProfiler::Summary s = profiler.summary();
  EXPECT_EQ(s.num_shards, 1);
  EXPECT_EQ(s.runs, 1);
  EXPECT_GT(s.rounds, 0);
  EXPECT_GT(s.wall_ns, 0);
  EXPECT_GT(s.total.phase_ns[kProfileCompute], 0);
  // One shard: max busy == mean busy every round, and Amdahl at k=1 is 1x.
  EXPECT_DOUBLE_EQ(s.load_imbalance, 1.0);
  EXPECT_DOUBLE_EQ(s.achievable_speedup, 1.0);
  ASSERT_EQ(s.shards.size(), 1u);
  EXPECT_DOUBLE_EQ(s.shards[0].busy_share, 1.0);
  // The serial loop has no dispatch hand-off to measure.
  EXPECT_TRUE(s.dispatch_latency.empty());
}

TEST(Profiler, ParallelRunSummaryAccounting) {
  ExecutionProfiler profiler;
  run_saturate(4, &profiler);
  const ExecutionProfiler::Summary s = profiler.summary();
  EXPECT_EQ(s.num_shards, 4);
  ASSERT_EQ(s.shards.size(), 4u);
  double share_sum = 0.0;
  for (const auto& sh : s.shards) {
    EXPECT_GT(sh.totals.rounds, 0) << "shard " << sh.shard;
    share_sum += sh.busy_share;
  }
  EXPECT_NEAR(share_sum, 1.0, 1e-9);
  EXPECT_GE(s.barrier_wait_fraction, 0.0);
  EXPECT_LT(s.barrier_wait_fraction, 1.0);
  EXPECT_GE(s.load_imbalance, 1.0);
  EXPECT_GE(s.achievable_speedup, 1.0);
  EXPECT_LE(s.achievable_speedup, 4.0);
  EXPECT_GE(s.serial_fraction, 0.0);
  EXPECT_LE(s.serial_fraction, 1.0);
  // Every profiled parallel round dispatched to 4 shards.
  EXPECT_EQ(s.dispatch_latency.count(), 4 * s.rounds);
}

TEST(Profiler, AccumulatesAcrossRunsAndNetworksAndResets) {
  ExecutionProfiler profiler;
  run_saturate(2, &profiler);
  const std::int64_t after_first = profiler.rounds_profiled();
  run_saturate(4, &profiler);  // wider Network: bind() grows, never shrinks
  EXPECT_GT(profiler.rounds_profiled(), after_first);
  EXPECT_EQ(profiler.runs_profiled(), 2);
  EXPECT_EQ(profiler.summary().num_shards, 4);
  profiler.reset();
  EXPECT_EQ(profiler.rounds_profiled(), 0);
  EXPECT_EQ(profiler.runs_profiled(), 0);
  EXPECT_EQ(profiler.summary().rounds, 0);
  // Lanes survive a reset; the next run reuses them without rebinding.
  run_saturate(4, &profiler);
  EXPECT_EQ(profiler.runs_profiled(), 1);
  EXPECT_EQ(profiler.summary().num_shards, 4);
}

// --- Export structure --------------------------------------------------------

TEST(Profiler, ProfileReportHasStableStructure) {
  ExecutionProfiler profiler;
  run_saturate(4, &profiler);
  std::ostringstream os;
  ProfileReportContext ctx;
  ctx.title = "saturate grid16";
  ctx.info = {{"family", "grid"}, {"threads", "4"}};
  write_profile_report(os, profiler, ctx);
  const jsonmin::Value doc = jsonmin::parse(os.str());
  EXPECT_EQ(doc.at("schema").string, "ecd-profile-v1");
  EXPECT_EQ(doc.at("title").string, "saturate grid16");
  EXPECT_EQ(doc.at("info").at("family").string, "grid");
  const jsonmin::Value& p = doc.at("profile");
  EXPECT_EQ(p.at("num_shards").number, 4);
  EXPECT_EQ(p.at("runs").number, 1);
  EXPECT_GT(p.at("rounds").number, 0);
  EXPECT_GT(p.at("wall_ns").number, 0);
  const jsonmin::Value& totals = p.at("totals");
  for (const char* key : {"compute_ns", "deliver_ns", "fault_ns", "reduce_ns",
                          "barrier_ns"}) {
    EXPECT_TRUE(totals.find(key) != nullptr) << key;
  }
  EXPECT_EQ(totals.at("fault_ns").number, 0);  // fault-free workload
  const jsonmin::Value& derived = p.at("derived");
  for (const char* key : {"barrier_wait_fraction", "load_imbalance",
                          "serial_fraction", "achievable_speedup"}) {
    EXPECT_TRUE(derived.find(key) != nullptr) << key;
  }
  const jsonmin::Value& lat = p.at("dispatch_latency_ns");
  for (const char* key : {"count", "sum", "max", "p50", "p99"}) {
    EXPECT_TRUE(lat.find(key) != nullptr) << key;
  }
  EXPECT_GT(lat.at("count").number, 0);
  const jsonmin::Value& shards = p.at("shards");
  ASSERT_TRUE(shards.is_array());
  ASSERT_EQ(shards.items.size(), 4u);
  for (const jsonmin::Value& sh : shards.items) {
    EXPECT_TRUE(sh.find("shard") != nullptr);
    EXPECT_TRUE(sh.find("rounds") != nullptr);
    EXPECT_TRUE(sh.find("compute_ns") != nullptr);
    EXPECT_TRUE(sh.find("barrier_ns") != nullptr);
    EXPECT_TRUE(sh.find("busy_share") != nullptr);
  }
}

TEST(Profiler, ChromeTraceHasThreadTimelineStructure) {
  ExecutionProfiler profiler;
  run_saturate(4, &profiler);
  std::ostringstream os;
  profiler.write_chrome_trace(os);
  const jsonmin::Value doc = jsonmin::parse(os.str());
  EXPECT_EQ(doc.at("displayTimeUnit").string, "ms");
  const jsonmin::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_FALSE(events.items.empty());
  EXPECT_EQ(events.items[0].at("ph").string, "M");
  EXPECT_EQ(events.items[0].at("name").string, "process_name");
  std::set<double> named_tids;
  std::set<double> slice_tids;
  const std::set<std::string> slice_names{"compute", "barrier", "deliver",
                                          "reduce"};
  for (const jsonmin::Value& e : events.items) {
    const std::string& ph = e.at("ph").string;
    const double tid = e.at("tid").number;
    if (ph == "M") {
      if (e.at("name").string == "thread_name") named_tids.insert(tid);
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_TRUE(slice_names.count(e.at("name").string)) << e.at("name").string;
    EXPECT_GE(e.at("dur").number, 0);
    EXPECT_TRUE(e.find("ts") != nullptr);
    EXPECT_TRUE(e.at("args").find("round") != nullptr);
    // The reduction runs on the caller thread only (tid 0).
    if (e.at("name").string == "reduce") EXPECT_EQ(tid, 0);
    slice_tids.insert(tid);
  }
  // One named timeline per shard, and every shard emitted slices.
  EXPECT_EQ(named_tids.size(), 4u);
  EXPECT_EQ(slice_tids.size(), 4u);
}

TEST(Profiler, FormatProfileTableMentionsDerivedAggregates) {
  ExecutionProfiler profiler;
  run_saturate(2, &profiler);
  const std::string table = format_profile_table(profiler.summary());
  EXPECT_NE(table.find("busy_share"), std::string::npos);
  EXPECT_NE(table.find("barrier-wait fraction"), std::string::npos);
  EXPECT_NE(table.find("load imbalance"), std::string::npos);
  EXPECT_NE(table.find("achievable speedup"), std::string::npos);
  EXPECT_NE(table.find("dispatch latency"), std::string::npos);
}

// Ring wrap: aggregates keep covering every round even when the timeline
// only retains the most recent ring_capacity samples per shard.
TEST(Profiler, RingWrapKeepsAggregatesAndBoundsTimeline) {
  ExecutionProfiler::Options popt;
  popt.ring_capacity = 4;
  ExecutionProfiler profiler(popt);
  EXPECT_EQ(profiler.ring_capacity(), 4);
  run_saturate(1, &profiler);  // 13+ rounds > 4 ring slots
  const ExecutionProfiler::Summary s = profiler.summary();
  EXPECT_GT(s.rounds, 4);
  EXPECT_EQ(s.total.rounds, s.rounds);  // aggregates saw every round
  std::ostringstream os;
  profiler.write_chrome_trace(os);
  const jsonmin::Value doc = jsonmin::parse(os.str());
  std::int64_t compute_slices = 0;
  double max_round = -1;
  for (const jsonmin::Value& e : doc.at("traceEvents").items) {
    if (e.at("ph").string != "X" || e.at("name").string != "compute") continue;
    ++compute_slices;
    max_round = std::max(max_round, e.at("args").at("round").number);
  }
  EXPECT_EQ(compute_slices, 4);  // timeline bounded by the ring
  EXPECT_EQ(max_round, static_cast<double>(s.rounds - 1));  // newest kept
}

}  // namespace
}  // namespace ecd::congest
