#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/framework.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"

namespace ecd::core {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

// The decisive faithfulness check: the cluster subgraph reconstructed by
// the leader *from delivered tokens* must equal the induced subgraph
// G[V_i] (same vertex set, same edges, same attributes).
void check_reconstruction(const Graph& g, const Partition& p) {
  ASSERT_TRUE(p.gather_complete);
  for (const Cluster& cluster : p.clusters) {
    // Vertex sets agree.
    std::vector<VertexId> reconstructed(cluster.subgraph.to_parent);
    std::vector<VertexId> expected(cluster.members);
    std::sort(reconstructed.begin(), reconstructed.end());
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(reconstructed, expected);
    // Edge sets agree with G[V_i].
    const auto reference = graph::induced_subgraph(g, cluster.members);
    ASSERT_EQ(cluster.subgraph.graph.num_edges(),
              reference.graph.num_edges());
    for (graph::EdgeId e = 0; e < cluster.subgraph.graph.num_edges(); ++e) {
      const graph::Edge ed = cluster.subgraph.graph.edge(e);
      const VertexId pu = cluster.subgraph.to_parent[ed.u];
      const VertexId pv = cluster.subgraph.to_parent[ed.v];
      const graph::EdgeId parent_edge = g.find_edge(pu, pv);
      ASSERT_NE(parent_edge, graph::kInvalidEdge);
      EXPECT_EQ(cluster.subgraph.graph.weight(e), g.weight(parent_edge));
      if (g.is_signed()) {
        EXPECT_EQ(cluster.subgraph.graph.sign(e), g.sign(parent_edge));
      }
    }
    // Leader is a member and its local id is correct.
    ASSERT_GE(cluster.leader_local, 0);
    EXPECT_EQ(cluster.subgraph.to_parent[cluster.leader_local],
              cluster.leader);
  }
}

TEST(Framework, GathersGridTopologyExactly) {
  Graph g = graph::grid(12, 12);
  const auto p = partition_and_gather(g, 0.3);
  check_reconstruction(g, p);
  EXPECT_LE(p.decomposition.inter_cluster_edges,
            0.3 * std::min(g.num_vertices(), g.num_edges()) + 1e-9);
}

TEST(Framework, GathersWeightedSignedPlanarTopology) {
  Rng rng(5);
  Graph base = graph::random_maximal_planar(120, rng);
  Graph g = base.with_weights(graph::random_weights(base, 1000, rng))
                .with_signs(graph::planted_signs(base, 12, 0.1, rng));
  const auto p = partition_and_gather(g, 0.25);
  check_reconstruction(g, p);
}

TEST(Framework, InterClusterBudgetAgainstMinVE) {
  // Theorem 2.6 promises <= eps * min(|V|, |E|): check on a triangulation
  // where |E| = 3n - 6 > |V| so the |V| bound binds.
  Rng rng(7);
  Graph g = graph::random_maximal_planar(200, rng);
  const double eps = 0.2;
  const auto p = partition_and_gather(g, eps);
  EXPECT_LE(p.decomposition.inter_cluster_edges,
            eps * std::min(g.num_vertices(), g.num_edges()) + 1e-9);
}

TEST(Framework, LeaderIsMaxClusterDegreeVertex) {
  Graph g = graph::grid(10, 10);
  const auto p = partition_and_gather(g, 0.3);
  for (const Cluster& cluster : p.clusters) {
    int max_deg = 0;
    for (int i = 0; i < cluster.subgraph.graph.num_vertices(); ++i) {
      max_deg = std::max(max_deg, cluster.subgraph.graph.degree(i));
    }
    EXPECT_EQ(cluster.subgraph.graph.degree(cluster.leader_local), max_deg);
  }
}

TEST(Framework, LedgerHasModeledAndMeasuredEntries) {
  Graph g = graph::grid(8, 8);
  auto p = partition_and_gather(g, 0.3);
  EXPECT_GT(p.ledger.modeled_total(), 0);
  EXPECT_GT(p.ledger.measured_total(), 0);
  const auto before = p.ledger.measured_total();
  std::vector<std::int64_t> words(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) words[v] = 3 * v + 1;
  const auto rounds = return_results(p, words, "result return");
  EXPECT_GT(rounds, 0);
  EXPECT_GT(p.ledger.measured_total(), before);
}

TEST(Framework, HighDegreeDiagnosticsLemma23) {
  // Lemma 2.3: deg(v*) = Ω(φ²)·|V_i| on H-minor-free inputs. The ratio
  // deg(v*) / (φ²·|V_i|) must be bounded away from 0 — in fact huge, since
  // φ is tiny.
  Rng rng(9);
  Graph g = graph::random_maximal_planar(300, rng);
  const auto p = partition_and_gather(g, 0.2);
  for (const auto& d : high_degree_diagnostics(p)) {
    EXPECT_GT(d.ratio, 1.0) << "cluster " << d.cluster;
  }
}

TEST(Framework, DeterministicModeReproducible) {
  Graph g = graph::grid(9, 9);
  FrameworkOptions opt;
  opt.deterministic = true;
  const auto p1 = partition_and_gather(g, 0.3, opt);
  const auto p2 = partition_and_gather(g, 0.3, opt);
  EXPECT_EQ(p1.decomposition.cluster_of, p2.decomposition.cluster_of);
  EXPECT_EQ(p1.leader_of, p2.leader_of);
}

TEST(Framework, WorksOnDisconnectedInput) {
  Rng rng(11);
  Graph g = graph::disjoint_union(
      {graph::grid(5, 5), graph::cycle(20), graph::random_tree(30, rng)});
  const auto p = partition_and_gather(g, 0.3);
  check_reconstruction(g, p);
}

TEST(Framework, SingletonVerticesAreTheirOwnLeaders) {
  // A graph with an isolated vertex.
  Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}});
  const auto p = partition_and_gather(g, 0.5);
  check_reconstruction(g, p);
  bool found_singleton = false;
  for (const Cluster& c : p.clusters) {
    if (c.members.size() == 1 && c.members[0] == 3) {
      found_singleton = true;
      EXPECT_EQ(c.leader, 3);
    }
  }
  EXPECT_TRUE(found_singleton);
}

TEST(Framework, DistributedDecompositionModeIsFullyMeasured) {
  Graph g = graph::grid(10, 10);
  FrameworkOptions opt;
  opt.decomposition_mode = DecompositionMode::kDistributed;
  const auto p = partition_and_gather(g, 0.3, opt);
  check_reconstruction(g, p);
  // No modeled entries remain: the whole pipeline executed on the simulator.
  EXPECT_EQ(p.ledger.modeled_total(), 0);
  EXPECT_GT(p.ledger.measured_total(), 0);
  bool has_measured_decomposition = false;
  for (const auto& e : p.ledger.entries()) {
    if (e.measured && e.label.starts_with("expander decomposition")) {
      has_measured_decomposition = true;
    }
  }
  EXPECT_TRUE(has_measured_decomposition);
}

TEST(Framework, RejectsBadEps) {
  Graph g = graph::path(4);
  EXPECT_THROW(partition_and_gather(g, 0.0), std::invalid_argument);
  EXPECT_THROW(partition_and_gather(g, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace ecd::core
