// The observability layer (src/congest/trace.h): reconciliation of trace
// totals against RunStats and the RoundLedger, span nesting, exporters,
// and enriched congestion errors. See DESIGN.md §9.
#include <gtest/gtest.h>

#include <sstream>

#include "src/congest/network.h"
#include "src/congest/primitives.h"
#include "src/congest/trace.h"
#include "src/core/framework.h"
#include "src/graph/generators.h"
#include "tools/json_min.h"

namespace ecd::congest {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

std::vector<int> single_cluster(const Graph& g) {
  return std::vector<int>(g.num_vertices(), 0);
}

// Runs a deterministic walk gather; optionally observed by `sink`.
GatherResult run_gather(const Graph& g, TraceSink* sink) {
  const auto cluster = single_cluster(g);
  const auto leaders = elect_cluster_leaders(g, cluster);
  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v, 1000 + v}});
  }
  GatherOptions opt;
  opt.net.bandwidth_tokens = 4;
  opt.net.trace = sink;
  return random_walk_gather(g, cluster, leaders.leader_of, tokens, opt);
}

TEST(Trace, NullSinkLeavesBehaviourUnchanged) {
  Rng rng(11);
  Graph g = graph::random_maximal_planar(50, rng);
  const auto plain = run_gather(g, nullptr);
  MetricsCollector collector;
  const auto traced = run_gather(g, &collector);
  // Identical seeds, identical schedule: the sink must observe, not perturb.
  EXPECT_EQ(plain.stats.rounds, traced.stats.rounds);
  EXPECT_EQ(plain.stats.messages_sent, traced.stats.messages_sent);
  EXPECT_EQ(plain.stats.words_sent, traced.stats.words_sent);
  EXPECT_EQ(plain.stats.max_edge_load, traced.stats.max_edge_load);
  ASSERT_TRUE(plain.complete);
  ASSERT_TRUE(traced.complete);
  EXPECT_EQ(plain.delivered[0].size(), traced.delivered[0].size());
}

TEST(Trace, TotalsReconcileExactlyWithRunStats) {
  Rng rng(13);
  Graph g = graph::random_maximal_planar(60, rng);
  MetricsCollector collector;
  const auto r = run_gather(g, &collector);
  ASSERT_TRUE(r.complete);
  const RunStats totals = collector.totals();
  EXPECT_EQ(totals.rounds, r.stats.rounds);
  EXPECT_EQ(totals.messages_sent, r.stats.messages_sent);
  EXPECT_EQ(totals.words_sent, r.stats.words_sent);
  EXPECT_EQ(totals.max_edge_load, r.stats.max_edge_load);
}

TEST(Trace, TagTrafficSumsToTotalMessages) {
  Rng rng(17);
  Graph g = graph::random_maximal_planar(40, rng);
  MetricsCollector collector;
  run_gather(g, &collector);
  std::int64_t tagged_messages = 0, tagged_words = 0;
  for (const auto& [tag, stats] : collector.tag_stats()) {
    tagged_messages += stats.messages;
    tagged_words += stats.words;
  }
  EXPECT_EQ(tagged_messages, collector.totals().messages_sent);
  EXPECT_EQ(tagged_words, collector.totals().words_sent);
  // The gather's traffic is walk tokens.
  ASSERT_TRUE(collector.tag_stats().count(kTagWalkToken));
  EXPECT_GT(collector.tag_stats().at(kTagWalkToken).messages, 0);
  EXPECT_STREQ(tag_name(kTagWalkToken), "walk_token");
}

TEST(Trace, PerRoundSamplesSumToTotals) {
  Rng rng(19);
  Graph g = graph::random_maximal_planar(40, rng);
  MetricsCollector collector;
  run_gather(g, &collector);
  std::int64_t messages = 0, words = 0;
  for (const auto& s : collector.rounds()) {
    messages += s.messages;
    words += s.words;
  }
  EXPECT_EQ(static_cast<std::int64_t>(collector.rounds().size()),
            collector.totals().rounds);
  EXPECT_EQ(messages, collector.totals().messages_sent);
  EXPECT_EQ(words, collector.totals().words_sent);
  // Global round numbering is strictly increasing across runs.
  for (std::size_t i = 1; i < collector.rounds().size(); ++i) {
    EXPECT_EQ(collector.rounds()[i].round, collector.rounds()[i - 1].round + 1);
  }
}

TEST(Trace, SpansNestAndPrimitiveSpansSitInsidePhases) {
  Graph g = graph::grid(8, 8);
  MetricsCollector collector;
  core::FrameworkOptions opt;
  opt.trace = &collector;
  const auto p = core::partition_and_gather(g, 0.3, opt);
  ASSERT_TRUE(p.gather_complete);

  std::vector<std::string> phase_names;
  bool saw_nested_primitive = false;
  for (const auto& s : collector.spans()) {
    EXPECT_TRUE(s.closed) << s.name;
    if (s.depth == 0) phase_names.push_back(s.name);
    if (s.depth == 1 &&
        (s.name == "leader_election" || s.name == "walk_gather" ||
         s.name == "orientation")) {
      saw_nested_primitive = true;
    }
  }
  EXPECT_EQ(phase_names,
            (std::vector<std::string>{"phase:decomposition", "phase:election",
                                      "phase:orientation", "phase:gather",
                                      "phase:reconstruct"}));
  EXPECT_TRUE(saw_nested_primitive);
}

// The ISSUE acceptance criterion: for a partition_and_gather run with a
// MetricsCollector attached, per-span round counts sum to the ledger's
// measured total and per-span message/word counts sum to RunStats.
TEST(Trace, PhaseSpansReconcileWithLedgerAndRunStats) {
  Rng rng(23);
  Graph g = graph::random_maximal_planar(120, rng);
  MetricsCollector collector;
  core::FrameworkOptions opt;
  opt.trace = &collector;
  const auto p = core::partition_and_gather(g, 0.3, opt);
  ASSERT_TRUE(p.gather_complete);

  std::int64_t span_rounds = 0, span_messages = 0, span_words = 0;
  for (const auto& s : collector.spans()) {
    if (s.depth != 0) continue;
    span_rounds += s.rounds;
    span_messages += s.messages;
    span_words += s.words;
  }
  EXPECT_EQ(span_rounds, p.ledger.measured_total());
  EXPECT_EQ(span_messages, collector.totals().messages_sent);
  EXPECT_EQ(span_words, collector.totals().words_sent);

  // Ledger entries carry the per-phase traffic recorded by the trace layer,
  // and their sums agree with the collector's grand totals.
  std::int64_t ledger_messages = 0, ledger_words = 0;
  int ledger_max_load = 0;
  for (const auto& e : p.ledger.entries()) {
    if (!e.measured) continue;
    ledger_messages += e.stats.messages_sent;
    ledger_words += e.stats.words_sent;
    ledger_max_load = std::max(ledger_max_load, e.stats.max_edge_load);
  }
  EXPECT_EQ(ledger_messages, collector.totals().messages_sent);
  EXPECT_EQ(ledger_words, collector.totals().words_sent);
  EXPECT_EQ(ledger_max_load, collector.totals().max_edge_load);
}

// Minimal structure-aware JSON checker: balanced {} and [] outside strings,
// valid escapes, and nothing after the top-level value.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false, escaped = false, seen_value = false;
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; seen_value = true; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
    if (seen_value && depth == 0 && !std::isspace(static_cast<unsigned char>(c)) &&
        c != '}' && c != ']') {
      return false;
    }
  }
  return depth == 0 && !in_string && seen_value;
}

TEST(Trace, JsonlExportIsParseablePerLine) {
  Rng rng(29);
  Graph g = graph::random_maximal_planar(40, rng);
  MetricsCollector collector;
  core::FrameworkOptions opt;
  opt.trace = &collector;
  core::partition_and_gather(g, 0.3, opt);

  std::ostringstream os;
  export_jsonl(collector, os);
  std::istringstream lines(os.str());
  std::string line;
  int count = 0;
  bool saw_meta = false, saw_span = false, saw_tag = false, saw_edge = false;
  while (std::getline(lines, line)) {
    ASSERT_TRUE(json_balanced(line)) << line;
    ++count;
    saw_meta |= line.find("\"type\":\"meta\"") != std::string::npos;
    saw_span |= line.find("\"type\":\"span\"") != std::string::npos;
    saw_tag |= line.find("\"type\":\"tag\"") != std::string::npos;
    saw_edge |= line.find("\"type\":\"edge\"") != std::string::npos;
  }
  EXPECT_GT(count, 10);
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_tag);
  EXPECT_TRUE(saw_edge);
}

TEST(Trace, ChromeTraceExportIsParseable) {
  Rng rng(31);
  Graph g = graph::random_maximal_planar(40, rng);
  MetricsCollector collector;
  core::FrameworkOptions opt;
  opt.trace = &collector;
  core::partition_and_gather(g, 0.3, opt);

  std::ostringstream os;
  export_chrome_trace(collector, os);
  const std::string text = os.str();
  EXPECT_TRUE(json_balanced(text));
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);  // counters
  EXPECT_NE(text.find("phase:gather"), std::string::npos);
}

TEST(Trace, HotspotReportNamesCongestedEdgesAndPercentiles) {
  Rng rng(37);
  Graph g = graph::random_maximal_planar(60, rng);
  MetricsCollector collector;
  core::FrameworkOptions opt;
  opt.trace = &collector;
  core::partition_and_gather(g, 0.3, opt);

  const std::string report = hotspot_report(collector, 5);
  EXPECT_NE(report.find("top congested directed edges"), std::string::npos);
  EXPECT_NE(report.find("p50="), std::string::npos);
  EXPECT_NE(report.find("p99="), std::string::npos);
  EXPECT_NE(report.find("phase:gather"), std::string::npos);
  // Percentiles are sane: p50 <= p99 <= peak load.
  EXPECT_LE(collector.load_percentile(50), collector.load_percentile(99));
  EXPECT_LE(collector.load_percentile(99),
            static_cast<double>(collector.totals().max_edge_load));
  EXPECT_GE(collector.load_percentile(50), 1.0);  // only loaded edges sampled
  // Top-k really is bounded and sorted.
  const auto top = collector.top_edges(3);
  ASSERT_LE(top.size(), 3u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].messages, top[i].messages);
  }
}

// Golden-structure check: the Chrome trace must be a real JSON document
// whose traceEvents array contains exactly one complete ("X") event per
// recorded span, each with a positive duration, plus two counter ("C")
// tracks per round sample. Parsed with the strict tools/ JSON parser, not
// just brace-balanced.
TEST(Trace, ChromeTraceGoldenStructure) {
  Rng rng(41);
  Graph g = graph::random_maximal_planar(40, rng);
  MetricsCollector collector;
  core::FrameworkOptions opt;
  opt.trace = &collector;
  core::partition_and_gather(g, 0.3, opt);

  std::ostringstream os;
  export_chrome_trace(collector, os);
  const jsonmin::Value doc = jsonmin::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  const jsonmin::Value& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  std::size_t complete_events = 0, counter_events = 0;
  for (const jsonmin::Value& ev : events.items) {
    ASSERT_TRUE(ev.is_object());
    const std::string& ph = ev.at("ph").string;
    EXPECT_FALSE(ev.at("name").string.empty());
    EXPECT_GE(ev.at("ts").number, 0.0);
    if (ph == "X") {
      ++complete_events;
      // Zero-round spans are widened to dur 1 so they stay visible.
      EXPECT_GE(ev.at("dur").number, 1.0);
      const jsonmin::Value& args = ev.at("args");
      EXPECT_NE(args.find("rounds"), nullptr);
      EXPECT_NE(args.find("messages"), nullptr);
      EXPECT_NE(args.find("max_edge_load"), nullptr);
    } else if (ph == "C") {
      ++counter_events;
    } else {
      EXPECT_EQ(ph, "i");  // violation instants are the only other kind
    }
  }
  EXPECT_EQ(complete_events, collector.spans().size());
  EXPECT_EQ(counter_events, 2 * collector.rounds().size());
  // Every span the collector recorded appears by name.
  for (const SpanStats& s : collector.spans()) {
    EXPECT_NE(os.str().find("\"name\":\"" + s.name + "\""),
              std::string::npos)
        << s.name;
  }
}

// Feeds the collector synthetic traffic directly through the TraceSink
// interface so edge totals tie exactly, then pins the documented
// tie-break: equal-message edges order by (from, to) ascending — both in
// top_edges() and in the hotspot report text.
TEST(Trace, HotspotTopKTieOrderingIsStable) {
  MetricsCollector collector;
  NetworkOptions net;
  collector.on_run_begin(8, 8, net);
  // Four directed edges, all with 3 messages / 6 words, fed in an order
  // deliberately different from the expected output order.
  const std::pair<VertexId, VertexId> edges[] = {
      {5, 1}, {2, 7}, {2, 3}, {0, 4}};
  for (int round = 0; round < 3; ++round) {
    for (const auto& [from, to] : edges) {
      collector.on_edge_load(round, from, to, 1, 2);
    }
    collector.on_round_end(round, 4, 8, 1);
  }
  RunStats stats;
  stats.rounds = 3;
  stats.messages_sent = 12;
  stats.words_sent = 24;
  stats.max_edge_load = 1;
  collector.on_run_end(stats);

  const auto top = collector.top_edges(3);  // k smaller than edge count
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].from, 0);
  EXPECT_EQ(top[0].to, 4);
  EXPECT_EQ(top[1].from, 2);
  EXPECT_EQ(top[1].to, 3);
  EXPECT_EQ(top[2].from, 2);
  EXPECT_EQ(top[2].to, 7);
  for (const EdgeTraffic& e : top) {
    EXPECT_EQ(e.messages, 3);
    EXPECT_EQ(e.words, 6);
    EXPECT_EQ(e.peak_load, 1);
  }

  // The rendered report lists the same edges in the same stable order.
  const std::string report = hotspot_report(collector, 3);
  const auto pos_04 = report.find("0->4");
  const auto pos_23 = report.find("2->3");
  const auto pos_27 = report.find("2->7");
  ASSERT_NE(pos_04, std::string::npos);
  ASSERT_NE(pos_23, std::string::npos);
  ASSERT_NE(pos_27, std::string::npos);
  EXPECT_EQ(report.find("5->1"), std::string::npos);  // cut by k=3
  EXPECT_LT(pos_04, pos_23);
  EXPECT_LT(pos_23, pos_27);
}

class DoubleSendAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    ctx.send(0, {{1}});
    ctx.send(0, {{2}});
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(Trace, CongestionErrorCarriesRoundEdgeAndBudget) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<DoubleSendAlgo>());
  algos.push_back(std::make_unique<DoubleSendAlgo>());
  MetricsCollector collector;
  NetworkOptions opt;
  opt.trace = &collector;
  Network net(g, opt);
  try {
    net.run(algos);
    FAIL() << "expected CongestionError";
  } catch (const CongestionError& err) {
    EXPECT_EQ(err.kind(), CongestionError::Kind::kBandwidth);
    EXPECT_EQ(err.round(), 0);
    EXPECT_EQ(err.from(), 0);
    EXPECT_EQ(err.to(), 1);
    EXPECT_EQ(err.used(), 2);
    EXPECT_EQ(err.budget(), 1);
    const std::string what = err.what();
    EXPECT_NE(what.find("edge 0->1"), std::string::npos) << what;
    EXPECT_NE(what.find("round 0"), std::string::npos) << what;
    EXPECT_NE(what.find("budget 1"), std::string::npos) << what;
  }
  // The sink saw the violation before the throw.
  ASSERT_EQ(collector.violations().size(), 1u);
  EXPECT_EQ(collector.violations()[0].used, 2);
  EXPECT_EQ(collector.violations()[0].budget, 1);
}

class FatSendAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    Message m;
    m.words.assign(kMaxMessageWords + 2, 7);
    ctx.send(0, std::move(m));
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(Trace, MessageSizeErrorCarriesWordCounts) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<FatSendAlgo>());
  algos.push_back(std::make_unique<FatSendAlgo>());
  Network net(g);
  try {
    net.run(algos);
    FAIL() << "expected CongestionError";
  } catch (const CongestionError& err) {
    EXPECT_EQ(err.kind(), CongestionError::Kind::kMessageSize);
    EXPECT_EQ(err.used(), kMaxMessageWords + 2);
    EXPECT_EQ(err.budget(), kMaxMessageWords);
    EXPECT_NE(std::string(err.what()).find("O(log n)"), std::string::npos);
  }
}

TEST(Trace, ViolationsExportedInJsonl) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<DoubleSendAlgo>());
  algos.push_back(std::make_unique<DoubleSendAlgo>());
  MetricsCollector collector;
  NetworkOptions opt;
  opt.trace = &collector;
  Network net(g, opt);
  EXPECT_THROW(net.run(algos), CongestionError);
  std::ostringstream os;
  export_jsonl(collector, os);
  EXPECT_NE(os.str().find("\"type\":\"violation\""), std::string::npos);
  EXPECT_NE(os.str().find("\"kind\":\"bandwidth\""), std::string::npos);
}

// --- Sharded trace lanes (DESIGN.md §18) -------------------------------------

std::string jsonl_of(const MetricsCollector& c) {
  std::ostringstream os;
  export_jsonl(c, os);
  return os.str();
}

std::string chrome_of(const MetricsCollector& c) {
  std::ostringstream os;
  export_chrome_trace(c, os);
  return os.str();
}

// run_gather with full NetworkOptions control (thread count, sampling,
// faults) for the thread-invariance suites.
GatherResult run_gather_net(const Graph& g, NetworkOptions net) {
  const auto cluster = single_cluster(g);
  const auto leaders = elect_cluster_leaders(g, cluster);
  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v, 1000 + v}});
  }
  GatherOptions opt;
  opt.net = net;
  opt.net.bandwidth_tokens = 4;
  return random_walk_gather(g, cluster, leaders.leader_of, tokens, opt);
}

// The tentpole acceptance criterion: per-shard trace lanes merged in fixed
// shard-then-trace order at the round barrier make the event stream — and
// therefore both exporters, byte for byte — independent of the thread
// count. sparse_serial_threshold 0 forces real dispatched rounds (the
// 90-vertex graph would otherwise ride the serial fallback throughout).
TEST(ShardedTrace, ExportsAreByteIdenticalAcrossThreadCounts) {
  Rng rng(43);
  const Graph g = graph::random_maximal_planar(90, rng);
  MetricsCollector serial;
  NetworkOptions ref;
  ref.trace = &serial;
  ASSERT_TRUE(run_gather_net(g, ref).complete);
  const std::string ref_jsonl = jsonl_of(serial);
  const std::string ref_chrome = chrome_of(serial);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    MetricsCollector mc;
    NetworkOptions net;
    net.trace = &mc;
    net.num_threads = threads;
    net.sparse_serial_threshold = 0;
    ASSERT_TRUE(run_gather_net(g, net).complete);
    EXPECT_EQ(jsonl_of(mc), ref_jsonl);
    EXPECT_EQ(chrome_of(mc), ref_chrome);
  }
}

// Full-duplex chatter for a fixed number of rounds: every port loaded every
// round, so fault injection and churn have in-flight traffic to act on.
class ChatterAlgo final : public VertexAlgorithm {
 public:
  explicit ChatterAlgo(int rounds) : rounds_(rounds) {}
  void round(Context& ctx) override {
    if (ctx.round() < rounds_) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{ctx.round() * 131 + p}});
      }
    } else {
      done_ = true;
    }
  }
  bool finished() const override { return done_; }

 private:
  int rounds_;
  bool done_ = false;
};

std::vector<std::unique_ptr<VertexAlgorithm>> make_chatter(const Graph& g,
                                                           int rounds) {
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    algos.push_back(std::make_unique<ChatterAlgo>(rounds));
  }
  return algos;
}

// Byte-identity must survive the delivery paths that mutate traffic midway:
// duplicated and delayed messages (fault layer) and a mid-run edge delete
// with its purge replay. The fault schedule is seed-deterministic across
// thread counts, so the traced event stream must be too.
TEST(ShardedTrace, FaultedAndChurnedExportsAreThreadCountInvariant) {
  const Graph g = graph::grid(8, 8);
  const auto run_traced = [&](int threads) {
    MetricsCollector mc;
    NetworkOptions opt;
    opt.trace = &mc;
    opt.num_threads = threads;
    opt.sparse_serial_threshold = 0;
    opt.faults.seed = 0xabcdULL;
    opt.faults.duplicate_probability = 0.1;
    opt.faults.delay_probability = 0.2;
    opt.faults.max_delay_rounds = 2;
    opt.faults.churn = {{ChurnKind::kEdgeDelete, 3, 0, 1},
                        {ChurnKind::kEdgeInsert, 6, 0, 1}};
    Network net(g, opt);
    auto algos = make_chatter(g, 10);
    net.run(algos);
    return jsonl_of(mc);
  };
  const std::string ref = run_traced(1);
  EXPECT_NE(ref.find("\"type\":\"churn\""), std::string::npos);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(run_traced(threads), ref);
  }
}

// A violated parallel run must report the same violation the serial run
// reports: the lowest shard's first violation — which is the globally
// first violating vertex, because shard 0 owns vertex 0 and scans its
// members in order. The whole export ties, not just the violation line.
TEST(ShardedTrace, ViolationReportMatchesSerialAcrossThreadCounts) {
  const Graph g = graph::grid(4, 4);
  const auto run_violated = [&](int threads) {
    MetricsCollector mc;
    NetworkOptions opt;
    opt.trace = &mc;
    opt.num_threads = threads;
    opt.sparse_serial_threshold = 0;
    Network net(g, opt);
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      algos.push_back(std::make_unique<DoubleSendAlgo>());
    }
    EXPECT_THROW(net.run(algos), CongestionError);
    EXPECT_EQ(mc.violations().size(), 1u);
    return jsonl_of(mc);
  };
  const std::string ref = run_violated(1);
  EXPECT_NE(ref.find("\"type\":\"violation\""), std::string::npos);
  for (int threads : {2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(run_violated(threads), ref);
  }
}

// --- Sampling filters (TraceConfig) ------------------------------------------

// Sampling is a pure function of (round, receiver, tag): the filtered
// stream is deterministic, thread-count-invariant, and exactly the subset
// the filters describe.
TEST(TraceSampling, FiltersAreDeterministicAndThreadInvariant) {
  const Graph g = graph::grid(8, 8);
  const auto run_sampled = [&](int threads) {
    MetricsCollector mc;
    NetworkOptions opt;
    opt.trace = &mc;
    opt.num_threads = threads;
    opt.sparse_serial_threshold = 0;
    opt.trace_config.round_period = 2;
    opt.trace_config.vertex_stride = 2;
    Network net(g, opt);
    auto algos = make_chatter(g, 9);
    net.run(algos);
    return jsonl_of(mc);
  };
  const std::string ref = run_sampled(1);
  for (int threads : {4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(run_sampled(threads), ref);
  }

  // Golden subset shape: only even rounds sampled, only even receivers.
  MetricsCollector mc;
  NetworkOptions opt;
  opt.trace = &mc;
  opt.trace_config.round_period = 2;
  opt.trace_config.vertex_stride = 2;
  Network net(g, opt);
  auto algos = make_chatter(g, 9);
  const RunStats stats = net.run(algos);
  ASSERT_GT(mc.rounds().size(), 0u);
  for (const RoundSample& r : mc.rounds()) {
    EXPECT_EQ(r.round % 2, 0) << "unsampled round leaked";
  }
  EXPECT_LT(static_cast<std::int64_t>(mc.rounds().size()), stats.rounds);
  const auto edges = mc.top_edges(-1);
  ASSERT_GT(edges.size(), 0u);
  for (const EdgeTraffic& e : edges) {
    EXPECT_EQ(e.to % 2, 0) << "unsampled receiver leaked";
  }
  // Sampled-out events are filtered, not rerouted: the collector saw
  // strictly less than the run's true totals.
  EXPECT_LT(mc.totals().messages_sent, stats.messages_sent);
}

TEST(TraceSampling, TagFilterKeepsOnlyTheRequestedTag) {
  Rng rng(47);
  const Graph g = graph::random_maximal_planar(50, rng);
  MetricsCollector mc;
  NetworkOptions net;
  net.trace = &mc;
  net.trace_config.tag_filter = kTagWalkToken;
  ASSERT_TRUE(run_gather_net(g, net).complete);
  ASSERT_FALSE(mc.tag_stats().empty());
  for (const auto& [tag, stats] : mc.tag_stats()) {
    EXPECT_EQ(tag, kTagWalkToken);
  }
  // Edge loads are tag-agnostic and stay complete.
  EXPECT_GT(mc.totals().messages_sent, 0);
}

// --- FlightRecorder ----------------------------------------------------------

TEST(FlightRecorderTest, RingWrapRetainsNewestEvents) {
  FlightRecorder::Options o;
  o.ring_capacity = 8;
  o.keep_rounds = 1000;  // only the capacity bound in play
  FlightRecorder fr(o);
  // 3 events per round (2 messages + the round marker), rounds 0..4:
  // 15 events through a ring of 8.
  for (int r = 0; r < 5; ++r) {
    fr.on_message(r, kTagDefault, 1);
    fr.on_message(r, kTagDefault, 2);
    fr.on_round_end(r, 2, 3, 1);
  }
  EXPECT_EQ(fr.events_retained(), 8);
  EXPECT_EQ(fr.events_dropped(), 7);
  EXPECT_EQ(fr.last_round(), 4);
  std::ostringstream os;
  fr.dump_jsonl(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"type\":\"flight\""), std::string::npos);
  // The oldest retained event is from round 2; rounds 0 and 1 were
  // overwritten by the wrap.
  EXPECT_EQ(text.find("\"type\":\"message\",\"round\":0"), std::string::npos);
  EXPECT_EQ(text.find("\"type\":\"message\",\"round\":1"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"message\",\"round\":4"), std::string::npos);
  EXPECT_NE(text.find("\"retained\":8"), std::string::npos);
  EXPECT_NE(text.find("\"dropped\":7"), std::string::npos);
}

TEST(FlightRecorderTest, KeepRoundsTrimsBehindTheNewestRound) {
  FlightRecorder::Options o;
  o.ring_capacity = 1 << 12;  // capacity never binds
  o.keep_rounds = 3;
  FlightRecorder fr(o);
  for (int r = 0; r < 10; ++r) {
    fr.on_message(r, kTagDefault, 1);
    fr.on_edge_load(r, 0, 1, 1, 1);
    fr.on_round_end(r, 1, 1, 1);
  }
  // Rounds 7, 8, 9 survive: 3 rounds x 3 events.
  EXPECT_EQ(fr.events_retained(), 9);
  EXPECT_EQ(fr.events_dropped(), 21);
  std::ostringstream os;
  fr.dump_jsonl(os);
  EXPECT_EQ(os.str().find("\"round\":6,"), std::string::npos);
  EXPECT_NE(os.str().find("\"type\":\"round\",\"round\":7"),
            std::string::npos);
  EXPECT_NE(os.str().find("\"type\":\"round\",\"round\":9"),
            std::string::npos);
}

// The post-mortem contract: a CongestionError auto-dumps the ring — last K
// rounds plus the violation — before the exception reaches the caller.
TEST(FlightRecorderTest, AutoDumpsRingOnCongestionAbort) {
  const Graph g = graph::path(2);
  FlightRecorder fr;
  std::ostringstream dump;
  fr.set_auto_dump(&dump);
  NetworkOptions opt;
  opt.trace = &fr;
  Network net(g, opt);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<DoubleSendAlgo>());
  algos.push_back(std::make_unique<DoubleSendAlgo>());
  EXPECT_THROW(net.run(algos), CongestionError);
  const std::string text = dump.str();
  EXPECT_NE(text.find("\"type\":\"flight\""), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"violation\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"bandwidth\""), std::string::npos);
  EXPECT_NE(text.find("\"used\":2"), std::string::npos);
  EXPECT_NE(text.find("\"budget\":1"), std::string::npos);
}

TEST(FlightRecorderTest, RecordsRunLifecycleAndStaysWithinCapacity) {
  const Graph g = graph::grid(6, 6);
  FlightRecorder::Options o;
  o.ring_capacity = 64;
  o.keep_rounds = 2;
  FlightRecorder fr(o);
  NetworkOptions opt;
  opt.trace = &fr;
  Network net(g, opt);
  auto algos = make_chatter(g, 6);
  net.run(algos);
  EXPECT_LE(fr.events_retained(), 64);
  EXPECT_GT(fr.events_retained(), 0);
  EXPECT_GT(fr.events_dropped(), 0);
  std::ostringstream os;
  fr.dump_jsonl(os);
  EXPECT_NE(os.str().find("\"type\":\"run_end\""), std::string::npos);
}

TEST(Trace, SpanGuardToleratesNullSink) {
  // TRACE_SPAN with a null sink must compile to a no-op.
  TRACE_SPAN(nullptr, "nothing");
  MetricsCollector collector;
  {
    TRACE_SPAN(&collector, "outer");
    { TRACE_SPAN(&collector, "inner"); }
  }
  ASSERT_EQ(collector.spans().size(), 2u);
  EXPECT_EQ(collector.spans()[0].name, "outer");
  EXPECT_EQ(collector.spans()[0].depth, 0);
  EXPECT_EQ(collector.spans()[1].name, "inner");
  EXPECT_EQ(collector.spans()[1].depth, 1);
  EXPECT_TRUE(collector.spans()[0].closed);
  EXPECT_TRUE(collector.spans()[1].closed);
}

}  // namespace
}  // namespace ecd::congest
