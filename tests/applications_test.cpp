#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/correlation.h"
#include "src/core/ldd.h"
#include "src/core/matching.h"
#include "src/core/mis.h"
#include "src/core/mwm.h"
#include "src/core/property_testing.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/seq/mis.h"
#include "src/seq/mwm.h"
#include "src/seq/planarity.h"

namespace ecd::core {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

// ---- Theorem 1.2: maximum independent set ---------------------------------

TEST(MisApprox, OutputIsIndependent) {
  Rng rng(1);
  Graph g = graph::random_maximal_planar(200, rng);
  const auto r = mis_approx(g, 0.3);
  EXPECT_TRUE(seq::is_independent_set(g, r.independent_set));
}

TEST(MisApprox, AchievesOneMinusEpsOnGrid) {
  // alpha(grid 8x8) = 32 (checkerboard).
  Graph g = graph::grid(8, 8);
  const double eps = 0.25;
  const auto r = mis_approx(g, eps);
  ASSERT_TRUE(seq::is_independent_set(g, r.independent_set));
  EXPECT_GE(r.independent_set.size(), (1.0 - eps) * 32);
}

TEST(MisApprox, AchievesOneMinusEpsVsExactOnSmallPlanar) {
  Rng rng(2);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = graph::random_planar(60, 100, rng);
    const double eps = 0.3;
    const auto r = mis_approx(g, eps, {.framework = {.seed = 77 + trial}});
    ASSERT_TRUE(seq::is_independent_set(g, r.independent_set));
    const auto exact = seq::max_independent_set_exact(g);
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(r.independent_set.size() + 1e-9, (1.0 - eps) * exact->size())
        << "trial " << trial;
  }
}

TEST(MisApprox, GreedyLowerBoundHolds) {
  // §3.1: alpha(G) >= n/(2d+1); the output is within (1-eps) of alpha.
  Rng rng(3);
  Graph g = graph::random_maximal_planar(400, rng);  // d = 3
  const auto r = mis_approx(g, 0.2);
  EXPECT_GE(r.independent_set.size(), (1.0 - 0.2) * g.num_vertices() / 7.0);
}

TEST(MisApprox, LedgerCoversAllPhases) {
  Graph g = graph::grid(8, 8);
  const auto r = mis_approx(g, 0.3);
  EXPECT_GT(r.ledger.measured_total(), 0);
  EXPECT_GT(r.ledger.modeled_total(), 0);
  EXPECT_GT(r.num_clusters, 0);
}

// ---- Theorem 3.2: planar MCM ----------------------------------------------

TEST(StarElimination, RemovesExtraLeaves) {
  // Star with 5 leaves: 4 removed, matching size unchanged (=1).
  Graph g = graph::star(5);
  const auto r = eliminate_stars(g);
  EXPECT_EQ(r.removed_count, 4);
  EXPECT_FALSE(r.removed[0]);  // center stays
}

TEST(StarElimination, RemovesDoubleStarCompanions) {
  // K_{2,5}: 5 degree-2 companions of the pair (0,1): keep 2.
  Graph g = graph::complete_bipartite(2, 5);
  const auto r = eliminate_stars(g);
  EXPECT_EQ(r.removed_count, 3);
}

TEST(StarElimination, PreservesMaximumMatchingSize) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = graph::star_pathology(4, 4, rng);
    const auto before = seq::matching_size(seq::max_cardinality_matching(g));
    const auto elim = eliminate_stars(g);
    std::vector<bool> keep(g.num_edges(), true);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      keep[e] = !elim.removed[g.edge(e).u] && !elim.removed[g.edge(e).v];
    }
    const Graph g_bar = graph::edge_subgraph(g, keep);
    const auto after = seq::matching_size(seq::max_cardinality_matching(g_bar));
    EXPECT_EQ(before, after) << "trial " << trial;
  }
}

TEST(StarElimination, Lemma31LinearityAfterElimination) {
  // After elimination the maximum matching is Ω(#surviving non-isolated
  // vertices) — the engine behind §3.2.
  Rng rng(5);
  Graph g = graph::star_pathology(10, 8, rng);
  const auto elim = eliminate_stars(g);
  std::vector<bool> keep(g.num_edges(), true);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    keep[e] = !elim.removed[g.edge(e).u] && !elim.removed[g.edge(e).v];
  }
  const Graph g_bar = graph::edge_subgraph(g, keep);
  int surviving = 0;
  for (VertexId v = 0; v < g_bar.num_vertices(); ++v) {
    surviving += g_bar.degree(v) > 0;
  }
  const int matching = seq::matching_size(seq::max_cardinality_matching(g_bar));
  EXPECT_GE(8 * matching, surviving);  // c >= 1/8
}

TEST(McmApprox, ValidMatchingOnPlanar) {
  Rng rng(6);
  Graph g = graph::random_planar(300, 500, rng);
  const auto r = mcm_planar_approx(g, 0.3);
  EXPECT_TRUE(seq::is_valid_matching(g, r.mates));
}

TEST(McmApprox, AchievesOneMinusEps) {
  Rng rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = graph::random_planar(200, 350, rng);
    const double eps = 0.3;
    const auto r =
        mcm_planar_approx(g, eps, {.framework = {.seed = 13 + trial}});
    const int opt = seq::matching_size(seq::max_cardinality_matching(g));
    EXPECT_GE(r.matching_size + 1e-9, (1.0 - eps) * opt) << "trial " << trial;
  }
}

TEST(McmApprox, HandlesStarPathology) {
  // Without preprocessing the optimum is far from linear in n; the
  // algorithm must still approximate well.
  Rng rng(8);
  Graph g = graph::star_pathology(12, 10, rng);
  const auto r = mcm_planar_approx(g, 0.3);
  EXPECT_TRUE(seq::is_valid_matching(g, r.mates));
  const int opt = seq::matching_size(seq::max_cardinality_matching(g));
  EXPECT_GE(r.matching_size + 1e-9, (1.0 - 0.3) * opt);
  EXPECT_GT(r.removed_vertices, 0);
}

// ---- Theorem 1.1: maximum weight matching -----------------------------------

TEST(MwmApprox, ValidAndMonotoneVsGreedy) {
  Rng rng(9);
  Graph base = graph::random_planar(150, 280, rng);
  Graph g = base.with_weights(graph::random_weights(base, 100, rng));
  const auto r = mwm_approx(g, 0.3);
  EXPECT_TRUE(seq::is_valid_matching(g, r.mates));
  const auto greedy = seq::greedy_weight_matching(g);
  EXPECT_GE(r.weight, seq::matching_weight(g, greedy));
}

TEST(MwmApprox, AchievesOneMinusEpsOnWeightedPlanar) {
  Rng rng(10);
  for (int trial = 0; trial < 4; ++trial) {
    Graph base = graph::random_planar(120, 200, rng);
    Graph g = base.with_weights(graph::random_weights(base, 1000, rng));
    const double eps = 0.25;
    const auto r = mwm_approx(g, eps, {.framework = {.seed = 100 + trial}});
    const auto exact = seq::max_weight_matching(g);
    EXPECT_GE(r.weight + 1e-9, (1.0 - eps) * seq::matching_weight(g, exact))
        << "trial " << trial;
  }
}

TEST(MwmApprox, HandlesHighWeightSpread) {
  Rng rng(11);
  Graph base = graph::grid(10, 10);
  Graph g = base.with_weights(graph::random_weights(base, 1'000'000, rng));
  const auto r = mwm_approx(g, 0.3);
  const auto exact = seq::max_weight_matching(g);
  EXPECT_GE(r.weight + 1e-9, 0.7 * seq::matching_weight(g, exact));
}

// ---- Theorem 1.3: correlation clustering ------------------------------------

TEST(CorrelationApprox, BeatsHalfEdgesBaseline) {
  Rng rng(12);
  Graph base = graph::random_maximal_planar(150, rng);
  Graph g = base.with_signs(graph::planted_signs(base, 10, 0.05, rng));
  const auto r = correlation_approx(g, 0.3);
  // γ(G) >= |E|/2 and the algorithm is (1-ε)-approximate, so certainly:
  EXPECT_GE(r.score, (1.0 - 0.3) * g.num_edges() / 2.0);
}

TEST(CorrelationApprox, NearOptimalOnPlantedInstances) {
  // With tiny noise the planted clustering is near-perfect; the algorithm
  // should recover almost all agreements.
  Rng rng(13);
  Graph base = graph::grid(10, 10);
  Graph g = base.with_signs(graph::planted_signs(base, 8, 0.02, rng));
  const auto r = correlation_approx(g, 0.2);
  EXPECT_GE(static_cast<double>(r.score), 0.75 * g.num_edges());
}

TEST(CorrelationApprox, ExactOnTinyClusters) {
  // C12 has conductance 1/6 > the derived φ, so it stays one cluster of 12
  // vertices <= the exact-DP threshold: the leader solves it optimally.
  Rng rng(14);
  Graph base = graph::cycle(12);
  Graph g = base.with_signs(graph::planted_signs(base, 4, 0.1, rng));
  const auto r = correlation_approx(g, 0.3);
  EXPECT_GT(r.clusters_exact, 0);
  // Cross-check against the exact optimum on the whole (single-cluster)
  // graph.
  const auto exact = seq::correlation_exact(g);
  if (r.num_clusters == 1) {
    EXPECT_EQ(r.score, seq::agreement_score(g, exact));
  }
}

// ---- Theorem 1.4: property testing ---------------------------------------------

TEST(PropertyTest, PlanarInputsAlwaysAccept) {
  Rng rng(15);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = graph::random_maximal_planar(150, rng);
    const auto r = property_test(g, seq::planar_property(), 0.2,
                                 {.framework = {.seed = 55 + trial}});
    EXPECT_TRUE(r.accept) << "trial " << trial
                          << " deg-cond fails: "
                          << r.clusters_failing_degree_condition;
  }
}

TEST(PropertyTest, FarFromPlanarInputsReject) {
  Rng rng(16);
  for (int trial = 0; trial < 5; ++trial) {
    Graph base = graph::random_maximal_planar(150, rng);
    // Add 0.5|E| random edges: far from planar.
    Graph g = graph::plus_random_edges(base, base.num_edges() / 2, rng);
    const auto r = property_test(g, seq::planar_property(), 0.2,
                                 {.framework = {.seed = 66 + trial}});
    EXPECT_FALSE(r.accept) << "trial " << trial;
  }
}

TEST(PropertyTest, ForestProperty) {
  Rng rng(17);
  Graph tree = graph::random_tree(200, rng);
  EXPECT_TRUE(property_test(tree, seq::forest_property(), 0.2).accept);
  Graph not_forest = graph::plus_random_edges(tree, 100, rng);
  EXPECT_FALSE(property_test(not_forest, seq::forest_property(), 0.2).accept);
}

TEST(PropertyTest, OuterplanarProperty) {
  Rng rng(18);
  Graph yes = graph::random_outerplanar(120, rng);
  EXPECT_TRUE(property_test(yes, seq::outerplanar_property(), 0.2).accept);
  Graph no = graph::random_maximal_planar(120, rng);  // far from outerplanar
  EXPECT_FALSE(property_test(no, seq::outerplanar_property(), 0.25).accept);
}

TEST(PropertyTest, Treewidth2Property) {
  Rng rng(19);
  Graph yes = graph::random_two_tree(150, rng);
  EXPECT_TRUE(property_test(yes, seq::treewidth2_property(), 0.2).accept);
}

// ---- Theorem 1.5: low-diameter decomposition -------------------------------------

TEST(LddApprox, CutAndDiameterBounds) {
  Graph g = graph::grid(16, 16);
  const double eps = 0.25;
  const auto r = ldd_approx(g, eps);
  EXPECT_LE(r.cut_edges, eps * g.num_edges() + 1e-9);
  // D = O(1/eps): generous constant 40.
  EXPECT_LE(r.max_diameter, 40.0 / eps);
  // Every vertex labeled.
  for (int c : r.cluster_of) EXPECT_GE(c, 0);
}

TEST(LddApprox, CycleMatchesOptimalTradeoff) {
  // On a cycle any (ε, D) decomposition needs D = Ω(1/ε): segments of
  // length 1/eps. Our output must be within a constant of that.
  Graph g = graph::cycle(400);
  const double eps = 0.1;
  const auto r = ldd_approx(g, eps);
  EXPECT_LE(r.cut_edges, eps * g.num_edges() + 1e-9);
  EXPECT_GE(r.max_diameter, 1);
  EXPECT_LE(r.max_diameter, 60.0 / eps);
}

TEST(LddApprox, ClustersAreConnected) {
  Rng rng(20);
  Graph g = graph::random_maximal_planar(250, rng);
  const auto r = ldd_approx(g, 0.3);
  std::vector<std::vector<VertexId>> members(r.num_clusters);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.cluster_of[v] >= 0) members[r.cluster_of[v]].push_back(v);
  }
  for (const auto& m : members) {
    if (m.size() <= 1) continue;
    const auto sub = graph::induced_subgraph(g, m);
    EXPECT_TRUE(graph::is_connected(sub.graph));
  }
}

}  // namespace
}  // namespace ecd::core
