// Forced multi-cluster runs: with the auto-derived φ = ε/(8 log m) many
// moderate-size planar inputs legitimately stay one cluster (their
// conductance exceeds φ), which exercises only the trivial path of each
// application. These tests pin φ high enough that the decomposition must
// split, driving the inter-cluster analysis (conflict removal, boundary
// freezing, per-cluster stitching) for real.
#include <gtest/gtest.h>

#include "src/core/correlation.h"
#include "src/core/ldd.h"
#include "src/core/matching.h"
#include "src/core/mis.h"
#include "src/core/mwm.h"
#include "src/core/property_testing.h"
#include "src/graph/generators.h"
#include "src/seq/matching.h"
#include "src/seq/mis.h"
#include "src/seq/mwm.h"

namespace ecd::core {
namespace {

using graph::Graph;
using graph::Rng;

FrameworkOptions forced_split(double phi, std::uint64_t seed = 1) {
  FrameworkOptions opt;
  opt.decomposition.phi = phi;
  opt.seed = seed;
  return opt;
}

TEST(MultiCluster, DecompositionActuallySplitsGrid) {
  Graph g = graph::grid(16, 16);
  FrameworkOptions opt = forced_split(0.08);
  const auto p = partition_and_gather(g, 0.35, opt);
  EXPECT_GT(p.decomposition.num_clusters, 1);
  EXPECT_GT(p.decomposition.inter_cluster_edges, 0);
}

// Chain of 8x8 grids joined corner-to-corner by single edges: each grid's
// conductance (~0.06) exceeds φ = 0.05 so grids stay whole, while the
// bridges have near-zero conductance and get cut — guaranteed multi-cluster
// within the inter-cluster budget.
Graph grid_chain(int blocks) {
  std::vector<Graph> parts(blocks, graph::grid(8, 8));
  Graph u = graph::disjoint_union(parts);
  graph::GraphBuilder b(u.num_vertices());
  for (const graph::Edge& e : u.edges()) b.add_edge(e.u, e.v);
  for (int i = 0; i + 1 < blocks; ++i) {
    b.add_edge(64 * i + 63, 64 * (i + 1));  // last cell -> next first cell
  }
  return std::move(b).build();
}

TEST(MultiCluster, MisStillOneMinusEpsWithConflicts) {
  Graph g = grid_chain(8);  // alpha >= 8 * 32 = 256
  const double eps = 0.35;
  MisApproxOptions opt;
  opt.framework = forced_split(0.05);
  const auto r = mis_approx(g, eps, opt);
  ASSERT_TRUE(seq::is_independent_set(g, r.independent_set));
  EXPECT_GT(r.num_clusters, 1);
  EXPECT_GE(r.independent_set.size() + 1e-9, (1.0 - eps) * 256);
}

TEST(MultiCluster, MisConflictRemovalTriggers) {
  // With several clusters, some inter-cluster (bridge) edge eventually has
  // both endpoints chosen; run a few seeds and require the removal path to
  // execute at least once.
  int total_conflicts = 0;
  for (int seed = 0; seed < 5; ++seed) {
    Graph g = grid_chain(6);
    MisApproxOptions opt;
    opt.framework = forced_split(0.05, 100 + seed);
    const auto r = mis_approx(g, 0.4, opt);
    ASSERT_TRUE(seq::is_independent_set(g, r.independent_set));
    total_conflicts += r.conflicts_removed;
  }
  EXPECT_GT(total_conflicts, 0);
}

TEST(MultiCluster, McmStillOneMinusEps) {
  Rng rng(3);
  Graph g = graph::random_planar(250, 420, rng);
  const double eps = 0.35;
  McmApproxOptions opt;
  opt.framework = forced_split(0.1);
  const auto r = mcm_planar_approx(g, eps, opt);
  ASSERT_TRUE(seq::is_valid_matching(g, r.mates));
  EXPECT_GT(r.num_clusters, 1);
  const int optimum = seq::matching_size(seq::max_cardinality_matching(g));
  EXPECT_GE(r.matching_size + 1e-9, (1.0 - eps) * optimum);
}

TEST(MultiCluster, MwmRecoversCutWeightAcrossPhases) {
  Rng rng(4);
  Graph base = graph::grid(12, 12);
  Graph g = base.with_weights(graph::random_weights(base, 500, rng));
  const double eps = 0.3;
  MwmApproxOptions opt;
  opt.framework = forced_split(0.1);
  const auto r = mwm_approx(g, eps, opt);
  ASSERT_TRUE(seq::is_valid_matching(g, r.mates));
  const auto exact = seq::max_weight_matching(g);
  EXPECT_GE(r.weight + 1e-9, (1.0 - eps) * seq::matching_weight(g, exact));
}

TEST(MultiCluster, MwmSinglePhaseIsWorseThanMultiPhase) {
  // The whole point of re-decomposing: edges cut once are interior later.
  Rng rng(5);
  Graph base = graph::grid(12, 12);
  Graph g = base.with_weights(graph::random_weights(base, 500, rng));
  MwmApproxOptions one;
  one.framework = forced_split(0.12);
  one.phases = 1;
  MwmApproxOptions many = one;
  many.phases = 8;
  const auto r1 = mwm_approx(g, 0.3, one);
  const auto r8 = mwm_approx(g, 0.3, many);
  EXPECT_GE(r8.weight, r1.weight);  // monotone in phases
}

TEST(MultiCluster, CorrelationStillBeatsBaselineBound) {
  Rng rng(6);
  Graph base = graph::random_maximal_planar(200, rng);
  Graph g = base.with_signs(graph::planted_signs(base, 10, 0.05, rng));
  CorrelationApproxOptions opt;
  opt.framework = forced_split(0.1);
  const auto r = correlation_approx(g, 0.3, opt);
  EXPECT_GE(r.score, (1.0 - 0.3) * g.num_edges() / 2.0);
}

TEST(MultiCluster, PropertyTestingStillOneSided) {
  Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    Graph planar = graph::random_maximal_planar(150, rng);
    PropertyTestOptions opt;
    opt.framework = forced_split(0.08, 50 + trial);
    EXPECT_TRUE(
        property_test(planar, seq::planar_property(), 0.3, opt).accept);
    Graph far = graph::plus_random_edges(planar, planar.num_edges() / 2, rng);
    EXPECT_FALSE(property_test(far, seq::planar_property(), 0.3, opt).accept);
  }
}

TEST(MultiCluster, LddBoundsSurviveForcedSplits) {
  Graph g = graph::grid(20, 20);
  LddApproxOptions opt;
  opt.framework = forced_split(0.1);
  const double eps = 0.3;
  const auto r = ldd_approx(g, eps, opt);
  EXPECT_LE(r.cut_edges, eps * g.num_edges() + 1e-9);
  EXPECT_LE(r.max_diameter, 40.0 / eps);
}

}  // namespace
}  // namespace ecd::core
