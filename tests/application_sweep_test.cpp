// Parameterized application sweeps: each Theorem 1.x guarantee checked
// across seeds and epsilons on small instances (complements the targeted
// tests in applications_test.cpp with breadth).
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/correlation.h"
#include "src/core/ldd.h"
#include "src/core/matching.h"
#include "src/core/mwm.h"
#include "src/core/property_testing.h"
#include "src/graph/generators.h"
#include "src/seq/matching.h"
#include "src/seq/mwm.h"

namespace ecd::core {
namespace {

using graph::Graph;
using graph::Rng;

// ---- Theorem 3.2 sweep ------------------------------------------------------

class McmSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(McmSweep, RatioAtLeastOneMinusEps) {
  const auto [eps_pm, seed] = GetParam();
  const double eps = eps_pm / 1000.0;
  Rng rng(seed * 131 + eps_pm);
  const Graph g = graph::random_planar(150, 260, rng);
  McmApproxOptions opt;
  opt.framework.seed = seed;
  const auto r = mcm_planar_approx(g, eps, opt);
  ASSERT_TRUE(seq::is_valid_matching(g, r.mates));
  const int optimum = seq::matching_size(seq::max_cardinality_matching(g));
  EXPECT_GE(r.matching_size + 1e-9, (1.0 - eps) * optimum);
}

INSTANTIATE_TEST_SUITE_P(EpsSeeds, McmSweep,
                         ::testing::Combine(::testing::Values(150, 300, 450),
                                            ::testing::Values(1, 2, 3)));

// ---- Theorem 1.1 sweep --------------------------------------------------------

class MwmSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MwmSweep, RatioAtLeastOneMinusEps) {
  const auto [w_max, seed] = GetParam();
  const double eps = 0.3;
  Rng rng(seed * 733);
  Graph base = graph::random_planar(90, 150, rng);
  const Graph g = base.with_weights(graph::random_weights(base, w_max, rng));
  MwmApproxOptions opt;
  opt.framework.seed = seed;
  const auto r = mwm_approx(g, eps, opt);
  ASSERT_TRUE(seq::is_valid_matching(g, r.mates));
  const auto exact = seq::matching_weight(g, seq::max_weight_matching(g));
  EXPECT_GE(r.weight + 1e-9, (1.0 - eps) * exact);
}

INSTANTIATE_TEST_SUITE_P(WeightsSeeds, MwmSweep,
                         ::testing::Combine(::testing::Values(5, 500, 50000),
                                            ::testing::Values(4, 5)));

// ---- Theorem 1.3 sweep ----------------------------------------------------------

class CorrelationSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CorrelationSweep, ScoreBeatsTheoremBound) {
  const auto [noise_pm, seed] = GetParam();
  const double eps = 0.25;
  Rng rng(seed * 37 + noise_pm);
  Graph base = graph::random_maximal_planar(120, rng);
  const Graph g =
      base.with_signs(graph::planted_signs(base, 10, noise_pm / 1000.0, rng));
  CorrelationApproxOptions opt;
  opt.framework.seed = seed;
  const auto r = correlation_approx(g, eps, opt);
  // Thm 1.3 bound: score >= (1-eps) * gamma(G) >= (1-eps) * |E|/2.
  EXPECT_GE(r.score, (1.0 - eps) * g.num_edges() / 2.0);
}

INSTANTIATE_TEST_SUITE_P(NoiseSeeds, CorrelationSweep,
                         ::testing::Combine(::testing::Values(0, 100, 250),
                                            ::testing::Values(6, 7)));

// ---- Theorem 1.4 sweep ------------------------------------------------------------

class PropertySweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PropertySweep, OneSidedError) {
  const auto [prop_id, seed] = GetParam();
  const double eps = 0.25;
  Rng rng(seed * 53 + prop_id);
  const seq::MinorClosedProperty property =
      prop_id == 0   ? seq::planar_property()
      : prop_id == 1 ? seq::outerplanar_property()
      : prop_id == 2 ? seq::forest_property()
                     : seq::treewidth2_property();
  const Graph yes = prop_id == 0   ? graph::random_maximal_planar(100, rng)
                    : prop_id == 1 ? graph::random_outerplanar(100, rng)
                    : prop_id == 2 ? graph::random_tree(100, rng)
                                   : graph::random_two_tree(100, rng);
  PropertyTestOptions opt;
  opt.framework.seed = seed;
  EXPECT_TRUE(property_test(yes, property, eps, opt).accept) << property.name;
  const Graph far = graph::plus_random_edges(
      yes, static_cast<int>(1.5 * eps * yes.num_edges()) + 5, rng);
  EXPECT_FALSE(property_test(far, property, eps, opt).accept) << property.name;
}

INSTANTIATE_TEST_SUITE_P(PropsSeeds, PropertySweep,
                         ::testing::Combine(::testing::Values(0, 1, 2, 3),
                                            ::testing::Values(8, 9)));

// ---- Theorem 1.5 sweep -------------------------------------------------------------

class LddSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LddSweep, CutAndDiameterWithinBounds) {
  const auto [eps_pm, seed] = GetParam();
  const double eps = eps_pm / 1000.0;
  Rng rng(seed * 19);
  const Graph g = graph::random_maximal_planar(160, rng);
  LddApproxOptions opt;
  opt.framework.seed = seed;
  const auto r = ldd_approx(g, eps, opt);
  EXPECT_LE(r.cut_edges, eps * g.num_edges() + 1e-9);
  EXPECT_LE(r.max_diameter, 40.0 / eps);
}

INSTANTIATE_TEST_SUITE_P(EpsSeeds, LddSweep,
                         ::testing::Combine(::testing::Values(150, 300),
                                            ::testing::Values(10, 11)));

}  // namespace
}  // namespace ecd::core
