#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/seq/matching.h"
#include "src/seq/mwm.h"

namespace ecd::seq {
namespace {

using graph::Graph;
using graph::Rng;

TEST(Mcm, PathAndCycle) {
  EXPECT_EQ(matching_size(max_cardinality_matching(graph::path(5))), 2);
  EXPECT_EQ(matching_size(max_cardinality_matching(graph::path(6))), 3);
  EXPECT_EQ(matching_size(max_cardinality_matching(graph::cycle(5))), 2);
  EXPECT_EQ(matching_size(max_cardinality_matching(graph::cycle(6))), 3);
}

TEST(Mcm, PerfectOnCompleteEven) {
  EXPECT_EQ(matching_size(max_cardinality_matching(graph::complete(8))), 4);
  EXPECT_EQ(matching_size(max_cardinality_matching(graph::complete(9))), 4);
}

TEST(Mcm, StarMatchesOnce) {
  EXPECT_EQ(matching_size(max_cardinality_matching(graph::star(7))), 1);
}

TEST(Mcm, PetersenHasPerfectMatching) {
  // Petersen graph: outer C5, inner pentagram, spokes.
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 5; ++i) {
    edges.push_back({i, (i + 1) % 5});                // outer cycle
    edges.push_back({5 + i, 5 + (i + 2) % 5});        // pentagram
    edges.push_back({i, 5 + i});                      // spokes
  }
  Graph petersen = Graph::from_edges(10, std::move(edges));
  EXPECT_EQ(matching_size(max_cardinality_matching(petersen)), 5);
}

// Blossom-forcing example: two triangles joined by a path.
TEST(Mcm, HandlesBlossoms) {
  Graph g = Graph::from_edges(
      8, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 4},
          {6, 7}});
  const auto m = max_cardinality_matching(g);
  EXPECT_TRUE(is_valid_matching(g, m));
  EXPECT_EQ(matching_size(m), 4);
}

TEST(Mcm, AgreesWithBruteForceOnRandomGraphs) {
  Rng rng(101);
  for (int trial = 0; trial < 120; ++trial) {
    const int n = 4 + static_cast<int>(rng() % 7);  // 4..10
    Graph g = graph::erdos_renyi(n, 0.4, rng);
    if (g.num_edges() > 24) continue;
    const auto fast = max_cardinality_matching(g);
    const auto slow = max_cardinality_matching_bruteforce(g);
    EXPECT_TRUE(is_valid_matching(g, fast));
    EXPECT_EQ(matching_size(fast), matching_size(slow)) << "trial " << trial;
  }
}

TEST(Mcm, AgreesWithBruteForceOnSparsePlanar) {
  Rng rng(202);
  for (int trial = 0; trial < 60; ++trial) {
    Graph g = graph::random_planar(9, 12, rng);
    const auto fast = max_cardinality_matching(g);
    const auto slow = max_cardinality_matching_bruteforce(g);
    EXPECT_TRUE(is_valid_matching(g, fast));
    EXPECT_EQ(matching_size(fast), matching_size(slow)) << "trial " << trial;
  }
}

TEST(Mcm, GreedyIsMaximalAndHalfApprox) {
  Rng rng(303);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g = graph::erdos_renyi(12, 0.3, rng);
    const auto greedy = greedy_maximal_matching(g);
    EXPECT_TRUE(is_valid_matching(g, greedy));
    const auto opt = max_cardinality_matching(g);
    EXPECT_GE(2 * matching_size(greedy), matching_size(opt));
    // Maximality: no edge with both endpoints free.
    for (const graph::Edge& e : g.edges()) {
      EXPECT_FALSE(greedy[e.u] == graph::kInvalidVertex &&
                   greedy[e.v] == graph::kInvalidVertex);
    }
  }
}

TEST(Mwm, SingleEdgeChoosesHeavier) {
  Graph g = graph::path(3).with_weights({2, 5});
  const auto m = max_weight_matching(g);
  EXPECT_EQ(matching_weight(g, m), 5);
}

TEST(Mwm, PrefersLightPairOverHeavyMiddle) {
  // Path a-b-c-d with weights 3, 4, 3: taking both end edges (6) beats the
  // middle edge (4).
  Graph g = graph::path(4).with_weights({3, 4, 3});
  const auto m = max_weight_matching(g);
  EXPECT_EQ(matching_weight(g, m), 6);
}

TEST(Mwm, MayLeaveVerticesUnmatched) {
  // Triangle with one heavy edge: optimal takes just the heavy edge.
  Graph g = graph::cycle(3).with_weights({10, 1, 1});
  const auto m = max_weight_matching(g);
  EXPECT_EQ(matching_weight(g, m), 10);
  EXPECT_EQ(matching_size(m), 1);
}

TEST(Mwm, UnweightedReducesToMcm) {
  Rng rng(404);
  for (int trial = 0; trial < 40; ++trial) {
    Graph g = graph::erdos_renyi(9, 0.35, rng);
    EXPECT_EQ(matching_size(max_weight_matching(g)),
              matching_size(max_cardinality_matching(g)))
        << "trial " << trial;
  }
}

TEST(Mwm, AgreesWithBruteForceOnRandomWeightedGraphs) {
  Rng rng(505);
  for (int trial = 0; trial < 150; ++trial) {
    const int n = 4 + static_cast<int>(rng() % 6);  // 4..9
    Graph g0 = graph::erdos_renyi(n, 0.45, rng);
    if (g0.num_edges() == 0 || g0.num_edges() > 22) continue;
    Graph g = g0.with_weights(
        graph::random_weights(g0, 1 + static_cast<int>(rng() % 50), rng));
    const auto fast = max_weight_matching(g);
    const auto slow = max_weight_matching_bruteforce(g);
    EXPECT_TRUE(is_valid_matching(g, fast));
    EXPECT_EQ(matching_weight(g, fast), matching_weight(g, slow))
        << "trial " << trial << " n=" << n << " m=" << g.num_edges();
  }
}

TEST(Mwm, AgreesWithBruteForceOnBlossomRichGraphs) {
  Rng rng(606);
  for (int trial = 0; trial < 80; ++trial) {
    // Odd cycles force blossoms; chords and pendants stress expansion.
    Graph base = graph::cycle(5 + 2 * static_cast<int>(rng() % 2));
    Graph g0 = graph::plus_random_edges(base, 3, rng);
    Graph g = g0.with_weights(graph::random_weights(g0, 20, rng));
    const auto fast = max_weight_matching(g);
    const auto slow = max_weight_matching_bruteforce(g);
    EXPECT_EQ(matching_weight(g, fast), matching_weight(g, slow))
        << "trial " << trial;
  }
}

TEST(Mwm, LargePlanarInstanceBeatsGreedy) {
  Rng rng(707);
  Graph g0 = graph::random_planar(120, 240, rng);
  Graph g = g0.with_weights(graph::random_weights(g0, 1000, rng));
  const auto exact = max_weight_matching(g);
  const auto greedy = greedy_weight_matching(g);
  EXPECT_TRUE(is_valid_matching(g, exact));
  EXPECT_GE(matching_weight(g, exact), matching_weight(g, greedy));
  // Greedy is a 1/2-approximation.
  EXPECT_LE(matching_weight(g, exact), 2 * matching_weight(g, greedy));
}

TEST(Mwm, GreedyWeightIsHalfApprox) {
  Rng rng(808);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g0 = graph::erdos_renyi(10, 0.4, rng);
    if (g0.num_edges() == 0) continue;
    Graph g = g0.with_weights(graph::random_weights(g0, 30, rng));
    const auto greedy = greedy_weight_matching(g);
    const auto opt = max_weight_matching(g);
    EXPECT_GE(2 * matching_weight(g, greedy), matching_weight(g, opt));
  }
}

TEST(Mwm, AssignmentOptimumOnCompleteBipartite) {
  // K_{6,6} with random weights: the optimum is computable by enumerating
  // all 6! = 720 perfect assignments (plus partial ones never beat the best
  // perfect one here because all weights are positive and n is even).
  Rng rng(909);
  for (int trial = 0; trial < 10; ++trial) {
    Graph base = graph::complete_bipartite(6, 6);
    Graph g = base.with_weights(graph::random_weights(base, 100, rng));
    // Weight lookup.
    auto w = [&](int left, int right) {
      return g.weight(g.find_edge(left, 6 + right));
    };
    std::vector<int> perm{0, 1, 2, 3, 4, 5};
    std::int64_t best = 0;
    do {
      std::int64_t total = 0;
      for (int i = 0; i < 6; ++i) total += w(i, perm[i]);
      best = std::max(best, total);
    } while (std::next_permutation(perm.begin(), perm.end()));
    const auto blossom = max_weight_matching(g);
    EXPECT_EQ(matching_weight(g, blossom), best) << "trial " << trial;
  }
}

TEST(Mwm, EvenCycleAlternatingWeights) {
  // C_{2k} with weights alternating (10, 1): optimum picks all the 10s.
  const int k = 7;
  Graph base = graph::cycle(2 * k);
  std::vector<graph::Weight> weights(base.num_edges());
  // cycle() lays out edges 0-1, 1-2, ..., plus the closing edge {0, 2k-1}.
  for (graph::EdgeId e = 0; e < base.num_edges(); ++e) {
    const graph::Edge ed = base.edge(e);
    const bool is_closing = (ed.u == 0 && ed.v == 2 * k - 1);
    const int pos = is_closing ? 2 * k - 1 : ed.u;
    weights[e] = (pos % 2 == 0) ? 10 : 1;
  }
  Graph g = base.with_weights(std::move(weights));
  const auto m = max_weight_matching(g);
  EXPECT_EQ(matching_weight(g, m), 10 * k);
}

TEST(Mwm, OddCliqueLeavesExactlyOneUnmatched) {
  Rng rng(910);
  Graph base = graph::complete(9);
  Graph g = base.with_weights(
      std::vector<graph::Weight>(base.num_edges(), 5));
  const auto m = max_weight_matching(g);
  EXPECT_EQ(matching_size(m), 4);
  EXPECT_EQ(matching_weight(g, m), 20);
}

TEST(MatchingEdges, ReturnsEachPairOnce) {
  Graph g = graph::path(4);
  const auto m = max_cardinality_matching(g);
  EXPECT_EQ(matching_edges(g, m).size(), 2u);
}

}  // namespace
}  // namespace ecd::seq
