// Parameterized property suites: sweep (family x n x eps x seed) and check
// the invariants every component must hold on every instance.
#include <gtest/gtest.h>

#include <tuple>

#include "src/core/framework.h"
#include "src/core/mis.h"
#include "src/expander/conductance.h"
#include "src/expander/decomposition.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"
#include "src/seq/mis.h"

namespace ecd {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

enum class Family { kGrid, kTriangulation, kRandomPlanar, kOuterplanar, kTwoTree, kTree };

Graph make(Family f, int n, Rng& rng) {
  switch (f) {
    case Family::kGrid: {
      int side = 1;
      while (side * side < n) ++side;
      return graph::grid(side, side);
    }
    case Family::kTriangulation: return graph::random_maximal_planar(n, rng);
    case Family::kRandomPlanar: return graph::random_planar(n, 2 * n, rng);
    case Family::kOuterplanar: return graph::random_outerplanar(n, rng);
    case Family::kTwoTree: return graph::random_two_tree(n, rng);
    case Family::kTree: return graph::random_tree(n, rng);
  }
  throw std::logic_error("family");
}

const char* name(Family f) {
  switch (f) {
    case Family::kGrid: return "grid";
    case Family::kTriangulation: return "tri";
    case Family::kRandomPlanar: return "planar";
    case Family::kOuterplanar: return "outer";
    case Family::kTwoTree: return "twotree";
    case Family::kTree: return "tree";
  }
  return "?";
}

// ---------- Decomposition contract sweep -------------------------------------

class DecompositionSweep
    : public ::testing::TestWithParam<std::tuple<Family, int, int, int>> {};

TEST_P(DecompositionSweep, ContractHolds) {
  const auto [family, n, eps_pm, seed] = GetParam();
  const double eps = eps_pm / 1000.0;
  Rng rng(seed * 7919 + n);
  const Graph g = make(family, n, rng);

  expander::DecompositionOptions opt;
  opt.seed = seed;
  const auto d = expander::expander_decompose(g, eps, opt);

  // Inter-cluster budget.
  EXPECT_LE(d.inter_cluster_edges, eps * g.num_edges() + 1e-9);
  // Partition validity + connectivity of every cluster.
  const auto members = expander::cluster_members(d);
  int total = 0;
  for (const auto& m : members) {
    total += static_cast<int>(m.size());
    if (m.size() >= 2) {
      const auto sub = graph::induced_subgraph(g, m);
      EXPECT_TRUE(graph::is_connected(sub.graph));
    }
  }
  EXPECT_EQ(total, g.num_vertices());
  // Edge flags consistent.
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    EXPECT_EQ(d.is_inter_cluster[e],
              d.cluster_of[ed.u] != d.cluster_of[ed.v]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, DecompositionSweep,
    ::testing::Combine(
        ::testing::Values(Family::kGrid, Family::kTriangulation,
                          Family::kRandomPlanar, Family::kOuterplanar,
                          Family::kTwoTree, Family::kTree),
        ::testing::Values(100, 300),
        ::testing::Values(100, 300),
        ::testing::Values(1, 2)),
    [](const auto& info) {
      return std::string(name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_e" +
             std::to_string(std::get<2>(info.param)) + "_s" +
             std::to_string(std::get<3>(info.param));
    });

// ---------- Framework reconstruction sweep ------------------------------------

class FrameworkSweep
    : public ::testing::TestWithParam<std::tuple<Family, int, int>> {};

TEST_P(FrameworkSweep, LeaderSeesExactInducedSubgraph) {
  const auto [family, n, seed] = GetParam();
  Rng rng(seed * 104729 + n);
  const Graph g = make(family, n, rng);
  core::FrameworkOptions opt;
  opt.seed = seed;
  const auto p = core::partition_and_gather(g, 0.3, opt);
  ASSERT_TRUE(p.gather_complete);
  int covered = 0;
  for (const auto& cluster : p.clusters) {
    covered += static_cast<int>(cluster.members.size());
    const auto reference = graph::induced_subgraph(g, cluster.members);
    ASSERT_EQ(cluster.subgraph.graph.num_vertices(),
              reference.graph.num_vertices());
    ASSERT_EQ(cluster.subgraph.graph.num_edges(), reference.graph.num_edges());
    for (graph::EdgeId e = 0; e < cluster.subgraph.graph.num_edges(); ++e) {
      const graph::Edge ed = cluster.subgraph.graph.edge(e);
      EXPECT_TRUE(g.has_edge(cluster.subgraph.to_parent[ed.u],
                             cluster.subgraph.to_parent[ed.v]));
    }
  }
  EXPECT_EQ(covered, g.num_vertices());
}

INSTANTIATE_TEST_SUITE_P(
    Families, FrameworkSweep,
    ::testing::Combine(::testing::Values(Family::kGrid, Family::kTriangulation,
                                         Family::kOuterplanar, Family::kTree),
                       ::testing::Values(80, 250),
                       ::testing::Values(3, 4)),
    [](const auto& info) {
      return std::string(name(std::get<0>(info.param))) + "_n" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------- MIS validity sweep ---------------------------------------------------

class MisSweep : public ::testing::TestWithParam<std::tuple<Family, int, int>> {};

TEST_P(MisSweep, IndependentAndLargeEnough) {
  const auto [family, eps_pm, seed] = GetParam();
  const double eps = eps_pm / 1000.0;
  Rng rng(seed * 31 + eps_pm);
  const Graph g = make(family, 150, rng);
  core::MisApproxOptions opt;
  opt.framework.seed = seed;
  const auto r = core::mis_approx(g, eps, opt);
  ASSERT_TRUE(seq::is_independent_set(g, r.independent_set));
  // §3.1 guarantee against the greedy lower bound n/(2d+1).
  const int d = std::max(1, static_cast<int>(std::ceil(g.edge_density())));
  EXPECT_GE(r.independent_set.size() + 1e-9,
            (1.0 - eps) * g.num_vertices() / (2 * d + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Families, MisSweep,
    ::testing::Combine(::testing::Values(Family::kTriangulation,
                                         Family::kRandomPlanar,
                                         Family::kTwoTree, Family::kOuterplanar),
                       ::testing::Values(150, 350),
                       ::testing::Values(5, 6)),
    [](const auto& info) {
      return std::string(name(std::get<0>(info.param))) + "_e" +
             std::to_string(std::get<1>(info.param)) + "_s" +
             std::to_string(std::get<2>(info.param));
    });

// ---------- Conductance certification sweep ------------------------------------

class CertificationSweep : public ::testing::TestWithParam<int> {};

TEST_P(CertificationSweep, CheegerLowerBoundIsSound) {
  // On random small graphs the certified lower bound never exceeds the
  // exact conductance.
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::random_planar(12, 18, rng);
    if (!graph::is_connected(g)) continue;
    const double cert = expander::certified_conductance_lower_bound(g);
    const double exact = expander::exact_conductance(g);
    EXPECT_LE(cert, exact + 1e-9) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertificationSweep,
                         ::testing::Range(100, 110));

}  // namespace
}  // namespace ecd
