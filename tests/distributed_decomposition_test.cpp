// The fully distributed decomposition must meet the same contract as the
// host-side construction — with every round executed on the simulator.
#include <gtest/gtest.h>

#include "src/expander/conductance.h"
#include "src/expander/distributed_decomposition.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"

namespace ecd::expander {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

void check_contract(const Graph& g, double eps,
                    const DistributedDecompositionResult& r) {
  const auto& d = r.decomposition;
  EXPECT_LE(d.inter_cluster_edges, eps * g.num_edges() + 1e-9);
  int covered = 0;
  for (const auto& members : cluster_members(d)) {
    covered += static_cast<int>(members.size());
    if (members.size() >= 2) {
      const auto sub = graph::induced_subgraph(g, members);
      EXPECT_TRUE(graph::is_connected(sub.graph));
    }
  }
  EXPECT_EQ(covered, g.num_vertices());
  EXPECT_GT(r.measured_rounds, 0);
}

TEST(DistributedDecomposition, ContractOnGrid) {
  Graph g = graph::grid(12, 12);
  const auto r = distributed_expander_decompose(g, 0.3);
  check_contract(g, 0.3, r);
}

TEST(DistributedDecomposition, ContractOnTriangulation) {
  Rng rng(3);
  Graph g = graph::random_maximal_planar(200, rng);
  const auto r = distributed_expander_decompose(g, 0.25);
  check_contract(g, 0.25, r);
}

TEST(DistributedDecomposition, ContractOnTree) {
  Rng rng(5);
  Graph g = graph::random_tree(150, rng);
  const auto r = distributed_expander_decompose(g, 0.3);
  check_contract(g, 0.3, r);
}

TEST(DistributedDecomposition, SplitsTheBarbell) {
  Graph g = graph::barbell(10, 2);
  DistributedDecompositionOptions opt;
  opt.phi = 0.05;
  const auto r = distributed_expander_decompose(g, 0.3, opt);
  check_contract(g, 0.3, r);
  // The two cliques must separate: the bridge is the only sparse cut.
  EXPECT_NE(r.decomposition.cluster_of[0],
            r.decomposition.cluster_of[g.num_vertices() - 1]);
  EXPECT_GE(r.levels, 1);
}

TEST(DistributedDecomposition, ForcedSplitsOnGridStayWithinBudget) {
  Graph g = graph::grid(14, 14);
  DistributedDecompositionOptions opt;
  opt.phi = 0.06;
  const auto r = distributed_expander_decompose(g, 0.45, opt);
  check_contract(g, 0.45, r);
  EXPECT_GT(r.decomposition.num_clusters, 1);
}

TEST(DistributedDecomposition, MeasuredRoundsGrowWithLevels) {
  // More levels of splitting => more measured rounds.
  Graph g = graph::grid(12, 12);
  DistributedDecompositionOptions flat;
  flat.phi = 1e-5;  // nothing splits: one level
  flat.power_iterations = 200;
  DistributedDecompositionOptions split;
  split.phi = 0.08;
  split.power_iterations = 200;
  const auto r_flat = distributed_expander_decompose(g, 0.45, flat);
  const auto r_split = distributed_expander_decompose(g, 0.45, split);
  EXPECT_LE(r_flat.levels, r_split.levels);
  EXPECT_LT(r_flat.measured_rounds, r_split.measured_rounds);
}

TEST(DistributedDecomposition, DisconnectedInput) {
  Rng rng(7);
  Graph g = graph::disjoint_union({graph::grid(6, 6), graph::cycle(20)});
  const auto r = distributed_expander_decompose(g, 0.3);
  check_contract(g, 0.3, r);
  EXPECT_GE(r.decomposition.num_clusters, 2);
}

}  // namespace
}  // namespace ecd::expander
