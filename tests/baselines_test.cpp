#include <gtest/gtest.h>

#include "src/baselines/local_gather.h"
#include "src/baselines/luby_mis.h"
#include "src/baselines/maximal_matching.h"
#include "src/baselines/mpx_ldd.h"
#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"
#include "src/baselines/pivot_correlation.h"
#include "src/congest/primitives.h"
#include "src/expander/decomposition.h"
#include "src/graph/generators.h"
#include "src/seq/ldd.h"
#include "src/seq/matching.h"
#include "src/seq/mis.h"

namespace ecd::baselines {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

TEST(LubyMis, OutputIsMaximalIndependentSet) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = graph::random_maximal_planar(100, rng);
    const auto r = luby_mis(g, 17 + trial);
    ASSERT_TRUE(seq::is_independent_set(g, r.independent_set));
    // Maximality: every vertex is in the set or adjacent to it.
    std::vector<bool> covered(g.num_vertices(), false);
    for (VertexId v : r.independent_set) {
      covered[v] = true;
      for (VertexId u : g.neighbors(v)) covered[u] = true;
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_TRUE(covered[v]) << "vertex " << v;
    }
  }
}

// Regression: phase parity used to be keyed on the global round number
// (ctx.round() % 2), so starting the protocol at an odd round offset — as
// happens when the MIS is composed behind another phase — swapped the
// exchange and decision half-phases and produced a non-independent "MIS".
TEST(LubyMis, OddRoundOffsetStillYieldsMaximalIndependentSet) {
  Rng rng(9);
  Graph g = graph::random_maximal_planar(100, rng);
  for (const int prelude : {1, 3}) {
    SCOPED_TRACE(prelude);
    const auto r = luby_mis(g, 41, {}, prelude);
    ASSERT_TRUE(seq::is_independent_set(g, r.independent_set));
    std::vector<bool> covered(g.num_vertices(), false);
    for (VertexId v : r.independent_set) {
      covered[v] = true;
      for (VertexId u : g.neighbors(v)) covered[u] = true;
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_TRUE(covered[v]) << "vertex " << v;
    }
    // Same seed, no prelude: the protocol's outcome is offset-invariant.
    EXPECT_EQ(r.independent_set, luby_mis(g, 41).independent_set);
  }
}

TEST(LubyMis, PhasesLogarithmic) {
  Rng rng(2);
  Graph g = graph::random_maximal_planar(2000, rng);
  const auto r = luby_mis(g, 5);
  EXPECT_LE(r.phases, 40);
}

TEST(LubyMis, RespectsBandwidth) {
  Rng rng(3);
  Graph g = graph::random_regular(64, 6, rng);
  EXPECT_NO_THROW(luby_mis(g, 7));  // bandwidth 1 enforced by default
}

TEST(DistributedMatching, OutputIsMaximalMatching) {
  Rng rng(4);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = graph::random_planar(120, 200, rng);
    const auto r = distributed_maximal_matching(g, 23 + trial);
    ASSERT_TRUE(seq::is_valid_matching(g, r.mates));
    for (const graph::Edge& e : g.edges()) {
      EXPECT_FALSE(r.mates[e.u] == graph::kInvalidVertex &&
                   r.mates[e.v] == graph::kInvalidVertex)
          << e.u << "-" << e.v;
    }
  }
}

TEST(DistributedMatching, HalfApproximation) {
  Rng rng(5);
  Graph g = graph::grid(12, 12);
  const auto r = distributed_maximal_matching(g, 31);
  const int opt = seq::matching_size(seq::max_cardinality_matching(g));
  EXPECT_GE(2 * seq::matching_size(r.mates), opt);
}

TEST(MpxLdd, CutFractionWithinBudgetOnAverage) {
  Rng rng(6);
  Graph g = graph::grid(20, 20);
  double total_fraction = 0.0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    const auto r = mpx_ldd(g, 0.3, rng);
    total_fraction += static_cast<double>(r.cut_edges) / g.num_edges();
  }
  // E[cut] <= eps |E| (Markov slack 1.5x for the empirical mean).
  EXPECT_LE(total_fraction / trials, 0.3 * 1.5);
}

TEST(MpxLdd, DiameterLogOverEps) {
  Rng rng(7);
  Graph g = graph::grid(24, 24);
  const auto r = mpx_ldd(g, 0.2, rng);
  const int d = seq::ldd_max_diameter(g, r.cluster_of);
  EXPECT_LE(d, 2 * 30.0 / 0.2);  // O(log n / eps) with slack
  // A single cluster is legitimate here: the shift radius O(log n / beta)
  // can exceed the grid diameter. With a larger beta the graph must split.
  const auto fine = mpx_ldd(g, 0.9, rng);
  EXPECT_GT(fine.num_clusters, 1);
}

TEST(MpxLdd, DistributedMatchesContractAndRuns) {
  Graph g = graph::grid(16, 16);
  const auto r = mpx_ldd_distributed(g, 0.3, 11);
  // Every vertex claimed; clusters connected; rounds ~ max_shift + radius.
  for (int c : r.clustering.cluster_of) EXPECT_GE(c, 0);
  EXPECT_GT(r.rounds, 0);
  std::vector<std::vector<VertexId>> members(r.clustering.num_clusters);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    members[r.clustering.cluster_of[v]].push_back(v);
  }
  for (const auto& m : members) {
    if (m.size() < 2) continue;
    const auto sub = graph::induced_subgraph(g, m);
    EXPECT_TRUE(graph::is_connected(sub.graph));
  }
}

TEST(MpxLdd, DistributedCutFractionReasonable) {
  Graph g = graph::grid(20, 20);
  double total = 0.0;
  for (int t = 0; t < 8; ++t) {
    const auto r = mpx_ldd_distributed(g, 0.3, 100 + t);
    total += static_cast<double>(r.clustering.cut_edges) / g.num_edges();
  }
  EXPECT_LE(total / 8, 0.3 * 1.6);  // E[cut] <= eps|E| with sampling slack
}

TEST(LocalGather, LeaderLearnsWholeClusterButMessagesExplode) {
  Rng rng(8);
  Graph g = graph::random_maximal_planar(150, rng);
  const auto d = expander::expander_decompose(g, 0.2);
  const auto leaders = congest::elect_cluster_leaders(g, d.cluster_of);
  const auto r = local_model_gather(g, d.cluster_of, leaders.leader_of);
  // Edge counts match the decomposition clusters.
  std::vector<std::int64_t> expected(d.num_clusters, 0);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!d.is_inter_cluster[e]) ++expected[d.cluster_of[g.edge(e).u]];
  }
  for (int c = 0; c < d.num_clusters; ++c) {
    EXPECT_EQ(r.edges_learned[c], expected[c]) << "cluster " << c;
  }
  // The LOCAL-model price: some message carried far more than O(log n) bits.
  EXPECT_GT(r.max_message_words, congest::kMaxMessageWords);
}

TEST(PivotCorrelation, ProducesValidLabels) {
  Rng rng(9);
  Graph base = graph::grid(8, 8);
  Graph g = base.with_signs(graph::planted_signs(base, 8, 0.1, rng));
  const auto labels = pivot_correlation(g, rng);
  ASSERT_EQ(static_cast<int>(labels.size()), g.num_vertices());
  for (int l : labels) EXPECT_GE(l, 0);
  // Score is computable (sanity).
  EXPECT_GE(seq::agreement_score(g, labels), 0);
}

}  // namespace
}  // namespace ecd::baselines
