// Tests for the extension features: weighted-volume expander decomposition
// and distributed triangle counting.
#include <gtest/gtest.h>

#include "src/core/mwm.h"
#include "src/core/property_testing.h"
#include "src/core/triangles.h"
#include "src/expander/weighted.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"
#include "src/seq/mwm.h"

namespace ecd {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

// ---------------- Weighted decomposition ---------------------------------------

TEST(WeightedDecomposition, ReducesToUnweightedNotionOnUnitWeights) {
  Graph g = graph::path(4);
  EXPECT_DOUBLE_EQ(expander::weighted_cut_conductance(
                       g, {true, true, false, false}),
                   1.0 / 3.0);
}

TEST(WeightedDecomposition, WeightBudgetHolds) {
  Rng rng(1);
  for (int trial = 0; trial < 5; ++trial) {
    Graph base = graph::random_maximal_planar(150, rng);
    Graph g = base.with_weights(graph::random_weights(base, 1000, rng));
    const double eps = 0.2;
    expander::DecompositionOptions opt;
    opt.seed = trial + 1;
    const auto d = expander::expander_decompose_weighted(g, eps, opt);
    EXPECT_LE(d.inter_cluster_weight, eps * g.total_weight() + 1e-9);
    // Partition validity.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_GE(d.base.cluster_of[v], 0);
    }
    // Clusters connected.
    const auto members = expander::cluster_members(d.base);
    for (const auto& m : members) {
      if (m.size() < 2) continue;
      const auto sub = graph::induced_subgraph(g, m);
      EXPECT_TRUE(graph::is_connected(sub.graph));
    }
  }
}

TEST(WeightedDecomposition, HeavyBottleneckGetsCutOnlyIfCheap) {
  // Barbell with an extremely heavy bridge: the weighted decomposition must
  // not cut the bridge (its weight would blow the budget) — the unweighted
  // one would, when forced with the same phi.
  Graph base = graph::barbell(8, 0);
  std::vector<graph::Weight> w(base.num_edges(), 1);
  // bridge edge connects vertex 7 (left clique) with 8 (right clique).
  const graph::EdgeId bridge = base.find_edge(7, 8);
  ASSERT_NE(bridge, graph::kInvalidEdge);
  w[bridge] = 1'000'000;
  Graph g = base.with_weights(std::move(w));
  expander::DecompositionOptions opt;
  opt.phi = 0.05;
  const auto d = expander::expander_decompose_weighted(g, 0.3, opt);
  EXPECT_FALSE(d.base.is_inter_cluster[bridge]);
}

TEST(WeightedDecomposition, MwmPrefersWeightedVolumes) {
  // Ablation hook: both modes must achieve the guarantee; weighted volumes
  // should never be (meaningfully) worse.
  Rng rng(2);
  Graph base = graph::grid(10, 10);
  Graph g = base.with_weights(graph::random_weights(base, 1000, rng));
  core::MwmApproxOptions weighted;
  weighted.framework.decomposition.phi = 0.08;
  core::MwmApproxOptions unweighted = weighted;
  unweighted.weighted_decomposition = false;
  const auto rw = core::mwm_approx(g, 0.3, weighted);
  const auto ru = core::mwm_approx(g, 0.3, unweighted);
  const auto exact =
      seq::matching_weight(g, seq::max_weight_matching(g));
  EXPECT_GE(rw.weight + 1e-9, 0.7 * exact);
  EXPECT_GE(ru.weight + 1e-9, 0.7 * exact);
}

// ---------------- Distributed triangle counting ------------------------------------

TEST(Triangles, SequentialOracleKnownValues) {
  EXPECT_EQ(core::count_triangles_sequential(graph::complete(4)), 4);
  EXPECT_EQ(core::count_triangles_sequential(graph::complete(5)), 10);
  EXPECT_EQ(core::count_triangles_sequential(graph::cycle(5)), 0);
  EXPECT_EQ(core::count_triangles_sequential(graph::grid(4, 4)), 0);
  EXPECT_EQ(core::count_triangles_sequential(graph::complete_bipartite(3, 3)),
            0);
}

TEST(Triangles, DistributedMatchesSequentialOnFamilies) {
  Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const Graph g = graph::random_maximal_planar(120, rng);
    const auto r = core::count_triangles_distributed(g);
    EXPECT_EQ(r.triangles, core::count_triangles_sequential(g))
        << "trial " << trial;
  }
}

TEST(Triangles, DistributedMatchesOnTwoTrees) {
  Rng rng(4);
  const Graph g = graph::random_two_tree(150, rng);
  const auto r = core::count_triangles_distributed(g);
  // A 2-tree on n vertices has exactly n - 2 triangles... at least the
  // n - 2 construction triangles; chords can add more. Trust the oracle.
  EXPECT_EQ(r.triangles, core::count_triangles_sequential(g));
  EXPECT_GE(r.triangles, g.num_vertices() - 2);
}

TEST(Triangles, TriangulationTriangleCountIsLinear) {
  Rng rng(5);
  const Graph g = graph::random_maximal_planar(200, rng);
  const auto r = core::count_triangles_distributed(g);
  // Every face of a triangulation is a triangle: >= 2n - 5 of them.
  EXPECT_GE(r.triangles, 2 * g.num_vertices() - 5);
}

TEST(Triangles, RoundsScaleWithDegeneracyNotN) {
  Rng rng(6);
  const Graph small = graph::random_maximal_planar(100, rng);
  const Graph large = graph::random_maximal_planar(1000, rng);
  const auto rs = core::count_triangles_distributed(small);
  const auto rl = core::count_triangles_distributed(large);
  // Phase B is max_out_degree + O(1) rounds regardless of n; the peeling in
  // phase A is O(log n). Total measured rounds stay tiny for both.
  EXPECT_LE(rl.ledger.measured_total(),
            rs.ledger.measured_total() + 30);
  EXPECT_LE(rl.out_degree_bound, 5);  // planar degeneracy
}

TEST(Triangles, EmptyAndTinyGraphs) {
  EXPECT_EQ(core::count_triangles_distributed(graph::path(2)).triangles, 0);
  EXPECT_EQ(core::count_triangles_distributed(graph::cycle(3)).triangles, 1);
}

// ---------------- Adversarial inputs / failure paths --------------------------------

TEST(FailureHandling, DenseNonMinorFreeInputStillTerminates) {
  // The framework makes no minor-freeness check; on a dense random input
  // it must still terminate with a valid partition (the paper's §2.3
  // discussion) — only the quality guarantees are off the table.
  Rng rng(31);
  const Graph g = graph::random_regular(80, 8, rng);
  const auto p = core::partition_and_gather(g, 0.3);
  EXPECT_TRUE(p.gather_complete);
  int covered = 0;
  for (const auto& c : p.clusters) covered += static_cast<int>(c.members.size());
  EXPECT_EQ(covered, g.num_vertices());
}

TEST(FailureHandling, PropertyTesterRejectsExpanders) {
  // An 8-regular expander is epsilon-far from planar; the tester must
  // reject (via the property check or the Lemma 2.3 degree condition).
  Rng rng(32);
  const Graph g = graph::random_regular(100, 8, rng);
  const auto r = core::property_test(g, seq::planar_property(), 0.2);
  EXPECT_FALSE(r.accept);
}

TEST(FailureHandling, DiameterSelfCheckPreservesOneSidedError) {
  Rng rng(33);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph planar = graph::random_maximal_planar(100, rng);
    core::PropertyTestOptions opt;
    opt.framework.decomposition.phi = 0.05;  // keep the bound simulable
    opt.diameter_check_factor = 4.0;
    opt.framework.seed = trial;
    const auto r = core::property_test(planar, seq::planar_property(), 0.3, opt);
    EXPECT_TRUE(r.accept) << "trial " << trial;
    bool has_check_entry = false;
    for (const auto& e : r.ledger.entries()) {
      has_check_entry |= e.label.starts_with("diameter self-check");
    }
    EXPECT_TRUE(has_check_entry);
  }
}

TEST(FailureHandling, WeightedDecompositionOnUnitWeightsMatchesContract) {
  Rng rng(34);
  Graph base = graph::random_maximal_planar(120, rng);
  Graph g = base.with_weights(std::vector<graph::Weight>(base.num_edges(), 1));
  const auto d = expander::expander_decompose_weighted(g, 0.2, {});
  EXPECT_LE(d.inter_cluster_weight, 0.2 * g.num_edges() + 1e-9);
  EXPECT_EQ(d.inter_cluster_weight, d.base.inter_cluster_edges);
}

}  // namespace
}  // namespace ecd
