// End-to-end properties of the full application pipelines: strict
// 1-token-per-edge CONGEST bandwidth, and cross-run determinism.
#include <gtest/gtest.h>

#include "src/core/correlation.h"
#include "src/core/ldd.h"
#include "src/core/mis.h"
#include "src/graph/generators.h"
#include "src/graph/subgraph.h"
#include "src/seq/mis.h"

namespace ecd::core {
namespace {

using graph::Graph;
using graph::Rng;

TEST(EndToEnd, StrictUnitBandwidthStillCompletes) {
  // walk_bandwidth = 1 is the purest CONGEST reading of Lemma 2.4 (no
  // O(log n) batching); everything must still deliver, just more slowly.
  Rng rng(1);
  Graph g = graph::random_maximal_planar(80, rng);
  FrameworkOptions opt;
  opt.walk_bandwidth = 1;
  const auto p = partition_and_gather(g, 0.3, opt);
  ASSERT_TRUE(p.gather_complete);
  int covered = 0;
  for (const auto& c : p.clusters) {
    covered += static_cast<int>(c.members.size());
    const auto reference = graph::induced_subgraph(g, c.members);
    EXPECT_EQ(c.subgraph.graph.num_edges(), reference.graph.num_edges());
  }
  EXPECT_EQ(covered, g.num_vertices());

  // The strict run must have respected its budget: at most one walk token
  // per directed edge per round ever crossed. (No round-count comparison
  // against the batched configuration — wall rounds are dominated by walk
  // trajectories, not queueing, so that ordering is seed noise.)
  EXPECT_LE(p.gather.stats.max_edge_load, 1);
  EXPECT_GT(p.gather.stats.rounds, 0);

  FrameworkOptions batched;
  batched.walk_bandwidth = 0;  // ceil(log2 n)
  const auto pb = partition_and_gather(g, 0.3, batched);
  ASSERT_TRUE(pb.gather_complete);
}

TEST(EndToEnd, MisDeterministicAcrossRuns) {
  Graph g = graph::grid(9, 9);
  MisApproxOptions opt;
  opt.framework.deterministic = true;
  const auto r1 = mis_approx(g, 0.3, opt);
  const auto r2 = mis_approx(g, 0.3, opt);
  EXPECT_EQ(r1.independent_set, r2.independent_set);
  EXPECT_EQ(r1.ledger.measured_total(), r2.ledger.measured_total());
}

TEST(EndToEnd, CorrelationDeterministicAcrossRuns) {
  Rng rng(2);
  Graph base = graph::random_maximal_planar(90, rng);
  Graph g = base.with_signs(graph::planted_signs(base, 9, 0.1, rng));
  CorrelationApproxOptions opt;
  opt.framework.deterministic = true;
  const auto r1 = correlation_approx(g, 0.3, opt);
  const auto r2 = correlation_approx(g, 0.3, opt);
  EXPECT_EQ(r1.clustering, r2.clustering);
  EXPECT_EQ(r1.score, r2.score);
}

TEST(EndToEnd, DeterministicModeUsesTheorem22Formula) {
  // Deterministic runs must be charged by the Thm 2.2 formula and
  // randomized runs by Thm 2.1. (At toy n the subpolynomial 2.2 value is
  // *below* the polylog 2.1 value — the asymptotic ordering only kicks in
  // at large n, which congest_test checks at n = 100000.)
  Graph g = graph::grid(8, 8);
  FrameworkOptions det;
  det.deterministic = true;
  const auto pd = partition_and_gather(g, 0.3, det);
  const auto pr = partition_and_gather(g, 0.3, {});
  EXPECT_EQ(pd.ledger.modeled_total(),
            congest::modeled_decomposition_rounds(g.num_vertices(),
                                                  pd.eps_effective, true));
  EXPECT_EQ(pr.ledger.modeled_total(),
            congest::modeled_decomposition_rounds(g.num_vertices(),
                                                  pr.eps_effective, false));
}

TEST(EndToEnd, LddSeedsChangeClusteringNotGuarantees) {
  Graph g = graph::grid(14, 14);
  const double eps = 0.3;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    LddApproxOptions opt;
    opt.framework.seed = seed;
    const auto r = ldd_approx(g, eps, opt);
    EXPECT_LE(r.cut_edges, eps * g.num_edges() + 1e-9) << seed;
    EXPECT_LE(r.max_diameter, 40.0 / eps) << seed;
  }
}

}  // namespace
}  // namespace ecd::core
