#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <sstream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "src/graph/io.h"
#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"

namespace ecd::graph {
namespace {

TEST(Graph, BuildsCsrFromEdgeList) {
  Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, NormalizesEndpointOrder) {
  Graph g = Graph::from_edges(3, {{2, 0}});
  EXPECT_EQ(g.edge(0).u, 0);
  EXPECT_EQ(g.edge(0).v, 2);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph::from_edges(2, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsParallelEdges) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 1}, {1, 0}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoint) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 2}}), std::invalid_argument);
}

TEST(Graph, OtherEndpoint) {
  Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}});
  EXPECT_EQ(g.other_endpoint(0, 0), 1);
  EXPECT_EQ(g.other_endpoint(0, 1), 0);
}

TEST(Graph, IncidentEdgesAlignWithNeighbors) {
  Graph g = Graph::from_edges(4, {{0, 1}, {0, 2}, {0, 3}});
  auto nbrs = g.neighbors(0);
  auto eids = g.incident_edges(0);
  ASSERT_EQ(nbrs.size(), 3u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    EXPECT_EQ(g.other_endpoint(eids[i], 0), nbrs[i]);
  }
}

TEST(Graph, WeightsDefaultToOne) {
  Graph g = Graph::from_edges(2, {{0, 1}});
  EXPECT_FALSE(g.is_weighted());
  EXPECT_EQ(g.weight(0), 1);
  EXPECT_EQ(g.total_weight(), 1);
}

TEST(Graph, WithWeights) {
  Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}}).with_weights({5, 7});
  EXPECT_TRUE(g.is_weighted());
  EXPECT_EQ(g.total_weight(), 12);
  EXPECT_EQ(g.max_weight(), 7);
  EXPECT_THROW(g.with_weights({1}), std::invalid_argument);
  EXPECT_THROW(g.with_weights({0, 1}), std::invalid_argument);
}

TEST(Graph, WithSigns) {
  Graph g = Graph::from_edges(3, {{0, 1}, {1, 2}})
                .with_signs({EdgeSign::kPositive, EdgeSign::kNegative});
  EXPECT_TRUE(g.is_signed());
  EXPECT_EQ(g.sign(0), EdgeSign::kPositive);
  EXPECT_EQ(g.sign(1), EdgeSign::kNegative);
}

// --- Streamed CSR construction ----------------------------------------------

// Replayable stream over a fixed callback; the test-local analogue of the
// generator-internal FnEdgeStream.
class FnStream final : public EdgeStream {
 public:
  explicit FnStream(std::function<void(EdgeSink&)> fn) : fn_(std::move(fn)) {}
  void generate(EdgeSink& sink) override { fn_(sink); }

 private:
  std::function<void(EdgeSink&)> fn_;
};

// FNV-1a over the full CSR layout (edge list in id order, then each
// vertex's adjacency and incident-edge rows). Pins the "byte-identical to
// from_edges" contract to a number.
std::uint64_t topology_hash(const Graph& g) {
  std::uint64_t h = 1469598103934665603ull;
  const auto mix = [&h](std::int64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint64_t>(x >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(g.num_vertices());
  mix(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    mix(g.edge(e).u);
    mix(g.edge(e).v);
  }
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (const VertexId w : g.neighbors(v)) mix(w);
    for (const EdgeId e : g.incident_edges(v)) mix(e);
  }
  return h;
}

TEST(EdgeStream, MatchesFromEdgesByteForByte) {
  const std::vector<Edge> edges = {{0, 1}, {3, 1}, {2, 4}, {4, 0}, {1, 2}};
  FnStream stream([&edges](EdgeSink& sink) {
    for (const Edge& e : edges) sink.edge(e.u, e.v);
  });
  const Graph streamed = Graph::from_edge_stream(5, stream);
  const Graph listed = Graph::from_edges(5, edges);
  ASSERT_EQ(streamed.num_vertices(), listed.num_vertices());
  ASSERT_EQ(streamed.num_edges(), listed.num_edges());
  for (EdgeId e = 0; e < listed.num_edges(); ++e) {
    EXPECT_EQ(streamed.edge(e), listed.edge(e));
  }
  for (VertexId v = 0; v < listed.num_vertices(); ++v) {
    EXPECT_TRUE(std::ranges::equal(streamed.neighbors(v), listed.neighbors(v)));
    EXPECT_TRUE(std::ranges::equal(streamed.incident_edges(v),
                                   listed.incident_edges(v)));
  }
  EXPECT_EQ(streamed.max_degree(), listed.max_degree());
  EXPECT_EQ(topology_hash(streamed), topology_hash(listed));
}

TEST(EdgeStream, RejectsTheSameInputsAsFromEdges) {
  FnStream self_loop([](EdgeSink& sink) { sink.edge(1, 1); });
  EXPECT_THROW(Graph::from_edge_stream(2, self_loop), std::invalid_argument);
  FnStream out_of_range([](EdgeSink& sink) { sink.edge(0, 2); });
  EXPECT_THROW(Graph::from_edge_stream(2, out_of_range),
               std::invalid_argument);
  FnStream parallel([](EdgeSink& sink) {
    sink.edge(0, 1);
    sink.edge(1, 0);
  });
  EXPECT_THROW(Graph::from_edge_stream(2, parallel), std::invalid_argument);
}

TEST(EdgeStream, RejectsStreamsThatDoNotReplayIdentically) {
  // Emits {0,1} on the first pass and {1,2} on the second: degree counts
  // and fill disagree, which the cursor bounds check must catch.
  int pass = 0;
  FnStream flaky([&pass](EdgeSink& sink) {
    sink.edge(0, ++pass == 1 ? 1 : 2);
  });
  EXPECT_THROW(Graph::from_edge_stream(3, flaky), std::invalid_argument);
  // Same edges, one extra on the replay.
  pass = 0;
  FnStream growing([&pass](EdgeSink& sink) {
    sink.edge(0, 1);
    if (++pass > 1) sink.edge(1, 2);
  });
  EXPECT_THROW(Graph::from_edge_stream(3, growing), std::invalid_argument);
}

TEST(EdgeStream, MillionVertexGridGoldenHashAndMemoryCeiling) {
  // grid(1000, 1000) routes through from_edge_stream (generators.cpp): a
  // million vertices, 1998000 edges. The golden hash pins the exact CSR
  // layout — edge ids, adjacency order, everything — so a change to the
  // streaming path or the generator's emission order cannot slip by; it was
  // recorded from the from_edges construction of the same sequence, which
  // MatchesFromEdgesByteForByte ties to this hash function.
  const Graph g = grid(1000, 1000);
  EXPECT_EQ(g.num_vertices(), 1000000);
  EXPECT_EQ(g.num_edges(), 2 * 1000 * 999);
  EXPECT_EQ(topology_hash(g), 0xc53b0539411c5a3cull);
#if defined(__unix__) || defined(__APPLE__)
  // Sanity ceiling on the streaming claim: the CSR for this graph is
  // ~50 MB, so process peak RSS while holding it should sit far below the
  // ~2x-edge-list overhead a from_edges build of a much larger graph would
  // add. Generous bound — this guards against reintroducing a full
  // materialized edge list per pass, not against allocator noise.
  struct rusage usage = {};
  ASSERT_EQ(getrusage(RUSAGE_SELF, &usage), 0);
#if defined(__APPLE__)
  const double peak_mb = static_cast<double>(usage.ru_maxrss) / (1024.0 * 1024.0);
#else
  const double peak_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;
#endif
  EXPECT_LT(peak_mb, 1024.0) << "peak RSS while holding a 1M-vertex grid";
#endif
}

TEST(GraphBuilder, DeduplicatesEdges) {
  GraphBuilder b(3);
  EXPECT_TRUE(b.add_edge(0, 1));
  EXPECT_FALSE(b.add_edge(1, 0));
  EXPECT_FALSE(b.add_edge(2, 2));
  EXPECT_TRUE(b.add_edge(1, 2));
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(Generators, GridShape) {
  Graph g = grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 2 * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, TorusIsFourRegular) {
  Graph g = torus_grid(4, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, HypercubeShape) {
  Graph g = hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, TriangulationHasMaximalPlanarEdgeCount) {
  Rng rng(7);
  for (int n : {3, 4, 10, 50, 200}) {
    Graph g = random_maximal_planar(n, rng);
    EXPECT_EQ(g.num_edges(), 3 * n - 6) << "n=" << n;
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomTreeIsTree) {
  Rng rng(11);
  Graph g = random_tree(100, rng);
  EXPECT_EQ(g.num_edges(), 99);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, TwoTreeEdgeCount) {
  Rng rng(3);
  Graph g = random_two_tree(50, rng);
  EXPECT_EQ(g.num_edges(), 1 + 2 * 48);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomRegularDegrees) {
  Rng rng(5);
  Graph g = random_regular(60, 4, rng);
  for (VertexId v = 0; v < g.num_vertices(); ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(Generators, BarbellConductanceStructure) {
  Graph g = barbell(10, 3);
  EXPECT_EQ(g.num_vertices(), 23);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(10), 2);  // bridge vertex
}

TEST(Generators, PlusRandomEdgesAddsExactly) {
  Rng rng(13);
  Graph base = grid(8, 8);
  Graph g = plus_random_edges(base, 17, rng);
  EXPECT_EQ(g.num_edges(), base.num_edges() + 17);
}

TEST(Generators, DisjointUnionOffsetsIds) {
  Graph g = disjoint_union({path(3), cycle(3)});
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 2 + 3);
  EXPECT_EQ(connected_components(g).count, 2);
}

TEST(Generators, PlantedSignsRespectNoiseZero) {
  Rng rng(17);
  Graph g = grid(6, 6);
  auto signs = planted_signs(g, 9, 0.0, rng);
  ASSERT_EQ(static_cast<int>(signs.size()), g.num_edges());
  // With zero noise at least the diagonal structure exists: some edges
  // positive (intra-region); regions of size 9 in a 36-vertex grid force
  // some negative inter-region edges too.
  int pos = 0;
  for (auto s : signs) pos += (s == EdgeSign::kPositive);
  EXPECT_GT(pos, 0);
  EXPECT_LT(pos, g.num_edges());
}

TEST(Metrics, BfsDistancesOnPath) {
  Graph g = path(5);
  auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[4], 4);
  EXPECT_EQ(d[0], 0);
}

TEST(Metrics, ExactDiameter) {
  EXPECT_EQ(exact_diameter(path(6)), 5);
  EXPECT_EQ(exact_diameter(cycle(6)), 3);
  EXPECT_EQ(exact_diameter(complete(5)), 1);
  EXPECT_EQ(exact_diameter(grid(4, 4)), 6);
}

TEST(Metrics, DiameterOfDisconnected) {
  Graph g = disjoint_union({path(2), path(2)});
  EXPECT_EQ(exact_diameter(g), kUnreachable);
}

TEST(Metrics, TwoSweepExactOnTrees) {
  Rng rng(23);
  for (int seed = 0; seed < 5; ++seed) {
    Graph t = random_tree(60, rng);
    EXPECT_EQ(two_sweep_diameter_lower_bound(t), exact_diameter(t));
  }
}

TEST(Metrics, DegeneracyOfFamilies) {
  Rng rng(29);
  EXPECT_EQ(degeneracy(random_tree(50, rng)).degeneracy, 1);
  EXPECT_EQ(degeneracy(cycle(10)).degeneracy, 2);
  EXPECT_EQ(degeneracy(complete(6)).degeneracy, 5);
  EXPECT_EQ(degeneracy(random_two_tree(40, rng)).degeneracy, 2);
  EXPECT_LE(degeneracy(random_maximal_planar(80, rng)).degeneracy, 5);
}

TEST(Metrics, OrientationBoundsOutDegree) {
  Rng rng(31);
  Graph g = random_maximal_planar(100, rng);
  auto owned = degeneracy_orientation(g);
  const int d = degeneracy(g).degeneracy;
  std::size_t total = 0;
  for (const auto& list : owned) {
    EXPECT_LE(static_cast<int>(list.size()), d);
    total += list.size();
  }
  EXPECT_EQ(total, static_cast<std::size_t>(g.num_edges()));
}

TEST(Metrics, BiconnectedComponentsPartitionEdges) {
  // Two triangles sharing a cut vertex + a pendant edge: 3 blocks.
  Graph g = Graph::from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}, {4, 5}});
  const auto blocks = biconnected_components(g);
  EXPECT_EQ(blocks.size(), 3u);
  std::vector<int> owner(g.num_edges(), 0);
  for (const auto& b : blocks) {
    for (EdgeId e : b) ++owner[e];
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) EXPECT_EQ(owner[e], 1);
}

TEST(Metrics, BiconnectedOfBiconnectedGraphIsOneBlock) {
  Rng rng(61);
  EXPECT_EQ(biconnected_components(graph::cycle(12)).size(), 1u);
  EXPECT_EQ(biconnected_components(graph::complete(6)).size(), 1u);
  EXPECT_EQ(biconnected_components(graph::grid(4, 5)).size(), 1u);
  // Every tree edge is a bridge: n-1 singleton blocks.
  Graph t = graph::random_tree(30, rng);
  const auto blocks = biconnected_components(t);
  EXPECT_EQ(blocks.size(), 29u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 1u);
}

TEST(Subgraph, InducedCarriesAttributes) {
  Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}})
                .with_weights({3, 4, 5})
                .with_signs({EdgeSign::kPositive, EdgeSign::kNegative,
                             EdgeSign::kPositive});
  const std::vector<VertexId> keep{1, 2, 3};
  auto sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.graph.num_vertices(), 3);
  EXPECT_EQ(sub.graph.num_edges(), 2);
  EXPECT_EQ(sub.graph.weight(0), 4);
  EXPECT_EQ(sub.graph.sign(0), EdgeSign::kNegative);
  EXPECT_EQ(sub.to_parent[0], 1);
}

TEST(Subgraph, EdgeSubgraphKeepsVertexCount) {
  Graph g = cycle(5);
  std::vector<bool> keep(5, true);
  keep[0] = false;
  Graph sub = edge_subgraph(g, keep);
  EXPECT_EQ(sub.num_vertices(), 5);
  EXPECT_EQ(sub.num_edges(), 4);
}

TEST(Io, RoundTripUnweighted) {
  Graph g = grid(3, 3);
  std::stringstream ss;
  write_edge_list(g, ss);
  Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_FALSE(h.is_weighted());
}

TEST(Io, RoundTripWeighted) {
  Rng rng(37);
  Graph g = cycle(4).with_weights({2, 3, 4, 5});
  std::stringstream ss;
  write_edge_list(g, ss);
  Graph h = read_edge_list(ss);
  ASSERT_TRUE(h.is_weighted());
  EXPECT_EQ(h.total_weight(), g.total_weight());
}

TEST(Io, DotContainsAllEdges) {
  Graph g = path(3);
  const std::string dot = to_dot(g, {0, 0, 1});
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
}

}  // namespace
}  // namespace ecd::graph
