// Tests for the always-on metrics registry (src/congest/metrics.h) and its
// Network integration: histogram/accumulator units, bit-identical
// snapshots across NetworkOptions::num_threads (the §13 parallel-safety
// contract, checked as literal JSON string equality), the critical-path
// estimate on a topology where the answer is known exactly, agreement with
// the legacy serial MetricsCollector, phase accrual, named instruments,
// and the ecd-run-report-v1 document consumed by `ecd_cli report`.
#include "src/congest/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/baselines/luby_mis.h"
#include "src/congest/network.h"
#include "src/congest/primitives.h"
#include "src/congest/trace.h"
#include "src/core/framework.h"
#include "src/graph/generators.h"
#include "src/graph/graph.h"
#include "tools/json_min.h"

namespace ecd::congest {
namespace {

using graph::Graph;
using graph::VertexId;

// --- Units -----------------------------------------------------------------

TEST(LogHistogram, BucketBoundaries) {
  EXPECT_EQ(LogHistogram::bucket_of(-3), 0);
  EXPECT_EQ(LogHistogram::bucket_of(0), 0);
  EXPECT_EQ(LogHistogram::bucket_of(1), 1);
  EXPECT_EQ(LogHistogram::bucket_of(2), 2);
  EXPECT_EQ(LogHistogram::bucket_of(3), 2);
  EXPECT_EQ(LogHistogram::bucket_of(4), 3);
  EXPECT_EQ(LogHistogram::bucket_of(7), 3);
  EXPECT_EQ(LogHistogram::bucket_of(8), 4);
  EXPECT_EQ(LogHistogram::bucket_of(std::numeric_limits<std::int64_t>::max()),
            63);

  EXPECT_EQ(LogHistogram::bucket_upper_bound(0), 0);
  EXPECT_EQ(LogHistogram::bucket_upper_bound(1), 1);
  EXPECT_EQ(LogHistogram::bucket_upper_bound(2), 3);
  EXPECT_EQ(LogHistogram::bucket_upper_bound(3), 7);
  EXPECT_EQ(LogHistogram::bucket_upper_bound(63),
            std::numeric_limits<std::int64_t>::max());
  // Every value lands in the bucket whose bounds contain it.
  for (const std::int64_t v : {0LL, 1LL, 5LL, 100LL, 65535LL, 1LL << 40}) {
    const int b = LogHistogram::bucket_of(v);
    EXPECT_LE(v, LogHistogram::bucket_upper_bound(b)) << v;
    if (b > 0) {
      EXPECT_GT(v, LogHistogram::bucket_upper_bound(b - 1)) << v;
    }
  }
}

TEST(LogHistogram, RecordMergePercentile) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(50), 0);
  for (int i = 0; i < 90; ++i) h.record(1);
  for (int i = 0; i < 10; ++i) h.record(1000);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.sum(), 90 + 10 * 1000);
  EXPECT_EQ(h.max(), 1000);
  EXPECT_EQ(h.percentile(50), 1);
  // p99 falls in the bucket holding 1000; the estimate is capped at the
  // observed max, not the bucket's upper bound.
  EXPECT_EQ(h.percentile(99), 1000);

  LogHistogram other;
  other.record(0);
  other.record(1 << 20);
  h.merge(other);
  EXPECT_EQ(h.count(), 102);
  EXPECT_EQ(h.max(), 1 << 20);
  EXPECT_EQ(h.bucket_count(0), 1);

  h.clear();
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.sum(), 0);
}

TEST(RunStats, AccumulateSumsCountsAndMaxesLoad) {
  RunStats a;
  a.rounds = 3;
  a.messages_sent = 10;
  a.words_sent = 20;
  a.max_edge_load = 2;
  a.messages_dropped = 1;
  RunStats b;
  b.rounds = 4;
  b.messages_sent = 5;
  b.words_sent = 7;
  b.max_edge_load = 5;
  b.messages_delayed = 2;
  b.messages_duplicated = 3;
  b.vertices_crashed = 1;
  a += b;
  EXPECT_EQ(a.rounds, 7);
  EXPECT_EQ(a.messages_sent, 15);
  EXPECT_EQ(a.words_sent, 27);
  EXPECT_EQ(a.max_edge_load, 5);  // max, not sum
  EXPECT_EQ(a.messages_dropped, 1);
  EXPECT_EQ(a.messages_delayed, 2);
  EXPECT_EQ(a.messages_duplicated, 3);
  EXPECT_EQ(a.vertices_crashed, 1);
}

TEST(MetricsRegistry, NamedInstruments) {
  MetricsRegistry reg;
  MetricsRegistry::Counter* c = reg.counter("gather.retransmissions");
  c->increment();
  c->add(4);
  // Same name => same instrument; the pointer is stable.
  EXPECT_EQ(reg.counter("gather.retransmissions"), c);
  EXPECT_EQ(c->value(), 5);

  MetricsRegistry::Gauge* gauge = reg.gauge("queue.depth");
  gauge->set(7);
  gauge->set(3);
  EXPECT_EQ(gauge->value(), 3);
  EXPECT_EQ(gauge->max(), 7);

  LogHistogram* h = reg.histogram("walk.length");
  h->record(12);
  EXPECT_EQ(reg.histogram("walk.length")->count(), 1);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"gather.retransmissions\":5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"queue.depth\""), std::string::npos) << json;
}

TEST(MetricsRegistry, PhaseAccrualAndNesting) {
  MetricsRegistry reg;
  RunStats round;
  round.messages_sent = 5;
  round.words_sent = 9;
  round.max_edge_load = 2;

  reg.phase_begin("outer");
  reg.begin_run(4, 3);
  reg.record_round(round);
  reg.phase_begin("inner");
  reg.record_round(round);
  reg.record_tag_slot(metrics_tag_slot(kTagBroadcast), 5, 9);
  reg.phase_end();
  RunStats totals;
  totals.rounds = 2;
  totals.messages_sent = 10;
  totals.words_sent = 18;
  totals.max_edge_load = 2;
  reg.end_run(totals, 6);
  reg.phase_end();

  ASSERT_EQ(reg.phases().size(), 2u);
  const PhaseMetrics& outer = reg.phases()[0];
  const PhaseMetrics& inner = reg.phases()[1];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_TRUE(outer.closed);
  EXPECT_EQ(outer.stats.rounds, 2);      // both rounds accrued
  EXPECT_EQ(outer.stats.messages_sent, 10);
  EXPECT_EQ(outer.runs, 1);              // the run ended while outer was open
  EXPECT_EQ(outer.critical_path, 6);
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.stats.rounds, 1);      // only the second round
  EXPECT_EQ(inner.runs, 0);              // run ended after inner closed
  EXPECT_EQ(inner.tags[metrics_tag_slot(kTagBroadcast)].messages, 5);
  // Tag traffic recorded inside inner also accrues to outer (containment).
  EXPECT_EQ(outer.tags[metrics_tag_slot(kTagBroadcast)].words, 9);

  // Unbalanced phase_end is ignored, not a crash.
  reg.phase_end();
  EXPECT_EQ(reg.phases().size(), 2u);
}

TEST(MetricsRegistry, TagSlotMapping) {
  EXPECT_EQ(metrics_tag_slot(kTagElection), kTagElection);
  EXPECT_EQ(metrics_tag_slot(kTagUserBase), kTagUserBase);
  EXPECT_EQ(metrics_tag_slot(kTagUserBase + kMetricsUserTagSlots - 1),
            kMetricsTagSlots - 2);
  // Deep user tags and invalid negatives share the overflow slot.
  EXPECT_EQ(metrics_tag_slot(kTagUserBase + kMetricsUserTagSlots),
            kMetricsOverflowSlot);
  EXPECT_EQ(metrics_tag_slot(-1), kMetricsOverflowSlot);
  EXPECT_EQ(metrics_slot_tag(kMetricsOverflowSlot), -1);
  EXPECT_EQ(metrics_slot_tag(kTagDiameter), kTagDiameter);
}

// --- Thread-count determinism ----------------------------------------------
//
// The §13 contract: a registry observing the same workload must produce a
// byte-identical snapshot at every NetworkOptions::num_threads value. The
// snapshot includes every histogram bucket, tag row, per-edge total and
// the critical path, so string equality is a complete check.

// Election flood + leader broadcast + diameter check over a planar graph:
// the multi-primitive "flood" workload.
std::string flood_snapshot(int threads) {
  graph::Rng rng(7);
  const Graph g = graph::random_maximal_planar(96, rng);
  std::vector<int> cluster(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) cluster[v] = v % 2;

  MetricsRegistry reg;
  NetworkOptions net;
  net.metrics = &reg;
  net.num_threads = threads;

  MetricsPhase phase(&reg, "phase:flood");
  const auto leaders = elect_cluster_leaders(g, cluster, net);
  std::vector<std::int64_t> leader_value(g.num_vertices(), 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (leaders.leader_of[v] == v) leader_value[v] = 9000 + v;
  }
  broadcast_from_leaders(g, cluster, leaders.leader_of, leader_value, net);
  check_cluster_diameter(g, cluster, 6, net);
  return reg.to_json();
}

TEST(MetricsDeterminism, FloodSnapshotBitIdenticalAcrossThreadCounts) {
  const std::string serial = flood_snapshot(1);
  EXPECT_FALSE(serial.empty());
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(serial, flood_snapshot(threads)) << "threads=" << threads;
  }
}

std::string luby_snapshot(int threads) {
  graph::Rng rng(11);
  const Graph g = graph::random_planar(128, 256, rng);
  MetricsRegistry reg;
  NetworkOptions net;
  net.metrics = &reg;
  net.num_threads = threads;
  const auto result = baselines::luby_mis(g, 7, net);
  EXPECT_FALSE(result.independent_set.empty());
  return reg.to_json();
}

TEST(MetricsDeterminism, LubyMisSnapshotBitIdenticalAcrossThreadCounts) {
  const std::string serial = luby_snapshot(1);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(serial, luby_snapshot(threads)) << "threads=" << threads;
  }
}

std::string faulted_gather_snapshot(int threads) {
  graph::Rng rng(23);
  const Graph g = graph::random_maximal_planar(64, rng);
  std::vector<int> cluster(g.num_vertices(), 0);
  const auto leaders = elect_cluster_leaders(g, cluster, {});

  MetricsRegistry reg;
  ReliableGatherOptions ropt;
  ropt.net.metrics = &reg;
  ropt.net.num_threads = threads;
  ropt.net.bandwidth_tokens = 4;
  ropt.net.faults.seed = 99;
  ropt.net.faults.drop_probability = 0.05;
  ropt.net.faults.duplicate_probability = 0.02;
  ropt.net.faults.delay_probability = 0.05;
  ropt.net.faults.max_delay_rounds = 2;
  ropt.seed = 1234;

  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v, 100 + v}});
  }
  const auto result =
      reliable_walk_gather(g, cluster, leaders.leader_of, tokens, ropt);
  EXPECT_TRUE(result.gather.complete);
  // The plan must actually have fired for this to test the fault counters.
  EXPECT_GT(reg.totals().messages_dropped, 0);
  return reg.to_json();
}

TEST(MetricsDeterminism, FaultedReliableGatherBitIdenticalAcrossThreadCounts) {
  const std::string serial = faulted_gather_snapshot(1);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(serial, faulted_gather_snapshot(threads)) << "threads=" << threads;
  }
}

// --- Critical path ----------------------------------------------------------

// Broadcast from one end of a path graph: the wavefront travels n-1 hops,
// and the far endpoint's forward-on-receipt echoes one hop back toward the
// leader — the longest causal message chain is exactly (n-1) + 1.
TEST(MetricsCriticalPath, PathGraphBroadcastIsExact) {
  constexpr int kN = 33;
  std::vector<graph::Edge> edges;
  for (VertexId v = 0; v + 1 < kN; ++v) edges.push_back({v, v + 1});
  const Graph g = Graph::from_edges(kN, std::move(edges));
  std::vector<int> cluster(kN, 0);
  std::vector<VertexId> leader_of(kN, 0);  // leader at the left end
  std::vector<std::int64_t> leader_value(kN, 0);
  leader_value[0] = 42;

  for (const int threads : {1, 4}) {
    MetricsRegistry reg;
    NetworkOptions net;
    net.metrics = &reg;
    net.num_threads = threads;
    broadcast_from_leaders(g, cluster, leader_of, leader_value, net);
    EXPECT_EQ(reg.critical_path_longest_run(), kN) << "threads=" << threads;
    EXPECT_EQ(reg.critical_path_total(), kN) << "threads=" << threads;
  }
}

// --- Cross-validation against the legacy serial collector -------------------

TEST(MetricsRegistryVsCollector, TagTrafficAndTotalsAgree) {
  graph::Rng rng(77);
  const Graph g = graph::random_maximal_planar(64, rng);
  std::vector<int> cluster(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) cluster[v] = v % 3 == 0;

  auto workload = [&](const NetworkOptions& net) {
    const auto leaders = elect_cluster_leaders(g, cluster, net);
    std::vector<std::int64_t> leader_value(g.num_vertices(), 0);
    broadcast_from_leaders(g, cluster, leaders.leader_of, leader_value, net);
    check_cluster_diameter(g, cluster, 8, net);
  };

  MetricsCollector mc;
  NetworkOptions traced;
  traced.trace = &mc;
  workload(traced);

  MetricsRegistry reg;
  NetworkOptions metered;
  metered.metrics = &reg;
  workload(metered);

  EXPECT_EQ(reg.totals().rounds, mc.totals().rounds);
  EXPECT_EQ(reg.totals().messages_sent, mc.totals().messages_sent);
  EXPECT_EQ(reg.totals().words_sent, mc.totals().words_sent);
  EXPECT_EQ(reg.totals().max_edge_load, mc.totals().max_edge_load);
  EXPECT_EQ(reg.runs_observed(), mc.runs_observed());
  for (const int tag : {kTagElection, kTagBroadcast, kTagDiameter}) {
    ASSERT_TRUE(mc.tag_stats().count(tag)) << tag;
    EXPECT_EQ(reg.tag_messages(tag), mc.tag_stats().at(tag).messages) << tag;
    EXPECT_EQ(reg.tag_words(tag), mc.tag_stats().at(tag).words) << tag;
  }
  // Edge totals: both layers observed every delivered message.
  std::int64_t reg_edge_messages = 0;
  for (const auto& e : reg.top_edges(-1)) reg_edge_messages += e.messages;
  std::int64_t mc_edge_messages = 0;
  for (const auto& e : mc.top_edges(-1)) mc_edge_messages += e.messages;
  EXPECT_EQ(reg_edge_messages, mc_edge_messages);
  EXPECT_EQ(reg_edge_messages, reg.totals().messages_sent);
}

// --- Framework integration and the run report --------------------------------

TEST(RunReport, FaultedFrameworkEmitsSchemaValidReport) {
  graph::Rng rng(3);
  const Graph g = graph::random_maximal_planar(72, rng);

  MetricsRegistry reg;
  core::FrameworkOptions fopt;
  fopt.seed = 5;
  fopt.metrics = &reg;
  fopt.num_threads = 2;
  fopt.faults.seed = 17;
  fopt.faults.drop_probability = 0.03;
  const auto p = core::partition_and_gather(g, 0.3, fopt);
  EXPECT_TRUE(p.gather_complete);

  // The faulted path really ran and surfaced in the registry.
  EXPECT_GT(reg.totals().messages_dropped, 0);
  EXPECT_GT(reg.counter("gather.retransmissions")->value(), 0);
  EXPECT_GE(reg.counter("gather.epochs")->value(), 1);

  // Every pipeline phase opened a MetricsPhase.
  std::vector<std::string> phase_names;
  for (const auto& phase : reg.phases()) {
    if (phase.depth == 0) phase_names.push_back(phase.name);
  }
  EXPECT_EQ(phase_names,
            (std::vector<std::string>{"phase:decomposition", "phase:election",
                                      "phase:orientation", "phase:gather",
                                      "phase:reconstruct"}));

  std::ostringstream os;
  RunReportContext ctx;
  ctx.title = "metrics_test faulted run";
  ctx.info = {{"family", "triangulation"}, {"n", "72"}};
  ctx.top_k_edges = 5;
  write_run_report(os, reg, ctx);

  const jsonmin::Value doc = jsonmin::parse(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("schema").string, "ecd-run-report-v1");
  EXPECT_EQ(doc.at("title").string, "metrics_test faulted run");
  EXPECT_EQ(doc.at("info").at("family").string, "triangulation");

  const jsonmin::Value& metrics = doc.at("metrics");
  EXPECT_GT(metrics.at("totals").at("rounds").number, 0);
  EXPECT_GT(metrics.at("totals").at("dropped").number, 0);
  EXPECT_GT(metrics.at("runs").number, 0);
  EXPECT_GT(metrics.at("critical_path").at("total").number, 0);
  // Per-tag data is present and structured.
  const jsonmin::Value& tags = metrics.at("tags");
  ASSERT_TRUE(tags.is_array());
  EXPECT_FALSE(tags.items.empty());
  bool saw_walk_token = false;
  for (const jsonmin::Value& tag : tags.items) {
    EXPECT_TRUE(tag.find("id") && tag.find("name") && tag.find("messages") &&
                tag.find("words"));
    if (tag.at("name").string == "walk_token") saw_walk_token = true;
  }
  EXPECT_TRUE(saw_walk_token);
  // Top-k congested edges, bounded by the requested k.
  const jsonmin::Value& top_edges = metrics.at("top_edges");
  ASSERT_TRUE(top_edges.is_array());
  EXPECT_LE(top_edges.items.size(), 5u);
  EXPECT_FALSE(top_edges.items.empty());
  for (const jsonmin::Value& e : top_edges.items) {
    EXPECT_TRUE(e.find("from") && e.find("to") && e.find("messages") &&
                e.find("words") && e.find("peak_load"));
  }
  // Named instruments made it into the document.
  EXPECT_TRUE(metrics.at("counters").find("gather.retransmissions"));
  // Phases serialize with their stats.
  const jsonmin::Value& phases = metrics.at("phases");
  ASSERT_TRUE(phases.is_array());
  EXPECT_EQ(phases.items.size(), reg.phases().size());
}

// The same faulted framework run must be thread-count invariant end to end.
TEST(MetricsDeterminism, FaultedFrameworkSnapshotAcrossThreadCounts) {
  graph::Rng rng(3);
  const Graph g = graph::random_maximal_planar(72, rng);
  auto snapshot = [&](int threads) {
    MetricsRegistry reg;
    core::FrameworkOptions fopt;
    fopt.seed = 5;
    fopt.metrics = &reg;
    fopt.num_threads = threads;
    fopt.faults.seed = 17;
    fopt.faults.drop_probability = 0.03;
    core::partition_and_gather(g, 0.3, fopt);
    return reg.to_json();
  };
  const std::string serial = snapshot(1);
  for (const int threads : {2, 4}) {
    EXPECT_EQ(serial, snapshot(threads)) << "threads=" << threads;
  }
}

TEST(MetricsRegistry, ResetClearsEverything) {
  MetricsRegistry reg;
  reg.begin_run(4, 3);
  RunStats round;
  round.messages_sent = 2;
  reg.record_round(round);
  reg.record_tag_slot(0, 2, 2);
  reg.record_edge(0, 1, 2, 2, 1);
  RunStats totals;
  totals.rounds = 1;
  reg.end_run(totals, 1);
  reg.counter("c")->increment();
  reg.phase_begin("p");
  reg.phase_end();
  reg.reset();
  EXPECT_EQ(reg.totals().rounds, 0);
  EXPECT_EQ(reg.runs_observed(), 0);
  EXPECT_EQ(reg.critical_path_total(), 0);
  EXPECT_TRUE(reg.phases().empty());
  EXPECT_TRUE(reg.top_edges(-1).empty());
  EXPECT_EQ(reg.tag_messages(0), 0);
  // Instruments survive reset as registered names but are zeroed.
  EXPECT_EQ(reg.counter("c")->value(), 0);
}

}  // namespace
}  // namespace ecd::congest
