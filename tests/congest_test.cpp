#include <gtest/gtest.h>

#include <numeric>

#include "src/congest/network.h"
#include "src/congest/primitives.h"
#include "src/congest/round_ledger.h"
#include "src/expander/decomposition.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"

namespace ecd::congest {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

// A toy algorithm that sends its id once and stops.
class PingAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    if (ctx.round() == 0) {
      for (int p = 0; p < ctx.num_ports(); ++p) ctx.send(p, {{ctx.id()}});
      return;
    }
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) {
        received_.push_back(m.words[0]);
        EXPECT_EQ(m.words[0], ctx.neighbor(p));  // delivery on the right port
      }
    }
    done_ = true;
  }
  bool finished() const override { return done_; }
  const std::vector<std::int64_t>& received() const { return received_; }

 private:
  bool done_ = false;
  std::vector<std::int64_t> received_;
};

TEST(Network, DeliversMessagesOnCorrectPorts) {
  Graph g = graph::cycle(6);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<PingAlgo*> typed;
  for (int v = 0; v < 6; ++v) {
    auto a = std::make_unique<PingAlgo>();
    typed.push_back(a.get());
    algos.push_back(std::move(a));
  }
  Network net(g);
  const RunStats stats = net.run(algos);
  EXPECT_EQ(stats.rounds, 2);
  EXPECT_EQ(stats.messages_sent, 12);
  for (auto* a : typed) EXPECT_EQ(a->received().size(), 2u);
}

class SpammerAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    // Two messages on the same port in one round: must violate bandwidth.
    ctx.send(0, {{1}});
    ctx.send(0, {{2}});
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(Network, EnforcesPerEdgeBandwidth) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<SpammerAlgo>());
  algos.push_back(std::make_unique<SpammerAlgo>());
  Network net(g);
  EXPECT_THROW(net.run(algos), CongestionError);
}

TEST(Network, LocalModeAllowsSpam) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<SpammerAlgo>());
  algos.push_back(std::make_unique<SpammerAlgo>());
  NetworkOptions opt;
  opt.enforce_bandwidth = false;
  Network net(g, opt);
  EXPECT_NO_THROW(net.run(algos));
}

class FatMessageAlgo final : public VertexAlgorithm {
 public:
  void round(Context& ctx) override {
    Message m;
    m.words.assign(kMaxMessageWords + 1, 7);
    ctx.send(0, std::move(m));
    done_ = true;
  }
  bool finished() const override { return done_; }

 private:
  bool done_ = false;
};

TEST(Network, EnforcesMessageSize) {
  Graph g = graph::path(2);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.push_back(std::make_unique<FatMessageAlgo>());
  algos.push_back(std::make_unique<FatMessageAlgo>());
  Network net(g);
  EXPECT_THROW(net.run(algos), CongestionError);
}

std::vector<int> single_cluster(const Graph& g) {
  return std::vector<int>(g.num_vertices(), 0);
}

TEST(LeaderElection, PicksMaxDegreeMaxIdVertex) {
  Graph g = graph::star(5);  // center 0 has degree 5
  const auto r = elect_cluster_leaders(g, single_cluster(g));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.leader_of[v], 0);
  }
}

TEST(LeaderElection, TieBreaksById) {
  Graph g = graph::cycle(7);  // all degree 2: highest id wins
  const auto r = elect_cluster_leaders(g, single_cluster(g));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.leader_of[v], 6);
  }
}

TEST(LeaderElection, RespectsClusterBoundaries) {
  Graph g = graph::path(6);
  std::vector<int> cluster{0, 0, 0, 1, 1, 1};
  const auto r = elect_cluster_leaders(g, cluster);
  // Cluster {0,1,2}: vertex 1 has intra-degree 2 -> leader 1.
  EXPECT_EQ(r.leader_of[0], 1);
  EXPECT_EQ(r.leader_of[1], 1);
  EXPECT_EQ(r.leader_of[2], 1);
  // Cluster {3,4,5}: vertex 4 has intra-degree 2 -> leader 4.
  EXPECT_EQ(r.leader_of[5], 4);
}

TEST(LeaderElection, RoundsTrackClusterDiameter) {
  Graph g = graph::path(40);
  const auto r = elect_cluster_leaders(g, single_cluster(g));
  // Information must traverse the path: rounds >= diameter.
  EXPECT_GE(r.stats.rounds, 39);
  EXPECT_LE(r.stats.rounds, 39 + 3);
}

TEST(BfsTree, DepthsMatchBfsDistances) {
  Rng rng(3);
  Graph g = graph::random_maximal_planar(60, rng);
  const auto leaders = elect_cluster_leaders(g, single_cluster(g));
  const auto tree =
      build_cluster_bfs_trees(g, single_cluster(g), leaders.leader_of);
  const auto dist = graph::bfs_distances(g, leaders.leader_of[0]);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(tree.depth[v], dist[v]) << "v=" << v;
    if (v != leaders.leader_of[0]) {
      ASSERT_NE(tree.parent[v], graph::kInvalidVertex);
      EXPECT_EQ(tree.depth[tree.parent[v]], tree.depth[v] - 1);
    }
  }
}

TEST(Orientation, OutDegreeBounded) {
  Rng rng(5);
  Graph g = graph::random_maximal_planar(150, rng);
  const int threshold = graph::degeneracy(g).degeneracy;  // <= 5 planar
  const auto r = orient_cluster_edges(g, single_cluster(g), threshold);
  EXPECT_LE(r.max_out_degree, threshold);
  // Every intra-cluster edge owned exactly once.
  std::vector<int> owners(g.num_edges(), 0);
  for (const auto& list : r.owned) {
    for (graph::EdgeId e : list) ++owners[e];
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(owners[e], 1) << "edge " << e;
  }
}

TEST(Orientation, PhasesLogarithmic) {
  Rng rng(7);
  Graph g = graph::random_maximal_planar(500, rng);
  const auto r = orient_cluster_edges(g, single_cluster(g), 5);
  EXPECT_LE(r.peeling_phases, 40);  // O(log n) with a generous constant
}

TEST(Orientation, RespectsClusters) {
  Graph g = graph::path(6);
  std::vector<int> cluster{0, 0, 0, 1, 1, 1};
  const auto r = orient_cluster_edges(g, cluster, 2);
  std::vector<int> owners(g.num_edges(), 0);
  for (const auto& list : r.owned) {
    for (graph::EdgeId e : list) ++owners[e];
  }
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    EXPECT_EQ(owners[e], cluster[ed.u] == cluster[ed.v] ? 1 : 0);
  }
}

TEST(Gather, AllTokensReachLeader) {
  Rng rng(9);
  Graph g = graph::random_maximal_planar(40, rng);
  const auto cluster = single_cluster(g);
  const auto leaders = elect_cluster_leaders(g, cluster);
  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v, 1000 + v}});
  }
  GatherOptions opt;
  opt.net.bandwidth_tokens = 4;
  const auto r = random_walk_gather(g, cluster, leaders.leader_of, tokens, opt);
  ASSERT_TRUE(r.complete);
  ASSERT_EQ(r.delivered.size(), 1u);
  EXPECT_EQ(r.delivered[0].size(), static_cast<std::size_t>(g.num_vertices()));
  // Payloads intact.
  std::vector<bool> seen(g.num_vertices(), false);
  for (const auto& payload : r.delivered[0]) {
    ASSERT_EQ(payload.size(), 2u);
    EXPECT_EQ(payload[1], 1000 + payload[0]);
    seen[payload[0]] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Gather, WorksPerClusterInParallel) {
  Graph g = graph::grid(4, 8);
  std::vector<int> cluster(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) cluster[v] = (v % 8) / 4;
  const auto leaders = elect_cluster_leaders(g, cluster);
  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v}});
  }
  GatherOptions opt;
  opt.net.bandwidth_tokens = 4;
  const auto r = random_walk_gather(g, cluster, leaders.leader_of, tokens, opt);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.delivered[0].size() + r.delivered[1].size(),
            static_cast<std::size_t>(g.num_vertices()));
  for (const auto& payload : r.delivered[0]) {
    EXPECT_EQ(cluster[payload[0]], 0);
  }
}

TEST(Broadcast, EveryVertexLearnsLeaderValue) {
  Graph g = graph::grid(5, 5);
  const auto cluster = single_cluster(g);
  const auto leaders = elect_cluster_leaders(g, cluster);
  std::vector<std::int64_t> values(g.num_vertices(), 0);
  values[leaders.leader_of[0]] = 42;
  const auto r = broadcast_from_leaders(g, cluster, leaders.leader_of, values);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(r.value[v], 42);
  }
}

TEST(DiameterCheck, AcceptsTightClusters) {
  Graph g = graph::grid(4, 4);  // diameter 6
  const auto r = check_cluster_diameter(g, single_cluster(g), 6);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(r.within_bound[v]);
  }
}

TEST(DiameterCheck, FlagsWideClusters) {
  Graph g = graph::path(30);  // diameter 29 >> 2*3+1
  const auto r = check_cluster_diameter(g, single_cluster(g), 3);
  int flagged = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    flagged += !r.within_bound[v];
  }
  EXPECT_GT(flagged, 0);
}

TEST(ReverseDelivery, RepliesFollowRecordedPathsBackwards) {
  Rng rng(19);
  Graph g = graph::random_maximal_planar(40, rng);
  const auto cluster = single_cluster(g);
  const auto leaders = elect_cluster_leaders(g, cluster);
  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v}});
  }
  GatherOptions opt;
  opt.net.bandwidth_tokens = 3;
  const auto gather =
      random_walk_gather(g, cluster, leaders.leader_of, tokens, opt);
  ASSERT_TRUE(gather.complete);
  // Reply to every token with 1000 + origin.
  std::vector<std::vector<std::int64_t>> reply(gather.traces.size());
  for (std::size_t id = 0; id < gather.traces.size(); ++id) {
    reply[id] = {1000 + gather.traces[id].origin};
  }
  const auto r = reverse_delivery(g.num_vertices(), gather, reply, 3);
  EXPECT_TRUE(r.load_ok);
  EXPECT_LE(r.stats.rounds, gather.stats.rounds);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(r.received[v].size(), 1u) << "vertex " << v;
    EXPECT_EQ(r.received[v][0][0], 1000 + v);
  }
  // Message count mirrors the forward hops of the replied tokens.
  EXPECT_EQ(r.stats.messages_sent,
            gather.stats.messages_sent);
}

TEST(ReverseDelivery, PartialRepliesSkipUnansweredTokens) {
  Rng rng(20);
  Graph g = graph::grid(5, 5);
  const auto cluster = single_cluster(g);
  const auto leaders = elect_cluster_leaders(g, cluster);
  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v}});
  }
  GatherOptions opt;
  opt.net.bandwidth_tokens = 4;
  const auto gather =
      random_walk_gather(g, cluster, leaders.leader_of, tokens, opt);
  ASSERT_TRUE(gather.complete);
  std::vector<std::vector<std::int64_t>> reply(gather.traces.size());
  reply[0] = {7};  // only token 0 gets a reply
  const auto r = reverse_delivery(g.num_vertices(), gather, reply, 4);
  EXPECT_TRUE(r.load_ok);
  int delivered = 0;
  for (const auto& per_vertex : r.received) {
    delivered += static_cast<int>(per_vertex.size());
  }
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(r.received[gather.traces[0].origin][0][0], 7);
}

TEST(TreeGather, DeliversAllTokensDeterministically) {
  Rng rng(21);
  Graph g = graph::random_maximal_planar(50, rng);
  const auto cluster = single_cluster(g);
  const auto leaders = elect_cluster_leaders(g, cluster);
  const auto tree = build_cluster_bfs_trees(g, cluster, leaders.leader_of);
  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v, 7 * v}});
  }
  NetworkOptions net;
  net.bandwidth_tokens = 2;
  const auto r = tree_gather(g, cluster, leaders.leader_of, tree.parent,
                             tokens, net);
  ASSERT_TRUE(r.complete);
  EXPECT_EQ(r.delivered[0].size(), static_cast<std::size_t>(g.num_vertices()));
  for (const auto& payload : r.delivered[0]) {
    EXPECT_EQ(payload[1], 7 * payload[0]);
  }
  // Determinism: a second run delivers in the same number of rounds.
  const auto r2 = tree_gather(g, cluster, leaders.leader_of, tree.parent,
                              tokens, net);
  EXPECT_EQ(r.stats.rounds, r2.stats.rounds);
}

TEST(TreeGather, RootCongestionCostsRounds) {
  // On a path rooted at one end, all n tokens serialize over the root edge:
  // rounds ~ n at bandwidth 1 — the congestion Lemma 2.5 is designed to
  // beat.
  Graph g = graph::path(40);
  std::vector<int> cluster(40, 0);
  std::vector<VertexId> leader(40, 0);
  std::vector<VertexId> parent(40);
  parent[0] = graph::kInvalidVertex;
  for (VertexId v = 1; v < 40; ++v) parent[v] = v - 1;
  std::vector<std::vector<GatherToken>> tokens(40);
  for (VertexId v = 0; v < 40; ++v) tokens[v].push_back({v, {v}});
  const auto r = tree_gather(g, cluster, leader, parent, tokens);
  ASSERT_TRUE(r.complete);
  EXPECT_GE(r.stats.rounds, 39);
}

TEST(Convergecast, SumsValuesPerCluster) {
  Graph g = graph::grid(6, 6);
  const auto cluster = single_cluster(g);
  const auto leaders = elect_cluster_leaders(g, cluster);
  const auto tree = build_cluster_bfs_trees(g, cluster, leaders.leader_of);
  std::vector<std::int64_t> values(g.num_vertices());
  std::int64_t expected = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    values[v] = v * v + 1;
    expected += values[v];
  }
  const auto r = convergecast_sum(g, cluster, leaders.leader_of, tree.parent,
                                  tree.depth, values);
  ASSERT_EQ(r.sum.size(), 1u);
  EXPECT_EQ(r.sum[0], expected);
}

TEST(Convergecast, MultiClusterSums) {
  Graph g = graph::path(6);
  std::vector<int> cluster{0, 0, 0, 1, 1, 1};
  const auto leaders = elect_cluster_leaders(g, cluster);
  const auto tree = build_cluster_bfs_trees(g, cluster, leaders.leader_of);
  std::vector<std::int64_t> values{1, 2, 4, 8, 16, 32};
  const auto r = convergecast_sum(g, cluster, leaders.leader_of, tree.parent,
                                  tree.depth, values);
  ASSERT_EQ(r.sum.size(), 2u);
  EXPECT_EQ(r.sum[0], 7);
  EXPECT_EQ(r.sum[1], 56);
}

TEST(Gather, ReportsIncompleteOnRoundCap) {
  Rng rng(23);
  Graph g = graph::random_maximal_planar(60, rng);
  const auto cluster = single_cluster(g);
  const auto leaders = elect_cluster_leaders(g, cluster);
  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    tokens[v].push_back({v, {v}});
  }
  GatherOptions opt;
  opt.net.max_rounds = 2;  // far too few: the run aborts mid-delivery
  EXPECT_THROW(
      random_walk_gather(g, cluster, leaders.leader_of, tokens, opt),
      std::runtime_error);
}

TEST(RoundLedger, SeparatesMeasuredFromModeled) {
  RoundLedger ledger;
  ledger.add_measured("gather", 10);
  ledger.add_modeled("decomposition", 100);
  ledger.add_measured("broadcast", 5);
  EXPECT_EQ(ledger.measured_total(), 15);
  EXPECT_EQ(ledger.modeled_total(), 100);
  EXPECT_EQ(ledger.total(), 115);
  RoundLedger other;
  other.add_measured("extra", 1);
  ledger.merge(other);
  EXPECT_EQ(ledger.measured_total(), 16);
  EXPECT_NE(ledger.to_string().find("[modeled]"), std::string::npos);
}

TEST(RoundLedger, AddMeasuredFromStatsRecordsTraffic) {
  RunStats stats;
  stats.rounds = 12;
  stats.messages_sent = 340;
  stats.words_sent = 900;
  stats.max_edge_load = 3;
  RoundLedger ledger;
  ledger.add_measured("walk gather", stats);
  EXPECT_EQ(ledger.measured_total(), 12);
  ASSERT_EQ(ledger.entries().size(), 1u);
  const auto& e = ledger.entries()[0];
  EXPECT_TRUE(e.measured);
  EXPECT_EQ(e.stats.rounds, 12);
  EXPECT_EQ(e.stats.messages_sent, 340);
  EXPECT_EQ(e.stats.words_sent, 900);
  EXPECT_EQ(e.stats.max_edge_load, 3);
}

TEST(RoundLedger, MergePreservesTrafficStats) {
  RunStats stats;
  stats.rounds = 4;
  stats.messages_sent = 10;
  stats.words_sent = 25;
  stats.max_edge_load = 2;
  RoundLedger other;
  other.add_measured("election", stats);
  other.add_modeled("decomposition", 50);
  RoundLedger ledger;
  ledger.add_measured("setup", 1);
  ledger.merge(other);
  EXPECT_EQ(ledger.measured_total(), 5);
  EXPECT_EQ(ledger.modeled_total(), 50);
  ASSERT_EQ(ledger.entries().size(), 3u);
  EXPECT_EQ(ledger.entries()[1].stats.messages_sent, 10);
  EXPECT_EQ(ledger.entries()[1].stats.words_sent, 25);
  EXPECT_EQ(ledger.entries()[1].stats.max_edge_load, 2);
}

TEST(RoundLedger, ToStringShowsTrafficOnlyWhenRecorded) {
  RunStats stats;
  stats.rounds = 2;
  stats.messages_sent = 7;
  stats.words_sent = 14;
  stats.max_edge_load = 1;
  RoundLedger ledger;
  ledger.add_measured("plain", 3);
  ledger.add_measured("traced", stats);
  const std::string text = ledger.to_string();
  EXPECT_NE(text.find("msgs=7 words=14 max-edge-load=1"), std::string::npos)
      << text;
  // The stats-free entry stays on the old compact format.
  const auto plain_pos = text.find("plain");
  const auto traced_pos = text.find("traced");
  ASSERT_NE(plain_pos, std::string::npos);
  ASSERT_NE(traced_pos, std::string::npos);
  EXPECT_EQ(text.substr(plain_pos, traced_pos - plain_pos).find("msgs="),
            std::string::npos);
}

TEST(RoundLedger, ModeledFormulaGrowsWithNAndShrinkingEps) {
  EXPECT_LT(modeled_decomposition_rounds(1000, 0.2, false),
            modeled_decomposition_rounds(100000, 0.2, false));
  EXPECT_LT(modeled_decomposition_rounds(1000, 0.2, false),
            modeled_decomposition_rounds(1000, 0.05, false));
  // Deterministic formula is subpolynomial but larger than polylog.
  EXPECT_GT(modeled_decomposition_rounds(100000, 0.2, true),
            modeled_decomposition_rounds(100000, 0.2, false));
}

// Integration: primitives run on decomposition clusters under strict
// CONGEST enforcement (bandwidth 1 token/edge/round for control traffic).
// The primitives run unchanged under parallel execution: leader election,
// BFS trees, and orientation at num_threads=4 must produce bit-identical
// outputs and RunStats to the serial path (the TSan CI job runs this test
// to prove the sharded round loop is race-free on real protocol traffic).
TEST(Integration, PrimitivesAreBitIdenticalUnderParallelExecution) {
  Rng rng(31);
  const Graph g = graph::random_maximal_planar(128, rng);
  std::vector<int> cluster(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) cluster[v] = v % 2;

  NetworkOptions parallel_net;
  parallel_net.num_threads = 4;

  const auto serial_leaders = elect_cluster_leaders(g, cluster);
  const auto par_leaders = elect_cluster_leaders(g, cluster, parallel_net);
  EXPECT_EQ(par_leaders.leader_of, serial_leaders.leader_of);
  EXPECT_EQ(par_leaders.stats.rounds, serial_leaders.stats.rounds);
  EXPECT_EQ(par_leaders.stats.messages_sent, serial_leaders.stats.messages_sent);
  EXPECT_EQ(par_leaders.stats.words_sent, serial_leaders.stats.words_sent);
  EXPECT_EQ(par_leaders.stats.max_edge_load, serial_leaders.stats.max_edge_load);

  const auto serial_tree =
      build_cluster_bfs_trees(g, cluster, serial_leaders.leader_of);
  const auto par_tree = build_cluster_bfs_trees(g, cluster,
                                                par_leaders.leader_of,
                                                parallel_net);
  EXPECT_EQ(par_tree.parent, serial_tree.parent);
  EXPECT_EQ(par_tree.depth, serial_tree.depth);
  EXPECT_EQ(par_tree.stats.messages_sent, serial_tree.stats.messages_sent);

  const auto serial_orient = orient_cluster_edges(g, cluster, 5);
  const auto par_orient = orient_cluster_edges(g, cluster, 5, parallel_net);
  EXPECT_EQ(par_orient.owned, serial_orient.owned);
  EXPECT_EQ(par_orient.max_out_degree, serial_orient.max_out_degree);
  EXPECT_EQ(par_orient.stats.messages_sent, serial_orient.stats.messages_sent);
}

TEST(Integration, PrimitivesOnDecomposedGrid) {
  Graph g = graph::grid(10, 10);
  const auto d = expander::expander_decompose(g, 0.25);
  const auto leaders = elect_cluster_leaders(g, d.cluster_of);
  const auto tree = build_cluster_bfs_trees(g, d.cluster_of, leaders.leader_of);
  const auto orient = orient_cluster_edges(g, d.cluster_of, 4);
  // Gather each owned edge to the leader: reconstruct every cluster's edges.
  std::vector<std::vector<GatherToken>> tokens(g.num_vertices());
  std::int64_t expected_edges = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (graph::EdgeId e : orient.owned[v]) {
      tokens[v].push_back({v, {g.edge(e).u, g.edge(e).v}});
      ++expected_edges;
    }
  }
  GatherOptions opt;
  opt.net.bandwidth_tokens = 7;  // ceil(log2 n), the Lemma 2.4 batch size
  const auto r = random_walk_gather(g, d.cluster_of, leaders.leader_of,
                                    tokens, opt);
  ASSERT_TRUE(r.complete);
  std::int64_t received = 0;
  for (const auto& cluster_msgs : r.delivered) {
    received += static_cast<std::int64_t>(cluster_msgs.size());
    for (const auto& payload : cluster_msgs) {
      // Every delivered edge is intra-cluster.
      EXPECT_EQ(d.cluster_of[payload[0]], d.cluster_of[payload[1]]);
    }
  }
  EXPECT_EQ(received, expected_edges);
  EXPECT_GT(tree.stats.rounds, 0);
}

}  // namespace
}  // namespace ecd::congest
