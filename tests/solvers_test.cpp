// Dedicated tests for the sequential solver substrates (src/seq) that the
// application suites exercise only indirectly: exact MIS, correlation
// clustering, separators, and LDD.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"
#include "src/seq/correlation.h"
#include "src/seq/ldd.h"
#include "src/seq/mis.h"
#include "src/seq/separator.h"

namespace ecd::seq {
namespace {

using graph::Graph;
using graph::Rng;
using graph::VertexId;

// ---------------- Exact MIS -----------------------------------------------------

TEST(ExactMis, KnownValues) {
  ASSERT_TRUE(max_independent_set_exact(graph::path(5)).has_value());
  EXPECT_EQ(max_independent_set_exact(graph::path(5))->size(), 3u);
  EXPECT_EQ(max_independent_set_exact(graph::cycle(7))->size(), 3u);
  EXPECT_EQ(max_independent_set_exact(graph::complete(6))->size(), 1u);
  EXPECT_EQ(max_independent_set_exact(graph::star(9))->size(), 9u);
  EXPECT_EQ(max_independent_set_exact(graph::complete_bipartite(3, 5))->size(),
            5u);
  EXPECT_EQ(max_independent_set_exact(graph::grid(4, 4))->size(), 8u);
}

TEST(ExactMis, MatchesBruteForceOnRandomGraphs) {
  Rng rng(1);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 5 + static_cast<int>(rng() % 10);  // 5..14
    const Graph g = graph::erdos_renyi(n, 0.3, rng);
    const auto fast = max_independent_set_exact(g);
    ASSERT_TRUE(fast.has_value());
    const auto slow = max_independent_set_bruteforce(g);
    EXPECT_TRUE(is_independent_set(g, *fast));
    EXPECT_EQ(fast->size(), slow.size()) << "trial " << trial;
  }
}

TEST(ExactMis, MatchesBruteForceOnPlanar) {
  Rng rng(2);
  for (int trial = 0; trial < 30; ++trial) {
    const Graph g = graph::random_planar(12, 20, rng);
    const auto fast = max_independent_set_exact(g);
    ASSERT_TRUE(fast.has_value());
    EXPECT_EQ(fast->size(), max_independent_set_bruteforce(g).size());
  }
}

TEST(ExactMis, BudgetExhaustionReturnsNullopt) {
  Rng rng(3);
  const Graph g = graph::random_regular(40, 8, rng);
  EXPECT_FALSE(max_independent_set_exact(g, 5).has_value());
}

TEST(GreedyMis, MeetsDensityLowerBound) {
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::random_maximal_planar(200, rng);  // density < 3
    const auto greedy = greedy_mis_min_degree(g);
    EXPECT_TRUE(is_independent_set(g, greedy));
    EXPECT_GE(greedy.size() * 7u, static_cast<std::size_t>(g.num_vertices()));
  }
}

TEST(MisLocalSearch, NeverShrinksAndStaysIndependent) {
  Rng rng(5);
  const Graph g = graph::random_planar(60, 100, rng);
  const auto start = greedy_mis_min_degree(g);
  const auto improved = mis_local_search(g, start);
  EXPECT_TRUE(is_independent_set(g, improved));
  EXPECT_GE(improved.size(), start.size());
}

TEST(BestEffortMis, FallsBackGracefully) {
  Rng rng(6);
  const Graph g = graph::random_regular(60, 8, rng);
  const auto r = best_effort_mis(g, 10);  // force the fallback
  EXPECT_FALSE(r.exact);
  EXPECT_TRUE(is_independent_set(g, r.vertices));
}

// ---------------- Correlation clustering ---------------------------------------

// Oracle: enumerate all partitions of <= 10 elements via restricted growth
// strings.
std::int64_t best_score_bruteforce(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> labels(n, 0);
  std::int64_t best = -1;
  // Restricted growth: labels[i] <= max(labels[0..i-1]) + 1.
  std::function<void(int, int)> rec = [&](int i, int max_label) {
    if (i == n) {
      best = std::max(best, agreement_score(g, labels));
      return;
    }
    for (int l = 0; l <= max_label + 1; ++l) {
      labels[i] = l;
      rec(i + 1, std::max(max_label, l));
    }
  };
  rec(0, -1);
  return best;
}

TEST(CorrelationExact, MatchesPartitionEnumeration) {
  Rng rng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 4 + static_cast<int>(rng() % 5);  // 4..8
    Graph base = graph::erdos_renyi(n, 0.5, rng);
    std::vector<graph::EdgeSign> signs(base.num_edges());
    for (auto& s : signs) {
      s = (rng() & 1) ? graph::EdgeSign::kPositive
                      : graph::EdgeSign::kNegative;
    }
    const Graph g = base.with_signs(std::move(signs));
    const auto exact = correlation_exact(g);
    EXPECT_EQ(agreement_score(g, exact), best_score_bruteforce(g))
        << "trial " << trial;
  }
}

TEST(CorrelationExact, AllPositiveMeansOneCluster) {
  const Graph g = graph::complete(6);  // unsigned = all positive
  const auto c = correlation_exact(g);
  for (int l : c) EXPECT_EQ(l, c[0]);
  EXPECT_EQ(agreement_score(g, c), g.num_edges());
}

TEST(CorrelationExact, AllNegativeMeansSingletons) {
  Graph base = graph::complete(6);
  const Graph g = base.with_signs(std::vector<graph::EdgeSign>(
      base.num_edges(), graph::EdgeSign::kNegative));
  const auto c = correlation_exact(g);
  std::vector<int> sorted(c);
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()) - sorted.begin(), 6);
  EXPECT_EQ(agreement_score(g, c), g.num_edges());
}

TEST(CorrelationLocalSearch, AtLeastTrivialBaselines) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    Graph base = graph::random_maximal_planar(60, rng);
    const Graph g =
        base.with_signs(graph::planted_signs(base, 8, 0.2, rng));
    const auto c = correlation_local_search(g);
    Clustering singles(g.num_vertices());
    std::iota(singles.begin(), singles.end(), 0);
    const auto trivial =
        std::max(agreement_score(g, singles),
                 agreement_score(g, Clustering(g.num_vertices(), 0)));
    EXPECT_GE(agreement_score(g, c), trivial);
  }
}

TEST(CorrelationScore, CountsAgreements) {
  // Path + - : clustering {0,1},{2} agrees with both edges.
  Graph g = graph::path(3).with_signs(
      {graph::EdgeSign::kPositive, graph::EdgeSign::kNegative});
  EXPECT_EQ(agreement_score(g, {0, 0, 1}), 2);
  EXPECT_EQ(agreement_score(g, {0, 0, 0}), 1);
  EXPECT_EQ(agreement_score(g, {0, 1, 2}), 1);
}

// ---------------- Edge separators ------------------------------------------------

TEST(Separator, BalancedByConstruction) {
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    const Graph g = graph::random_maximal_planar(100, rng);
    const auto r = edge_separator(g, rng);
    EXPECT_GE(r.smaller_side, g.num_vertices() / 3);
    // Reported cut matches the indicator.
    int cut = 0;
    for (const graph::Edge& e : g.edges()) {
      cut += r.in_s[e.u] != r.in_s[e.v];
    }
    EXPECT_EQ(cut, r.cut_size);
  }
}

TEST(Separator, NearOptimalOnSmallGraphs) {
  Rng rng(10);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = graph::random_planar(12, 20, rng);
    const auto heuristic = edge_separator(g, rng, 6);
    const auto exact = edge_separator_bruteforce(g);
    EXPECT_LE(heuristic.cut_size, 2 * exact.cut_size + 2) << "trial " << trial;
    EXPECT_GE(exact.smaller_side, g.num_vertices() / 3);
  }
}

TEST(Separator, GridScalesAsSqrtN) {
  Rng rng(11);
  const auto r16 = edge_separator(graph::grid(16, 16), rng);
  const auto r32 = edge_separator(graph::grid(32, 32), rng);
  // Quadrupling n should roughly double the cut, not quadruple it.
  EXPECT_LE(r32.cut_size, 3 * r16.cut_size);
}

// ---------------- Sequential LDD ----------------------------------------------------

TEST(SequentialLdd, BoundsOnFamilies) {
  Rng rng(12);
  for (double eps : {0.1, 0.2, 0.4}) {
    for (int fam = 0; fam < 3; ++fam) {
      const Graph g = fam == 0   ? graph::grid(18, 18)
                      : fam == 1 ? graph::random_maximal_planar(300, rng)
                                 : graph::cycle(300);
      const auto r = ldd_minor_free(g, eps, rng);
      EXPECT_LE(r.cut_edges, eps * g.num_edges() + 1e-9)
          << "fam=" << fam << " eps=" << eps;
      EXPECT_LE(ldd_max_diameter(g, r.cluster_of), 40.0 / eps)
          << "fam=" << fam << " eps=" << eps;
    }
  }
}

TEST(SequentialLdd, LabelsAreDenseAndCountMatches) {
  Rng rng(13);
  const Graph g = graph::random_planar(200, 350, rng);
  const auto r = ldd_minor_free(g, 0.25, rng);
  std::vector<bool> seen(r.num_clusters, false);
  for (int c : r.cluster_of) {
    ASSERT_GE(c, 0);
    ASSERT_LT(c, r.num_clusters);
    seen[c] = true;
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(SequentialLdd, RejectsBadEps) {
  Rng rng(14);
  const Graph g = graph::path(4);
  EXPECT_THROW(ldd_minor_free(g, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(ldd_minor_free(g, 1.5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace ecd::seq
