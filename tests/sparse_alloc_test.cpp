// Zero-allocation audit for the sparse-round fast path (DESIGN.md §15).
//
// The round loop's zero-allocation contract predates the sparse fast path;
// this binary proves the new machinery keeps it: per-shard active-vertex
// worklists, the member census, orphan delivery assignment, and the
// serial-fallback branch all run out of storage sized in the Network
// constructor / warmed by the first run. The flood workload is chosen so a
// single run crosses the sparse-serial threshold in both directions — the
// active set starts at n (dispatching rounds) and drains to a handful of
// unfinished vertices (fallback rounds) — so the audit covers the dispatch
// path, the fallback path, and the transition between them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "src/congest/network.h"
#include "src/congest/profiler.h"
#include "src/congest/trace.h"
#include "src/core/sweep.h"
#include "src/graph/generators.h"

// --- Counting allocation hooks ----------------------------------------------
// Same replacement pattern as profiler_test.cpp / bench_util.h: one TU per
// binary defines the global operator new/delete.

namespace {
std::atomic<std::int64_t>& allocation_counter() {
  static std::atomic<std::int64_t> count{0};
  return count;
}
std::int64_t allocation_count() {
  return allocation_counter().load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  allocation_counter().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  allocation_counter().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace ecd::congest {
namespace {

using graph::Graph;
using graph::VertexId;

// BFS flood from one corner: a vertex steps every round until the wave has
// passed it, so the active set shrinks monotonically from n toward zero and
// the run's tail sits below any reasonable sparse-serial threshold.
class FloodAlgo final : public VertexAlgorithm {
 public:
  explicit FloodAlgo(bool is_source) : source_(is_source) {}

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    if (arrival_ >= 0) return;
    if (source_) {
      arrival_ = 0;
      forward(ctx);
      return;
    }
    for (int p = 0; p < ctx.num_ports(); ++p) {
      if (!ctx.inbox(p).empty()) {
        arrival_ = ctx.round();
        forward(ctx);
        return;
      }
    }
  }
  bool finished() const override { return started_ && !sent_; }

 private:
  void forward(Context& ctx) {
    sent_ = true;
    for (int p = 0; p < ctx.num_ports(); ++p) ctx.send(p, {{arrival_}});
  }
  bool source_;
  std::int64_t arrival_ = -1;
  bool started_ = false;
  bool sent_ = false;
};

std::vector<std::unique_ptr<VertexAlgorithm>> make_flood(const Graph& g) {
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.reserve(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    algos.push_back(std::make_unique<FloodAlgo>(v == 0));
  }
  return algos;
}

TEST(SparseAlloc, SteadyStateStaysOffTheHeapAcrossBothRoundPaths) {
  for (const int threads : {1, 4}) {
    const Graph g = graph::grid(32, 32);  // 1024 vertices, wave length ~62
    ExecutionProfiler profiler;
    NetworkOptions opt;
    opt.num_threads = threads;
    opt.profiler = &profiler;
    // Default threshold (256): the flood starts with all 1024 vertices
    // queued and finishes with single-digit stragglers, so one run visits
    // dispatching rounds, fallback rounds, and the crossover.
    Network net(g, opt);
    // Warm run: worklist capacity, arena overflow, and algorithm-internal
    // vectors grow here; the audited run must then stay off the heap.
    auto warm = make_flood(g);
    net.run(warm);
    auto audit = make_flood(g);
    const std::int64_t before = allocation_count();
    net.run(audit);
    const std::int64_t delta = allocation_count() - before;
    EXPECT_EQ(delta, 0) << threads << " threads";

    if (threads > 1) {
      // The audit only means something if the run really exercised both
      // paths: every worker lane must have both computed rounds (dispatch
      // path) and sat out rounds as idle (serial fallback).
      const ExecutionProfiler::Summary s = profiler.summary();
      ASSERT_EQ(s.num_shards, threads);
      for (int shard = 1; shard < s.num_shards; ++shard) {
        EXPECT_GT(s.shards[shard].totals.phase_ns[kProfileCompute], 0)
            << "lane " << shard << " never took the dispatch path";
        EXPECT_GT(s.shards[shard].totals.phase_ns[kProfileIdle], 0)
            << "lane " << shard << " never sat out a fallback round";
      }
    }
  }
}

// A churn plan widens the port CSR at construction (preallocated capacity
// for the schedule's inserts) and the round loop applies events, drops
// dead-port sends, and purges stranded traffic — all of which must stay
// inside the constructor's storage. The reseed is part of the warm-run
// protocol the sweep engine uses, so it is audited too.
TEST(SparseAlloc, ChurnRoundsStayOffTheHeap) {
  for (const int threads : {1, 4}) {
    const Graph g = graph::grid(32, 32);
    NetworkOptions opt;
    opt.num_threads = threads;
    opt.faults.seed = 1;
    opt.faults.drop_probability = 0.02;  // message faults alongside churn
    opt.faults.churn =
        ecd::core::make_churn_plan(g, /*topo_seed=*/3, /*churn_permille=*/80);
    Network net(g, opt);
    auto warm = make_flood(g);
    const RunStats warm_stats = net.run(warm);
    ASSERT_GT(warm_stats.churn_events, 0);
    auto audit = make_flood(g);
    const std::int64_t before = allocation_count();
    net.set_fault_seed(2);
    const RunStats stats = net.run(audit);
    const std::int64_t delta = allocation_count() - before;
    EXPECT_EQ(delta, 0) << threads << " threads";
    EXPECT_EQ(stats.churn_events, warm_stats.churn_events);
  }
}

// Tracing is part of the same contract (DESIGN.md §18): the sharded trace
// lanes, the replay merge index, and the flight recorder's ring are all
// sized in the constructor, so a traced round — full, sampled, or both, at
// any thread count — allocates nothing after warm-up. MetricsCollector is
// deliberately out of scope here: it aggregates into growing containers by
// design; FlightRecorder is the bounded sink this audit covers.
TEST(SparseAlloc, TracedRoundsStayOffTheHeapInEveryTraceMode) {
  struct Mode {
    const char* name;
    TraceConfig config;
  };
  const Mode modes[] = {
      {"full", {}},
      {"sampled", {/*round_period=*/4, /*vertex_stride=*/2, /*tag_filter=*/-1}},
  };
  for (const int threads : {1, 4}) {
    for (const Mode& mode : modes) {
      const Graph g = graph::grid(32, 32);
      FlightRecorder::Options ropt;
      ropt.ring_capacity = 1 << 12;
      ropt.keep_rounds = 16;
      FlightRecorder recorder(ropt);
      NetworkOptions opt;
      opt.num_threads = threads;
      opt.trace = &recorder;
      opt.trace_config = mode.config;
      Network net(g, opt);
      auto warm = make_flood(g);
      net.run(warm);
      auto audit = make_flood(g);
      const std::int64_t before = allocation_count();
      net.run(audit);
      const std::int64_t delta = allocation_count() - before;
      EXPECT_EQ(delta, 0) << mode.name << " @ " << threads << " threads";
      EXPECT_GT(recorder.events_retained(), 0);
    }
  }
}

}  // namespace
}  // namespace ecd::congest
