file(REMOVE_RECURSE
  "../bench/bench_routing"
  "../bench/bench_routing.pdb"
  "CMakeFiles/bench_routing.dir/bench_routing.cpp.o"
  "CMakeFiles/bench_routing.dir/bench_routing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
