# Empty dependencies file for bench_high_degree.
# This may be replaced when dependencies are built.
