file(REMOVE_RECURSE
  "../bench/bench_high_degree"
  "../bench/bench_high_degree.pdb"
  "CMakeFiles/bench_high_degree.dir/bench_high_degree.cpp.o"
  "CMakeFiles/bench_high_degree.dir/bench_high_degree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_high_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
