file(REMOVE_RECURSE
  "../bench/bench_triangles"
  "../bench/bench_triangles.pdb"
  "CMakeFiles/bench_triangles.dir/bench_triangles.cpp.o"
  "CMakeFiles/bench_triangles.dir/bench_triangles.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_triangles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
