# Empty compiler generated dependencies file for bench_triangles.
# This may be replaced when dependencies are built.
