file(REMOVE_RECURSE
  "../bench/bench_decomposition"
  "../bench/bench_decomposition.pdb"
  "CMakeFiles/bench_decomposition.dir/bench_decomposition.cpp.o"
  "CMakeFiles/bench_decomposition.dir/bench_decomposition.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
