# Empty dependencies file for bench_decomposition.
# This may be replaced when dependencies are built.
