file(REMOVE_RECURSE
  "../bench/bench_property_testing"
  "../bench/bench_property_testing.pdb"
  "CMakeFiles/bench_property_testing.dir/bench_property_testing.cpp.o"
  "CMakeFiles/bench_property_testing.dir/bench_property_testing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_property_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
