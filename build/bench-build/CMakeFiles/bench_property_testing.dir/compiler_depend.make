# Empty compiler generated dependencies file for bench_property_testing.
# This may be replaced when dependencies are built.
