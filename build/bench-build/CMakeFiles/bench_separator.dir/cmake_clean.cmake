file(REMOVE_RECURSE
  "../bench/bench_separator"
  "../bench/bench_separator.pdb"
  "CMakeFiles/bench_separator.dir/bench_separator.cpp.o"
  "CMakeFiles/bench_separator.dir/bench_separator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_separator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
