# Empty dependencies file for bench_separator.
# This may be replaced when dependencies are built.
