
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_separator.cpp" "bench-build/CMakeFiles/bench_separator.dir/bench_separator.cpp.o" "gcc" "bench-build/CMakeFiles/bench_separator.dir/bench_separator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ecd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/expander/CMakeFiles/ecd_expander.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ecd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/ecd_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/congest/CMakeFiles/ecd_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/ecd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
