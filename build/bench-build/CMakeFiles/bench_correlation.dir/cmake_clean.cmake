file(REMOVE_RECURSE
  "../bench/bench_correlation"
  "../bench/bench_correlation.pdb"
  "CMakeFiles/bench_correlation.dir/bench_correlation.cpp.o"
  "CMakeFiles/bench_correlation.dir/bench_correlation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
