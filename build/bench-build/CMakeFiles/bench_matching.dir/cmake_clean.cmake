file(REMOVE_RECURSE
  "../bench/bench_matching"
  "../bench/bench_matching.pdb"
  "CMakeFiles/bench_matching.dir/bench_matching.cpp.o"
  "CMakeFiles/bench_matching.dir/bench_matching.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
