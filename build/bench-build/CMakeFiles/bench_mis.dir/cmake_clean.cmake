file(REMOVE_RECURSE
  "../bench/bench_mis"
  "../bench/bench_mis.pdb"
  "CMakeFiles/bench_mis.dir/bench_mis.cpp.o"
  "CMakeFiles/bench_mis.dir/bench_mis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
