# Empty dependencies file for bench_mis.
# This may be replaced when dependencies are built.
