file(REMOVE_RECURSE
  "../bench/bench_mwm"
  "../bench/bench_mwm.pdb"
  "CMakeFiles/bench_mwm.dir/bench_mwm.cpp.o"
  "CMakeFiles/bench_mwm.dir/bench_mwm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mwm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
