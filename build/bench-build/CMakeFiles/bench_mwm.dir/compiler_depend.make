# Empty compiler generated dependencies file for bench_mwm.
# This may be replaced when dependencies are built.
