file(REMOVE_RECURSE
  "../bench/bench_ldd"
  "../bench/bench_ldd.pdb"
  "CMakeFiles/bench_ldd.dir/bench_ldd.cpp.o"
  "CMakeFiles/bench_ldd.dir/bench_ldd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ldd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
