# Empty compiler generated dependencies file for bench_ldd.
# This may be replaced when dependencies are built.
