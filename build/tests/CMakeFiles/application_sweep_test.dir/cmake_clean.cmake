file(REMOVE_RECURSE
  "CMakeFiles/application_sweep_test.dir/application_sweep_test.cpp.o"
  "CMakeFiles/application_sweep_test.dir/application_sweep_test.cpp.o.d"
  "application_sweep_test"
  "application_sweep_test.pdb"
  "application_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/application_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
