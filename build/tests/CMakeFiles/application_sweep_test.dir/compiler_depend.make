# Empty compiler generated dependencies file for application_sweep_test.
# This may be replaced when dependencies are built.
