# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for application_sweep_test.
