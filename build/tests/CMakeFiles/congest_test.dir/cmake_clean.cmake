file(REMOVE_RECURSE
  "CMakeFiles/congest_test.dir/congest_test.cpp.o"
  "CMakeFiles/congest_test.dir/congest_test.cpp.o.d"
  "congest_test"
  "congest_test.pdb"
  "congest_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
