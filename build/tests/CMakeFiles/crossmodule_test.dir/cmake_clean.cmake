file(REMOVE_RECURSE
  "CMakeFiles/crossmodule_test.dir/crossmodule_test.cpp.o"
  "CMakeFiles/crossmodule_test.dir/crossmodule_test.cpp.o.d"
  "crossmodule_test"
  "crossmodule_test.pdb"
  "crossmodule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crossmodule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
