# Empty dependencies file for crossmodule_test.
# This may be replaced when dependencies are built.
