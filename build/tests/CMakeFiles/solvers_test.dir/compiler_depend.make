# Empty compiler generated dependencies file for solvers_test.
# This may be replaced when dependencies are built.
