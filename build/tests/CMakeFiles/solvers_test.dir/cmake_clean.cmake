file(REMOVE_RECURSE
  "CMakeFiles/solvers_test.dir/solvers_test.cpp.o"
  "CMakeFiles/solvers_test.dir/solvers_test.cpp.o.d"
  "solvers_test"
  "solvers_test.pdb"
  "solvers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solvers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
