file(REMOVE_RECURSE
  "CMakeFiles/property_suite_test.dir/property_suite_test.cpp.o"
  "CMakeFiles/property_suite_test.dir/property_suite_test.cpp.o.d"
  "property_suite_test"
  "property_suite_test.pdb"
  "property_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
