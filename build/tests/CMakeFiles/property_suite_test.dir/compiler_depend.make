# Empty compiler generated dependencies file for property_suite_test.
# This may be replaced when dependencies are built.
