file(REMOVE_RECURSE
  "CMakeFiles/planarity_test.dir/planarity_test.cpp.o"
  "CMakeFiles/planarity_test.dir/planarity_test.cpp.o.d"
  "planarity_test"
  "planarity_test.pdb"
  "planarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
