# Empty compiler generated dependencies file for planarity_test.
# This may be replaced when dependencies are built.
