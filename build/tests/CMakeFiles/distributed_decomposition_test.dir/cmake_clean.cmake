file(REMOVE_RECURSE
  "CMakeFiles/distributed_decomposition_test.dir/distributed_decomposition_test.cpp.o"
  "CMakeFiles/distributed_decomposition_test.dir/distributed_decomposition_test.cpp.o.d"
  "distributed_decomposition_test"
  "distributed_decomposition_test.pdb"
  "distributed_decomposition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_decomposition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
