# Empty dependencies file for distributed_decomposition_test.
# This may be replaced when dependencies are built.
