# Empty compiler generated dependencies file for matching_test.
# This may be replaced when dependencies are built.
