file(REMOVE_RECURSE
  "CMakeFiles/matching_test.dir/matching_test.cpp.o"
  "CMakeFiles/matching_test.dir/matching_test.cpp.o.d"
  "matching_test"
  "matching_test.pdb"
  "matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
