file(REMOVE_RECURSE
  "CMakeFiles/multicluster_test.dir/multicluster_test.cpp.o"
  "CMakeFiles/multicluster_test.dir/multicluster_test.cpp.o.d"
  "multicluster_test"
  "multicluster_test.pdb"
  "multicluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multicluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
