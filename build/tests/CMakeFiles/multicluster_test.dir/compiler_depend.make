# Empty compiler generated dependencies file for multicluster_test.
# This may be replaced when dependencies are built.
