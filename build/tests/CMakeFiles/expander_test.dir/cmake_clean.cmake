file(REMOVE_RECURSE
  "CMakeFiles/expander_test.dir/expander_test.cpp.o"
  "CMakeFiles/expander_test.dir/expander_test.cpp.o.d"
  "expander_test"
  "expander_test.pdb"
  "expander_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expander_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
