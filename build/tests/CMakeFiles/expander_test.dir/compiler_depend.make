# Empty compiler generated dependencies file for expander_test.
# This may be replaced when dependencies are built.
