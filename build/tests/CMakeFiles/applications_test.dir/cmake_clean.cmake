file(REMOVE_RECURSE
  "CMakeFiles/applications_test.dir/applications_test.cpp.o"
  "CMakeFiles/applications_test.dir/applications_test.cpp.o.d"
  "applications_test"
  "applications_test.pdb"
  "applications_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applications_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
