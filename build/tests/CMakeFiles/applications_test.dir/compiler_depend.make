# Empty compiler generated dependencies file for applications_test.
# This may be replaced when dependencies are built.
