# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/matching_test[1]_include.cmake")
include("/root/repo/build/tests/planarity_test[1]_include.cmake")
include("/root/repo/build/tests/expander_test[1]_include.cmake")
include("/root/repo/build/tests/congest_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/applications_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/multicluster_test[1]_include.cmake")
include("/root/repo/build/tests/property_suite_test[1]_include.cmake")
include("/root/repo/build/tests/solvers_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/distributed_decomposition_test[1]_include.cmake")
include("/root/repo/build/tests/crossmodule_test[1]_include.cmake")
include("/root/repo/build/tests/application_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/endtoend_test[1]_include.cmake")
