file(REMOVE_RECURSE
  "CMakeFiles/planar_roadnet_matching.dir/planar_roadnet_matching.cpp.o"
  "CMakeFiles/planar_roadnet_matching.dir/planar_roadnet_matching.cpp.o.d"
  "planar_roadnet_matching"
  "planar_roadnet_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/planar_roadnet_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
