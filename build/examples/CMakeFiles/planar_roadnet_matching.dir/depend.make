# Empty dependencies file for planar_roadnet_matching.
# This may be replaced when dependencies are built.
