# Empty dependencies file for network_property_audit.
# This may be replaced when dependencies are built.
