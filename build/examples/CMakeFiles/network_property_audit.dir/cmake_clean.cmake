file(REMOVE_RECURSE
  "CMakeFiles/network_property_audit.dir/network_property_audit.cpp.o"
  "CMakeFiles/network_property_audit.dir/network_property_audit.cpp.o.d"
  "network_property_audit"
  "network_property_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_property_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
