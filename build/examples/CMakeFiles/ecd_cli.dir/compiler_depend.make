# Empty compiler generated dependencies file for ecd_cli.
# This may be replaced when dependencies are built.
