file(REMOVE_RECURSE
  "CMakeFiles/ecd_cli.dir/ecd_cli.cpp.o"
  "CMakeFiles/ecd_cli.dir/ecd_cli.cpp.o.d"
  "ecd_cli"
  "ecd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
