file(REMOVE_RECURSE
  "CMakeFiles/triangle_census.dir/triangle_census.cpp.o"
  "CMakeFiles/triangle_census.dir/triangle_census.cpp.o.d"
  "triangle_census"
  "triangle_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triangle_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
