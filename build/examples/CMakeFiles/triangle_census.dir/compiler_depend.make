# Empty compiler generated dependencies file for triangle_census.
# This may be replaced when dependencies are built.
