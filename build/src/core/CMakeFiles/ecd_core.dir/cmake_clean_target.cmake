file(REMOVE_RECURSE
  "libecd_core.a"
)
