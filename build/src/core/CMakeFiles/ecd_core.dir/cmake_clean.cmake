file(REMOVE_RECURSE
  "CMakeFiles/ecd_core.dir/correlation.cpp.o"
  "CMakeFiles/ecd_core.dir/correlation.cpp.o.d"
  "CMakeFiles/ecd_core.dir/framework.cpp.o"
  "CMakeFiles/ecd_core.dir/framework.cpp.o.d"
  "CMakeFiles/ecd_core.dir/ldd.cpp.o"
  "CMakeFiles/ecd_core.dir/ldd.cpp.o.d"
  "CMakeFiles/ecd_core.dir/matching.cpp.o"
  "CMakeFiles/ecd_core.dir/matching.cpp.o.d"
  "CMakeFiles/ecd_core.dir/mis.cpp.o"
  "CMakeFiles/ecd_core.dir/mis.cpp.o.d"
  "CMakeFiles/ecd_core.dir/mwm.cpp.o"
  "CMakeFiles/ecd_core.dir/mwm.cpp.o.d"
  "CMakeFiles/ecd_core.dir/property_testing.cpp.o"
  "CMakeFiles/ecd_core.dir/property_testing.cpp.o.d"
  "CMakeFiles/ecd_core.dir/triangles.cpp.o"
  "CMakeFiles/ecd_core.dir/triangles.cpp.o.d"
  "libecd_core.a"
  "libecd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
