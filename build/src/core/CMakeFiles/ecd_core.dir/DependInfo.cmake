
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/correlation.cpp" "src/core/CMakeFiles/ecd_core.dir/correlation.cpp.o" "gcc" "src/core/CMakeFiles/ecd_core.dir/correlation.cpp.o.d"
  "/root/repo/src/core/framework.cpp" "src/core/CMakeFiles/ecd_core.dir/framework.cpp.o" "gcc" "src/core/CMakeFiles/ecd_core.dir/framework.cpp.o.d"
  "/root/repo/src/core/ldd.cpp" "src/core/CMakeFiles/ecd_core.dir/ldd.cpp.o" "gcc" "src/core/CMakeFiles/ecd_core.dir/ldd.cpp.o.d"
  "/root/repo/src/core/matching.cpp" "src/core/CMakeFiles/ecd_core.dir/matching.cpp.o" "gcc" "src/core/CMakeFiles/ecd_core.dir/matching.cpp.o.d"
  "/root/repo/src/core/mis.cpp" "src/core/CMakeFiles/ecd_core.dir/mis.cpp.o" "gcc" "src/core/CMakeFiles/ecd_core.dir/mis.cpp.o.d"
  "/root/repo/src/core/mwm.cpp" "src/core/CMakeFiles/ecd_core.dir/mwm.cpp.o" "gcc" "src/core/CMakeFiles/ecd_core.dir/mwm.cpp.o.d"
  "/root/repo/src/core/property_testing.cpp" "src/core/CMakeFiles/ecd_core.dir/property_testing.cpp.o" "gcc" "src/core/CMakeFiles/ecd_core.dir/property_testing.cpp.o.d"
  "/root/repo/src/core/triangles.cpp" "src/core/CMakeFiles/ecd_core.dir/triangles.cpp.o" "gcc" "src/core/CMakeFiles/ecd_core.dir/triangles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ecd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/ecd_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/expander/CMakeFiles/ecd_expander.dir/DependInfo.cmake"
  "/root/repo/build/src/congest/CMakeFiles/ecd_congest.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
