# Empty compiler generated dependencies file for ecd_core.
# This may be replaced when dependencies are built.
