file(REMOVE_RECURSE
  "CMakeFiles/ecd_baselines.dir/local_gather.cpp.o"
  "CMakeFiles/ecd_baselines.dir/local_gather.cpp.o.d"
  "CMakeFiles/ecd_baselines.dir/luby_mis.cpp.o"
  "CMakeFiles/ecd_baselines.dir/luby_mis.cpp.o.d"
  "CMakeFiles/ecd_baselines.dir/maximal_matching.cpp.o"
  "CMakeFiles/ecd_baselines.dir/maximal_matching.cpp.o.d"
  "CMakeFiles/ecd_baselines.dir/mpx_ldd.cpp.o"
  "CMakeFiles/ecd_baselines.dir/mpx_ldd.cpp.o.d"
  "CMakeFiles/ecd_baselines.dir/pivot_correlation.cpp.o"
  "CMakeFiles/ecd_baselines.dir/pivot_correlation.cpp.o.d"
  "libecd_baselines.a"
  "libecd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
