
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/local_gather.cpp" "src/baselines/CMakeFiles/ecd_baselines.dir/local_gather.cpp.o" "gcc" "src/baselines/CMakeFiles/ecd_baselines.dir/local_gather.cpp.o.d"
  "/root/repo/src/baselines/luby_mis.cpp" "src/baselines/CMakeFiles/ecd_baselines.dir/luby_mis.cpp.o" "gcc" "src/baselines/CMakeFiles/ecd_baselines.dir/luby_mis.cpp.o.d"
  "/root/repo/src/baselines/maximal_matching.cpp" "src/baselines/CMakeFiles/ecd_baselines.dir/maximal_matching.cpp.o" "gcc" "src/baselines/CMakeFiles/ecd_baselines.dir/maximal_matching.cpp.o.d"
  "/root/repo/src/baselines/mpx_ldd.cpp" "src/baselines/CMakeFiles/ecd_baselines.dir/mpx_ldd.cpp.o" "gcc" "src/baselines/CMakeFiles/ecd_baselines.dir/mpx_ldd.cpp.o.d"
  "/root/repo/src/baselines/pivot_correlation.cpp" "src/baselines/CMakeFiles/ecd_baselines.dir/pivot_correlation.cpp.o" "gcc" "src/baselines/CMakeFiles/ecd_baselines.dir/pivot_correlation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ecd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/congest/CMakeFiles/ecd_congest.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/ecd_seq.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
