# Empty compiler generated dependencies file for ecd_baselines.
# This may be replaced when dependencies are built.
