file(REMOVE_RECURSE
  "libecd_baselines.a"
)
