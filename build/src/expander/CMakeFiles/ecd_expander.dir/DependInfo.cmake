
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/expander/conductance.cpp" "src/expander/CMakeFiles/ecd_expander.dir/conductance.cpp.o" "gcc" "src/expander/CMakeFiles/ecd_expander.dir/conductance.cpp.o.d"
  "/root/repo/src/expander/decomposition.cpp" "src/expander/CMakeFiles/ecd_expander.dir/decomposition.cpp.o" "gcc" "src/expander/CMakeFiles/ecd_expander.dir/decomposition.cpp.o.d"
  "/root/repo/src/expander/distributed_decomposition.cpp" "src/expander/CMakeFiles/ecd_expander.dir/distributed_decomposition.cpp.o" "gcc" "src/expander/CMakeFiles/ecd_expander.dir/distributed_decomposition.cpp.o.d"
  "/root/repo/src/expander/random_walk.cpp" "src/expander/CMakeFiles/ecd_expander.dir/random_walk.cpp.o" "gcc" "src/expander/CMakeFiles/ecd_expander.dir/random_walk.cpp.o.d"
  "/root/repo/src/expander/sweep_cut.cpp" "src/expander/CMakeFiles/ecd_expander.dir/sweep_cut.cpp.o" "gcc" "src/expander/CMakeFiles/ecd_expander.dir/sweep_cut.cpp.o.d"
  "/root/repo/src/expander/weighted.cpp" "src/expander/CMakeFiles/ecd_expander.dir/weighted.cpp.o" "gcc" "src/expander/CMakeFiles/ecd_expander.dir/weighted.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ecd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
