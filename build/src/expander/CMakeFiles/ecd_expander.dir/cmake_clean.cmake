file(REMOVE_RECURSE
  "CMakeFiles/ecd_expander.dir/conductance.cpp.o"
  "CMakeFiles/ecd_expander.dir/conductance.cpp.o.d"
  "CMakeFiles/ecd_expander.dir/decomposition.cpp.o"
  "CMakeFiles/ecd_expander.dir/decomposition.cpp.o.d"
  "CMakeFiles/ecd_expander.dir/distributed_decomposition.cpp.o"
  "CMakeFiles/ecd_expander.dir/distributed_decomposition.cpp.o.d"
  "CMakeFiles/ecd_expander.dir/random_walk.cpp.o"
  "CMakeFiles/ecd_expander.dir/random_walk.cpp.o.d"
  "CMakeFiles/ecd_expander.dir/sweep_cut.cpp.o"
  "CMakeFiles/ecd_expander.dir/sweep_cut.cpp.o.d"
  "CMakeFiles/ecd_expander.dir/weighted.cpp.o"
  "CMakeFiles/ecd_expander.dir/weighted.cpp.o.d"
  "libecd_expander.a"
  "libecd_expander.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecd_expander.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
