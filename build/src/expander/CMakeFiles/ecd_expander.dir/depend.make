# Empty dependencies file for ecd_expander.
# This may be replaced when dependencies are built.
