file(REMOVE_RECURSE
  "libecd_expander.a"
)
