# Empty dependencies file for ecd_congest.
# This may be replaced when dependencies are built.
