file(REMOVE_RECURSE
  "CMakeFiles/ecd_congest.dir/network.cpp.o"
  "CMakeFiles/ecd_congest.dir/network.cpp.o.d"
  "CMakeFiles/ecd_congest.dir/primitives.cpp.o"
  "CMakeFiles/ecd_congest.dir/primitives.cpp.o.d"
  "CMakeFiles/ecd_congest.dir/round_ledger.cpp.o"
  "CMakeFiles/ecd_congest.dir/round_ledger.cpp.o.d"
  "libecd_congest.a"
  "libecd_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecd_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
