file(REMOVE_RECURSE
  "libecd_congest.a"
)
