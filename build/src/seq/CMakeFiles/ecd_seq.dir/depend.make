# Empty dependencies file for ecd_seq.
# This may be replaced when dependencies are built.
