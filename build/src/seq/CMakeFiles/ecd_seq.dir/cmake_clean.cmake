file(REMOVE_RECURSE
  "CMakeFiles/ecd_seq.dir/correlation.cpp.o"
  "CMakeFiles/ecd_seq.dir/correlation.cpp.o.d"
  "CMakeFiles/ecd_seq.dir/demoucron.cpp.o"
  "CMakeFiles/ecd_seq.dir/demoucron.cpp.o.d"
  "CMakeFiles/ecd_seq.dir/ldd.cpp.o"
  "CMakeFiles/ecd_seq.dir/ldd.cpp.o.d"
  "CMakeFiles/ecd_seq.dir/matching.cpp.o"
  "CMakeFiles/ecd_seq.dir/matching.cpp.o.d"
  "CMakeFiles/ecd_seq.dir/minor.cpp.o"
  "CMakeFiles/ecd_seq.dir/minor.cpp.o.d"
  "CMakeFiles/ecd_seq.dir/mis.cpp.o"
  "CMakeFiles/ecd_seq.dir/mis.cpp.o.d"
  "CMakeFiles/ecd_seq.dir/mwm.cpp.o"
  "CMakeFiles/ecd_seq.dir/mwm.cpp.o.d"
  "CMakeFiles/ecd_seq.dir/planarity.cpp.o"
  "CMakeFiles/ecd_seq.dir/planarity.cpp.o.d"
  "CMakeFiles/ecd_seq.dir/properties.cpp.o"
  "CMakeFiles/ecd_seq.dir/properties.cpp.o.d"
  "CMakeFiles/ecd_seq.dir/separator.cpp.o"
  "CMakeFiles/ecd_seq.dir/separator.cpp.o.d"
  "libecd_seq.a"
  "libecd_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecd_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
