file(REMOVE_RECURSE
  "libecd_seq.a"
)
