
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seq/correlation.cpp" "src/seq/CMakeFiles/ecd_seq.dir/correlation.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/correlation.cpp.o.d"
  "/root/repo/src/seq/demoucron.cpp" "src/seq/CMakeFiles/ecd_seq.dir/demoucron.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/demoucron.cpp.o.d"
  "/root/repo/src/seq/ldd.cpp" "src/seq/CMakeFiles/ecd_seq.dir/ldd.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/ldd.cpp.o.d"
  "/root/repo/src/seq/matching.cpp" "src/seq/CMakeFiles/ecd_seq.dir/matching.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/matching.cpp.o.d"
  "/root/repo/src/seq/minor.cpp" "src/seq/CMakeFiles/ecd_seq.dir/minor.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/minor.cpp.o.d"
  "/root/repo/src/seq/mis.cpp" "src/seq/CMakeFiles/ecd_seq.dir/mis.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/mis.cpp.o.d"
  "/root/repo/src/seq/mwm.cpp" "src/seq/CMakeFiles/ecd_seq.dir/mwm.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/mwm.cpp.o.d"
  "/root/repo/src/seq/planarity.cpp" "src/seq/CMakeFiles/ecd_seq.dir/planarity.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/planarity.cpp.o.d"
  "/root/repo/src/seq/properties.cpp" "src/seq/CMakeFiles/ecd_seq.dir/properties.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/properties.cpp.o.d"
  "/root/repo/src/seq/separator.cpp" "src/seq/CMakeFiles/ecd_seq.dir/separator.cpp.o" "gcc" "src/seq/CMakeFiles/ecd_seq.dir/separator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/ecd_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
