file(REMOVE_RECURSE
  "CMakeFiles/ecd_graph.dir/generators.cpp.o"
  "CMakeFiles/ecd_graph.dir/generators.cpp.o.d"
  "CMakeFiles/ecd_graph.dir/graph.cpp.o"
  "CMakeFiles/ecd_graph.dir/graph.cpp.o.d"
  "CMakeFiles/ecd_graph.dir/io.cpp.o"
  "CMakeFiles/ecd_graph.dir/io.cpp.o.d"
  "CMakeFiles/ecd_graph.dir/metrics.cpp.o"
  "CMakeFiles/ecd_graph.dir/metrics.cpp.o.d"
  "CMakeFiles/ecd_graph.dir/subgraph.cpp.o"
  "CMakeFiles/ecd_graph.dir/subgraph.cpp.o.d"
  "libecd_graph.a"
  "libecd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
