# Empty compiler generated dependencies file for ecd_graph.
# This may be replaced when dependencies are built.
