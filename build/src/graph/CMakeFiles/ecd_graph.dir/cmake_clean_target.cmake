file(REMOVE_RECURSE
  "libecd_graph.a"
)
