#include "src/seq/matching.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace ecd::seq {

using graph::Graph;
using graph::kInvalidVertex;
using graph::VertexId;

namespace {

// Edmonds' blossom algorithm, classical O(V^3) formulation with base[]
// contraction (after Gabow's presentation).
class Blossom {
 public:
  explicit Blossom(const Graph& g)
      : g_(g),
        n_(g.num_vertices()),
        mate_(n_, kInvalidVertex),
        parent_(n_, kInvalidVertex),
        base_(n_),
        used_(n_, false),
        in_blossom_(n_, false) {}

  Mates run() {
    // Greedy warm start halves the number of BFS phases in practice.
    for (VertexId v = 0; v < n_; ++v) {
      if (mate_[v] != kInvalidVertex) continue;
      for (VertexId u : g_.neighbors(v)) {
        if (mate_[u] == kInvalidVertex) {
          mate_[v] = u;
          mate_[u] = v;
          break;
        }
      }
    }
    for (VertexId v = 0; v < n_; ++v) {
      if (mate_[v] == kInvalidVertex) {
        const VertexId leaf = find_augmenting_path(v);
        if (leaf != kInvalidVertex) augment_along(leaf);
      }
    }
    return mate_;
  }

 private:
  VertexId lowest_common_ancestor(VertexId a, VertexId b) {
    std::vector<bool> seen(n_, false);
    for (;;) {
      a = base_[a];
      seen[a] = true;
      if (mate_[a] == kInvalidVertex) break;
      a = parent_[mate_[a]];
    }
    for (;;) {
      b = base_[b];
      if (seen[b]) return b;
      b = parent_[mate_[b]];
    }
  }

  void mark_path(VertexId v, VertexId stem, VertexId child) {
    while (base_[v] != stem) {
      in_blossom_[base_[v]] = true;
      in_blossom_[base_[mate_[v]]] = true;
      parent_[v] = child;
      child = mate_[v];
      v = parent_[mate_[v]];
    }
  }

  // BFS from `root` over the alternating forest; returns an unmatched leaf
  // reachable by an augmenting path, or kInvalidVertex.
  VertexId find_augmenting_path(VertexId root) {
    std::fill(used_.begin(), used_.end(), false);
    std::fill(parent_.begin(), parent_.end(), kInvalidVertex);
    for (VertexId v = 0; v < n_; ++v) base_[v] = v;

    used_[root] = true;
    std::queue<VertexId> q;
    q.push(root);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (VertexId to : g_.neighbors(v)) {
        if (base_[v] == base_[to] || mate_[v] == to) continue;
        if (to == root ||
            (mate_[to] != kInvalidVertex &&
             parent_[mate_[to]] != kInvalidVertex)) {
          // Odd cycle: contract the blossom around the common ancestor.
          const VertexId stem = lowest_common_ancestor(v, to);
          std::fill(in_blossom_.begin(), in_blossom_.end(), false);
          mark_path(v, stem, to);
          mark_path(to, stem, v);
          for (VertexId i = 0; i < n_; ++i) {
            if (in_blossom_[base_[i]]) {
              base_[i] = stem;
              if (!used_[i]) {
                used_[i] = true;
                q.push(i);
              }
            }
          }
        } else if (parent_[to] == kInvalidVertex) {
          parent_[to] = v;
          if (mate_[to] == kInvalidVertex) return to;
          used_[mate_[to]] = true;
          q.push(mate_[to]);
        }
      }
    }
    return kInvalidVertex;
  }

  void augment_along(VertexId leaf) {
    VertexId v = leaf;
    while (v != kInvalidVertex) {
      const VertexId pv = parent_[v];
      const VertexId next = mate_[pv];
      mate_[v] = pv;
      mate_[pv] = v;
      v = next;
    }
  }

  const Graph& g_;
  int n_;
  Mates mate_;
  std::vector<VertexId> parent_;
  std::vector<VertexId> base_;
  std::vector<bool> used_;
  std::vector<bool> in_blossom_;
};

}  // namespace

Mates max_cardinality_matching(const Graph& g) { return Blossom(g).run(); }

Mates greedy_maximal_matching(const Graph& g) {
  Mates mate(g.num_vertices(), kInvalidVertex);
  for (const graph::Edge& e : g.edges()) {
    if (mate[e.u] == kInvalidVertex && mate[e.v] == kInvalidVertex) {
      mate[e.u] = e.v;
      mate[e.v] = e.u;
    }
  }
  return mate;
}

namespace {

void mcm_brute(const Graph& g, int edge_index, Mates& current, int size,
               Mates& best, int& best_size) {
  if (size > best_size) {
    best_size = size;
    best = current;
  }
  if (edge_index >= g.num_edges()) return;
  // Prune: even taking every remaining edge cannot beat `best`.
  if (size + (g.num_edges() - edge_index) <= best_size) return;
  const graph::Edge e = g.edge(edge_index);
  if (current[e.u] == kInvalidVertex && current[e.v] == kInvalidVertex) {
    current[e.u] = e.v;
    current[e.v] = e.u;
    mcm_brute(g, edge_index + 1, current, size + 1, best, best_size);
    current[e.u] = kInvalidVertex;
    current[e.v] = kInvalidVertex;
  }
  mcm_brute(g, edge_index + 1, current, size, best, best_size);
}

}  // namespace

Mates max_cardinality_matching_bruteforce(const Graph& g) {
  Mates current(g.num_vertices(), kInvalidVertex);
  Mates best = current;
  int best_size = 0;
  mcm_brute(g, 0, current, 0, best, best_size);
  return best;
}

int matching_size(const Mates& mates) {
  int matched = 0;
  for (VertexId v = 0; v < static_cast<VertexId>(mates.size()); ++v) {
    if (mates[v] != kInvalidVertex) ++matched;
  }
  return matched / 2;
}

bool is_valid_matching(const Graph& g, const Mates& mates) {
  if (static_cast<int>(mates.size()) != g.num_vertices()) return false;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const VertexId u = mates[v];
    if (u == kInvalidVertex) continue;
    if (u < 0 || u >= g.num_vertices() || mates[u] != v || u == v) return false;
    if (!g.has_edge(u, v)) return false;
  }
  return true;
}

std::vector<graph::EdgeId> matching_edges(const Graph& g, const Mates& mates) {
  std::vector<graph::EdgeId> out;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (mates[v] != kInvalidVertex && v < mates[v]) {
      const graph::EdgeId e = g.find_edge(v, mates[v]);
      if (e == graph::kInvalidEdge) throw std::logic_error("mate is not an edge");
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace ecd::seq
