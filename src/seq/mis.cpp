#include "src/seq/mis.h"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace ecd::seq {

using graph::Graph;
using graph::VertexId;

namespace {

// Branch-and-bound state over a shrinking "alive" vertex set.
class MisSearch {
 public:
  MisSearch(const Graph& g, std::int64_t node_budget)
      : g_(g), budget_(node_budget), alive_(g.num_vertices(), true),
        degree_(g.num_vertices()) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) degree_[v] = g.degree(v);
    alive_count_ = g.num_vertices();
  }

  std::optional<std::vector<VertexId>> run() {
    best_.clear();
    current_.clear();
    ok_ = true;
    recurse();
    if (!ok_) return std::nullopt;
    return best_;
  }

 private:
  void remove_vertex(VertexId v, std::vector<VertexId>& log) {
    alive_[v] = false;
    --alive_count_;
    log.push_back(v);
    for (VertexId u : g_.neighbors(v)) {
      if (alive_[u]) --degree_[u];
    }
  }

  void restore(const std::vector<VertexId>& log) {
    for (auto it = log.rbegin(); it != log.rend(); ++it) {
      const VertexId v = *it;
      alive_[v] = true;
      ++alive_count_;
      for (VertexId u : g_.neighbors(v)) {
        if (alive_[u]) ++degree_[u];
      }
    }
  }

  void take_vertex(VertexId v, std::vector<VertexId>& log) {
    current_.push_back(v);
    remove_vertex(v, log);
    for (VertexId u : g_.neighbors(v)) {
      if (alive_[u]) remove_vertex(u, log);
    }
  }

  void recurse() {
    if (!ok_) return;
    if (--budget_ < 0) {
      ok_ = false;
      return;
    }
    // Trivial upper bound: everything still alive joins the set.
    if (current_.size() + alive_count_ <= best_.size()) return;

    // Reductions: degree-0 and degree-1 vertices can always be taken.
    std::vector<VertexId> log;
    std::size_t taken_marker = current_.size();
    bool reduced = true;
    while (reduced) {
      reduced = false;
      for (VertexId v = 0; v < g_.num_vertices(); ++v) {
        if (alive_[v] && degree_[v] <= 1) {
          take_vertex(v, log);
          reduced = true;
        }
      }
    }
    if (alive_count_ == 0) {
      if (current_.size() > best_.size()) best_ = current_;
    } else if (current_.size() + alive_count_ > best_.size()) {
      // Branch on a maximum-residual-degree vertex.
      VertexId pivot = graph::kInvalidVertex;
      int pivot_deg = -1;
      for (VertexId v = 0; v < g_.num_vertices(); ++v) {
        if (alive_[v] && degree_[v] > pivot_deg) {
          pivot_deg = degree_[v];
          pivot = v;
        }
      }
      {
        std::vector<VertexId> branch_log;
        take_vertex(pivot, branch_log);
        recurse();
        restore(branch_log);
        current_.resize(current_.size() - 1);
      }
      {
        std::vector<VertexId> branch_log;
        remove_vertex(pivot, branch_log);
        recurse();
        restore(branch_log);
      }
    } else if (current_.size() > best_.size()) {
      best_ = current_;
    }
    restore(log);
    current_.resize(taken_marker);
  }

  const Graph& g_;
  std::int64_t budget_;
  std::vector<bool> alive_;
  std::vector<int> degree_;
  int alive_count_ = 0;
  std::vector<VertexId> current_;
  std::vector<VertexId> best_;
  bool ok_ = true;
};

}  // namespace

std::optional<std::vector<VertexId>> max_independent_set_exact(
    const Graph& g, std::int64_t node_budget) {
  return MisSearch(g, node_budget).run();
}

std::vector<VertexId> greedy_mis_min_degree(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<bool> alive(n, true);
  std::vector<int> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = g.degree(v);
  std::vector<VertexId> result;
  int remaining = n;
  while (remaining > 0) {
    VertexId pick = graph::kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && (pick == graph::kInvalidVertex ||
                       degree[v] < degree[pick])) {
        pick = v;
      }
    }
    result.push_back(pick);
    auto kill = [&](VertexId v) {
      alive[v] = false;
      --remaining;
      for (VertexId u : g.neighbors(v)) {
        if (alive[u]) --degree[u];
      }
    };
    kill(pick);
    for (VertexId u : g.neighbors(pick)) {
      if (alive[u]) kill(u);
    }
  }
  return result;
}

std::vector<VertexId> mis_local_search(const Graph& g,
                                       std::vector<VertexId> initial,
                                       int max_iterations) {
  const int n = g.num_vertices();
  std::vector<bool> in_set(n, false);
  for (VertexId v : initial) in_set[v] = true;
  // (1,2)-swap: remove one vertex, insert two of its non-adjacent
  // ex-neighbors whose only conflict was the removed vertex.
  std::vector<int> conflicts(n, 0);
  auto recount = [&] {
    for (VertexId v = 0; v < n; ++v) {
      conflicts[v] = 0;
      for (VertexId u : g.neighbors(v)) {
        if (in_set[u]) ++conflicts[v];
      }
    }
  };
  recount();
  for (int iter = 0; iter < max_iterations; ++iter) {
    bool improved = false;
    // First, insert any free vertex.
    for (VertexId v = 0; v < n; ++v) {
      if (!in_set[v] && conflicts[v] == 0) {
        in_set[v] = true;
        for (VertexId u : g.neighbors(v)) ++conflicts[u];
        improved = true;
      }
    }
    for (VertexId v = 0; v < n && !improved; ++v) {
      if (!in_set[v]) continue;
      std::vector<VertexId> candidates;
      for (VertexId u : g.neighbors(v)) {
        if (!in_set[u] && conflicts[u] == 1) candidates.push_back(u);
      }
      for (std::size_t i = 0; i < candidates.size() && !improved; ++i) {
        for (std::size_t j = i + 1; j < candidates.size() && !improved; ++j) {
          if (!g.has_edge(candidates[i], candidates[j])) {
            in_set[v] = false;
            in_set[candidates[i]] = true;
            in_set[candidates[j]] = true;
            recount();
            improved = true;
          }
        }
      }
    }
    if (!improved) break;
  }
  std::vector<VertexId> result;
  for (VertexId v = 0; v < n; ++v) {
    if (in_set[v]) result.push_back(v);
  }
  return result;
}

MisResult best_effort_mis(const Graph& g, std::int64_t node_budget) {
  if (auto exact = max_independent_set_exact(g, node_budget)) {
    return {std::move(*exact), true};
  }
  return {mis_local_search(g, greedy_mis_min_degree(g)), false};
}

std::vector<VertexId> max_independent_set_bruteforce(const Graph& g) {
  const int n = g.num_vertices();
  if (n > 24) throw std::invalid_argument("bruteforce MIS limited to n <= 24");
  std::vector<std::uint32_t> nbr_mask(n, 0);
  for (const graph::Edge& e : g.edges()) {
    nbr_mask[e.u] |= 1u << e.v;
    nbr_mask[e.v] |= 1u << e.u;
  }
  std::uint32_t best = 0;
  int best_count = -1;
  for (std::uint32_t s = 0; s < (1u << n); ++s) {
    bool independent = true;
    for (int v = 0; v < n && independent; ++v) {
      if ((s >> v & 1u) && (s & nbr_mask[v])) independent = false;
    }
    if (independent && std::popcount(s) > best_count) {
      best = s;
      best_count = std::popcount(s);
    }
  }
  std::vector<VertexId> result;
  for (int v = 0; v < n; ++v) {
    if (best >> v & 1u) result.push_back(v);
  }
  return result;
}

bool is_independent_set(const Graph& g,
                        const std::vector<VertexId>& vertices) {
  std::vector<bool> in_set(g.num_vertices(), false);
  for (VertexId v : vertices) {
    if (v < 0 || v >= g.num_vertices() || in_set[v]) return false;
    in_set[v] = true;
  }
  for (const graph::Edge& e : g.edges()) {
    if (in_set[e.u] && in_set[e.v]) return false;
  }
  return true;
}

}  // namespace ecd::seq
