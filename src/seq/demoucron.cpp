// Demoucron–Malgrange–Pertuiset planarity testing (1964): incremental face
// embedding. Correct on biconnected graphs; a graph is planar iff all its
// biconnected components are, so the entry point decomposes first.
//
// Invariant per step: H is a planar embedded subgraph with an explicit face
// list. Every *fragment* of G relative to H (a chord between embedded
// vertices, or a component of G - V(H) plus its attachment edges) must be
// drawable inside a single face containing all its attachments. Greedy rule
// (the theorem behind the algorithm): embedding any path of a fragment with
// a minimal count of admissible faces never turns a planar graph
// unembeddable; zero admissible faces certifies non-planarity.
#include <algorithm>
#include <optional>
#include <queue>
#include <set>
#include <vector>

#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"
#include "src/seq/planarity.h"

namespace ecd::seq {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

namespace {

class Demoucron {
 public:
  explicit Demoucron(const Graph& g) : g_(g), n_(g.num_vertices()) {}

  bool run() {
    if (g_.num_edges() <= 2) return true;
    if (!satisfies_euler_bound(g_)) return false;

    embedded_vertex_.assign(n_, false);
    embedded_edge_.assign(g_.num_edges(), false);

    // Seed: any cycle (a biconnected graph with >= 3 edges has one).
    const auto cycle = find_cycle();
    if (cycle.empty()) return true;  // acyclic block: a single edge
    faces_.clear();
    faces_.push_back(cycle);
    faces_.push_back(cycle);  // inside and outside of the seed cycle
    for (VertexId v : cycle) embedded_vertex_[v] = true;
    mark_cycle_edges(cycle);

    for (;;) {
      const auto fragments = collect_fragments();
      if (fragments.empty()) return true;
      // Pick the fragment with the fewest admissible faces.
      int best = -1;
      std::vector<int> best_faces;
      for (int i = 0; i < static_cast<int>(fragments.size()); ++i) {
        std::vector<int> admissible;
        for (int f = 0; f < static_cast<int>(faces_.size()); ++f) {
          if (face_contains_all(f, fragments[i].attachments)) {
            admissible.push_back(f);
          }
        }
        if (admissible.empty()) return false;  // trapped fragment
        if (best == -1 ||
            admissible.size() < best_faces.size()) {
          best = i;
          best_faces = std::move(admissible);
        }
      }
      embed_fragment_path(fragments[best], best_faces.front());
    }
  }

 private:
  struct Fragment {
    // Interior (non-embedded) vertices; empty for a chord.
    std::vector<VertexId> interior;
    std::vector<VertexId> attachments;  // embedded vertices touched
    EdgeId chord = graph::kInvalidEdge;  // set iff the fragment is one edge
  };

  std::vector<VertexId> find_cycle() const {
    // Proper iterative DFS: in an undirected DFS every non-tree edge is a
    // back edge, so the parent walk from v always reaches u.
    std::vector<VertexId> parent(n_, graph::kInvalidVertex);
    std::vector<int> state(n_, 0);  // 0 unseen, 1 on stack/visited
    struct Frame {
      VertexId v;
      std::size_t idx;
    };
    for (VertexId root = 0; root < n_; ++root) {
      if (state[root] != 0) continue;
      std::vector<Frame> stack{{root, 0}};
      state[root] = 1;
      while (!stack.empty()) {
        Frame& f = stack.back();
        const auto nbrs = g_.neighbors(f.v);
        if (f.idx >= nbrs.size()) {
          stack.pop_back();
          continue;
        }
        const VertexId u = nbrs[f.idx++];
        if (u == parent[f.v]) continue;
        if (state[u] == 0) {
          state[u] = 1;
          parent[u] = f.v;
          stack.push_back({u, 0});
        } else {
          // Back edge {f.v, u}: u is an ancestor of f.v.
          std::vector<VertexId> path{f.v};
          VertexId w = f.v;
          while (w != u) {
            w = parent[w];
            path.push_back(w);
          }
          return path;
        }
      }
    }
    return {};
  }

  void mark_cycle_edges(const std::vector<VertexId>& cycle) {
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const VertexId a = cycle[i];
      const VertexId b = cycle[(i + 1) % cycle.size()];
      embedded_edge_[g_.find_edge(a, b)] = true;
    }
  }

  std::vector<Fragment> collect_fragments() const {
    std::vector<Fragment> fragments;
    // Chords: non-embedded edges between embedded vertices.
    for (EdgeId e = 0; e < g_.num_edges(); ++e) {
      if (embedded_edge_[e]) continue;
      const graph::Edge ed = g_.edge(e);
      if (embedded_vertex_[ed.u] && embedded_vertex_[ed.v]) {
        Fragment f;
        f.attachments = {ed.u, ed.v};
        f.chord = e;
        fragments.push_back(std::move(f));
      }
    }
    // Components of G - embedded vertices.
    std::vector<bool> seen(n_, false);
    for (VertexId s = 0; s < n_; ++s) {
      if (embedded_vertex_[s] || seen[s]) continue;
      Fragment f;
      std::set<VertexId> attach;
      std::queue<VertexId> q;
      seen[s] = true;
      q.push(s);
      while (!q.empty()) {
        const VertexId v = q.front();
        q.pop();
        f.interior.push_back(v);
        for (VertexId u : g_.neighbors(v)) {
          if (embedded_vertex_[u]) {
            attach.insert(u);
          } else if (!seen[u]) {
            seen[u] = true;
            q.push(u);
          }
        }
      }
      f.attachments.assign(attach.begin(), attach.end());
      fragments.push_back(std::move(f));
    }
    return fragments;
  }

  bool face_contains_all(int face,
                         const std::vector<VertexId>& attachments) const {
    const auto& fv = faces_[face];
    for (VertexId a : attachments) {
      if (std::find(fv.begin(), fv.end(), a) == fv.end()) return false;
    }
    return true;
  }

  // Finds a path between two attachments through the fragment interior.
  std::vector<VertexId> path_through(const Fragment& f) const {
    if (f.chord != graph::kInvalidEdge) {
      return {g_.edge(f.chord).u, g_.edge(f.chord).v};
    }
    // BFS from one attachment through interior vertices to any other
    // attachment (biconnected => >= 2 attachments exist).
    const VertexId start = f.attachments.front();
    std::vector<VertexId> parent(n_, graph::kInvalidVertex);
    std::vector<bool> interior(n_, false), visited(n_, false);
    for (VertexId v : f.interior) interior[v] = true;
    std::queue<VertexId> q;
    visited[start] = true;
    q.push(start);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (VertexId u : g_.neighbors(v)) {
        if (visited[u]) continue;
        if (embedded_vertex_[u]) {
          if (v != start && u != start) {
            // Path start ... v - u ends at another embedded vertex.
            std::vector<VertexId> path{u, v};
            VertexId w = v;
            while (parent[w] != graph::kInvalidVertex) {
              w = parent[w];
              path.push_back(w);
            }
            std::reverse(path.begin(), path.end());
            return path;
          }
          continue;
        }
        if (!interior[u]) continue;
        visited[u] = true;
        parent[u] = v;
        q.push(u);
      }
    }
    return {};  // unreachable in a biconnected block
  }

  void embed_fragment_path(const Fragment& f, int face) {
    const auto path = path_through(f);
    if (path.size() < 2) {
      // Degenerate fragment (single attachment); only possible if the
      // block is not biconnected — treat as embeddable.
      for (VertexId v : f.interior) embedded_vertex_[v] = true;
      return;
    }
    // Mark path vertices/edges embedded.
    for (VertexId v : path) embedded_vertex_[v] = true;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      embedded_edge_[g_.find_edge(path[i], path[i + 1])] = true;
    }
    // Split the face along the path endpoints.
    const VertexId a = path.front();
    const VertexId b = path.back();
    const auto& fv = faces_[face];
    const auto ia = std::find(fv.begin(), fv.end(), a) - fv.begin();
    auto ib = std::find(fv.begin(), fv.end(), b) - fv.begin();
    const int len = static_cast<int>(fv.size());
    // Face boundary split into two arcs a..b and b..a (cyclic).
    std::vector<VertexId> arc1, arc2;
    for (int i = static_cast<int>(ia);; i = (i + 1) % len) {
      arc1.push_back(fv[i]);
      if (i == static_cast<int>(ib)) break;
    }
    for (int i = static_cast<int>(ib);; i = (i + 1) % len) {
      arc2.push_back(fv[i]);
      if (i == static_cast<int>(ia)) break;
    }
    // New faces: arc + reversed path interior (path runs a -> b).
    std::vector<VertexId> face1 = arc1;  // a..b
    for (std::size_t i = path.size() - 2; i >= 1; --i) {
      face1.push_back(path[i]);
      if (i == 1) break;
    }
    std::vector<VertexId> face2 = arc2;  // b..a
    for (std::size_t i = 1; i + 1 < path.size(); ++i) {
      face2.push_back(path[i]);
    }
    faces_[face] = std::move(face1);
    faces_.push_back(std::move(face2));
  }

  const Graph& g_;
  int n_;
  std::vector<bool> embedded_vertex_;
  std::vector<bool> embedded_edge_;
  std::vector<std::vector<VertexId>> faces_;
};

}  // namespace

bool is_planar_demoucron(const Graph& g) {
  if (g.num_vertices() <= 4) return true;
  if (!satisfies_euler_bound(g)) return false;
  for (const auto& block_edges : graph::biconnected_components(g)) {
    if (block_edges.size() <= 2) continue;
    // Build the block as its own graph.
    std::set<VertexId> vertex_set;
    for (EdgeId e : block_edges) {
      vertex_set.insert(g.edge(e).u);
      vertex_set.insert(g.edge(e).v);
    }
    std::vector<VertexId> vertices(vertex_set.begin(), vertex_set.end());
    std::vector<VertexId> local(g.num_vertices(), graph::kInvalidVertex);
    for (int i = 0; i < static_cast<int>(vertices.size()); ++i) {
      local[vertices[i]] = i;
    }
    std::vector<graph::Edge> edges;
    for (EdgeId e : block_edges) {
      edges.push_back({local[g.edge(e).u], local[g.edge(e).v]});
    }
    const Graph block = Graph::from_edges(
        static_cast<int>(vertices.size()), std::move(edges));
    if (!Demoucron(block).run()) return false;
  }
  return true;
}

}  // namespace ecd::seq
