#include "src/seq/correlation.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

namespace ecd::seq {

using graph::EdgeSign;
using graph::Graph;
using graph::VertexId;

std::int64_t agreement_score(const Graph& g, const Clustering& c) {
  if (static_cast<int>(c.size()) != g.num_vertices()) {
    throw std::invalid_argument("clustering size mismatch");
  }
  std::int64_t score = 0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    const bool same = c[ed.u] == c[ed.v];
    const bool positive = !g.is_signed() || g.sign(e) == EdgeSign::kPositive;
    if (same == positive) ++score;
  }
  return score;
}

Clustering correlation_exact(const Graph& g) {
  const int n = g.num_vertices();
  if (n > 16) throw std::invalid_argument("exact clustering limited to n <= 16");
  if (n == 0) return {};

  // score(C) = (#negative edges) + sum over clusters of
  //            (pos_within - neg_within), so it suffices to choose the
  // partition maximizing the within-cluster signed-edge surplus.
  // value[mask] = pos_within(mask) - neg_within(mask), built incrementally
  // over the lowest set bit.
  const std::uint32_t full = (1u << n) - 1;
  std::vector<std::int32_t> value(full + 1, 0);
  std::vector<std::uint32_t> pos_mask(n, 0), neg_mask(n, 0);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    const bool positive = !g.is_signed() || g.sign(e) == EdgeSign::kPositive;
    auto& masks = positive ? pos_mask : neg_mask;
    masks[ed.u] |= 1u << ed.v;
    masks[ed.v] |= 1u << ed.u;
  }
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    const int low = std::countr_zero(mask);
    const std::uint32_t rest = mask & (mask - 1);
    value[mask] = value[rest] +
                  std::popcount(pos_mask[low] & rest) -
                  std::popcount(neg_mask[low] & rest);
  }

  // dp[mask] = best surplus over partitions of `mask`; the cluster containing
  // the lowest set bit is enumerated as a submask.
  std::vector<std::int32_t> dp(full + 1, 0);
  std::vector<std::uint32_t> choice(full + 1, 0);
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    const std::uint32_t low_bit = mask & (~mask + 1);
    const std::uint32_t rest = mask ^ low_bit;
    std::int32_t best = std::numeric_limits<std::int32_t>::min();
    std::uint32_t best_cluster = low_bit;
    // Enumerate submasks S of `rest`; cluster = S | low_bit.
    std::uint32_t s = rest;
    for (;;) {
      const std::uint32_t cluster = s | low_bit;
      const std::int32_t cand = value[cluster] + dp[mask ^ cluster];
      if (cand > best) {
        best = cand;
        best_cluster = cluster;
      }
      if (s == 0) break;
      s = (s - 1) & rest;
    }
    dp[mask] = best;
    choice[mask] = best_cluster;
  }

  Clustering labels(n, -1);
  int next_label = 0;
  std::uint32_t mask = full;
  while (mask != 0) {
    const std::uint32_t cluster = choice[mask];
    for (int v = 0; v < n; ++v) {
      if (cluster >> v & 1u) labels[v] = next_label;
    }
    ++next_label;
    mask ^= cluster;
  }
  return labels;
}

Clustering correlation_local_search(const Graph& g, int max_rounds) {
  const int n = g.num_vertices();
  Clustering singletons(n);
  std::iota(singletons.begin(), singletons.end(), 0);
  Clustering together(n, 0);
  Clustering c = agreement_score(g, singletons) >= agreement_score(g, together)
                     ? singletons
                     : together;

  // Moving vertex v changes only the agreement of edges incident to v, so
  // each candidate move is evaluated from v's incident lists alone.
  for (int round = 0; round < max_rounds; ++round) {
    bool improved = false;
    for (VertexId v = 0; v < n; ++v) {
      // Gain of leaving the current label into `label`, per incident edge:
      // positive edge to cluster L contributes +1 iff we land in L;
      // negative edge to L contributes +1 iff we land elsewhere.
      std::unordered_map<int, int> pos_to, neg_to;
      auto nbrs = g.neighbors(v);
      auto eids = g.incident_edges(v);
      int total_neg = 0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const bool positive =
            !g.is_signed() || g.sign(eids[i]) == EdgeSign::kPositive;
        if (positive) {
          ++pos_to[c[nbrs[i]]];
        } else {
          ++neg_to[c[nbrs[i]]];
          ++total_neg;
        }
      }
      auto local_score = [&](int label) {
        const auto p = pos_to.find(label);
        const auto ng = neg_to.find(label);
        return (p == pos_to.end() ? 0 : p->second) + total_neg -
               (ng == neg_to.end() ? 0 : ng->second);
      };
      const int current = local_score(c[v]);
      int best_label = c[v];
      int best = current;
      for (const auto& [label, unused] : pos_to) {
        (void)unused;
        if (local_score(label) > best) {
          best = local_score(label);
          best_label = label;
        }
      }
      // Fresh singleton label: score is total_neg (all positives disagree).
      if (total_neg > best) {
        best = total_neg;
        best_label = n + v;  // unused label unique to v
      }
      if (best_label != c[v]) {
        c[v] = best_label;
        improved = true;
      }
    }
    if (!improved) break;
  }
  return c;
}

CorrelationResult best_effort_correlation(const Graph& g,
                                          int exact_threshold) {
  if (g.num_vertices() <= std::min(exact_threshold, 16)) {
    return {correlation_exact(g), true};
  }
  return {correlation_local_search(g), false};
}

}  // namespace ecd::seq
