// Exact maximum-weight matching in general graphs.
//
// This is the local solver cluster leaders run for the weighted matching
// application (Theorem 1.1): MWM is polynomial, so the leader can solve its
// cluster exactly. The implementation is the classical O(n^3) primal-dual
// blossom algorithm (Galil's presentation) with integral dual variables.
#pragma once

#include "src/graph/graph.h"
#include "src/seq/matching.h"

namespace ecd::seq {

// Exact maximum-weight matching (the matching maximizing total weight; it
// need not have maximum cardinality). Uses g.weight(e), which defaults to 1
// for unweighted graphs. O(n^3) time, O(n^2) memory.
Mates max_weight_matching(const graph::Graph& g);

// Exhaustive-search MWM for tiny graphs (test oracle; |E| <= 30 recommended).
Mates max_weight_matching_bruteforce(const graph::Graph& g);

// Greedy heaviest-edge-first maximal matching: the classic 1/2-approximation
// baseline for MWM.
Mates greedy_weight_matching(const graph::Graph& g);

// Total weight of the matching under g's edge weights.
std::int64_t matching_weight(const graph::Graph& g, const Mates& mates);

}  // namespace ecd::seq
