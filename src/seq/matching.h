// Maximum-cardinality matching (Edmonds' blossom algorithm) and helpers.
//
// These are the sequential substrates cluster leaders run in §3.2: the model
// grants the leader unlimited local computation, and MCM is polynomial, so
// the leader's "compute the maximum matching of G[V_i] locally" step is
// implemented exactly.
#pragma once

#include <vector>

#include "src/graph/graph.h"

namespace ecd::seq {

// A matching is represented by the mate array: mate[v] is v's partner or
// graph::kInvalidVertex if v is unmatched.
using Mates = std::vector<graph::VertexId>;

// Exact maximum-cardinality matching via Edmonds' blossom algorithm, O(V·E·α).
Mates max_cardinality_matching(const graph::Graph& g);

// Greedy maximal matching (scans edges in id order): the classic 1/2-approx
// baseline.
Mates greedy_maximal_matching(const graph::Graph& g);

// Exhaustive-search MCM for tiny graphs (test oracle; |E| <= 30 recommended).
Mates max_cardinality_matching_bruteforce(const graph::Graph& g);

int matching_size(const Mates& mates);

// True iff `mates` is symmetric and every matched pair is a real edge.
bool is_valid_matching(const graph::Graph& g, const Mates& mates);

// Edge ids of the matching (each matched pair reported once).
std::vector<graph::EdgeId> matching_edges(const graph::Graph& g,
                                          const Mates& mates);

}  // namespace ecd::seq
