// Disjoint-set union with path compression and union by size.
#pragma once

#include <numeric>
#include <vector>

namespace ecd::seq {

class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Returns true if x and y were in different sets.
  bool unite(int x, int y) {
    x = find(x);
    y = find(y);
    if (x == y) return false;
    if (size_[x] < size_[y]) std::swap(x, y);
    parent_[y] = x;
    size_[x] += size_[y];
    return true;
  }

  bool same(int x, int y) { return find(x) == find(y); }
  int set_size(int x) { return size_[find(x)]; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
};

}  // namespace ecd::seq
