#include "src/seq/properties.h"

#include <queue>
#include <set>
#include <vector>

#include "src/graph/metrics.h"
#include "src/seq/planarity.h"

namespace ecd::seq {

using graph::Graph;
using graph::VertexId;

bool is_forest(const Graph& g) {
  // A forest has exactly n - (#components) edges.
  return g.num_edges() ==
         g.num_vertices() - graph::connected_components(g).count;
}

bool has_treewidth_at_most_2(const Graph& g) {
  // Series-parallel reduction: delete degree-<=1 vertices; smooth degree-2
  // vertices (join their neighbors, suppressing the parallel edge if they
  // are already adjacent). The graph has no K4 minor iff this empties it.
  const int n = g.num_vertices();
  std::vector<std::set<VertexId>> adj(n);
  for (const graph::Edge& e : g.edges()) {
    adj[e.u].insert(e.v);
    adj[e.v].insert(e.u);
  }
  std::vector<bool> removed(n, false);
  std::queue<VertexId> q;
  for (VertexId v = 0; v < n; ++v) {
    if (adj[v].size() <= 2) q.push(v);
  }
  int remaining = n;
  auto maybe_requeue = [&](VertexId v) {
    if (!removed[v] && adj[v].size() <= 2) q.push(v);
  };
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    if (removed[v] || adj[v].size() > 2) continue;
    removed[v] = true;
    --remaining;
    std::vector<VertexId> nbrs(adj[v].begin(), adj[v].end());
    for (VertexId u : nbrs) adj[u].erase(v);
    adj[v].clear();
    if (nbrs.size() == 2) {
      // Smooth: join the two neighbors.
      adj[nbrs[0]].insert(nbrs[1]);
      adj[nbrs[1]].insert(nbrs[0]);
    }
    for (VertexId u : nbrs) maybe_requeue(u);
  }
  return remaining == 0;
}

bool is_outerplanar(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<graph::Edge> edges(g.edges().begin(), g.edges().end());
  for (VertexId v = 0; v < n; ++v) edges.push_back({v, n});
  return is_planar(Graph::from_edges(n + 1, std::move(edges)));
}

MinorClosedProperty forest_property() {
  return {"forest", 3, [](const Graph& g) { return is_forest(g); }};
}

MinorClosedProperty outerplanar_property() {
  return {"outerplanar", 4, [](const Graph& g) { return is_outerplanar(g); }};
}

MinorClosedProperty treewidth2_property() {
  return {"treewidth<=2", 4,
          [](const Graph& g) { return has_treewidth_at_most_2(g); }};
}

MinorClosedProperty planar_property() {
  return {"planar", 5, [](const Graph& g) { return is_planar(g); }};
}

}  // namespace ecd::seq
