// Maximum independent set solvers: exact branch-and-bound (with a node
// budget), greedy minimum-degree, local search, and a brute-force oracle.
//
// MaxIS is NP-hard; the CONGEST model nevertheless grants cluster leaders
// unlimited local computation (§3.1). On a real machine we solve clusters
// exactly while a search budget lasts and fall back to greedy + local search
// beyond it; results report which path ran.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::seq {

// Exact maximum independent set via branch and bound with degree-0/1
// reductions. Returns std::nullopt if the search exceeds `node_budget`
// branch nodes.
std::optional<std::vector<graph::VertexId>> max_independent_set_exact(
    const graph::Graph& g, std::int64_t node_budget = 4'000'000);

// Repeatedly takes a minimum-degree vertex and deletes its neighborhood.
// For a graph of edge density d this yields >= n/(2d+1) vertices (§3.1).
std::vector<graph::VertexId> greedy_mis_min_degree(const graph::Graph& g);

// Hill climbing with (1,2)-swaps starting from `initial`.
std::vector<graph::VertexId> mis_local_search(
    const graph::Graph& g, std::vector<graph::VertexId> initial,
    int max_iterations = 100);

// Exact if the budget suffices, otherwise greedy + local search.
struct MisResult {
  std::vector<graph::VertexId> vertices;
  bool exact = false;
};
MisResult best_effort_mis(const graph::Graph& g,
                          std::int64_t node_budget = 4'000'000);

// Subset-enumeration oracle for n <= 24 (tests only).
std::vector<graph::VertexId> max_independent_set_bruteforce(
    const graph::Graph& g);

bool is_independent_set(const graph::Graph& g,
                        const std::vector<graph::VertexId>& vertices);

}  // namespace ecd::seq
