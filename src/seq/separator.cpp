#include "src/seq/separator.h"

#include <algorithm>
#include <bit>
#include <queue>
#include <stdexcept>

#include "src/graph/metrics.h"

namespace ecd::seq {

using graph::Graph;
using graph::VertexId;

namespace {

int cut_of(const Graph& g, const std::vector<bool>& in_s) {
  int cut = 0;
  for (const graph::Edge& e : g.edges()) {
    if (in_s[e.u] != in_s[e.v]) ++cut;
  }
  return cut;
}

// Sweeps prefix cuts of `order` within the balanced window and returns the
// best (cut size, prefix length).
std::pair<int, int> best_prefix_cut(const Graph& g,
                                    const std::vector<VertexId>& order) {
  const int n = g.num_vertices();
  std::vector<bool> inside(n, false);
  const int lo = (n + 2) / 3;           // ceil(n/3)
  const int hi = n - lo;                // complement also >= n/3
  int cut = 0;
  int best_cut = -1, best_k = -1;
  for (int k = 0; k < hi; ++k) {
    const VertexId v = order[k];
    int inside_nbrs = 0;
    for (VertexId u : g.neighbors(v)) {
      if (inside[u]) ++inside_nbrs;
    }
    cut += g.degree(v) - 2 * inside_nbrs;
    inside[v] = true;
    const int size = k + 1;
    if (size >= lo && (best_cut == -1 || cut < best_cut)) {
      best_cut = cut;
      best_k = size;
    }
  }
  return {best_cut, best_k};
}

// Fiduccia–Mattheyses-style refinement: greedily move boundary vertices with
// positive gain while both sides stay >= n/3.
void refine(const Graph& g, std::vector<bool>& in_s) {
  const int n = g.num_vertices();
  const int lo = (n + 2) / 3;
  int size_s = static_cast<int>(std::count(in_s.begin(), in_s.end(), true));
  for (int pass = 0; pass < 8; ++pass) {
    bool moved = false;
    for (VertexId v = 0; v < n; ++v) {
      const int from_size = in_s[v] ? size_s : n - size_s;
      if (from_size - 1 < lo) continue;
      int same = 0, other = 0;
      for (VertexId u : g.neighbors(v)) {
        (in_s[u] == in_s[v] ? same : other) += 1;
      }
      if (same < other) {  // strictly improving move
        size_s += in_s[v] ? -1 : 1;
        in_s[v] = !in_s[v];
        moved = true;
      }
    }
    if (!moved) break;
  }
}

}  // namespace

SeparatorResult edge_separator(const Graph& g, std::mt19937_64& rng,
                               int sweeps) {
  const int n = g.num_vertices();
  if (n < 3) throw std::invalid_argument("separator needs n >= 3");

  std::vector<bool> best;
  int best_cut = -1;
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  for (int s = 0; s < sweeps; ++s) {
    const VertexId src = (s == 0) ? 0 : pick(rng);
    const auto dist = graph::bfs_distances(g, src);
    std::vector<VertexId> order(n);
    for (VertexId v = 0; v < n; ++v) order[v] = v;
    std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
      // Unreachable vertices sort last (kUnreachable is INT_MAX).
      return dist[a] < dist[b];
    });
    const auto [cut, k] = best_prefix_cut(g, order);
    if (k < 0) continue;
    std::vector<bool> in_s(n, false);
    for (int i = 0; i < k; ++i) in_s[order[i]] = true;
    refine(g, in_s);
    const int refined_cut = cut_of(g, in_s);
    if (best_cut == -1 || refined_cut < best_cut) {
      best_cut = refined_cut;
      best = std::move(in_s);
    }
  }

  SeparatorResult result;
  result.in_s = std::move(best);
  result.cut_size = best_cut;
  const int size_s =
      static_cast<int>(std::count(result.in_s.begin(), result.in_s.end(), true));
  result.smaller_side = std::min(size_s, n - size_s);
  return result;
}

SeparatorResult edge_separator_bruteforce(const Graph& g) {
  const int n = g.num_vertices();
  if (n > 20) throw std::invalid_argument("bruteforce limited to n <= 20");
  if (n < 3) throw std::invalid_argument("separator needs n >= 3");
  const int lo = (n + 2) / 3;
  SeparatorResult best;
  best.cut_size = -1;
  for (std::uint32_t mask = 1; mask < (1u << n) - 1u; ++mask) {
    const int size = std::popcount(mask);
    if (std::min(size, n - size) < lo) continue;
    std::vector<bool> in_s(n);
    for (int v = 0; v < n; ++v) in_s[v] = (mask >> v) & 1u;
    const int cut = cut_of(g, in_s);
    if (best.cut_size == -1 || cut < best.cut_size) {
      best.cut_size = cut;
      best.in_s = in_s;
      best.smaller_side = std::min(size, n - size);
    }
  }
  return best;
}

}  // namespace ecd::seq
