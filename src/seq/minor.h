// H-minor containment testing via branch-set search.
//
// H <= G iff V(G) contains disjoint connected "branch sets", one per vertex
// of H, with an edge of G between every pair of branch sets joined in H.
// The search is exponential — it is a *test oracle* for small instances
// (|V(H)| <= 6, |V(G)| <= ~30), used to cross-validate the planarity tester
// and the property-testing pipeline, not a runtime component.
#pragma once

#include <cstdint>
#include <optional>

#include "src/graph/graph.h"

namespace ecd::seq {

struct MinorOptions {
  // Abort the search after this many branch nodes (returns nullopt).
  std::int64_t node_budget = 20'000'000;
};

// Returns whether H is a minor of G, or std::nullopt if the budget ran out.
std::optional<bool> has_minor(const graph::Graph& g, const graph::Graph& h,
                              const MinorOptions& options = {});

// Convenience oracles built on has_minor (tiny graphs only).
std::optional<bool> is_planar_by_minors(const graph::Graph& g,
                                        const MinorOptions& options = {});
std::optional<bool> is_outerplanar_by_minors(const graph::Graph& g,
                                             const MinorOptions& options = {});

}  // namespace ecd::seq
