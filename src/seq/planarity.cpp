#include "src/seq/planarity.h"

#include <algorithm>
#include <vector>

namespace ecd::seq {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

bool satisfies_euler_bound(const Graph& g) {
  const std::int64_t n = g.num_vertices();
  const std::int64_t m = g.num_edges();
  if (n < 3) return true;
  return m <= 3 * n - 6;
}

namespace {

// Left-right planarity test (check only, no embedding), following Brandes'
// presentation of the de Fraysseix–Rosenstiehl criterion. Directed edge ids:
// 2e is edge(e).u -> edge(e).v, 2e+1 the reverse; only the DFS-chosen
// orientation of each undirected edge is ever used. Both DFS passes use
// explicit stacks so deep graphs (paths) cannot overflow the call stack.
class LeftRight {
 public:
  explicit LeftRight(const Graph& g)
      : g_(g),
        n_(g.num_vertices()),
        m_(g.num_edges()),
        height_(n_, -1),
        parent_edge_(n_, -1),
        orientation_(m_, -1),
        lowpt_(2 * m_, 0),
        lowpt2_(2 * m_, 0),
        nesting_depth_(2 * m_, 0),
        ref_(2 * m_, -1),
        lowpt_edge_(2 * m_, -1),
        stack_bottom_(2 * m_, 0) {}

  bool run() {
    if (!satisfies_euler_bound(g_)) return false;
    for (VertexId root = 0; root < n_; ++root) {
      if (height_[root] == -1) {
        height_[root] = 0;
        dfs_orient(root);
      }
    }
    build_ordered_adjacency();
    for (VertexId root = 0; root < n_; ++root) {
      if (parent_edge_[root] == -1) {
        if (!dfs_test(root)) return false;
      }
    }
    return true;
  }

 private:
  VertexId source(int de) const {
    const graph::Edge e = g_.edge(de / 2);
    return (de % 2 == 0) ? e.u : e.v;
  }
  VertexId target(int de) const {
    const graph::Edge e = g_.edge(de / 2);
    return (de % 2 == 0) ? e.v : e.u;
  }
  // Directed id of undirected edge `e` oriented away from `from`.
  int directed_from(EdgeId e, VertexId from) const {
    return 2 * e + (g_.edge(e).u == from ? 0 : 1);
  }

  // Finishes processing of an oriented edge `de` out of `v`: computes its
  // nesting depth and folds its lowpoints into v's parent edge.
  void finalize_edge(int de, VertexId v) {
    nesting_depth_[de] = 2 * lowpt_[de] + (lowpt2_[de] < height_[v] ? 1 : 0);
    const int pe = parent_edge_[v];
    if (pe == -1) return;
    if (lowpt_[de] < lowpt_[pe]) {
      lowpt2_[pe] = std::min(lowpt_[pe], lowpt2_[de]);
      lowpt_[pe] = lowpt_[de];
    } else if (lowpt_[de] > lowpt_[pe]) {
      lowpt2_[pe] = std::min(lowpt2_[pe], lowpt_[de]);
    } else {
      lowpt2_[pe] = std::min(lowpt2_[pe], lowpt2_[de]);
    }
  }

  // Phase 1: DFS orientation plus lowpoint/nesting-depth computation.
  void dfs_orient(VertexId root) {
    struct Frame {
      VertexId v;
      std::size_t idx;
      bool resume;  // true: just returned from the child along adj[idx]
    };
    std::vector<Frame> stack{{root, 0, false}};
    while (!stack.empty()) {
      auto [v, idx, resume] = stack.back();
      stack.pop_back();
      const auto eids = g_.incident_edges(v);
      if (resume) {
        finalize_edge(directed_from(eids[idx], v), v);
        ++idx;
      }
      bool descended = false;
      for (; idx < eids.size(); ++idx) {
        const EdgeId e = eids[idx];
        if (orientation_[e] != -1) continue;
        const int de = directed_from(e, v);
        orientation_[e] = de % 2;
        const VertexId w = target(de);
        lowpt_[de] = height_[v];
        lowpt2_[de] = height_[v];
        if (height_[w] == -1) {  // tree edge: descend
          parent_edge_[w] = de;
          height_[w] = height_[v] + 1;
          stack.push_back({v, idx, true});
          stack.push_back({w, 0, false});
          descended = true;
          break;
        }
        lowpt_[de] = height_[w];  // back edge
        finalize_edge(de, v);
      }
      if (descended) continue;
    }
  }

  void build_ordered_adjacency() {
    ordered_adj_.assign(n_, {});
    for (EdgeId e = 0; e < m_; ++e) {
      if (orientation_[e] == -1) continue;
      const int de = 2 * e + orientation_[e];
      ordered_adj_[source(de)].push_back(de);
    }
    for (VertexId v = 0; v < n_; ++v) {
      std::sort(ordered_adj_[v].begin(), ordered_adj_[v].end(),
                [this](int a, int b) {
                  return nesting_depth_[a] < nesting_depth_[b];
                });
    }
  }

  struct Interval {
    int low = -1, high = -1;
    bool empty() const { return low == -1 && high == -1; }
  };
  struct ConflictPair {
    Interval left, right;
  };

  bool conflicting(const Interval& i, int b) const {
    return !i.empty() && lowpt_[i.high] > lowpt_[b];
  }

  int lowest(const ConflictPair& p) const {
    if (p.left.empty()) return lowpt_[p.right.low];
    if (p.right.empty()) return lowpt_[p.left.low];
    return std::min(lowpt_[p.left.low], lowpt_[p.right.low]);
  }

  bool add_constraints(int ei, int e) {
    ConflictPair p;
    if (static_cast<int>(s_.size()) <= stack_bottom_[ei]) return true;
    // Merge the return edges of ei into p.right.
    do {
      ConflictPair q = s_.back();
      s_.pop_back();
      if (!q.left.empty()) std::swap(q.left, q.right);
      if (!q.left.empty()) return false;  // two conflicting same-side groups
      if (lowpt_[q.right.low] > lowpt_[e]) {
        if (p.right.empty()) {
          p.right.high = q.right.high;
        } else {
          ref_[p.right.low] = q.right.high;
        }
        p.right.low = q.right.low;
      } else {
        ref_[q.right.low] = lowpt_edge_[e];  // aligned with the tree path
      }
    } while (static_cast<int>(s_.size()) > stack_bottom_[ei]);

    // Merge conflicting return edges of e_1..e_{i-1} into p.left.
    while (!s_.empty() &&
           (conflicting(s_.back().left, ei) || conflicting(s_.back().right, ei))) {
      ConflictPair q = s_.back();
      s_.pop_back();
      if (conflicting(q.right, ei)) std::swap(q.left, q.right);
      if (conflicting(q.right, ei)) return false;  // both sides conflict
      if (p.right.low != -1) ref_[p.right.low] = q.right.high;
      if (q.right.low != -1) p.right.low = q.right.low;
      if (p.left.empty()) {
        p.left.high = q.left.high;
      } else {
        ref_[p.left.low] = q.left.high;
      }
      p.left.low = q.left.low;
    }
    if (!(p.left.empty() && p.right.empty())) s_.push_back(p);
    return true;
  }

  // Called once v's subtree is fully processed; e = parent_edge[v].
  void remove_back_edges(int e) {
    const VertexId u = source(e);
    // Drop conflict pairs whose lowest return point is u itself.
    while (!s_.empty() && lowest(s_.back()) == height_[u]) {
      s_.pop_back();
    }
    if (!s_.empty()) {
      ConflictPair p = s_.back();
      s_.pop_back();
      while (p.left.high != -1 && target(p.left.high) == u) {
        p.left.high = ref_[p.left.high];
      }
      if (p.left.high == -1 && p.left.low != -1) {
        ref_[p.left.low] = p.right.low;
        p.left.low = -1;
      }
      while (p.right.high != -1 && target(p.right.high) == u) {
        p.right.high = ref_[p.right.high];
      }
      if (p.right.high == -1 && p.right.low != -1) {
        ref_[p.right.low] = p.left.low;
        p.right.low = -1;
      }
      s_.push_back(p);
    }
    if (lowpt_[e] < height_[u] && !s_.empty()) {  // e has a return edge
      const int hl = s_.back().left.high;
      const int hr = s_.back().right.high;
      if (hl != -1 && (hr == -1 || lowpt_[hl] > lowpt_[hr])) {
        ref_[e] = hl;
      } else {
        ref_[e] = hr;
      }
    }
  }

  // Phase 2: the testing DFS over nesting-depth-ordered adjacencies.
  bool dfs_test(VertexId root) {
    struct Frame {
      VertexId v;
      std::size_t idx;
      bool resume;
    };
    std::vector<Frame> stack{{root, 0, false}};
    while (!stack.empty()) {
      auto [v, idx, resume] = stack.back();
      stack.pop_back();
      const auto& adj = ordered_adj_[v];
      const int e = parent_edge_[v];
      bool descended = false;
      for (; idx < adj.size(); ++idx) {
        const int ei = adj[idx];
        if (!resume) {
          stack_bottom_[ei] = static_cast<int>(s_.size());
          if (ei == parent_edge_[target(ei)]) {  // tree edge: descend first
            stack.push_back({v, idx, true});
            stack.push_back({target(ei), 0, false});
            descended = true;
            break;
          }
          lowpt_edge_[ei] = ei;  // back edge: its own return edge
          s_.push_back(ConflictPair{{}, {ei, ei}});
        }
        resume = false;
        if (lowpt_[ei] < height_[v]) {  // ei has a return edge below v
          if (idx == 0) {
            lowpt_edge_[e] = lowpt_edge_[ei];
          } else if (!add_constraints(ei, e)) {
            return false;
          }
        }
      }
      if (descended) continue;
      if (e != -1) remove_back_edges(e);
    }
    return true;
  }

  const Graph& g_;
  int n_, m_;
  std::vector<int> height_;
  std::vector<int> parent_edge_;   // directed edge id into each vertex
  std::vector<int> orientation_;   // per undirected edge: chosen parity or -1
  std::vector<int> lowpt_, lowpt2_, nesting_depth_;
  std::vector<int> ref_, lowpt_edge_, stack_bottom_;
  std::vector<std::vector<int>> ordered_adj_;
  std::vector<ConflictPair> s_;
};

}  // namespace

bool is_planar(const Graph& g) {
  if (g.num_vertices() <= 4) return true;  // K5 is the smallest non-planar graph
  return LeftRight(g).run();
}

}  // namespace ecd::seq
