#include "src/seq/ldd.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "src/graph/metrics.h"
#include "src/graph/subgraph.h"

namespace ecd::seq {

using graph::Graph;
using graph::VertexId;

namespace {

// BFS distances from `root` restricted to one piece.
std::vector<int> bfs_within(const Graph& g, const std::vector<int>& piece_of,
                            int piece, VertexId root) {
  std::vector<int> dist(g.num_vertices(), graph::kUnreachable);
  std::queue<VertexId> q;
  dist[root] = 0;
  q.push(root);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : g.neighbors(v)) {
      if (piece_of[u] == piece && dist[u] == graph::kUnreachable) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

// Splits each piece into BFS strips of `width` layers (random offset) and
// relabels pieces as connected components of the strips.
std::vector<int> slice_round(const Graph& g, std::vector<int> piece_of,
                             int num_pieces, int width, std::mt19937_64& rng) {
  const int n = g.num_vertices();
  std::uniform_int_distribution<int> offset_dist(0, width - 1);
  // strip key per vertex; distinct (piece, strip) pairs become new pieces.
  std::vector<std::int64_t> strip_key(n, -1);
  for (int p = 0; p < num_pieces; ++p) {
    VertexId root = graph::kInvalidVertex;
    for (VertexId v = 0; v < n; ++v) {
      if (piece_of[v] == p) {
        root = v;
        break;
      }
    }
    if (root == graph::kInvalidVertex) continue;
    const int offset = offset_dist(rng);
    // Pieces may be disconnected (strips of earlier rounds); BFS from every
    // yet-unreached vertex of the piece.
    std::vector<int> dist = bfs_within(g, piece_of, p, root);
    for (VertexId v = 0; v < n; ++v) {
      if (piece_of[v] == p && dist[v] == graph::kUnreachable) {
        auto extra = bfs_within(g, piece_of, p, v);
        for (VertexId u = 0; u < n; ++u) {
          if (extra[u] != graph::kUnreachable && dist[u] == graph::kUnreachable) {
            dist[u] = extra[u];
          }
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (piece_of[v] == p) {
        strip_key[v] = static_cast<std::int64_t>(p) * (n + 1) +
                       (dist[v] + offset) / width;
      }
    }
  }
  // Connected components within equal strip keys become the new pieces.
  std::vector<int> next(n, -1);
  int next_count = 0;
  for (VertexId s = 0; s < n; ++s) {
    if (next[s] != -1) continue;
    const int label = next_count++;
    std::queue<VertexId> q;
    next[s] = label;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (VertexId u : g.neighbors(v)) {
        if (next[u] == -1 && strip_key[u] == strip_key[v]) {
          next[u] = label;
          q.push(u);
        }
      }
    }
  }
  (void)num_pieces;
  piece_of = std::move(next);
  return piece_of;
}

int count_pieces(const std::vector<int>& piece_of) {
  int mx = -1;
  for (int p : piece_of) mx = std::max(mx, p);
  return mx + 1;
}

}  // namespace

LddResult ldd_minor_free(const Graph& g, double eps, std::mt19937_64& rng,
                         const LddOptions& options) {
  if (eps <= 0.0 || eps > 1.0) throw std::invalid_argument("eps out of (0,1]");
  // Each slicing round cuts at most |E|/width edges (an edge spans adjacent
  // BFS layers and is cut with probability 1/width under the random
  // offset), so the width must absorb all rounds plus carving slack. If the
  // measured cut still exceeds the budget, the width doubles and the
  // decomposition reruns — diameter stays O(1/eps).
  int width = std::max(
      2, static_cast<int>(std::ceil((2.0 * options.slicing_rounds + 2.0) / eps)));
  for (int attempt = 0;; ++attempt, width *= 2) {
    LddResult result = ldd_with_width(g, width, rng, options);
    if (result.cut_edges <= eps * g.num_edges() + 1e-9 || attempt >= 4) {
      return result;
    }
  }
}

LddResult ldd_with_width(const Graph& g, int width, std::mt19937_64& rng,
                         const LddOptions& options) {
  const int n = g.num_vertices();
  std::vector<int> piece_of(n, 0);
  int pieces = n > 0 ? 1 : 0;
  for (int round = 0; round < options.slicing_rounds && n > 0; ++round) {
    piece_of = slice_round(g, std::move(piece_of), pieces, width, rng);
    pieces = count_pieces(piece_of);
  }

  // Cleanup: cap the strong diameter by carving BFS balls of radius
  // `cap` from any piece that exceeds 2*cap.
  const int cap = options.diameter_cap_factor * width / 2;
  bool changed = true;
  while (changed) {
    changed = false;
    pieces = count_pieces(piece_of);
    for (int p = 0; p < pieces; ++p) {
      VertexId root = graph::kInvalidVertex;
      for (VertexId v = 0; v < n; ++v) {
        if (piece_of[v] == p) {
          root = v;
          break;
        }
      }
      if (root == graph::kInvalidVertex) continue;
      auto dist = bfs_within(g, piece_of, p, root);
      // Two-sweep: restart from the farthest vertex for a sharper estimate.
      VertexId far = root;
      for (VertexId v = 0; v < n; ++v) {
        if (piece_of[v] == p && dist[v] != graph::kUnreachable &&
            (far == root || dist[v] > dist[far])) {
          far = v;
        }
      }
      dist = bfs_within(g, piece_of, p, far);
      int ecc = 0;
      bool disconnected = false;
      for (VertexId v = 0; v < n; ++v) {
        if (piece_of[v] != p) continue;
        if (dist[v] == graph::kUnreachable) {
          disconnected = true;
        } else {
          ecc = std::max(ecc, dist[v]);
        }
      }
      if (disconnected || ecc > 2 * cap) {
        // Carve the radius-`cap` ball around `far` into a fresh piece.
        const int fresh = pieces++;
        for (VertexId v = 0; v < n; ++v) {
          if (piece_of[v] == p && dist[v] != graph::kUnreachable &&
              dist[v] <= cap) {
            piece_of[v] = fresh;
          }
        }
        changed = true;
      }
    }
  }

  // Compact labels.
  LddResult result;
  result.cluster_of.assign(n, -1);
  std::vector<int> remap(count_pieces(piece_of), -1);
  for (VertexId v = 0; v < n; ++v) {
    int& slot = remap[piece_of[v]];
    if (slot == -1) slot = result.num_clusters++;
    result.cluster_of[v] = slot;
  }
  result.cut_edges = ldd_cut_edges(g, result.cluster_of);
  return result;
}

int ldd_cut_edges(const Graph& g, const std::vector<int>& cluster_of) {
  int cut = 0;
  for (const graph::Edge& e : g.edges()) {
    if (cluster_of[e.u] != cluster_of[e.v]) ++cut;
  }
  return cut;
}

int ldd_max_diameter(const Graph& g, const std::vector<int>& cluster_of) {
  const int k = count_pieces(cluster_of);
  std::vector<std::vector<VertexId>> members(k);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    members[cluster_of[v]].push_back(v);
  }
  int worst = 0;
  for (const auto& m : members) {
    if (m.size() <= 1) continue;
    const auto sub = graph::induced_subgraph(g, m);
    worst = std::max(worst, graph::exact_diameter(sub.graph));
  }
  return worst;
}

}  // namespace ecd::seq
