// Linear-time planarity testing via the left-right criterion
// (de Fraysseix–Rosenstiehl, in Brandes' formulation).
//
// Used by §3.4 property testing: cluster leaders must decide whether G[V_i]
// has the minor-closed property; for P = planarity that is this test.
#pragma once

#include "src/graph/graph.h"

namespace ecd::seq {

bool is_planar(const graph::Graph& g);

// Independent second implementation: Demoucron–Malgrange–Pertuiset face
// embedding over biconnected components, O(n·m). Used to cross-validate the
// left-right test on instances far beyond the exponential minor oracle.
bool is_planar_demoucron(const graph::Graph& g);

// Fast necessary condition (Euler's bound): planar => m <= 3n - 6 for n >= 3.
bool satisfies_euler_bound(const graph::Graph& g);

}  // namespace ecd::seq
