// Minor-closed graph properties for the distributed property tester (§3.4).
//
// A property enters the tester as (a) a local recognizer the cluster leader
// runs on G[V_i] and (b) the clique threshold s = min { s : K_s not in P },
// which determines the forbidden minor H = K_s the framework assumes (the
// paper's construction, §3.4). Every property here is minor-closed and
// closed under disjoint union, as Theorem 1.4 requires.
#pragma once

#include <functional>
#include <string>

#include "src/graph/graph.h"

namespace ecd::seq {

struct MinorClosedProperty {
  std::string name;
  // Smallest s such that K_s does not have the property.
  int clique_threshold = 0;
  std::function<bool(const graph::Graph&)> check;
};

// Concrete recognizers -------------------------------------------------------

bool is_forest(const graph::Graph& g);
// Treewidth <= 2 iff the graph reduces to nothing under degree-<=2 peeling.
bool has_treewidth_at_most_2(const graph::Graph& g);
// Outerplanar iff the graph plus one apex vertex (adjacent to everything)
// is planar.
bool is_outerplanar(const graph::Graph& g);

// Ready-made properties (K_3 excludes forests, K_4 outerplanar & tw<=2,
// K_5 planar).
MinorClosedProperty forest_property();
MinorClosedProperty outerplanar_property();
MinorClosedProperty treewidth2_property();
MinorClosedProperty planar_property();

}  // namespace ecd::seq
