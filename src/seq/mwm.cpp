#include "src/seq/mwm.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ecd::seq {

using graph::Graph;
using graph::kInvalidVertex;
using graph::VertexId;
using graph::Weight;

namespace {

// Primal-dual weighted blossom algorithm, O(n^3).
//
// Internally 1-indexed; indices in (n, 2n] denote contracted blossoms and
// index 0 is a sentinel. `S` labels: 0 = outer (even), 1 = inner (odd),
// -1 = free. Dual feasibility: for every edge, lab[u] + lab[v] >= 2*w, with
// equality ("tight") required for matched edges; blossom duals stay >= 0.
class WeightedBlossom {
 public:
  explicit WeightedBlossom(int n) : n_(n), n_x_(n) {
    const int cap = 2 * n_ + 1;
    g_.assign(cap, std::vector<Arc>(cap));
    lab_.assign(cap, 0);
    match_.assign(cap, 0);
    slack_.assign(cap, 0);
    st_.assign(cap, 0);
    pa_.assign(cap, 0);
    s_.assign(cap, -1);
    vis_.assign(cap, 0);
    flower_.assign(cap, {});
    flower_from_.assign(cap, std::vector<int>(n_ + 1, 0));
    for (int u = 1; u <= n_; ++u) {
      for (int v = 1; v <= n_; ++v) g_[u][v] = Arc{u, v, 0};
    }
  }

  void add_edge(int u, int v, std::int64_t w) {
    g_[u][v].w = g_[v][u].w = w;
  }

  // Returns the 1-indexed mate array (0 = unmatched).
  std::vector<int> solve() {
    std::fill(match_.begin(), match_.end(), 0);
    n_x_ = n_;
    std::int64_t w_max = 0;
    for (int u = 1; u <= n_; ++u) {
      st_[u] = u;
      flower_[u].clear();
      for (int v = 1; v <= n_; ++v) {
        flower_from_[u][v] = (u == v ? u : 0);
        w_max = std::max(w_max, g_[u][v].w);
      }
    }
    for (int u = 1; u <= n_; ++u) lab_[u] = w_max;
    while (grow()) {
    }
    return {match_.begin(), match_.begin() + n_ + 1};
  }

 private:
  struct Arc {
    int u = 0, v = 0;
    std::int64_t w = 0;
  };

  static constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;

  std::int64_t delta(const Arc& e) const {
    return lab_[e.u] + lab_[e.v] - g_[e.u][e.v].w * 2;
  }

  void update_slack(int u, int x) {
    if (!slack_[x] || delta(g_[u][x]) < delta(g_[slack_[x]][x])) slack_[x] = u;
  }

  void set_slack(int x) {
    slack_[x] = 0;
    for (int u = 1; u <= n_; ++u) {
      if (g_[u][x].w > 0 && st_[u] != x && s_[st_[u]] == 0) update_slack(u, x);
    }
  }

  void q_push(int x) {
    if (x <= n_) {
      q_.push_back(x);
    } else {
      for (int y : flower_[x]) q_push(y);
    }
  }

  void set_st(int x, int b) {
    st_[x] = b;
    if (x > n_) {
      for (int y : flower_[x]) set_st(y, b);
    }
  }

  // Position of sub-blossom xr inside b's cycle, normalized to be even by
  // reversing the cycle direction when necessary.
  int get_pr(int b, int xr) {
    auto& f = flower_[b];
    const int pr =
        static_cast<int>(std::find(f.begin(), f.end(), xr) - f.begin());
    if (pr % 2 == 1) {
      std::reverse(f.begin() + 1, f.end());
      return static_cast<int>(f.size()) - pr;
    }
    return pr;
  }

  void set_match(int u, int v) {
    match_[u] = g_[u][v].v;
    if (u > n_) {
      const Arc e = g_[u][v];
      const int xr = flower_from_[u][e.u];
      const int pr = get_pr(u, xr);
      for (int i = 0; i < pr; ++i) {
        set_match(flower_[u][i], flower_[u][i ^ 1]);
      }
      set_match(xr, v);
      std::rotate(flower_[u].begin(), flower_[u].begin() + pr,
                  flower_[u].end());
    }
  }

  void augment(int u, int v) {
    for (;;) {
      const int xnv = st_[match_[u]];
      set_match(u, v);
      if (!xnv) return;
      set_match(xnv, st_[pa_[xnv]]);
      u = st_[pa_[xnv]];
      v = xnv;
    }
  }

  int get_lca(int u, int v) {
    for (++timer_; u || v; std::swap(u, v)) {
      if (u == 0) continue;
      if (vis_[u] == timer_) return u;
      vis_[u] = timer_;
      u = st_[match_[u]];
      if (u) u = st_[pa_[u]];
    }
    return 0;
  }

  void add_blossom(int u, int lca, int v) {
    int b = n_ + 1;
    while (b <= n_x_ && st_[b]) ++b;
    if (b > n_x_) ++n_x_;
    lab_[b] = 0;
    s_[b] = 0;
    match_[b] = match_[lca];
    flower_[b].clear();
    flower_[b].push_back(lca);
    for (int x = u, y; x != lca; x = st_[pa_[y]]) {
      flower_[b].push_back(x);
      flower_[b].push_back(y = st_[match_[x]]);
      q_push(y);
    }
    std::reverse(flower_[b].begin() + 1, flower_[b].end());
    for (int x = v, y; x != lca; x = st_[pa_[y]]) {
      flower_[b].push_back(x);
      flower_[b].push_back(y = st_[match_[x]]);
      q_push(y);
    }
    set_st(b, b);
    for (int x = 1; x <= n_x_; ++x) g_[b][x].w = g_[x][b].w = 0;
    for (int x = 1; x <= n_; ++x) flower_from_[b][x] = 0;
    for (const int xs : flower_[b]) {
      for (int x = 1; x <= n_x_; ++x) {
        if (g_[b][x].w == 0 || delta(g_[xs][x]) < delta(g_[b][x])) {
          g_[b][x] = g_[xs][x];
          g_[x][b] = g_[x][xs];
        }
      }
      for (int x = 1; x <= n_; ++x) {
        if (flower_from_[xs][x]) flower_from_[b][x] = xs;
      }
    }
    set_slack(b);
  }

  void expand_blossom(int b) {  // requires s_[b] == 1 and lab_[b] == 0
    for (const int xs : flower_[b]) set_st(xs, xs);
    const int xr = flower_from_[b][g_[b][pa_[b]].u];
    const int pr = get_pr(b, xr);
    for (int i = 0; i < pr; i += 2) {
      const int xs = flower_[b][i];
      const int xns = flower_[b][i + 1];
      pa_[xs] = g_[xns][xs].u;
      s_[xs] = 1;
      s_[xns] = 0;
      slack_[xs] = 0;
      set_slack(xns);
      q_push(xns);
    }
    s_[xr] = 1;
    pa_[xr] = pa_[b];
    for (int i = pr + 1; i < static_cast<int>(flower_[b].size()); ++i) {
      const int xs = flower_[b][i];
      s_[xs] = -1;
      set_slack(xs);
    }
    st_[b] = 0;
  }

  // Processes a newly tight edge; returns true if an augmentation happened.
  bool on_found_edge(const Arc& e) {
    const int u = st_[e.u];
    const int v = st_[e.v];
    if (s_[v] == -1) {
      pa_[v] = e.u;
      s_[v] = 1;
      const int nu = st_[match_[v]];
      slack_[v] = slack_[nu] = 0;
      s_[nu] = 0;
      q_push(nu);
    } else if (s_[v] == 0) {
      const int lca = get_lca(u, v);
      if (!lca) {
        augment(u, v);
        augment(v, u);
        return true;
      }
      add_blossom(u, lca, v);
    }
    return false;
  }

  // One phase: grow alternating trees / adjust duals until an augmenting
  // path is found (true) or the duals certify optimality (false).
  bool grow() {
    std::fill(s_.begin(), s_.begin() + n_x_ + 1, -1);
    std::fill(slack_.begin(), slack_.begin() + n_x_ + 1, 0);
    q_.clear();
    for (int x = 1; x <= n_x_; ++x) {
      if (st_[x] == x && !match_[x]) {
        pa_[x] = 0;
        s_[x] = 0;
        q_push(x);
      }
    }
    if (q_.empty()) return false;
    for (;;) {
      while (!q_.empty()) {
        const int v = q_.front();
        q_.pop_front();
        if (s_[st_[v]] == 1) continue;
        for (int u = 1; u <= n_; ++u) {
          if (g_[v][u].w > 0 && st_[u] != st_[v]) {
            if (delta(g_[v][u]) == 0) {
              if (on_found_edge(g_[v][u])) return true;
            } else {
              update_slack(v, st_[u]);
            }
          }
        }
      }
      // Dual adjustment.
      std::int64_t d = kInf;
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1) d = std::min(d, lab_[b] / 2);
      }
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x]) {
          if (s_[x] == -1) {
            d = std::min(d, delta(g_[slack_[x]][x]));
          } else if (s_[x] == 0) {
            d = std::min(d, delta(g_[slack_[x]][x]) / 2);
          }
        }
      }
      for (int u = 1; u <= n_; ++u) {
        if (s_[st_[u]] == 0) {
          if (lab_[u] <= d) return false;  // dual hits 0: matching is optimal
          lab_[u] -= d;
        } else if (s_[st_[u]] == 1) {
          lab_[u] += d;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] >= 0) {
          lab_[b] += (s_[b] == 0 ? 2 * d : -2 * d);
        }
      }
      q_.clear();
      for (int x = 1; x <= n_x_; ++x) {
        if (st_[x] == x && slack_[x] && st_[slack_[x]] != x &&
            delta(g_[slack_[x]][x]) == 0) {
          if (on_found_edge(g_[slack_[x]][x])) return true;
        }
      }
      for (int b = n_ + 1; b <= n_x_; ++b) {
        if (st_[b] == b && s_[b] == 1 && lab_[b] == 0) expand_blossom(b);
      }
    }
  }

  int n_;
  int n_x_;  // number of live node slots (vertices + blossoms)
  std::vector<std::vector<Arc>> g_;
  std::vector<std::int64_t> lab_;
  std::vector<int> match_, slack_, st_, pa_, s_, vis_;
  std::vector<std::vector<int>> flower_;
  std::vector<std::vector<int>> flower_from_;
  std::deque<int> q_;
  int timer_ = 0;
};

}  // namespace

Mates max_weight_matching(const Graph& g) {
  const int n = g.num_vertices();
  Mates mates(n, kInvalidVertex);
  if (n == 0 || g.num_edges() == 0) return mates;
  WeightedBlossom solver(n);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    solver.add_edge(ed.u + 1, ed.v + 1, g.weight(e));
  }
  const std::vector<int> match = solver.solve();
  for (VertexId v = 0; v < n; ++v) {
    if (match[v + 1] != 0) mates[v] = match[v + 1] - 1;
  }
  return mates;
}

namespace {

void mwm_brute(const Graph& g, int edge_index, Mates& current,
               std::int64_t weight, std::vector<std::int64_t>& suffix_sum,
               Mates& best, std::int64_t& best_weight) {
  if (weight > best_weight) {
    best_weight = weight;
    best = current;
  }
  if (edge_index >= g.num_edges()) return;
  if (weight + suffix_sum[edge_index] <= best_weight) return;
  const graph::Edge e = g.edge(edge_index);
  if (current[e.u] == kInvalidVertex && current[e.v] == kInvalidVertex) {
    current[e.u] = e.v;
    current[e.v] = e.u;
    mwm_brute(g, edge_index + 1, current, weight + g.weight(edge_index),
              suffix_sum, best, best_weight);
    current[e.u] = kInvalidVertex;
    current[e.v] = kInvalidVertex;
  }
  mwm_brute(g, edge_index + 1, current, weight, suffix_sum, best, best_weight);
}

}  // namespace

Mates max_weight_matching_bruteforce(const Graph& g) {
  Mates current(g.num_vertices(), kInvalidVertex);
  Mates best = current;
  std::int64_t best_weight = 0;
  std::vector<std::int64_t> suffix_sum(g.num_edges() + 1, 0);
  for (int e = g.num_edges() - 1; e >= 0; --e) {
    suffix_sum[e] = suffix_sum[e + 1] + g.weight(e);
  }
  mwm_brute(g, 0, current, 0, suffix_sum, best, best_weight);
  return best;
}

Mates greedy_weight_matching(const Graph& g) {
  std::vector<graph::EdgeId> order(g.num_edges());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&g](graph::EdgeId a, graph::EdgeId b) {
                     return g.weight(a) > g.weight(b);
                   });
  Mates mate(g.num_vertices(), kInvalidVertex);
  for (graph::EdgeId e : order) {
    const graph::Edge ed = g.edge(e);
    if (mate[ed.u] == kInvalidVertex && mate[ed.v] == kInvalidVertex) {
      mate[ed.u] = ed.v;
      mate[ed.v] = ed.u;
    }
  }
  return mate;
}

std::int64_t matching_weight(const Graph& g, const Mates& mates) {
  std::int64_t total = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (mates[v] != kInvalidVertex && v < mates[v]) {
      const graph::EdgeId e = g.find_edge(v, mates[v]);
      if (e == graph::kInvalidEdge) {
        throw std::logic_error("mate is not an edge");
      }
      total += g.weight(e);
    }
  }
  return total;
}

}  // namespace ecd::seq
