// Sequential low-diameter decompositions (§3.5).
//
// For H-minor-free graphs an (ε, D) decomposition with D = O(1/ε) exists
// [KPR93, FT03, AGGNT19]; cluster leaders run this sequential routine in
// the distributed construction of Theorem 1.5. The implementation is
// KPR-style iterated BFS slicing with strip width Θ(1/ε) plus a ball-carving
// cleanup that enforces the strong-diameter bound.
#pragma once

#include <random>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::seq {

struct LddResult {
  std::vector<int> cluster_of;  // cluster label per vertex, dense in [0, k)
  int num_clusters = 0;
  int cut_edges = 0;  // edges between different clusters
};

struct LddOptions {
  // Number of BFS slicing rounds; 3 suffices for planar graphs (KPR uses
  // k rounds for K_k-minor-free).
  int slicing_rounds = 3;
  // Enforce strong diameter <= diameter_cap_factor * width by ball carving.
  int diameter_cap_factor = 4;
};

// Decomposes g with strip width Θ(1/eps); guarantees cut <= eps * |E|
// (verify-and-widen retry) with per-cluster strong diameter O(1/eps).
LddResult ldd_minor_free(const graph::Graph& g, double eps,
                         std::mt19937_64& rng, const LddOptions& options = {});

// One decomposition pass at a fixed strip width (no budget retry).
LddResult ldd_with_width(const graph::Graph& g, int width,
                         std::mt19937_64& rng, const LddOptions& options = {});

// Evaluation helpers shared by tests and benches.
int ldd_cut_edges(const graph::Graph& g, const std::vector<int>& cluster_of);
// Maximum over clusters of the exact strong diameter of G[cluster].
int ldd_max_diameter(const graph::Graph& g,
                     const std::vector<int>& cluster_of);

}  // namespace ecd::seq
