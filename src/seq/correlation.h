// Agreement-maximization correlation clustering (§3.3).
//
// score(C) = #(positive intra-cluster edges) + #(negative inter-cluster
// edges). Exact maximization is APX-hard; leaders solve clusters exactly by
// subset DP while small and by local search beyond that, always at least
// matching the paper's |E|/2 baseline (all-singletons vs all-together).
#pragma once

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::seq {

// cluster label per vertex; labels need not be contiguous.
using Clustering = std::vector<int>;

std::int64_t agreement_score(const graph::Graph& g, const Clustering& c);

// Exact optimum by DP over set partitions; requires n <= 16 (O(3^n)).
Clustering correlation_exact(const graph::Graph& g);

// Single-vertex-move hill climbing from the better of the two trivial
// clusterings (all-singletons / all-together).
Clustering correlation_local_search(const graph::Graph& g,
                                    int max_rounds = 50);

struct CorrelationResult {
  Clustering clustering;
  bool exact = false;
};
// Exact when n <= exact_threshold, otherwise local search.
CorrelationResult best_effort_correlation(const graph::Graph& g,
                                          int exact_threshold = 15);

}  // namespace ecd::seq
