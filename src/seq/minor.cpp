#include "src/seq/minor.h"

#include <vector>

#include "src/graph/generators.h"

namespace ecd::seq {

using graph::Graph;
using graph::VertexId;

namespace {

class MinorSearch {
 public:
  MinorSearch(const Graph& g, const Graph& h, std::int64_t budget)
      : g_(g), h_(h), budget_(budget), owner_(g.num_vertices(), -1) {
    sets_.resize(h_.num_vertices());
  }

  std::optional<bool> run() {
    if (h_.num_vertices() > g_.num_vertices() ||
        h_.num_edges() > g_.num_edges()) {
      return false;
    }
    const bool found = place(0);
    if (exhausted_) return std::nullopt;
    return found;
  }

 private:
  // Opens a branch set for H-vertex i. Symmetry breaking: the root is the
  // minimum G-vertex of the set, so growth only adds vertices above it.
  bool place(int i) {
    if (exhausted_) return false;
    if (i == h_.num_vertices()) return true;
    const int unassigned =
        g_.num_vertices() - assigned_count_;
    if (unassigned < h_.num_vertices() - i) return false;
    for (VertexId root = 0; root < g_.num_vertices(); ++root) {
      if (owner_[root] != -1) continue;
      owner_[root] = i;
      ++assigned_count_;
      sets_[i] = {root};
      if (extend(i, root)) return true;
      owner_[root] = -1;
      --assigned_count_;
      sets_[i].clear();
    }
    return false;
  }

  bool adjacency_satisfied(int i) const {
    for (VertexId j : h_.neighbors(i)) {
      if (j >= i) continue;  // handled when the later endpoint is placed
      bool touched = false;
      for (VertexId v : sets_[i]) {
        for (VertexId u : g_.neighbors(v)) {
          if (owner_[u] == j) {
            touched = true;
            break;
          }
        }
        if (touched) break;
      }
      if (!touched) return false;
    }
    return true;
  }

  // Either closes branch set i (if its H-adjacencies to earlier sets hold)
  // or grows it by an unassigned neighbor above the root.
  bool extend(int i, VertexId root) {
    if (--budget_ < 0) {
      exhausted_ = true;
      return false;
    }
    if (adjacency_satisfied(i) && place(i + 1)) return true;
    if (exhausted_) return false;
    // Candidate growth vertices: neighbors of the current set, each tried
    // once (flagged via `tried` to avoid duplicates within this level).
    std::vector<VertexId> candidates;
    std::vector<bool> seen(g_.num_vertices(), false);
    for (VertexId v : sets_[i]) {
      for (VertexId u : g_.neighbors(v)) {
        if (u > root && owner_[u] == -1 && !seen[u]) {
          seen[u] = true;
          candidates.push_back(u);
        }
      }
    }
    for (VertexId u : candidates) {
      owner_[u] = i;
      ++assigned_count_;
      sets_[i].push_back(u);
      if (extend(i, root)) return true;
      owner_[u] = -1;
      --assigned_count_;
      sets_[i].pop_back();
      if (exhausted_) return false;
    }
    return false;
  }

  const Graph& g_;
  const Graph& h_;
  std::int64_t budget_;
  bool exhausted_ = false;
  int assigned_count_ = 0;
  std::vector<int> owner_;
  std::vector<std::vector<VertexId>> sets_;
};

}  // namespace

std::optional<bool> has_minor(const Graph& g, const Graph& h,
                              const MinorOptions& options) {
  return MinorSearch(g, h, options.node_budget).run();
}

std::optional<bool> is_planar_by_minors(const Graph& g,
                                        const MinorOptions& options) {
  const auto k5 = has_minor(g, graph::complete(5), options);
  if (!k5.has_value()) return std::nullopt;
  if (*k5) return false;
  const auto k33 = has_minor(g, graph::complete_bipartite(3, 3), options);
  if (!k33.has_value()) return std::nullopt;
  return !*k33;
}

std::optional<bool> is_outerplanar_by_minors(const Graph& g,
                                             const MinorOptions& options) {
  const auto k4 = has_minor(g, graph::complete(4), options);
  if (!k4.has_value()) return std::nullopt;
  if (*k4) return false;
  const auto k23 = has_minor(g, graph::complete_bipartite(2, 3), options);
  if (!k23.has_value()) return std::nullopt;
  return !*k23;
}

}  // namespace ecd::seq
