// Balanced edge separators (Theorem 1.6).
//
// The paper proves every H-minor-free graph has a cut {S, V\S} with
// min(|S|,|V\S|) >= n/3 and |∂S| = O(sqrt(Δ n)). This module *finds* small
// balanced separators (BFS-sweep + Fiedler-style sweep + FM refinement) so
// the benchmark can plot measured |∂S| against the sqrt(Δ n) envelope.
#pragma once

#include <random>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::seq {

struct SeparatorResult {
  std::vector<bool> in_s;  // side indicator
  int cut_size = 0;
  int smaller_side = 0;
};

// Finds a balanced (>= n/3 per side) edge separator, heuristically
// minimizing the cut. `sweeps` controls how many BFS orderings are tried.
SeparatorResult edge_separator(const graph::Graph& g, std::mt19937_64& rng,
                               int sweeps = 4);

// Exhaustive oracle for tiny graphs (n <= 20): the true minimum balanced cut.
SeparatorResult edge_separator_bruteforce(const graph::Graph& g);

}  // namespace ecd::seq
