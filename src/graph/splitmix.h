// splitmix64 — the seed-derivation step used everywhere a component needs an
// independent random stream derived from a user-facing seed (fault draws,
// spectral restart seeds, framework phase seeds).
//
// Derived streams must not be related by small arithmetic offsets: mt19937_64
// seeded with `s` and `s + k` produces correlated early output, and the
// CONGEST fault layer additionally needs a *stateless* per-(round, edge,
// slot) draw that is identical no matter which thread evaluates it.
// splitmix64 is a full-avalanche mixer (every input bit flips ~half the
// output bits), so seed ^ counter inputs yield independent-looking streams,
// and it is constexpr-evaluable and allocation-free.
#pragma once

#include <cstdint>

namespace ecd::graph {

constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0, 1) from a hash value (53 mantissa bits).
constexpr double splitmix_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace ecd::graph
