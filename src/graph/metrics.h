// Structural graph metrics: BFS, diameter, connectivity, degeneracy.
#pragma once

#include <limits>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::graph {

constexpr int kUnreachable = std::numeric_limits<int>::max();

// BFS hop distances from `source`; unreachable vertices get kUnreachable.
std::vector<int> bfs_distances(const Graph& g, VertexId source);

// Connected-component labels in [0, k); returns labels and component count.
struct Components {
  std::vector<int> label;
  int count = 0;
};
Components connected_components(const Graph& g);

bool is_connected(const Graph& g);

// Exact diameter via all-pairs BFS (intended for n up to a few thousand).
// Returns 0 for n <= 1 and kUnreachable for disconnected graphs.
int exact_diameter(const Graph& g);

// Lower bound on the diameter via a two-sweep BFS heuristic; exact on trees.
int two_sweep_diameter_lower_bound(const Graph& g);

// Degeneracy (max over the peeling order of the minimum degree) and the
// corresponding elimination order. Arboricity <= degeneracy <= 2*arboricity-1.
struct DegeneracyResult {
  int degeneracy = 0;
  std::vector<VertexId> order;  // peeling order, lowest-degree-first
};
DegeneracyResult degeneracy(const Graph& g);

// Biconnected components as edge partitions (Hopcroft–Tarjan): every edge
// belongs to exactly one block; bridges form singleton blocks.
std::vector<std::vector<EdgeId>> biconnected_components(const Graph& g);

// Greedy low-out-degree orientation derived from the degeneracy order:
// orients each edge from the earlier-peeled endpoint to the later one, so
// every vertex has out-degree <= degeneracy. Returns, for each vertex, the
// edge ids it owns (sequential counterpart of Barenboim–Elkin, §2.2).
std::vector<std::vector<EdgeId>> degeneracy_orientation(const Graph& g);

}  // namespace ecd::graph
