// Plain-text graph IO: whitespace edge lists and Graphviz DOT export.
#pragma once

#include <iosfwd>
#include <string>

#include "src/graph/graph.h"

namespace ecd::graph {

// Format: first line "n m", then m lines "u v [weight]".
// Weights are emitted/parsed only when the graph is weighted.
void write_edge_list(const Graph& g, std::ostream& os);
Graph read_edge_list(std::istream& is);

// DOT export, with cluster colors if `cluster_of` is non-empty.
std::string to_dot(const Graph& g, const std::vector<int>& cluster_of = {});

}  // namespace ecd::graph
