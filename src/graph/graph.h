// Core immutable graph representation (CSR) plus a mutable builder.
//
// All algorithms in this library operate on `ecd::graph::Graph`: a simple
// undirected graph stored in compressed-sparse-row form, with optional
// per-edge integer weights (for MWM) and signs (for correlation clustering).
//
// Invariants enforced at construction:
//   * no self loops, no parallel edges;
//   * vertex ids are dense in [0, n);
//   * edge ids are dense in [0, m) and `edge(e)` returns endpoints with u < v.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

namespace ecd::graph {

using VertexId = std::int32_t;
using EdgeId = std::int32_t;
using Weight = std::int64_t;

constexpr VertexId kInvalidVertex = -1;
constexpr EdgeId kInvalidEdge = -1;

// Edge endpoints, normalized so that u < v in stored form.
struct Edge {
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
};

// Sign of an edge in a correlation-clustering instance (§3.3 of the paper).
enum class EdgeSign : std::int8_t { kNegative = -1, kPositive = 1 };

// Receiver for Graph::from_edge_stream: the stream calls edge(u, v) once
// per edge, endpoints in either order.
class EdgeSink {
 public:
  virtual void edge(VertexId u, VertexId v) = 0;

 protected:
  ~EdgeSink() = default;
};

// An edge sequence that can be replayed: generate(sink) must emit the
// identical sequence every time it is called. Generators whose edges are a
// pure function of loop indices (grids, paths, hypercubes) satisfy this for
// free; randomized generators would need to reseed per call.
class EdgeStream {
 public:
  virtual ~EdgeStream() = default;
  virtual void generate(EdgeSink& sink) = 0;
};

class Graph {
 public:
  Graph() = default;

  // Builds a graph from an edge list. Endpoints may be given in either
  // order; they are normalized. Throws std::invalid_argument on self loops,
  // parallel edges, or out-of-range endpoints.
  static Graph from_edges(int num_vertices, std::vector<Edge> edges);

  // Streaming constructor for large graphs: replays `stream` twice — pass 1
  // counts degrees, pass 2 fills the CSR arrays directly in edge-id order —
  // so peak memory is the final structure plus one n-sized cursor array.
  // from_edges peaks at roughly 2x the edge list on top of that (the list
  // itself plus a sorted copy for the parallel-edge check); here parallel
  // edges are caught by an n-sized stamp sweep over the finished adjacency
  // instead. Given the same edge sequence the result is byte-identical to
  // from_edges (same edge ids, same CSR layout). Throws the same
  // std::invalid_argument family, plus on a stream that does not replay
  // identically.
  static Graph from_edge_stream(int num_vertices, EdgeStream& stream);

  int num_vertices() const { return static_cast<int>(offsets_.size()) - 1; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  int degree(VertexId v) const { return offsets_[v + 1] - offsets_[v]; }
  int max_degree() const { return max_degree_; }

  // Sum of degrees of all vertices (= 2m for the whole graph).
  std::int64_t volume() const { return 2 * static_cast<std::int64_t>(num_edges()); }

  std::span<const VertexId> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }
  // Edge ids aligned with neighbors(v): incident_edges(v)[i] is the id of the
  // edge {v, neighbors(v)[i]}.
  std::span<const EdgeId> incident_edges(VertexId v) const {
    return {incident_.data() + offsets_[v], incident_.data() + offsets_[v + 1]};
  }

  Edge edge(EdgeId e) const { return edges_[e]; }
  std::span<const Edge> edges() const { return edges_; }

  // Returns the edge id of {u, v}, or kInvalidEdge if absent. O(deg).
  EdgeId find_edge(VertexId u, VertexId v) const;
  bool has_edge(VertexId u, VertexId v) const {
    return find_edge(u, v) != kInvalidEdge;
  }

  // Given one endpoint of edge `e`, returns the other endpoint.
  VertexId other_endpoint(EdgeId e, VertexId v) const {
    const Edge& ed = edges_[e];
    return ed.u == v ? ed.v : ed.u;
  }

  // --- Optional edge attributes -------------------------------------------

  bool is_weighted() const { return !weights_.empty(); }
  Weight weight(EdgeId e) const { return is_weighted() ? weights_[e] : 1; }
  std::int64_t total_weight() const;
  Weight max_weight() const;
  // Returns a copy of this graph carrying the given weights (size must be m,
  // all weights positive, per the paper's MWM convention).
  Graph with_weights(std::vector<Weight> weights) const;

  bool is_signed() const { return !signs_.empty(); }
  EdgeSign sign(EdgeId e) const { return signs_[e]; }
  // Returns a copy of this graph carrying the given signs (size must be m).
  Graph with_signs(std::vector<EdgeSign> signs) const;

  // Edge density |E| / |V| (0 for the empty-vertex graph).
  double edge_density() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges()) / num_vertices();
  }

 private:
  std::vector<int> offsets_;        // size n+1
  std::vector<VertexId> adjacency_; // size 2m
  std::vector<EdgeId> incident_;    // size 2m, aligned with adjacency_
  std::vector<Edge> edges_;         // size m, normalized u < v
  std::vector<Weight> weights_;     // empty or size m
  std::vector<EdgeSign> signs_;     // empty or size m
  int max_degree_ = 0;
};

// Incremental edge-list accumulator; ignores duplicate edges and self loops
// on request (useful inside randomized generators).
class GraphBuilder {
 public:
  explicit GraphBuilder(int num_vertices) : num_vertices_(num_vertices) {}

  // Adds edge {u, v}. Returns false (and does nothing) if the edge is a self
  // loop or already present.
  bool add_edge(VertexId u, VertexId v);
  bool has_edge(VertexId u, VertexId v) const;

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }

  Graph build() &&;

 private:
  static std::uint64_t key(VertexId u, VertexId v);

  int num_vertices_;
  std::vector<Edge> edges_;
  std::unordered_set<std::uint64_t> edge_keys_;
};

}  // namespace ecd::graph
