#include "src/graph/graph.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace ecd::graph {

Graph Graph::from_edges(int num_vertices, std::vector<Edge> edges) {
  if (num_vertices < 0) throw std::invalid_argument("negative vertex count");
  Graph g;
  g.offsets_.assign(num_vertices + 1, 0);
  for (Edge& e : edges) {
    if (e.u < 0 || e.v < 0 || e.u >= num_vertices || e.v >= num_vertices) {
      throw std::invalid_argument("edge endpoint out of range");
    }
    if (e.u == e.v) throw std::invalid_argument("self loop");
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  {
    auto copy = edges;
    std::sort(copy.begin(), copy.end(), [](const Edge& a, const Edge& b) {
      return std::pair(a.u, a.v) < std::pair(b.u, b.v);
    });
    if (std::adjacent_find(copy.begin(), copy.end()) != copy.end()) {
      throw std::invalid_argument("parallel edge");
    }
  }
  g.edges_ = std::move(edges);

  for (const Edge& e : g.edges_) {
    ++g.offsets_[e.u + 1];
    ++g.offsets_[e.v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());
  g.adjacency_.resize(2 * g.edges_.size());
  g.incident_.resize(2 * g.edges_.size());
  std::vector<int> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId id = 0; id < static_cast<EdgeId>(g.edges_.size()); ++id) {
    const Edge& e = g.edges_[id];
    g.adjacency_[cursor[e.u]] = e.v;
    g.incident_[cursor[e.u]++] = id;
    g.adjacency_[cursor[e.v]] = e.u;
    g.incident_[cursor[e.v]++] = id;
  }
  g.max_degree_ = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

Graph Graph::from_edge_stream(int num_vertices, EdgeStream& stream) {
  if (num_vertices < 0) throw std::invalid_argument("negative vertex count");
  Graph g;
  g.offsets_.assign(num_vertices + 1, 0);

  // Pass 1: validate endpoints and count degrees into the offset table.
  struct CountSink final : EdgeSink {
    int n = 0;
    std::int64_t m = 0;
    std::vector<int>* offsets = nullptr;
    void edge(VertexId u, VertexId v) override {
      if (u < 0 || v < 0 || u >= n || v >= n) {
        throw std::invalid_argument("edge endpoint out of range");
      }
      if (u == v) throw std::invalid_argument("self loop");
      ++(*offsets)[u + 1];
      ++(*offsets)[v + 1];
      ++m;
    }
  } count;
  count.n = num_vertices;
  count.offsets = &g.offsets_;
  stream.generate(count);
  if (count.m > std::numeric_limits<EdgeId>::max()) {
    throw std::invalid_argument("edge count overflows EdgeId");
  }
  const EdgeId m = static_cast<EdgeId>(count.m);
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  // Pass 2: write edges and both CSR halves in edge-id order — the same
  // fill order as from_edges, which is what makes the layouts identical.
  g.edges_.resize(m);
  g.adjacency_.resize(2 * static_cast<std::size_t>(m));
  g.incident_.resize(2 * static_cast<std::size_t>(m));
  struct FillSink final : EdgeSink {
    Graph* g = nullptr;
    EdgeId next = 0;
    EdgeId m = 0;
    std::vector<int> cursor;
    void edge(VertexId u, VertexId v) override {
      if (u > v) std::swap(u, v);
      if (next >= m || cursor[u] >= g->offsets_[u + 1] ||
          cursor[v] >= g->offsets_[v + 1]) {
        // More edges, or a different degree profile, than pass 1 produced.
        throw std::invalid_argument("edge stream did not replay identically");
      }
      const EdgeId id = next++;
      g->edges_[id] = {u, v};
      g->adjacency_[cursor[u]] = v;
      g->incident_[cursor[u]++] = id;
      g->adjacency_[cursor[v]] = u;
      g->incident_[cursor[v]++] = id;
    }
  } fill;
  fill.g = &g;
  fill.m = m;
  fill.cursor.assign(g.offsets_.begin(), g.offsets_.end() - 1);
  stream.generate(fill);
  if (fill.next != m) {
    throw std::invalid_argument("edge stream did not replay identically");
  }

  // Parallel-edge check without the sorted edge-list copy: one stamp per
  // vertex, last center to touch it; a repeat within one adjacency row is a
  // duplicate edge. O(2m) time, n extra ints.
  {
    std::vector<VertexId> stamp(num_vertices, kInvalidVertex);
    for (VertexId v = 0; v < num_vertices; ++v) {
      for (const VertexId w : g.neighbors(v)) {
        if (stamp[w] == v) throw std::invalid_argument("parallel edge");
        stamp[w] = v;
      }
    }
  }
  g.max_degree_ = 0;
  for (VertexId v = 0; v < num_vertices; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

EdgeId Graph::find_edge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= num_vertices() || v >= num_vertices()) {
    return kInvalidEdge;
  }
  if (degree(u) > degree(v)) std::swap(u, v);
  auto nbrs = neighbors(u);
  auto eids = incident_edges(u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == v) return eids[i];
  }
  return kInvalidEdge;
}

std::int64_t Graph::total_weight() const {
  if (!is_weighted()) return num_edges();
  std::int64_t sum = 0;
  for (Weight w : weights_) sum += w;
  return sum;
}

Weight Graph::max_weight() const {
  if (!is_weighted()) return num_edges() == 0 ? 0 : 1;
  Weight best = 0;
  for (Weight w : weights_) best = std::max(best, w);
  return best;
}

Graph Graph::with_weights(std::vector<Weight> weights) const {
  if (static_cast<int>(weights.size()) != num_edges()) {
    throw std::invalid_argument("weight vector size mismatch");
  }
  for (Weight w : weights) {
    if (w <= 0) throw std::invalid_argument("weights must be positive");
  }
  Graph g = *this;
  g.weights_ = std::move(weights);
  return g;
}

Graph Graph::with_signs(std::vector<EdgeSign> signs) const {
  if (static_cast<int>(signs.size()) != num_edges()) {
    throw std::invalid_argument("sign vector size mismatch");
  }
  Graph g = *this;
  g.signs_ = std::move(signs);
  return g;
}

std::uint64_t GraphBuilder::key(VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

bool GraphBuilder::add_edge(VertexId u, VertexId v) {
  if (u == v) return false;
  if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_) {
    throw std::invalid_argument("edge endpoint out of range");
  }
  if (!edge_keys_.insert(key(u, v)).second) return false;
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v});
  return true;
}

bool GraphBuilder::has_edge(VertexId u, VertexId v) const {
  if (u == v || u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_) {
    return false;
  }
  return edge_keys_.contains(key(u, v));
}

Graph GraphBuilder::build() && {
  return Graph::from_edges(num_vertices_, std::move(edges_));
}

}  // namespace ecd::graph
