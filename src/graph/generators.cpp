#include "src/graph/generators.h"

#include <algorithm>
#include <array>
#include <queue>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

namespace ecd::graph {
namespace {

int checked_positive(int n, const char* what) {
  if (n <= 0) throw std::invalid_argument(std::string(what) + " must be positive");
  return n;
}

// The index-function families (edges are a pure function of loop indices)
// build through Graph::from_edge_stream: no edge-list materialization, no
// sorted duplicate-check copy, so the multi-million-vertex bench sizes
// construct without the ~2x-edge-list peak-memory spike of from_edges. The
// emitted sequence matches what the old edge-vector code pushed, so the
// resulting Graph is byte-identical (golden-hashed in graph_test).
template <typename Fn>
class FnEdgeStream final : public EdgeStream {
 public:
  explicit FnEdgeStream(Fn fn) : fn_(std::move(fn)) {}
  void generate(EdgeSink& sink) override { fn_(sink); }

 private:
  Fn fn_;
};

template <typename Fn>
Graph from_stream_fn(int n, Fn fn) {
  FnEdgeStream<Fn> stream(std::move(fn));
  return Graph::from_edge_stream(n, stream);
}

}  // namespace

Graph path(int n) {
  checked_positive(n, "n");
  return from_stream_fn(n, [n](EdgeSink& sink) {
    for (VertexId v = 0; v + 1 < n; ++v) sink.edge(v, v + 1);
  });
}

Graph cycle(int n) {
  if (n < 3) throw std::invalid_argument("cycle needs n >= 3");
  return from_stream_fn(n, [n](EdgeSink& sink) {
    for (VertexId v = 0; v + 1 < n; ++v) sink.edge(v, v + 1);
    sink.edge(0, n - 1);
  });
}

Graph star(int leaves) {
  checked_positive(leaves, "leaves");
  std::vector<Edge> edges;
  edges.reserve(leaves);
  for (VertexId v = 1; v <= leaves; ++v) edges.push_back({0, v});
  return Graph::from_edges(leaves + 1, std::move(edges));
}

Graph complete(int n) {
  checked_positive(n, "n");
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.push_back({u, v});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph complete_bipartite(int a, int b) {
  checked_positive(a, "a");
  checked_positive(b, "b");
  std::vector<Edge> edges;
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId v = 0; v < b; ++v) edges.push_back({u, a + v});
  }
  return Graph::from_edges(a + b, std::move(edges));
}

Graph grid(int rows, int cols) {
  checked_positive(rows, "rows");
  checked_positive(cols, "cols");
  auto id = [cols](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  return from_stream_fn(rows * cols, [rows, cols, id](EdgeSink& sink) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        if (c + 1 < cols) sink.edge(id(r, c), id(r, c + 1));
        if (r + 1 < rows) sink.edge(id(r, c), id(r + 1, c));
      }
    }
  });
}

Graph torus_grid(int rows, int cols) {
  if (rows < 3 || cols < 3) throw std::invalid_argument("torus needs >= 3x3");
  auto id = [cols](int r, int c) { return static_cast<VertexId>(r * cols + c); };
  GraphBuilder b(rows * cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      b.add_edge(id(r, c), id(r, (c + 1) % cols));
      b.add_edge(id(r, c), id((r + 1) % rows, c));
    }
  }
  return std::move(b).build();
}

Graph hypercube(int dim) {
  if (dim < 1 || dim > 24) throw std::invalid_argument("dim out of range");
  const int n = 1 << dim;
  return from_stream_fn(n, [n, dim](EdgeSink& sink) {
    for (VertexId v = 0; v < n; ++v) {
      for (int bit = 0; bit < dim; ++bit) {
        const VertexId u = v ^ (1 << bit);
        if (u > v) sink.edge(v, u);
      }
    }
  });
}

Graph barbell(int k, int bridge_len) {
  if (k < 2) throw std::invalid_argument("barbell needs k >= 2");
  if (bridge_len < 0) throw std::invalid_argument("negative bridge");
  const int n = 2 * k + bridge_len;
  GraphBuilder b(n);
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) b.add_edge(u, v);
  }
  const int right = k + bridge_len;
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) b.add_edge(right + u, right + v);
  }
  // Path k-1 -> bridge -> right clique's vertex `right`.
  VertexId prev = k - 1;
  for (int i = 0; i < bridge_len; ++i) {
    b.add_edge(prev, k + i);
    prev = k + i;
  }
  b.add_edge(prev, right);
  return std::move(b).build();
}

Graph random_tree(int n, Rng& rng) {
  checked_positive(n, "n");
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (VertexId v = 1; v < n; ++v) {
    std::uniform_int_distribution<VertexId> pick(0, v - 1);
    edges.push_back({pick(rng), v});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph random_maximal_planar(int n, Rng& rng) {
  if (n < 3) throw std::invalid_argument("triangulation needs n >= 3");
  GraphBuilder b(n);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  std::vector<std::array<VertexId, 3>> faces{{0, 1, 2}, {0, 1, 2}};
  for (VertexId w = 3; w < n; ++w) {
    std::uniform_int_distribution<std::size_t> pick(0, faces.size() - 1);
    const std::size_t f = pick(rng);
    const auto [a, u, v] = faces[f];
    b.add_edge(w, a);
    b.add_edge(w, u);
    b.add_edge(w, v);
    faces[f] = {a, u, w};
    faces.push_back({u, v, w});
    faces.push_back({a, v, w});
  }
  return std::move(b).build();
}

Graph random_planar(int n, int m, Rng& rng) {
  if (n < 3) throw std::invalid_argument("n >= 3 required");
  if (m < 0 || m > 3 * n - 6) throw std::invalid_argument("m out of range");
  Graph tri = random_maximal_planar(n, rng);
  std::vector<Edge> pool(tri.edges().begin(), tri.edges().end());
  std::shuffle(pool.begin(), pool.end(), rng);
  pool.resize(m);
  return Graph::from_edges(n, std::move(pool));
}

namespace {

// Adds a uniformly random triangulation of the polygon arc [i..j] (vertices
// i, i+1, ..., j on the outer cycle, with chord {i, j} already present).
void triangulate_arc(GraphBuilder& b, VertexId i, VertexId j, Rng& rng) {
  if (j - i < 2) return;
  std::uniform_int_distribution<VertexId> pick(i + 1, j - 1);
  const VertexId k = pick(rng);
  b.add_edge(i, k);
  b.add_edge(k, j);
  triangulate_arc(b, i, k, rng);
  triangulate_arc(b, k, j, rng);
}

}  // namespace

Graph random_outerplanar(int n, Rng& rng) {
  if (n < 3) throw std::invalid_argument("outerplanar needs n >= 3");
  GraphBuilder b(n);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(0, n - 1);
  triangulate_arc(b, 0, n - 1, rng);
  return std::move(b).build();
}

Graph random_two_tree(int n, Rng& rng) {
  if (n < 2) throw std::invalid_argument("2-tree needs n >= 2");
  std::vector<Edge> edges{{0, 1}};
  for (VertexId w = 2; w < n; ++w) {
    std::uniform_int_distribution<std::size_t> pick(0, edges.size() - 1);
    const Edge base = edges[pick(rng)];
    edges.push_back({base.u, w});
    edges.push_back({base.v, w});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph random_regular(int n, int d, Rng& rng) {
  if (d < 1 || d >= n) throw std::invalid_argument("bad degree");
  if ((static_cast<std::int64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument("n*d must be even");
  }
  // Pairing model with local repair: restarting until the pairing is simple
  // has success probability ~exp(-(d²-1)/4), hopeless already at d = 6.
  // Instead, conflicting pairs are fixed by random 2-swaps.
  auto pair_key = [](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint32_t>(b);
  };
  for (int attempt = 0; attempt < 50; ++attempt) {
    std::vector<VertexId> points;
    points.reserve(static_cast<std::size_t>(n) * d);
    for (VertexId v = 0; v < n; ++v) {
      for (int i = 0; i < d; ++i) points.push_back(v);
    }
    std::shuffle(points.begin(), points.end(), rng);
    const int num_pairs = static_cast<int>(points.size()) / 2;
    std::vector<std::pair<VertexId, VertexId>> pairs(num_pairs);
    std::unordered_map<std::uint64_t, int> multiplicity;
    for (int i = 0; i < num_pairs; ++i) {
      pairs[i] = {points[2 * i], points[2 * i + 1]};
      ++multiplicity[pair_key(pairs[i].first, pairs[i].second)];
    }
    auto is_bad = [&](const std::pair<VertexId, VertexId>& p) {
      return p.first == p.second || multiplicity[pair_key(p.first, p.second)] > 1;
    };
    std::uniform_int_distribution<int> pick(0, num_pairs - 1);
    bool ok = false;
    for (long iter = 0; iter < 400L * num_pairs; ++iter) {
      int bad = -1;
      for (int i = 0; i < num_pairs; ++i) {
        if (is_bad(pairs[i])) {
          bad = i;
          break;
        }
      }
      if (bad == -1) {
        ok = true;
        break;
      }
      const int other = pick(rng);
      if (other == bad) continue;
      auto [a, b] = pairs[bad];
      auto [c, dd] = pairs[other];
      // Propose swapping partners: (a, c) and (b, dd).
      if (a == c || b == dd) continue;
      const auto old1 = pair_key(a, b), old2 = pair_key(c, dd);
      const auto new1 = pair_key(a, c), new2 = pair_key(b, dd);
      --multiplicity[old1];
      --multiplicity[old2];
      if (multiplicity[new1] > 0 || multiplicity[new2] > 0 || new1 == new2) {
        ++multiplicity[old1];
        ++multiplicity[old2];
        continue;
      }
      ++multiplicity[new1];
      ++multiplicity[new2];
      pairs[bad] = {a, c};
      pairs[other] = {b, dd};
    }
    if (!ok) continue;
    GraphBuilder b(n);
    for (const auto& [u, v] : pairs) b.add_edge(u, v);
    return std::move(b).build();
  }
  throw std::runtime_error("random_regular: repair failed");
}

Graph erdos_renyi(int n, double p, Rng& rng) {
  checked_positive(n, "n");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("p out of range");
  std::bernoulli_distribution coin(p);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (coin(rng)) edges.push_back({u, v});
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph planar_with_apex(int base_n, int num_apex, Rng& rng) {
  if (num_apex < 0) throw std::invalid_argument("negative apex count");
  Graph base = random_maximal_planar(base_n, rng);
  GraphBuilder b(base_n + num_apex);
  for (const Edge& e : base.edges()) b.add_edge(e.u, e.v);
  for (int a = 0; a < num_apex; ++a) {
    for (VertexId v = 0; v < base_n; ++v) b.add_edge(base_n + a, v);
  }
  return std::move(b).build();
}

Graph plus_random_edges(const Graph& base, int extra, Rng& rng) {
  const int n = base.num_vertices();
  if (n < 2) throw std::invalid_argument("need >= 2 vertices");
  GraphBuilder b(n);
  for (const Edge& e : base.edges()) b.add_edge(e.u, e.v);
  std::uniform_int_distribution<VertexId> pick(0, n - 1);
  int added = 0;
  long guard = 0;
  const long max_tries = 200L * extra + 10000;
  while (added < extra && guard++ < max_tries) {
    if (b.add_edge(pick(rng), pick(rng))) ++added;
  }
  if (added < extra) throw std::runtime_error("plus_random_edges: graph too dense");
  return std::move(b).build();
}

Graph star_pathology(int num_stars, int leaves_per_star, Rng& rng) {
  checked_positive(num_stars, "num_stars");
  if (leaves_per_star < 2) throw std::invalid_argument("need >= 2 leaves");
  // Star centers are connected in a random tree so the graph is connected;
  // each center also carries `leaves_per_star` degree-1 leaves (2-stars) and
  // every pair of adjacent centers shares `leaves_per_star` degree-2
  // companions (double stars).
  Graph spine = random_tree(num_stars, rng);
  const int n = num_stars + num_stars * leaves_per_star +
                spine.num_edges() * leaves_per_star;
  GraphBuilder b(n);
  VertexId next = num_stars;
  for (const Edge& e : spine.edges()) b.add_edge(e.u, e.v);
  for (VertexId c = 0; c < num_stars; ++c) {
    for (int i = 0; i < leaves_per_star; ++i) b.add_edge(c, next++);
  }
  for (const Edge& e : spine.edges()) {
    for (int i = 0; i < leaves_per_star; ++i) {
      b.add_edge(e.u, next);
      b.add_edge(e.v, next);
      ++next;
    }
  }
  return std::move(b).build();
}

std::vector<Weight> random_weights(const Graph& g, Weight max_weight, Rng& rng) {
  if (max_weight < 1) throw std::invalid_argument("max_weight must be >= 1");
  std::uniform_int_distribution<Weight> pick(1, max_weight);
  std::vector<Weight> w(g.num_edges());
  for (auto& x : w) x = pick(rng);
  return w;
}

std::vector<EdgeSign> planted_signs(const Graph& g, int target_cluster_size,
                                    double noise, Rng& rng) {
  checked_positive(target_cluster_size, "target_cluster_size");
  const int n = g.num_vertices();
  std::vector<int> region(n, -1);
  std::vector<VertexId> order(n);
  for (VertexId v = 0; v < n; ++v) order[v] = v;
  std::shuffle(order.begin(), order.end(), rng);
  int next_region = 0;
  for (VertexId seed : order) {
    if (region[seed] != -1) continue;
    // BFS-grow a region of roughly the target size.
    std::queue<VertexId> q;
    q.push(seed);
    region[seed] = next_region;
    int size = 1;
    while (!q.empty() && size < target_cluster_size) {
      VertexId v = q.front();
      q.pop();
      for (VertexId u : g.neighbors(v)) {
        if (region[u] == -1 && size < target_cluster_size) {
          region[u] = next_region;
          ++size;
          q.push(u);
        }
      }
    }
    ++next_region;
  }
  std::bernoulli_distribution flip(noise);
  std::vector<EdgeSign> signs(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    bool positive = region[ed.u] == region[ed.v];
    if (flip(rng)) positive = !positive;
    signs[e] = positive ? EdgeSign::kPositive : EdgeSign::kNegative;
  }
  return signs;
}

Graph disjoint_union(const std::vector<Graph>& parts) {
  int n = 0;
  std::vector<Edge> edges;
  for (const Graph& g : parts) {
    for (const Edge& e : g.edges()) {
      edges.push_back({e.u + n, e.v + n});
    }
    n += g.num_vertices();
  }
  return Graph::from_edges(n, std::move(edges));
}

}  // namespace ecd::graph
