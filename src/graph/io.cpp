#include "src/graph/io.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace ecd::graph {

void write_edge_list(const Graph& g, std::ostream& os) {
  os << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    os << ed.u << ' ' << ed.v;
    if (g.is_weighted()) os << ' ' << g.weight(e);
    os << '\n';
  }
}

Graph read_edge_list(std::istream& is) {
  int n = 0, m = 0;
  if (!(is >> n >> m)) throw std::runtime_error("bad edge-list header");
  std::string rest;
  std::getline(is, rest);

  std::vector<Edge> edges;
  std::vector<Weight> weights;
  bool weighted = false;
  edges.reserve(m);
  for (int i = 0; i < m; ++i) {
    std::string line;
    if (!std::getline(is, line)) throw std::runtime_error("truncated edge list");
    std::istringstream ls(line);
    VertexId u, v;
    if (!(ls >> u >> v)) throw std::runtime_error("bad edge line");
    edges.push_back({u, v});
    Weight w;
    if (ls >> w) {
      weighted = true;
      weights.resize(edges.size() - 1, 1);
      weights.push_back(w);
    } else if (weighted) {
      weights.push_back(1);
    }
  }
  Graph g = Graph::from_edges(n, std::move(edges));
  if (weighted) g = g.with_weights(std::move(weights));
  return g;
}

std::string to_dot(const Graph& g, const std::vector<int>& cluster_of) {
  static const char* kPalette[] = {"#4e79a7", "#f28e2b", "#e15759", "#76b7b2",
                                   "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
                                   "#9c755f", "#bab0ac"};
  std::ostringstream os;
  os << "graph G {\n  node [shape=circle, style=filled];\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    os << "  " << v;
    if (!cluster_of.empty()) {
      os << " [fillcolor=\"" << kPalette[cluster_of[v] % 10] << "\"]";
    }
    os << ";\n";
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    os << "  " << ed.u << " -- " << ed.v;
    if (g.is_weighted()) os << " [label=\"" << g.weight(e) << "\"]";
    os << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ecd::graph
