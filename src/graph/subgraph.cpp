#include "src/graph/subgraph.h"

#include <stdexcept>

namespace ecd::graph {

InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const VertexId> vertices) {
  InducedSubgraph out;
  out.to_parent.assign(vertices.begin(), vertices.end());
  std::vector<VertexId> to_local(g.num_vertices(), kInvalidVertex);
  for (int i = 0; i < static_cast<int>(vertices.size()); ++i) {
    const VertexId v = vertices[i];
    if (v < 0 || v >= g.num_vertices()) {
      throw std::invalid_argument("vertex out of range");
    }
    if (to_local[v] != kInvalidVertex) {
      throw std::invalid_argument("duplicate vertex in induced set");
    }
    to_local[v] = i;
  }
  std::vector<Edge> edges;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    if (to_local[ed.u] != kInvalidVertex && to_local[ed.v] != kInvalidVertex) {
      edges.push_back({to_local[ed.u], to_local[ed.v]});
      out.edge_to_parent.push_back(e);
    }
  }
  out.graph = Graph::from_edges(static_cast<int>(vertices.size()),
                                std::move(edges));
  if (g.is_weighted()) {
    std::vector<Weight> w(out.edge_to_parent.size());
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = g.weight(out.edge_to_parent[i]);
    }
    out.graph = out.graph.with_weights(std::move(w));
  }
  if (g.is_signed()) {
    std::vector<EdgeSign> s(out.edge_to_parent.size());
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = g.sign(out.edge_to_parent[i]);
    }
    out.graph = out.graph.with_signs(std::move(s));
  }
  return out;
}

Graph edge_subgraph(const Graph& g, const std::vector<bool>& keep_edge) {
  if (static_cast<int>(keep_edge.size()) != g.num_edges()) {
    throw std::invalid_argument("keep_edge size mismatch");
  }
  std::vector<Edge> edges;
  std::vector<EdgeId> kept;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (keep_edge[e]) {
      edges.push_back(g.edge(e));
      kept.push_back(e);
    }
  }
  Graph out = Graph::from_edges(g.num_vertices(), std::move(edges));
  if (g.is_weighted()) {
    std::vector<Weight> w(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) w[i] = g.weight(kept[i]);
    out = out.with_weights(std::move(w));
  }
  if (g.is_signed()) {
    std::vector<EdgeSign> s(kept.size());
    for (std::size_t i = 0; i < kept.size(); ++i) s[i] = g.sign(kept[i]);
    out = out.with_signs(std::move(s));
  }
  return out;
}

}  // namespace ecd::graph
