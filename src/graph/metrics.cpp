#include "src/graph/metrics.h"

#include <algorithm>
#include <queue>

namespace ecd::graph {

std::vector<int> bfs_distances(const Graph& g, VertexId source) {
  std::vector<int> dist(g.num_vertices(), kUnreachable);
  std::queue<VertexId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (VertexId u : g.neighbors(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        q.push(u);
      }
    }
  }
  return dist;
}

Components connected_components(const Graph& g) {
  Components result;
  result.label.assign(g.num_vertices(), -1);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (result.label[s] != -1) continue;
    const int c = result.count++;
    std::queue<VertexId> q;
    result.label[s] = c;
    q.push(s);
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (VertexId u : g.neighbors(v)) {
        if (result.label[u] == -1) {
          result.label[u] = c;
          q.push(u);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  return g.num_vertices() <= 1 || connected_components(g).count == 1;
}

int exact_diameter(const Graph& g) {
  const int n = g.num_vertices();
  if (n <= 1) return 0;
  int best = 0;
  for (VertexId v = 0; v < n; ++v) {
    const auto dist = bfs_distances(g, v);
    for (int d : dist) {
      if (d == kUnreachable) return kUnreachable;
      best = std::max(best, d);
    }
  }
  return best;
}

int two_sweep_diameter_lower_bound(const Graph& g) {
  const int n = g.num_vertices();
  if (n <= 1) return 0;
  auto farthest = [&](VertexId s) {
    const auto dist = bfs_distances(g, s);
    VertexId arg = s;
    int best = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] != kUnreachable && dist[v] > best) {
        best = dist[v];
        arg = v;
      }
    }
    return std::pair(arg, best);
  };
  const auto [far1, unused] = farthest(0);
  (void)unused;
  return farthest(far1).second;
}

DegeneracyResult degeneracy(const Graph& g) {
  const int n = g.num_vertices();
  DegeneracyResult result;
  result.order.reserve(n);
  std::vector<int> deg(n);
  std::vector<bool> removed(n, false);
  int max_deg = 0;
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    max_deg = std::max(max_deg, deg[v]);
  }
  // Bucket queue over residual degrees.
  std::vector<std::vector<VertexId>> buckets(max_deg + 1);
  for (VertexId v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  int cursor = 0;
  for (int iter = 0; iter < n; ++iter) {
    // The minimum residual degree drops by at most one per removal, so the
    // scan may resume one bucket below the previous minimum.
    cursor = std::max(0, cursor - 1);
    VertexId v = kInvalidVertex;
    while (true) {
      while (cursor <= max_deg && buckets[cursor].empty()) ++cursor;
      v = buckets[cursor].back();
      buckets[cursor].pop_back();
      if (!removed[v] && deg[v] == cursor) break;  // skip stale entries
    }
    removed[v] = true;
    result.order.push_back(v);
    result.degeneracy = std::max(result.degeneracy, cursor);
    for (VertexId u : g.neighbors(v)) {
      if (!removed[u]) {
        buckets[--deg[u]].push_back(u);
      }
    }
  }
  return result;
}

std::vector<std::vector<EdgeId>> biconnected_components(const Graph& g) {
  const int n = g.num_vertices();
  std::vector<int> disc(n, -1), low(n, 0);
  std::vector<EdgeId> edge_stack;
  std::vector<std::vector<EdgeId>> blocks;
  int timer = 0;

  // Iterative DFS frame: vertex, incident index, edge we arrived through.
  struct Frame {
    VertexId v;
    std::size_t idx;
    EdgeId via;
  };
  for (VertexId root = 0; root < n; ++root) {
    if (disc[root] != -1) continue;
    std::vector<Frame> stack{{root, 0, kInvalidEdge}};
    disc[root] = low[root] = timer++;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto eids = g.incident_edges(f.v);
      if (f.idx < eids.size()) {
        const EdgeId e = eids[f.idx++];
        if (e == f.via) continue;
        const VertexId u = g.other_endpoint(e, f.v);
        if (disc[u] == -1) {
          edge_stack.push_back(e);
          disc[u] = low[u] = timer++;
          stack.push_back({u, 0, e});
        } else if (disc[u] < disc[f.v]) {
          edge_stack.push_back(e);  // back edge
          low[f.v] = std::min(low[f.v], disc[u]);
        }
        continue;
      }
      // Post-order: fold into parent; pop a block at articulation points.
      const Frame done = f;
      stack.pop_back();
      if (stack.empty()) continue;
      Frame& parent = stack.back();
      low[parent.v] = std::min(low[parent.v], low[done.v]);
      if (low[done.v] >= disc[parent.v]) {
        blocks.emplace_back();
        auto& block = blocks.back();
        while (!edge_stack.empty()) {
          const EdgeId e = edge_stack.back();
          edge_stack.pop_back();
          block.push_back(e);
          if (e == done.via) break;
        }
      }
    }
  }
  return blocks;
}

std::vector<std::vector<EdgeId>> degeneracy_orientation(const Graph& g) {
  const auto peel = degeneracy(g);
  std::vector<int> rank(g.num_vertices());
  for (int i = 0; i < static_cast<int>(peel.order.size()); ++i) {
    rank[peel.order[i]] = i;
  }
  std::vector<std::vector<EdgeId>> owned(g.num_vertices());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge ed = g.edge(e);
    const VertexId owner = rank[ed.u] < rank[ed.v] ? ed.u : ed.v;
    owned[owner].push_back(e);
  }
  return owned;
}

}  // namespace ecd::graph
