// Induced-subgraph extraction with bidirectional vertex maps.
//
// The framework's cluster leaders operate on G[V_i]; this helper produces
// that induced subgraph together with local<->parent id translation, and
// carries edge weights/signs through so weighted applications work per
// cluster unchanged.
#pragma once

#include <span>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::graph {

struct InducedSubgraph {
  Graph graph;
  // local vertex id -> parent vertex id (size = graph.num_vertices()).
  std::vector<VertexId> to_parent;
  // local edge id -> parent edge id (size = graph.num_edges()).
  std::vector<EdgeId> edge_to_parent;
};

// Builds G[vertices]. `vertices` must be distinct and in range.
InducedSubgraph induced_subgraph(const Graph& g,
                                 std::span<const VertexId> vertices);

// Builds the subgraph on the same vertex set containing exactly the edges
// for which `keep_edge[e]` is true (edge-induced restriction, used when the
// decomposition removes inter-cluster edges).
Graph edge_subgraph(const Graph& g, const std::vector<bool>& keep_edge);

}  // namespace ecd::graph
