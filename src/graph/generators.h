// Graph-family generators used by tests, examples, and the benchmark suite.
//
// The paper's results apply to H-minor-free networks; the generators below
// produce the concrete families the evaluation exercises:
//   * planar:          grid, random maximal planar (triangulations) + subgraphs
//   * bounded genus:   torus grid
//   * bounded treewidth: random 2-trees (series-parallel), outerplanar
//   * pathological:    stars / double stars (§3.2 preprocessing), barbell
//   * non-minor-free controls: hypercube, random regular, Erdős–Rényi,
//     planar-plus-random-edges (ε-far inputs for property testing, §3.4)
#pragma once

#include <random>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::graph {

using Rng = std::mt19937_64;

// --- Deterministic families -------------------------------------------------

Graph path(int n);
Graph cycle(int n);
Graph star(int leaves);
Graph complete(int n);
Graph complete_bipartite(int a, int b);
Graph grid(int rows, int cols);
// Grid with wrap-around rows/columns: embeds on the torus (genus 1).
Graph torus_grid(int rows, int cols);
Graph hypercube(int dim);
// Two k-cliques joined by a path of `bridge_len` vertices: the canonical
// low-conductance instance.
Graph barbell(int k, int bridge_len);

// --- Random families ---------------------------------------------------------

// Random recursive tree on n vertices.
Graph random_tree(int n, Rng& rng);

// Random planar triangulation on n >= 3 vertices (3n - 6 edges), built by
// iterated vertex insertion into a uniformly random face.
Graph random_maximal_planar(int n, Rng& rng);

// Uniformly keeps `m` edges of a random triangulation (subgraphs of planar
// graphs are planar). Requires m <= 3n - 6.
Graph random_planar(int n, int m, Rng& rng);

// Random maximal outerplanar graph: n-cycle plus a uniformly random
// non-crossing triangulation of the polygon's interior.
Graph random_outerplanar(int n, Rng& rng);

// Random 2-tree (treewidth exactly 2, K4-minor-free): repeatedly picks an
// existing edge {u, v} and attaches a fresh vertex to both endpoints.
Graph random_two_tree(int n, Rng& rng);

// Pairing-model random d-regular graph (d*n must be even); resamples until
// simple. High conductance w.h.p. — used as the expander control family.
Graph random_regular(int n, int d, Rng& rng);

Graph erdos_renyi(int n, double p, Rng& rng);

// Planar base plus `num_apex` vertices adjacent to every base vertex.
// K_{3,3}-containing yet K_{t}-minor-free for t > num_apex + 5.
Graph planar_with_apex(int base_n, int num_apex, Rng& rng);

// Adds `extra` uniformly random non-edges to `base` — used to manufacture
// ε-far-from-planar inputs for the property-testing experiments.
Graph plus_random_edges(const Graph& base, int extra, Rng& rng);

// A planar graph that is mostly 2-stars and 3-double-stars, so its maximum
// matching is far from linear in n until the §3.2 preprocessing runs.
Graph star_pathology(int num_stars, int leaves_per_star, Rng& rng);

// --- Attribute generators ------------------------------------------------------

// Uniform integer weights in [1, max_weight].
std::vector<Weight> random_weights(const Graph& g, Weight max_weight, Rng& rng);

// Planted correlation-clustering signs: vertices are partitioned into
// BFS-grown regions of ~`target_cluster_size`; intra-region edges are
// positive and inter-region edges negative, then each sign flips
// independently with probability `noise`.
std::vector<EdgeSign> planted_signs(const Graph& g, int target_cluster_size,
                                    double noise, Rng& rng);

// --- Composition ---------------------------------------------------------------

Graph disjoint_union(const std::vector<Graph>& parts);

}  // namespace ecd::graph
