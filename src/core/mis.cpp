#include "src/core/mis.h"

#include <cmath>

#include "src/seq/mis.h"

namespace ecd::core {

using graph::Graph;
using graph::VertexId;

MisApproxResult mis_approx(const Graph& g, double eps,
                           const MisApproxOptions& options) {
  // §3.1: ε' = ε / (2d + 1).
  const int d = std::max(1, static_cast<int>(std::ceil(g.edge_density())));
  const double eps_prime = eps / (2 * d + 1);

  FrameworkOptions fopt = options.framework;
  // The analysis already divides by the density; the framework's own ε/t
  // rescaling would double-count it.
  fopt.density_bound = 1;
  Partition partition = partition_and_gather(g, eps_prime, fopt);

  MisApproxResult result;
  result.num_clusters = static_cast<int>(partition.clusters.size());
  std::vector<bool> in_set(g.num_vertices(), false);
  result.all_clusters_exact = true;
  for (const Cluster& cluster : partition.clusters) {
    const auto mis =
        seq::best_effort_mis(cluster.subgraph.graph, options.exact_node_budget);
    result.clusters_exact += mis.exact;
    result.all_clusters_exact = result.all_clusters_exact && mis.exact;
    for (VertexId local : mis.vertices) {
      in_set[cluster.subgraph.to_parent[local]] = true;
    }
  }
  {
    std::vector<std::int64_t> words(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) words[v] = in_set[v];
    return_results(partition, words, "result return (reversed walks)");
  }

  // Conflict removal: both endpoints of an inter-cluster edge may have been
  // chosen; drop the larger id (one CONGEST round: neighbors exchange their
  // membership bit).
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!partition.decomposition.is_inter_cluster[e]) continue;
    const graph::Edge ed = g.edge(e);
    if (in_set[ed.u] && in_set[ed.v]) {
      in_set[std::max(ed.u, ed.v)] = false;
      ++result.conflicts_removed;
    }
  }
  partition.ledger.add_measured("conflict removal (1 round)", 1);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (in_set[v]) result.independent_set.push_back(v);
  }
  result.ledger = std::move(partition.ledger);
  return result;
}

}  // namespace ecd::core
