#include "src/core/matching.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/graph/subgraph.h"

namespace ecd::core {

using graph::Graph;
using graph::VertexId;

StarEliminationResult eliminate_stars(const Graph& g) {
  const int n = g.num_vertices();
  StarEliminationResult result;
  result.removed.assign(n, false);

  // Iterate the two token protocols until fixpoint: each pass costs O(1)
  // rounds (token out, bounce back) and removals only shrink degrees, so in
  // practice two or three passes suffice.
  bool changed = true;
  while (changed) {
    changed = false;
    ++result.passes;
    result.rounds_used += 4;

    auto alive_degree_and_nbrs = [&](VertexId v) {
      std::pair<int, std::array<VertexId, 2>> out{0, {-1, -1}};
      for (VertexId u : g.neighbors(v)) {
        if (!result.removed[u]) {
          if (out.first < 2) out.second[out.first] = u;
          ++out.first;
        }
      }
      return out;
    };

    // 2-star elimination: degree-1 vertices token their neighbor, which
    // keeps exactly one (smallest origin id) and bounces the rest.
    std::vector<std::vector<VertexId>> tokens_at(n);
    for (VertexId v = 0; v < n; ++v) {
      if (result.removed[v]) continue;
      const auto [deg, nbrs] = alive_degree_and_nbrs(v);
      if (deg == 1) tokens_at[nbrs[0]].push_back(v);
    }
    for (VertexId c = 0; c < n; ++c) {
      if (tokens_at[c].size() <= 1) continue;
      auto& leaves = tokens_at[c];
      std::sort(leaves.begin(), leaves.end());
      for (std::size_t i = 1; i < leaves.size(); ++i) {
        result.removed[leaves[i]] = true;
        ++result.removed_count;
        changed = true;
      }
    }

    // 3-double-star elimination: degree-2 vertices token the pair of their
    // neighbors; for each pair all but the two smallest origins go.
    std::map<std::pair<VertexId, VertexId>, std::vector<VertexId>> by_pair;
    for (VertexId v = 0; v < n; ++v) {
      if (result.removed[v]) continue;
      const auto [deg, nbrs] = alive_degree_and_nbrs(v);
      if (deg == 2) {
        auto key = std::minmax(nbrs[0], nbrs[1]);
        by_pair[{key.first, key.second}].push_back(v);
      }
    }
    for (auto& [key, companions] : by_pair) {
      if (companions.size() <= 2) continue;
      std::sort(companions.begin(), companions.end());
      for (std::size_t i = 2; i < companions.size(); ++i) {
        result.removed[companions[i]] = true;
        ++result.removed_count;
        changed = true;
      }
    }
  }
  return result;
}

McmApproxResult mcm_planar_approx(const Graph& g, double eps,
                                  const McmApproxOptions& options) {
  // Preprocess: Ḡ keeps every vertex id but drops edges incident to
  // removed vertices; removed vertices become isolated singletons.
  const auto elimination = eliminate_stars(g);
  std::vector<bool> keep_edge(g.num_edges(), true);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const graph::Edge ed = g.edge(e);
    keep_edge[e] = !elimination.removed[ed.u] && !elimination.removed[ed.v];
  }
  const Graph g_bar = graph::edge_subgraph(g, keep_edge);

  const double eps_prime = eps * options.matching_linearity_constant;
  FrameworkOptions fopt = options.framework;
  fopt.density_bound = 1;  // ε' already carries the structural constant
  Partition partition = partition_and_gather(g_bar, eps_prime, fopt);
  partition.ledger.add_measured("star elimination (token protocol)",
                                elimination.rounds_used);

  McmApproxResult result;
  result.removed_vertices = elimination.removed_count;
  result.num_clusters = static_cast<int>(partition.clusters.size());
  result.mates.assign(g.num_vertices(), graph::kInvalidVertex);
  for (const Cluster& cluster : partition.clusters) {
    const auto local = seq::max_cardinality_matching(cluster.subgraph.graph);
    for (VertexId i = 0; i < static_cast<VertexId>(local.size()); ++i) {
      if (local[i] != graph::kInvalidVertex) {
        result.mates[cluster.subgraph.to_parent[i]] =
            cluster.subgraph.to_parent[local[i]];
      }
    }
  }
  {
    std::vector<std::int64_t> words(g_bar.num_vertices());
    for (VertexId v = 0; v < g_bar.num_vertices(); ++v) {
      words[v] = result.mates[v];
    }
    return_results(partition, words, "result return (reversed walks)");
  }
  result.matching_size = seq::matching_size(result.mates);
  result.ledger = std::move(partition.ledger);
  return result;
}

}  // namespace ecd::core
