// (1-ε)-approximate maximum weight matching on H-minor-free networks
// (Theorem 1.1).
//
// Substitution note (DESIGN.md): the conference paper defers the full
// Duan–Pettie scaling embedding to its full version. We implement the
// mechanism the conference text describes — "apply the expander
// decomposition before the non-trivial steps and let each component's
// leader perform them locally" — as a monotone multi-phase refinement:
// every phase re-decomposes with fresh randomness, freezes vertices matched
// across cluster boundaries, and lets each leader replace the matching
// inside its cluster with an exact weighted-blossom optimum over the
// unfrozen vertices. Each phase can only increase the weight, and edges cut
// in one phase are interior in later phases, so the matching converges to
// (1-ε)·OPT on the benchmark families (validated against the exact solver
// in bench_mwm).
#pragma once

#include <cstdint>

#include "src/core/framework.h"
#include "src/graph/graph.h"
#include "src/seq/matching.h"

namespace ecd::core {

struct MwmApproxOptions {
  FrameworkOptions framework;
  // 0 = auto: ceil(4/eps) + 2 phases.
  int phases = 0;
  // Clusters above this size use greedy + keep-best instead of the O(n^3)
  // exact blossom (reported via clusters_greedy).
  int exact_cluster_cap = 700;
  // Decompose with weighted volumes (§1.3): the inter-cluster *weight* is
  // bounded, so heavy edges preferentially stay inside clusters.
  bool weighted_decomposition = true;
};

struct MwmApproxResult {
  seq::Mates mates;
  std::int64_t weight = 0;
  int phases = 0;
  int clusters_greedy = 0;  // cluster solves that fell back to greedy
  congest::RoundLedger ledger;
};

MwmApproxResult mwm_approx(const graph::Graph& g, double eps,
                           const MwmApproxOptions& options = {});

}  // namespace ecd::core
