// Distributed triangle counting on sparse networks.
//
// Expander decompositions entered CONGEST through triangle listing
// (Chang–Pettie–Saranurak–Zhang, §1.4 of the paper). On H-minor-free
// networks the problem is far easier: a Barenboim–Elkin orientation has
// out-degree t = O(1), and after each vertex announces its out-list
// (t rounds, one O(log n)-bit id per edge per round) every vertex knows the
// out-lists of all its neighbors and can enumerate every triangle it
// belongs to. Total: O(degeneracy) rounds — all measured on the simulator.
#pragma once

#include <cstdint>

#include "src/congest/round_ledger.h"
#include "src/graph/graph.h"

namespace ecd::core {

struct TriangleCountResult {
  std::int64_t triangles = 0;
  // Per-vertex counts (triangles where the vertex is the minimum id).
  std::vector<std::int64_t> local_count;
  congest::RoundLedger ledger;
  int out_degree_bound = 0;
};

TriangleCountResult count_triangles_distributed(const graph::Graph& g);

// Host-side oracle for verification.
std::int64_t count_triangles_sequential(const graph::Graph& g);

}  // namespace ecd::core
