// Sweep engine: high-throughput multiplexed simulator runs over a
// declarative grid (DESIGN.md §16).
//
// A regression grid — topology family × size × topology seed × run seed ×
// algorithm × thread count × fault plan × churn plan — is mostly
// *redundant* work for
// the simulator: grid cells that share a topology rebuild the same CSR,
// and cells that additionally share an algorithm/thread/fault shape
// rebuild the same Network arenas. For small-n cells construction costs
// more than the run itself, so a grid paying it per cell is
// construction-bound, not simulation-bound.
//
// The engine removes the redundancy with two keyed caches:
//   * a topology cache keyed (family, n, topo_seed): one Graph per
//     distinct topology, shared by every cell over it;
//   * a network cache keyed (topology key, algorithm, threads,
//     fault_permille, spec constants): one Network + one algorithm vector
//     per distinct run shape. Repeated runs go through
//     Network::reset_for_run() + per-vertex SweepAlgo::reset(run_seed), so
//     a warm cell pays zero construction and zero steady-state allocation
//     — the substrate's per-run contract (DESIGN.md §10) lifted to
//     grid scope.
//
// Scheduling is two-level. The spec expands in a fixed nested order with
// run_seed as the fastest axis, so cells sharing a cached Network form
// contiguous groups; serial groups (threads == 1) are distributed
// whole-group-per-worker over one shared ThreadPool (run-level
// parallelism, one exclusive writer per cached Network), while parallel
// groups (threads > 1) run one at a time on the caller and parallelize
// *inside* the run via NetworkOptions::shared_pool (intra-run
// parallelism). Per-run ecd-run-report-v1 records stream to a JSONL sink
// as runs finish; the cross-run aggregate reduces in cell-index order
// after every record is in place, so its JSON is byte-identical for every
// worker count and completion order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/congest/metrics.h"
#include "src/congest/network.h"
#include "src/graph/graph.h"

namespace ecd::core {

// The declarative run grid: the cross product of the axis vectors below,
// expanded in declaration order with run_seeds as the innermost (fastest)
// axis. Scalars apply to every cell.
struct SweepSpec {
  // Topology families as understood by `ecd_cli gen`: grid, tri, planar,
  // outer, twotree, tree, torus, hypercube, expander.
  std::vector<std::string> families = {"grid"};
  std::vector<int> sizes = {256};
  std::vector<std::uint64_t> topo_seeds = {1};
  // Per-run seed: drives algorithm randomness (e.g. Luby priorities) and,
  // when the cell has faults, the fault schedule (Network::set_fault_seed).
  std::vector<std::uint64_t> run_seeds = {1};
  // Workloads: "flood" (wavefront from vertex 0, result = vertices
  // reached), "pingpong" (full-duplex exchange for pingpong_rounds, result
  // = vertex 0's checksum), "mis" (Luby-style MIS, result = |MIS|).
  std::vector<std::string> algorithms = {"flood"};
  std::vector<int> threads = {1};
  // k > 0 turns on the mixed fault plan: drop k/1000, duplicate k/2000,
  // delay k/1000 with max_delay_rounds = 2 (the bench_network shape).
  std::vector<int> fault_permille = {0};
  // c > 0 turns on a deterministic topology-churn schedule (FaultPlan
  // ::churn) of ~c per mille of the graph's edges: each picked edge is
  // deleted early and re-inserted a few rounds later, and every 8th pick
  // becomes a node leave/join pair instead (see make_churn_plan). The
  // schedule derives from (topo_seed, c) — NOT run_seed — so every run on
  // a cached Network shares one schedule and warm reuse stays valid.
  std::vector<int> churn_permille = {0};

  int pingpong_rounds = 16;
  int bandwidth_tokens = 2;
  int sparse_serial_threshold = 256;
  std::int64_t max_rounds = 2'000'000;

  // Throws std::invalid_argument on unknown families/algorithms,
  // non-positive axis values, empty axes, or a grid over 10^7 cells.
  void validate() const;
  std::int64_t num_cells() const;
};

// Parses the JSON spec (tools/json_min.h — no dependencies). Every key is
// optional and defaults as above; unknown keys throw (a typoed axis name
// must not silently run the default grid). Axis keys take arrays of
// numbers/strings, scalar keys take numbers.
SweepSpec parse_sweep_spec(std::string_view json);

// One grid cell, fully describing one run.
struct SweepCell {
  std::int64_t index = 0;  // position in expansion order; the run id
  std::string family;
  int n = 0;
  std::uint64_t topo_seed = 1;
  std::uint64_t run_seed = 1;
  std::string algorithm;
  int threads = 1;
  int fault_permille = 0;
  int churn_permille = 0;
};

// The sweep's churn schedule for (g, topo_seed, churn_permille): an empty
// plan at 0, otherwise k = max(1, m * c / 1000) splitmix64-picked items.
// Item i deletes its edge at round 1 + (i % 8) and re-inserts it four
// rounds later; every 8th item is instead a node leave (same round) /
// join (three rounds later) pair for one of the edge's endpoints. Pure
// function of its arguments, so warm and cold runs of a cell construct
// bit-identical FaultPlan::churn vectors. Exposed for tests and for
// examples/churn_experiment, which replays the same schedule host-side.
std::vector<congest::ChurnEvent> make_churn_plan(const graph::Graph& g,
                                                 std::uint64_t topo_seed,
                                                 int churn_permille);

// Expands the spec into its cell list (validates first). The order is the
// determinism anchor: records, the aggregate reduction and the JSONL
// `run` ids all key off it.
std::vector<SweepCell> expand_sweep(const SweepSpec& spec);

// The outcome of one cell. Everything except stats.duration_ns is
// bit-identical to a fresh-Network standalone run of the same cell.
struct SweepRunRecord {
  SweepCell cell;
  congest::RunStats stats;
  // Algorithm result checksum summed over vertices (see SweepSpec
  // ::algorithms); the witness that reuse did not change the computation.
  std::int64_t result_word = 0;
};

struct SweepOptions {
  // Workers multiplexing serial cells (whole-run-per-worker); 0 resolves
  // to hardware concurrency. Parallel cells (threads > 1) ignore this and
  // use their own intra-run sharding.
  int workers = 1;
  // false = cold mode: every run constructs a fresh Graph + Network +
  // algorithm vector and nothing is cached. The baseline the warm path is
  // benchmarked against (bench/bench_sweep.cpp), and the reference the
  // determinism tests compare records with.
  bool reuse = true;
  // When set, each finished run appends one ecd-run-report-v1 line
  // (metrics snapshot + cell info) to this stream. Lines complete in
  // whatever order runs finish; the "run" info key recovers cell order.
  std::ostream* jsonl = nullptr;
  int report_top_edges = 4;
  // When set, a monitor thread streams one ecd-sweep-progress-v1 JSON
  // line per interval: cells done/total, elapsed wall clock, runs/s, and
  // per-worker liveness (runs completed, ms since last completion, a
  // stall flag). A final line with "done":true follows the last cell.
  // Values are measurements — the schema is stable, the numbers are not
  // (contrast the deterministic aggregate). Null: no monitor thread.
  std::ostream* progress = nullptr;
  int progress_interval_ms = 1000;
  // A worker whose last run completion is older than this while the grid
  // is unfinished is flagged "stalled":true — the watchdog for wedged
  // workers on long sweeps.
  int stall_seconds = 30;
};

// Results of one SweepEngine::run execution. Returned by reference: the
// buffers live in the engine and are reused by the next execution (the
// warm path's zero-allocation contract covers them).
struct SweepResult {
  std::vector<SweepRunRecord> records;  // indexed by cell index
  std::int64_t wall_ns = 0;             // whole-grid wall clock
  // Construction performed by this execution (cache diagnostics: a fully
  // warm execution has 0 / 0 / num_cells).
  std::int64_t graphs_built = 0;
  std::int64_t networks_built = 0;
  std::int64_t cache_hits = 0;

  double runs_per_sec() const;

  // Deterministic cross-run aggregate: run count, totals and exact
  // min/p50/p90/p99/max quantiles of rounds, delivered messages, per-edge
  // peak load (congestion) and dropped messages, plus an order-sensitive
  // result checksum — reduced in cell-index order over integer fields
  // only, so the JSON is byte-identical across worker counts, completion
  // orders and repeated executions ("ecd-sweep-aggregate-v1").
  std::string aggregate_json() const;
  // Wall-clock counterpart (duration quantiles, runs/sec): a measurement,
  // deliberately kept out of aggregate_json so CI can hash the aggregate.
  std::string wall_json() const;
};

class SweepEngine {
 public:
  SweepEngine();
  ~SweepEngine();
  SweepEngine(const SweepEngine&) = delete;
  SweepEngine& operator=(const SweepEngine&) = delete;

  // Executes the grid. The returned reference is valid until the next
  // run()/clear_cache() call on this engine. Thread-compatible: one run()
  // at a time per engine.
  const SweepResult& run(const SweepSpec& spec, const SweepOptions& options = {});

  // Drops every cached Graph, Network and worker pool (the next run is
  // cold). Mostly for tests and memory ceilings.
  void clear_cache();

  // Runs one cell standalone — fresh Graph, fresh Network, fresh
  // algorithms, no caches touched. When `metrics` is non-null the run is
  // recorded into it (callers pass a reset registry to get the reference
  // snapshot a warm run must reproduce).
  static SweepRunRecord run_cell_fresh(const SweepSpec& spec,
                                       const SweepCell& cell,
                                       congest::MetricsRegistry* metrics = nullptr);

  // The ecd-run-report-v1 line a fresh standalone run of `cell` produces —
  // what the engine's JSONL line for the cell must match byte-for-byte
  // outside the "wall" section (wall is a measurement).
  static std::string reference_report_line(const SweepSpec& spec,
                                           const SweepCell& cell,
                                           int top_edges = 4);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ecd::core
