#include "src/core/property_testing.h"

#include <cmath>

namespace ecd::core {

using graph::Graph;
using graph::VertexId;

namespace {

// Edge-density bound for K_s-minor-free graphs: Mader proved |E| <=
// (s-2)·|V| for s <= 9 (up to lower-order terms); beyond that Thomason's
// O(s sqrt(log s)) kicks in.
int density_bound_for_clique_threshold(int s) {
  if (s <= 3) return 1;
  if (s <= 9) return s - 2;
  return static_cast<int>(
      std::ceil(0.32 * s * std::sqrt(std::log2(static_cast<double>(s)))));
}

}  // namespace

PropertyTestResult property_test(const Graph& g,
                                 const seq::MinorClosedProperty& property,
                                 double eps,
                                 const PropertyTestOptions& options) {
  FrameworkOptions fopt = options.framework;
  fopt.density_bound =
      density_bound_for_clique_threshold(property.clique_threshold);
  Partition partition = partition_and_gather(g, eps, fopt);

  PropertyTestResult result;
  result.vertex_accepts.assign(g.num_vertices(), true);
  const double phi = partition.decomposition.phi;

  // §2.3: clusters self-check their diameter against the φ-expander bound;
  // a failed cluster resets (conceptually) to singletons, which trivially
  // accept — so the check never breaks the one-sided guarantee.
  std::vector<bool> diameter_ok(partition.clusters.size(), true);
  if (options.diameter_check_factor > 0.0) {
    const int bound = static_cast<int>(
        std::ceil(options.diameter_check_factor / std::max(phi, 1e-9)));
    const auto check = congest::check_cluster_diameter(
        g, partition.decomposition.cluster_of, bound);
    partition.ledger.add_measured("diameter self-check (Sec 2.3)",
                                  check.stats.rounds);
    for (std::size_t c = 0; c < partition.clusters.size(); ++c) {
      for (graph::VertexId v : partition.clusters[c].members) {
        if (!check.within_bound[v]) diameter_ok[c] = false;
      }
    }
  }

  for (std::size_t ci = 0; ci < partition.clusters.size(); ++ci) {
    const Cluster& cluster = partition.clusters[ci];
    if (!diameter_ok[ci]) continue;  // singleton fallback: accept
    bool cluster_accepts = true;
    // Lemma 2.3 self-check: deg(v*) >= c φ² |E_i| must hold for minor-free
    // inputs; failure is evidence of a dense minor.
    const int leader_degree =
        cluster.leader_local >= 0
            ? cluster.subgraph.graph.degree(cluster.leader_local)
            : 0;
    const double required = options.degree_condition_constant * phi * phi *
                            cluster.subgraph.graph.num_edges();
    if (cluster.subgraph.graph.num_edges() > 0 && leader_degree < required) {
      ++result.clusters_failing_degree_condition;
      if (options.reject_on_degree_condition) cluster_accepts = false;
    }
    // The leader checks the property on its reconstructed G[V_i].
    if (cluster_accepts && !property.check(cluster.subgraph.graph)) {
      ++result.clusters_failing_property;
      cluster_accepts = false;
    }
    if (!cluster_accepts) {
      for (VertexId v : cluster.members) result.vertex_accepts[v] = false;
    }
  }
  // Leaders broadcast the verdict to their clusters.
  std::vector<std::int64_t> verdict(g.num_vertices(), 0);
  for (const Cluster& cluster : partition.clusters) {
    verdict[cluster.leader] = result.vertex_accepts[cluster.leader] ? 1 : 2;
  }
  const auto bc = congest::broadcast_from_leaders(
      g, partition.decomposition.cluster_of, partition.leader_of, verdict);
  partition.ledger.add_measured("verdict broadcast", bc.stats.rounds);

  result.accept = true;
  for (bool a : result.vertex_accepts) result.accept = result.accept && a;
  result.ledger = std::move(partition.ledger);
  return result;
}

}  // namespace ecd::core
