// Distributed property testing for minor-closed, disjoint-union-closed
// graph properties (Theorem 1.4, §3.4).
//
// One-sided error: if G has the property every vertex accepts; if G is
// ε-far at least one vertex rejects (w.h.p. — the only failure source is
// the decomposition's inter-cluster budget, cf. §2.3).
#pragma once

#include <vector>

#include "src/core/framework.h"
#include "src/graph/graph.h"
#include "src/seq/properties.h"

namespace ecd::core {

struct PropertyTestOptions {
  FrameworkOptions framework;
  // Lemma 2.3 constant for the deg(v*) >= c·φ²·|E_i| rejection path. The
  // paper fixes it from the (unspecified) separator constants; we default
  // to a conservative value so H-minor-free inputs never trip it.
  double degree_condition_constant = 1e-3;
  // When false, the degree-condition failure is only reported, not turned
  // into rejections (our simulator routes regardless; see DESIGN.md).
  bool reject_on_degree_condition = true;
  // §2.3 failure detection: run the *-marking diameter self-check with
  // bound b = diameter_check_factor / φ (0 disables). Clusters that fail
  // behave like singletons: they accept (a one-vertex graph has every
  // minor-closed property), preserving the one-sided error. Costs 3b
  // simulated rounds, so default off; enable for adversarial inputs.
  double diameter_check_factor = 0.0;
};

struct PropertyTestResult {
  bool accept = false;              // conjunction over all vertices
  std::vector<bool> vertex_accepts;
  int clusters_failing_property = 0;
  int clusters_failing_degree_condition = 0;
  congest::RoundLedger ledger;
};

// Tests property P with proximity parameter eps. The forbidden minor is
// H = K_s with s = P.clique_threshold (the paper's choice), which fixes the
// density bound used by the framework via Mader's bound.
PropertyTestResult property_test(const graph::Graph& g,
                                 const seq::MinorClosedProperty& property,
                                 double eps,
                                 const PropertyTestOptions& options = {});

}  // namespace ecd::core
