// The paper's framework (Theorem 2.6).
//
// partition_and_gather() performs the full pipeline on an H-minor-free
// network G:
//   1. (ε', φ) expander decomposition with ε' = ε / t, t the edge-density
//      bound of the graph class, so inter-cluster edges <= ε·min{|V|,|E|}
//      (construction rounds are *modeled*, see DESIGN.md);
//   2. leader election by max (cluster-degree, id) flooding (measured);
//   3. Barenboim–Elkin low-out-degree orientation (measured);
//   4. topology gathering: one token per oriented edge rides lazy random
//      walks to the leader (Lemma 2.4; measured);
//   5. leader-side reconstruction of G[V_i] from the delivered tokens.
//
// Applications then run any sequential algorithm on each reconstructed
// cluster and return per-vertex answers along the reversed walk schedule
// (same measured round count as the forward gather).
#pragma once

#include <cstdint>
#include <vector>

#include "src/congest/primitives.h"
#include "src/congest/round_ledger.h"
#include "src/expander/decomposition.h"
#include "src/graph/graph.h"
#include "src/graph/subgraph.h"

namespace ecd::congest {
class ExecutionProfiler;  // src/congest/profiler.h
class MetricsRegistry;    // src/congest/metrics.h
}  // namespace ecd::congest

namespace ecd::core {

// How the expander decomposition is constructed and accounted.
enum class DecompositionMode {
  // Host-side spectral construction; rounds charged by the Thm 2.1/2.2
  // formula (a *modeled* ledger entry). Default: fast, contract-identical.
  kModeled,
  // Fully distributed construction (distributed power iteration + histogram
  // sweep, src/expander/distributed_decomposition.h); every round executes
  // on the simulator and enters the ledger as *measured*.
  kDistributed,
};

struct FrameworkOptions {
  expander::DecompositionOptions decomposition;
  DecompositionMode decomposition_mode = DecompositionMode::kModeled;
  // Tokens per edge per round for the walk phase; 0 = ceil(log2 n), the
  // batch size Lemma 2.4's O(log n)-messages-per-edge argument allows.
  int walk_bandwidth = 0;
  std::uint64_t seed = 1;
  bool deterministic = false;
  // Divide ε by the graph-class density bound t (Theorem 2.6's ε' = ε/t).
  // When 0 the bound is taken as max(1, ceil(|E|/|V|)) of the input.
  int density_bound = 0;
  // Use weighted volumes in the decomposition (inter-cluster *weight*
  // <= ε'·w(E) instead of edge count) — the §1.3 weighted-problems variant.
  // Ignored on unweighted graphs.
  bool weighted_volumes = false;
  // Observability (src/congest/trace.h): when set, the pipeline opens a
  // "phase:*" span around each of its five phases (decomposition, election,
  // orientation, gather, reconstruct), the primitives nest their own spans
  // inside, and every simulator round/edge/message event is reported. Null:
  // zero overhead. Valid at every num_threads value — sharded trace lanes
  // (DESIGN.md §18) replay events on the caller in a fixed merge order, so
  // the event stream is byte-identical across thread counts.
  congest::TraceSink* trace = nullptr;
  // Sampling filters and flight-recorder gating for `trace`
  // (NetworkOptions::trace_config): round/vertex/tag filters that bound
  // trace volume deterministically. Defaults trace everything.
  congest::TraceConfig trace_config;
  // Aggregate metrics (src/congest/metrics.h): when set, every simulated
  // phase runs with the registry attached — per-tag traffic, round
  // histograms, edge high-water marks, critical path — and each pipeline
  // phase opens a "phase:*" MetricsPhase. Unlike `trace`, works at every
  // `num_threads` value with bit-identical snapshots.
  congest::MetricsRegistry* metrics = nullptr;
  // Wall-clock execution profiler (src/congest/profiler.h, DESIGN.md §14):
  // when set, every simulated phase (election, orientation, gather) runs
  // with per-shard phase/barrier timestamping. Purely observational —
  // results and metrics snapshots are unchanged — and valid at every
  // num_threads value.
  congest::ExecutionProfiler* profiler = nullptr;
  // Worker threads for the simulated phases (NetworkOptions::num_threads):
  // 1 = serial (default), 0 = hardware concurrency, k = k shards.
  int num_threads = 1;
  // Sparse-round serial fallback cutoff for the simulated phases
  // (NetworkOptions::sparse_serial_threshold): rounds with at most this
  // many active vertices run on the calling thread. 0 disables the
  // fallback; results are bit-identical at every setting.
  int sparse_serial_threshold = 256;
  // --- Fault tolerance (DESIGN.md §12) ------------------------------------
  // Fault plan applied to the gather phase (the data plane); crash rounds
  // are interpreted on the gather's own round timeline. Control phases
  // (election, orientation) stay message-reliable — the §12 control-plane
  // assumption. An enabled plan implies `reliable_gather`.
  congest::FaultPlan faults;
  // Route the walk phase through reliable_walk_gather (per-token sequence
  // numbers, ack/retransmit, crash-stop leader re-election) even with an
  // empty fault plan.
  bool reliable_gather = false;
  int gather_epoch_rounds = 512;
  int gather_max_epochs = 8;
};

struct Cluster {
  std::vector<graph::VertexId> members;  // parent-graph vertex ids
  graph::VertexId leader = graph::kInvalidVertex;
  // G[V_i] as reconstructed by the leader from gathered tokens; local
  // vertex i corresponds to parent id subgraph.to_parent[i].
  graph::InducedSubgraph subgraph;
  int leader_local = -1;
};

struct Partition {
  expander::ExpanderDecomposition decomposition;
  std::vector<graph::VertexId> leader_of;
  std::vector<Cluster> clusters;
  congest::RoundLedger ledger;
  bool gather_complete = false;
  // Reliable-gather diagnostics (zero unless the faulted path ran).
  std::int64_t gather_retransmissions = 0;
  int gather_epochs = 0;
  int gather_reelections = 0;
  double eps_effective = 0.0;  // the ε' actually passed to the decomposition
  // Forward gather traces (token paths) kept for the reversed delivery,
  // and the id of each vertex's registration ("hello") token.
  congest::GatherResult gather;
  std::vector<std::int64_t> hello_token_of;
};

Partition partition_and_gather(const graph::Graph& g, double eps,
                               const FrameworkOptions& options = {});

// Returns one O(log n)-bit answer from each leader to every vertex of its
// cluster by *executing* the reversed forward-walk schedule (§2.2, last
// paragraph): same congestion, same round count, verified per edge.
// Adds the measured rounds to the ledger and returns them.
std::int64_t return_results(Partition& partition,
                            const std::vector<std::int64_t>& per_vertex_word,
                            const char* label);

// Diagnostics for Lemma 2.3: for every cluster, deg(v*) and φ²·|V_i|.
struct HighDegreeDiagnostic {
  int cluster = 0;
  int leader_degree = 0;
  int cluster_size = 0;
  int cluster_edges = 0;
  double phi = 0.0;
  double ratio = 0.0;  // deg(v*) / (φ² |V_i|)
};
std::vector<HighDegreeDiagnostic> high_degree_diagnostics(
    const Partition& partition);

}  // namespace ecd::core
