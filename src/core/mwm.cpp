#include "src/core/mwm.h"

#include <algorithm>
#include <cmath>

#include "src/graph/subgraph.h"
#include "src/seq/mwm.h"

namespace ecd::core {

using graph::Graph;
using graph::VertexId;

MwmApproxResult mwm_approx(const Graph& g, double eps,
                           const MwmApproxOptions& options) {
  const int n = g.num_vertices();
  MwmApproxResult result;
  result.mates.assign(n, graph::kInvalidVertex);
  result.phases = options.phases > 0
                      ? options.phases
                      : static_cast<int>(std::ceil(4.0 / eps)) + 2;

  for (int phase = 0; phase < result.phases; ++phase) {
    FrameworkOptions fopt = options.framework;
    fopt.weighted_volumes = options.weighted_decomposition;
    fopt.seed = options.framework.seed + 0x51ED2701ULL * (phase + 1);
    if (fopt.deterministic) {
      // Deterministic mode still needs phase-distinct decompositions; the
      // phase index is public information, so this stays deterministic.
      fopt.decomposition.seed += phase + 1;
    }
    Partition partition = partition_and_gather(g, eps, fopt);

    for (const Cluster& cluster : partition.clusters) {
      const auto& sub = cluster.subgraph;
      const int nc = sub.graph.num_vertices();
      // Freeze vertices matched across the cluster boundary; the matching
      // edges fully inside the cluster are up for replacement.
      std::vector<bool> available(nc, true);
      std::int64_t inside_weight = 0;
      {
        for (VertexId i = 0; i < nc; ++i) {
          const VertexId parent = sub.to_parent[i];
          const VertexId mate = result.mates[parent];
          if (mate == graph::kInvalidVertex) continue;
          if (partition.decomposition.cluster_of[mate] !=
              partition.decomposition.cluster_of[parent]) {
            available[i] = false;  // frozen: matched to another cluster
          }
        }
        for (VertexId i = 0; i < nc; ++i) {
          const VertexId parent = sub.to_parent[i];
          const VertexId mate = result.mates[parent];
          if (mate == graph::kInvalidVertex || mate < parent) continue;
          if (partition.decomposition.cluster_of[mate] ==
              partition.decomposition.cluster_of[parent]) {
            const graph::EdgeId e = g.find_edge(parent, mate);
            inside_weight += g.weight(e);
          }
        }
      }
      // Build the available-subgraph and solve.
      std::vector<VertexId> avail_vertices;
      for (VertexId i = 0; i < nc; ++i) {
        if (available[i]) avail_vertices.push_back(i);
      }
      if (avail_vertices.size() < 2) continue;
      const auto avail = graph::induced_subgraph(sub.graph, avail_vertices);
      seq::Mates local;
      if (avail.graph.num_vertices() <= options.exact_cluster_cap) {
        local = seq::max_weight_matching(avail.graph);
      } else {
        local = seq::greedy_weight_matching(avail.graph);
        ++result.clusters_greedy;
      }
      const std::int64_t new_weight = seq::matching_weight(avail.graph, local);
      if (new_weight < inside_weight) continue;  // keep-best: stay monotone
      // Clear current inside-cluster matches, then adopt the local solution.
      for (VertexId i = 0; i < nc; ++i) {
        const VertexId parent = sub.to_parent[i];
        const VertexId mate = result.mates[parent];
        if (mate != graph::kInvalidVertex &&
            partition.decomposition.cluster_of[mate] ==
                partition.decomposition.cluster_of[parent]) {
          result.mates[parent] = graph::kInvalidVertex;
          result.mates[mate] = graph::kInvalidVertex;
        }
      }
      for (VertexId a = 0; a < avail.graph.num_vertices(); ++a) {
        const VertexId b = local[a];
        if (b == graph::kInvalidVertex || b < a) continue;
        const VertexId pa = sub.to_parent[avail.to_parent[a]];
        const VertexId pb = sub.to_parent[avail.to_parent[b]];
        result.mates[pa] = pb;
        result.mates[pb] = pa;
      }
    }
    {
      std::vector<std::int64_t> words(n);
      for (VertexId v = 0; v < n; ++v) words[v] = result.mates[v];
      return_results(partition, words, "result return (reversed walks)");
    }
    result.ledger.merge(partition.ledger);
  }
  result.weight = seq::matching_weight(g, result.mates);
  return result;
}

}  // namespace ecd::core
