#include "src/core/triangles.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "src/congest/network.h"
#include "src/congest/primitives.h"
#include "src/graph/metrics.h"

namespace ecd::core {

using congest::Context;
using congest::Message;
using graph::Graph;
using graph::VertexId;

namespace {

// Phase B of the algorithm: every vertex announces its out-neighbors, one
// id per round on every incident edge; after everyone is silent, each
// vertex counts the triangles in which it has the smallest id, deciding
// adjacency of two neighbors y, z from the announced lists
// (y ~ z iff z in N+(y) or y in N+(z)).
class AnnounceAlgo final : public congest::VertexAlgorithm {
 public:
  AnnounceAlgo(std::vector<VertexId> out_neighbors, int rounds_needed)
      : out_(std::move(out_neighbors)), rounds_needed_(rounds_needed) {}

  void round(Context& ctx) override {
    const std::int64_t r = ctx.round();
    if (r < rounds_needed_) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        for (const Message& m : ctx.inbox(p)) {
          received_[ctx.neighbor(p)].push_back(
              static_cast<VertexId>(m.words[0]));
        }
      }
      if (r < static_cast<std::int64_t>(out_.size())) {
        for (int p = 0; p < ctx.num_ports(); ++p) {
          ctx.send(p, {{out_[r]}});
        }
      }
      return;
    }
    if (done_) return;
    // Final absorb, then count.
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) {
        received_[ctx.neighbor(p)].push_back(
            static_cast<VertexId>(m.words[0]));
      }
    }
    count_triangles(ctx);
    done_ = true;
  }

  bool finished() const override { return done_; }
  std::int64_t count() const { return count_; }

 private:
  void count_triangles(Context& ctx) {
    const VertexId me = ctx.id();
    std::vector<VertexId> nbrs;
    for (int p = 0; p < ctx.num_ports(); ++p) nbrs.push_back(ctx.neighbor(p));
    auto adjacent = [&](VertexId y, VertexId z) {
      const auto& ny = received_[y];
      if (std::find(ny.begin(), ny.end(), z) != ny.end()) return true;
      const auto& nz = received_[z];
      return std::find(nz.begin(), nz.end(), y) != nz.end();
    };
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const VertexId y = nbrs[i], z = nbrs[j];
        if (me < y && me < z && adjacent(y, z)) ++count_;
      }
    }
  }

  std::vector<VertexId> out_;
  int rounds_needed_;
  std::unordered_map<VertexId, std::vector<VertexId>> received_;
  bool done_ = false;
  std::int64_t count_ = 0;
};

}  // namespace

TriangleCountResult count_triangles_distributed(const Graph& g) {
  TriangleCountResult result;
  const int n = g.num_vertices();
  const std::vector<int> one_cluster(n, 0);

  // Phase A: Barenboim–Elkin orientation (measured).
  const int threshold = std::max(1, graph::degeneracy(g).degeneracy);
  const auto orientation =
      congest::orient_cluster_edges(g, one_cluster, threshold);
  result.ledger.add_measured("orientation (Barenboim-Elkin)",
                             orientation.stats.rounds);
  result.out_degree_bound = orientation.max_out_degree;

  // Phase B: out-list announcements + local counting (measured).
  std::vector<std::unique_ptr<congest::VertexAlgorithm>> algos;
  std::vector<AnnounceAlgo*> typed(n);
  for (VertexId v = 0; v < n; ++v) {
    std::vector<VertexId> out;
    for (graph::EdgeId e : orientation.owned[v]) {
      out.push_back(g.other_endpoint(e, v));
    }
    auto a = std::make_unique<AnnounceAlgo>(std::move(out),
                                            orientation.max_out_degree);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  congest::Network network(g);
  const auto stats = network.run(algos);
  result.ledger.add_measured("out-list exchange + local count", stats.rounds);

  result.local_count.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    result.local_count[v] = typed[v]->count();
    result.triangles += typed[v]->count();
  }
  return result;
}

std::int64_t count_triangles_sequential(const Graph& g) {
  // Orientation-based O(m * degeneracy) count.
  const auto owned = graph::degeneracy_orientation(g);
  const int n = g.num_vertices();
  std::vector<std::unordered_set<VertexId>> out(n);
  for (VertexId v = 0; v < n; ++v) {
    for (graph::EdgeId e : owned[v]) out[v].insert(g.other_endpoint(e, v));
  }
  std::int64_t count = 0;
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId a : out[v]) {
      for (VertexId b : out[v]) {
        if (a < b && (out[a].contains(b) || out[b].contains(a))) ++count;
      }
    }
  }
  return count;
}

}  // namespace ecd::core
