#include "src/core/framework.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "src/congest/metrics.h"
#include "src/congest/trace.h"
#include "src/expander/distributed_decomposition.h"
#include "src/expander/weighted.h"
#include "src/graph/metrics.h"
#include "src/graph/splitmix.h"

namespace ecd::core {

using congest::GatherOptions;
using congest::GatherToken;
using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

namespace {

// Rebuilds G[V_i] exactly as the leader sees it: the vertex set is the union
// of token endpoints (plus the leader itself), edges and their attributes
// come from the token payloads [u, v, weight, sign].
graph::InducedSubgraph reconstruct_cluster(
    const Graph& g, VertexId leader,
    const std::vector<std::vector<std::int64_t>>& payloads) {
  graph::InducedSubgraph out;
  std::unordered_map<VertexId, VertexId> to_local;
  auto local_id = [&](VertexId parent) {
    auto [it, inserted] =
        to_local.try_emplace(parent, static_cast<VertexId>(out.to_parent.size()));
    if (inserted) out.to_parent.push_back(parent);
    return it->second;
  };
  local_id(leader);
  std::vector<graph::Edge> edges;
  std::vector<graph::Weight> weights;
  std::vector<graph::EdgeSign> signs;
  for (const auto& p : payloads) {
    if (p[1] < 0) {  // registration token: names a vertex, not an edge
      local_id(static_cast<VertexId>(p[0]));
      continue;
    }
    const VertexId u = local_id(static_cast<VertexId>(p[0]));
    const VertexId v = local_id(static_cast<VertexId>(p[1]));
    edges.push_back({u, v});
    weights.push_back(p[2]);
    signs.push_back(p[3] > 0 ? graph::EdgeSign::kPositive
                             : graph::EdgeSign::kNegative);
  }
  out.graph = Graph::from_edges(static_cast<int>(out.to_parent.size()),
                                std::move(edges));
  if (g.is_weighted()) out.graph = out.graph.with_weights(std::move(weights));
  if (g.is_signed()) out.graph = out.graph.with_signs(std::move(signs));
  // Recover parent edge ids for downstream bookkeeping.
  out.edge_to_parent.reserve(out.graph.num_edges());
  for (EdgeId e = 0; e < out.graph.num_edges(); ++e) {
    const graph::Edge ed = out.graph.edge(e);
    const EdgeId parent_edge =
        g.find_edge(out.to_parent[ed.u], out.to_parent[ed.v]);
    if (parent_edge == graph::kInvalidEdge) {
      throw std::logic_error("gathered token names a non-edge");
    }
    out.edge_to_parent.push_back(parent_edge);
  }
  return out;
}

}  // namespace

Partition partition_and_gather(const Graph& g, double eps,
                               const FrameworkOptions& options) {
  if (eps <= 0.0 || eps >= 1.0) throw std::invalid_argument("eps out of (0,1)");
  const int n = g.num_vertices();
  Partition out;

  // Theorem 2.6: ε' = ε / t with t the density bound of the class.
  const int t = options.density_bound > 0
                    ? options.density_bound
                    : std::max(1, static_cast<int>(std::ceil(g.edge_density())));
  out.eps_effective = eps / t;

  expander::DecompositionOptions dopt = options.decomposition;
  dopt.deterministic = options.deterministic;
  // Per-phase sub-seeds are splitmix-derived with distinct phase tags:
  // the old multiplicative mixes left the decomposition and gather streams
  // trivially correlated across nearby user seeds (seed=1 reuse).
  dopt.seed = graph::splitmix64(dopt.seed ^ graph::splitmix64(options.seed));
  {
    TRACE_SPAN(options.trace, "phase:decomposition");
    congest::MetricsPhase mphase(options.metrics, "phase:decomposition");
    if (options.decomposition_mode == DecompositionMode::kDistributed) {
      expander::DistributedDecompositionOptions ddopt;
      ddopt.phi = dopt.phi;
      ddopt.seed = dopt.seed;
      ddopt.max_retries = dopt.max_retries;
      ddopt.trace = options.trace;
      const auto dd =
          expander::distributed_expander_decompose(g, out.eps_effective, ddopt);
      out.decomposition = dd.decomposition;
      out.ledger.add_measured("expander decomposition (distributed sweep)",
                              dd.measured_rounds);
    } else {
      if (options.weighted_volumes && g.is_weighted()) {
        out.decomposition =
            expander::expander_decompose_weighted(g, out.eps_effective, dopt)
                .base;
      } else {
        out.decomposition =
            expander::expander_decompose(g, out.eps_effective, dopt);
      }
      out.ledger.add_modeled(
          "expander decomposition (Thm 2.1/2.2)",
          congest::modeled_decomposition_rounds(n, out.eps_effective,
                                                options.deterministic));
    }
  }

  const auto& cluster_of = out.decomposition.cluster_of;
  congest::NetworkOptions control_net;  // bandwidth-1 control traffic
  control_net.trace = options.trace;
  control_net.trace_config = options.trace_config;
  control_net.metrics = options.metrics;
  control_net.profiler = options.profiler;
  control_net.num_threads = options.num_threads;
  control_net.sparse_serial_threshold = options.sparse_serial_threshold;

  // Leader election: the paper elects a maximum-cluster-degree vertex.
  congest::LeaderElectionResult election;
  {
    TRACE_SPAN(options.trace, "phase:election");
    congest::MetricsPhase mphase(options.metrics, "phase:election");
    election = congest::elect_cluster_leaders(g, cluster_of, control_net);
  }
  out.leader_of = election.leader_of;
  out.ledger.add_measured("leader election (flooding)", election.stats);

  // Low-out-degree orientation (Barenboim–Elkin): the peel threshold is the
  // degeneracy, an O(1) constant of the H-minor-free class. Note: BE's
  // O(log n)-phase guarantee needs threshold >= (2+δ)·arboricity; at
  // exactly the degeneracy some families (grids: degeneracy 2 = arboricity)
  // peel in Θ(sqrt n) measured phases instead — visible in the ledger and
  // discussed in EXPERIMENTS.md E13.
  const int threshold = std::max(1, graph::degeneracy(g).degeneracy);
  congest::OrientationResult orientation;
  {
    TRACE_SPAN(options.trace, "phase:orientation");
    congest::MetricsPhase mphase(options.metrics, "phase:orientation");
    orientation =
        congest::orient_cluster_edges(g, cluster_of, threshold, control_net);
  }
  out.ledger.add_measured("edge orientation (Barenboim-Elkin)",
                          orientation.stats);

  // Token per oriented intra-cluster edge: [u, v, weight, sign]; plus one
  // registration ("hello") token [v, -1, 0, 0] per vertex, which both
  // announces the vertex to the leader and pins a return path for the
  // reversed result delivery (Theorem 2.6's "exchange a distinct message
  // with each vertex").
  std::vector<std::vector<GatherToken>> tokens(n);
  out.hello_token_of.resize(n);
  std::int64_t next_token_id = 0;
  for (VertexId v = 0; v < n; ++v) {
    out.hello_token_of[v] = next_token_id++;
    tokens[v].push_back({v, {v, -1, 0, 0}});
    for (EdgeId e : orientation.owned[v]) {
      const graph::Edge ed = g.edge(e);
      ++next_token_id;
      tokens[v].push_back(
          {v,
           {ed.u, ed.v, g.weight(e),
            !g.is_signed() || g.sign(e) == graph::EdgeSign::kPositive ? 1
                                                                      : -1}});
    }
  }
  GatherOptions gopt;
  gopt.seed = graph::splitmix64(options.seed ^ 0x2545F4914F6CDD1DULL);
  gopt.net.trace = options.trace;
  gopt.net.trace_config = options.trace_config;
  gopt.net.metrics = options.metrics;
  gopt.net.profiler = options.profiler;
  gopt.net.num_threads = options.num_threads;
  gopt.net.sparse_serial_threshold = options.sparse_serial_threshold;
  gopt.net.bandwidth_tokens =
      options.walk_bandwidth > 0
          ? options.walk_bandwidth
          : std::max(1, static_cast<int>(std::ceil(std::log2(std::max(2, n)))));
  if (options.reliable_gather || options.faults.enabled()) {
    congest::ReliableGatherOptions ropt;
    ropt.net = gopt.net;
    ropt.net.faults = options.faults;
    ropt.seed = gopt.seed;
    ropt.epoch_rounds = options.gather_epoch_rounds;
    ropt.max_epochs = options.gather_max_epochs;
    TRACE_SPAN(options.trace, "phase:gather");
    congest::MetricsPhase mphase(options.metrics, "phase:gather");
    congest::ReliableGatherResult reliable = congest::reliable_walk_gather(
        g, cluster_of, out.leader_of, tokens, ropt);
    out.gather = std::move(reliable.gather);
    out.gather_retransmissions = reliable.retransmissions;
    out.gather_epochs = reliable.epochs;
    out.gather_reelections = reliable.reelections;
    if (options.metrics) {
      options.metrics->counter("gather.retransmissions")
          ->add(reliable.retransmissions);
      options.metrics->counter("gather.epochs")->add(reliable.epochs);
      options.metrics->counter("gather.reelections")->add(reliable.reelections);
    }
    // Crash-forced re-elections replace leaders mid-gather; downstream
    // phases (reconstruction, reversed delivery) must see the survivors.
    // Crashed vertices report no leader (-1) and keep their original entry.
    for (VertexId v = 0; v < n; ++v) {
      if (reliable.final_leader_of[v] >= 0) {
        out.leader_of[v] = reliable.final_leader_of[v];
      }
    }
    out.ledger.add_measured("topology gather (reliable walks, §12)",
                            out.gather.stats);
  } else {
    TRACE_SPAN(options.trace, "phase:gather");
    congest::MetricsPhase mphase(options.metrics, "phase:gather");
    out.gather = congest::random_walk_gather(g, cluster_of, out.leader_of,
                                             tokens, gopt);
    out.ledger.add_measured("topology gather (Lemma 2.4 random walks)",
                            out.gather.stats);
  }
  const auto& gather = out.gather;
  out.gather_complete = gather.complete;

  // Leader-side reconstruction.
  TRACE_SPAN(options.trace, "phase:reconstruct");
  congest::MetricsPhase reconstruct_phase(options.metrics, "phase:reconstruct");
  const auto members = expander::cluster_members(out.decomposition);
  out.clusters.resize(out.decomposition.num_clusters);
  for (int c = 0; c < out.decomposition.num_clusters; ++c) {
    Cluster& cluster = out.clusters[c];
    cluster.members = members[c];
    cluster.leader = out.leader_of[members[c].front()];
    cluster.subgraph =
        reconstruct_cluster(g, cluster.leader, gather.delivered[c]);
    for (int i = 0; i < static_cast<int>(cluster.subgraph.to_parent.size());
         ++i) {
      if (cluster.subgraph.to_parent[i] == cluster.leader) {
        cluster.leader_local = i;
      }
    }
  }
  return out;
}

std::int64_t return_results(Partition& partition,
                            const std::vector<std::int64_t>& per_vertex_word,
                            const char* label) {
  // Attach each vertex's answer to its registration token and replay the
  // forward schedule backwards; the schedule is verified, not just charged.
  std::vector<std::vector<std::int64_t>> reply(partition.gather.traces.size());
  for (std::size_t v = 0; v < per_vertex_word.size(); ++v) {
    reply[partition.hello_token_of[v]] = {per_vertex_word[v]};
  }
  // Mirror the forward bandwidth so the verification is apples-to-apples.
  const int bandwidth = std::max(
      1, static_cast<int>(std::ceil(std::log2(
             std::max(2, static_cast<int>(per_vertex_word.size()))))));
  const auto delivery = congest::reverse_delivery(
      static_cast<int>(per_vertex_word.size()), partition.gather, reply,
      bandwidth);
  if (!delivery.load_ok) {
    throw std::logic_error("reverse delivery violated the edge budget");
  }
  // Every vertex must have received exactly its own word back.
  for (std::size_t v = 0; v < per_vertex_word.size(); ++v) {
    if (delivery.received[v].size() != 1 ||
        delivery.received[v][0][0] != per_vertex_word[v]) {
      throw std::logic_error("reverse delivery dropped or mixed a reply");
    }
  }
  partition.ledger.add_measured(label, delivery.stats);
  return delivery.stats.rounds;
}

std::vector<HighDegreeDiagnostic> high_degree_diagnostics(
    const Partition& partition) {
  std::vector<HighDegreeDiagnostic> out;
  const double phi = partition.decomposition.phi;
  for (int c = 0; c < static_cast<int>(partition.clusters.size()); ++c) {
    const Cluster& cluster = partition.clusters[c];
    HighDegreeDiagnostic d;
    d.cluster = c;
    d.cluster_size = static_cast<int>(cluster.members.size());
    d.cluster_edges = cluster.subgraph.graph.num_edges();
    d.leader_degree = cluster.leader_local >= 0
                          ? cluster.subgraph.graph.degree(cluster.leader_local)
                          : 0;
    d.phi = phi;
    const double denom = phi * phi * d.cluster_size;
    d.ratio = denom > 0 ? d.leader_degree / denom : 0.0;
    out.push_back(d);
  }
  return out;
}

}  // namespace ecd::core
