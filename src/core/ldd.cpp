#include "src/core/ldd.h"

#include <random>

namespace ecd::core {

using graph::Graph;
using graph::VertexId;

LddApproxResult ldd_approx(const Graph& g, double eps,
                           const LddApproxOptions& options) {
  // §3.5: both stages run with ε̃ = ε/2 so the total cut stays <= ε|E|.
  const double eps_half = eps / 2.0;
  FrameworkOptions fopt = options.framework;
  fopt.density_bound = 1;  // the ε/2 split is stated against |E| directly
  Partition partition = partition_and_gather(g, eps_half, fopt);

  LddApproxResult result;
  result.cluster_of.assign(g.num_vertices(), -1);
  int label_base = 0;
  std::mt19937_64 leader_rng(options.framework.seed * 7349 + 11);
  for (const Cluster& cluster : partition.clusters) {
    const auto local = seq::ldd_minor_free(cluster.subgraph.graph, eps_half,
                                           leader_rng, options.sequential);
    for (int i = 0; i < static_cast<int>(local.cluster_of.size()); ++i) {
      result.cluster_of[cluster.subgraph.to_parent[i]] =
          label_base + local.cluster_of[i];
    }
    label_base += local.num_clusters;
  }
  {
    std::vector<std::int64_t> words(g.num_vertices());
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      words[v] = result.cluster_of[v];
    }
    return_results(partition, words, "result return (reversed walks)");
  }

  result.num_clusters = label_base;
  result.cut_edges = seq::ldd_cut_edges(g, result.cluster_of);
  result.max_diameter = seq::ldd_max_diameter(g, result.cluster_of);
  result.ledger = std::move(partition.ledger);
  return result;
}

}  // namespace ecd::core
