// (1-ε)-approximate agreement-maximization correlation clustering
// (Theorem 1.3, §3.3).
#pragma once

#include <cstdint>

#include "src/core/framework.h"
#include "src/graph/graph.h"
#include "src/seq/correlation.h"

namespace ecd::core {

struct CorrelationApproxOptions {
  FrameworkOptions framework;
  // Clusters up to this size are solved exactly by subset DP.
  int exact_threshold = 15;
};

struct CorrelationApproxResult {
  seq::Clustering clustering;  // distinct labels across framework clusters
  std::int64_t score = 0;
  int clusters_exact = 0;
  int num_clusters = 0;
  congest::RoundLedger ledger;
};

// §3.3: partition with ε' = ε/2 (γ(G) >= |E|/2 for connected G); leaders
// solve their clusters; the union of the per-cluster clusterings is
// returned (inter-cluster pairs are automatically separated).
CorrelationApproxResult correlation_approx(
    const graph::Graph& g, double eps,
    const CorrelationApproxOptions& options = {});

}  // namespace ecd::core
