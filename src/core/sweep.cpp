#include "src/core/sweep.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <ostream>
#include <random>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <utility>

#include "src/congest/profiler.h"
#include "src/congest/thread_pool.h"
#include "src/graph/generators.h"
#include "src/graph/splitmix.h"
#include "tools/json_min.h"

namespace ecd::core {

using congest::Context;
using congest::Message;
using congest::MetricsRegistry;
using congest::Network;
using congest::NetworkOptions;
using congest::RunStats;
using congest::ThreadPool;
using congest::VertexAlgorithm;
using graph::Graph;
using graph::VertexId;

namespace {

constexpr std::int64_t kMaxCells = 10'000'000;

// --- Workloads --------------------------------------------------------------

// A sweep workload is a VertexAlgorithm with two extras: reset(run_seed)
// rewinds it to its pre-run state (so one algorithm vector serves every run
// on a cached Network, allocation-free), and result_word() is the vertex's
// contribution to the run's result checksum (summed by the engine). Both
// engines — warm and cold — call reset() before every run, so construction
// leaves no meaningful state.
class SweepAlgo : public VertexAlgorithm {
 public:
  virtual void reset(std::uint64_t run_seed) = 0;
  virtual std::int64_t result_word() const = 0;
};

// One wavefront from vertex 0 (the bench_network flood shape): result is 1
// per vertex the wave reached. Under faults a dropped forward can strand a
// subtree, so the reached count genuinely depends on the fault schedule.
class FloodSweep final : public SweepAlgo {
 public:
  explicit FloodSweep(VertexId v) : source_(v == 0) {}

  void reset(std::uint64_t run_seed) override {
    value_ = source_ ? static_cast<std::int64_t>(run_seed & 0x3fffffff) + 1 : -1;
    started_ = false;
    sent_ = false;
  }

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    if (ctx.round() == 0) {
      if (value_ != -1) forward(ctx);
      return;
    }
    if (value_ != -1) return;
    for (int p = 0; p < ctx.num_ports(); ++p) {
      if (!ctx.inbox(p).empty()) {
        value_ = ctx.inbox(p)[0].words[0];
        forward(ctx);
        return;
      }
    }
  }
  bool finished() const override { return started_ && !sent_; }
  std::int64_t result_word() const override { return value_ == -1 ? 0 : 1; }

 private:
  void forward(Context& ctx) {
    sent_ = true;
    for (int p = 0; p < ctx.num_ports(); ++p) ctx.send(p, {{value_}});
  }
  bool source_;
  std::int64_t value_ = -1;
  bool started_ = false;
  bool sent_ = false;
};

// Full-duplex saturation for a fixed round count; result is the vertex's
// inbox checksum (faults visibly perturb it).
class PingPongSweep final : public SweepAlgo {
 public:
  explicit PingPongSweep(int rounds) : rounds_(rounds) {}

  void reset(std::uint64_t run_seed) override {
    sink_ = static_cast<std::int64_t>(run_seed & 0xff);
    done_ = false;
  }

  void round(Context& ctx) override {
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) sink_ += m.words[0];
    }
    if (ctx.round() < rounds_) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{static_cast<std::int64_t>(ctx.id()), sink_ & 1}});
      }
    } else {
      done_ = true;
    }
  }
  bool finished() const override { return done_; }
  std::int64_t result_word() const override { return sink_; }

 private:
  int rounds_;
  std::int64_t sink_ = 0;
  bool done_ = false;
};

// Luby MIS, the src/baselines protocol made resettable: even step draws and
// exchanges priorities, odd step joins on a strict local minimum and
// announces with a -1 tag. Result is 1 per MIS member. Per-vertex streams
// derive from (run_seed, vertex) through splitmix64, so reseeding is one
// mt19937_64::seed call — no allocation on the warm path.
class LubySweep final : public SweepAlgo {
 public:
  explicit LubySweep(VertexId v) : v_(v) {}

  void reset(std::uint64_t run_seed) override {
    rng_.seed(graph::splitmix64(
        run_seed ^ (0xD1B54A32D192ED03ULL *
                    (static_cast<std::uint64_t>(v_) + 2))));
    in_mis_ = false;
    done_ = false;
    step_ = 0;
    priority_ = 0;
  }

  void round(Context& ctx) override {
    if (done_) return;
    const int step = step_++;
    if (step % 2 == 0) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        for (const Message& m : ctx.inbox(p)) {
          if (m.words[0] == -1) {
            done_ = true;
            return;
          }
        }
      }
      priority_ = static_cast<std::int64_t>(rng_() >> 1);
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{priority_, ctx.id()}});
      }
      return;
    }
    bool wins = true;
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) {
        if (m.words[0] == -1) continue;  // stale announcement
        if (std::pair(m.words[0], m.words[1]) <
            std::pair(priority_, static_cast<std::int64_t>(ctx.id()))) {
          wins = false;
        }
      }
    }
    if (wins) {
      in_mis_ = true;
      done_ = true;
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{-1, ctx.id()}});
      }
    }
  }
  bool finished() const override { return done_; }
  std::int64_t result_word() const override { return in_mis_ ? 1 : 0; }

 private:
  VertexId v_;
  std::mt19937_64 rng_;
  std::int64_t priority_ = 0;
  int step_ = 0;
  bool in_mis_ = false;
  bool done_ = false;
};

// --- Topology families ------------------------------------------------------

// The `ecd_cli gen` family vocabulary (kept in sync with make_family there;
// validate() rejects anything else before construction is attempted).
Graph make_family_graph(const std::string& family, int n,
                        std::uint64_t topo_seed) {
  graph::Rng rng(topo_seed);
  if (family == "grid") {
    int side = 1;
    while (side * side < n) ++side;
    return graph::grid(side, side);
  }
  if (family == "tri") return graph::random_maximal_planar(n, rng);
  if (family == "planar") return graph::random_planar(n, 2 * n, rng);
  if (family == "outer") return graph::random_outerplanar(n, rng);
  if (family == "twotree") return graph::random_two_tree(n, rng);
  if (family == "tree") return graph::random_tree(n, rng);
  if (family == "torus") {
    int side = 3;
    while (side * side < n) ++side;
    return graph::torus_grid(side, side);
  }
  if (family == "hypercube") {
    int dim = 1;
    while ((1 << dim) < n) ++dim;
    return graph::hypercube(dim);
  }
  if (family == "expander") {
    return graph::random_regular(n - (n % 2), 6, rng);
  }
  throw std::invalid_argument("sweep: unknown family '" + family + "'");
}

bool known_family(const std::string& family) {
  static constexpr const char* kFamilies[] = {
      "grid", "tri",  "planar",    "outer",    "twotree",
      "tree", "torus", "hypercube", "expander"};
  for (const char* f : kFamilies) {
    if (family == f) return true;
  }
  return false;
}

bool known_algorithm(const std::string& algorithm) {
  return algorithm == "flood" || algorithm == "pingpong" || algorithm == "mis";
}

// --- Run building blocks ----------------------------------------------------

NetworkOptions make_net_options(const SweepSpec& spec, const SweepCell& cell,
                                const Graph& g, MetricsRegistry* metrics,
                                ThreadPool* shared_pool) {
  NetworkOptions o;
  o.bandwidth_tokens = spec.bandwidth_tokens;
  o.max_rounds = spec.max_rounds;
  o.num_threads = cell.threads;
  o.sparse_serial_threshold = spec.sparse_serial_threshold;
  o.metrics = metrics;
  o.shared_pool = shared_pool;
  if (cell.fault_permille > 0) {
    // The bench_network mixed plan: drop + duplicate + bounded delay. The
    // seed is per run (set_fault_seed / run_seed), not part of the shape.
    o.faults.seed = cell.run_seed;
    o.faults.drop_probability = cell.fault_permille / 1000.0;
    o.faults.duplicate_probability = cell.fault_permille / 2000.0;
    o.faults.delay_probability = cell.fault_permille / 1000.0;
    o.faults.max_delay_rounds = 2;
  }
  if (cell.churn_permille > 0) {
    // Churn is part of the Network's *shape* (it widens the port CSR for
    // the plan's inserts), so the schedule must not vary with run_seed —
    // it derives from (topo_seed, churn_permille) only, and run_prepared's
    // set_fault_seed swap leaves it untouched.
    o.faults.churn = make_churn_plan(g, cell.topo_seed, cell.churn_permille);
  }
  return o;
}

void make_algos(const SweepSpec& spec, const SweepCell& cell, const Graph& g,
                std::vector<std::unique_ptr<VertexAlgorithm>>& algos,
                std::vector<SweepAlgo*>& typed) {
  const int n = g.num_vertices();
  algos.reserve(n);
  typed.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    std::unique_ptr<SweepAlgo> a;
    if (cell.algorithm == "flood") {
      a = std::make_unique<FloodSweep>(v);
    } else if (cell.algorithm == "pingpong") {
      a = std::make_unique<PingPongSweep>(spec.pingpong_rounds);
    } else {
      a = std::make_unique<LubySweep>(v);
    }
    typed.push_back(a.get());
    algos.push_back(std::move(a));
  }
}

// Executes one run on prepared state: reset every vertex, swap the fault
// seed in, run, fold the result. The warm path's whole per-run cost.
SweepRunRecord run_prepared(Network& net, const SweepCell& cell,
                            std::vector<std::unique_ptr<VertexAlgorithm>>& algos,
                            const std::vector<SweepAlgo*>& typed,
                            MetricsRegistry* metrics) {
  for (SweepAlgo* a : typed) a->reset(cell.run_seed);
  if (cell.fault_permille > 0) net.set_fault_seed(cell.run_seed);
  if (metrics) metrics->reset();
  SweepRunRecord rec;
  rec.cell = cell;
  rec.stats = net.run(algos);
  for (const SweepAlgo* a : typed) rec.result_word += a->result_word();
  return rec;
}

// The per-run ecd-run-report-v1 line. Every field is a pure function of
// (spec, cell, the deterministic run outcome) except the report's "wall"
// section, so warm lines match fresh lines byte-for-byte outside it.
void append_report_line(std::ostream& os, const SweepCell& cell, int n, int m,
                        const MetricsRegistry& metrics, std::int64_t result,
                        int top_edges) {
  congest::RunReportContext ctx;
  ctx.title = "sweep " + cell.algorithm + " on " + cell.family;
  ctx.top_k_edges = top_edges;
  ctx.info = {
      {"run", std::to_string(cell.index)},
      {"family", cell.family},
      {"n", std::to_string(n)},
      {"m", std::to_string(m)},
      {"topo_seed", std::to_string(cell.topo_seed)},
      {"run_seed", std::to_string(cell.run_seed)},
      {"algorithm", cell.algorithm},
      {"threads", std::to_string(cell.threads)},
      {"fault_permille", std::to_string(cell.fault_permille)},
      {"churn_permille", std::to_string(cell.churn_permille)},
      {"result", std::to_string(result)},
  };
  congest::write_run_report(os, metrics, ctx);
}

// Fresh-construction run of one cell on an already built graph (shared by
// run_cell_fresh, reference_report_line and the engine's cold mode).
SweepRunRecord run_fresh_on(const Graph& g, const SweepSpec& spec,
                            const SweepCell& cell, MetricsRegistry* metrics) {
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<SweepAlgo*> typed;
  make_algos(spec, cell, g, algos, typed);
  Network net(g, make_net_options(spec, cell, g, metrics, nullptr));
  return run_prepared(net, cell, algos, typed, metrics);
}

// --- JSON helpers -----------------------------------------------------------

std::int64_t json_int(const jsonmin::Value& v, const std::string& key) {
  if (!v.is_number()) {
    throw std::invalid_argument("sweep spec: '" + key + "' must be a number");
  }
  const double d = v.number;
  const std::int64_t i = static_cast<std::int64_t>(d);
  if (static_cast<double>(i) != d) {
    throw std::invalid_argument("sweep spec: '" + key + "' must be integral");
  }
  return i;
}

std::vector<int> json_int_list(const jsonmin::Value& v, const std::string& key) {
  if (!v.is_array()) {
    throw std::invalid_argument("sweep spec: '" + key + "' must be an array");
  }
  std::vector<int> out;
  out.reserve(v.items.size());
  for (const jsonmin::Value& item : v.items) {
    out.push_back(static_cast<int>(json_int(item, key)));
  }
  return out;
}

std::vector<std::uint64_t> json_u64_list(const jsonmin::Value& v,
                                         const std::string& key) {
  if (!v.is_array()) {
    throw std::invalid_argument("sweep spec: '" + key + "' must be an array");
  }
  std::vector<std::uint64_t> out;
  out.reserve(v.items.size());
  for (const jsonmin::Value& item : v.items) {
    const std::int64_t i = json_int(item, key);
    if (i < 0) {
      throw std::invalid_argument("sweep spec: '" + key +
                                  "' entries must be non-negative");
    }
    out.push_back(static_cast<std::uint64_t>(i));
  }
  return out;
}

std::vector<std::string> json_string_list(const jsonmin::Value& v,
                                          const std::string& key) {
  if (!v.is_array()) {
    throw std::invalid_argument("sweep spec: '" + key + "' must be an array");
  }
  std::vector<std::string> out;
  out.reserve(v.items.size());
  for (const jsonmin::Value& item : v.items) {
    if (!item.is_string()) {
      throw std::invalid_argument("sweep spec: '" + key +
                                  "' entries must be strings");
    }
    out.push_back(item.string);
  }
  return out;
}

// Exact order statistic of a sorted sample: index floor(p * (N-1) / 100).
std::int64_t quantile_sorted(const std::vector<std::int64_t>& v, int p) {
  return v[(static_cast<std::size_t>(p) * (v.size() - 1)) / 100];
}

void write_quantiles(std::ostream& os, const char* name,
                     std::vector<std::int64_t>& v) {
  std::sort(v.begin(), v.end());
  os << '"' << name << "\":{\"min\":" << v.front()
     << ",\"p50\":" << quantile_sorted(v, 50)
     << ",\"p90\":" << quantile_sorted(v, 90)
     << ",\"p99\":" << quantile_sorted(v, 99) << ",\"max\":" << v.back()
     << '}';
}

}  // namespace

// --- Churn schedule ---------------------------------------------------------

std::vector<congest::ChurnEvent> make_churn_plan(const Graph& g,
                                                 std::uint64_t topo_seed,
                                                 int churn_permille) {
  std::vector<congest::ChurnEvent> plan;
  if (churn_permille <= 0 || g.num_edges() == 0) return plan;
  const std::int64_t m = g.num_edges();
  const std::int64_t k =
      std::max<std::int64_t>(1, m * churn_permille / 1000);
  plan.reserve(static_cast<std::size_t>(2 * k));
  const auto es = g.edges();
  // Each item picks an existing edge through splitmix64 (duplicates are
  // harmless: deletes of dead ports and inserts of live ones are counted
  // no-ops). The stream keys off (topo_seed, churn_permille, i) only.
  const std::uint64_t stream = graph::splitmix64(
      topo_seed ^ (0xC2B2AE3D27D4EB4FULL *
                   static_cast<std::uint64_t>(churn_permille)));
  for (std::int64_t i = 0; i < k; ++i) {
    const std::uint64_t h =
        graph::splitmix64(stream ^ (static_cast<std::uint64_t>(i) + 1));
    const graph::Edge e =
        es[static_cast<std::size_t>(h % static_cast<std::uint64_t>(m))];
    const std::int64_t r = 1 + (i % 8);
    if (i % 8 == 7) {
      // Every 8th item exercises node churn: one endpoint leaves, then
      // rejoins three rounds later (its edges stay down — kNodeJoin does
      // not restore links; see fault.h).
      plan.push_back({congest::ChurnKind::kNodeLeave, r, e.u,
                      graph::kInvalidVertex});
      plan.push_back({congest::ChurnKind::kNodeJoin, r + 3, e.u,
                      graph::kInvalidVertex});
    } else {
      plan.push_back({congest::ChurnKind::kEdgeDelete, r, e.u, e.v});
      plan.push_back({congest::ChurnKind::kEdgeInsert, r + 4, e.u, e.v});
    }
  }
  // Sorted by round so list order == fire order: host-side replays
  // (expander::apply_churn_to_graph walks the list in order) see exactly
  // the interleaving the simulator applies.
  std::stable_sort(plan.begin(), plan.end(),
                   [](const congest::ChurnEvent& a,
                      const congest::ChurnEvent& b) { return a.round < b.round; });
  return plan;
}

// --- Spec -------------------------------------------------------------------

void SweepSpec::validate() const {
  const auto require = [](bool ok, const char* what) {
    if (!ok) throw std::invalid_argument(std::string("sweep spec: ") + what);
  };
  require(!families.empty(), "'families' must not be empty");
  require(!sizes.empty(), "'sizes' must not be empty");
  require(!topo_seeds.empty(), "'topo_seeds' must not be empty");
  require(!run_seeds.empty(), "'run_seeds' must not be empty");
  require(!algorithms.empty(), "'algorithms' must not be empty");
  require(!threads.empty(), "'threads' must not be empty");
  require(!fault_permille.empty(), "'fault_permille' must not be empty");
  require(!churn_permille.empty(), "'churn_permille' must not be empty");
  for (const std::string& f : families) {
    if (!known_family(f)) {
      throw std::invalid_argument("sweep spec: unknown family '" + f + "'");
    }
  }
  for (const std::string& a : algorithms) {
    if (!known_algorithm(a)) {
      throw std::invalid_argument("sweep spec: unknown algorithm '" + a + "'");
    }
  }
  for (const int n : sizes) {
    require(n >= 2 && n <= 5'000'000, "'sizes' entries must be in [2, 5e6]");
  }
  for (const int t : threads) {
    require(t >= 0 && t <= 256, "'threads' entries must be in [0, 256]");
  }
  for (const int f : fault_permille) {
    require(f >= 0 && f <= 400, "'fault_permille' entries must be in [0, 400]");
  }
  for (const int c : churn_permille) {
    require(c >= 0 && c <= 400, "'churn_permille' entries must be in [0, 400]");
  }
  require(pingpong_rounds >= 1, "'pingpong_rounds' must be >= 1");
  require(bandwidth_tokens >= 1, "'bandwidth_tokens' must be >= 1");
  require(sparse_serial_threshold >= 0,
          "'sparse_serial_threshold' must be >= 0");
  require(max_rounds >= 1, "'max_rounds' must be >= 1");
  require(num_cells() <= kMaxCells, "grid exceeds 10^7 cells");
}

std::int64_t SweepSpec::num_cells() const {
  std::int64_t cells = 1;
  for (const std::size_t axis :
       {families.size(), sizes.size(), topo_seeds.size(), algorithms.size(),
        threads.size(), fault_permille.size(), churn_permille.size(),
        run_seeds.size()}) {
    cells *= static_cast<std::int64_t>(axis);
    if (cells > kMaxCells) return kMaxCells + 1;  // saturate, no overflow
  }
  return cells;
}

SweepSpec parse_sweep_spec(std::string_view json) {
  const jsonmin::Value doc = jsonmin::parse(json);
  if (!doc.is_object()) {
    throw std::invalid_argument("sweep spec: top level must be an object");
  }
  SweepSpec spec;
  for (const auto& [key, value] : doc.members) {
    if (key == "families") {
      spec.families = json_string_list(value, key);
    } else if (key == "sizes") {
      spec.sizes = json_int_list(value, key);
    } else if (key == "topo_seeds") {
      spec.topo_seeds = json_u64_list(value, key);
    } else if (key == "run_seeds") {
      spec.run_seeds = json_u64_list(value, key);
    } else if (key == "algorithms") {
      spec.algorithms = json_string_list(value, key);
    } else if (key == "threads") {
      spec.threads = json_int_list(value, key);
    } else if (key == "fault_permille") {
      spec.fault_permille = json_int_list(value, key);
    } else if (key == "churn_permille") {
      spec.churn_permille = json_int_list(value, key);
    } else if (key == "pingpong_rounds") {
      spec.pingpong_rounds = static_cast<int>(json_int(value, key));
    } else if (key == "bandwidth_tokens") {
      spec.bandwidth_tokens = static_cast<int>(json_int(value, key));
    } else if (key == "sparse_serial_threshold") {
      spec.sparse_serial_threshold = static_cast<int>(json_int(value, key));
    } else if (key == "max_rounds") {
      spec.max_rounds = json_int(value, key);
    } else {
      throw std::invalid_argument("sweep spec: unknown key '" + key + "'");
    }
  }
  spec.validate();
  return spec;
}

namespace {

// Expansion into a caller-owned buffer: clear() + push_back keeps the
// buffer's capacity, and every SweepCell string is a family/algorithm name
// short enough for SSO — so re-expanding an already-seen grid allocates
// nothing (the engine's warm-path contract).
void expand_sweep_into(const SweepSpec& spec, std::vector<SweepCell>& cells) {
  cells.clear();
  cells.reserve(static_cast<std::size_t>(spec.num_cells()));
  std::int64_t index = 0;
  for (const std::string& family : spec.families) {
    for (const int n : spec.sizes) {
      for (const std::uint64_t topo_seed : spec.topo_seeds) {
        for (const std::string& algorithm : spec.algorithms) {
          for (const int threads : spec.threads) {
            for (const int fault : spec.fault_permille) {
              for (const int churn : spec.churn_permille) {
                for (const std::uint64_t run_seed : spec.run_seeds) {
                  SweepCell c;
                  c.index = index++;
                  c.family = family;
                  c.n = n;
                  c.topo_seed = topo_seed;
                  c.run_seed = run_seed;
                  c.algorithm = algorithm;
                  c.threads = threads;
                  c.fault_permille = fault;
                  c.churn_permille = churn;
                  cells.push_back(std::move(c));
                }
              }
            }
          }
        }
      }
    }
  }
}

}  // namespace

std::vector<SweepCell> expand_sweep(const SweepSpec& spec) {
  spec.validate();
  std::vector<SweepCell> cells;
  expand_sweep_into(spec, cells);
  return cells;
}

// --- Results ----------------------------------------------------------------

double SweepResult::runs_per_sec() const {
  if (wall_ns <= 0 || records.empty()) return 0.0;
  return static_cast<double>(records.size()) /
         (static_cast<double>(wall_ns) * 1e-9);
}

std::string SweepResult::aggregate_json() const {
  std::ostringstream os;
  os << "{\"schema\":\"ecd-sweep-aggregate-v1\",\"runs\":" << records.size();
  RunStats totals;
  std::uint64_t checksum = 0x9E3779B97F4A7C15ULL;
  std::vector<std::int64_t> rounds, messages, congestion, dropped;
  rounds.reserve(records.size());
  messages.reserve(records.size());
  congestion.reserve(records.size());
  dropped.reserve(records.size());
  // Fixed reduction order — cell index — regardless of which worker
  // finished which run when: the aggregate is the determinism witness CI
  // hashes across worker counts.
  for (const SweepRunRecord& rec : records) {
    totals += rec.stats;
    rounds.push_back(rec.stats.rounds);
    messages.push_back(rec.stats.messages_sent);
    congestion.push_back(rec.stats.max_edge_load);
    dropped.push_back(rec.stats.messages_dropped);
    checksum = graph::splitmix64(
        checksum ^ static_cast<std::uint64_t>(rec.result_word));
    checksum =
        graph::splitmix64(checksum ^ static_cast<std::uint64_t>(rec.stats.rounds));
    checksum = graph::splitmix64(
        checksum ^ static_cast<std::uint64_t>(rec.stats.messages_sent));
  }
  os << ",\"totals\":{\"rounds\":" << totals.rounds
     << ",\"messages\":" << totals.messages_sent
     << ",\"words\":" << totals.words_sent
     << ",\"max_edge_load\":" << totals.max_edge_load
     << ",\"dropped\":" << totals.messages_dropped
     << ",\"duplicated\":" << totals.messages_duplicated
     << ",\"delayed\":" << totals.messages_delayed
     << ",\"crashed\":" << totals.vertices_crashed
     << ",\"churn_events\":" << totals.churn_events
     << ",\"purged\":" << totals.messages_purged << "},\"quantiles\":{";
  if (!records.empty()) {
    write_quantiles(os, "rounds", rounds);
    os << ',';
    write_quantiles(os, "messages", messages);
    os << ',';
    write_quantiles(os, "congestion", congestion);
    os << ',';
    write_quantiles(os, "dropped", dropped);
  }
  os << "},\"checksum\":"
     << static_cast<std::int64_t>(checksum & 0x7FFFFFFFFFFFFFFFULL) << '}';
  return os.str();
}

std::string SweepResult::wall_json() const {
  std::ostringstream os;
  char rps[32];
  std::snprintf(rps, sizeof rps, "%.3f", runs_per_sec());
  os << "{\"schema\":\"ecd-sweep-wall-v1\",\"duration_ns\":" << wall_ns
     << ",\"runs_per_sec\":" << rps << ",\"graphs_built\":" << graphs_built
     << ",\"networks_built\":" << networks_built
     << ",\"cache_hits\":" << cache_hits << ",\"run_duration_ns\":{";
  if (!records.empty()) {
    std::vector<std::int64_t> durations;
    durations.reserve(records.size());
    for (const SweepRunRecord& rec : records) {
      durations.push_back(rec.stats.duration_ns);
    }
    std::sort(durations.begin(), durations.end());
    os << "\"min\":" << durations.front()
       << ",\"p50\":" << quantile_sorted(durations, 50)
       << ",\"p90\":" << quantile_sorted(durations, 90)
       << ",\"max\":" << durations.back();
  }
  os << "}}";
  return os.str();
}

// --- Engine -----------------------------------------------------------------

struct SweepEngine::Impl {
  using TopoKey = std::tuple<std::string, int, std::uint64_t>;
  // Everything that shapes a Network or its algorithm vector. Two runs with
  // the same key are interchangeable up to (run_seed-driven) algorithm and
  // fault state, which run_prepared resets per run.
  using NetKey = std::tuple<std::string, int, std::uint64_t,  // topology
                            std::string, int, int, int,  // algo/threads/fault/churn
                            int, int, int, std::int64_t,  // spec constants
                            bool>;                          // reporting

  struct Entry {
    const Graph* graph = nullptr;
    std::unique_ptr<MetricsRegistry> metrics;  // only when reporting
    std::unique_ptr<Network> net;
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    std::vector<SweepAlgo*> typed;
  };

  struct Group {
    Entry* entry = nullptr;  // null in cold mode
    std::int64_t begin = 0;  // cell index range [begin, end)
    std::int64_t end = 0;
  };

  // Declaration order is destruction-order-critical: Networks reference
  // Graphs (topo_cache) and may dispatch on pools, so net_cache (declared
  // last) must die first; members destruct in reverse declaration order.
  std::map<int, std::unique_ptr<ThreadPool>> pools;
  std::map<TopoKey, std::unique_ptr<Graph>> topo_cache;
  std::map<NetKey, std::unique_ptr<Entry>> net_cache;

  // Reused across executions so a warm run() allocates nothing: cells and
  // groups keep their capacity, records are overwritten in place.
  std::vector<SweepCell> cells;
  std::vector<Group> groups;
  std::vector<std::size_t> serial_groups;    // indices into groups
  std::vector<std::size_t> parallel_groups;  // threads != 1, run on caller
  SweepResult result;
  std::mutex jsonl_mu;

  // --- Progress telemetry (ecd-sweep-progress-v1) -------------------------
  // One cache-line-aligned heartbeat slot per worker, written only by that
  // worker (the metrics-accumulator pattern); the monitor thread reads them
  // relaxed — heartbeats are measurements, not synchronization.
  struct alignas(64) WorkerBeat {
    std::atomic<std::int64_t> runs{0};
    std::atomic<std::int64_t> last_ns{0};  // 0 = no run finished yet
  };
  std::unique_ptr<WorkerBeat[]> beats;
  int num_beats = 0;
  std::atomic<std::int64_t> cells_done{0};
  bool progress_active = false;
  std::mutex progress_mu;
  std::condition_variable progress_cv;
  bool progress_stop = false;

  void progress_run_done(int worker) {
    if (!progress_active) return;
    cells_done.fetch_add(1, std::memory_order_relaxed);
    WorkerBeat& b = beats[worker >= 0 && worker < num_beats ? worker : 0];
    b.runs.fetch_add(1, std::memory_order_relaxed);
    b.last_ns.store(congest::ExecutionProfiler::now_ns(),
                    std::memory_order_relaxed);
  }

  void emit_progress(std::ostream& os, std::int64_t total, std::int64_t t0,
                     int stall_seconds, bool done) {
    const std::int64_t now = congest::ExecutionProfiler::now_ns();
    const std::int64_t elapsed_ms = (now - t0) / 1'000'000;
    const std::int64_t finished = cells_done.load(std::memory_order_relaxed);
    char rps[32];
    std::snprintf(rps, sizeof(rps), "%.1f",
                  elapsed_ms > 0 ? static_cast<double>(finished) * 1000.0 /
                                       static_cast<double>(elapsed_ms)
                                 : 0.0);
    std::ostringstream line;
    line << "{\"schema\":\"ecd-sweep-progress-v1\",\"cells_done\":" << finished
         << ",\"cells_total\":" << total << ",\"elapsed_ms\":" << elapsed_ms
         << ",\"runs_per_sec\":" << rps << ",\"workers\":[";
    for (int i = 0; i < num_beats; ++i) {
      const std::int64_t last = beats[i].last_ns.load(std::memory_order_relaxed);
      const std::int64_t idle_ms = (now - (last > 0 ? last : t0)) / 1'000'000;
      const bool stalled =
          !done && finished < total &&
          idle_ms > static_cast<std::int64_t>(stall_seconds) * 1000;
      line << (i > 0 ? "," : "") << "{\"id\":" << i << ",\"runs\":"
           << beats[i].runs.load(std::memory_order_relaxed)
           << ",\"idle_ms\":" << idle_ms
           << ",\"stalled\":" << (stalled ? "true" : "false") << "}";
    }
    line << "],\"done\":" << (done ? "true" : "false") << "}\n";
    os << line.str() << std::flush;
  }

  ThreadPool& pool_for(int num_threads) {
    std::unique_ptr<ThreadPool>& slot = pools[num_threads];
    if (!slot) slot = std::make_unique<ThreadPool>(num_threads);
    return *slot;
  }

  // Cache resolution runs on the caller thread only (before any dispatch),
  // so the maps need no locking; workers touch disjoint cached entries.
  Entry& entry_for(const SweepSpec& spec, const SweepCell& cell,
                   bool reporting) {
    TopoKey tk{cell.family, cell.n, cell.topo_seed};
    std::unique_ptr<Graph>& gslot = topo_cache[tk];
    if (!gslot) {
      gslot = std::make_unique<Graph>(
          make_family_graph(cell.family, cell.n, cell.topo_seed));
      ++result.graphs_built;
    }
    NetKey nk{cell.family,          cell.n,
              cell.topo_seed,       cell.algorithm,
              cell.threads,         cell.fault_permille,
              cell.churn_permille,  spec.pingpong_rounds,
              spec.bandwidth_tokens, spec.sparse_serial_threshold,
              spec.max_rounds,      reporting};
    std::unique_ptr<Entry>& eslot = net_cache[nk];
    if (!eslot) {
      eslot = std::make_unique<Entry>();
      eslot->graph = gslot.get();
      if (reporting) eslot->metrics = std::make_unique<MetricsRegistry>();
      ThreadPool* shared =
          cell.threads > 1 ? &pool_for(cell.threads) : nullptr;
      eslot->net = std::make_unique<Network>(
          *gslot,
          make_net_options(spec, cell, *gslot, eslot->metrics.get(), shared));
      make_algos(spec, cell, *gslot, eslot->algos, eslot->typed);
      ++result.networks_built;
    }
    return *eslot;
  }

  void emit_report(const SweepOptions& options, const SweepCell& cell, int n,
                   int m, const MetricsRegistry& metrics,
                   std::int64_t result_word) {
    std::ostringstream line;
    append_report_line(line, cell, n, m, metrics, result_word,
                       options.report_top_edges);
    const std::string text = line.str();
    std::lock_guard<std::mutex> lock(jsonl_mu);
    *options.jsonl << text;
  }

  // Warm group: every run reuses the entry's Network and algorithm vector
  // through reset_for_run()/reset(run_seed). Exactly one worker executes a
  // group, so each cached Network has a single writer.
  void run_group_warm(const Group& g, const SweepOptions& options,
                      int worker) {
    for (std::int64_t i = g.begin; i < g.end; ++i) {
      const SweepCell& cell = cells[static_cast<std::size_t>(i)];
      result.records[static_cast<std::size_t>(i)] = run_prepared(
          *g.entry->net, cell, g.entry->algos, g.entry->typed,
          g.entry->metrics.get());
      if (options.jsonl) {
        emit_report(options, cell, g.entry->graph->num_vertices(),
                    g.entry->graph->num_edges(), *g.entry->metrics,
                    result.records[static_cast<std::size_t>(i)].result_word);
      }
      progress_run_done(worker);
    }
  }

  // Cold group: fresh Graph + Network + algorithms per run — the
  // construction cost the caches exist to remove.
  void run_group_cold(const SweepSpec& spec, const Group& g,
                      const SweepOptions& options, int worker) {
    for (std::int64_t i = g.begin; i < g.end; ++i) {
      const SweepCell& cell = cells[static_cast<std::size_t>(i)];
      MetricsRegistry metrics;
      const Graph graph =
          make_family_graph(cell.family, cell.n, cell.topo_seed);
      result.records[static_cast<std::size_t>(i)] = run_fresh_on(
          graph, spec, cell, options.jsonl ? &metrics : nullptr);
      // graphs_built/networks_built are accounted on the caller thread
      // (trivially num_cells in cold mode) — workers must not touch them.
      if (options.jsonl) {
        emit_report(options, cell, graph.num_vertices(), graph.num_edges(),
                    metrics,
                    result.records[static_cast<std::size_t>(i)].result_word);
      }
      progress_run_done(worker);
    }
  }
};

SweepEngine::SweepEngine() : impl_(std::make_unique<Impl>()) {}
SweepEngine::~SweepEngine() = default;

void SweepEngine::clear_cache() {
  impl_->net_cache.clear();
  impl_->topo_cache.clear();
  impl_->pools.clear();
}

const SweepResult& SweepEngine::run(const SweepSpec& spec,
                                    const SweepOptions& options) {
  spec.validate();
  Impl& im = *impl_;
  const std::int64_t t0 = congest::ExecutionProfiler::now_ns();

  // Expansion (fixed order, run_seed fastest) directly yields the groups:
  // cells sharing a cached Network are contiguous runs of |run_seeds|.
  expand_sweep_into(spec, im.cells);
  const std::size_t num_cells = im.cells.size();
  im.result.records.clear();
  im.result.records.resize(num_cells);
  im.result.graphs_built = 0;
  im.result.networks_built = 0;
  im.result.cache_hits = 0;
  im.result.wall_ns = 0;

  const std::size_t group_size = spec.run_seeds.size();
  im.groups.clear();
  im.serial_groups.clear();
  im.parallel_groups.clear();
  for (std::size_t begin = 0; begin < num_cells; begin += group_size) {
    const SweepCell& head = im.cells[begin];
    Impl::Group g;
    g.begin = static_cast<std::int64_t>(begin);
    g.end = static_cast<std::int64_t>(begin + group_size);
    if (options.reuse) {
      g.entry = &im.entry_for(spec, head, options.jsonl != nullptr);
    }
    // Two-level scheduling: serial cells are multiplexed whole-run-per-
    // worker; cells with intra-run sharding (threads != 1, including the
    // auto value 0) keep the caller and parallelize inside the run.
    (head.threads == 1 ? im.serial_groups : im.parallel_groups)
        .push_back(im.groups.size());
    im.groups.push_back(g);
  }

  const int workers = ThreadPool::resolve(options.workers);

  // Progress monitor: heartbeat slots are reset per execution, then a
  // detached-from-the-work thread samples them every interval until the
  // grid drains. The guard joins the monitor even if a run throws (so the
  // std::thread never destructs joinable); the final "done":true line only
  // goes out on the normal path, after every group has finished.
  im.progress_active = options.progress != nullptr;
  struct MonitorGuard {
    Impl* im = nullptr;
    std::thread t;
    void stop() {
      if (!t.joinable()) return;
      {
        std::lock_guard<std::mutex> lock(im->progress_mu);
        im->progress_stop = true;
      }
      im->progress_cv.notify_all();
      t.join();
    }
    ~MonitorGuard() { stop(); }
  } monitor;
  if (im.progress_active) {
    const int nb = std::max(1, workers);
    if (nb != im.num_beats) {
      im.beats = std::make_unique<Impl::WorkerBeat[]>(
          static_cast<std::size_t>(nb));
      im.num_beats = nb;
    }
    for (int i = 0; i < im.num_beats; ++i) {
      im.beats[i].runs.store(0, std::memory_order_relaxed);
      im.beats[i].last_ns.store(0, std::memory_order_relaxed);
    }
    im.cells_done.store(0, std::memory_order_relaxed);
    im.progress_stop = false;
    monitor.im = &im;
    const std::int64_t total = static_cast<std::int64_t>(num_cells);
    monitor.t = std::thread([&im, &options, total, t0] {
      const auto interval = std::chrono::milliseconds(
          std::max(1, options.progress_interval_ms));
      std::unique_lock<std::mutex> lock(im.progress_mu);
      while (!im.progress_cv.wait_for(lock, interval,
                                      [&im] { return im.progress_stop; })) {
        im.emit_progress(*options.progress, total, t0, options.stall_seconds,
                         false);
      }
    });
  }

  const auto run_group = [&](const Impl::Group& g, int worker) {
    if (options.reuse) {
      im.run_group_warm(g, options, worker);
    } else {
      im.run_group_cold(spec, g, options, worker);
    }
  };
  if (workers > 1 && im.serial_groups.size() > 1) {
    // Run-level parallelism: workers pop whole groups off a shared cursor.
    // Group granularity keeps one writer per cached Network and lets a
    // group's runs stay warm in the worker's cache.
    std::atomic<std::size_t> next{0};
    im.pool_for(workers).run([&](int w) {
      for (;;) {
        const std::size_t j = next.fetch_add(1, std::memory_order_relaxed);
        if (j >= im.serial_groups.size()) return;
        run_group(im.groups[im.serial_groups[j]], w);
      }
    });
  } else {
    for (const std::size_t j : im.serial_groups) run_group(im.groups[j], 0);
  }
  // Parallel cells run one at a time on the caller: their parallelism is
  // the existing intra-run sharded loop, dispatched on the engine's pool
  // for that thread count (NetworkOptions::shared_pool). Heartbeats land
  // on worker 0 (the caller's slot).
  for (const std::size_t j : im.parallel_groups) run_group(im.groups[j], 0);

  if (im.progress_active) {
    monitor.stop();
    im.emit_progress(*options.progress, static_cast<std::int64_t>(num_cells),
                     t0, options.stall_seconds, true);
    im.progress_active = false;
  }

  if (!options.reuse) {
    im.result.graphs_built = static_cast<std::int64_t>(num_cells);
    im.result.networks_built = static_cast<std::int64_t>(num_cells);
  }
  im.result.cache_hits =
      static_cast<std::int64_t>(num_cells) - im.result.networks_built;
  im.result.wall_ns = congest::ExecutionProfiler::now_ns() - t0;
  return im.result;
}

SweepRunRecord SweepEngine::run_cell_fresh(const SweepSpec& spec,
                                           const SweepCell& cell,
                                           MetricsRegistry* metrics) {
  const Graph g = make_family_graph(cell.family, cell.n, cell.topo_seed);
  return run_fresh_on(g, spec, cell, metrics);
}

std::string SweepEngine::reference_report_line(const SweepSpec& spec,
                                               const SweepCell& cell,
                                               int top_edges) {
  const Graph g = make_family_graph(cell.family, cell.n, cell.topo_seed);
  MetricsRegistry metrics;
  const SweepRunRecord rec = run_fresh_on(g, spec, cell, &metrics);
  std::ostringstream os;
  append_report_line(os, cell, g.num_vertices(), g.num_edges(), metrics,
                     rec.result_word, top_edges);
  return os.str();
}

}  // namespace ecd::core
