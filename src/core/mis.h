// (1-ε)-approximate maximum independent set (Theorem 1.2, §3.1).
#pragma once

#include <cstdint>
#include <vector>

#include "src/core/framework.h"
#include "src/graph/graph.h"

namespace ecd::core {

struct MisApproxOptions {
  FrameworkOptions framework;
  // Budget for each cluster's exact branch-and-bound solve; clusters whose
  // search exceeds it fall back to greedy + local search (reported).
  std::int64_t exact_node_budget = 4'000'000;
};

struct MisApproxResult {
  std::vector<graph::VertexId> independent_set;
  // True iff every cluster was solved exactly (then the (1-ε) bound of
  // §3.1 is unconditional).
  bool all_clusters_exact = false;
  int clusters_exact = 0;
  int num_clusters = 0;
  int conflicts_removed = 0;  // |Z| in the §3.1 analysis
  congest::RoundLedger ledger;
};

// §3.1: partition with ε' = ε/(2d+1), d the class edge-density bound; each
// leader solves its cluster; one endpoint of every conflicting inter-cluster
// edge is dropped.
MisApproxResult mis_approx(const graph::Graph& g, double eps,
                           const MisApproxOptions& options = {});

}  // namespace ecd::core
