// Low-diameter decomposition with the optimal D = O(1/ε) (Theorem 1.5,
// §3.5): the expander-decomposition clusters are refined by each leader
// running a sequential minor-free LDD on its gathered topology.
#pragma once

#include "src/core/framework.h"
#include "src/graph/graph.h"
#include "src/seq/ldd.h"

namespace ecd::core {

struct LddApproxOptions {
  FrameworkOptions framework;
  seq::LddOptions sequential;
};

struct LddApproxResult {
  std::vector<int> cluster_of;  // final decomposition labels
  int num_clusters = 0;
  int cut_edges = 0;
  int max_diameter = 0;  // exact strong diameter over clusters
  congest::RoundLedger ledger;
};

LddApproxResult ldd_approx(const graph::Graph& g, double eps,
                           const LddApproxOptions& options = {});

}  // namespace ecd::core
