#include "src/core/correlation.h"

namespace ecd::core {

using graph::Graph;
using graph::VertexId;

CorrelationApproxResult correlation_approx(
    const Graph& g, double eps, const CorrelationApproxOptions& options) {
  const double eps_prime = eps / 2.0;  // γ(G) >= |E|/2
  FrameworkOptions fopt = options.framework;
  fopt.density_bound = 1;  // the ε/2 analysis is stated against |E| directly
  Partition partition = partition_and_gather(g, eps_prime, fopt);

  CorrelationApproxResult result;
  result.num_clusters = static_cast<int>(partition.clusters.size());
  result.clustering.assign(g.num_vertices(), -1);
  int label_base = 0;
  for (const Cluster& cluster : partition.clusters) {
    const auto local = seq::best_effort_correlation(cluster.subgraph.graph,
                                                    options.exact_threshold);
    result.clusters_exact += local.exact;
    int max_label = 0;
    for (int i = 0; i < static_cast<int>(local.clustering.size()); ++i) {
      result.clustering[cluster.subgraph.to_parent[i]] =
          label_base + local.clustering[i];
      max_label = std::max(max_label, local.clustering[i]);
    }
    label_base += max_label + 1;
  }
  {
    std::vector<std::int64_t> words(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      words[v] = result.clustering[v];
    }
    return_results(partition, words, "result return (reversed walks)");
  }
  result.score = seq::agreement_score(g, result.clustering);
  result.ledger = std::move(partition.ledger);
  return result;
}

}  // namespace ecd::core
