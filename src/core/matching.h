// (1-ε)-approximate maximum cardinality matching on planar networks
// (Theorem 3.2, §3.2), including the 2-star / 3-double-star elimination
// preprocessing of Czygrinow–Hańćkowiak–Szymańska [27].
#pragma once

#include <vector>

#include "src/core/framework.h"
#include "src/graph/graph.h"
#include "src/seq/matching.h"

namespace ecd::core {

// One pass of the token-based elimination protocol (§3.2); returns the set
// of removed vertices. Removal never changes the maximum matching size.
// `rounds_used` reports the O(1) CONGEST rounds the protocol takes.
struct StarEliminationResult {
  std::vector<bool> removed;
  int removed_count = 0;
  int passes = 0;
  int rounds_used = 0;
};
StarEliminationResult eliminate_stars(const graph::Graph& g);

struct McmApproxOptions {
  FrameworkOptions framework;
  // Lemma 3.1 guarantees |M*| >= c·|V̄| for a constant c > 0 depending only
  // on planarity; the partition runs with ε' = c·ε.
  double matching_linearity_constant = 0.125;
};

struct McmApproxResult {
  seq::Mates mates;
  int matching_size = 0;
  int removed_vertices = 0;
  int num_clusters = 0;
  congest::RoundLedger ledger;
};

McmApproxResult mcm_planar_approx(const graph::Graph& g, double eps,
                                  const McmApproxOptions& options = {});

}  // namespace ecd::core
