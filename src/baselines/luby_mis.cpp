#include "src/baselines/luby_mis.h"

#include <memory>
#include <random>
#include <utility>

namespace ecd::baselines {

using congest::Context;
using congest::Message;
using graph::Graph;
using graph::VertexId;

namespace {

// Two rounds per phase. Even round: active vertices draw and exchange random
// priorities. Odd round: a vertex that is the strict (priority, id) minimum
// of its still-active neighborhood joins the MIS and announces membership;
// the announcement (-1 tag) retires its neighbors at the start of the next
// even round.
class LubyAlgo final : public congest::VertexAlgorithm {
 public:
  LubyAlgo(std::uint64_t seed, int prelude_rounds)
      : rng_(seed), prelude_(prelude_rounds) {}

  enum class State { kActive, kInMis, kRetired };

  void round(Context& ctx) override {
    if (done_) return;
    if (ctx.round() < prelude_) return;  // composed behind an earlier phase
    // Phase parity is internal state, not ctx.round() % 2: composed behind
    // a prelude (first invocation at an odd global round), global parity is
    // out of phase with the protocol's and every vertex would judge the
    // priority exchange in the wrong half-phase.
    const int step = step_++;
    if (step % 2 == 0) {
      // Retirement announcements from the previous odd round arrive now.
      for (int p = 0; p < ctx.num_ports(); ++p) {
        for (const Message& m : ctx.inbox(p)) {
          if (m.words[0] == -1) {
            state_ = State::kRetired;
            done_ = true;
            return;
          }
        }
      }
      ++phases_;
      priority_ = static_cast<std::int64_t>(rng_() >> 1);
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{priority_, ctx.id()}});
      }
      return;
    }
    bool wins = true;
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) {
        if (m.words[0] == -1) continue;  // stale announcement
        if (std::pair(m.words[0], m.words[1]) <
            std::pair(priority_, static_cast<std::int64_t>(ctx.id()))) {
          wins = false;
        }
      }
    }
    if (wins) {
      state_ = State::kInMis;
      done_ = true;
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{-1, ctx.id()}});
      }
    }
  }

  bool finished() const override { return done_; }
  State state() const { return state_; }
  int phases() const { return phases_; }

 private:
  std::mt19937_64 rng_;
  State state_ = State::kActive;
  std::int64_t priority_ = 0;
  bool done_ = false;
  int phases_ = 0;
  int prelude_ = 0;
  int step_ = 0;  // executed protocol steps; parity = protocol half-phase
};

}  // namespace

LubyResult luby_mis(const Graph& g, std::uint64_t seed,
                    const congest::NetworkOptions& net, int prelude_rounds) {
  std::vector<std::unique_ptr<congest::VertexAlgorithm>> algos;
  std::vector<LubyAlgo*> typed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = std::make_unique<LubyAlgo>(
        seed ^ (0xD1B54A32D192ED03ULL * (v + 2)), prelude_rounds);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  congest::Network network(g, net);
  LubyResult result;
  result.stats = network.run(algos);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (typed[v]->state() == LubyAlgo::State::kInMis) {
      result.independent_set.push_back(v);
    }
    result.phases = std::max(result.phases, typed[v]->phases());
  }
  return result;
}

}  // namespace ecd::baselines
