// LOCAL-model cluster gathering: the approach the paper's framework
// replaces. Every vertex floods its incident edge list with *unbounded*
// message sizes; after diameter-many rounds the leader knows the topology.
// Exhibits the LOCAL–CONGEST gap: few rounds, enormous messages — run it
// next to random_walk_gather and compare words_sent / max message size.
#pragma once

#include <cstdint>
#include <vector>

#include "src/congest/network.h"
#include "src/graph/graph.h"

namespace ecd::baselines {

struct LocalGatherResult {
  // Per cluster: edge count the leader learned (for verification).
  std::vector<std::int64_t> edges_learned;
  congest::RunStats stats;
  // Largest single message, in words — the LOCAL model's hidden cost.
  std::int64_t max_message_words = 0;
};

LocalGatherResult local_model_gather(const graph::Graph& g,
                                     const std::vector<int>& cluster_of,
                                     const std::vector<graph::VertexId>& leader_of);

}  // namespace ecd::baselines
