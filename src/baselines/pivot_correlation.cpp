#include "src/baselines/pivot_correlation.h"

#include <algorithm>
#include <numeric>

namespace ecd::baselines {

using graph::Graph;
using graph::VertexId;

seq::Clustering pivot_correlation(const Graph& g, std::mt19937_64& rng) {
  const int n = g.num_vertices();
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  seq::Clustering labels(n, -1);
  int next = 0;
  for (VertexId pivot : order) {
    if (labels[pivot] != -1) continue;
    const int label = next++;
    labels[pivot] = label;
    const auto nbrs = g.neighbors(pivot);
    const auto eids = g.incident_edges(pivot);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const bool positive =
          !g.is_signed() || g.sign(eids[i]) == graph::EdgeSign::kPositive;
      if (positive && labels[nbrs[i]] == -1) labels[nbrs[i]] = label;
    }
  }
  return labels;
}

}  // namespace ecd::baselines
