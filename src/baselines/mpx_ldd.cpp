#include "src/baselines/mpx_ldd.h"

#include <cmath>
#include <memory>
#include <queue>
#include <stdexcept>

#include "src/congest/network.h"

namespace ecd::baselines {

using graph::Graph;
using graph::VertexId;

MpxResult mpx_ldd(const Graph& g, double eps, std::mt19937_64& rng) {
  if (eps <= 0.0 || eps > 1.0) throw std::invalid_argument("eps out of (0,1]");
  const int n = g.num_vertices();
  const double beta = eps / 2.0;
  std::exponential_distribution<double> exp_dist(beta);

  // Fractional shifts make ties measure-zero; Dijkstra over shifted starts.
  std::vector<double> shift(n);
  for (auto& s : shift) s = exp_dist(rng);

  // dist'(v) = min_u (dist(u,v) - shift(u)): multi-source Dijkstra with
  // initial potential -shift(u).
  std::vector<double> key(n, 1e18);
  std::vector<int> owner(n, -1);
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  for (VertexId v = 0; v < n; ++v) {
    key[v] = -shift[v];
    owner[v] = v;
    pq.push({key[v], v});
  }
  while (!pq.empty()) {
    const auto [k, v] = pq.top();
    pq.pop();
    if (k > key[v]) continue;
    for (VertexId u : g.neighbors(v)) {
      if (key[v] + 1.0 < key[u]) {
        key[u] = key[v] + 1.0;
        owner[u] = owner[v];
        pq.push({key[u], u});
      }
    }
  }

  MpxResult result;
  result.cluster_of.assign(n, -1);
  std::vector<int> remap(n, -1);
  for (VertexId v = 0; v < n; ++v) {
    int& slot = remap[owner[v]];
    if (slot == -1) slot = result.num_clusters++;
    result.cluster_of[v] = slot;
  }
  for (const graph::Edge& e : g.edges()) {
    if (result.cluster_of[e.u] != result.cluster_of[e.v]) ++result.cut_edges;
  }
  return result;
}

namespace {

// One vertex of the distributed MPX: sleeps until its wake round, then
// claims itself (owner = own id) unless a neighbor's claim arrived first;
// forwards the adopted claim once. Ties (same arrival round) break toward
// the larger shift, then the smaller id — the same rule on both sides of
// every edge, so the clustering is well defined.
class MpxAlgo final : public congest::VertexAlgorithm {
 public:
  MpxAlgo(std::int64_t wake_round, std::int64_t shift)
      : wake_round_(wake_round), shift_(shift) {}

  void round(congest::Context& ctx) override {
    started_ = true;
    sent_ = false;
    if (owner_ == -1) {
      // Claims carry (owner id, owner shift); first arrival wins.
      std::int64_t best_owner = -1, best_shift = -1;
      for (int p = 0; p < ctx.num_ports(); ++p) {
        for (const congest::Message& m : ctx.inbox(p)) {
          const std::int64_t owner = m.words[0], os = m.words[1];
          if (best_owner == -1 || os > best_shift ||
              (os == best_shift && owner < best_owner)) {
            best_owner = owner;
            best_shift = os;
          }
        }
      }
      if (best_owner != -1) {
        owner_ = best_owner;
        owner_shift_ = best_shift;
      } else if (ctx.round() >= wake_round_) {
        owner_ = ctx.id();
        owner_shift_ = shift_;
      }
      if (owner_ != -1) {
        sent_ = true;
        for (int p = 0; p < ctx.num_ports(); ++p) {
          ctx.send(p, {{owner_, owner_shift_}});
        }
      }
    }
  }

  bool finished() const override { return started_ && owner_ != -1 && !sent_; }
  std::int64_t owner() const { return owner_; }

 private:
  std::int64_t wake_round_;
  std::int64_t shift_;
  std::int64_t owner_ = -1;
  std::int64_t owner_shift_ = -1;
  bool started_ = false;
  bool sent_ = false;
};

}  // namespace

DistributedMpxResult mpx_ldd_distributed(const Graph& g, double eps,
                                         std::uint64_t seed) {
  if (eps <= 0.0 || eps > 1.0) throw std::invalid_argument("eps out of (0,1]");
  const int n = g.num_vertices();
  std::mt19937_64 rng(seed);
  std::geometric_distribution<int> geo(eps / 2.0);
  std::vector<std::int64_t> shift(n);
  std::int64_t max_shift = 0;
  for (auto& s : shift) {
    s = geo(rng);
    max_shift = std::max(max_shift, s);
  }
  std::vector<std::unique_ptr<congest::VertexAlgorithm>> algos;
  std::vector<MpxAlgo*> typed(n);
  for (VertexId v = 0; v < n; ++v) {
    auto a = std::make_unique<MpxAlgo>(max_shift - shift[v], shift[v]);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  congest::Network network(g);
  DistributedMpxResult result;
  result.rounds = network.run(algos).rounds;
  result.clustering.cluster_of.assign(n, -1);
  std::vector<int> remap(n, -1);
  for (VertexId v = 0; v < n; ++v) {
    const int owner = static_cast<int>(typed[v]->owner());
    int& slot = remap[owner];
    if (slot == -1) slot = result.clustering.num_clusters++;
    result.clustering.cluster_of[v] = slot;
  }
  for (const graph::Edge& e : g.edges()) {
    if (result.clustering.cluster_of[e.u] != result.clustering.cluster_of[e.v]) {
      ++result.clustering.cut_edges;
    }
  }
  return result;
}

}  // namespace ecd::baselines
