// Miller–Peng–Xu exponential-shift low-diameter decomposition: the generic
// baseline with D = O(log n / ε) — the paper's Theorem 1.5 improves this to
// D = O(1/ε) on minor-free networks.
#pragma once

#include <random>
#include <vector>

#include "src/graph/graph.h"

namespace ecd::baselines {

struct MpxResult {
  std::vector<int> cluster_of;
  int num_clusters = 0;
  int cut_edges = 0;
};

// beta = eps/2; each vertex draws delta_v ~ Exp(beta) and joins the center
// maximizing delta_u - dist(u, v). Cut probability per edge <= beta ... the
// classic analysis gives E[cut] <= eps|E| and radius O(log n / beta) w.h.p.
MpxResult mpx_ldd(const graph::Graph& g, double eps, std::mt19937_64& rng);

// The same construction executed as a CONGEST algorithm (discrete integer
// shifts): vertex v wakes at round max_shift - delta_v and floods its
// claim; claims propagate one hop per round carrying (owner id), so the
// whole decomposition takes max_shift + eccentricity rounds — the
// O(log n / eps) the paper's Theorem 1.5 improves on for minor-free inputs.
struct DistributedMpxResult {
  MpxResult clustering;
  std::int64_t rounds = 0;
};
DistributedMpxResult mpx_ldd_distributed(const graph::Graph& g, double eps,
                                         std::uint64_t seed);

}  // namespace ecd::baselines
