// Israeli–Itai-style randomized distributed maximal matching: the classical
// O(log n)-round CONGEST baseline, a 1/2-approximation to MCM (§1.1).
#pragma once

#include <cstdint>

#include "src/congest/network.h"
#include "src/graph/graph.h"
#include "src/seq/matching.h"

namespace ecd::baselines {

struct DistributedMatchingResult {
  seq::Mates mates;
  congest::RunStats stats;
  int phases = 0;
};

DistributedMatchingResult distributed_maximal_matching(
    const graph::Graph& g, std::uint64_t seed = 1,
    const congest::NetworkOptions& net = {});

}  // namespace ecd::baselines
