#include "src/baselines/maximal_matching.h"

#include <memory>
#include <random>

namespace ecd::baselines {

using congest::Context;
using congest::Message;
using graph::Graph;
using graph::kInvalidVertex;
using graph::VertexId;

namespace {

// Three rounds per phase:
//   0: every unmatched vertex flips proposer/acceptor; proposers send a
//      proposal to one uniformly random unmatched neighbor.
//   1: acceptors accept the smallest-id proposal received.
//   2: a proposer whose proposal was accepted is matched; both endpoints
//      tell all neighbors they are matched, so everyone prunes its list of
//      unmatched neighbors.
class MatchAlgo final : public congest::VertexAlgorithm {
 public:
  explicit MatchAlgo(std::uint64_t seed) : rng_(seed) {}

  void round(Context& ctx) override {
    const int step = static_cast<int>(ctx.round() % 3);
    if (step == 0) {
      if (unmatched_port_.empty() && ctx.round() == 0) {
        for (int p = 0; p < ctx.num_ports(); ++p) unmatched_port_.push_back(p);
      }
      // Prune neighbors that announced a match last phase.
      for (auto it = unmatched_port_.begin(); it != unmatched_port_.end();) {
        bool gone = false;
        for (const Message& m : ctx.inbox(*it)) {
          if (m.words[0] == kTagMatched) gone = true;
        }
        it = gone ? unmatched_port_.erase(it) : ++it;
      }
      if (mate_ != kInvalidVertex) {
        done_ = true;
        return;
      }
      if (unmatched_port_.empty()) {
        done_ = true;  // maximality: no unmatched neighbors remain
        return;
      }
      ++phases_;
      proposer_ = std::bernoulli_distribution(0.5)(rng_);
      proposal_port_ = -1;
      if (proposer_) {
        std::uniform_int_distribution<std::size_t> pick(
            0, unmatched_port_.size() - 1);
        proposal_port_ = unmatched_port_[pick(rng_)];
        ctx.send(proposal_port_, {{kTagPropose, ctx.id()}});
      }
      return;
    }
    if (step == 1) {
      if (done_ || proposer_) return;
      int best_port = -1;
      VertexId best_id = -1;
      for (int p : unmatched_port_) {
        for (const Message& m : ctx.inbox(p)) {
          if (m.words[0] != kTagPropose) continue;
          const VertexId who = static_cast<VertexId>(m.words[1]);
          if (best_port == -1 || who < best_id) {
            best_port = p;
            best_id = who;
          }
        }
      }
      if (best_port != -1) {
        mate_ = best_id;
        ctx.send(best_port, {{kTagAccept, ctx.id()}});
      }
      return;
    }
    // step == 2
    if (done_) return;
    if (proposer_ && proposal_port_ != -1) {
      for (const Message& m : ctx.inbox(proposal_port_)) {
        if (m.words[0] == kTagAccept) {
          mate_ = static_cast<VertexId>(m.words[1]);
        }
      }
    }
    if (mate_ != kInvalidVertex) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        ctx.send(p, {{kTagMatched, ctx.id()}});
      }
    }
  }

  bool finished() const override { return done_; }
  VertexId mate() const { return mate_; }
  int phases() const { return phases_; }

 private:
  static constexpr std::int64_t kTagPropose = 1;
  static constexpr std::int64_t kTagAccept = 2;
  static constexpr std::int64_t kTagMatched = 3;

  std::mt19937_64 rng_;
  std::vector<int> unmatched_port_;
  bool proposer_ = false;
  int proposal_port_ = -1;
  VertexId mate_ = kInvalidVertex;
  bool done_ = false;
  int phases_ = 0;
};

}  // namespace

DistributedMatchingResult distributed_maximal_matching(
    const Graph& g, std::uint64_t seed, const congest::NetworkOptions& net) {
  std::vector<std::unique_ptr<congest::VertexAlgorithm>> algos;
  std::vector<MatchAlgo*> typed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = std::make_unique<MatchAlgo>(seed ^ (0xA24BAED4963EE407ULL * (v + 3)));
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  congest::Network network(g, net);
  DistributedMatchingResult result;
  result.stats = network.run(algos);
  result.mates.assign(g.num_vertices(), kInvalidVertex);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    result.mates[v] = typed[v]->mate();
    result.phases = std::max(result.phases, typed[v]->phases());
  }
  return result;
}

}  // namespace ecd::baselines
