// Luby-style distributed maximal independent set — the classical CONGEST
// baseline the paper's §1.1 contrasts with: a maximal IS is only a
// (1/Δ)-approximation to MaxIS, but takes O(log n) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "src/congest/network.h"
#include "src/graph/graph.h"

namespace ecd::baselines {

struct LubyResult {
  std::vector<graph::VertexId> independent_set;
  congest::RunStats stats;
  int phases = 0;
};

// `prelude_rounds` models composition: every vertex idles that many rounds
// before its first protocol step, as when the MIS runs after another phase
// of a larger algorithm. The result must not depend on it — phase parity is
// the algorithm's own state, not the global round number's.
LubyResult luby_mis(const graph::Graph& g, std::uint64_t seed = 1,
                    const congest::NetworkOptions& net = {},
                    int prelude_rounds = 0);

}  // namespace ecd::baselines
