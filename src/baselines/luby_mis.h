// Luby-style distributed maximal independent set — the classical CONGEST
// baseline the paper's §1.1 contrasts with: a maximal IS is only a
// (1/Δ)-approximation to MaxIS, but takes O(log n) rounds.
#pragma once

#include <cstdint>
#include <vector>

#include "src/congest/network.h"
#include "src/graph/graph.h"

namespace ecd::baselines {

struct LubyResult {
  std::vector<graph::VertexId> independent_set;
  congest::RunStats stats;
  int phases = 0;
};

LubyResult luby_mis(const graph::Graph& g, std::uint64_t seed = 1,
                    const congest::NetworkOptions& net = {});

}  // namespace ecd::baselines
