// KwikCluster / Pivot correlation clustering (Ailon–Charikar–Newman): the
// classical randomized baseline. Its guarantee is a 3-approximation for
// disagreement *minimization*; for the paper's agreement-maximization
// objective it is only a heuristic — exactly the gap Theorem 1.3 closes.
#pragma once

#include <random>

#include "src/graph/graph.h"
#include "src/seq/correlation.h"

namespace ecd::baselines {

seq::Clustering pivot_correlation(const graph::Graph& g,
                                  std::mt19937_64& rng);

}  // namespace ecd::baselines
