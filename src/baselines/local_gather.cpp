#include "src/baselines/local_gather.h"

#include <algorithm>
#include <memory>
#include <set>

namespace ecd::baselines {

using congest::Context;
using congest::Message;
using graph::Graph;
using graph::VertexId;

namespace {

// Gossip flood: every round, forward all newly learned intra-cluster edges
// to all intra-cluster neighbors in one (unbounded) message.
class GossipAlgo final : public congest::VertexAlgorithm {
 public:
  GossipAlgo(const std::vector<int>* intra, std::int64_t* max_words)
      : intra_(intra), max_words_(max_words) {}

  void round(Context& ctx) override {
    started_ = true;
    std::vector<std::int64_t> fresh;
    if (ctx.round() == 0) {
      for (int p : *intra_) {
        const auto key = encode(ctx.id(), ctx.neighbor(p));
        if (known_.insert(key).second) fresh.push_back(key);
      }
    }
    for (int p : *intra_) {
      for (const Message& m : ctx.inbox(p)) {
        for (std::int64_t key : m.words) {
          if (known_.insert(key).second) fresh.push_back(key);
        }
      }
    }
    sent_ = !fresh.empty();
    if (sent_) {
      for (int p : *intra_) {
        Message m;
        m.words = fresh;
        *max_words_ = std::max(*max_words_,
                               static_cast<std::int64_t>(m.words.size()));
        ctx.send(p, std::move(m));
      }
    }
  }

  bool finished() const override { return started_ && !sent_; }
  std::int64_t edges_known() const {
    return static_cast<std::int64_t>(known_.size());
  }

 private:
  static std::int64_t encode(VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::int64_t>(a) << 32) | static_cast<std::uint32_t>(b);
  }

  const std::vector<int>* intra_;
  std::int64_t* max_words_;
  std::set<std::int64_t> known_;
  bool started_ = false;
  bool sent_ = false;
};

}  // namespace

LocalGatherResult local_model_gather(const Graph& g,
                                     const std::vector<int>& cluster_of,
                                     const std::vector<VertexId>& leader_of) {
  const int n = g.num_vertices();
  std::vector<std::vector<int>> intra(n);
  for (VertexId v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    for (int p = 0; p < static_cast<int>(nbrs.size()); ++p) {
      if (cluster_of[nbrs[p]] == cluster_of[v]) intra[v].push_back(p);
    }
  }
  LocalGatherResult result;
  std::vector<std::unique_ptr<congest::VertexAlgorithm>> algos;
  std::vector<GossipAlgo*> typed(n);
  for (VertexId v = 0; v < n; ++v) {
    auto a = std::make_unique<GossipAlgo>(&intra[v], &result.max_message_words);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  congest::NetworkOptions opt;
  opt.enforce_bandwidth = false;  // the LOCAL model
  congest::Network network(g, opt);
  result.stats = network.run(algos);
  int num_clusters = 0;
  for (int c : cluster_of) num_clusters = std::max(num_clusters, c + 1);
  result.edges_learned.assign(num_clusters, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (leader_of[v] == v) {
      result.edges_learned[cluster_of[v]] = typed[v]->edges_known();
    }
  }
  return result;
}

}  // namespace ecd::baselines
