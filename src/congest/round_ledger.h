// Two-tier round accounting (see DESIGN.md §4).
//
// Primitives that actually execute on the simulator record *measured*
// rounds. The expander-decomposition construction — substituted per
// DESIGN.md — records *modeled* rounds from the published complexity
// formulas (Theorems 2.1/2.2). Benches report both columns so the
// substitution is never silently mixed into measurements.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/congest/network.h"
#include "src/graph/graph.h"

namespace ecd::congest {

struct LedgerEntry {
  std::string label;
  bool measured = false;
  // Phase totals. Measured entries carry the full RunStats the phase
  // accrued on the simulator (accumulated with RunStats::operator+=);
  // modeled entries populate stats.rounds only.
  RunStats stats;
};

class RoundLedger {
 public:
  void add_measured(std::string label, std::int64_t rounds);
  // Records rounds plus the phase's message/word/edge-load totals.
  void add_measured(std::string label, const RunStats& stats);
  void add_modeled(std::string label, std::int64_t rounds);
  void merge(const RoundLedger& other);

  std::int64_t measured_total() const;
  std::int64_t modeled_total() const;
  std::int64_t total() const { return measured_total() + modeled_total(); }
  const std::vector<LedgerEntry>& entries() const { return entries_; }

  std::string to_string() const;

 private:
  std::vector<LedgerEntry> entries_;
};

// Modeled round formulas. The paper proves ε^{-O(1)} log^{O(1)} n
// (randomized, Thm 2.1) and ε^{-O(1)} 2^{O(sqrt(log n log log n))}
// (deterministic, Thm 2.2); the concrete exponents/constants below are
// illustrative instantiations used consistently across all benches.
std::int64_t modeled_decomposition_rounds(int n, double eps,
                                          bool deterministic);

}  // namespace ecd::congest
