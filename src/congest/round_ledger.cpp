#include "src/congest/round_ledger.h"

#include <cmath>
#include <sstream>

namespace ecd::congest {

void RoundLedger::add_measured(std::string label, std::int64_t rounds) {
  LedgerEntry e;
  e.label = std::move(label);
  e.measured = true;
  e.stats.rounds = rounds;
  entries_.push_back(std::move(e));
}

void RoundLedger::add_measured(std::string label, const RunStats& stats) {
  LedgerEntry e;
  e.label = std::move(label);
  e.measured = true;
  e.stats += stats;
  entries_.push_back(std::move(e));
}

void RoundLedger::add_modeled(std::string label, std::int64_t rounds) {
  LedgerEntry e;
  e.label = std::move(label);
  e.measured = false;
  e.stats.rounds = rounds;
  entries_.push_back(std::move(e));
}

void RoundLedger::merge(const RoundLedger& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

std::int64_t RoundLedger::measured_total() const {
  std::int64_t sum = 0;
  for (const auto& e : entries_) {
    if (e.measured) sum += e.stats.rounds;
  }
  return sum;
}

std::int64_t RoundLedger::modeled_total() const {
  std::int64_t sum = 0;
  for (const auto& e : entries_) {
    if (!e.measured) sum += e.stats.rounds;
  }
  return sum;
}

std::string RoundLedger::to_string() const {
  std::ostringstream os;
  for (const auto& e : entries_) {
    os << (e.measured ? "[measured] " : "[modeled]  ") << e.label << ": "
       << e.stats.rounds;
    if (e.stats.messages_sent > 0) {
      os << " (msgs=" << e.stats.messages_sent
         << " words=" << e.stats.words_sent
         << " max-edge-load=" << e.stats.max_edge_load << ")";
    }
    os << "\n";
  }
  os << "total measured=" << measured_total()
     << " modeled=" << modeled_total() << "\n";
  return os.str();
}

std::int64_t modeled_decomposition_rounds(int n, double eps,
                                          bool deterministic) {
  const double logn = std::log2(std::max(2, n));
  if (!deterministic) {
    // Thm 2.1 instantiation: O(eps^{-2} log^4 n).
    return static_cast<std::int64_t>(std::ceil(logn * logn * logn * logn /
                                               (eps * eps)));
  }
  // Thm 2.2 instantiation: O(eps^{-2} 2^{2 sqrt(log n log log n)}).
  const double exponent = 2.0 * std::sqrt(logn * std::log2(std::max(2.0, logn)));
  return static_cast<std::int64_t>(
      std::ceil(std::pow(2.0, exponent) / (eps * eps)));
}

}  // namespace ecd::congest
