#include "src/congest/profiler.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ecd::congest {

namespace {

// Fixed-precision doubles keep the report structure diff-friendly; values
// are wall-clock measurements, so only the *keys* are stable.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", v);
  return buf;
}

std::string fmt_ms(std::int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

void escape(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// Chrome's trace viewer wants microseconds; keep nanosecond resolution.
std::string us(std::int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

std::int64_t busy_ns(const ExecutionProfiler::ShardTotals& t) {
  return t.phase_ns[kProfileCompute] + t.phase_ns[kProfileDeliver] +
         t.phase_ns[kProfileReduce];
}

}  // namespace

const char* profile_phase_name(int phase) {
  switch (phase) {
    case kProfileCompute: return "compute";
    case kProfileDeliver: return "deliver";
    case kProfileFault: return "fault";
    case kProfileReduce: return "reduce";
    case kProfileBarrier: return "barrier";
    case kProfileIdle: return "idle";
    case kProfileChurn: return "churn";
    default: return "unknown";
  }
}

ExecutionProfiler::ExecutionProfiler() : ExecutionProfiler(Options{}) {}

ExecutionProfiler::ExecutionProfiler(Options options)
    : ring_capacity_(std::max(2, options.ring_capacity)), epoch_(now_ns()) {}

void ExecutionProfiler::reset() {
  for (Lane& lane : lanes_) {
    lane.rows = 0;
    lane.compute_end_ts = 0;
    lane.deliver_end_ts = -1;
    lane.totals = ShardTotals{};
    lane.dispatch_latency.clear();
  }
  run_shards_ = 1;
  dispatch_ts_ = -1;
  global_round_ = 0;
  runs_ = 0;
  wall_ns_ = 0;
  imbalance_max_sum_ = 0;
  imbalance_mean_sum_ = 0.0;
}

void ExecutionProfiler::bind(int num_shards) {
  if (static_cast<int>(lanes_.size()) >= num_shards) return;
  lanes_.resize(num_shards);
  for (Lane& lane : lanes_) {
    if (static_cast<int>(lane.ring.size()) != ring_capacity_) {
      lane.ring.assign(ring_capacity_, Sample{});
    }
  }
}

void ExecutionProfiler::begin_run(int num_shards) {
  run_shards_ = std::min(num_shards, static_cast<int>(lanes_.size()));
  run_begin_ts_ = now_ns() - epoch_;
  dispatch_ts_ = -1;
  // A previous run may have aborted (CongestionError / max_rounds) without
  // reaching end_run; stale hand-off timestamps must not leak across runs.
  for (int s = 0; s < static_cast<int>(lanes_.size()); ++s) {
    lanes_[s].deliver_end_ts = -1;
  }
}

void ExecutionProfiler::end_run() {
  const std::int64_t t = now_ns() - epoch_;
  // The wait between the last delivery and the run's end (the final
  // barrier plus the termination check) is barrier time like any other
  // inter-phase gap.
  for (int s = 0; s < run_shards_; ++s) {
    Lane& lane = lanes_[s];
    if (lane.deliver_end_ts >= 0) {
      lane.totals.phase_ns[kProfileBarrier] += t - lane.deliver_end_ts;
      lane.deliver_end_ts = -1;
    }
  }
  wall_ns_ += t - run_begin_ts_;
  ++runs_;
}

void ExecutionProfiler::mark_dispatch() { dispatch_ts_ = now_ns() - epoch_; }

void ExecutionProfiler::compute_begin(int s) {
  Lane& lane = lanes_[s];
  const std::int64_t t = now_ns() - epoch_;
  // dispatch_ts_ was written by the caller before the pool dispatch; the
  // pool's mutex hand-off orders that write before this read.
  if (dispatch_ts_ >= 0) lane.dispatch_latency.record(t - dispatch_ts_);
  if (lane.deliver_end_ts >= 0) {
    // Time since this shard finished the previous round's delivery: the
    // round barrier plus the next dispatch. For the caller's lane,
    // reduce_end() already advanced the hand-off stamp past the reduction,
    // so the reduction is never double-counted as waiting.
    lane.totals.phase_ns[kProfileBarrier] += t - lane.deliver_end_ts;
    lane.deliver_end_ts = -1;
  }
  Sample& row =
      lane.ring[static_cast<std::size_t>(lane.rows % ring_capacity_)];
  ++lane.rows;
  row = Sample{};
  // global_round_ only advances in round_end() on the caller thread, which
  // is ordered before the next round's dispatch — stable during the round.
  row.round = global_round_;
  row.compute_start = t;
}

void ExecutionProfiler::compute_end(int s) {
  Lane& lane = lanes_[s];
  const std::int64_t t = now_ns() - epoch_;
  Sample& row = current(lane);
  row.compute_ns = t - row.compute_start;
  lane.compute_end_ts = t;
  lane.totals.phase_ns[kProfileCompute] += row.compute_ns;
  ++lane.totals.rounds;
}

void ExecutionProfiler::deliver_begin(int s) {
  Lane& lane = lanes_[s];
  const std::int64_t t = now_ns() - epoch_;
  if (lane.rows == 0 || current(lane).round != global_round_) {
    // No compute bracket ran on this lane this round: the shard was skipped
    // by the sparse fast path and its ports are being delivered by another
    // worker. Open a deliver-only sample — zero compute, zero barrier (the
    // shard was idle, not waiting).
    Sample& fresh =
        lane.ring[static_cast<std::size_t>(lane.rows % ring_capacity_)];
    ++lane.rows;
    fresh = Sample{};
    fresh.round = global_round_;
    fresh.compute_start = t;
    lane.compute_end_ts = t;
    ++lane.totals.rounds;
    if (lane.deliver_end_ts >= 0) {
      // Skipped-compute rounds accrued since the last hand-off are idle
      // time, not barrier wait.
      lane.totals.phase_ns[kProfileIdle] += t - lane.deliver_end_ts;
      lane.deliver_end_ts = -1;
    }
  }
  Sample& row = current(lane);
  row.barrier_ns = t - lane.compute_end_ts;
  row.deliver_start = t;
  lane.totals.phase_ns[kProfileBarrier] += row.barrier_ns;
}

void ExecutionProfiler::deliver_end(int s, std::int64_t fault_ns) {
  Lane& lane = lanes_[s];
  const std::int64_t t = now_ns() - epoch_;
  Sample& row = current(lane);
  row.deliver_ns = t - row.deliver_start;
  row.fault_ns = fault_ns;
  lane.deliver_end_ts = t;
  lane.totals.phase_ns[kProfileDeliver] += row.deliver_ns;
  lane.totals.phase_ns[kProfileFault] += fault_ns;
}

void ExecutionProfiler::reduce_begin() {
  Lane& lane = lanes_[0];
  Sample& row = current(lane);
  row.reduce_start = now_ns() - epoch_;
}

void ExecutionProfiler::reduce_end() {
  Lane& lane = lanes_[0];
  const std::int64_t t = now_ns() - epoch_;
  Sample& row = current(lane);
  row.reduce_ns = t - row.reduce_start;
  lane.totals.phase_ns[kProfileReduce] += row.reduce_ns;
  // The caller runs the reduction between its own deliver_end and the next
  // compute_begin; advancing the hand-off stamp keeps that span classified
  // as reduce, not barrier wait.
  if (lane.deliver_end_ts >= 0) lane.deliver_end_ts = t;
}

void ExecutionProfiler::mark_idle_others() {
  const std::int64_t t = now_ns() - epoch_;
  for (int s = 1; s < run_shards_; ++s) {
    Lane& lane = lanes_[s];
    if (lane.deliver_end_ts >= 0) {
      lane.totals.phase_ns[kProfileIdle] += t - lane.deliver_end_ts;
      lane.deliver_end_ts = t;
    }
  }
}

void ExecutionProfiler::round_end() {
  // Caller thread, after the delivery barrier: every participating lane's
  // current row is complete and ordered before this read by the pool
  // hand-off. Lanes the sparse fast path skipped this round (their current
  // row belongs to an older round) are left out of the imbalance fold —
  // a shard with no work is not an imbalance.
  std::int64_t max_busy = 0;
  std::int64_t sum_busy = 0;
  int participants = 0;
  for (int s = 0; s < run_shards_; ++s) {
    const Lane& lane = lanes_[s];
    if (lane.rows == 0 || current(lane).round != global_round_) continue;
    const Sample& row = current(lane);
    const std::int64_t busy = row.compute_ns + row.deliver_ns;
    max_busy = std::max(max_busy, busy);
    sum_busy += busy;
    ++participants;
  }
  if (participants > 0) {
    imbalance_max_sum_ += max_busy;
    imbalance_mean_sum_ +=
        static_cast<double>(sum_busy) / static_cast<double>(participants);
  }
  ++global_round_;
}

ExecutionProfiler::Summary ExecutionProfiler::summary() const {
  Summary out;
  out.runs = runs_;
  out.rounds = global_round_;
  out.wall_ns = wall_ns_;
  std::int64_t all_busy = 0;
  for (int s = 0; s < static_cast<int>(lanes_.size()); ++s) {
    const Lane& lane = lanes_[s];
    if (lane.totals.rounds == 0) continue;
    ShardSummary sh;
    sh.shard = s;
    sh.totals = lane.totals;
    out.shards.push_back(sh);
    out.total.rounds += lane.totals.rounds;
    for (int p = 0; p < kProfilePhaseCount; ++p) {
      out.total.phase_ns[p] += lane.totals.phase_ns[p];
    }
    all_busy += busy_ns(lane.totals);
    out.dispatch_latency.merge(lane.dispatch_latency);
    out.num_shards = s + 1;
  }
  for (ShardSummary& sh : out.shards) {
    sh.busy_share = all_busy > 0 ? static_cast<double>(busy_ns(sh.totals)) /
                                       static_cast<double>(all_busy)
                                 : 0.0;
  }
  const std::int64_t barrier = out.total.phase_ns[kProfileBarrier];
  if (all_busy + barrier > 0) {
    out.barrier_wait_fraction = static_cast<double>(barrier) /
                                static_cast<double>(all_busy + barrier);
  }
  if (imbalance_mean_sum_ > 0.0) {
    out.load_imbalance =
        static_cast<double>(imbalance_max_sum_) / imbalance_mean_sum_;
  }
  // Amdahl estimate: the reduction runs on one thread no matter how many
  // shards there are; compute + deliver spread across the shards.
  const double serial = static_cast<double>(out.total.phase_ns[kProfileReduce]);
  const double par = static_cast<double>(out.total.phase_ns[kProfileCompute] +
                                         out.total.phase_ns[kProfileDeliver]);
  if (serial + par > 0.0) {
    out.serial_fraction = serial / (serial + par);
    const double k = std::max(1, out.num_shards);
    out.achievable_speedup = (serial + par) / (serial + par / k);
  }
  return out;
}

void ExecutionProfiler::write_chrome_trace(std::ostream& os) const {
  os << "{\"traceEvents\":[";
  bool first = true;
  const auto event = [&](const char* name, int tid, std::int64_t ts,
                         std::int64_t dur, std::int64_t round,
                         std::int64_t fault_ns) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << name
       << "\",\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << us(ts)
       << ",\"dur\":" << us(dur) << ",\"args\":{\"round\":" << round;
    if (fault_ns > 0) os << ",\"fault_us\":" << us(fault_ns);
    os << "}}";
  };
  const auto meta = [&](const char* key, int tid, const std::string& value) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":\"" << key
       << "\",\"ph\":\"M\",\"pid\":0,\"tid\":" << tid << ",\"args\":{\"name\":";
    escape(os, value);
    os << "}}";
  };
  meta("process_name", 0, "ecd congest network");
  for (int s = 0; s < static_cast<int>(lanes_.size()); ++s) {
    if (lanes_[s].rows == 0) continue;
    meta("thread_name", s,
         s == 0 ? "shard 0 (caller)" : "shard " + std::to_string(s));
  }
  for (int s = 0; s < static_cast<int>(lanes_.size()); ++s) {
    const Lane& lane = lanes_[s];
    const std::int64_t kept = std::min<std::int64_t>(lane.rows, ring_capacity_);
    for (std::int64_t i = lane.rows - kept; i < lane.rows; ++i) {
      const Sample& row =
          lane.ring[static_cast<std::size_t>(i % ring_capacity_)];
      if (row.compute_ns > 0 || row.deliver_ns > 0) {
        event("compute", s, row.compute_start, row.compute_ns, row.round, 0);
        if (row.barrier_ns > 0) {
          event("barrier", s, row.compute_start + row.compute_ns,
                row.barrier_ns, row.round, 0);
        }
        event("deliver", s, row.deliver_start, row.deliver_ns, row.round,
              row.fault_ns);
        if (s == 0 && row.reduce_ns > 0) {
          event("reduce", s, row.reduce_start, row.reduce_ns, row.round, 0);
        }
      }
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}\n";
}

void write_profile_report(std::ostream& os, const ExecutionProfiler& profiler,
                          const ProfileReportContext& context) {
  const ExecutionProfiler::Summary s = profiler.summary();
  os << "{\"schema\":\"ecd-profile-v1\",\"title\":";
  escape(os, context.title);
  os << ",\"info\":{";
  for (std::size_t i = 0; i < context.info.size(); ++i) {
    if (i) os << ',';
    escape(os, context.info[i].first);
    os << ':';
    escape(os, context.info[i].second);
  }
  os << "},\"profile\":{\"num_shards\":" << s.num_shards
     << ",\"runs\":" << s.runs << ",\"rounds\":" << s.rounds
     << ",\"wall_ns\":" << s.wall_ns;
  os << ",\"totals\":{";
  for (int p = 0; p < kProfilePhaseCount; ++p) {
    if (p) os << ',';
    os << '"' << profile_phase_name(p) << "_ns\":" << s.total.phase_ns[p];
  }
  os << '}';
  os << ",\"derived\":{\"barrier_wait_fraction\":"
     << fmt_double(s.barrier_wait_fraction)
     << ",\"load_imbalance\":" << fmt_double(s.load_imbalance)
     << ",\"serial_fraction\":" << fmt_double(s.serial_fraction)
     << ",\"achievable_speedup\":" << fmt_double(s.achievable_speedup) << '}';
  os << ",\"dispatch_latency_ns\":{\"count\":" << s.dispatch_latency.count()
     << ",\"sum\":" << s.dispatch_latency.sum()
     << ",\"max\":" << s.dispatch_latency.max()
     << ",\"p50\":" << s.dispatch_latency.percentile(50)
     << ",\"p99\":" << s.dispatch_latency.percentile(99) << '}';
  os << ",\"shards\":[";
  for (std::size_t i = 0; i < s.shards.size(); ++i) {
    const ExecutionProfiler::ShardSummary& sh = s.shards[i];
    if (i) os << ',';
    os << "{\"shard\":" << sh.shard << ",\"rounds\":" << sh.totals.rounds;
    for (int p = 0; p < kProfilePhaseCount; ++p) {
      os << ",\"" << profile_phase_name(p)
         << "_ns\":" << sh.totals.phase_ns[p];
    }
    os << ",\"busy_share\":" << fmt_double(sh.busy_share) << '}';
  }
  os << "]}}\n";
}

std::string format_profile_table(const ExecutionProfiler::Summary& s) {
  std::ostringstream os;
  char line[256];
  os << "shard   rounds  compute_ms  deliver_ms   fault_ms  reduce_ms  "
        "barrier_ms     idle_ms  busy_share\n";
  for (const ExecutionProfiler::ShardSummary& sh : s.shards) {
    std::snprintf(line, sizeof line,
                  "%5d %8lld %11s %11s %10s %10s %11s %11s %11.3f\n", sh.shard,
                  static_cast<long long>(sh.totals.rounds),
                  fmt_ms(sh.totals.phase_ns[kProfileCompute]).c_str(),
                  fmt_ms(sh.totals.phase_ns[kProfileDeliver]).c_str(),
                  fmt_ms(sh.totals.phase_ns[kProfileFault]).c_str(),
                  fmt_ms(sh.totals.phase_ns[kProfileReduce]).c_str(),
                  fmt_ms(sh.totals.phase_ns[kProfileBarrier]).c_str(),
                  fmt_ms(sh.totals.phase_ns[kProfileIdle]).c_str(),
                  sh.busy_share);
    os << line;
  }
  std::snprintf(line, sizeof line,
                "shards %d  runs %lld  rounds %lld  wall %s ms\n", s.num_shards,
                static_cast<long long>(s.runs),
                static_cast<long long>(s.rounds), fmt_ms(s.wall_ns).c_str());
  os << line;
  if (s.total.phase_ns[kProfileChurn] > 0) {
    std::snprintf(line, sizeof line, "churn (topology events) %s ms\n",
                  fmt_ms(s.total.phase_ns[kProfileChurn]).c_str());
    os << line;
  }
  std::snprintf(
      line, sizeof line,
      "barrier-wait fraction %.3f  load imbalance %.3f  serial fraction "
      "%.3f  achievable speedup %.2fx\n",
      s.barrier_wait_fraction, s.load_imbalance, s.serial_fraction,
      s.achievable_speedup);
  os << line;
  if (!s.dispatch_latency.empty()) {
    std::snprintf(line, sizeof line,
                  "dispatch latency p50 %lld ns  p99 %lld ns  max %lld ns\n",
                  static_cast<long long>(s.dispatch_latency.percentile(50)),
                  static_cast<long long>(s.dispatch_latency.percentile(99)),
                  static_cast<long long>(s.dispatch_latency.max()));
    os << line;
  }
  return os.str();
}

}  // namespace ecd::congest
