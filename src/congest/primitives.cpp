#include "src/congest/primitives.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <random>
#include <set>

#include "src/congest/trace.h"
#include "src/graph/splitmix.h"

namespace ecd::congest {

using graph::EdgeId;
using graph::Graph;
using graph::kInvalidVertex;
using graph::VertexId;

namespace {

// Ports of v whose neighbor lies in the same cluster.
std::vector<std::vector<int>> intra_cluster_ports(
    const Graph& g, const std::vector<int>& cluster_of) {
  std::vector<std::vector<int>> ports(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (int p = 0; p < static_cast<int>(nbrs.size()); ++p) {
      if (cluster_of[nbrs[p]] == cluster_of[v]) ports[v].push_back(p);
    }
  }
  return ports;
}

// --- Leader election ----------------------------------------------------------

class LeaderElectionAlgo final : public VertexAlgorithm {
 public:
  LeaderElectionAlgo(const std::vector<int>* intra, int intra_degree)
      : intra_(intra), intra_degree_(intra_degree) {}

  void round(Context& ctx) override {
    started_ = true;
    bool changed = false;
    if (ctx.round() == 0) {
      best_ = {intra_degree_, ctx.id()};
      changed = true;
    }
    for (int p : *intra_) {
      for (const Message& m : ctx.inbox(p)) {
        const std::pair<std::int64_t, std::int64_t> cand{m.words[0],
                                                         m.words[1]};
        if (cand > best_) {
          best_ = cand;
          changed = true;
        }
      }
    }
    sent_ = changed;
    if (changed) {
      for (int p : *intra_) {
        ctx.send(p, {{best_.first, best_.second}, kTagElection});
      }
    }
  }

  bool finished() const override { return started_ && !sent_; }

  VertexId leader() const { return static_cast<VertexId>(best_.second); }

 private:
  const std::vector<int>* intra_;
  int intra_degree_;
  std::pair<std::int64_t, std::int64_t> best_{-1, -1};
  bool started_ = false;
  bool sent_ = false;
};

// --- BFS tree -------------------------------------------------------------------

class BfsAlgo final : public VertexAlgorithm {
 public:
  BfsAlgo(const std::vector<int>* intra, bool is_root)
      : intra_(intra), is_root_(is_root) {}

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    if (ctx.round() == 0 && is_root_) {
      depth_ = 0;
      announce(ctx);
      return;
    }
    if (depth_ != -1) return;
    int best_depth = -1;
    VertexId best_parent = kInvalidVertex;
    for (int p : *intra_) {
      for (const Message& m : ctx.inbox(p)) {
        const int d = static_cast<int>(m.words[0]);
        const VertexId sender = ctx.neighbor(p);
        if (best_depth == -1 || d < best_depth ||
            (d == best_depth && sender < best_parent)) {
          best_depth = d;
          best_parent = sender;
        }
      }
    }
    if (best_depth != -1) {
      depth_ = best_depth + 1;
      parent_ = best_parent;
      announce(ctx);
    }
  }

  bool finished() const override { return started_ && !sent_; }

  int depth() const { return depth_; }
  VertexId parent() const { return parent_; }

 private:
  void announce(Context& ctx) {
    sent_ = true;
    for (int p : *intra_) ctx.send(p, {{depth_}, kTagBfs});
  }

  const std::vector<int>* intra_;
  bool is_root_;
  bool started_ = false;
  bool sent_ = false;
  int depth_ = -1;
  VertexId parent_ = kInvalidVertex;
};

// --- Barenboim–Elkin peeling orientation ----------------------------------------

class PeelAlgo final : public VertexAlgorithm {
 public:
  PeelAlgo(const std::vector<int>* intra, int threshold)
      : intra_(intra), threshold_(threshold) {}

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    if (ctx.round() == 0) {
      for (int p : *intra_) alive_port_.push_back(p);
    }
    // Process peel announcements from the previous round.
    std::vector<int> simultaneous;  // ports whose neighbor peeled with us
    for (auto it = alive_port_.begin(); it != alive_port_.end();) {
      const int p = *it;
      if (!ctx.inbox(p).empty()) {
        if (peel_round_ != -1 &&
            ctx.inbox(p)[0].words[0] == peel_round_) {
          simultaneous.push_back(p);
        }
        it = alive_port_.erase(it);
      } else {
        ++it;
      }
    }
    if (peel_round_ != -1 && !claimed_) {
      // Finalize ownership one round after peeling: we own edges to
      // neighbors that were still alive from our view, except simultaneous
      // peelers with a smaller id.
      claimed_ = true;
      for (int p : tentative_ports_) {
        const bool simultaneous_peer =
            std::find(simultaneous.begin(), simultaneous.end(), p) !=
            simultaneous.end();
        if (!simultaneous_peer || ctx.id() < ctx.neighbor(p)) {
          owned_ports_.push_back(p);
        }
      }
      return;
    }
    if (peel_round_ == -1 &&
        static_cast<int>(alive_port_.size()) <= threshold_) {
      peel_round_ = ctx.round();
      tentative_ports_ = alive_port_;
      sent_ = true;
      for (int p : alive_port_) ctx.send(p, {{peel_round_}, kTagOrientation});
    }
  }

  bool finished() const override { return started_ && claimed_ && !sent_; }

  const std::vector<int>& owned_ports() const { return owned_ports_; }
  std::int64_t peel_round() const { return peel_round_; }

 private:
  const std::vector<int>* intra_;
  int threshold_;
  bool started_ = false;
  bool sent_ = false;
  bool claimed_ = false;
  std::int64_t peel_round_ = -1;
  std::vector<int> alive_port_;
  std::vector<int> tentative_ports_;
  std::vector<int> owned_ports_;
};

// --- Random-walk gather -----------------------------------------------------------

class WalkAlgo final : public VertexAlgorithm {
 public:
  struct Token {
    std::int64_t id = -1;
    std::vector<std::int64_t> payload;
  };

  WalkAlgo(const std::vector<int>* intra, bool is_leader,
           std::vector<Token> initial_tokens, std::uint64_t seed,
           int bandwidth, std::vector<TokenTrace>* traces)
      : intra_(intra),
        is_leader_(is_leader),
        rng_(seed),
        bandwidth_(bandwidth),
        traces_(traces) {
    for (auto& t : initial_tokens) held_.push_back(std::move(t));
  }

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    for (int p : *intra_) {
      for (const Message& m : ctx.inbox(p)) {
        Token t;
        t.id = m.words[0];
        t.payload.assign(m.words.begin() + 1, m.words.end());
        held_.push_back(std::move(t));
      }
    }
    if (is_leader_) {
      for (auto& t : held_) absorbed_.push_back(std::move(t));
      held_.clear();
      return;
    }
    if (held_.empty() || intra_->empty()) return;
    // Lazy step per token, subject to the per-edge budget; blocked tokens
    // simply retry next round.
    std::vector<int> port_load(intra_->size(), 0);
    std::uniform_int_distribution<std::size_t> pick(0, intra_->size() - 1);
    std::bernoulli_distribution lazy(0.5);
    std::deque<Token> keep;
    while (!held_.empty()) {
      Token t = std::move(held_.front());
      held_.pop_front();
      if (lazy(rng_)) {
        keep.push_back(std::move(t));
        continue;
      }
      const std::size_t i = pick(rng_);
      if (port_load[i] >= bandwidth_) {
        keep.push_back(std::move(t));
        continue;
      }
      ++port_load[i];
      sent_ = true;
      // Local bookkeeping for the reversed delivery (§2.2): the trace
      // records which way the token went and when.
      TokenTrace& trace = (*traces_)[t.id];
      trace.visited.push_back(ctx.neighbor((*intra_)[i]));
      trace.hop_round.push_back(ctx.round());
      Message m;
      m.tag = kTagWalkToken;
      m.words.reserve(t.payload.size() + 1);
      m.words.push_back(t.id);
      m.words.insert(m.words.end(), t.payload.begin(), t.payload.end());
      ctx.send((*intra_)[i], std::move(m));
    }
    held_ = std::move(keep);
  }

  bool finished() const override {
    return started_ && held_.empty() && !sent_;
  }

  std::vector<Token>& absorbed() { return absorbed_; }

 private:
  const std::vector<int>* intra_;
  bool is_leader_;
  std::mt19937_64 rng_;
  int bandwidth_;
  std::vector<TokenTrace>* traces_;
  bool started_ = false;
  bool sent_ = false;
  std::deque<Token> held_;
  std::vector<Token> absorbed_;
};

// --- Reliable random-walk gather (DESIGN.md §12) ---------------------------------

// WalkAlgo hardened against message faults. Token hops carry a per-token
// sequence number packed into the routing word (id | seq << 44 — token ids
// stay well under 2^44 and a hop count under 2^19 keeps the word positive);
// receivers ack every copy they see and accept each (id, seq) once, senders
// retransmit un-acked hops on the same port after a timeout. Past the
// `deadline` round a vertex goes silent (still ingesting mail) so the run
// terminates even when a crashed leader makes delivery impossible; the
// host's epoch loop then re-elects and re-seeds.
class ReliableWalkAlgo final : public VertexAlgorithm {
 public:
  static constexpr int kSeqShift = 44;
  static constexpr std::int64_t kIdMask = (std::int64_t{1} << kSeqShift) - 1;

  struct Token {
    std::int64_t id = -1;
    std::int64_t next_seq = 0;  // sequence number of the token's next hop
    std::vector<std::int64_t> payload;
  };

  ReliableWalkAlgo(const std::vector<int>* intra,
                   const std::vector<int>* walk_index, bool is_leader,
                   std::vector<Token> initial, std::uint64_t seed,
                   int bandwidth, int timeout, std::int64_t deadline,
                   std::int64_t base_round, std::vector<TokenTrace>* traces)
      : intra_(intra),
        walk_index_(walk_index),
        is_leader_(is_leader),
        rng_(seed),
        bandwidth_(bandwidth),
        timeout_(timeout),
        deadline_(deadline),
        base_round_(base_round),
        traces_(traces),
        ack_queue_(intra->size()) {
    for (auto& t : initial) held_.push_back(std::move(t));
  }

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    const int ports = static_cast<int>(intra_->size());
    // Ingest: acks clear pending retransmissions; token messages are acked
    // unconditionally (the sender may be retrying a hop whose first copy
    // made it) and accepted once per (id, seq).
    for (int i = 0; i < ports; ++i) {
      for (const Message& m : ctx.inbox((*intra_)[i])) {
        if (m.tag == kTagWalkAck) {
          for (const std::int64_t packed : m.words) clear_unacked(packed);
          continue;
        }
        const std::int64_t packed = m.words[0];
        ack_queue_[i].push_back(packed);
        if (!accepted_.insert(packed).second) continue;  // dup/replay
        Token t;
        t.id = packed & kIdMask;
        t.next_seq = (packed >> kSeqShift) + 1;
        t.payload.assign(m.words.begin() + 1, m.words.end());
        if (is_leader_) {
          absorbed_.push_back(std::move(t));
        } else {
          held_.push_back(std::move(t));
        }
      }
    }
    if (is_leader_ && !held_.empty()) {
      // A leader's own initial tokens are absorbed on the spot.
      for (auto& t : held_) absorbed_.push_back(std::move(t));
      held_.clear();
    }
    const std::int64_t r = ctx.round();
    if (r >= deadline_) {
      gave_up_ = true;
      return;  // silent: kept tokens are the host's problem now
    }
    if (ports == 0) return;
    // Per-port budget, spent in priority order: acks, retransmissions,
    // fresh hops. Acks ride the same intra-cluster edges as the walks.
    std::vector<int> load(ports, 0);
    for (int i = 0; i < ports; ++i) {
      auto& queue = ack_queue_[i];
      std::size_t consumed = 0;
      while (consumed < queue.size() && load[i] < bandwidth_) {
        Message m;
        m.tag = kTagWalkAck;
        const std::size_t take = std::min<std::size_t>(
            queue.size() - consumed, static_cast<std::size_t>(kMaxMessageWords));
        for (std::size_t k = 0; k < take; ++k) {
          m.words.push_back(queue[consumed++]);
        }
        ++load[i];
        sent_ = true;
        ++ack_messages_;
        ctx.send((*intra_)[i], std::move(m));
      }
      queue.erase(queue.begin(),
                  queue.begin() + static_cast<std::ptrdiff_t>(consumed));
    }
    if (is_leader_) return;
    for (Pending& u : unacked_) {
      if (r - u.sent_round < timeout_ || load[u.port_index] >= bandwidth_) {
        continue;
      }
      ++load[u.port_index];
      ++retransmissions_;
      sent_ = true;
      u.sent_round = r;
      ctx.send((*intra_)[u.port_index], token_message(u.packed, u.payload));
    }
    // Fresh hops go only to neighbors the host knows were alive at epoch
    // start (the crash-by-heartbeat assumption of DESIGN.md §12): a hop into
    // a crashed vertex is never acked and would pin the token in unacked_
    // for the rest of the epoch.
    if (held_.empty() || walk_index_->empty()) return;
    std::uniform_int_distribution<std::size_t> pick(0, walk_index_->size() - 1);
    std::bernoulli_distribution lazy(0.5);
    std::deque<Token> keep;
    while (!held_.empty()) {
      Token t = std::move(held_.front());
      held_.pop_front();
      if (lazy(rng_)) {
        keep.push_back(std::move(t));
        continue;
      }
      const std::size_t i = static_cast<std::size_t>((*walk_index_)[pick(rng_)]);
      if (load[i] >= bandwidth_) {
        keep.push_back(std::move(t));
        continue;
      }
      ++load[i];
      sent_ = true;
      const std::int64_t seq = t.next_seq++;
      const std::int64_t packed = t.id | (seq << kSeqShift);
      // The hop is recorded once, at first transmission; retransmissions
      // re-send the identical hop, so the trace stays a faithful record of
      // the path and reverse_delivery remains routable.
      TokenTrace& trace = (*traces_)[t.id];
      trace.visited.push_back(ctx.neighbor((*intra_)[i]));
      trace.hop_round.push_back(base_round_ + r);
      ctx.send((*intra_)[i], token_message(packed, t.payload));
      unacked_.push_back(Pending{packed, std::move(t.payload),
                                 static_cast<int>(i), r});
    }
    held_ = std::move(keep);
  }

  bool finished() const override {
    if (!started_ || sent_) return false;
    if (gave_up_) return true;
    if (!held_.empty() || !unacked_.empty()) return false;
    for (const auto& queue : ack_queue_) {
      if (!queue.empty()) return false;
    }
    return true;
  }

  std::vector<Token>& absorbed() { return absorbed_; }
  std::int64_t retransmissions() const { return retransmissions_; }
  std::int64_t ack_messages() const { return ack_messages_; }

 private:
  struct Pending {
    std::int64_t packed = -1;
    std::vector<std::int64_t> payload;
    int port_index = -1;
    std::int64_t sent_round = -1;
  };

  static Message token_message(std::int64_t packed,
                               const std::vector<std::int64_t>& payload) {
    Message m;
    m.tag = kTagWalkToken;
    m.words.reserve(payload.size() + 1);
    m.words.push_back(packed);
    m.words.insert(m.words.end(), payload.begin(), payload.end());
    return m;
  }

  void clear_unacked(std::int64_t packed) {
    for (auto it = unacked_.begin(); it != unacked_.end(); ++it) {
      if (it->packed == packed) {
        unacked_.erase(it);
        return;
      }
    }
  }

  const std::vector<int>* intra_;
  const std::vector<int>* walk_index_;  // intra indices with live neighbors
  bool is_leader_;
  std::mt19937_64 rng_;
  int bandwidth_;
  int timeout_;
  std::int64_t deadline_;
  std::int64_t base_round_;
  std::vector<TokenTrace>* traces_;
  std::vector<std::vector<std::int64_t>> ack_queue_;  // per intra index
  std::set<std::int64_t> accepted_;
  std::vector<Pending> unacked_;
  bool started_ = false;
  bool sent_ = false;
  bool gave_up_ = false;
  std::int64_t retransmissions_ = 0;
  std::int64_t ack_messages_ = 0;
  std::deque<Token> held_;
  std::vector<Token> absorbed_;
};

// --- Deterministic tree gather ---------------------------------------------------

class TreeClimbAlgo final : public VertexAlgorithm {
 public:
  TreeClimbAlgo(bool is_leader, int parent_port,
                std::vector<std::vector<std::int64_t>> initial, int bandwidth)
      : is_leader_(is_leader), parent_port_(parent_port), bandwidth_(bandwidth) {
    for (auto& p : initial) held_.push_back(std::move(p));
  }

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    for (int p = 0; p < ctx.num_ports(); ++p) {
      for (const Message& m : ctx.inbox(p)) held_.push_back(m.words.to_vector());
    }
    if (is_leader_) {
      for (auto& t : held_) absorbed_.push_back(std::move(t));
      held_.clear();
      return;
    }
    if (parent_port_ < 0) return;  // orphan (singleton handled as leader)
    int budget = bandwidth_;
    while (!held_.empty() && budget-- > 0) {
      sent_ = true;
      ctx.send(parent_port_, {std::move(held_.front()), kTagTreeToken});
      held_.pop_front();
    }
  }

  bool finished() const override { return started_ && held_.empty() && !sent_; }
  std::vector<std::vector<std::int64_t>>& absorbed() { return absorbed_; }

 private:
  bool is_leader_;
  int parent_port_;
  int bandwidth_;
  bool started_ = false;
  bool sent_ = false;
  std::deque<std::vector<std::int64_t>> held_;
  std::vector<std::vector<std::int64_t>> absorbed_;
};

// --- Convergecast -----------------------------------------------------------------

class ConvergecastAlgo final : public VertexAlgorithm {
 public:
  ConvergecastAlgo(bool is_root, int parent_port, std::int64_t value,
                   Fold fold)
      : is_root_(is_root), parent_port_(parent_port), total_(value),
        fold_(fold) {}

  void round(Context& ctx) override {
    if (done_) return;
    if (ctx.round() == 0) {
      if (!is_root_ && parent_port_ >= 0) {
        ctx.send(parent_port_, {{kTagChild}, kTagConvergecast});
      }
      return;
    }
    if (ctx.round() == 1) {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        for (const Message& m : ctx.inbox(p)) {
          if (m.words[0] == kTagChild) ++expected_children_;
        }
      }
    } else {
      for (int p = 0; p < ctx.num_ports(); ++p) {
        for (const Message& m : ctx.inbox(p)) {
          if (m.words[0] == kTagSum) {
            switch (fold_) {
              case Fold::kSum: total_ += m.words[1]; break;
              case Fold::kMin: total_ = std::min(total_, m.words[1]); break;
              case Fold::kMax: total_ = std::max(total_, m.words[1]); break;
            }
            ++received_children_;
          }
        }
      }
    }
    if (received_children_ == expected_children_) {
      if (!is_root_ && parent_port_ >= 0) {
        ctx.send(parent_port_, {{kTagSum, total_}, kTagConvergecast});
      }
      done_ = true;
    }
  }

  bool finished() const override { return done_; }
  std::int64_t total() const { return total_; }

 private:
  static constexpr std::int64_t kTagChild = 0;
  static constexpr std::int64_t kTagSum = 1;
  bool is_root_;
  int parent_port_;
  std::int64_t total_;
  Fold fold_;
  int expected_children_ = 0;
  int received_children_ = 0;
  bool done_ = false;
};

// --- Value flood --------------------------------------------------------------------

class FloodAlgo final : public VertexAlgorithm {
 public:
  FloodAlgo(const std::vector<int>* intra, bool is_source, std::int64_t value)
      : intra_(intra), value_(is_source ? value : -1) {}

  void round(Context& ctx) override {
    started_ = true;
    sent_ = false;
    if (ctx.round() == 0) {
      if (value_ != -1) forward(ctx);
      return;
    }
    if (value_ != -1) return;
    for (int p : *intra_) {
      if (!ctx.inbox(p).empty()) {
        value_ = ctx.inbox(p)[0].words[0];
        forward(ctx);
        return;
      }
    }
  }

  bool finished() const override { return started_ && !sent_; }
  std::int64_t value() const { return value_; }

 private:
  void forward(Context& ctx) {
    sent_ = true;
    for (int p : *intra_) ctx.send(p, {{value_}, kTagBroadcast});
  }

  const std::vector<int>* intra_;
  std::int64_t value_;
  bool started_ = false;
  bool sent_ = false;
};

// --- Diameter self-check ---------------------------------------------------------------

class DiameterCheckAlgo final : public VertexAlgorithm {
 public:
  DiameterCheckAlgo(const std::vector<int>* intra, int bound)
      : intra_(intra), bound_(bound) {}

  void round(Context& ctx) override {
    const std::int64_t r = ctx.round();
    if (r == 0) max_id_ = ctx.id();
    if (r < bound_) {
      // Flood phase: absorb neighbors' maxima, forward ours.
      for (int p : *intra_) {
        for (const Message& m : ctx.inbox(p)) {
          max_id_ = std::max(max_id_, m.words[0]);
        }
      }
      for (int p : *intra_) ctx.send(p, {{max_id_}, kTagDiameter});
    } else if (r == bound_) {
      // Final absorb, then exchange the settled value for comparison.
      for (int p : *intra_) {
        for (const Message& m : ctx.inbox(p)) {
          max_id_ = std::max(max_id_, m.words[0]);
        }
      }
      for (int p : *intra_) ctx.send(p, {{max_id_}, kTagDiameter});
    } else if (r == bound_ + 1) {
      for (int p : *intra_) {
        for (const Message& m : ctx.inbox(p)) {
          if (m.words[0] != max_id_) marked_ = true;
        }
      }
      for (int p : *intra_) ctx.send(p, {{marked_ ? 1 : 0}, kTagDiameter});
    } else if (r <= bound_ + 2 + 2 * bound_) {
      for (int p : *intra_) {
        for (const Message& m : ctx.inbox(p)) {
          if (m.words[0] == 1) marked_ = true;
        }
      }
      for (int p : *intra_) ctx.send(p, {{marked_ ? 1 : 0}, kTagDiameter});
      if (r == bound_ + 2 + 2 * bound_) done_ = true;
    } else {
      done_ = true;
    }
  }

  bool finished() const override { return done_; }
  bool marked() const { return marked_; }

 private:
  const std::vector<int>* intra_;
  int bound_;
  std::int64_t max_id_ = -1;
  bool marked_ = false;
  bool done_ = false;
};

}  // namespace

LeaderElectionResult elect_cluster_leaders(const Graph& g,
                                           const std::vector<int>& cluster_of,
                                           const NetworkOptions& net) {
  TRACE_SPAN(net.trace, "leader_election");
  const auto intra = intra_cluster_ports(g, cluster_of);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  algos.reserve(g.num_vertices());
  std::vector<LeaderElectionAlgo*> typed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = std::make_unique<LeaderElectionAlgo>(
        &intra[v], static_cast<int>(intra[v].size()));
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  Network network(g, net);
  LeaderElectionResult result;
  result.stats = network.run(algos);
  result.leader_of.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    result.leader_of[v] = typed[v]->leader();
  }
  return result;
}

BfsTreeResult build_cluster_bfs_trees(const Graph& g,
                                      const std::vector<int>& cluster_of,
                                      const std::vector<VertexId>& leader_of,
                                      const NetworkOptions& net) {
  TRACE_SPAN(net.trace, "bfs_tree");
  const auto intra = intra_cluster_ports(g, cluster_of);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<BfsAlgo*> typed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = std::make_unique<BfsAlgo>(&intra[v], leader_of[v] == v);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  Network network(g, net);
  BfsTreeResult result;
  result.stats = network.run(algos);
  result.parent.resize(g.num_vertices());
  result.depth.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    result.parent[v] = typed[v]->parent();
    result.depth[v] = typed[v]->depth();
    result.max_depth = std::max(result.max_depth, result.depth[v]);
  }
  return result;
}

OrientationResult orient_cluster_edges(const Graph& g,
                                       const std::vector<int>& cluster_of,
                                       int peel_threshold,
                                       const NetworkOptions& net) {
  TRACE_SPAN(net.trace, "orientation");
  const auto intra = intra_cluster_ports(g, cluster_of);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<PeelAlgo*> typed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = std::make_unique<PeelAlgo>(&intra[v], peel_threshold);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  Network network(g, net);
  OrientationResult result;
  result.stats = network.run(algos);
  result.owned.resize(g.num_vertices());
  std::int64_t max_phase = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto eids = g.incident_edges(v);
    for (int port : typed[v]->owned_ports()) {
      result.owned[v].push_back(eids[port]);
    }
    result.max_out_degree = std::max(
        result.max_out_degree, static_cast<int>(result.owned[v].size()));
    max_phase = std::max(max_phase, typed[v]->peel_round());
  }
  result.peeling_phases = static_cast<int>(max_phase) + 1;
  return result;
}

GatherResult random_walk_gather(const Graph& g,
                                const std::vector<int>& cluster_of,
                                const std::vector<VertexId>& leader_of,
                                const std::vector<std::vector<GatherToken>>& tokens,
                                const GatherOptions& options) {
  TRACE_SPAN(options.net.trace, "walk_gather");
  const auto intra = intra_cluster_ports(g, cluster_of);
  GatherResult result;
  std::int64_t expected = 0;
  for (const auto& list : tokens) expected += static_cast<std::int64_t>(list.size());
  result.traces.reserve(expected);

  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<WalkAlgo*> typed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::vector<WalkAlgo::Token> initial;
    for (const GatherToken& t : tokens[v]) {
      WalkAlgo::Token tok;
      tok.id = static_cast<std::int64_t>(result.traces.size());
      tok.payload = t.payload;
      initial.push_back(std::move(tok));
      TokenTrace trace;
      trace.origin = v;
      trace.cluster = cluster_of[v];
      trace.visited = {v};
      result.traces.push_back(std::move(trace));
    }
    auto a = std::make_unique<WalkAlgo>(
        &intra[v], leader_of[v] == v, std::move(initial),
        options.seed ^ (0x9e3779b97f4a7c15ULL * (v + 1)),
        options.net.bandwidth_tokens, &result.traces);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  Network network(g, options.net);
  result.stats = network.run(algos);
  int num_clusters = 0;
  for (int c : cluster_of) num_clusters = std::max(num_clusters, c + 1);
  result.delivered.resize(num_clusters);
  result.delivered_ids.resize(num_clusters);
  std::int64_t received = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (leader_of[v] != v) continue;
    auto& absorbed = typed[v]->absorbed();
    received += static_cast<std::int64_t>(absorbed.size());
    auto& payloads = result.delivered[cluster_of[v]];
    auto& ids = result.delivered_ids[cluster_of[v]];
    for (auto& t : absorbed) {
      ids.push_back(t.id);
      payloads.push_back(std::move(t.payload));
    }
  }
  result.complete = (received == expected);
  return result;
}

ReliableGatherResult reliable_walk_gather(
    const Graph& g, const std::vector<int>& cluster_of,
    const std::vector<VertexId>& leader_of,
    const std::vector<std::vector<GatherToken>>& tokens,
    const ReliableGatherOptions& options) {
  TRACE_SPAN(options.net.trace, "fault:reliable_gather");
  const auto intra = intra_cluster_ports(g, cluster_of);
  const int n = g.num_vertices();
  const FaultPlan& base_plan = options.net.faults;
  const int delay_span =
      base_plan.delay_probability > 0.0 ? base_plan.max_delay_rounds : 0;
  const int timeout =
      options.ack_timeout > 0 ? options.ack_timeout : 4 + 2 * delay_span;

  ReliableGatherResult result;
  GatherResult& gather = result.gather;

  // Host-side token table: the authoritative record of where every token
  // is. Tokens in flight or stranded when an epoch ends are re-seeded at
  // their origins; only an absorption at a live leader is durable.
  struct TokenState {
    VertexId origin = kInvalidVertex;
    std::vector<std::int64_t> payload;
    VertexId absorbed_by = kInvalidVertex;
  };
  std::vector<TokenState> toks;
  for (VertexId v = 0; v < n; ++v) {
    for (const GatherToken& t : tokens[v]) {
      TokenState ts;
      ts.origin = v;
      ts.payload = t.payload;
      toks.push_back(std::move(ts));
      TokenTrace trace;
      trace.origin = v;
      trace.cluster = cluster_of[v];
      trace.visited = {v};
      gather.traces.push_back(std::move(trace));
    }
  }

  std::vector<std::int64_t> crash_round(
      n, std::numeric_limits<std::int64_t>::max());
  for (const CrashEvent& c : base_plan.crashes) {
    crash_round[c.vertex] = std::min(crash_round[c.vertex], c.round);
  }
  // Epoch-relative view of the plan's crash schedule at cumulative round
  // `base`: already-fired crashes become round-0 crashes.
  const auto relative_crashes = [&](std::int64_t base) {
    std::vector<CrashEvent> out;
    for (const CrashEvent& c : base_plan.crashes) {
      out.push_back(CrashEvent{c.vertex, std::max<std::int64_t>(
                                             0, c.round - base)});
    }
    return out;
  };
  const auto add_stats = [&](const RunStats& s) {
    gather.stats.rounds += s.rounds;
    gather.stats.messages_sent += s.messages_sent;
    gather.stats.words_sent += s.words_sent;
    gather.stats.max_edge_load =
        std::max(gather.stats.max_edge_load, s.max_edge_load);
    gather.stats.messages_dropped += s.messages_dropped;
    gather.stats.messages_duplicated += s.messages_duplicated;
    gather.stats.messages_delayed += s.messages_delayed;
    gather.stats.vertices_crashed += s.vertices_crashed;
  };

  result.final_leader_of = leader_of;
  std::int64_t base_round = 0;
  bool all_absorbed = toks.empty();
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    // An absorption only survives while its leader does: a leader that has
    // crash-stopped by now takes its gathered payloads down with it.
    all_absorbed = true;
    for (std::size_t id = 0; id < toks.size(); ++id) {
      TokenState& ts = toks[id];
      if (ts.absorbed_by != kInvalidVertex &&
          crash_round[ts.absorbed_by] <= base_round) {
        ts.absorbed_by = kInvalidVertex;
      }
      if (ts.absorbed_by == kInvalidVertex) {
        if (crash_round[ts.origin] <= base_round) continue;  // orphaned
        all_absorbed = false;
        if (epoch > 0) {
          // Re-seed at the origin: whatever partial path the token walked
          // last epoch is void, and its trace restarts with it. A token
          // whose origin itself crash-stopped is orphaned instead — no live
          // vertex is responsible for re-introducing it, so it drops out of
          // the completeness contract rather than wedging it.
          gather.traces[id].visited = {ts.origin};
          gather.traces[id].hop_round.clear();
        }
      }
    }
    if (all_absorbed) break;

    // Re-elect when any current leader is dead (always re-check after the
    // first epoch: give-ups mean some cluster made no progress). Election
    // traffic is modeled crash-accurately but message-reliable — the §12
    // determinism contract treats the control plane as reliable, which is
    // also what keeps the election's own convergence guarantee intact.
    bool leader_dead = false;
    for (VertexId v = 0; v < n; ++v) {
      if (result.final_leader_of[v] == v && crash_round[v] <= base_round) {
        leader_dead = true;
        break;
      }
    }
    if (leader_dead) {
      TRACE_SPAN(options.net.trace, "fault:reelect");
      NetworkOptions eopt = options.net;
      eopt.faults = FaultPlan{};
      eopt.faults.crashes = relative_crashes(base_round);
      const LeaderElectionResult elect =
          elect_cluster_leaders(g, cluster_of, eopt);
      result.final_leader_of = elect.leader_of;
      add_stats(elect.stats);
      base_round += elect.stats.rounds;
      ++result.reelections;
    }

    TRACE_SPAN(options.net.trace, "fault:epoch");
    NetworkOptions nopt = options.net;
    FaultPlan& plan = nopt.faults;
    plan.seed = epoch == 0 ? base_plan.seed
                           : graph::splitmix64(base_plan.seed + epoch);
    plan.crashes = relative_crashes(base_round);
    if (base_plan.first_faulty_round > 0 ||
        base_plan.last_faulty_round !=
            std::numeric_limits<std::int64_t>::max()) {
      plan.first_faulty_round =
          std::max<std::int64_t>(0, base_plan.first_faulty_round - base_round);
      plan.last_faulty_round =
          base_plan.last_faulty_round ==
                  std::numeric_limits<std::int64_t>::max()
              ? base_plan.last_faulty_round
              : base_plan.last_faulty_round - base_round;
      if (plan.last_faulty_round < 0) {
        plan.first_faulty_round = 1;  // window already closed: no faults
        plan.last_faulty_round = 0;
      }
    }
    // The give-up deadline bounds the run: after it nobody sends, so the
    // network drains within the residual delay span.
    nopt.max_rounds = options.epoch_rounds + delay_span + 8;

    // Fresh hops avoid neighbors known dead at epoch start (crashes the
    // plan has already fired — the heartbeat failure-detector assumption):
    // a hop into a crashed vertex is never acked, so without this a token
    // re-enters the dead port every epoch and never converges.
    std::vector<std::vector<int>> walk_index(n);
    for (VertexId v = 0; v < n; ++v) {
      const auto nbrs = g.neighbors(v);
      walk_index[v].reserve(intra[v].size());
      for (std::size_t i = 0; i < intra[v].size(); ++i) {
        if (crash_round[nbrs[intra[v][i]]] > base_round) {
          walk_index[v].push_back(static_cast<int>(i));
        }
      }
    }
    std::vector<std::unique_ptr<VertexAlgorithm>> algos;
    std::vector<ReliableWalkAlgo*> typed(n);
    std::vector<std::vector<ReliableWalkAlgo::Token>> initial(n);
    for (std::size_t id = 0; id < toks.size(); ++id) {
      if (toks[id].absorbed_by != kInvalidVertex) continue;
      if (crash_round[toks[id].origin] <= base_round) continue;  // orphaned
      ReliableWalkAlgo::Token t;
      t.id = static_cast<std::int64_t>(id);
      t.payload = toks[id].payload;
      initial[toks[id].origin].push_back(std::move(t));
    }
    for (VertexId v = 0; v < n; ++v) {
      auto a = std::make_unique<ReliableWalkAlgo>(
          &intra[v], &walk_index[v], result.final_leader_of[v] == v,
          std::move(initial[v]),
          graph::splitmix64(graph::splitmix64(options.seed + epoch) ^
                            (0x9e3779b97f4a7c15ULL * (v + 1))),
          options.net.bandwidth_tokens, timeout, options.epoch_rounds,
          base_round, &gather.traces);
      typed[v] = a.get();
      algos.push_back(std::move(a));
    }
    Network network(g, nopt);
    const RunStats stats = network.run(algos);
    add_stats(stats);
    base_round += stats.rounds;
    ++result.epochs;
    for (VertexId v = 0; v < n; ++v) {
      result.retransmissions += typed[v]->retransmissions();
      result.ack_messages += typed[v]->ack_messages();
      for (ReliableWalkAlgo::Token& t : typed[v]->absorbed()) {
        toks[t.id].absorbed_by = v;
        toks[t.id].payload = std::move(t.payload);
      }
    }
    if (epoch + 1 == options.max_epochs) {
      // Last epoch ran without a trailing boundary check: apply it here so
      // `complete` means what it says.
      all_absorbed = true;
      for (TokenState& ts : toks) {
        const bool delivered = ts.absorbed_by != kInvalidVertex &&
                               crash_round[ts.absorbed_by] > base_round;
        if (delivered || crash_round[ts.origin] <= base_round) continue;
        all_absorbed = false;
        break;
      }
    }
  }
  // An absorption at a leader that has crashed by the end of the run is
  // lost with the leader; never report it as delivered.
  for (TokenState& ts : toks) {
    if (ts.absorbed_by != kInvalidVertex &&
        crash_round[ts.absorbed_by] <= base_round) {
      ts.absorbed_by = kInvalidVertex;
    }
  }

  int num_clusters = 0;
  for (int c : cluster_of) num_clusters = std::max(num_clusters, c + 1);
  gather.delivered.resize(num_clusters);
  gather.delivered_ids.resize(num_clusters);
  for (std::size_t id = 0; id < toks.size(); ++id) {
    TokenState& ts = toks[id];
    if (ts.absorbed_by == kInvalidVertex) continue;
    const int c = cluster_of[ts.origin];
    gather.delivered_ids[c].push_back(static_cast<std::int64_t>(id));
    gather.delivered[c].push_back(std::move(ts.payload));
  }
  gather.complete = all_absorbed;
  return result;
}

ReverseDeliveryResult reverse_delivery(
    int num_vertices, const GatherResult& gather,
    const std::vector<std::vector<std::int64_t>>& reply, int bandwidth) {
  ReverseDeliveryResult result;
  result.received.resize(num_vertices);
  const std::int64_t horizon = gather.stats.rounds;
  // The hop taken at forward round r is traversed backwards at round
  // horizon - 1 - r: strictly increasing forward times become strictly
  // increasing reverse times along the reversed path, and the per-edge
  // per-round load is the mirror image of the forward run.
  std::unordered_map<std::uint64_t, int> load;
  auto hop_key = [&](VertexId from, VertexId to, std::int64_t round) {
    return (static_cast<std::uint64_t>(round) << 40) ^
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 20) ^
           static_cast<std::uint32_t>(to);
  };
  result.load_ok = true;
  for (std::size_t id = 0; id < gather.traces.size(); ++id) {
    if (id >= reply.size() || reply[id].empty()) continue;  // no reply due
    const TokenTrace& trace = gather.traces[id];
    for (std::size_t h = 0; h < trace.hop_round.size(); ++h) {
      const std::int64_t reverse_round = horizon - 1 - trace.hop_round[h];
      if (reverse_round < 0) result.load_ok = false;
      // Reverse hop: visited[h+1] -> visited[h].
      const int l = ++load[hop_key(trace.visited[h + 1], trace.visited[h],
                                   reverse_round)];
      if (l > bandwidth) result.load_ok = false;
      ++result.stats.messages_sent;
      result.stats.words_sent +=
          static_cast<std::int64_t>(reply[id].size()) + 1;
      result.stats.max_edge_load = std::max(result.stats.max_edge_load, l);
      result.stats.rounds = std::max(result.stats.rounds, reverse_round + 1);
    }
    result.received[trace.origin].push_back(reply[id]);
  }
  return result;
}

BroadcastResult broadcast_from_leaders(const Graph& g,
                                       const std::vector<int>& cluster_of,
                                       const std::vector<VertexId>& leader_of,
                                       const std::vector<std::int64_t>& leader_value,
                                       const NetworkOptions& net) {
  TRACE_SPAN(net.trace, "broadcast");
  const auto intra = intra_cluster_ports(g, cluster_of);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<FloodAlgo*> typed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = std::make_unique<FloodAlgo>(&intra[v], leader_of[v] == v,
                                         leader_value[v]);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  Network network(g, net);
  BroadcastResult result;
  result.stats = network.run(algos);
  result.value.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    result.value[v] = typed[v]->value();
  }
  return result;
}

TreeGatherResult tree_gather(const Graph& g,
                             const std::vector<int>& cluster_of,
                             const std::vector<VertexId>& leader_of,
                             const std::vector<VertexId>& bfs_parent,
                             const std::vector<std::vector<GatherToken>>& tokens,
                             const NetworkOptions& net) {
  TRACE_SPAN(net.trace, "tree_gather");
  const int n = g.num_vertices();
  std::int64_t expected = 0;
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<TreeClimbAlgo*> typed(n);
  for (VertexId v = 0; v < n; ++v) {
    int parent_port = -1;
    if (bfs_parent[v] != kInvalidVertex) {
      const auto nbrs = g.neighbors(v);
      for (int p = 0; p < static_cast<int>(nbrs.size()); ++p) {
        if (nbrs[p] == bfs_parent[v]) parent_port = p;
      }
    }
    std::vector<std::vector<std::int64_t>> payloads;
    for (const GatherToken& t : tokens[v]) {
      payloads.push_back(t.payload);
      ++expected;
    }
    auto a = std::make_unique<TreeClimbAlgo>(leader_of[v] == v, parent_port,
                                             std::move(payloads),
                                             net.bandwidth_tokens);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  Network network(g, net);
  TreeGatherResult result;
  result.stats = network.run(algos);
  int num_clusters = 0;
  for (int c : cluster_of) num_clusters = std::max(num_clusters, c + 1);
  result.delivered.resize(num_clusters);
  std::int64_t received = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (leader_of[v] != v) continue;
    auto& absorbed = typed[v]->absorbed();
    received += static_cast<std::int64_t>(absorbed.size());
    result.delivered[cluster_of[v]] = std::move(absorbed);
  }
  result.complete = (received == expected);
  return result;
}

ConvergecastResult convergecast_fold(const Graph& g,
                                     const std::vector<int>& cluster_of,
                                     const std::vector<VertexId>& leader_of,
                                     const std::vector<VertexId>& bfs_parent,
                                     const std::vector<int>& depth,
                                     const std::vector<std::int64_t>& value,
                                     Fold fold, const NetworkOptions& net) {
  TRACE_SPAN(net.trace, "convergecast");
  (void)depth;  // the child-announcement protocol needs no depth knowledge
  const int n = g.num_vertices();
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<ConvergecastAlgo*> typed(n);
  for (VertexId v = 0; v < n; ++v) {
    int parent_port = -1;
    if (bfs_parent[v] != kInvalidVertex) {
      const auto nbrs = g.neighbors(v);
      for (int p = 0; p < static_cast<int>(nbrs.size()); ++p) {
        if (nbrs[p] == bfs_parent[v]) parent_port = p;
      }
    }
    auto a = std::make_unique<ConvergecastAlgo>(leader_of[v] == v, parent_port,
                                                value[v], fold);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  Network network(g, net);
  ConvergecastResult result;
  result.stats = network.run(algos);
  int num_clusters = 0;
  for (int c : cluster_of) num_clusters = std::max(num_clusters, c + 1);
  result.sum.assign(num_clusters, 0);
  for (VertexId v = 0; v < n; ++v) {
    if (leader_of[v] == v) result.sum[cluster_of[v]] = typed[v]->total();
  }
  return result;
}

DiameterCheckResult check_cluster_diameter(const Graph& g,
                                           const std::vector<int>& cluster_of,
                                           int bound,
                                           const NetworkOptions& net) {
  TRACE_SPAN(net.trace, "diameter_check");
  const auto intra = intra_cluster_ports(g, cluster_of);
  std::vector<std::unique_ptr<VertexAlgorithm>> algos;
  std::vector<DiameterCheckAlgo*> typed(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    auto a = std::make_unique<DiameterCheckAlgo>(&intra[v], bound);
    typed[v] = a.get();
    algos.push_back(std::move(a));
  }
  Network network(g, net);
  DiameterCheckResult result;
  result.stats = network.run(algos);
  result.within_bound.resize(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    result.within_bound[v] = !typed[v]->marked();
  }
  return result;
}

}  // namespace ecd::congest
