#include "src/congest/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace ecd::congest {

const char* tag_name(int tag) {
  switch (tag) {
    case kTagDefault: return "default";
    case kTagElection: return "election";
    case kTagBfs: return "bfs";
    case kTagOrientation: return "orientation";
    case kTagWalkToken: return "walk_token";
    case kTagBroadcast: return "broadcast";
    case kTagConvergecast: return "convergecast";
    case kTagDiameter: return "diameter";
    case kTagTreeToken: return "tree_token";
    case kTagWalkAck: return "walk_ack";
    default: return tag >= kTagUserBase ? "user" : "?";
  }
}

// --- MetricsCollector ----------------------------------------------------------

namespace {

std::uint64_t edge_key(graph::VertexId from, graph::VertexId to) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from)) << 32) |
         static_cast<std::uint32_t>(to);
}

}  // namespace

void MetricsCollector::on_run_begin(int num_vertices, int num_edges,
                                    const NetworkOptions& options) {
  (void)num_vertices, (void)num_edges, (void)options;
  ++runs_observed_;
  run_base_round_ = total_rounds_;
}

void MetricsCollector::on_run_end(const RunStats& stats) { (void)stats; }

void MetricsCollector::on_round_end(std::int64_t round, std::int64_t messages,
                                    std::int64_t words, int max_edge_load) {
  rounds_.push_back(
      {run_base_round_ + round, messages, words, max_edge_load});
  total_rounds_ = run_base_round_ + round + 1;
  for (std::size_t i : open_spans_) ++spans_[i].rounds;
}

void MetricsCollector::on_edge_load(std::int64_t round, graph::VertexId from,
                                    graph::VertexId to, int messages,
                                    std::int64_t words) {
  (void)round;
  total_messages_ += messages;
  total_words_ += words;
  max_edge_load_ = std::max(max_edge_load_, messages);
  ++load_histogram_[messages];
  EdgeTraffic& e = edges_[edge_key(from, to)];
  e.from = from;
  e.to = to;
  e.messages += messages;
  e.words += words;
  e.peak_load = std::max(e.peak_load, messages);
  for (std::size_t i : open_spans_) {
    SpanStats& s = spans_[i];
    s.messages += messages;
    s.words += words;
    s.max_edge_load = std::max(s.max_edge_load, messages);
    ++s.load_histogram[messages];
  }
}

void MetricsCollector::on_message(std::int64_t round, int tag, int words) {
  (void)round;
  TagStats& t = tags_[tag];
  t.messages += 1;
  t.words += words;
}

void MetricsCollector::on_churn_event(std::int64_t round, ChurnKind kind,
                                      graph::VertexId u, graph::VertexId v) {
  (void)round, (void)u, (void)v;
  switch (kind) {
    case ChurnKind::kEdgeInsert: ++churn_.edge_inserts; break;
    case ChurnKind::kEdgeDelete: ++churn_.edge_deletes; break;
    case ChurnKind::kNodeLeave: ++churn_.node_leaves; break;
    case ChurnKind::kNodeJoin: ++churn_.node_joins; break;
  }
}

void MetricsCollector::on_churn_purge(std::int64_t round, graph::VertexId from,
                                      graph::VertexId to, int count) {
  (void)round, (void)from, (void)to;
  ++churn_.purge_events;
  churn_.messages_purged += count;
}

void MetricsCollector::on_violation(const CongestionError& err) {
  violations_.push_back({err.kind(), run_base_round_ + err.round(),
                         err.from(), err.to(), err.used(), err.budget()});
  for (std::size_t i : open_spans_) ++spans_[i].violations;
}

void MetricsCollector::on_span_begin(const std::string& name) {
  SpanStats s;
  s.name = name;
  s.depth = static_cast<int>(open_spans_.size());
  s.begin_round = total_rounds_;
  open_spans_.push_back(spans_.size());
  spans_.push_back(std::move(s));
}

void MetricsCollector::on_span_end(const std::string& name) {
  (void)name;
  if (open_spans_.empty()) return;  // unmatched end: ignore
  spans_[open_spans_.back()].closed = true;
  open_spans_.pop_back();
}

RunStats MetricsCollector::totals() const {
  RunStats s;
  s.rounds = total_rounds_;
  s.messages_sent = total_messages_;
  s.words_sent = total_words_;
  s.max_edge_load = max_edge_load_;
  return s;
}

std::vector<EdgeTraffic> MetricsCollector::top_edges(int k) const {
  std::vector<EdgeTraffic> out;
  out.reserve(edges_.size());
  for (const auto& [key, e] : edges_) out.push_back(e);
  std::sort(out.begin(), out.end(), [](const EdgeTraffic& a,
                                       const EdgeTraffic& b) {
    if (a.messages != b.messages) return a.messages > b.messages;
    if (a.from != b.from) return a.from < b.from;
    return a.to < b.to;
  });
  if (k >= 0 && static_cast<int>(out.size()) > k) out.resize(k);
  return out;
}

double MetricsCollector::load_percentile(double p) const {
  std::int64_t samples = 0;
  for (const auto& [load, count] : load_histogram_) samples += count;
  if (samples == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(samples - 1);
  std::int64_t target = static_cast<std::int64_t>(std::ceil(rank));
  std::int64_t seen = 0;
  for (const auto& [load, count] : load_histogram_) {
    seen += count;
    if (seen > target) return static_cast<double>(load);
  }
  return static_cast<double>(load_histogram_.rbegin()->first);
}

// --- FlightRecorder ------------------------------------------------------------

FlightRecorder::FlightRecorder() : FlightRecorder(Options{}) {}

FlightRecorder::FlightRecorder(Options options) : options_(options) {
  if (options_.ring_capacity < 1) options_.ring_capacity = 1;
  if (options_.keep_rounds < 1) options_.keep_rounds = 1;
  ring_.resize(static_cast<std::size_t>(options_.ring_capacity));
}

void FlightRecorder::push(const Event& e) {
  const std::int64_t cap = options_.ring_capacity;
  if (size_ == cap) {
    head_ = (head_ + 1) % cap;
    --size_;
    ++dropped_;
  }
  ring_[static_cast<std::size_t>((head_ + size_) % cap)] = e;
  ++size_;
}

void FlightRecorder::trim_rounds(std::int64_t newest_round) {
  const std::int64_t cap = options_.ring_capacity;
  const std::int64_t floor = newest_round - options_.keep_rounds + 1;
  while (size_ > 0 && ring_[static_cast<std::size_t>(head_)].round < floor) {
    head_ = (head_ + 1) % cap;
    --size_;
    ++dropped_;
  }
}

void FlightRecorder::on_run_begin(int num_vertices, int num_edges,
                                  const NetworkOptions& options) {
  (void)options;
  run_base_round_ = last_round_ + 1;
  purge_dumped_ = false;
  push({EventKind::kRunBegin, run_base_round_, num_vertices, num_edges, 0, 0});
}

void FlightRecorder::on_run_end(const RunStats& stats) {
  push({EventKind::kRunEnd, last_round_ < run_base_round_ ? run_base_round_
                                                          : last_round_,
        stats.rounds, stats.messages_sent, stats.words_sent, 0});
}

void FlightRecorder::on_round_end(std::int64_t round, std::int64_t messages,
                                  std::int64_t words, int max_edge_load) {
  const std::int64_t g = run_base_round_ + round;
  last_round_ = g;
  push({EventKind::kRound, g, messages, words, max_edge_load, 0});
  trim_rounds(g);
}

void FlightRecorder::on_edge_load(std::int64_t round, graph::VertexId from,
                                  graph::VertexId to, int messages,
                                  std::int64_t words) {
  push({EventKind::kEdgeLoad, run_base_round_ + round, from, to, messages,
        words});
}

void FlightRecorder::on_message(std::int64_t round, int tag, int words) {
  push({EventKind::kMessage, run_base_round_ + round, tag, words, 0, 0});
}

void FlightRecorder::on_churn_event(std::int64_t round, ChurnKind kind,
                                    graph::VertexId u, graph::VertexId v) {
  push({EventKind::kChurn, run_base_round_ + round,
        static_cast<std::int64_t>(kind), u, v, 0});
}

void FlightRecorder::on_churn_purge(std::int64_t round, graph::VertexId from,
                                    graph::VertexId to, int count) {
  push({EventKind::kPurge, run_base_round_ + round, from, to, count, 0});
  if (auto_dump_ && dump_on_purge_ && !purge_dumped_) {
    purge_dumped_ = true;
    dump_jsonl(*auto_dump_);
  }
}

void FlightRecorder::on_violation(const CongestionError& err) {
  push({EventKind::kViolation, run_base_round_ + err.round(),
        static_cast<std::int64_t>(err.kind()), err.from(), err.to(),
        (static_cast<std::int64_t>(err.used()) << 32) |
            static_cast<std::uint32_t>(err.budget())});
}

void FlightRecorder::on_abort(const char* reason) {
  (void)reason;
  if (auto_dump_) dump_jsonl(*auto_dump_);
}

void FlightRecorder::dump_jsonl(std::ostream& os) const {
  os << "{\"type\":\"flight\",\"retained\":" << size_
     << ",\"dropped\":" << dropped_ << ",\"last_round\":" << last_round_
     << ",\"ring_capacity\":" << options_.ring_capacity
     << ",\"keep_rounds\":" << options_.keep_rounds << "}\n";
  const std::int64_t cap = options_.ring_capacity;
  for (std::int64_t i = 0; i < size_; ++i) {
    const Event& e = ring_[static_cast<std::size_t>((head_ + i) % cap)];
    switch (e.kind) {
      case EventKind::kRunBegin:
        os << "{\"type\":\"run_begin\",\"round\":" << e.round
           << ",\"vertices\":" << e.a << ",\"edges\":" << e.b << "}\n";
        break;
      case EventKind::kRound:
        os << "{\"type\":\"round\",\"round\":" << e.round
           << ",\"messages\":" << e.a << ",\"words\":" << e.b
           << ",\"max_edge_load\":" << e.c << "}\n";
        break;
      case EventKind::kEdgeLoad:
        os << "{\"type\":\"edge_load\",\"round\":" << e.round
           << ",\"from\":" << e.a << ",\"to\":" << e.b
           << ",\"messages\":" << e.c << ",\"words\":" << e.d << "}\n";
        break;
      case EventKind::kMessage:
        os << "{\"type\":\"message\",\"round\":" << e.round << ",\"tag\":\""
           << tag_name(static_cast<int>(e.a)) << "\",\"id\":" << e.a
           << ",\"words\":" << e.b << "}\n";
        break;
      case EventKind::kChurn:
        os << "{\"type\":\"churn\",\"round\":" << e.round << ",\"kind\":"
           << e.a << ",\"u\":" << e.b << ",\"v\":" << e.c << "}\n";
        break;
      case EventKind::kPurge:
        os << "{\"type\":\"purge\",\"round\":" << e.round
           << ",\"from\":" << e.a << ",\"to\":" << e.b
           << ",\"count\":" << e.c << "}\n";
        break;
      case EventKind::kViolation:
        os << "{\"type\":\"violation\",\"round\":" << e.round
           << ",\"kind\":"
           << (e.a == static_cast<std::int64_t>(
                          CongestionError::Kind::kBandwidth)
                   ? "\"bandwidth\""
                   : "\"message_size\"")
           << ",\"from\":" << e.b << ",\"to\":" << e.c
           << ",\"used\":" << (e.d >> 32)
           << ",\"budget\":" << static_cast<std::int32_t>(e.d & 0xffffffff)
           << "}\n";
        break;
      case EventKind::kRunEnd:
        os << "{\"type\":\"run_end\",\"round\":" << e.round
           << ",\"rounds\":" << e.a << ",\"messages\":" << e.b
           << ",\"words\":" << e.c << "}\n";
        break;
    }
  }
}

// --- Exporters -----------------------------------------------------------------

namespace {

// Span names and tag names are plain identifiers, but escape defensively.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* violation_kind_name(CongestionError::Kind kind) {
  return kind == CongestionError::Kind::kBandwidth ? "bandwidth"
                                                   : "message_size";
}

}  // namespace

void export_jsonl(const MetricsCollector& collector, std::ostream& os) {
  const RunStats t = collector.totals();
  os << "{\"type\":\"meta\",\"runs\":" << collector.runs_observed()
     << ",\"rounds\":" << t.rounds << ",\"messages\":" << t.messages_sent
     << ",\"words\":" << t.words_sent
     << ",\"max_edge_load\":" << t.max_edge_load << "}\n";
  for (const SpanStats& s : collector.spans()) {
    os << "{\"type\":\"span\",\"name\":\"" << json_escape(s.name)
       << "\",\"depth\":" << s.depth << ",\"begin_round\":" << s.begin_round
       << ",\"rounds\":" << s.rounds << ",\"messages\":" << s.messages
       << ",\"words\":" << s.words
       << ",\"max_edge_load\":" << s.max_edge_load
       << ",\"violations\":" << s.violations << "}\n";
  }
  for (const auto& [tag, stats] : collector.tag_stats()) {
    os << "{\"type\":\"tag\",\"tag\":\"" << json_escape(tag_name(tag))
       << "\",\"id\":" << tag << ",\"messages\":" << stats.messages
       << ",\"words\":" << stats.words << "}\n";
  }
  for (const RoundSample& r : collector.rounds()) {
    os << "{\"type\":\"round\",\"round\":" << r.round
       << ",\"messages\":" << r.messages << ",\"words\":" << r.words
       << ",\"max_edge_load\":" << r.max_edge_load << "}\n";
  }
  for (const EdgeTraffic& e : collector.top_edges(-1)) {
    os << "{\"type\":\"edge\",\"from\":" << e.from << ",\"to\":" << e.to
       << ",\"messages\":" << e.messages << ",\"words\":" << e.words
       << ",\"peak_load\":" << e.peak_load << "}\n";
  }
  for (const ViolationRecord& v : collector.violations()) {
    os << "{\"type\":\"violation\",\"kind\":\""
       << violation_kind_name(v.kind) << "\",\"round\":" << v.round
       << ",\"from\":" << v.from << ",\"to\":" << v.to
       << ",\"used\":" << v.used << ",\"budget\":" << v.budget << "}\n";
  }
  // Churn line only on runs that actually churned, so churn-free traces
  // stay byte-identical to their pre-churn goldens.
  const ChurnStats& c = collector.churn_stats();
  if (c.total_events() > 0 || c.purge_events > 0) {
    os << "{\"type\":\"churn\",\"edge_inserts\":" << c.edge_inserts
       << ",\"edge_deletes\":" << c.edge_deletes
       << ",\"node_leaves\":" << c.node_leaves
       << ",\"node_joins\":" << c.node_joins
       << ",\"purge_events\":" << c.purge_events
       << ",\"messages_purged\":" << c.messages_purged << "}\n";
  }
}

void export_chrome_trace(const MetricsCollector& collector, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };
  for (const SpanStats& s : collector.spans()) {
    sep();
    // 1 round = 1 µs; zero-round spans get dur 1 so they stay visible.
    os << "{\"name\":\"" << json_escape(s.name)
       << "\",\"ph\":\"X\",\"ts\":" << s.begin_round
       << ",\"dur\":" << std::max<std::int64_t>(s.rounds, 1)
       << ",\"pid\":0,\"tid\":0,\"args\":{\"rounds\":" << s.rounds
       << ",\"messages\":" << s.messages << ",\"words\":" << s.words
       << ",\"max_edge_load\":" << s.max_edge_load << "}}";
  }
  for (const RoundSample& r : collector.rounds()) {
    sep();
    os << "{\"name\":\"traffic\",\"ph\":\"C\",\"ts\":" << r.round
       << ",\"pid\":0,\"args\":{\"messages\":" << r.messages
       << ",\"words\":" << r.words << "}}";
    sep();
    os << "{\"name\":\"max_edge_load\",\"ph\":\"C\",\"ts\":" << r.round
       << ",\"pid\":0,\"args\":{\"load\":" << r.max_edge_load << "}}";
  }
  for (const ViolationRecord& v : collector.violations()) {
    sep();
    os << "{\"name\":\"violation:" << violation_kind_name(v.kind)
       << "\",\"ph\":\"i\",\"ts\":" << v.round
       << ",\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":{\"from\":" << v.from
       << ",\"to\":" << v.to << ",\"used\":" << v.used
       << ",\"budget\":" << v.budget << "}}";
  }
  os << "\n]}\n";
}

std::string hotspot_report(const MetricsCollector& collector, int top_k) {
  std::ostringstream os;
  const RunStats t = collector.totals();
  os << "=== congestion hotspots ===\n";
  os << "rounds=" << t.rounds << " messages=" << t.messages_sent
     << " words=" << t.words_sent << " max-edge-load=" << t.max_edge_load
     << " violations=" << collector.violations().size() << "\n";
  os << "messages-per-edge-per-round: p50=" << collector.load_percentile(50)
     << " p99=" << collector.load_percentile(99) << "\n";
  os << "top congested directed edges (by total messages):\n";
  for (const EdgeTraffic& e : collector.top_edges(top_k)) {
    os << "  " << e.from << "->" << e.to << ": " << e.messages
       << " msgs, " << e.words << " words, peak load " << e.peak_load
       << "\n";
  }
  os << "per-phase edge-load histogram (load: samples):\n";
  for (const SpanStats& s : collector.spans()) {
    if (s.depth != 0) continue;
    os << "  " << s.name << ":";
    if (s.load_histogram.empty()) os << " (no traffic)";
    for (const auto& [load, count] : s.load_histogram) {
      os << " " << load << ":" << count;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ecd::congest
