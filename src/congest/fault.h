// Deterministic fault injection for the CONGEST simulator (DESIGN.md §12).
//
// The paper's framework (Theorem 2.6) assumes a perfectly reliable
// synchronous network. This layer lets every experiment drop that
// assumption on purpose: a FaultPlan attached to NetworkOptions makes the
// delivery phase drop, duplicate, or delay messages and crash-stop vertices
// at configured rounds/probabilities.
//
// Determinism contract: every fault decision is a pure function of
// (plan.seed, round, directed port, slot index) evaluated through
// splitmix64 — no RNG state is carried between rounds or shared across
// shards. A message occupies the same port and slot no matter how many
// threads execute the round (single-writer slot discipline, DESIGN.md §11),
// so fault schedules are bit-identical across NetworkOptions::num_threads,
// the same guarantee the parallel loop gives fault-free runs.
//
// Semantics, applied per delivered message in the delivery phase:
//   * one uniform draw partitions [0,1) into drop / duplicate / delay /
//     deliver, so the three probabilities must sum to at most 1;
//   * drop      — the message vanishes; the sender is not told;
//   * duplicate — the receiver sees the message twice in the same round
//     (the copy trails the port's originals and takes no further faults);
//   * delay     — the message is withheld and delivered d rounds late,
//     d drawn uniformly from [1, max_delay_rounds]; per-port FIFO order is
//     NOT preserved across a delayed message (that is the point);
//   * crash-stop — vertex v stops executing at round r: its round() is
//     never called again, it counts as finished for termination, and
//     messages already in flight from it are still delivered.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/splitmix.h"

namespace ecd::congest {

struct CrashEvent {
  graph::VertexId vertex = graph::kInvalidVertex;
  // First round the vertex does not execute (0 = dead from the start).
  std::int64_t round = 0;
};

// Scheduled topology events (churn). Unlike the probabilistic message
// faults these are an explicit list — the schedule is data, not draws —
// but like them it is fixed at Network construction, applied at
// deterministic points (between rounds, on the caller thread), and
// therefore bit-identical across thread counts.
//
// Semantics (details in DESIGN.md §17):
//   * kEdgeDelete  — edge {u, v} stops carrying traffic before round
//     `round` executes. Messages already sitting in the round's inbox are
//     still delivered; in-flight delayed messages on the edge are lost.
//   * kEdgeInsert  — edge {u, v} starts carrying traffic at round `round`.
//     Inserting an edge that is already live is a no-op. Every insertable
//     edge is known at construction, so port numbering is fixed up front
//     and surviving edges keep their ports across any event sequence.
//   * kNodeLeave   — vertex u stops executing at round `round` (like a
//     crash) and every incident live edge is deleted.
//   * kNodeJoin    — vertex u resumes executing at round `round`;
//     edges are NOT restored (schedule explicit kEdgeInsert events for
//     the links the returning node re-establishes). Joining a present
//     vertex is a no-op.
enum class ChurnKind : std::uint8_t {
  kEdgeInsert,
  kEdgeDelete,
  kNodeLeave,
  kNodeJoin,
};

struct ChurnEvent {
  ChurnKind kind = ChurnKind::kEdgeDelete;
  // Events fire before this round's compute phase (0 = before the run's
  // first round).
  std::int64_t round = 0;
  graph::VertexId u = graph::kInvalidVertex;
  // Second endpoint for edge events; ignored for node events.
  graph::VertexId v = graph::kInvalidVertex;

  bool operator==(const ChurnEvent&) const = default;
};

struct FaultPlan {
  std::uint64_t seed = 1;

  // Per-message probabilities; drop + duplicate + delay must be <= 1.
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  double delay_probability = 0.0;
  // Inclusive upper bound on an injected delay, in rounds (>= 1 whenever
  // delay_probability > 0).
  int max_delay_rounds = 1;

  // Probabilistic message faults apply only to messages delivered in
  // rounds [first_faulty_round, last_faulty_round]. Crash events are
  // unaffected by this window.
  std::int64_t first_faulty_round = 0;
  std::int64_t last_faulty_round = std::numeric_limits<std::int64_t>::max();

  std::vector<CrashEvent> crashes;

  // Scheduled topology events, applied between rounds in schedule order
  // (ties broken by list position). May be given unsorted.
  std::vector<ChurnEvent> churn;

  bool has_message_faults() const {
    return drop_probability > 0.0 || duplicate_probability > 0.0 ||
           delay_probability > 0.0;
  }
  bool has_churn() const { return !churn.empty(); }
  bool enabled() const {
    return has_message_faults() || !crashes.empty() || has_churn();
  }

  // Throws std::invalid_argument on malformed probabilities, a non-positive
  // delay bound with delay enabled, a crash or churn event naming a vertex
  // outside [0, num_vertices), a churn edge event with u == v, or a
  // negative event round. Called by the Network constructor.
  void validate(int num_vertices) const;
};

// What the single per-message draw decided.
enum class FaultAction : std::uint8_t {
  kDeliver,
  kDrop,
  kDuplicate,
  kDelay,
};

struct FaultDecision {
  FaultAction action = FaultAction::kDeliver;
  int delay_rounds = 0;  // in [1, max_delay_rounds] when action == kDelay
};

// The stateless per-message draw. `port` is the receiver's directed-port
// index and `slot` the message's position in that port's round batch; both
// are identical across thread counts, which is what makes the schedule
// deterministic.
inline FaultDecision fault_decision(const FaultPlan& plan, std::int64_t round,
                                    int port, int slot) {
  FaultDecision out;
  if (round < plan.first_faulty_round || round > plan.last_faulty_round) {
    return out;
  }
  const std::uint64_t key =
      plan.seed ^ graph::splitmix64(static_cast<std::uint64_t>(round) ^
                                    (static_cast<std::uint64_t>(
                                         static_cast<std::uint32_t>(port))
                                     << 24) ^
                                    (static_cast<std::uint64_t>(
                                         static_cast<std::uint32_t>(slot))
                                     << 54));
  const std::uint64_t h = graph::splitmix64(key);
  const double u = graph::splitmix_unit(h);
  if (u < plan.drop_probability) {
    out.action = FaultAction::kDrop;
  } else if (u < plan.drop_probability + plan.duplicate_probability) {
    out.action = FaultAction::kDuplicate;
  } else if (u < plan.drop_probability + plan.duplicate_probability +
                     plan.delay_probability) {
    out.action = FaultAction::kDelay;
    // Independent bits for the delay magnitude.
    out.delay_rounds =
        1 + static_cast<int>(graph::splitmix64(h ^ 0x6a09e667f3bcc909ULL) %
                             static_cast<std::uint64_t>(
                                 plan.max_delay_rounds));
  }
  return out;
}

}  // namespace ecd::congest
