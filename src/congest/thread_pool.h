// Persistent bulk-synchronous worker pool for the CONGEST simulator
// (DESIGN.md §11 "Parallel execution").
//
// The simulator's round structure is bulk-synchronous: every round is a
// compute phase over all vertices followed by a delivery phase over all
// ports, with a full barrier between them. This pool is shaped for exactly
// that pattern — one dispatch runs one shard function across a fixed team
// of threads and returns only when every shard is done, so the caller
// always observes the network between phases, never inside one.
//
// Dispatch is allocation-free: run() type-erases the callable through a
// plain function pointer + context pointer instead of std::function, so a
// capturing lambda dispatched every simulated round never touches the heap
// (the substrate's zero-allocation contract, DESIGN.md §10).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ecd::congest {

// A fixed team of num_threads() shards: run(fn) invokes fn(shard) for every
// shard in [0, num_threads()) — shard 0 on the calling thread, the rest on
// persistent workers — and blocks until all shards return. An exception
// thrown inside a shard is captured, the dispatch still quiesces at the
// barrier (every other shard runs to completion), and the exception from
// the lowest-numbered throwing shard is rethrown on the calling thread.
// The quiesce is unconditional (a scope guard inside dispatch), so no
// exception on the dispatch path — a throwing shard function, a throwing
// caller-side reduction between dispatches, an unwinding caller slice —
// can desynchronize the generation/pending protocol and leave workers
// parked at the generation barrier: the pool stays reusable and
// destructible after any of them (regression-tested in substrate_test).
class ThreadPool {
 public:
  // Maps the NetworkOptions::num_threads convention to a concrete degree
  // of parallelism: values >= 1 pass through, anything else (0 included)
  // resolves to std::thread::hardware_concurrency(), never below 1.
  static int resolve(int requested);

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  template <typename Fn>
  void run(Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    dispatch([](void* ctx, int shard) { (*static_cast<F*>(ctx))(shard); },
             &fn);
  }

 private:
  void dispatch(void (*fn)(void*, int), void* ctx);
  void worker_loop(int shard);
  void run_shard(int shard);

  int num_threads_;
  std::vector<std::thread> workers_;

  // Barrier state. A dispatch publishes the job under mu_ and bumps
  // generation_; workers run their shard and decrement pending_; the caller
  // waits for pending_ == 0. The mutex hand-off is what sequences a shard's
  // unsynchronized writes (mailbox slots, per-shard accumulators,
  // errors_[shard]) before the caller — and the next dispatch — reads them.
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  void (*job_)(void*, int) = nullptr;
  void* job_ctx_ = nullptr;
  std::vector<std::exception_ptr> errors_;  // one slot per shard
};

}  // namespace ecd::congest
