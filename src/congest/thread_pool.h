// Persistent bulk-synchronous worker pool for the CONGEST simulator
// (DESIGN.md §11 "Parallel execution", §15 "Barrier overhaul").
//
// The simulator's round structure is bulk-synchronous: every round is a
// compute phase over all vertices followed by a delivery phase over all
// ports, with a full barrier between them. This pool is shaped for exactly
// that pattern — one dispatch runs one or two phase functions across a
// team of shards and returns only when every shard is done, so the caller
// always observes the network between phases, never inside one.
//
// Synchronization is a flat sense-reversing barrier over atomics, not a
// mutex + condition_variable generation count: publishing a round is one
// release store per participating worker's doorbell, waiting is a bounded
// spin on the barrier epoch with a parked-waiter condition_variable
// fallback. A fused dispatch (run_phases) runs compute and delivery with a
// single team-internal barrier between them, so a simulated round pays one
// wake-up + two barrier crossings instead of two full dispatch/quiesce
// round trips. Workers left out of a round's member mask are never woken —
// their doorbells stay untouched — which is what lets sparse rounds skip
// idle shards entirely (DESIGN.md §15).
//
// Dispatch is allocation-free: run()/run_phases() type-erase the callable
// through a plain function pointer + context pointer instead of
// std::function, so a capturing lambda dispatched every simulated round
// never touches the heap (the substrate's zero-allocation contract,
// DESIGN.md §10).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace ecd::congest {

// Centralized sense-reversing barrier: the epoch counter is the sense. The
// last of `members` arrivals resets the count, bumps the epoch (releasing
// everyone's pre-barrier writes to everyone else), and wakes any parked
// waiter; the others spin on the epoch for `spin` iterations and then park
// on the condition variable. The parked/epoch handshake uses seq_cst on
// both sides so a waiter committing to park and a releaser deciding not to
// notify can never miss each other (see the comment in arrive_and_wait).
class FlatBarrier {
 public:
  void arrive_and_wait(int members, int spin);

 private:
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<int> parked_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

// A fixed team of num_threads() shards: run(fn) invokes fn(shard) for every
// shard in [0, num_threads()) — shard 0 on the calling thread, the rest on
// persistent workers — and blocks until all shards return. run_phases(m, fn)
// is the fused two-phase variant: fn(shard, 0) on every member shard, one
// internal barrier, then fn(shard, 1), skipped team-wide when any phase-0
// invocation threw (the delivery phase of a round must not run over a
// half-computed round — the serial loop would have aborted before it too).
//
// An exception thrown inside a shard is captured, the dispatch still
// quiesces (every member runs to completion and arrives at the final
// barrier), and the exception from the lowest-numbered throwing shard is
// rethrown on the calling thread. Quiescing is structural — the final
// barrier is on every member's path, caught or not — so a throwing shard
// function or a throwing caller-side reduction between dispatches can never
// desynchronize the protocol or leave workers parked: the pool stays
// reusable and destructible after any of them (regression-tested in
// substrate_test).
class ThreadPool {
 public:
  // Maps the NetworkOptions::num_threads convention to a concrete degree
  // of parallelism: values >= 1 pass through, anything else (0 included)
  // resolves to std::thread::hardware_concurrency(), never below 1.
  static int resolve(int requested);

  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  template <typename Fn>
  void run(Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    dispatch(
        [](void* ctx, int shard, int) { (*static_cast<F*>(ctx))(shard); },
        &fn, /*phases=*/1, /*members=*/nullptr);
  }

  // Fused two-phase dispatch. `members` is one byte per shard (nonzero =
  // participates) or null for the full team; shard 0 (the caller's slice)
  // always participates regardless of its byte. Workers whose byte is zero
  // are not woken and their doorbells are untouched.
  template <typename Fn>
  void run_phases(const unsigned char* members, Fn&& fn) {
    using F = std::remove_reference_t<Fn>;
    dispatch(
        [](void* ctx, int shard, int phase) {
          (*static_cast<F*>(ctx))(shard, phase);
        },
        &fn, /*phases=*/2, members);
  }

 private:
  // One worker's wake-up slot, padded so doorbell stores never false-share.
  // The doorbell is bumped to the dispatch generation when the worker is a
  // member of the round; parked/mu/cv implement the same spin-then-park
  // handshake as FlatBarrier, per worker.
  struct alignas(64) Waiter {
    std::atomic<std::uint64_t> doorbell{0};
    std::atomic<bool> parked{false};
    std::mutex mu;
    std::condition_variable cv;
  };

  void dispatch(void (*fn)(void*, int, int), void* ctx, int phases,
                const unsigned char* members);
  void ring(int shard);
  void worker_loop(int shard);
  void run_shard(int shard, int phase);

  int num_threads_;
  // Bounded pre-park spin. Zero when the team oversubscribes the machine's
  // hardware threads — spinning can only steal cycles from the shard being
  // waited on there — so a 1-CPU host degrades to the cv path gracefully.
  int spin_limit_;
  std::vector<std::thread> workers_;
  std::vector<Waiter> waiters_;  // sized num_threads_; slot 0 unused
  FlatBarrier barrier_;

  // Job slots, written by the dispatching caller before any doorbell rings
  // (the seq_cst doorbell store / acquire load pair orders them for the
  // woken worker) and stable for the whole dispatch.
  void (*job_)(void*, int, int) = nullptr;
  void* job_ctx_ = nullptr;
  int job_phases_ = 1;
  int round_members_ = 0;  // barrier population of the current dispatch
  std::uint64_t generation_ = 0;
  std::atomic<bool> stop_{false};
  // error_count_ counts throws from either phase (rethrow decision, read
  // after the final barrier). phase0_errors_ counts phase-0 throws only:
  // it is what every member checks after the internal barrier to decide
  // whether phase 1 runs. The split matters — a fast member throwing in
  // phase 1 must not make slower members skip their own phase 1 (that
  // would deliver some shards and not others, and could rethrow a higher
  // shard's exception than the serial order demands).
  std::atomic<int> error_count_{0};
  std::atomic<int> phase0_errors_{0};
  std::vector<std::exception_ptr> errors_;  // one slot per shard
};

}  // namespace ecd::congest
