// Cluster-scoped CONGEST primitives (§2.2–2.3 of the paper).
//
// Every primitive is a real distributed algorithm executed on the
// simulator, restricted to intra-cluster edges, for all clusters in
// parallel; round counts returned are *measured*. They are the building
// blocks of Theorem 2.6: leader election, BFS trees, Barenboim–Elkin
// orientation, lazy-random-walk information gathering (Lemma 2.4), and
// leader broadcasts.
#pragma once

#include <cstdint>
#include <vector>

#include "src/congest/network.h"
#include "src/graph/graph.h"

namespace ecd::congest {

// --- Leader election ---------------------------------------------------------

struct LeaderElectionResult {
  // Per vertex: the elected leader of its cluster (max (cluster-degree, id)
  // pair, as in the proof of Theorem 2.6).
  std::vector<graph::VertexId> leader_of;
  RunStats stats;
};
LeaderElectionResult elect_cluster_leaders(const graph::Graph& g,
                                           const std::vector<int>& cluster_of,
                                           const NetworkOptions& net = {});

// --- BFS trees ----------------------------------------------------------------

struct BfsTreeResult {
  std::vector<graph::VertexId> parent;  // kInvalidVertex for roots
  std::vector<int> depth;               // 0 at roots
  int max_depth = 0;
  RunStats stats;
};
// Builds a BFS tree of every cluster rooted at its leader.
BfsTreeResult build_cluster_bfs_trees(const graph::Graph& g,
                                      const std::vector<int>& cluster_of,
                                      const std::vector<graph::VertexId>& leader_of,
                                      const NetworkOptions& net = {});

// --- Low-out-degree orientation (Barenboim–Elkin peeling, §2.2) ---------------

struct OrientationResult {
  // owned[v] = intra-cluster edge ids v is responsible for announcing.
  std::vector<std::vector<graph::EdgeId>> owned;
  int max_out_degree = 0;
  int peeling_phases = 0;
  RunStats stats;
};
// `peel_threshold` must be >= the maximum min-degree over subgraphs (the
// degeneracy); for H-minor-free graphs this is O(1), known from the class.
OrientationResult orient_cluster_edges(const graph::Graph& g,
                                       const std::vector<int>& cluster_of,
                                       int peel_threshold,
                                       const NetworkOptions& net = {});

// --- Random-walk gather (Lemma 2.4) -------------------------------------------

struct GatherToken {
  graph::VertexId origin = graph::kInvalidVertex;
  std::vector<std::int64_t> payload;  // <= kMaxMessageWords - 0 words
};

struct GatherOptions {
  NetworkOptions net;
  std::uint64_t seed = 1;
};

// Forward walk of one token: the visited vertices (origin first) and, per
// hop, the round it happened. Kept as *local bookkeeping*: every vertex on
// the path remembers which way it forwarded the token, which is what makes
// the reversed delivery below routable — no path ever travels in a message.
struct TokenTrace {
  graph::VertexId origin = graph::kInvalidVertex;
  int cluster = -1;
  std::vector<graph::VertexId> visited;  // origin ... leader
  std::vector<std::int64_t> hop_round;   // round of each hop (size-1 entries)
};

struct GatherResult {
  // Per cluster: payloads absorbed by the leader (arbitrary order).
  std::vector<std::vector<std::vector<std::int64_t>>> delivered;
  // Token id of each delivered payload, aligned with `delivered`.
  std::vector<std::vector<std::int64_t>> delivered_ids;
  // Trace per token id (global numbering across all origins).
  std::vector<TokenTrace> traces;
  bool complete = false;  // all tokens absorbed before max_rounds
  RunStats stats;
};
// Routes each token from its origin to the origin's cluster leader by lazy
// random walks; tokens queue when an edge's per-round budget is full (the
// paper instead batches O(log n) messages per edge into O(log n) rounds —
// the same total work, measured here directly).
GatherResult random_walk_gather(const graph::Graph& g,
                                const std::vector<int>& cluster_of,
                                const std::vector<graph::VertexId>& leader_of,
                                const std::vector<std::vector<GatherToken>>& tokens,
                                const GatherOptions& options = {});

// --- Reliable random-walk gather under faults (DESIGN.md §12) -------------------

struct ReliableGatherOptions {
  // net.faults carries the fault plan; crash rounds are interpreted on the
  // gather's own cumulative round timeline (re-election rounds included).
  NetworkOptions net;
  std::uint64_t seed = 1;
  // Rounds per epoch before walkers give up, after which the host checks
  // progress, re-elects leaders for clusters whose leader crash-stopped,
  // and re-seeds undelivered tokens at their origins.
  int epoch_rounds = 512;
  int max_epochs = 8;
  // Rounds a sender waits for an ack before retransmitting on the same
  // port; 0 derives 4 + 2 * max_delay_rounds from the fault plan.
  int ack_timeout = 0;
};

struct ReliableGatherResult {
  // Same shape as random_walk_gather's result; stats accumulate over all
  // epochs and re-elections. complete == true iff every non-orphaned token
  // was absorbed by a leader that was still alive at the last epoch
  // boundary. A token is orphaned when its origin crash-stops before
  // delivery: no live vertex can re-introduce it, so it drops out of the
  // completeness contract (and out of `delivered`) instead of wedging it.
  GatherResult gather;
  std::int64_t retransmissions = 0;  // token re-sends after ack timeout
  std::int64_t ack_messages = 0;     // ack messages sent (batched)
  int epochs = 0;
  int reelections = 0;
  // Leaders in effect when the gather finished (differs from the input
  // when a crash forced re-election).
  std::vector<graph::VertexId> final_leader_of;
};

// random_walk_gather hardened against the fault layer: every token hop
// carries a per-token sequence number, receivers acknowledge (acks batched,
// kMaxMessageWords ids per message) and deduplicate on (token, seq), and
// senders retransmit unacknowledged hops on the same port — so drops,
// duplicates, and delays cannot lose or double-deliver a token, and the
// recorded traces stay valid for reverse_delivery. Crash-stopped leaders
// are replaced by host-orchestrated re-election between epochs; tokens
// stranded at crashed or given-up walkers restart from their origins.
ReliableGatherResult reliable_walk_gather(
    const graph::Graph& g, const std::vector<int>& cluster_of,
    const std::vector<graph::VertexId>& leader_of,
    const std::vector<std::vector<GatherToken>>& tokens,
    const ReliableGatherOptions& options = {});

// --- Leader broadcast -----------------------------------------------------------

struct BroadcastResult {
  // value received by each vertex (the leader's word), -1 if unreachable.
  std::vector<std::int64_t> value;
  RunStats stats;
};
// Floods one O(log n)-bit word from each cluster leader to its cluster.
BroadcastResult broadcast_from_leaders(const graph::Graph& g,
                                       const std::vector<int>& cluster_of,
                                       const std::vector<graph::VertexId>& leader_of,
                                       const std::vector<std::int64_t>& leader_value,
                                       const NetworkOptions& net = {});

// --- Reversed-walk result delivery (§2.2, last paragraph) -----------------------

struct ReverseDeliveryResult {
  // Reply payload received by each origin vertex (one per token, in token
  // id order restricted to that origin).
  std::vector<std::vector<std::vector<std::int64_t>>> received;
  RunStats stats;
  // True iff the reverse schedule respected the per-edge budget every round
  // (it must: it mirrors the forward schedule hop by hop).
  bool load_ok = false;
};

// Delivers `reply[token_id]` from each cluster leader back to the token's
// origin by replaying the recorded forward schedule in reverse: the hop
// taken at forward round r is traversed backwards at round T - r, so
// per-edge congestion is identical to the forward run and the delivery
// takes exactly as many rounds. `bandwidth` is verified, not assumed.
ReverseDeliveryResult reverse_delivery(
    int num_vertices, const GatherResult& gather,
    const std::vector<std::vector<std::int64_t>>& reply, int bandwidth);

// --- Deterministic tree gather (the Lemma 2.5 role) ----------------------------

struct TreeGatherResult {
  std::vector<std::vector<std::vector<std::int64_t>>> delivered;  // per cluster
  bool complete = false;
  congest::RunStats stats;
};
// Deterministic alternative to the random-walk gather: tokens climb the
// cluster BFS tree one hop per round, `bandwidth` tokens per edge per
// round. Worst-case congestion at the root can make this slower than the
// walks on large clusters (Lemma 2.5 exists precisely to avoid that); the
// ablation bench compares the two.
TreeGatherResult tree_gather(const graph::Graph& g,
                             const std::vector<int>& cluster_of,
                             const std::vector<graph::VertexId>& leader_of,
                             const std::vector<graph::VertexId>& bfs_parent,
                             const std::vector<std::vector<GatherToken>>& tokens,
                             const NetworkOptions& net = {});

// --- Convergecast ----------------------------------------------------------------

enum class Fold { kSum, kMin, kMax };

struct ConvergecastResult {
  // Per cluster: fold of all vertices' values, available at the leader.
  std::vector<std::int64_t> sum;
  congest::RunStats stats;
};
// Folds one O(log n)-bit value per vertex up the BFS tree (each tree edge
// carries exactly one partial aggregate, so bandwidth 1 suffices).
ConvergecastResult convergecast_fold(const graph::Graph& g,
                                     const std::vector<int>& cluster_of,
                                     const std::vector<graph::VertexId>& leader_of,
                                     const std::vector<graph::VertexId>& bfs_parent,
                                     const std::vector<int>& depth,
                                     const std::vector<std::int64_t>& value,
                                     Fold fold, const NetworkOptions& net = {});

inline ConvergecastResult convergecast_sum(
    const graph::Graph& g, const std::vector<int>& cluster_of,
    const std::vector<graph::VertexId>& leader_of,
    const std::vector<graph::VertexId>& bfs_parent,
    const std::vector<int>& depth, const std::vector<std::int64_t>& value,
    const NetworkOptions& net = {}) {
  return convergecast_fold(g, cluster_of, leader_of, bfs_parent, depth, value,
                           Fold::kSum, net);
}

// --- Cluster diameter self-check (§2.3, failure detection) ---------------------

struct DiameterCheckResult {
  // Per vertex: true if its cluster verified diameter <= bound.
  std::vector<bool> within_bound;
  RunStats stats;
};
// The paper's *-marking protocol: each vertex computes the max id within
// distance `bound` in its cluster; disagreement with a neighbor marks the
// cluster as too wide. All vertices of a cluster agree on the outcome.
DiameterCheckResult check_cluster_diameter(const graph::Graph& g,
                                           const std::vector<int>& cluster_of,
                                           int bound,
                                           const NetworkOptions& net = {});

}  // namespace ecd::congest
