// Round-level tracing & congestion metrics for the CONGEST simulator
// (DESIGN.md §9 "Observability").
//
// Every claim in this reproduction — Lemma 2.4's O(log n)-messages-per-edge
// walk congestion, Theorem 2.6's phase-by-phase round budget, the
// LOCAL–CONGEST gap — is a statement about per-edge, per-round traffic.
// This layer turns those proofs into inspectable data:
//
//   * TraceSink — observer interface the Network run loop feeds with
//     structured events: round boundaries, per-edge load samples,
//     per-message-tag counts, congestion-limit violations, and named
//     phase spans (TRACE_SPAN) that nest.
//   * MetricsCollector — the standard sink: aggregates a span tree with
//     per-span rounds/messages/words/max-edge-load, per-round samples on a
//     global (cross-run) timeline, per-tag traffic, per-edge totals, and a
//     histogram of edge load per (edge, round) sample.
//   * Exporters — JSONL (one event object per line) and Chrome
//     `trace_event` format (load into chrome://tracing or Perfetto), plus
//     a host-side hotspot report (top-k congested edges, per-phase load
//     histogram, p50/p99 messages-per-edge-per-round).
//
// The sink hangs off NetworkOptions::trace; a null sink (the default)
// costs one predictable branch per outbox and nothing else.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/congest/network.h"

namespace ecd::congest {

// Observer for simulator events. All callbacks have empty default bodies so
// sinks override only what they need. One TraceSink instance may observe
// many Network runs (the framework's phases are separate runs); rounds
// passed to callbacks restart at 0 per run — sinks that want a continuous
// timeline keep their own cumulative offset (MetricsCollector does).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // A Network::run started / finished (stats are that run's totals).
  virtual void on_run_begin(int num_vertices, int num_edges,
                            const NetworkOptions& options) {
    (void)num_vertices, (void)num_edges, (void)options;
  }
  virtual void on_run_end(const RunStats& stats) { (void)stats; }

  // Delivery of round `round` completed with these per-round totals.
  virtual void on_round_end(std::int64_t round, std::int64_t messages,
                            std::int64_t words, int max_edge_load) {
    (void)round, (void)messages, (void)words, (void)max_edge_load;
  }

  // Directed edge from->to carried `messages` messages totalling `words`
  // words in round `round`. Only called for edges that carried traffic.
  virtual void on_edge_load(std::int64_t round, graph::VertexId from,
                            graph::VertexId to, int messages,
                            std::int64_t words) {
    (void)round, (void)from, (void)to, (void)messages, (void)words;
  }

  // One message with tag `tag` (MsgTag or user value) was delivered.
  virtual void on_message(std::int64_t round, int tag, int words) {
    (void)round, (void)tag, (void)words;
  }

  // `events` scheduled topology events (FaultPlan::churn) fired before
  // round `round`'s compute phase. Only called when at least one fired.
  virtual void on_churn(std::int64_t round, int events) {
    (void)round, (void)events;
  }

  // A congestion-limit violation is about to be thrown.
  virtual void on_violation(const CongestionError& err) { (void)err; }

  // Named phase spans; may nest (a span closed is the innermost open one).
  virtual void on_span_begin(const std::string& name) { (void)name; }
  virtual void on_span_end(const std::string& name) { (void)name; }
};

// RAII guard for a named span. Null sink => no-op.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, std::string name)
      : sink_(sink), name_(std::move(name)) {
    if (sink_) sink_->on_span_begin(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (sink_) sink_->on_span_end(name_);
  }

 private:
  TraceSink* sink_;
  std::string name_;
};

#define ECD_TRACE_CONCAT_INNER(a, b) a##b
#define ECD_TRACE_CONCAT(a, b) ECD_TRACE_CONCAT_INNER(a, b)
// Opens a span for the rest of the enclosing scope.
#define TRACE_SPAN(sink, name)                                       \
  ::ecd::congest::TraceSpan ECD_TRACE_CONCAT(ecd_trace_span_,        \
                                             __LINE__)((sink), (name))

// Aggregates of one completed (or still open) span. Spans accrue every
// event that happens while they are open, so a parent's numbers include
// its children's.
struct SpanStats {
  std::string name;
  int depth = 0;                 // 0 = top-level phase
  std::int64_t begin_round = 0;  // global round index when opened
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t words = 0;
  int max_edge_load = 0;
  std::int64_t violations = 0;
  bool closed = false;
  // edge load -> number of (edge, round) samples with that load.
  std::map<int, std::int64_t> load_histogram;
};

struct RoundSample {
  std::int64_t round = 0;  // global (cross-run) index
  std::int64_t messages = 0;
  std::int64_t words = 0;
  int max_edge_load = 0;
};

struct TagStats {
  std::int64_t messages = 0;
  std::int64_t words = 0;
};

struct EdgeTraffic {
  graph::VertexId from = graph::kInvalidVertex;
  graph::VertexId to = graph::kInvalidVertex;
  std::int64_t messages = 0;
  std::int64_t words = 0;
  int peak_load = 0;  // max messages in a single round
};

struct ViolationRecord {
  CongestionError::Kind kind = CongestionError::Kind::kBandwidth;
  std::int64_t round = 0;  // global round index
  graph::VertexId from = graph::kInvalidVertex;
  graph::VertexId to = graph::kInvalidVertex;
  int used = 0;
  int budget = 0;
};

// The standard metrics sink. Attach one instance to NetworkOptions::trace
// (directly or via FrameworkOptions::trace) and read it after the run(s).
class MetricsCollector : public TraceSink {
 public:
  void on_run_begin(int num_vertices, int num_edges,
                    const NetworkOptions& options) override;
  void on_run_end(const RunStats& stats) override;
  void on_round_end(std::int64_t round, std::int64_t messages,
                    std::int64_t words, int max_edge_load) override;
  void on_edge_load(std::int64_t round, graph::VertexId from,
                    graph::VertexId to, int messages,
                    std::int64_t words) override;
  void on_message(std::int64_t round, int tag, int words) override;
  void on_violation(const CongestionError& err) override;
  void on_span_begin(const std::string& name) override;
  void on_span_end(const std::string& name) override;

  // Grand totals across every observed run. rounds/messages/words sum the
  // runs; max_edge_load is the max over them — exactly how RunStats from
  // the individual runs combine.
  RunStats totals() const;
  int runs_observed() const { return runs_observed_; }

  // Spans in opening order (pre-order of the span tree); open spans have
  // closed == false and partial numbers.
  const std::vector<SpanStats>& spans() const { return spans_; }
  // Per-round samples on the global timeline (one per executed round).
  const std::vector<RoundSample>& rounds() const { return rounds_; }
  // Traffic per message tag (key: MsgTag or user tag).
  const std::map<int, TagStats>& tag_stats() const { return tags_; }
  const std::vector<ViolationRecord>& violations() const {
    return violations_;
  }

  // Directed edges sorted by total messages, descending; at most k
  // (k < 0: all edges).
  std::vector<EdgeTraffic> top_edges(int k) const;
  // Global histogram: edge load -> number of (edge, round) samples.
  const std::map<int, std::int64_t>& load_histogram() const {
    return load_histogram_;
  }
  // Percentile (p in [0,100]) of messages-per-edge-per-round over all
  // loaded (edge, round) samples; 0 when no traffic was observed.
  double load_percentile(double p) const;

 private:
  int runs_observed_ = 0;
  std::int64_t run_base_round_ = 0;  // global round offset of current run
  std::int64_t total_rounds_ = 0;
  std::int64_t total_messages_ = 0;
  std::int64_t total_words_ = 0;
  int max_edge_load_ = 0;
  std::vector<SpanStats> spans_;
  std::vector<std::size_t> open_spans_;  // indices into spans_
  std::vector<RoundSample> rounds_;
  std::map<int, TagStats> tags_;
  std::vector<ViolationRecord> violations_;
  std::unordered_map<std::uint64_t, EdgeTraffic> edges_;
  std::map<int, std::int64_t> load_histogram_;
};

// --- Exporters -----------------------------------------------------------------

// One JSON object per line: a "meta" header, then "span", "round", "tag",
// "edge" and "violation" records (schema in DESIGN.md §9).
void export_jsonl(const MetricsCollector& collector, std::ostream& os);

// Chrome trace_event JSON ({"traceEvents": [...]}): spans as complete
// ("X") events and per-round counter ("C") tracks, 1 round = 1 µs. Open
// with chrome://tracing or https://ui.perfetto.dev.
void export_chrome_trace(const MetricsCollector& collector, std::ostream& os);

// Human-readable congestion hotspot summary: top-k congested directed
// edges, per-phase edge-load histogram, and p50/p99 of
// messages-per-edge-per-round.
std::string hotspot_report(const MetricsCollector& collector, int top_k = 10);

}  // namespace ecd::congest
