// Round-level tracing & congestion metrics for the CONGEST simulator
// (DESIGN.md §9 "Observability").
//
// Every claim in this reproduction — Lemma 2.4's O(log n)-messages-per-edge
// walk congestion, Theorem 2.6's phase-by-phase round budget, the
// LOCAL–CONGEST gap — is a statement about per-edge, per-round traffic.
// This layer turns those proofs into inspectable data:
//
//   * TraceSink — observer interface the Network run loop feeds with
//     structured events: round boundaries, per-edge load samples,
//     per-message-tag counts, congestion-limit violations, and named
//     phase spans (TRACE_SPAN) that nest.
//   * MetricsCollector — the standard sink: aggregates a span tree with
//     per-span rounds/messages/words/max-edge-load, per-round samples on a
//     global (cross-run) timeline, per-tag traffic, per-edge totals, and a
//     histogram of edge load per (edge, round) sample.
//   * Exporters — JSONL (one event object per line) and Chrome
//     `trace_event` format (load into chrome://tracing or Perfetto), plus
//     a host-side hotspot report (top-k congested edges, per-phase load
//     histogram, p50/p99 messages-per-edge-per-round).
//
// The sink hangs off NetworkOptions::trace; a null sink (the default)
// costs one predictable branch per outbox and nothing else.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/congest/network.h"

namespace ecd::congest {

// Observer for simulator events. All callbacks have empty default bodies so
// sinks override only what they need. One TraceSink instance may observe
// many Network runs (the framework's phases are separate runs); rounds
// passed to callbacks restart at 0 per run — sinks that want a continuous
// timeline keep their own cumulative offset (MetricsCollector does).
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // A Network::run started / finished (stats are that run's totals).
  virtual void on_run_begin(int num_vertices, int num_edges,
                            const NetworkOptions& options) {
    (void)num_vertices, (void)num_edges, (void)options;
  }
  virtual void on_run_end(const RunStats& stats) { (void)stats; }

  // Delivery of round `round` completed with these per-round totals.
  virtual void on_round_end(std::int64_t round, std::int64_t messages,
                            std::int64_t words, int max_edge_load) {
    (void)round, (void)messages, (void)words, (void)max_edge_load;
  }

  // Directed edge from->to carried `messages` messages totalling `words`
  // words in round `round`. Only called for edges that carried traffic.
  virtual void on_edge_load(std::int64_t round, graph::VertexId from,
                            graph::VertexId to, int messages,
                            std::int64_t words) {
    (void)round, (void)from, (void)to, (void)messages, (void)words;
  }

  // One message with tag `tag` (MsgTag or user value) was delivered.
  virtual void on_message(std::int64_t round, int tag, int words) {
    (void)round, (void)tag, (void)words;
  }

  // `events` scheduled topology events (FaultPlan::churn) fired before
  // round `round`'s compute phase. Only called when at least one fired.
  virtual void on_churn(std::int64_t round, int events) {
    (void)round, (void)events;
  }

  // One topology event fired before round `round`'s compute phase. Edge
  // events carry both endpoints; node events carry u with
  // v == graph::kInvalidVertex. Emitted per event, in schedule order, from
  // the caller thread — immediately before the matching lump on_churn.
  virtual void on_churn_event(std::int64_t round, ChurnKind kind,
                              graph::VertexId u, graph::VertexId v) {
    (void)round, (void)kind, (void)u, (void)v;
  }

  // `count` in-flight messages stranded on the dead edge from->to were
  // purged during round `round`'s delivery (churn killed the edge under
  // pending traffic — delayed messages, undelivered sends). Dead-port
  // *send* drops are not per-event (the send never entered a mailbox);
  // they appear only in RunStats::messages_purged.
  virtual void on_churn_purge(std::int64_t round, graph::VertexId from,
                              graph::VertexId to, int count) {
    (void)round, (void)from, (void)to, (void)count;
  }

  // A congestion-limit violation is about to be thrown.
  virtual void on_violation(const CongestionError& err) { (void)err; }

  // The run is unwinding abnormally: `reason` is "congestion"
  // (CongestionError — the violation above was already reported) or
  // "max_rounds". Fired from Network::run before the exception propagates;
  // flight recorders use it to dump their ring (post-mortem artifact).
  virtual void on_abort(const char* reason) { (void)reason; }

  // Named phase spans; may nest (a span closed is the innermost open one).
  virtual void on_span_begin(const std::string& name) { (void)name; }
  virtual void on_span_end(const std::string& name) { (void)name; }
};

// RAII guard for a named span. Null sink => no-op.
class TraceSpan {
 public:
  TraceSpan(TraceSink* sink, std::string name)
      : sink_(sink), name_(std::move(name)) {
    if (sink_) sink_->on_span_begin(name_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() {
    if (sink_) sink_->on_span_end(name_);
  }

 private:
  TraceSink* sink_;
  std::string name_;
};

#define ECD_TRACE_CONCAT_INNER(a, b) a##b
#define ECD_TRACE_CONCAT(a, b) ECD_TRACE_CONCAT_INNER(a, b)
// Opens a span for the rest of the enclosing scope.
#define TRACE_SPAN(sink, name)                                       \
  ::ecd::congest::TraceSpan ECD_TRACE_CONCAT(ecd_trace_span_,        \
                                             __LINE__)((sink), (name))

// Aggregates of one completed (or still open) span. Spans accrue every
// event that happens while they are open, so a parent's numbers include
// its children's.
struct SpanStats {
  std::string name;
  int depth = 0;                 // 0 = top-level phase
  std::int64_t begin_round = 0;  // global round index when opened
  std::int64_t rounds = 0;
  std::int64_t messages = 0;
  std::int64_t words = 0;
  int max_edge_load = 0;
  std::int64_t violations = 0;
  bool closed = false;
  // edge load -> number of (edge, round) samples with that load.
  std::map<int, std::int64_t> load_histogram;
};

struct RoundSample {
  std::int64_t round = 0;  // global (cross-run) index
  std::int64_t messages = 0;
  std::int64_t words = 0;
  int max_edge_load = 0;
};

struct TagStats {
  std::int64_t messages = 0;
  std::int64_t words = 0;
};

struct EdgeTraffic {
  graph::VertexId from = graph::kInvalidVertex;
  graph::VertexId to = graph::kInvalidVertex;
  std::int64_t messages = 0;
  std::int64_t words = 0;
  int peak_load = 0;  // max messages in a single round
};

struct ViolationRecord {
  CongestionError::Kind kind = CongestionError::Kind::kBandwidth;
  std::int64_t round = 0;  // global round index
  graph::VertexId from = graph::kInvalidVertex;
  graph::VertexId to = graph::kInvalidVertex;
  int used = 0;
  int budget = 0;
};

// Aggregated topology-churn observations (DESIGN.md §17 events as seen by
// the trace layer).
struct ChurnStats {
  std::int64_t edge_inserts = 0;
  std::int64_t edge_deletes = 0;
  std::int64_t node_leaves = 0;
  std::int64_t node_joins = 0;
  std::int64_t purge_events = 0;      // dead edges purged under traffic
  std::int64_t messages_purged = 0;   // messages those purges removed
  std::int64_t total_events() const {
    return edge_inserts + edge_deletes + node_leaves + node_joins;
  }
};

// The standard metrics sink. Attach one instance to NetworkOptions::trace
// (directly or via FrameworkOptions::trace) and read it after the run(s).
class MetricsCollector : public TraceSink {
 public:
  void on_run_begin(int num_vertices, int num_edges,
                    const NetworkOptions& options) override;
  void on_run_end(const RunStats& stats) override;
  void on_round_end(std::int64_t round, std::int64_t messages,
                    std::int64_t words, int max_edge_load) override;
  void on_edge_load(std::int64_t round, graph::VertexId from,
                    graph::VertexId to, int messages,
                    std::int64_t words) override;
  void on_message(std::int64_t round, int tag, int words) override;
  void on_churn_event(std::int64_t round, ChurnKind kind, graph::VertexId u,
                      graph::VertexId v) override;
  void on_churn_purge(std::int64_t round, graph::VertexId from,
                      graph::VertexId to, int count) override;
  void on_violation(const CongestionError& err) override;
  void on_span_begin(const std::string& name) override;
  void on_span_end(const std::string& name) override;

  // Grand totals across every observed run. rounds/messages/words sum the
  // runs; max_edge_load is the max over them — exactly how RunStats from
  // the individual runs combine.
  RunStats totals() const;
  int runs_observed() const { return runs_observed_; }

  // Spans in opening order (pre-order of the span tree); open spans have
  // closed == false and partial numbers.
  const std::vector<SpanStats>& spans() const { return spans_; }
  // Per-round samples on the global timeline (one per executed round).
  const std::vector<RoundSample>& rounds() const { return rounds_; }
  // Traffic per message tag (key: MsgTag or user tag).
  const std::map<int, TagStats>& tag_stats() const { return tags_; }
  const std::vector<ViolationRecord>& violations() const {
    return violations_;
  }
  // Topology-churn totals across every observed run (all zero on
  // churn-free networks).
  const ChurnStats& churn_stats() const { return churn_; }

  // Directed edges sorted by total messages, descending; at most k
  // (k < 0: all edges).
  std::vector<EdgeTraffic> top_edges(int k) const;
  // Global histogram: edge load -> number of (edge, round) samples.
  const std::map<int, std::int64_t>& load_histogram() const {
    return load_histogram_;
  }
  // Percentile (p in [0,100]) of messages-per-edge-per-round over all
  // loaded (edge, round) samples; 0 when no traffic was observed.
  double load_percentile(double p) const;

 private:
  int runs_observed_ = 0;
  std::int64_t run_base_round_ = 0;  // global round offset of current run
  std::int64_t total_rounds_ = 0;
  std::int64_t total_messages_ = 0;
  std::int64_t total_words_ = 0;
  int max_edge_load_ = 0;
  std::vector<SpanStats> spans_;
  std::vector<std::size_t> open_spans_;  // indices into spans_
  std::vector<RoundSample> rounds_;
  std::map<int, TagStats> tags_;
  std::vector<ViolationRecord> violations_;
  std::unordered_map<std::uint64_t, EdgeTraffic> edges_;
  std::map<int, std::int64_t> load_histogram_;
  ChurnStats churn_;
};

// Bounded-memory post-mortem sink (DESIGN.md §18): a preallocated ring of
// compact POD events retaining the most recent `ring_capacity` events,
// additionally trimmed at each round boundary so at most the last
// `keep_rounds` rounds survive. Steady state allocates nothing (audited by
// sparse_alloc_test) and memory is fixed at construction — the sink for
// traced runs at n >= 10^6, where MetricsCollector's per-round/per-edge
// growth is the problem this class exists to avoid. On an abnormal run end
// (CongestionError, max_rounds — TraceSink::on_abort) the ring dumps
// itself to the configured stream automatically, shipping the last K
// rounds of events as the failure artifact.
class FlightRecorder : public TraceSink {
 public:
  struct Options {
    int ring_capacity = 1 << 16;  // events retained, absolute ceiling
    int keep_rounds = 64;         // rounds retained behind the newest
  };
  FlightRecorder();
  explicit FlightRecorder(Options options);

  void on_run_begin(int num_vertices, int num_edges,
                    const NetworkOptions& options) override;
  void on_run_end(const RunStats& stats) override;
  void on_round_end(std::int64_t round, std::int64_t messages,
                    std::int64_t words, int max_edge_load) override;
  void on_edge_load(std::int64_t round, graph::VertexId from,
                    graph::VertexId to, int messages,
                    std::int64_t words) override;
  void on_message(std::int64_t round, int tag, int words) override;
  void on_churn_event(std::int64_t round, ChurnKind kind, graph::VertexId u,
                      graph::VertexId v) override;
  void on_churn_purge(std::int64_t round, graph::VertexId from,
                      graph::VertexId to, int count) override;
  void on_violation(const CongestionError& err) override;
  void on_abort(const char* reason) override;

  // Dump target for on_abort (and, when dump_on_purge, the first churn
  // purge of a run). Null (the default) disables auto-dumping.
  void set_auto_dump(std::ostream* os, bool dump_on_purge = false) {
    auto_dump_ = os;
    dump_on_purge_ = dump_on_purge;
  }

  // Events currently retained, oldest first.
  std::int64_t events_retained() const { return size_; }
  std::int64_t events_dropped() const { return dropped_; }
  std::int64_t last_round() const { return last_round_; }
  // Writes the retained events as JSONL: a "flight" meta line, then one
  // event object per line, oldest first.
  void dump_jsonl(std::ostream& os) const;

  // One ring slot. Type-specific payloads share the int64 fields; unused
  // fields are zero.
  enum class EventKind : std::uint8_t {
    kRunBegin,   // a = vertices, b = edges
    kRound,      // a = messages, b = words, c = max_edge_load
    kEdgeLoad,   // a = from, b = to, c = messages, d = words
    kMessage,    // a = tag, b = words
    kChurn,      // a = ChurnKind, b = u, c = v
    kPurge,      // a = from, b = to, c = count
    kViolation,  // a = kind, b = from, c = to, d = used<<32|budget
    kRunEnd,     // a = rounds, b = messages, c = words
  };
  struct Event {
    EventKind kind = EventKind::kRound;
    std::int64_t round = 0;
    std::int64_t a = 0;
    std::int64_t b = 0;
    std::int64_t c = 0;
    std::int64_t d = 0;
  };

 private:
  void push(const Event& e);
  void trim_rounds(std::int64_t newest_round);

  Options options_;
  std::vector<Event> ring_;     // capacity fixed at construction
  std::int64_t head_ = 0;       // index of oldest retained event
  std::int64_t size_ = 0;       // events retained
  std::int64_t dropped_ = 0;    // events overwritten or trimmed
  std::int64_t last_round_ = -1;
  std::int64_t run_base_round_ = 0;  // global round offset of current run
  std::ostream* auto_dump_ = nullptr;
  bool dump_on_purge_ = false;
  bool purge_dumped_ = false;
};

// --- Exporters -----------------------------------------------------------------

// One JSON object per line: a "meta" header, then "span", "round", "tag",
// "edge" and "violation" records (schema in DESIGN.md §9).
void export_jsonl(const MetricsCollector& collector, std::ostream& os);

// Chrome trace_event JSON ({"traceEvents": [...]}): spans as complete
// ("X") events and per-round counter ("C") tracks, 1 round = 1 µs. Open
// with chrome://tracing or https://ui.perfetto.dev.
void export_chrome_trace(const MetricsCollector& collector, std::ostream& os);

// Human-readable congestion hotspot summary: top-k congested directed
// edges, per-phase edge-load histogram, and p50/p99 of
// messages-per-edge-per-round.
std::string hotspot_report(const MetricsCollector& collector, int top_k = 10);

}  // namespace ecd::congest
