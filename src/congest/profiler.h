// Wall-clock execution profiler for the simulator's round loops
// (DESIGN.md §14).
//
// The existing observability layers are deliberately *logical*: TraceSink
// (PR 1) streams per-event rounds/messages, MetricsRegistry (DESIGN.md §13)
// aggregates rounds, traffic and causal depth — none of them ever looks at
// a clock, which is what keeps their snapshots bit-identical across thread
// counts. That also means none of them can explain where the microseconds
// of a parallel run go (ROADMAP: "profile the barrier + shard handoff").
//
// ExecutionProfiler is the wall-clock side of the house. Attached through
// NetworkOptions::profiler it timestamps each shard's slice of every round
// — compute, delivery (with the fault-injection subtotal), the caller-side
// metrics/stats reduction, and crucially the *barrier wait* between phases
// — into preallocated per-shard ring buffers. Contracts:
//
//   * opt-in and inert: a null pointer costs one predictable branch per
//     phase; no clock is ever read;
//   * single-writer: lane s is written only by the thread running shard s
//     (the reduction lanes by the caller, who *is* shard 0's thread); the
//     caller reads other lanes only at the round barrier or after the run,
//     both ordered by the ThreadPool's mutex hand-off;
//   * zero-alloc steady state: lanes and rings are sized when a Network
//     binds the profiler (construction time); begin_run/round hooks never
//     allocate (DESIGN.md §10 holds with profiling on);
//   * deterministic outputs stay bit-identical: the profiler only observes.
//     Wall-clock data lives here, never inside MetricsRegistry snapshots —
//     metrics/trace fixtures do not change when profiling is enabled.
//
// Aggregates derived from the samples: per-shard time share, per-round
// load-imbalance factor (max/mean busy shard time), barrier-wait fraction,
// a dispatch-latency histogram, and an Amdahl-style achievable-speedup
// estimate. Exports: a real-thread Chrome trace_event timeline (one tid
// per shard — complementing trace.h's logical timeline), the schema-stable
// "ecd-profile-v1" JSON document, and a human-readable table (ecd_cli
// profile).
#pragma once

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/congest/metrics.h"

namespace ecd::congest {

// Phase slots of one shard-round, in reporting order.
enum ProfilePhase : int {
  kProfileCompute = 0,  // stepping vertices; includes Context::send deposits
  kProfileDeliver,      // retire + fault pass + delivery accounting
  kProfileFault,        // fault-injection subtotal (inside deliver)
  kProfileReduce,       // caller-side barrier reduction (stats + metrics)
  kProfileBarrier,      // waiting at the phase barrier / shard handoff
  kProfileIdle,         // rounds the shard sat out (sparse fast path)
  kProfileChurn,        // applying scheduled topology events (caller thread)
  kProfilePhaseCount,
};
const char* profile_phase_name(int phase);

class ExecutionProfiler {
 public:
  struct Options {
    // Per-shard round samples kept for the timeline export. Older rounds
    // wrap (aggregates still cover every round); minimum 2.
    int ring_capacity = 4096;
  };

  // One shard's slice of one simulated round. Timestamps are nanoseconds
  // from the profiler's construction; *_ns fields are durations.
  struct Sample {
    std::int64_t round = -1;  // global profiled-round index (across runs)
    std::int64_t compute_start = 0;
    std::int64_t compute_ns = 0;
    std::int64_t barrier_ns = 0;  // compute end -> deliver start
    std::int64_t deliver_start = 0;
    std::int64_t deliver_ns = 0;
    std::int64_t fault_ns = 0;      // subtotal of deliver_ns
    std::int64_t reduce_start = 0;  // caller lane (shard 0) only
    std::int64_t reduce_ns = 0;
  };

  struct ShardTotals {
    std::int64_t rounds = 0;
    std::int64_t phase_ns[kProfilePhaseCount] = {};
  };

  struct ShardSummary {
    int shard = 0;
    ShardTotals totals;
    // This shard's busy time (compute + deliver + reduce) as a fraction of
    // all shards' busy time.
    double busy_share = 0.0;
  };

  struct Summary {
    int num_shards = 0;      // lanes that observed at least one round
    std::int64_t runs = 0;   // Network::run calls profiled
    std::int64_t rounds = 0; // simulated rounds profiled
    std::int64_t wall_ns = 0;  // sum of run wall-clock durations
    ShardTotals total;         // phase totals summed over shards
    std::vector<ShardSummary> shards;
    // Sum over shards of barrier wait, divided by busy + barrier time.
    double barrier_wait_fraction = 0.0;
    // Sum over rounds of max busy shard time / mean busy shard time.
    double load_imbalance = 1.0;
    // Amdahl: reduce is serial, compute + deliver is parallel work.
    double serial_fraction = 0.0;
    double achievable_speedup = 1.0;  // at num_shards shards
    // Caller's dispatch mark -> each shard's compute start (parallel loop
    // only), merged over shards.
    LogHistogram dispatch_latency;
  };

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  ExecutionProfiler();
  explicit ExecutionProfiler(Options options);

  int ring_capacity() const { return ring_capacity_; }
  std::int64_t rounds_profiled() const { return global_round_; }
  std::int64_t runs_profiled() const { return runs_; }

  // Discards every sample and aggregate; keeps the lane allocations.
  void reset();

  // --- Collection hooks (called by Network; see network.cpp) ---------------
  // Grows the lane table to `num_shards` (allocates; Network construction
  // time only — never on the round path).
  void bind(int num_shards);
  // Caller thread, bracketing one Network::run over `num_shards` shards.
  void begin_run(int num_shards);
  void end_run();
  // Caller thread, immediately before the compute dispatch of a round.
  void mark_dispatch();
  // Shard-phase brackets, called on the thread running shard s. The
  // delivery bracket takes the measured fault-injection subtotal.
  // deliver_begin on a lane whose compute bracket did not run this round
  // (a shard skipped by the sparse fast path whose ports are delivered by
  // another worker) opens a fresh deliver-only sample with zero compute
  // and zero barrier time.
  void compute_begin(int s);
  void compute_end(int s);
  void deliver_begin(int s);
  void deliver_end(int s, std::int64_t fault_ns);
  // Caller thread, on a round executed without dispatching the team (the
  // sparse fast path's serial fallback, profiled on lane 0): accrues the
  // time since each other lane's last hand-off stamp as idle — the shard
  // was not waiting at a barrier, there was no round to wait for — and
  // advances the stamp so the wait accounting stays coherent when the
  // shard next runs.
  void mark_idle_others();
  // Caller thread, between rounds: accrues the measured cost of one
  // apply_churn pass (scheduled topology events, DESIGN.md §17) on the
  // caller's lane. The span sits inside what lane 0 otherwise classifies
  // as barrier/idle time, so totals may overlap those phases slightly —
  // acceptable for a between-rounds bookkeeping pass that is tiny next to
  // the phases proper. Inline and allocation-free.
  void add_churn_ns(std::int64_t ns) {
    if (!lanes_.empty()) lanes_[0].totals.phase_ns[kProfileChurn] += ns;
  }
  // Caller thread, bracketing the barrier reduction (per-shard stats fold +
  // metrics record/apply). Attributed to the caller's lane (shard 0).
  void reduce_begin();
  void reduce_end();
  // Caller thread, after reduce_end: folds the round's per-shard busy times
  // into the load-imbalance accumulators and advances the round index.
  void round_end();

  // --- Reports (host side; allocate freely) --------------------------------
  Summary summary() const;
  // Chrome trace_event timeline from the ring samples: one tid per shard,
  // "X" slices for compute/barrier/deliver (+ reduce on shard 0).
  void write_chrome_trace(std::ostream& os) const;

 private:
  struct alignas(64) Lane {
    std::vector<Sample> ring;
    std::int64_t rows = 0;           // samples started; ring index rows % cap
    std::int64_t compute_end_ts = 0; // scratch: this round's compute end
    std::int64_t deliver_end_ts = -1;  // last deliver end; -1 = none pending
    ShardTotals totals;
    LogHistogram dispatch_latency;
  };

  Sample& current(Lane& lane) {
    return lane.ring[static_cast<std::size_t>((lane.rows - 1) % ring_capacity_)];
  }
  const Sample& current(const Lane& lane) const {
    return lane.ring[static_cast<std::size_t>((lane.rows - 1) % ring_capacity_)];
  }

  int ring_capacity_;
  std::int64_t epoch_;  // construction time; all timestamps are offsets
  std::vector<Lane> lanes_;
  int run_shards_ = 1;            // shards of the currently running Network
  std::int64_t run_begin_ts_ = 0;
  std::int64_t dispatch_ts_ = -1;  // -1 = no dispatch pending (serial loop)
  std::int64_t global_round_ = 0;
  std::int64_t runs_ = 0;
  std::int64_t wall_ns_ = 0;
  // Load-imbalance accumulators: per round, max busy shard time and the
  // mean busy shard time (double: run_shards_ may vary across Networks).
  std::int64_t imbalance_max_sum_ = 0;
  double imbalance_mean_sum_ = 0.0;
};

// --- Profile report ----------------------------------------------------------

struct ProfileReportContext {
  std::string title;
  // Extra key/value context, emitted in the given order.
  std::vector<std::pair<std::string, std::string>> info;
};

// Emits the "ecd-profile-v1" JSON document: {"schema", "title", "info",
// "profile": {"num_shards", "runs", "rounds", "wall_ns", "totals",
// "derived", "dispatch_latency_ns", "shards"}}. Structure is stable;
// values are wall-clock measurements and vary run to run (DESIGN.md §14).
void write_profile_report(std::ostream& os, const ExecutionProfiler& profiler,
                          const ProfileReportContext& context = {});

// The imbalance/barrier table `ecd_cli profile` prints: one row per shard
// plus the derived aggregates.
std::string format_profile_table(const ExecutionProfiler::Summary& summary);

}  // namespace ecd::congest
