#include "src/congest/network.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <utility>

#include "src/congest/trace.h"

namespace ecd::congest {

using graph::Graph;
using graph::VertexId;

namespace {

// Ceiling on preallocated arena slots per buffer. An enforced network whose
// 2m * bandwidth_tokens slot count exceeds this falls back to per-port
// vectors rather than committing to a multi-gigabyte slab.
constexpr std::int64_t kMaxArenaSlots = std::int64_t{1} << 22;

std::string describe_violation(CongestionError::Kind kind, std::int64_t round,
                               VertexId from, VertexId to, int used,
                               int budget) {
  std::ostringstream os;
  if (kind == CongestionError::Kind::kMessageSize) {
    os << "message exceeds O(log n) bits: " << used << " words (budget "
       << budget << ") on edge " << from << "->" << to << " at round "
       << round;
  } else {
    os << "per-edge per-round bandwidth exceeded: " << used
       << " tokens (budget " << budget << ") on edge " << from << "->" << to
       << " at round " << round;
  }
  return os.str();
}

}  // namespace

CongestionError::CongestionError(Kind kind, std::int64_t round,
                                 graph::VertexId from, graph::VertexId to,
                                 int used, int budget)
    : std::runtime_error(
          describe_violation(kind, round, from, to, used, budget)),
      kind_(kind),
      round_(round),
      from_(from),
      to_(to),
      used_(used),
      budget_(budget) {}

Network::Network(const Graph& g, NetworkOptions options)
    : g_(g), options_(options), n_(g.num_vertices()) {
  // Directed-port CSR: port p of vertex v is global port port_base_[v] + p,
  // aligned with Graph::neighbors(v).
  port_base_.resize(n_ + 1);
  port_base_[0] = 0;
  for (VertexId v = 0; v < n_; ++v) {
    port_base_[v + 1] = port_base_[v] + g.degree(v);
  }
  num_dir_ports_ = port_base_[n_];

  // Pair up the two directed ports of every edge: messages sent on gp are
  // delivered at reverse_slot_[gp].
  reverse_slot_.assign(num_dir_ports_, -1);
  port_owner_.resize(num_dir_ports_);
  {
    std::vector<std::pair<int, int>> edge_ports(g.num_edges(), {-1, -1});
    for (VertexId v = 0; v < n_; ++v) {
      const auto eids = g.incident_edges(v);
      for (int i = 0; i < static_cast<int>(eids.size()); ++i) {
        const int gp = port_base_[v] + i;
        port_owner_[gp] = v;
        auto& [gp_u, gp_v] = edge_ports[eids[i]];
        if (g.edge(eids[i]).u == v) {
          gp_u = gp;
        } else {
          gp_v = gp;
        }
      }
    }
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [gp_u, gp_v] = edge_ports[e];
      reverse_slot_[gp_u] = gp_v;
      reverse_slot_[gp_v] = gp_u;
    }
  }

  contexts_.resize(n_);
  for (VertexId v = 0; v < n_; ++v) {
    Context& ctx = contexts_[v];
    ctx.id_ = v;
    ctx.n_ = n_;
    ctx.net_ = this;
    ctx.base_ = port_base_[v];
    ctx.neighbors_ = g.neighbors(v);
  }

  // Static vertex sharding (DESIGN.md §11). Traced runs are pinned to the
  // serial path: the delivery phase would otherwise interleave per-event
  // sink calls across shards and break byte-identical trace fixtures.
  num_shards_ = options_.trace ? 1 : ThreadPool::resolve(options_.num_threads);
  num_shards_ = std::min(num_shards_, std::max(1, n_));
  shard_begin_.assign(num_shards_ + 1, 0);
  {
    // Degree-weighted contiguous ranges: shard boundaries are placed on the
    // cumulative (degree + 1) prefix — ports dominate per-round work, the
    // +1 spreads low-degree vertices too.
    const std::int64_t total_weight = num_dir_ports_ + n_;
    VertexId v = 0;
    std::int64_t acc = 0;
    for (int s = 0; s < num_shards_; ++s) {
      shard_begin_[s] = v;
      const std::int64_t target = total_weight * (s + 1) / num_shards_;
      while (v < n_ && acc < target) {
        acc += g.degree(v) + 1;
        ++v;
      }
    }
    shard_begin_[num_shards_] = n_;
  }
  send_bucket_.resize(num_dir_ports_);
  {
    std::vector<std::int32_t> vertex_shard(n_);
    for (int s = 0; s < num_shards_; ++s) {
      for (VertexId v = shard_begin_[s]; v < shard_begin_[s + 1]; ++v) {
        vertex_shard[v] = s;
      }
    }
    for (int gp = 0; gp < num_dir_ports_; ++gp) {
      send_bucket_[gp] = vertex_shard[port_owner_[gp]] * num_shards_ +
                         vertex_shard[port_owner_[reverse_slot_[gp]]];
    }
  }
  if (num_shards_ > 1) pool_ = std::make_unique<ThreadPool>(num_shards_);
  shard_accum_.resize(num_shards_);

  slot_cap_ = std::max(1, options_.bandwidth_tokens);
  arena_mode_ =
      options_.enforce_bandwidth &&
      static_cast<std::int64_t>(num_dir_ports_) * slot_cap_ <= kMaxArenaSlots;
  for (int b = 0; b < 2; ++b) {
    if (arena_mode_) {
      slab_[b].resize(static_cast<std::size_t>(num_dir_ports_) * slot_cap_);
      counts_[b].assign(num_dir_ports_, 0);
    } else {
      boxes_[b].resize(num_dir_ports_);
    }
    mail_[b].assign(n_, 0);
  }
  // A bucket gains at most one entry per receiver port it can be chosen
  // for, so reserving the exact port count per bucket makes steady-state
  // appends allocation-free.
  {
    std::vector<int> bucket_cap(
        static_cast<std::size_t>(num_shards_) * num_shards_, 0);
    for (int gp = 0; gp < num_dir_ports_; ++gp) ++bucket_cap[send_bucket_[gp]];
    for (int b = 0; b < 2; ++b) {
      active_[b].resize(bucket_cap.size());
      for (std::size_t i = 0; i < bucket_cap.size(); ++i) {
        active_[b][i].reserve(bucket_cap[i]);
      }
    }
  }
  if (options_.trace) trace_order_.reserve(num_dir_ports_);
  finished_.assign(n_, 0);
}

PortInbox Context::inbox(int port) const {
  assert(port >= 0 && port < num_ports());
  const Network& net = *net_;
  const int gp = base_ + port;
  if (net.arena_mode_) {
    return PortInbox(
        net.slab_[net.in_].data() +
            static_cast<std::size_t>(gp) * net.slot_cap_,
        net.counts_[net.in_][gp]);
  }
  const auto& box = net.boxes_[net.in_][gp];
  return PortInbox(box.data(), static_cast<int>(box.size()));
}

void Context::send(int port, Message message) {
  // Validate before touching any network state: a bad port must leave the
  // round's mailboxes exactly as they were.
  if (port < 0 || port >= num_ports()) {
    std::ostringstream os;
    os << "Context::send: port " << port << " out of range for vertex " << id_
       << " (" << num_ports() << " ports)";
    throw std::out_of_range(os.str());
  }
  Network& net = *net_;
  const int gp = base_ + port;
  const int rs = net.reverse_slot_[gp];
  const int out = 1 - net.in_;
  const int queued = net.arena_mode_
                         ? net.counts_[out][rs]
                         : static_cast<int>(net.boxes_[out][rs].size());
  if (net.options_.enforce_bandwidth) {
    if (message.size_words() > kMaxMessageWords) {
      CongestionError err(CongestionError::Kind::kMessageSize, round_, id_,
                          neighbors_[port], message.size_words(),
                          kMaxMessageWords);
      if (net.options_.trace) net.options_.trace->on_violation(err);
      throw err;
    }
    if (queued >= net.options_.bandwidth_tokens) {
      CongestionError err(CongestionError::Kind::kBandwidth, round_, id_,
                          neighbors_[port], queued + 1,
                          net.options_.bandwidth_tokens);
      if (net.options_.trace) net.options_.trace->on_violation(err);
      throw err;
    }
  }
  // Deposit directly into the receiver's slot for next round; delivery is
  // then just the buffer swap. The slot group rs and the active bucket are
  // both written by this vertex alone (one sender per edge direction, one
  // shard per sender), which is what makes the compute phase race-free.
  if (queued == 0) net.active_[out][net.send_bucket_[gp]].push_back(rs);
  if (net.arena_mode_) {
    net.slab_[out][static_cast<std::size_t>(rs) * net.slot_cap_ + queued] =
        std::move(message);
    net.counts_[out][rs] = queued + 1;
  } else {
    net.boxes_[out][rs].push_back(std::move(message));
  }
}

void Network::reset_mailboxes() {
  for (int b = 0; b < 2; ++b) {
    for (std::vector<int>& bucket : active_[b]) {
      for (const int gp : bucket) {
        if (arena_mode_) {
          counts_[b][gp] = 0;
        } else {
          boxes_[b][gp].clear();
        }
        mail_[b][port_owner_[gp]] = 0;
      }
      bucket.clear();
    }
  }
}

void Network::retire_inbox_buffer() {
  for (std::vector<int>& bucket : active_[in_]) {
    for (const int gp : bucket) {
      if (arena_mode_) {
        counts_[in_][gp] = 0;
      } else {
        boxes_[in_][gp].clear();
      }
      mail_[in_][port_owner_[gp]] = 0;
    }
    bucket.clear();
  }
}

RunStats Network::run(std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  if (static_cast<int>(algorithms.size()) != n_) {
    throw std::invalid_argument("need one algorithm per vertex");
  }
  reset_mailboxes();
  return num_shards_ == 1 ? run_serial(algorithms) : run_parallel(algorithms);
}

RunStats Network::run_serial(
    std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  TraceSink* const trace = options_.trace;
  if (trace) trace->on_run_begin(n_, g_.num_edges(), options_);
  RunStats stats;
  int unfinished = 0;
  for (VertexId v = 0; v < n_; ++v) {
    finished_[v] = algorithms[v]->finished() ? 1 : 0;
    if (!finished_[v]) ++unfinished;
  }
  for (std::int64_t r = 0;; ++r) {
    if (unfinished == 0) {
      stats.rounds = r;
      if (trace) trace->on_run_end(stats);
      return stats;
    }
    // Strict budget: at most max_rounds compute rounds ever execute.
    if (r >= options_.max_rounds) {
      throw std::runtime_error("network: max_rounds exceeded");
    }
    const int out = 1 - in_;
    const std::vector<char>& mail_in = mail_[in_];
    for (VertexId v = 0; v < n_; ++v) {
      Context& ctx = contexts_[v];
      ctx.round_ = r;
      algorithms[v]->round(ctx);
      if (!finished_[v] || mail_in[v]) {
        const char f = algorithms[v]->finished() ? 1 : 0;
        if (f != finished_[v]) {
          finished_[v] = f;
          unfinished += f ? -1 : 1;
        }
      } else {
        // Quiescence contract (VertexAlgorithm::finished): a finished
        // vertex that received no mail must stay finished.
        assert(algorithms[v]->finished());
      }
    }
    // Deliver. Messages already sit in their receivers' slots; what remains
    // is accounting over the ports that carried traffic, then the swap.
    std::int64_t round_messages = 0;
    std::int64_t round_words = 0;
    int round_max_load = 0;
    const auto account = [&](int rs) {
      const Message* msgs;
      int cnt;
      if (arena_mode_) {
        msgs = slab_[out].data() + static_cast<std::size_t>(rs) * slot_cap_;
        cnt = counts_[out][rs];
      } else {
        const auto& box = boxes_[out][rs];
        msgs = box.data();
        cnt = static_cast<int>(box.size());
      }
      std::int64_t edge_words = 0;
      for (int i = 0; i < cnt; ++i) edge_words += msgs[i].size_words();
      stats.messages_sent += cnt;
      stats.words_sent += edge_words;
      round_messages += cnt;
      round_words += edge_words;
      round_max_load = std::max(round_max_load, cnt);
      const VertexId to = port_owner_[rs];
      mail_[out][to] = 1;
      if (trace) {
        for (int i = 0; i < cnt; ++i) {
          trace->on_message(r, msgs[i].tag, msgs[i].size_words());
        }
        const VertexId from = contexts_[to].neighbors_[rs - port_base_[to]];
        trace->on_edge_load(r, from, to, cnt, edge_words);
      }
    };
    if (trace) {
      // Replay edges in sender (vertex, port) order — the order the
      // pre-arena simulator emitted and trace fixtures were recorded in.
      // The sort key is the sender's global port, packed above the
      // receiver port so a plain integer sort (no comparator indirection)
      // yields the replay order directly.
      trace_order_.clear();
      for (const std::vector<int>& bucket : active_[out]) {
        for (const int rs : bucket) {
          trace_order_.push_back(
              (static_cast<std::uint64_t>(reverse_slot_[rs]) << 32) |
              static_cast<std::uint32_t>(rs));
        }
      }
      std::sort(trace_order_.begin(), trace_order_.end());
      for (const std::uint64_t key : trace_order_) {
        account(static_cast<int>(key & 0xffffffffu));
      }
    } else {
      for (const std::vector<int>& bucket : active_[out]) {
        for (const int rs : bucket) account(rs);
      }
    }
    stats.max_edge_load = std::max(stats.max_edge_load, round_max_load);
    if (trace) {
      trace->on_round_end(r, round_messages, round_words, round_max_load);
    }
    retire_inbox_buffer();
    in_ = out;
  }
}

void Network::compute_shard(
    int s, std::int64_t r,
    std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  ShardAccum& acc = shard_accum_[s];
  acc.unfinished_delta = 0;
  const std::vector<char>& mail_in = mail_[in_];
  const VertexId end = shard_begin_[s + 1];
  for (VertexId v = shard_begin_[s]; v < end; ++v) {
    Context& ctx = contexts_[v];
    ctx.round_ = r;
    algorithms[v]->round(ctx);
    if (!finished_[v] || mail_in[v]) {
      const char f = algorithms[v]->finished() ? 1 : 0;
      if (f != finished_[v]) {
        finished_[v] = f;
        acc.unfinished_delta += f ? -1 : 1;
      }
    } else {
      // Quiescence contract (VertexAlgorithm::finished): a finished vertex
      // that received no mail must stay finished.
      assert(algorithms[v]->finished());
    }
  }
}

void Network::deliver_shard(int t, int out) {
  ShardAccum& acc = shard_accum_[t];
  acc.messages = 0;
  acc.words = 0;
  acc.max_load = 0;
  for (int s = 0; s < num_shards_; ++s) {
    for (const int rs : active_[out][s * num_shards_ + t]) {
      std::int64_t edge_words = 0;
      int cnt;
      if (arena_mode_) {
        const Message* msgs =
            slab_[out].data() + static_cast<std::size_t>(rs) * slot_cap_;
        cnt = counts_[out][rs];
        for (int i = 0; i < cnt; ++i) edge_words += msgs[i].size_words();
      } else {
        const auto& box = boxes_[out][rs];
        cnt = static_cast<int>(box.size());
        for (int i = 0; i < cnt; ++i) edge_words += box[i].size_words();
      }
      acc.messages += cnt;
      acc.words += edge_words;
      acc.max_load = std::max(acc.max_load, cnt);
      mail_[out][port_owner_[rs]] = 1;
    }
  }
  // Retire shard t's ports of the vacated buffer: this round's inboxes have
  // been read by the compute phase and the buffer becomes next round's
  // outbox. Buckets (·, t) are touched by worker t alone in this phase.
  for (int s = 0; s < num_shards_; ++s) {
    std::vector<int>& bucket = active_[in_][s * num_shards_ + t];
    for (const int rs : bucket) {
      if (arena_mode_) {
        counts_[in_][rs] = 0;
      } else {
        boxes_[in_][rs].clear();
      }
      mail_[in_][port_owner_[rs]] = 0;
    }
    bucket.clear();
  }
}

RunStats Network::run_parallel(
    std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  RunStats stats;
  int unfinished = 0;
  for (VertexId v = 0; v < n_; ++v) {
    finished_[v] = algorithms[v]->finished() ? 1 : 0;
    if (!finished_[v]) ++unfinished;
  }
  for (std::int64_t r = 0;; ++r) {
    if (unfinished == 0) {
      stats.rounds = r;
      return stats;
    }
    if (r >= options_.max_rounds) {
      throw std::runtime_error("network: max_rounds exceeded");
    }
    const int out = 1 - in_;
    // Phase one: step every shard's vertices. Deposits land in disjoint
    // slot groups and single-writer active buckets, so the only shared
    // writes are each shard's own finished_ range and accumulator. An
    // exception (CongestionError, bad port) quiesces at the pool barrier
    // and rethrows here; reset_mailboxes() on the next run() clears the
    // partial round, so the Network stays reusable.
    pool_->run([&](int s) { compute_shard(s, r, algorithms); });
    // Phase two: per receiving shard, account the traffic and retire the
    // vacated buffer's ports.
    pool_->run([&](int t) { deliver_shard(t, out); });
    int round_max_load = 0;
    for (const ShardAccum& acc : shard_accum_) {
      stats.messages_sent += acc.messages;
      stats.words_sent += acc.words;
      round_max_load = std::max(round_max_load, acc.max_load);
      unfinished += acc.unfinished_delta;
    }
    stats.max_edge_load = std::max(stats.max_edge_load, round_max_load);
    in_ = out;
  }
}

}  // namespace ecd::congest
