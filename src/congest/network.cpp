#include "src/congest/network.h"

#include <sstream>
#include <utility>

#include "src/congest/trace.h"

namespace ecd::congest {

using graph::Graph;
using graph::VertexId;

namespace {

std::string describe_violation(CongestionError::Kind kind, std::int64_t round,
                               VertexId from, VertexId to, int used,
                               int budget) {
  std::ostringstream os;
  if (kind == CongestionError::Kind::kMessageSize) {
    os << "message exceeds O(log n) bits: " << used << " words (budget "
       << budget << ") on edge " << from << "->" << to << " at round "
       << round;
  } else {
    os << "per-edge per-round bandwidth exceeded: " << used
       << " tokens (budget " << budget << ") on edge " << from << "->" << to
       << " at round " << round;
  }
  return os.str();
}

}  // namespace

CongestionError::CongestionError(Kind kind, std::int64_t round,
                                 graph::VertexId from, graph::VertexId to,
                                 int used, int budget)
    : std::runtime_error(
          describe_violation(kind, round, from, to, used, budget)),
      kind_(kind),
      round_(round),
      from_(from),
      to_(to),
      used_(used),
      budget_(budget) {}

void Context::send(int port, Message message) {
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("send: bad port");
  }
  if (options_->enforce_bandwidth) {
    if (message.size_words() > kMaxMessageWords) {
      CongestionError err(CongestionError::Kind::kMessageSize, round_, id_,
                          neighbors_[port], message.size_words(),
                          kMaxMessageWords);
      if (options_->trace) options_->trace->on_violation(err);
      throw err;
    }
    if (static_cast<int>(outbox_[port].size()) >= options_->bandwidth_tokens) {
      CongestionError err(CongestionError::Kind::kBandwidth, round_, id_,
                          neighbors_[port],
                          static_cast<int>(outbox_[port].size()) + 1,
                          options_->bandwidth_tokens);
      if (options_->trace) options_->trace->on_violation(err);
      throw err;
    }
  }
  outbox_[port].push_back(std::move(message));
}

Network::Network(const Graph& g, NetworkOptions options)
    : g_(g), options_(options) {}

RunStats Network::run(std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  const int n = g_.num_vertices();
  if (static_cast<int>(algorithms.size()) != n) {
    throw std::invalid_argument("need one algorithm per vertex");
  }
  // Port map: for vertex v, port i corresponds to neighbor g.neighbors(v)[i].
  // reverse_port[v][i] = the port index of v in that neighbor's list.
  std::vector<std::vector<int>> reverse_port(n);
  {
    std::vector<int> cursor(n, 0);
    // For edge e = {u, v}: u's port for e is its position in u's incident
    // list, likewise for v; walk incident lists once to pair them up.
    std::vector<std::pair<int, int>> edge_ports(g_.num_edges(), {-1, -1});
    for (VertexId v = 0; v < n; ++v) {
      const auto eids = g_.incident_edges(v);
      reverse_port[v].assign(eids.size(), -1);
      for (int i = 0; i < static_cast<int>(eids.size()); ++i) {
        auto& [p_u, p_v] = edge_ports[eids[i]];
        if (g_.edge(eids[i]).u == v) {
          p_u = i;
        } else {
          p_v = i;
        }
      }
    }
    for (graph::EdgeId e = 0; e < g_.num_edges(); ++e) {
      const auto [p_u, p_v] = edge_ports[e];
      const graph::Edge ed = g_.edge(e);
      reverse_port[ed.u][p_u] = p_v;
      reverse_port[ed.v][p_v] = p_u;
    }
  }

  std::vector<Context> contexts(n);
  for (VertexId v = 0; v < n; ++v) {
    Context& ctx = contexts[v];
    ctx.id_ = v;
    ctx.n_ = n;
    ctx.options_ = &options_;
    const auto nbrs = g_.neighbors(v);
    ctx.neighbors_.assign(nbrs.begin(), nbrs.end());
    ctx.inbox_.resize(nbrs.size());
    ctx.outbox_.resize(nbrs.size());
  }

  TraceSink* const trace = options_.trace;
  if (trace) trace->on_run_begin(n, g_.num_edges(), options_);
  RunStats stats;
  for (std::int64_t r = 0;; ++r) {
    if (r > options_.max_rounds) {
      throw std::runtime_error("network: max_rounds exceeded");
    }
    bool all_done = true;
    for (VertexId v = 0; v < n; ++v) {
      if (!algorithms[v]->finished()) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      stats.rounds = r;
      if (trace) trace->on_run_end(stats);
      return stats;
    }
    for (VertexId v = 0; v < n; ++v) {
      contexts[v].round_ = r;
      algorithms[v]->round(contexts[v]);
    }
    // Deliver: move outboxes into the neighbors' inboxes.
    for (VertexId v = 0; v < n; ++v) {
      for (auto& box : contexts[v].inbox_) box.clear();
    }
    std::int64_t round_messages = 0;
    std::int64_t round_words = 0;
    int round_max_load = 0;
    for (VertexId v = 0; v < n; ++v) {
      Context& ctx = contexts[v];
      for (int port = 0; port < ctx.num_ports(); ++port) {
        auto& out = ctx.outbox_[port];
        if (out.empty()) continue;
        const int load = static_cast<int>(out.size());
        stats.max_edge_load = std::max(stats.max_edge_load, load);
        round_max_load = std::max(round_max_load, load);
        const VertexId u = ctx.neighbors_[port];
        const int back = reverse_port[v][port];
        std::int64_t edge_words = 0;
        for (Message& msg : out) {
          const int w = msg.size_words();
          stats.messages_sent += 1;
          stats.words_sent += w;
          edge_words += w;
          if (trace) trace->on_message(r, msg.tag, w);
          contexts[u].inbox_[back].push_back(std::move(msg));
        }
        if (trace) trace->on_edge_load(r, v, u, load, edge_words);
        round_messages += load;
        round_words += edge_words;
        out.clear();
      }
    }
    if (trace) trace->on_round_end(r, round_messages, round_words, round_max_load);
  }
}

}  // namespace ecd::congest
