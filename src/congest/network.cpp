#include "src/congest/network.h"

#include <utility>

namespace ecd::congest {

using graph::Graph;
using graph::VertexId;

void Context::send(int port, Message message) {
  if (port < 0 || port >= num_ports()) {
    throw std::out_of_range("send: bad port");
  }
  if (options_->enforce_bandwidth) {
    if (message.size_words() > kMaxMessageWords) {
      throw CongestionError("message exceeds O(log n) bits");
    }
    if (static_cast<int>(outbox_[port].size()) >= options_->bandwidth_tokens) {
      throw CongestionError("per-edge per-round bandwidth exceeded");
    }
  }
  outbox_[port].push_back(std::move(message));
}

Network::Network(const Graph& g, NetworkOptions options)
    : g_(g), options_(options) {}

RunStats Network::run(std::vector<std::unique_ptr<VertexAlgorithm>>& algorithms) {
  const int n = g_.num_vertices();
  if (static_cast<int>(algorithms.size()) != n) {
    throw std::invalid_argument("need one algorithm per vertex");
  }
  // Port map: for vertex v, port i corresponds to neighbor g.neighbors(v)[i].
  // reverse_port[v][i] = the port index of v in that neighbor's list.
  std::vector<std::vector<int>> reverse_port(n);
  {
    std::vector<int> cursor(n, 0);
    // For edge e = {u, v}: u's port for e is its position in u's incident
    // list, likewise for v; walk incident lists once to pair them up.
    std::vector<std::pair<int, int>> edge_ports(g_.num_edges(), {-1, -1});
    for (VertexId v = 0; v < n; ++v) {
      const auto eids = g_.incident_edges(v);
      reverse_port[v].assign(eids.size(), -1);
      for (int i = 0; i < static_cast<int>(eids.size()); ++i) {
        auto& [p_u, p_v] = edge_ports[eids[i]];
        if (g_.edge(eids[i]).u == v) {
          p_u = i;
        } else {
          p_v = i;
        }
      }
    }
    for (graph::EdgeId e = 0; e < g_.num_edges(); ++e) {
      const auto [p_u, p_v] = edge_ports[e];
      const graph::Edge ed = g_.edge(e);
      reverse_port[ed.u][p_u] = p_v;
      reverse_port[ed.v][p_v] = p_u;
    }
  }

  std::vector<Context> contexts(n);
  for (VertexId v = 0; v < n; ++v) {
    Context& ctx = contexts[v];
    ctx.id_ = v;
    ctx.n_ = n;
    ctx.options_ = &options_;
    const auto nbrs = g_.neighbors(v);
    ctx.neighbors_.assign(nbrs.begin(), nbrs.end());
    ctx.inbox_.resize(nbrs.size());
    ctx.outbox_.resize(nbrs.size());
  }

  RunStats stats;
  for (std::int64_t r = 0;; ++r) {
    if (r > options_.max_rounds) {
      throw std::runtime_error("network: max_rounds exceeded");
    }
    bool all_done = true;
    for (VertexId v = 0; v < n; ++v) {
      if (!algorithms[v]->finished()) {
        all_done = false;
        break;
      }
    }
    if (all_done) {
      stats.rounds = r;
      return stats;
    }
    for (VertexId v = 0; v < n; ++v) {
      contexts[v].round_ = r;
      algorithms[v]->round(contexts[v]);
    }
    // Deliver: move outboxes into the neighbors' inboxes.
    for (VertexId v = 0; v < n; ++v) {
      for (auto& box : contexts[v].inbox_) box.clear();
    }
    for (VertexId v = 0; v < n; ++v) {
      Context& ctx = contexts[v];
      for (int port = 0; port < ctx.num_ports(); ++port) {
        auto& out = ctx.outbox_[port];
        if (out.empty()) continue;
        stats.max_edge_load =
            std::max(stats.max_edge_load, static_cast<int>(out.size()));
        const VertexId u = ctx.neighbors_[port];
        const int back = reverse_port[v][port];
        for (Message& msg : out) {
          stats.messages_sent += 1;
          stats.words_sent += msg.size_words();
          contexts[u].inbox_[back].push_back(std::move(msg));
        }
        out.clear();
      }
    }
  }
}

}  // namespace ecd::congest
